module Database = Raid_storage.Database
module Update_log = Raid_storage.Update_log

let write ~item ~value ~version = { Database.item; value; version }

let test_initial_state () =
  let db = Database.create ~num_items:3 in
  Alcotest.(check int) "num_items" 3 (Database.num_items db);
  for item = 0 to 2 do
    Alcotest.(check (option (pair int int)))
      (Printf.sprintf "item %d" item)
      (Some (0, 0)) (Database.read db item);
    Alcotest.(check bool) "stores" true (Database.stores db item)
  done

let test_apply_and_read () =
  let db = Database.create ~num_items:2 in
  Database.apply db (write ~item:0 ~value:7 ~version:1);
  Alcotest.(check (option (pair int int))) "applied" (Some (7, 1)) (Database.read db 0);
  Alcotest.(check (option int)) "version" (Some 1) (Database.version db 0);
  Alcotest.(check (option (pair int int))) "other untouched" (Some (0, 0)) (Database.read db 1)

let test_version_regression_rejected () =
  let db = Database.create ~num_items:1 in
  Database.apply db (write ~item:0 ~value:1 ~version:5);
  Alcotest.check_raises "same version"
    (Invalid_argument "Database.apply: version regression on item 0 (5 <= 5)") (fun () ->
      Database.apply db (write ~item:0 ~value:2 ~version:5));
  Alcotest.check_raises "older version"
    (Invalid_argument "Database.apply: version regression on item 0 (3 <= 5)") (fun () ->
      Database.apply db (write ~item:0 ~value:2 ~version:3))

let test_out_of_range () =
  let db = Database.create ~num_items:1 in
  Alcotest.check_raises "read out of range" (Invalid_argument "Database: item out of range")
    (fun () -> ignore (Database.read db 1))

let test_partial_and_materialize () =
  let db = Database.create_partial ~num_items:4 ~stored:(fun i -> i mod 2 = 0) in
  Alcotest.(check bool) "stores 0" true (Database.stores db 0);
  Alcotest.(check bool) "not stores 1" false (Database.stores db 1);
  Alcotest.(check (option (pair int int))) "absent read" None (Database.read db 1);
  Database.materialize db (write ~item:1 ~value:9 ~version:4);
  Alcotest.(check (option (pair int int))) "materialized" (Some (9, 4)) (Database.read db 1);
  Database.drop db 1;
  Alcotest.(check (option (pair int int))) "dropped" None (Database.read db 1)

let test_apply_materializes_absent () =
  let db = Database.create_partial ~num_items:2 ~stored:(fun _ -> false) in
  Database.apply db (write ~item:0 ~value:3 ~version:2);
  Alcotest.(check (option (pair int int))) "write creates copy" (Some (3, 2)) (Database.read db 0)

let test_items_behind () =
  let a = Database.create ~num_items:4 and b = Database.create ~num_items:4 in
  Database.apply b (write ~item:1 ~value:5 ~version:2);
  Database.apply b (write ~item:3 ~value:5 ~version:7);
  Alcotest.(check (list int)) "behind" [ 1; 3 ] (Database.items_behind a b);
  Alcotest.(check (list int)) "reference not behind" [] (Database.items_behind b a)

let test_equal_and_snapshot () =
  let a = Database.create ~num_items:2 and b = Database.create ~num_items:2 in
  Alcotest.(check bool) "equal initially" true (Database.equal a b);
  Database.apply a (write ~item:0 ~value:1 ~version:1);
  Alcotest.(check bool) "diverged" false (Database.equal a b);
  Database.apply b (write ~item:0 ~value:1 ~version:1);
  Alcotest.(check bool) "equal again" true (Database.equal a b);
  let snapshot = Database.snapshot a in
  Alcotest.(check (array (option (pair int int)))) "snapshot"
    [| Some (1, 1); Some (0, 0) |] snapshot

let test_update_log () =
  let log = Update_log.create () in
  Alcotest.(check int) "empty" 0 (Update_log.length log);
  Update_log.append log { Update_log.txn = 1; write = write ~item:0 ~value:1 ~version:1; applied_at = 10 };
  Update_log.append log { Update_log.txn = 2; write = write ~item:1 ~value:2 ~version:2; applied_at = 20 };
  Update_log.append log { Update_log.txn = 3; write = write ~item:0 ~value:3 ~version:3; applied_at = 30 };
  Alcotest.(check int) "length" 3 (Update_log.length log);
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ]
    (List.map (fun e -> e.Update_log.txn) (Update_log.entries log));
  Alcotest.(check int) "entries for item 0" 2 (List.length (Update_log.entries_for_item log 0));
  Alcotest.(check (option int)) "last version of 0" (Some 3) (Update_log.last_version_of log 0);
  Alcotest.(check (option int)) "last version of 2" None (Update_log.last_version_of log 2)

let prop_apply_monotone =
  QCheck.Test.make ~name:"ascending applies always succeed and read back" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 30) (pair (int_range 0 9) small_nat))
    (fun writes ->
      let db = Database.create ~num_items:10 in
      let expected = Array.make 10 (0, 0) in
      List.iteri
        (fun index (item, value) ->
          let version = index + 1 in
          Database.apply db { Database.item; value; version };
          expected.(item) <- (value, version))
        writes;
      List.for_all
        (fun item -> Database.read db item = Some expected.(item))
        (List.init 10 Fun.id))

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "apply and read" `Quick test_apply_and_read;
    Alcotest.test_case "version regression rejected" `Quick test_version_regression_rejected;
    Alcotest.test_case "bounds checked" `Quick test_out_of_range;
    Alcotest.test_case "partial replication and materialize" `Quick test_partial_and_materialize;
    Alcotest.test_case "apply materializes absent copy" `Quick test_apply_materializes_absent;
    Alcotest.test_case "items_behind" `Quick test_items_behind;
    Alcotest.test_case "equal and snapshot" `Quick test_equal_and_snapshot;
    Alcotest.test_case "update log" `Quick test_update_log;
    QCheck_alcotest.to_alcotest prop_apply_monotone;
  ]
