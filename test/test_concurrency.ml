(* Tests for the concurrency-control extension: the conservative strict
   2PL lock manager, and correctness of concurrent batches (consistency,
   no stale reads, per-item version order). *)

module Lock_manager = Raid_core.Lock_manager
module Txn = Raid_core.Txn
module Config = Raid_core.Config
module Cost_model = Raid_core.Cost_model
module Cluster = Raid_core.Cluster
module Workload = Raid_core.Workload
module Metrics = Raid_core.Metrics
module Invariant = Raid_core.Invariant
module Concurrent = Raid_sim.Concurrent

(* {2 Lock manager} *)

let test_shared_compatible () =
  let t = Lock_manager.create ~num_items:4 in
  Alcotest.(check bool) "t1 shared" true
    (Lock_manager.try_acquire t ~txn:1 [ (0, Lock_manager.Shared) ]);
  Alcotest.(check bool) "t2 shared too" true
    (Lock_manager.try_acquire t ~txn:2 [ (0, Lock_manager.Shared) ]);
  Alcotest.(check int) "two holders" 2 (List.length (Lock_manager.holders t 0))

let test_exclusive_blocks () =
  let t = Lock_manager.create ~num_items:4 in
  ignore (Lock_manager.try_acquire t ~txn:1 [ (0, Lock_manager.Exclusive) ]);
  Alcotest.(check bool) "shared blocked" false
    (Lock_manager.try_acquire t ~txn:2 [ (0, Lock_manager.Shared) ]);
  Alcotest.(check bool) "exclusive blocked" false
    (Lock_manager.try_acquire t ~txn:3 [ (0, Lock_manager.Exclusive) ]);
  Lock_manager.release_all t ~txn:1;
  Alcotest.(check bool) "free after release" true
    (Lock_manager.try_acquire t ~txn:2 [ (0, Lock_manager.Exclusive) ])

let test_all_or_nothing () =
  let t = Lock_manager.create ~num_items:4 in
  ignore (Lock_manager.try_acquire t ~txn:1 [ (2, Lock_manager.Exclusive) ]);
  (* txn 2 wants items 1 and 2; 2 is taken, so it must get NEITHER. *)
  Alcotest.(check bool) "atomic failure" false
    (Lock_manager.try_acquire t ~txn:2
       [ (1, Lock_manager.Exclusive); (2, Lock_manager.Exclusive) ]);
  Alcotest.(check bool) "item 1 untouched" true
    (Lock_manager.try_acquire t ~txn:3 [ (1, Lock_manager.Exclusive) ])

let test_duplicate_requests_strongest_wins () =
  let t = Lock_manager.create ~num_items:4 in
  ignore
    (Lock_manager.try_acquire t ~txn:1 [ (0, Lock_manager.Shared); (0, Lock_manager.Exclusive) ]);
  (* The single lock held must be exclusive. *)
  Alcotest.(check bool) "other shared blocked" false
    (Lock_manager.try_acquire t ~txn:2 [ (0, Lock_manager.Shared) ])

let test_double_acquire_rejected () =
  let t = Lock_manager.create ~num_items:4 in
  ignore (Lock_manager.try_acquire t ~txn:1 [ (0, Lock_manager.Shared) ]);
  Alcotest.check_raises "already holds"
    (Invalid_argument "Lock_manager.try_acquire: txn already holds locks") (fun () ->
      ignore (Lock_manager.try_acquire t ~txn:1 [ (1, Lock_manager.Shared) ]))

let test_conflicts_predicate () =
  let sh item = (item, Lock_manager.Shared) and ex item = (item, Lock_manager.Exclusive) in
  Alcotest.(check bool) "rw conflict" true (Lock_manager.conflicts [ sh 1 ] [ ex 1 ]);
  Alcotest.(check bool) "ww conflict" true (Lock_manager.conflicts [ ex 1 ] [ ex 1 ]);
  Alcotest.(check bool) "rr fine" false (Lock_manager.conflicts [ sh 1 ] [ sh 1 ]);
  Alcotest.(check bool) "disjoint fine" false (Lock_manager.conflicts [ ex 1 ] [ ex 2 ])

let test_of_txn () =
  let txn = Txn.make ~id:1 [ Txn.Read 1; Txn.Write 2; Txn.Read 2; Txn.Read 3 ] in
  let locks = List.sort compare (Lock_manager.of_txn txn) in
  Alcotest.(check bool) "item 2 exclusive despite read" true
    (List.mem (2, Lock_manager.Exclusive) locks);
  Alcotest.(check bool) "item 1 shared" true (List.mem (1, Lock_manager.Shared) locks);
  Alcotest.(check int) "three locks" 3 (List.length locks)

let prop_lock_manager_model =
  (* Random acquire/release sequences: at all times, an item has either
     any number of shared holders or exactly one exclusive holder. *)
  QCheck.Test.make ~name:"lock table never holds incompatible locks" ~count:200
    QCheck.(list (triple (int_range 1 6) (int_range 0 5) bool))
    (fun ops ->
      let t = Lock_manager.create ~num_items:6 in
      let active = Hashtbl.create 8 in
      List.iter
        (fun (txn, item, exclusive) ->
          if Hashtbl.mem active txn then begin
            Lock_manager.release_all t ~txn;
            Hashtbl.remove active txn
          end
          else
            let mode = if exclusive then Lock_manager.Exclusive else Lock_manager.Shared in
            if Lock_manager.try_acquire t ~txn [ (item, mode) ] then Hashtbl.add active txn ())
        ops;
      List.for_all
        (fun item ->
          match Lock_manager.holders t item with
          | [] -> true
          | [ _ ] -> true
          | holders -> List.for_all (fun (_, mode) -> mode = Lock_manager.Shared) holders)
        (List.init 6 Fun.id))

(* {2 Concurrent batches} *)

let base_config ?(num_sites = 4) () =
  Config.make ~cost:Cost_model.free ~num_sites ~num_items:20 ()

let workload = Workload.Uniform { max_ops = 4; write_prob = 0.5 }

let test_concurrent_batch_correct () =
  let result = Concurrent.run ~concurrency:6 ~txns:150 ~config:(base_config ()) ~workload () in
  Alcotest.(check int) "all committed" 150 result.Concurrent.committed;
  Alcotest.(check int) "none aborted" 0 result.Concurrent.aborted;
  Alcotest.(check bool) "parallelism happened" true (result.Concurrent.max_in_flight > 1);
  Alcotest.(check bool) "consistent" true (Cluster.fully_consistent result.Concurrent.cluster);
  (match Invariant.no_stale_reads result.Concurrent.cluster with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  match Invariant.faillocks_track_staleness result.Concurrent.cluster with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_concurrent_matches_serial_final_state () =
  (* The same batch at concurrency 1 and 8 must produce identical final
     databases: conservative 2PL serializes all conflicts in id order. *)
  let final_snapshot concurrency =
    let result =
      Concurrent.run ~seed:5 ~concurrency ~txns:120 ~config:(base_config ()) ~workload ()
    in
    Raid_storage.Database.snapshot
      (Raid_core.Site.database (Cluster.site result.Concurrent.cluster 0))
  in
  Alcotest.(check (array (option (pair int int))))
    "same final state" (final_snapshot 1) (final_snapshot 8)

let test_concurrency_shrinks_makespan () =
  let config = Config.make ~num_sites:4 ~num_items:50 () in
  let serial = Concurrent.run ~seed:3 ~concurrency:1 ~txns:80 ~config ~workload () in
  let parallel = Concurrent.run ~seed:3 ~concurrency:8 ~txns:80 ~config ~workload () in
  Alcotest.(check bool)
    (Printf.sprintf "makespan %.0f < %.0f" parallel.Concurrent.makespan_ms
       serial.Concurrent.makespan_ms)
    true
    (parallel.Concurrent.makespan_ms *. 2.0 < serial.Concurrent.makespan_ms)

let test_per_item_version_order () =
  (* Versions applied to any single item must be strictly increasing in
     application order at every site (regression would have raised in
     Database.apply; verify through the update logs as well). *)
  let result = Concurrent.run ~concurrency:8 ~txns:150 ~config:(base_config ()) ~workload () in
  for s = 0 to 3 do
    let log = Raid_core.Site.log (Cluster.site result.Concurrent.cluster s) in
    for item = 0 to 19 do
      let versions =
        List.map
          (fun e -> e.Raid_storage.Update_log.write.Raid_storage.Database.version)
          (Raid_storage.Update_log.entries_for_item log item)
      in
      let sorted = List.sort compare versions in
      Alcotest.(check (list int)) (Printf.sprintf "site %d item %d ordered" s item) sorted versions
    done
  done

let test_churn_mid_batch () =
  (* Fail a site 30 completions into a concurrent batch and bring it back
     at 80: transactions coordinated there at the moment of the crash are
     lost, everything else completes, and the books balance. *)
  let result =
    Concurrent.run ~seed:11 ~concurrency:6 ~txns:150
      ~churn:[ (30, `Fail 3); (80, `Recover 3) ]
      ~config:(base_config ()) ~workload ()
  in
  Alcotest.(check int) "books balance" 150
    (result.Concurrent.committed + result.Concurrent.aborted + result.Concurrent.lost);
  Alcotest.(check bool) "most committed" true (result.Concurrent.committed > 120);
  Alcotest.(check bool)
    (Printf.sprintf "bounded losses (%d lost, %d aborted)" result.Concurrent.lost
       result.Concurrent.aborted)
    true
    (result.Concurrent.lost <= 6);
  let cluster = result.Concurrent.cluster in
  (match Invariant.faillocks_track_staleness cluster with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* One serial write pass converges the cluster. *)
  for item = 0 to 19 do
    let id = Cluster.next_txn_id cluster in
    ignore (Cluster.submit cluster ~coordinator:0 (Raid_core.Txn.make ~id [ Raid_core.Txn.Write item ]))
  done;
  Alcotest.(check bool) "converges after churn" true (Cluster.fully_consistent cluster)

let test_churn_without_recovery () =
  let result =
    Concurrent.run ~seed:12 ~concurrency:4 ~txns:100
      ~churn:[ (20, `Fail 2) ]
      ~config:(base_config ()) ~workload ()
  in
  Alcotest.(check int) "books balance" 100
    (result.Concurrent.committed + result.Concurrent.aborted + result.Concurrent.lost);
  Alcotest.(check bool) "fail-locks accumulated for the dead site" true
    (Cluster.faillock_count_for result.Concurrent.cluster 2 > 0)

let test_validation () =
  Alcotest.check_raises "bad concurrency"
    (Invalid_argument "Concurrent.run: concurrency must be positive") (fun () ->
      ignore (Concurrent.run ~concurrency:0 ~config:(base_config ()) ~workload ()))

(* Regression: [normalize] used to return requests in [Hashtbl.fold]
   order, which is unspecified and changed across OCaml releases.  It
   must sort by item regardless of request order. *)
let test_normalize_sorted () =
  let requests =
    [
      (9, Lock_manager.Shared);
      (2, Lock_manager.Exclusive);
      (17, Lock_manager.Shared);
      (2, Lock_manager.Shared);
      (0, Lock_manager.Shared);
      (9, Lock_manager.Exclusive);
    ]
  in
  let normalized = Lock_manager.normalize requests in
  Alcotest.(check (list int)) "sorted by item" [ 0; 2; 9; 17 ] (List.map fst normalized);
  let mode item = List.assoc item normalized in
  Alcotest.(check bool) "strongest wins (2)" true (mode 2 = Lock_manager.Exclusive);
  Alcotest.(check bool) "strongest wins (9)" true (mode 9 = Lock_manager.Exclusive);
  Alcotest.(check bool) "shared kept (0)" true (mode 0 = Lock_manager.Shared);
  (* Same requests, shuffled: identical output. *)
  let shuffled = List.rev requests in
  Alcotest.(check bool)
    "order-independent" true
    (Lock_manager.normalize shuffled = normalized)

let suite =
  [
    Alcotest.test_case "normalize sorted by item" `Quick test_normalize_sorted;
    Alcotest.test_case "shared locks compatible" `Quick test_shared_compatible;
    Alcotest.test_case "exclusive blocks" `Quick test_exclusive_blocks;
    Alcotest.test_case "all-or-nothing acquisition" `Quick test_all_or_nothing;
    Alcotest.test_case "strongest mode wins" `Quick test_duplicate_requests_strongest_wins;
    Alcotest.test_case "double acquire rejected" `Quick test_double_acquire_rejected;
    Alcotest.test_case "conflicts predicate" `Quick test_conflicts_predicate;
    Alcotest.test_case "lock set of a transaction" `Quick test_of_txn;
    QCheck_alcotest.to_alcotest prop_lock_manager_model;
    Alcotest.test_case "concurrent batch correct" `Quick test_concurrent_batch_correct;
    Alcotest.test_case "concurrent equals serial state" `Quick
      test_concurrent_matches_serial_final_state;
    Alcotest.test_case "concurrency shrinks makespan" `Quick test_concurrency_shrinks_makespan;
    Alcotest.test_case "per-item version order" `Quick test_per_item_version_order;
    Alcotest.test_case "churn mid-batch" `Quick test_churn_mid_batch;
    Alcotest.test_case "churn without recovery" `Quick test_churn_without_recovery;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
