(* Tests for the scenario runner and shape-level regression tests for the
   three paper experiments: the reproduction's headline numbers must stay
   in the published ballpark. *)

module Scenario = Raid_sim.Scenario
module Runner = Raid_sim.Runner
module Experiment1 = Raid_sim.Experiment1
module Experiment2 = Raid_sim.Experiment2
module Experiment3 = Raid_sim.Experiment3
module Config = Raid_core.Config
module Cost_model = Raid_core.Cost_model
module Workload = Raid_core.Workload
module Cluster = Raid_core.Cluster

let small_config = Config.make ~cost:Cost_model.free ~num_sites:2 ~num_items:10 ()
let workload = Workload.Uniform { max_ops = 3; write_prob = 0.5 }

let test_runner_counts_txns () =
  let scenario = Scenario.make ~config:small_config ~workload [ Scenario.Run_txns 20 ] in
  let result = Runner.run scenario in
  Alcotest.(check int) "twenty records" 20 (List.length result.Runner.records);
  Alcotest.(check int) "all committed" 20 result.Runner.committed;
  Alcotest.(check int) "none aborted" 0 result.Runner.aborted

let test_runner_determinism () =
  let scenario =
    Scenario.make ~seed:77 ~config:small_config ~workload
      [ Scenario.Fail 0; Scenario.Run_txns 15; Scenario.Recover 0; Scenario.Run_txns 15 ]
  in
  let a = Runner.run scenario and b = Runner.run scenario in
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "identical series" (Runner.series a ~site:0) (Runner.series b ~site:0)

let test_runner_fixed_policy_rejects_down_site () =
  let scenario =
    Scenario.make ~policy:(Scenario.Fixed 0) ~config:small_config ~workload
      [ Scenario.Fail 0; Scenario.Run_txns 1 ]
  in
  Alcotest.check_raises "fixed coordinator down"
    (Invalid_argument "Runner: fixed coordinator 0 is not operational") (fun () ->
      ignore (Runner.run scenario))

let test_runner_round_robin () =
  let config = Config.make ~cost:Cost_model.free ~num_sites:3 ~num_items:10 () in
  let scenario =
    Scenario.make ~policy:Scenario.Round_robin ~config ~workload [ Scenario.Run_txns 6 ]
  in
  let result = Runner.run scenario in
  let coordinators =
    List.map (fun r -> r.Runner.outcome.Raid_core.Metrics.coordinator) result.Runner.records
  in
  Alcotest.(check (list int)) "cycles" [ 0; 1; 2; 0; 1; 2 ] coordinators

let test_run_until_consistent_stops () =
  let scenario =
    Scenario.make ~seed:3 ~config:small_config ~workload
      [
        Scenario.Fail 0;
        Scenario.Run_txns 30;
        Scenario.Recover 0;
        Scenario.Run_until_consistent { max_txns = 2000 };
      ]
  in
  let result = Runner.run scenario in
  Alcotest.(check bool) "consistent at end" true (Cluster.fully_consistent result.Runner.cluster)

(* Shape-level regressions against the paper's published numbers. *)

let within ~tolerance ~paper measured =
  Float.abs (measured -. paper) /. paper <= tolerance

let test_experiment1_shapes () =
  let reports = Experiment1.all () in
  List.iter
    (fun report ->
      List.iter
        (fun row ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %.1f within 10%% of %.0f" row.Experiment1.label
               row.Experiment1.measured_ms row.Experiment1.paper_ms)
            true
            (within ~tolerance:0.10 ~paper:row.Experiment1.paper_ms row.Experiment1.measured_ms))
        report.Experiment1.rows)
    reports

let test_experiment2_shape () =
  let e2 = Experiment2.run () in
  let s = e2.Experiment2.stats in
  Alcotest.(check bool) "peak above 90%" true (s.Experiment2.peak_fraction > 0.9);
  Alcotest.(check bool)
    (Printf.sprintf "recovery length %d near 160" s.Experiment2.txns_to_recover)
    true
    (s.Experiment2.txns_to_recover > 100 && s.Experiment2.txns_to_recover < 260);
  Alcotest.(check bool) "few copiers" true (s.Experiment2.copier_requests <= 5);
  Alcotest.(check int) "no aborts" 0 s.Experiment2.aborted;
  (* Convexity: early clearing is much faster than the tail. *)
  (match (s.Experiment2.first_10_cleared_in, s.Experiment2.last_10_cleared_in) with
  | Some first, Some last -> Alcotest.(check bool) "fast head, slow tail" true (first * 3 < last)
  | _ -> Alcotest.fail "clearing statistics missing")

let test_experiment3_shapes () =
  let s1 = Experiment3.scenario1 () in
  Alcotest.(check bool)
    (Printf.sprintf "scenario 1 aborts %d near 13" s1.Experiment3.aborted)
    true
    (s1.Experiment3.aborted >= 8 && s1.Experiment3.aborted <= 20);
  let s2 = Experiment3.scenario2 () in
  Alcotest.(check int) "scenario 2 aborts none" 0 s2.Experiment3.aborted

let suite =
  [
    Alcotest.test_case "runner counts transactions" `Quick test_runner_counts_txns;
    Alcotest.test_case "runner determinism" `Quick test_runner_determinism;
    Alcotest.test_case "fixed policy rejects down site" `Quick
      test_runner_fixed_policy_rejects_down_site;
    Alcotest.test_case "round-robin policy" `Quick test_runner_round_robin;
    Alcotest.test_case "run-until-consistent stops" `Quick test_run_until_consistent_stops;
    Alcotest.test_case "experiment 1 within 10% of paper" `Slow test_experiment1_shapes;
    Alcotest.test_case "experiment 2 shape (figure 1)" `Slow test_experiment2_shape;
    Alcotest.test_case "experiment 3 shapes (figures 2-3)" `Slow test_experiment3_shapes;
  ]
