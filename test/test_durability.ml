(* Tests for the stable-storage extension: WAL mechanics, crash-wipe and
   replay at recovery, checkpoint compaction, durable session numbers. *)

module Wal = Raid_storage.Wal
module Database = Raid_storage.Database
module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Cost_model = Raid_core.Cost_model
module Txn = Raid_core.Txn
module Site = Raid_core.Site
module Invariant = Raid_core.Invariant

let write ~item ~value ~version = { Database.item; value; version }

(* {2 Wal unit tests} *)

let test_wal_initial () =
  let wal = Wal.create ~num_items:4 () in
  Alcotest.(check int) "empty log" 0 (Wal.log_length wal);
  Alcotest.(check int) "session 1" 1 (Wal.session wal);
  let db = Database.create ~num_items:4 in
  Database.apply db (write ~item:0 ~value:9 ~version:9);
  Alcotest.(check int) "replay of empty store" 0 (Wal.replay_into wal db);
  (* Replay resets to the initial checkpoint. *)
  Alcotest.(check (option (pair int int))) "reset to initial" (Some (0, 0)) (Database.read db 0)

let test_wal_replay () =
  let wal = Wal.create ~num_items:4 () in
  Wal.append wal { Wal.txn = 1; write = write ~item:2 ~value:5 ~version:1 };
  Wal.append wal { Wal.txn = 2; write = write ~item:2 ~value:7 ~version:2 };
  Wal.append wal { Wal.txn = 3; write = write ~item:0 ~value:1 ~version:3 };
  let db = Database.create ~num_items:4 in
  Alcotest.(check int) "three replayed" 3 (Wal.replay_into wal db);
  Alcotest.(check (option (pair int int))) "last write wins" (Some (7, 2)) (Database.read db 2);
  Alcotest.(check (option (pair int int))) "other item" (Some (1, 3)) (Database.read db 0)

let test_wal_checkpoint_truncates () =
  let wal = Wal.create ~checkpoint_interval:3 ~num_items:2 () in
  let db = Database.create ~num_items:2 in
  let apply_and_log txn item =
    let w = write ~item ~value:txn ~version:txn in
    Database.apply db w;
    Wal.append wal { Wal.txn; write = w };
    ignore (Wal.maybe_checkpoint wal db)
  in
  apply_and_log 1 0;
  apply_and_log 2 1;
  Alcotest.(check int) "no checkpoint yet" 0 (Wal.checkpoints_taken wal);
  apply_and_log 3 0;
  Alcotest.(check int) "checkpointed" 1 (Wal.checkpoints_taken wal);
  Alcotest.(check int) "log truncated" 0 (Wal.log_length wal);
  (* Replay from checkpoint only still reproduces the state. *)
  let fresh = Database.create ~num_items:2 in
  ignore (Wal.replay_into wal fresh);
  Alcotest.(check bool) "checkpoint state equals db" true (Database.equal fresh db)

let test_wal_session_monotone () =
  let wal = Wal.create ~num_items:1 () in
  Wal.record_session wal 2;
  Alcotest.(check int) "recorded" 2 (Wal.session wal);
  Alcotest.check_raises "no regression"
    (Invalid_argument "Wal.record_session: session numbers must increase") (fun () ->
      Wal.record_session wal 2)

let test_wal_validation () =
  Alcotest.check_raises "bad interval"
    (Invalid_argument "Wal.create: non-positive checkpoint interval") (fun () ->
      ignore (Wal.create ~checkpoint_interval:0 ~num_items:1 ()));
  let wal = Wal.create ~num_items:2 () in
  let db = Database.create ~num_items:3 in
  Alcotest.check_raises "shape mismatch" (Invalid_argument "Wal.replay_into: database shape mismatch")
    (fun () -> ignore (Wal.replay_into wal db))

(* {2 Site-level durability} *)

let durable_config ?(checkpoint_interval = 5) () =
  Config.make ~cost:Cost_model.free
    ~durability:(Config.Durable_wal { checkpoint_interval })
    ~num_sites:3 ~num_items:8 ()

let test_crash_wipes_then_replay_restores () =
  let cluster = Cluster.create (durable_config ()) in
  List.iter
    (fun item ->
      let id = Cluster.next_txn_id cluster in
      ignore (Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Write item ])))
    [ 0; 3; 5; 3 ];
  let before = Database.snapshot (Site.database (Cluster.site cluster 1)) in
  Cluster.fail_site cluster 1;
  (* The crash wiped the volatile database for real. *)
  Alcotest.(check (option (pair int int))) "wiped" (Some (0, 0))
    (Database.read (Site.database (Cluster.site cluster 1)) 3);
  (match Cluster.recover_site cluster 1 with
  | `Recovered -> ()
  | `Blocked -> Alcotest.fail "blocked");
  let after = Database.snapshot (Site.database (Cluster.site cluster 1)) in
  Alcotest.(check (array (option (pair int int)))) "replay restored everything" before after;
  (match Invariant.all cluster with Ok () -> () | Error m -> Alcotest.fail m)

let test_replay_then_copiers_catch_up () =
  (* Updates committed while the site was down are NOT in its log; they
     must come back through fail-locks and copiers, not replay. *)
  let cluster = Cluster.create (durable_config ()) in
  let id = Cluster.next_txn_id cluster in
  ignore (Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Write 2 ]));
  Cluster.fail_site cluster 1;
  let id = Cluster.next_txn_id cluster in
  ignore (Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Write 2 ]));
  ignore (Cluster.recover_site cluster 1);
  (* Replay restored the pre-crash version (1), and the fail-lock marks
     the missed version (2). *)
  Alcotest.(check (option (pair int int))) "pre-crash version" (Some (1, 1))
    (Database.read (Site.database (Cluster.site cluster 1)) 2);
  Alcotest.(check (list int)) "fail-locked" [ 2 ] (Site.locked_items (Cluster.site cluster 1));
  let id = Cluster.next_txn_id cluster in
  let outcome = Cluster.submit cluster ~coordinator:1 (Txn.make ~id [ Txn.Read 2 ]) in
  Alcotest.(check (list (triple int int int))) "copier caught up" [ (2, 2, 2) ]
    outcome.Raid_core.Metrics.reads;
  Alcotest.(check bool) "consistent" true (Cluster.fully_consistent cluster)

let test_durable_session_numbers () =
  let cluster = Cluster.create (durable_config ()) in
  Cluster.fail_site cluster 2;
  ignore (Cluster.recover_site cluster 2);
  Cluster.fail_site cluster 2;
  ignore (Cluster.recover_site cluster 2);
  Alcotest.(check int) "session 3 after two crashes" 3
    (Site.session_number (Cluster.site cluster 2))

(* {2 Checkpoint vs in-flight 2PC (the Wal.checkpoint hazard)}

   Prepare and decision records live in side tables outside the redo log,
   so a checkpoint taken while a prepare is buffered must neither drop
   the in-doubt record nor let replay materialize the undecided write. *)

let test_checkpoint_preserves_prepares () =
  let wal = Wal.create ~checkpoint_interval:2 ~num_items:4 () in
  let db = Database.create ~num_items:4 in
  (* A participant votes yes: the prepare is durably buffered. *)
  Wal.log_prepare wal ~txn:9 ~coordinator:2 [ write ~item:3 ~value:9 ~version:9 ];
  (* Two committed writes reach the interval and trigger compaction. *)
  List.iter
    (fun (txn, item) ->
      let w = write ~item ~value:txn ~version:txn in
      Database.apply db w;
      Wal.append wal { Wal.txn; write = w };
      ignore (Wal.maybe_checkpoint wal db))
    [ (1, 0); (2, 1) ];
  Alcotest.(check int) "log truncated" 0 (Wal.log_length wal);
  Alcotest.(check int) "checkpointed" 1 (Wal.checkpoints_taken wal);
  (* The in-doubt prepare survived the truncation... *)
  Alcotest.(check int) "prepare survives checkpoint" 1 (Wal.prepared_count wal);
  (match Wal.prepared wal with
  | [ { Wal.p_txn = 9; coordinator = 2; writes = [ w ] } ] ->
    Alcotest.(check int) "prepared write intact" 3 w.Database.item
  | _ -> Alcotest.fail "prepare record lost or mangled by the checkpoint");
  (* ...and replay never materializes the prepared-but-undecided write. *)
  let fresh = Database.create ~num_items:4 in
  ignore (Wal.replay_into wal fresh);
  Alcotest.(check (option (pair int int))) "undecided write not replayed" (Some (0, 0))
    (Database.read fresh 3);
  (* Decision records survive checkpoints the same way. *)
  Wal.log_decision wal ~txn:11;
  Wal.checkpoint wal db;
  Alcotest.(check bool) "decision survives checkpoint" true (Wal.decided_commit wal ~txn:11);
  Wal.forget_prepare wal ~txn:9;
  Alcotest.(check int) "forgotten once decided" 0 (Wal.prepared_count wal)

(* {2 The initial checkpoint image under partial replication}

   Wal.create's image must mirror the owner's real initial database: a
   full all-items image made the first post-crash replay resurrect
   phantom version-0 copies of items a partial site never stored. *)

let test_initial_image_respects_partial_shape () =
  let stored item = item mod 2 = 0 in
  let db = Database.create_partial ~num_items:4 ~stored in
  let wal = Wal.create ~initial:db ~num_items:4 () in
  let crashed = Database.create_partial ~num_items:4 ~stored in
  (* Pollute with a copy the site never stored, as the old full initial
     image effectively did; replay must drop it, not legitimize it. *)
  Database.materialize crashed { Database.item = 1; value = 5; version = 5 };
  ignore (Wal.replay_into wal crashed);
  Alcotest.(check (option (pair int int))) "stored item restored" (Some (0, 0))
    (Database.read crashed 0);
  Alcotest.(check (option (pair int int))) "unstored item absent after replay" None
    (Database.read crashed 1);
  Alcotest.check_raises "initial shape validated"
    (Invalid_argument "Wal.create: initial database shape mismatch") (fun () ->
      ignore (Wal.create ~initial:db ~num_items:5 ()))

(* {2 Replay idempotence (property)}

   A recovering site can be told to recover again before it finishes
   (duplicate Recover_command, a re-noticed failure): replaying the same
   store twice — even into a polluted database — must land in exactly
   the state of a single replay into a fresh one. *)

let replay_idempotent_prop =
  QCheck.Test.make ~name:"replay_into twice = once" ~count:100
    QCheck.(list (pair (int_bound 7) (int_bound 100)))
    (fun writes ->
      let num_items = 8 in
      let wal = Wal.create ~checkpoint_interval:4 ~num_items () in
      let db = Database.create ~num_items in
      List.iteri
        (fun i (item, value) ->
          let w = write ~item ~value ~version:(i + 1) in
          Database.apply db w;
          Wal.append wal { Wal.txn = i + 1; write = w };
          ignore (Wal.maybe_checkpoint wal db))
        writes;
      let once = Database.create ~num_items in
      ignore (Wal.replay_into wal once);
      let twice = Database.create ~num_items in
      Database.materialize twice { Database.item = 0; value = 999; version = 999 };
      ignore (Wal.replay_into wal twice);
      ignore (Wal.replay_into wal twice);
      Database.equal once twice)

let test_duplicate_recover_command () =
  (* Two Recover_command events delivered back to back: the second
     re-enters begin_recovery while the first recovery is still waiting
     for its donor.  Each pass replays the WAL and records the next
     session number; the monotonicity guard in Wal.record_session must
     never fire, and the site must come up exactly once. *)
  let module Engine = Raid_net.Engine in
  let module Message = Raid_core.Message in
  let cluster = Cluster.create (durable_config ()) in
  List.iter
    (fun item ->
      let id = Cluster.next_txn_id cluster in
      ignore (Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Write item ])))
    [ 0; 1; 2 ];
  let before = Database.snapshot (Site.database (Cluster.site cluster 1)) in
  Cluster.fail_site cluster 1;
  let engine = Cluster.engine cluster in
  Engine.set_alive engine 1 true;
  Engine.inject engine ~dst:1 Message.Recover_command;
  Engine.inject engine ~dst:1 Message.Recover_command;
  Cluster.run_to_quiescence cluster;
  Alcotest.(check bool) "came up, not stuck waiting" false
    (Site.is_waiting (Cluster.site cluster 1));
  (* Both passes burned a session number (1 -> 2 -> 3). *)
  Alcotest.(check int) "both sessions recorded" 3 (Site.session_number (Cluster.site cluster 1));
  let after = Database.snapshot (Site.database (Cluster.site cluster 1)) in
  Alcotest.(check (array (option (pair int int)))) "replay still exact" before after;
  (match Invariant.all cluster with Ok () -> () | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "consistent" true (Cluster.fully_consistent cluster)

let test_checkpoints_bound_replay () =
  let cluster = Cluster.create (durable_config ~checkpoint_interval:4 ()) in
  for _ = 1 to 30 do
    let id = Cluster.next_txn_id cluster in
    ignore (Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Write (id mod 8) ]))
  done;
  Cluster.fail_site cluster 1;
  ignore (Cluster.recover_site cluster 1);
  Alcotest.(check bool) "consistent after checkpointed replay" true
    (Cluster.fully_consistent cluster)

let test_backup_copy_is_durable () =
  (* item 0 held by sites {0,1}, item 1 by {0,2} (two consecutive
     holders from each item's affinity primary) *)
  let placement =
    Raid_core.Placement.spec ~sharding:(Raid_core.Placement.Affinity [| 0; 2 |]) ~factor:2 ()
  in
  let config =
    Config.make ~cost:Cost_model.free ~spawn_backups:true
      ~replication:(Config.Partial placement)
      ~durability:(Config.Durable_wal { checkpoint_interval = 100 })
      ~num_sites:3 ~num_items:2 ()
  in
  let cluster = Cluster.create config in
  (* Item 1 is held by sites 0 and 2; fail 0 so a write leaves one holder
     and spawns a backup on site 1. *)
  Cluster.fail_site cluster 0;
  let id = Cluster.next_txn_id cluster in
  ignore (Cluster.submit cluster ~coordinator:2 (Txn.make ~id [ Txn.Write 1 ]));
  Alcotest.(check bool) "backup at site 1" true (Site.stores (Cluster.site cluster 1) ~item:1);
  (* Crash the backup holder: the backup must survive through its log. *)
  Cluster.fail_site cluster 1;
  ignore (Cluster.recover_site cluster 1);
  Alcotest.(check (option (pair int int))) "backup replayed" (Some (id, id))
    (Database.read (Site.database (Cluster.site cluster 1)) 1)

let test_mid_protocol_crash_with_wal () =
  (* A participant dies between its phase-1 ack and the commit message,
     with durability on: its volatile database is wiped, the write it
     never received is fail-locked on its behalf, and recovery = replay
     (its own history) + copier (the missed write). *)
  let module Engine = Raid_net.Engine in
  let module Message = Raid_core.Message in
  let config =
    Config.make ~cost:Cost_model.free
      ~durability:(Config.Durable_wal { checkpoint_interval = 4 })
      ~num_sites:3 ~num_items:8 ()
  in
  let cluster = Cluster.create ~settings:(Cluster.settings ~detection:Cluster.On_timeout ~trace:true ()) config in
  (* Seed history so the crashed site has something to replay. *)
  let id = Cluster.next_txn_id cluster in
  ignore (Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Write 7 ]));
  let engine = Cluster.engine cluster in
  let id = Cluster.next_txn_id cluster in
  Engine.inject engine ~dst:0 (Message.Begin_txn (Txn.make ~id [ Txn.Write 2 ]));
  let acks () =
    List.length
      (List.filter
         (fun e ->
           e.Engine.trace_outcome = Engine.Delivered
           && (match e.Engine.trace_payload with
              | Message.Prepare_ack { txn } -> txn = id && e.Engine.trace_dst = 0
              | _ -> false))
         (Engine.trace engine))
  in
  while acks () < 2 do
    if not (Engine.step engine) then Alcotest.fail "quiescent too early"
  done;
  Engine.set_alive engine 1 false;
  Site.on_crash (Cluster.site cluster 1);
  Engine.run engine;
  (* The commit completed without site 1 and fail-locked the write. *)
  Alcotest.(check (list int)) "missed write fail-locked" [ 2 ] (Cluster.faillocks_for cluster 1);
  (match Cluster.recover_site cluster 1 with
  | `Recovered -> ()
  | `Blocked -> Alcotest.fail "blocked");
  (* Replay restored the pre-crash write; the missed one arrives by copier. *)
  Alcotest.(check (option (pair int int))) "replayed history" (Some (1, 1))
    (Database.read (Site.database (Cluster.site cluster 1)) 7);
  let id = Cluster.next_txn_id cluster in
  let outcome = Cluster.submit cluster ~coordinator:1 (Txn.make ~id [ Txn.Read 2 ]) in
  Alcotest.(check bool) "copier caught it up" true
    (outcome.Raid_core.Metrics.copier_requests = 1 && outcome.Raid_core.Metrics.committed);
  Alcotest.(check bool) "consistent" true (Cluster.fully_consistent cluster);
  match Invariant.all cluster with Ok () -> () | Error m -> Alcotest.fail m

let suite =
  [
    Alcotest.test_case "wal initial state" `Quick test_wal_initial;
    Alcotest.test_case "mid-protocol crash with WAL" `Quick test_mid_protocol_crash_with_wal;
    Alcotest.test_case "wal replay order" `Quick test_wal_replay;
    Alcotest.test_case "wal checkpoint truncates" `Quick test_wal_checkpoint_truncates;
    Alcotest.test_case "wal session monotone" `Quick test_wal_session_monotone;
    Alcotest.test_case "wal validation" `Quick test_wal_validation;
    Alcotest.test_case "crash wipes, replay restores" `Quick test_crash_wipes_then_replay_restores;
    Alcotest.test_case "missed updates come via copiers" `Quick test_replay_then_copiers_catch_up;
    Alcotest.test_case "session numbers durable" `Quick test_durable_session_numbers;
    Alcotest.test_case "checkpoints bound replay" `Quick test_checkpoints_bound_replay;
    Alcotest.test_case "control-3 backups durable" `Quick test_backup_copy_is_durable;
    Alcotest.test_case "checkpoint preserves in-doubt records" `Quick
      test_checkpoint_preserves_prepares;
    Alcotest.test_case "initial image respects partial shape" `Quick
      test_initial_image_respects_partial_shape;
    QCheck_alcotest.to_alcotest replay_idempotent_prop;
    Alcotest.test_case "duplicate recover command is safe" `Quick test_duplicate_recover_command;
  ]
