(* Tests for the crash-injection matrix (lib/sim/crashmatrix.ml) and the
   DESIGN.md section 11 knowledge-loss detector it leans on.  The matrix
   cells double as minimized regressions for the bugs the matrix shook
   out: copier update-log entries masquerading as commit evidence
   (coord-mid-copy), phantom version-0 copies replayed from a
   full-database initial checkpoint image under partial replication
   (part-after-prepare, partial), and ghost commits after a post-decide
   coordinator death (coord-after-decide, correlated). *)

module Crashmatrix = Raid_sim.Crashmatrix
module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Cost_model = Raid_core.Cost_model
module Placement = Raid_core.Placement
module Txn = Raid_core.Txn
module Invariant = Raid_core.Invariant

(* {2 Taxonomy} *)

let test_taxonomy () =
  Alcotest.(check int) "thirteen crash points" 13 (List.length Crashmatrix.all_points);
  let names = List.map Crashmatrix.point_name Crashmatrix.all_points in
  Alcotest.(check int) "names unique" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun p ->
      (match Crashmatrix.point_of_name (Crashmatrix.point_name p) with
      | Some p' when p' = p -> ()
      | _ -> Alcotest.fail ("name round-trip failed for " ^ Crashmatrix.point_name p));
      Alcotest.(check bool)
        ("description for " ^ Crashmatrix.point_name p)
        true
        (String.length (Crashmatrix.point_description p) > 0))
    Crashmatrix.all_points;
  Alcotest.(check bool) "unknown name rejected" true
    (Crashmatrix.point_of_name "no-such-point" = None)

let test_validation () =
  Alcotest.check_raises "empty seeds" (Invalid_argument "Crashmatrix.run: empty seed list")
    (fun () -> ignore (Crashmatrix.run ~seeds:[] ()));
  Alcotest.check_raises "tiny cluster"
    (Invalid_argument "Crashmatrix.run: cluster sizes below 3 cannot host a 2PC crash cell")
    (fun () -> ignore (Crashmatrix.run ~sizes:[ 2 ] ()))

(* {2 Minimized regression cells}

   Each runs one (point, seed=1, sites=4) cell in both placements and
   pins down how the victim transaction must resolve.  These are the
   smallest reproducers of the bugs the full matrix caught. *)

let cells point =
  let summary = Crashmatrix.run ~domains:1 ~seeds:[ 1 ] ~sizes:[ 4 ] ~points:[ point ] () in
  Alcotest.(check int) "one full and one partial cell" 2 (List.length summary.Crashmatrix.rows);
  Alcotest.(check int) "no failed cells" 0 summary.Crashmatrix.failed_cells;
  List.iter
    (fun r ->
      Alcotest.(check (list string)) "no violations" [] r.Crashmatrix.r_violations;
      Alcotest.(check int) "no surviving in-doubt prepare" 0 r.Crashmatrix.r_in_doubt)
    summary.Crashmatrix.rows;
  match summary.Crashmatrix.rows with
  | [ full; partial ] when (not full.Crashmatrix.r_partial) && partial.Crashmatrix.r_partial ->
    (full, partial)
  | _ -> Alcotest.fail "expected a full row then a partial row"

let test_copier_commit_evidence_regression () =
  (* The coordinator dies mid copier transaction.  The in-doubt probe
     answer must come back "aborted": the copier installed the source
     copy's OLD version under the victim transaction's id, and only an
     update-log entry whose version equals the transaction id proves a
     commit.  Before the fix the probe read the copier entry as commit
     evidence and answered "committed" for an aborted transaction. *)
  let full, partial = cells Crashmatrix.Coord_mid_copy in
  Alcotest.(check string) "full: aborted" "aborted" full.Crashmatrix.r_resolved;
  Alcotest.(check string) "partial: aborted" "aborted" partial.Crashmatrix.r_resolved

let test_partial_phantom_copy_regression () =
  (* A k=3 participant crashes after its durable prepare and replays its
     WAL.  Before Wal.create took the owner's initial database as the
     checkpoint image, replay materialized version-0 copies of items the
     site never stored — untracked by any fail-lock, so the cluster
     could never converge. *)
  let full, partial = cells Crashmatrix.Part_after_prepare in
  Alcotest.(check string) "full: committed" "committed" full.Crashmatrix.r_resolved;
  Alcotest.(check string) "partial: committed" "committed" partial.Crashmatrix.r_resolved

let test_ghost_commit_cell () =
  (* Coordinator death after the durable decide: nobody reports an
     outcome, but the commit is proved from survivor update logs or the
     coordinator's durable decision record and the writes must land
     everywhere. *)
  let full, partial = cells Crashmatrix.Coord_after_decide in
  Alcotest.(check string) "full: ghost-commit" "ghost-commit" full.Crashmatrix.r_resolved;
  Alcotest.(check string) "partial: ghost-commit" "ghost-commit" partial.Crashmatrix.r_resolved

let test_mid_checkpoint_cell () =
  (* A checkpoint races a buffered prepare (checkpoint_interval = 2 with
     two overlapping transactions): the prepare must survive the log
     truncation and the decided transaction must commit everywhere. *)
  let full, partial = cells Crashmatrix.Mid_checkpoint in
  Alcotest.(check string) "full: committed" "committed" full.Crashmatrix.r_resolved;
  Alcotest.(check string) "partial: committed" "committed" partial.Crashmatrix.r_resolved

let test_matrix_determinism () =
  (* Every cell is a pure function of its coordinates: the CSV must be
     byte-identical whatever the domain count. *)
  let grid domains =
    Crashmatrix.to_csv
      (Crashmatrix.run ~domains ~seeds:[ 1; 2 ]
         ~sizes:[ 4 ]
         ~points:[ Crashmatrix.Coord_before_decide; Crashmatrix.Part_after_prepare ]
         ())
  in
  Alcotest.(check string) "-j1 = -j4" (grid 1) (grid 4)

(* {2 Knowledge loss (DESIGN.md section 11)}

   Under k=3 partial replication the fail-lock bits witnessing a down
   holder's staleness are group-local: they live only at the item's
   other holders.  Crash both witnesses and the fact "h2's copy of item
   0 is stale" is gone from every live table — the recovering h2 finds a
   clean bill of health and serves its stale copy.  The detector turns
   that silent gap into a counted, logged condition the staleness
   invariant tolerates. *)

let knowledge_loss_cluster () =
  let num_sites = 5 and num_items = 6 in
  let spec = Placement.spec ~factor:3 () in
  let config =
    Config.make ~cost:Cost_model.free
      ~replication:(Config.Partial spec)
      ~durability:(Config.Durable_wal { checkpoint_interval = 8 })
      ~num_sites ~num_items ()
  in
  let cluster = Cluster.create config in
  let placement = Placement.make ~num_sites ~num_items spec in
  (cluster, Placement.replicas placement 0)

let test_knowledge_loss_detected () =
  let cluster, holders = knowledge_loss_cluster () in
  match holders with
  | [ h0; h1; h2 ] ->
    Cluster.fail_site cluster h2;
    let id = Cluster.next_txn_id cluster in
    let outcome = Cluster.submit cluster ~coordinator:h0 (Txn.make ~id [ Txn.Write 0 ]) in
    Alcotest.(check bool) "write committed without h2" true
      outcome.Raid_core.Metrics.committed;
    (* h0 and h1 both hold the (item 0, h2) bit: losing one witness is
       not yet knowledge loss. *)
    Alcotest.(check int) "no loss yet" 0 (Cluster.knowledge_loss_events cluster);
    Cluster.fail_site cluster h0;
    Alcotest.(check int) "h1 still witnesses" 0 (Cluster.knowledge_loss_events cluster);
    Cluster.fail_site cluster h1;
    Alcotest.(check int) "last witness died" 1 (Cluster.knowledge_loss_events cluster);
    Alcotest.(check bool) "the lost fact is recorded" true
      (Cluster.knowledge_lost cluster ~item:0 ~site:h2);
    Alcotest.(check bool) "other pairs unaffected" false
      (Cluster.knowledge_lost cluster ~item:1 ~site:h2);
    (* h2 recovers first, from a non-holder donor: nobody tells it the
       copy is stale, which is exactly the gap.  The staleness invariant
       must tolerate the recorded pair instead of firing. *)
    (match Cluster.recover_site cluster h2 with
    | `Recovered -> ()
    | `Blocked -> Alcotest.fail "h2 blocked");
    (match Invariant.faillocks_track_staleness cluster with
    | Ok () -> ()
    | Error m -> Alcotest.fail ("staleness invariant should tolerate the recorded loss: " ^ m));
    List.iter
      (fun s ->
        match Cluster.recover_site cluster s with
        | `Recovered -> ()
        | `Blocked -> Alcotest.fail "witness blocked")
      [ h0; h1 ];
    (match Invariant.all cluster with Ok () -> () | Error m -> Alcotest.fail m);
    (* The gap is permanent until the item is overwritten: a fresh write
       to item 0 re-synchronizes all three holders. *)
    let id = Cluster.next_txn_id cluster in
    ignore (Cluster.submit cluster ~coordinator:h0 (Txn.make ~id [ Txn.Write 0 ]));
    Alcotest.(check bool) "rewrite converges the cluster" true
      (Cluster.fully_consistent cluster);
    (* The counter is monotone and append-only: recovery cleared nothing. *)
    Alcotest.(check int) "event count unchanged" 1 (Cluster.knowledge_loss_events cluster)
  | _ -> Alcotest.fail "expected exactly 3 holders of item 0"

let test_no_false_positive_under_full_replication () =
  (* Under full replication every up site witnesses every fail-lock, so
     a single crash can never lose knowledge. *)
  let config =
    Config.make ~cost:Cost_model.free
      ~durability:(Config.Durable_wal { checkpoint_interval = 8 })
      ~num_sites:4 ~num_items:6 ()
  in
  let cluster = Cluster.create config in
  Cluster.fail_site cluster 3;
  let id = Cluster.next_txn_id cluster in
  ignore (Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Write 0 ]));
  Cluster.fail_site cluster 1;
  Alcotest.(check int) "witnesses everywhere" 0 (Cluster.knowledge_loss_events cluster);
  ignore (Cluster.recover_site cluster 1);
  ignore (Cluster.recover_site cluster 3);
  (match Invariant.all cluster with Ok () -> () | Error m -> Alcotest.fail m);
  Alcotest.(check int) "still none" 0 (Cluster.knowledge_loss_events cluster)

let suite =
  [
    Alcotest.test_case "crash-point taxonomy round-trips" `Quick test_taxonomy;
    Alcotest.test_case "run validates its grid" `Quick test_validation;
    Alcotest.test_case "copier entries are not commit evidence" `Slow
      test_copier_commit_evidence_regression;
    Alcotest.test_case "partial replay spawns no phantom copies" `Slow
      test_partial_phantom_copy_regression;
    Alcotest.test_case "post-decide death resolves as ghost commit" `Slow test_ghost_commit_cell;
    Alcotest.test_case "checkpoint races a buffered prepare" `Slow test_mid_checkpoint_cell;
    Alcotest.test_case "matrix CSV is -j independent" `Slow test_matrix_determinism;
    Alcotest.test_case "knowledge loss detected when last witness dies" `Quick
      test_knowledge_loss_detected;
    Alcotest.test_case "no knowledge loss under full replication" `Quick
      test_no_false_positive_under_full_replication;
  ]
