(* Tests for the interactive managing-site console's command interpreter. *)

module Console = Raid_sim.Console
module Cluster = Raid_core.Cluster

let run_commands ?(sites = 3) ?(items = 10) commands =
  let console = Console.create ~sites ~items () in
  let output = Buffer.create 256 in
  let print line =
    Buffer.add_string output line;
    Buffer.add_char output '\n'
  in
  let quit =
    List.exists
      (fun line -> Console.command console ~print line = `Quit)
      commands
  in
  (console, Buffer.contents output, quit)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec loop i = i + nl <= hl && (String.sub haystack i nl = needle || loop (i + 1)) in
  loop 0

let test_txn_and_status () =
  let _, output, _ = run_commands [ "txn 0 w3 r3"; "status" ] in
  Alcotest.(check bool) "commit reported" true (contains output "T1 committed");
  Alcotest.(check bool) "status table" true (contains output "fully consistent: true")

let test_fail_recover_cycle () =
  let console, output, _ =
    run_commands [ "fail 2"; "txn 0 w5"; "faillocks 2"; "recover 2"; "txn 2 r5"; "check" ]
  in
  Alcotest.(check bool) "failure reported" true (contains output "site 2 failed");
  Alcotest.(check bool) "lock listed" true (contains output "items fail-locked for site 2: 5");
  Alcotest.(check bool) "recovery reported" true (contains output "site 2 recovered");
  Alcotest.(check bool) "copier ran" true (contains output "copiers: 1");
  Alcotest.(check bool) "invariants" true (contains output "all invariants hold");
  Alcotest.(check bool) "consistent" true (Cluster.fully_consistent (Console.cluster console))

let test_terminate () =
  let _, output, _ = run_commands [ "terminate 1"; "txn 0 w2" ] in
  Alcotest.(check bool) "graceful" true (contains output "site 1 terminated gracefully");
  Alcotest.(check bool) "still working" true (contains output "T1 committed")

let test_auto_counts () =
  let console, output, _ = run_commands [ "auto 5" ] in
  Alcotest.(check int) "five outcomes" 5
    (List.length (Cluster.outcomes (Console.cluster console)));
  Alcotest.(check bool) "reported" true (contains output "T5")

let test_db_inspection () =
  let _, output, _ = run_commands [ "txn 0 w3"; "db 1 3" ] in
  Alcotest.(check bool) "copy shown" true (contains output "item 3: value=1 version=1")

let test_trace_and_metrics () =
  let _, output, _ = run_commands [ "txn 0 w1"; "trace 3"; "metrics" ] in
  Alcotest.(check bool) "trace lines" true (contains output "commit_ack");
  Alcotest.(check bool) "counters" true (contains output "txns_committed")

let test_bad_input_is_safe () =
  let _, output, quit =
    run_commands [ "txn"; "txn x w1"; "txn 0 z9"; "fail nine"; "frobnicate"; "recover 0" ]
  in
  Alcotest.(check bool) "usage hints" true (contains output "usage: txn <site> <rN|wN>...");
  Alcotest.(check bool) "unknown hint" true (contains output "unknown command");
  (* recover of an up site raises Invalid_argument; must be caught. *)
  Alcotest.(check bool) "error caught" true (contains output "error:");
  Alcotest.(check bool) "no quit" false quit

let test_quit () =
  let _, _, quit = run_commands [ "status"; "quit" ] in
  Alcotest.(check bool) "quit" true quit

let test_help () =
  let _, output, _ = run_commands [ "help" ] in
  Alcotest.(check bool) "lists commands" true (contains output "faillocks <site>")

let suite =
  [
    Alcotest.test_case "txn and status" `Quick test_txn_and_status;
    Alcotest.test_case "fail/recover cycle" `Quick test_fail_recover_cycle;
    Alcotest.test_case "terminate" `Quick test_terminate;
    Alcotest.test_case "auto" `Quick test_auto_counts;
    Alcotest.test_case "db inspection" `Quick test_db_inspection;
    Alcotest.test_case "trace and metrics" `Quick test_trace_and_metrics;
    Alcotest.test_case "bad input is safe" `Quick test_bad_input_is_safe;
    Alcotest.test_case "quit" `Quick test_quit;
    Alcotest.test_case "help" `Quick test_help;
  ]
