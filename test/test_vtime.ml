module Vtime = Raid_net.Vtime

let test_conversions () =
  Alcotest.(check int) "of_ms" 9000 (Vtime.to_us (Vtime.of_ms 9));
  Alcotest.(check int) "of_ms_f rounds" 2500 (Vtime.to_us (Vtime.of_ms_f 2.5));
  Alcotest.(check int) "of_ms_f rounds nearest" 1001 (Vtime.to_us (Vtime.of_ms_f 1.0011));
  Alcotest.check (Alcotest.float 1e-9) "to_ms" 9.0 (Vtime.to_ms (Vtime.of_ms 9))

let test_arithmetic () =
  let a = Vtime.of_ms 5 and b = Vtime.of_ms 3 in
  Alcotest.(check int) "add" 8000 (Vtime.to_us (Vtime.add a b));
  Alcotest.(check int) "sub" 2000 (Vtime.to_us (Vtime.sub a b));
  Alcotest.(check int) "compare" 1 (Vtime.compare a b);
  Alcotest.(check int) "zero" 0 (Vtime.to_us Vtime.zero)

let test_pp () =
  Alcotest.(check string) "pretty" "186.00 ms" (Format.asprintf "%a" Vtime.pp (Vtime.of_ms 186))

let suite =
  [
    Alcotest.test_case "conversions" `Quick test_conversions;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
