(* Loopback round-trip of the live soak harness: a real socket client
   against [Soak] on an ephemeral port, pumped from this same thread —
   write the request, {!Soak.tick} until the response arrives, read to
   EOF.  Covers the raid-serve acceptance path end to end: health,
   metrics, operator fail/recover with visible fail-lock movement, load
   adjustment and graceful shutdown. *)

module Soak = Raid_sim.Soak
module Cluster = Raid_core.Cluster
module Json = Raid_obs.Json

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

(* Issue one request and pump the soak until the server closes the
   connection (every response is Connection: close). *)
let request soak ~meth ?(body = "") path =
  let fd = connect (Soak.port soak) in
  let payload =
    Printf.sprintf "%s %s HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s" meth path
      (String.length body) body
  in
  let _ = Unix.write_substring fd payload 0 (String.length payload) in
  let buffer = Buffer.create 512 and chunk = Bytes.create 4096 in
  let deadline = 200 in
  let rec read_all tries =
    if tries = 0 then Alcotest.fail "no response within the pump budget";
    Soak.tick ~timeout:0.01 soak;
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buffer chunk 0 n;
      read_all (tries - 1)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      read_all (tries - 1)
  in
  Unix.set_nonblock fd;
  read_all deadline;
  Unix.close fd;
  let raw = Buffer.contents buffer in
  match String.index_opt raw ' ' with
  | None -> Alcotest.failf "malformed response: %S" raw
  | Some i ->
    let status = int_of_string (String.sub raw (i + 1) 3) in
    let body =
      let rec find j =
        if j + 4 > String.length raw then None
        else if String.sub raw j 4 = "\r\n\r\n" then Some j
        else find (j + 1)
      in
      match find 0 with
      | Some j -> String.sub raw (j + 4) (String.length raw - j - 4)
      | None -> ""
    in
    (status, body)

let get soak path = request soak ~meth:"GET" path
let post soak ?body path = request soak ~meth:"POST" ?body path

let json_exn body =
  match Json.parse body with Ok v -> v | Error m -> Alcotest.failf "bad JSON: %s (%s)" m body

let int_member key json =
  match Json.member key json with
  | Some (Json.Int n) -> n
  | _ -> Alcotest.failf "missing int field %S" key

let with_soak ?(sites = 6) f =
  let soak =
    Soak.create
      (Soak.make_config ~sites ~items:60 ~accel:0.0 ~seed:7 ~port:0 ())
  in
  Fun.protect ~finally:(fun () -> ignore (Soak.shutdown soak)) (fun () -> f soak)

let test_round_trip () =
  with_soak (fun soak ->
      (* Let the unthrottled stream build some history first. *)
      for _ = 1 to 5 do
        Soak.tick ~timeout:0.0 soak
      done;
      let status, body = get soak "/health" in
      Alcotest.(check int) "health 200" 200 status;
      Alcotest.(check bool) "health reports ok" true
        (Json.member "status" (json_exn body) = Some (Json.Str "ok"));
      let status, body = get soak "/metrics" in
      Alcotest.(check int) "metrics 200" 200 status;
      let contains needle =
        let rec go i =
          i + String.length needle <= String.length body
          && (String.sub body i (String.length needle) = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "exposition has engine counters" true
        (contains "raid_engine_events_total");
      Alcotest.(check bool) "exposition has build info" true (contains "raid_build_info{");
      Alcotest.(check bool) "exposition has process gauges" true
        (contains "raid_process_uptime_seconds");
      let status, body = get soak "/txns" in
      Alcotest.(check int) "txns 200" 200 status;
      Alcotest.(check bool) "txns committed > 0" true
        (int_member "committed" (json_exn body) > 0))

let test_fail_and_recover () =
  with_soak (fun soak ->
      for _ = 1 to 3 do
        Soak.tick ~timeout:0.0 soak
      done;
      let site_field body field =
        match Json.member "sites" (json_exn body) with
        | Some (Json.Arr sites) -> int_member field (List.nth sites 1)
        | _ -> Alcotest.fail "missing sites array"
      in
      let status, _ = post soak "/sites/1/fail" in
      Alcotest.(check int) "fail 200" 200 status;
      Alcotest.(check bool) "cluster sees site 1 down" false
        (Cluster.alive (Soak.cluster soak) 1);
      let status, _ = post soak "/sites/1/fail" in
      Alcotest.(check int) "double fail 409" 409 status;
      (* Fail-locks for the down site accumulate as the stream writes. *)
      for _ = 1 to 5 do
        Soak.tick ~timeout:0.0 soak
      done;
      let _, body = get soak "/sites" in
      let locked = site_field body "faillocks" in
      Alcotest.(check bool) "fail-locks accumulated for the down site" true (locked > 0);
      let status, _ = post soak "/sites/1/recover" in
      Alcotest.(check int) "recover 200" 200 status;
      Alcotest.(check bool) "site 1 back up" true (Cluster.alive (Soak.cluster soak) 1);
      (* On-demand recovery refreshes copies lazily: the continuing
         write stream drains the remaining fail-locks. *)
      let drained = ref (-1) in
      (try
         for _ = 1 to 60 do
           Soak.tick ~timeout:0.0 soak;
           let _, body = get soak "/sites" in
           let left = site_field body "faillocks" in
           if left = 0 then begin
             drained := 0;
             raise Exit
           end
         done
       with Exit -> ());
      Alcotest.(check int) "stream drains the fail-locks after recovery" 0 !drained;
      let status, _ = post soak "/sites/1/recover" in
      Alcotest.(check int) "recover while up is 409" 409 status;
      let status, _ = post soak "/sites/99/fail" in
      Alcotest.(check int) "unknown site is 404" 404 status)

(* The observatory endpoints: /incidents reports tenant-0 recovery
   timelines assembled live, /txns/:id serves one transaction's span
   tree — both bodies must parse and carry the documented fields. *)
let test_observatory_endpoints () =
  with_soak (fun soak ->
      for _ = 1 to 3 do
        Soak.tick ~timeout:0.0 soak
      done;
      (* No failures yet: an empty but well-formed incident report. *)
      let status, body = get soak "/incidents" in
      Alcotest.(check int) "incidents 200" 200 status;
      let json = json_exn body in
      Alcotest.(check int) "no incidents before a failure" 0 (int_member "count" json);
      Alcotest.(check bool) "dropped counter present" true
        (Json.member "dropped_trace_entries" json <> None);
      (* Unknown and malformed span lookups. *)
      let status, _ = get soak "/txns/999999" in
      Alcotest.(check int) "unknown txn 404" 404 status;
      let status, _ = get soak "/txns/not-a-number" in
      Alcotest.(check int) "malformed txn id 404" 404 status;
      (* A transaction's span tree is served by id: ids are dense from
         1, so probe for the first one still in the ring. *)
      let found_id, body =
        let rec probe id =
          if id > 50 then Alcotest.fail "no span tree for any txn id in 1..50"
          else
            match get soak (Printf.sprintf "/txns/%d" id) with
            | 200, body -> (id, body)
            | _ -> probe (id + 1)
        in
        probe 1
      in
      let span = json_exn body in
      Alcotest.(check int) "span is for the requested txn" found_id (int_member "txn" span);
      Alcotest.(check bool) "span has a critical path" true
        (Json.member "critical_path" span <> None);
      (* Fail and recover a site; the incident shows up with tiling
         phases once the stream drains the fail-locks. *)
      let status, _ = post soak "/sites/1/fail" in
      Alcotest.(check int) "fail 200" 200 status;
      for _ = 1 to 5 do
        Soak.tick ~timeout:0.0 soak
      done;
      let status, _ = post soak "/sites/1/recover" in
      Alcotest.(check int) "recover 200" 200 status;
      for _ = 1 to 30 do
        Soak.tick ~timeout:0.0 soak
      done;
      let _, body = get soak "/incidents" in
      let json = json_exn body in
      Alcotest.(check bool) "an incident is reported" true (int_member "count" json >= 1);
      match Json.member "incidents" json with
      | Some (Json.Arr (incident :: _)) ->
        Alcotest.(check int) "incident names the failed site" 1 (int_member "site" incident);
        Alcotest.(check bool) "incident carries phases" true
          (Json.member "phases" incident <> None)
      | _ -> Alcotest.fail "missing incidents array")

let test_last_site_guard () =
  with_soak ~sites:2 (fun soak ->
      Soak.tick ~timeout:0.0 soak;
      let status, _ = post soak "/sites/0/fail" in
      Alcotest.(check int) "first fail ok" 200 status;
      let status, body = post soak "/sites/1/fail" in
      Alcotest.(check int) "last operational site refuses" 409 status;
      Alcotest.(check bool) "explains why" true
        (Json.member "error" (json_exn body) <> None);
      (* The stream idles rather than crashing with no coordinator. *)
      Soak.tick ~timeout:0.0 soak;
      let status, _ = get soak "/health" in
      Alcotest.(check int) "still serving" 200 status)

let test_load_adjustment () =
  with_soak (fun soak ->
      Soak.tick ~timeout:0.0 soak;
      let status, body = post soak ~body:{|{"write_prob":0.9,"max_ops":3,"rate":50}|} "/load" in
      Alcotest.(check int) "load 200" 200 status;
      let json = json_exn body in
      Alcotest.(check int) "max_ops echoed" 3 (int_member "max_ops" json);
      let status, _ = post soak ~body:{|{"write_prob":7}|} "/load" in
      Alcotest.(check int) "out-of-range write_prob is 400" 400 status;
      let status, _ = post soak ~body:"not json" "/load" in
      Alcotest.(check int) "unparsable body is 400" 400 status)

let test_shutdown_summary () =
  let soak = Soak.create (Soak.make_config ~sites:4 ~items:40 ~accel:0.0 ~port:0 ()) in
  for _ = 1 to 4 do
    Soak.tick ~timeout:0.0 soak
  done;
  let port = Soak.port soak in
  let s = Soak.shutdown soak in
  Alcotest.(check bool) "work happened" true (s.Soak.submitted > 0 && s.Soak.events > 0);
  Alcotest.(check bool) "summary consistent" true
    (s.Soak.committed + s.Soak.aborted = s.Soak.submitted);
  let s2 = Soak.shutdown soak in
  Alcotest.(check bool) "shutdown idempotent" true (s2.Soak.submitted = s.Soak.submitted);
  (* The listener is really gone. *)
  Alcotest.check_raises "port closed"
    (Unix.Unix_error (Unix.ECONNREFUSED, "connect", "")) (fun () ->
      let fd = connect port in
      Unix.close fd)

let suite =
  [
    Alcotest.test_case "loopback round trip" `Quick test_round_trip;
    Alcotest.test_case "fail and recover via POST" `Quick test_fail_and_recover;
    Alcotest.test_case "observatory endpoints" `Quick test_observatory_endpoints;
    Alcotest.test_case "last operational site guard" `Quick test_last_site_guard;
    Alcotest.test_case "live load adjustment" `Quick test_load_adjustment;
    Alcotest.test_case "shutdown summary" `Quick test_shutdown_summary;
  ]
