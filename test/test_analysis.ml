(* Tests for the closed-form fail-lock model and for the scaling /
   multi-seed reporting helpers. *)

module Analysis = Raid_sim.Analysis
module Scaling = Raid_sim.Scaling
module Stats = Raid_util.Stats

let feq tolerance = Alcotest.float tolerance

let test_q_properties () =
  let q ?(num_items = 50) ?(max_ops = 5) write_prob =
    Analysis.item_write_probability ~num_items ~max_ops ~write_prob
  in
  Alcotest.check (feq 1e-12) "no writes, no locking" 0.0 (q 0.0);
  Alcotest.(check bool) "monotone in write_prob" true (q 0.25 < q 0.5 && q 0.5 < q 0.75);
  (* One op, p=1: the item is written with probability 1/num_items. *)
  Alcotest.check (feq 1e-12) "single certain write" 0.02
    (Analysis.item_write_probability ~num_items:50 ~max_ops:1 ~write_prob:1.0)

let test_outage_saturates () =
  let q = Analysis.item_write_probability ~num_items:50 ~max_ops:5 ~write_prob:0.5 in
  let l100 = Analysis.expected_locked_after ~q ~num_items:50 ~txns:100 in
  let l1000 = Analysis.expected_locked_after ~q ~num_items:50 ~txns:1000 in
  Alcotest.(check bool) "over 90% at 100 txns" true (l100 > 45.0);
  Alcotest.(check bool) "saturates below item count" true (l1000 <= 50.0 && l1000 > l100)

let test_clearing_convex () =
  let q = Analysis.item_write_probability ~num_items:50 ~max_ops:5 ~write_prob:0.5 in
  let first10 = Analysis.expected_txns_to_clear ~q ~from_locks:47 ~to_locks:37 in
  let last10 = Analysis.expected_txns_to_clear ~q ~from_locks:10 ~to_locks:0 in
  Alcotest.(check bool)
    (Printf.sprintf "tail dominates (%.1f vs %.1f)" first10 last10)
    true (last10 > 5.0 *. first10)

let test_clearing_additive () =
  let q = 0.03 in
  let direct = Analysis.expected_txns_to_clear ~q ~from_locks:40 ~to_locks:10 in
  let split =
    Analysis.expected_txns_to_clear ~q ~from_locks:40 ~to_locks:20
    +. Analysis.expected_txns_to_clear ~q ~from_locks:20 ~to_locks:10
  in
  Alcotest.check (feq 1e-9) "decay is additive" direct split

let test_clearing_validation () =
  Alcotest.check_raises "bad q" (Invalid_argument "Analysis: q outside (0,1]") (fun () ->
      ignore (Analysis.expected_txns_to_clear ~q:0.0 ~from_locks:5 ~to_locks:0));
  Alcotest.check_raises "bad range" (Invalid_argument "Analysis: bad lock range") (fun () ->
      ignore (Analysis.expected_txns_to_clear ~q:0.1 ~from_locks:5 ~to_locks:6))

let test_model_matches_paper () =
  (* The analytical model alone should land near the paper's published
     single-run numbers. *)
  let q = Analysis.item_write_probability ~num_items:50 ~max_ops:5 ~write_prob:0.5 in
  let peak = Analysis.expected_locked_after ~q ~num_items:50 ~txns:100 in
  let full =
    Analysis.expected_txns_to_clear ~q ~from_locks:(int_of_float (Float.round peak)) ~to_locks:0
  in
  Alcotest.(check bool)
    (Printf.sprintf "full recovery %.0f near paper's 160" full)
    true
    (full > 130.0 && full < 200.0)

let test_model_matches_simulation () =
  let q = Analysis.item_write_probability ~num_items:50 ~max_ops:5 ~write_prob:0.5 in
  let model_peak = Analysis.expected_locked_after ~q ~num_items:50 ~txns:100 in
  let summary = Scaling.experiment2_seeds ~seeds:(List.init 10 (fun i -> i + 1)) () in
  Alcotest.(check bool)
    (Printf.sprintf "peak: model %.1f vs simulated %.1f" model_peak summary.Scaling.peak.Stats.mean)
    true
    (Float.abs (model_peak -. summary.Scaling.peak.Stats.mean) < 3.0)

let test_control1_scaling_directions () =
  let rows = Scaling.control1_scaling ~site_counts:[ 2; 8 ] ~item_counts:[ 50; 400 ] () in
  match rows with
  | [ small_sites; large_sites; small_db; large_db ] ->
    Alcotest.(check bool) "recovering grows with sites" true
      (large_sites.Scaling.recovering_ms > small_sites.Scaling.recovering_ms);
    Alcotest.(check bool) "operational flat in sites" true
      (Float.abs (large_sites.Scaling.operational_ms -. small_sites.Scaling.operational_ms) < 1.0);
    Alcotest.(check bool) "operational grows with db size" true
      (large_db.Scaling.operational_ms > small_db.Scaling.operational_ms);
    Alcotest.(check bool) "control-2 flat" true
      (Float.abs (large_db.Scaling.control2_ms -. small_db.Scaling.control2_ms) < 1.0)
  | _ -> Alcotest.fail "unexpected row count"

let suite =
  [
    Alcotest.test_case "write probability properties" `Quick test_q_properties;
    Alcotest.test_case "outage curve saturates" `Quick test_outage_saturates;
    Alcotest.test_case "clearing is convex" `Quick test_clearing_convex;
    Alcotest.test_case "clearing is additive" `Quick test_clearing_additive;
    Alcotest.test_case "clearing validation" `Quick test_clearing_validation;
    Alcotest.test_case "model matches the paper" `Quick test_model_matches_paper;
    Alcotest.test_case "model matches the simulation" `Slow test_model_matches_simulation;
    Alcotest.test_case "control-1 scaling directions" `Slow test_control1_scaling_directions;
  ]
