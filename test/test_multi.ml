(* Tests for the multi-tenant engine: the determinism contract (results
   and CSV are a pure function of the spec — independent of the domain
   count and of the WAL mode), the shared-WAL batching win, tenant crash
   isolation, and the shared log's accounting. *)

module Multi = Raid_multi
module Shared_wal = Raid_storage.Shared_wal
module Pool = Raid_par.Pool
module Trace = Raid_obs.Trace

let small_spec ?(wal_mode = Multi.Shared { group_size = 16 }) ?(fail_every = 6) () =
  Multi.spec ~tenants:24 ~shards:4 ~sites:5 ~items:32 ~txns:12 ~batch:4 ~seed:7 ~wal_mode
    ~fail_every ()

let tenant_fields (r : Multi.tenant_result) =
  (r.Multi.tenant, r.Multi.shard, r.Multi.submitted, r.Multi.committed, r.Multi.aborted,
   r.Multi.events, r.Multi.recovered)

let with_domains n f =
  let before = Pool.default_domains () in
  Pool.set_default_domains n;
  Fun.protect ~finally:(fun () -> Pool.set_default_domains before) f

(* The headline contract: per-tenant results and the full CSV are
   byte-identical whether the shards run sequentially or on 4 domains. *)
let test_jobs_identity () =
  let spec = small_spec () in
  let seq = with_domains 1 (fun () -> Multi.run spec) in
  let par = with_domains 4 (fun () -> Multi.run spec) in
  Alcotest.(check int) "tenant count" 24 (Array.length seq.Multi.results);
  Array.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "tenant %d identical" i)
        true
        (tenant_fields r = tenant_fields par.Multi.results.(i)))
    seq.Multi.results;
  Alcotest.(check string) "csv byte-identical" (Multi.csv seq) (Multi.csv par)

(* WAL mode is a host-side cost model: switching it must not move a
   single protocol outcome, only the flush accounting. *)
let test_wal_mode_invariance () =
  let shared = Multi.run (small_spec ~wal_mode:(Multi.Shared { group_size = 16 }) ()) in
  let per_tenant = Multi.run (small_spec ~wal_mode:Multi.Per_tenant ()) in
  Array.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "tenant %d invariant" i)
        true
        (tenant_fields r = tenant_fields per_tenant.Multi.results.(i)))
    shared.Multi.results;
  let flushes r =
    Array.fold_left (fun a (w : Shared_wal.stats) -> a + w.Shared_wal.flushes) 0 r.Multi.wal
  in
  let records r =
    Array.fold_left (fun a (w : Shared_wal.stats) -> a + w.Shared_wal.records) 0 r.Multi.wal
  in
  Alcotest.(check int) "same records either way" (records shared) (records per_tenant);
  Alcotest.(check bool)
    (Printf.sprintf "group commit batches: %d shared < %d per-tenant flushes" (flushes shared)
       (flushes per_tenant))
    true
    (flushes shared < flushes per_tenant)

(* Same spec, same seed: rerunning is bit-stable (no hidden global
   state leaks between runs). *)
let test_rerun_stable () =
  let spec = small_spec () in
  Alcotest.(check string) "two runs, one CSV" (Multi.csv (Multi.run spec))
    (Multi.csv (Multi.run spec))

(* A tenant's crashes are invisible to every other tenant: the protocol
   trace of a non-crashing tenant is event-for-event identical whether
   its neighbors crash or not. *)
let test_crash_isolation () =
  let collect fail_every =
    let collectors = Hashtbl.create 24 in
    let make_sink tenant =
      let c = Trace.create ~capacity:100_000 () in
      Hashtbl.replace collectors tenant c;
      Some (Trace.sink c)
    in
    (* Sequentially: the collectors table is mutated from make_sink. *)
    with_domains 1 (fun () -> ignore (Multi.run ~make_sink (small_spec ~fail_every ())));
    collectors
  in
  let calm = collect 0 in
  let stormy = collect 6 in
  let perturbed = ref 0 in
  for tenant = 0 to 23 do
    let entries c = Trace.entries (Hashtbl.find c tenant) in
    if tenant mod 6 = 0 then begin
      (* Sanity: the failure plan really did change these streams. *)
      if entries calm <> entries stormy then incr perturbed
    end
    else
      Alcotest.(check bool)
        (Printf.sprintf "tenant %d trace unperturbed" tenant)
        true
        (entries calm = entries stormy)
  done;
  Alcotest.(check int) "crashing tenants did diverge" 4 !perturbed

let test_spec_validation () =
  let invalid msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  invalid "Multi.spec: non-positive tenants" (fun () -> ignore (Multi.spec ~tenants:0 ()));
  invalid "Multi.spec: need at least 2 sites per tenant" (fun () ->
      ignore (Multi.spec ~tenants:1 ~sites:1 ()));
  invalid "Multi.spec: non-positive group_size" (fun () ->
      ignore (Multi.spec ~tenants:1 ~wal_mode:(Multi.Shared { group_size = 0 }) ()))

(* {2 Shared_wal accounting} *)

let test_shared_wal_grouping () =
  let log = Shared_wal.create ~group_size:4 () in
  let h = Shared_wal.attach log ~tenant:3 ~site:1 in
  for _ = 1 to 10 do
    Shared_wal.record h Shared_wal.Redo ~size:32
  done;
  (* 10 records with group size 4: auto-flush at 4 and 8, two pending. *)
  let s = Shared_wal.stats log in
  Alcotest.(check int) "records" 10 s.Shared_wal.records;
  Alcotest.(check int) "auto flushes" 2 s.Shared_wal.flushes;
  Shared_wal.flush log;
  let s = Shared_wal.stats log in
  Alcotest.(check int) "final flush" 3 s.Shared_wal.flushes;
  Alcotest.(check bool) "pages padded" true (s.Shared_wal.pages >= 3);
  (* Flushing an empty log is a no-op, not an empty page. *)
  Shared_wal.flush log;
  Alcotest.(check int) "idempotent flush" 3 (Shared_wal.stats log).Shared_wal.flushes

let test_shared_wal_digest () =
  let write_stream ~tenant =
    let log = Shared_wal.create ~group_size:8 () in
    let h = Shared_wal.attach log ~tenant ~site:0 in
    Shared_wal.record h Shared_wal.Redo ~size:24;
    Shared_wal.record h Shared_wal.Prepare ~size:48;
    Shared_wal.flush log;
    (Shared_wal.stats log).Shared_wal.digest
  in
  Alcotest.(check bool) "same stream, same digest" true
    (write_stream ~tenant:1 = write_stream ~tenant:1);
  Alcotest.(check bool) "tenant id is part of the record" true
    (write_stream ~tenant:1 <> write_stream ~tenant:2)

let suite =
  [
    Alcotest.test_case "results and csv identical at -j1 and -j4" `Quick test_jobs_identity;
    Alcotest.test_case "wal mode never moves protocol outcomes" `Quick test_wal_mode_invariance;
    Alcotest.test_case "rerun is bit-stable" `Quick test_rerun_stable;
    Alcotest.test_case "crashing tenants never perturb neighbors" `Quick test_crash_isolation;
    Alcotest.test_case "spec validation" `Quick test_spec_validation;
    Alcotest.test_case "shared wal: group commit accounting" `Quick test_shared_wal_grouping;
    Alcotest.test_case "shared wal: digest covers tenant stream" `Quick test_shared_wal_digest;
  ]
