(* Golden-trace conformance tests: the exact message sequences of the
   protocol's main paths, straight from Appendix A. *)

module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Cost_model = Raid_core.Cost_model
module Txn = Raid_core.Txn
module Timeline = Raid_sim.Timeline

let cluster ?(num_sites = 3) () =
  Cluster.create ~settings:(Cluster.settings ~trace:true ())
    (Config.make ~cost:Cost_model.free ~num_sites ~num_items:8 ())

let test_plain_commit_trace () =
  let c = cluster () in
  let id = Cluster.next_txn_id c in
  ignore (Cluster.submit c ~coordinator:0 (Txn.make ~id [ Txn.Write 3 ]));
  Alcotest.(check (list string)) "two-phase commit sequence"
    [
      "begin_txn(1)";
      "prepare(1,1 writes,0 cleared)";  (* 0 -> 1 *)
      "prepare(1,1 writes,0 cleared)";  (* 0 -> 2 *)
      "prepare_ack(1)";
      "prepare_ack(1)";
      "commit(1)";
      "commit(1)";
      "commit_ack(1)";
      "commit_ack(1)";
    ]
    (Timeline.message_kinds c)

let test_copier_trace () =
  let c = cluster () in
  Cluster.fail_site c 2;
  let id = Cluster.next_txn_id c in
  ignore (Cluster.submit c ~coordinator:0 (Txn.make ~id [ Txn.Write 3 ]));
  ignore (Cluster.recover_site c 2);
  let id = Cluster.next_txn_id c in
  ignore (Cluster.submit c ~coordinator:2 (Txn.make ~id [ Txn.Read 3 ]));
  let kinds = Timeline.message_kinds c in
  (* The copier must run before phase 1 begins (Appendix A). *)
  let index_of needle =
    let rec find i = function
      | [] -> Alcotest.failf "%s not in trace" needle
      | k :: rest -> if k = needle then i else find (i + 1) rest
    in
    find 0 kinds
  in
  Alcotest.(check bool) "copy request precedes reply" true
    (index_of "copy_request(2,1 items)" < index_of "copy_reply(2,1 items)");
  Alcotest.(check bool) "reply precedes phase 1" true
    (index_of "copy_reply(2,1 items)" < index_of "prepare(2,0 writes,0 cleared)");
  Alcotest.(check bool) "special clear transaction ran" true
    (List.mem "faillocks_cleared(site 2,1 items)" kinds)

let test_recovery_trace () =
  let c = cluster () in
  Cluster.fail_site c 1;
  ignore (Cluster.recover_site c 1);
  let kinds = Timeline.message_kinds c in
  (* Control-2 from the witness, then control-1: announcements to every
     other site and exactly one state shipment. *)
  Alcotest.(check bool) "failure announce" true
    (List.mem "failure_announce(1)" kinds);
  let announces =
    List.length (List.filter (fun k -> String.length k >= 17 && String.sub k 0 17 = "recovery_announce") kinds)
  in
  Alcotest.(check int) "announce to both other sites" 2 announces;
  Alcotest.(check int) "one state shipment" 1
    (List.length (List.filter (( = ) "recovery_state") kinds))

let test_render_format () =
  let c = cluster () in
  let id = Cluster.next_txn_id c in
  ignore (Cluster.submit c ~coordinator:0 (Txn.make ~id [ Txn.Write 1 ]));
  let rendered = Timeline.render c in
  Alcotest.(check bool) "mentions manager source" true
    (String.length rendered > 0
    &&
    let lines = String.split_on_char '\n' rendered in
    List.exists (fun l -> String.length l > 0 && String.contains l 'm' (* mgr *)) lines);
  (* since/limit filters *)
  let limited = Timeline.render ~limit:2 c in
  Alcotest.(check int) "limit respected" 2
    (List.length (String.split_on_char '\n' limited))

let test_undeliverable_marked () =
  let c = Cluster.create ~settings:(Cluster.settings ~detection:Cluster.On_timeout ~trace:true ())
      (Config.make ~cost:Cost_model.free ~num_sites:2 ~num_items:4 ())
  in
  Cluster.fail_site c 1;
  let id = Cluster.next_txn_id c in
  ignore (Cluster.submit c ~coordinator:0 (Txn.make ~id [ Txn.Write 0 ]));
  let rendered = Timeline.render c in
  Alcotest.(check bool) "failed delivery marked" true
    (let lines = String.split_on_char '\n' rendered in
     List.exists
       (fun l ->
         String.length l > 12
         &&
         let rec has i = i + 2 <= String.length l && (String.sub l i 2 = "!!" || has (i + 1)) in
         has 0)
       lines)

let suite =
  [
    Alcotest.test_case "plain commit golden trace" `Quick test_plain_commit_trace;
    Alcotest.test_case "copier golden trace" `Quick test_copier_trace;
    Alcotest.test_case "recovery golden trace" `Quick test_recovery_trace;
    Alcotest.test_case "render format" `Quick test_render_format;
    Alcotest.test_case "undeliverable marked" `Quick test_undeliverable_marked;
  ]
