(* Property-based testing of the full protocol: random schedules of
   transactions, site failures and recoveries, after which every DESIGN.md
   invariant must hold, and after healing plus a full write pass the
   cluster must converge to identical, lock-free copies. *)

module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Cost_model = Raid_core.Cost_model
module Txn = Raid_core.Txn
module Workload = Raid_core.Workload
module Metrics = Raid_core.Metrics
module Site = Raid_core.Site
module Invariant = Raid_core.Invariant
module Rng = Raid_util.Rng

type step = Run_txn | Fail_one | Recover_one

let interpret_step cluster rng workload operational_log = function
  | Run_txn -> begin
    let operational =
      List.filter
        (fun s -> not (Site.is_waiting (Cluster.site cluster s)))
        (Cluster.alive_sites cluster)
    in
    match operational with
    | [] -> ()
    | sites ->
      let coordinator = Rng.choose rng sites in
      let id = Cluster.next_txn_id cluster in
      let outcome = Cluster.submit cluster ~coordinator (Workload.next workload ~id) in
      if outcome.Metrics.committed then
        Hashtbl.replace operational_log id (Cluster.alive_sites cluster)
  end
  | Fail_one -> begin
    (* Never induce total failure: the protocol cannot restart from zero
       operational sites (no donor), which the paper does not cover. *)
    match Cluster.alive_sites cluster with
    | _ :: _ :: _ as alive -> Cluster.fail_site cluster (Rng.choose rng alive)
    | _ -> ()
  end
  | Recover_one -> begin
    let down =
      List.filter
        (fun s -> not (Cluster.alive cluster s))
        (List.init (Cluster.num_sites cluster) Fun.id)
    in
    match down with
    | [] -> ()
    | down -> ignore (Cluster.recover_site cluster (Rng.choose rng down))
  end

let run_schedule ~num_sites ~num_items ~detection ~recovery ~seed steps =
  let config = Config.make ~cost:Cost_model.free ~recovery ~num_sites ~num_items () in
  let cluster = Cluster.create ~settings:(Cluster.settings ~detection ()) config in
  let rng = Rng.create seed in
  let workload =
    Workload.create (Workload.Uniform { max_ops = 4; write_prob = 0.5 }) ~num_items
      ~rng:(Rng.split rng)
  in
  let operational_log = Hashtbl.create 64 in
  List.iter (interpret_step cluster rng workload operational_log) steps;
  (cluster, rng, workload, operational_log)

let heal cluster =
  let down () =
    List.filter
      (fun s -> not (Cluster.alive cluster s))
      (List.init (Cluster.num_sites cluster) Fun.id)
  in
  let rec loop budget =
    if budget > 0 then begin
      match down () with
      | [] -> ()
      | sites ->
        List.iter (fun s -> ignore (Cluster.recover_site cluster s)) sites;
        loop (budget - 1)
    end
  in
  loop 4

let wash cluster operational_log =
  (* One write per item from an operational coordinator clears every
     fail-lock and refreshes every copy. *)
  let num_items = (Cluster.config cluster).Config.num_items in
  for item = 0 to num_items - 1 do
    let id = Cluster.next_txn_id cluster in
    let coordinator = List.hd (Cluster.alive_sites cluster) in
    let outcome = Cluster.submit cluster ~coordinator (Txn.make ~id [ Txn.Write item ]) in
    if outcome.Metrics.committed then
      Hashtbl.replace operational_log id (Cluster.alive_sites cluster)
  done

let gen_steps =
  QCheck.Gen.(
    list_size (int_range 5 40)
      (frequency [ (6, return Run_txn); (2, return Fail_one); (2, return Recover_one) ]))

let arbitrary_schedule =
  QCheck.make
    ~print:(fun steps ->
      String.concat ";"
        (List.map
           (function Run_txn -> "txn" | Fail_one -> "fail" | Recover_one -> "recover")
           steps))
    gen_steps

let check_config ~num_sites ~detection ~recovery name =
  QCheck.Test.make ~name ~count:40
    QCheck.(pair arbitrary_schedule small_int)
    (fun (steps, seed) ->
      let cluster, _rng, _workload, operational_log =
        run_schedule ~num_sites ~num_items:12 ~detection ~recovery ~seed steps
      in
      let ok_mid =
        match Invariant.all cluster with
        | Ok () -> true
        | Error message -> QCheck.Test.fail_reportf "mid-schedule: %s" message
      in
      let durable_mid =
        match
          Invariant.write_durability cluster ~operational_at_commit:(fun id ->
              Option.value ~default:[] (Hashtbl.find_opt operational_log id))
        with
        | Ok () -> true
        | Error message -> QCheck.Test.fail_reportf "durability: %s" message
      in
      heal cluster;
      wash cluster operational_log;
      let converged =
        match Invariant.convergence cluster with
        | Ok () -> true
        | Error message -> QCheck.Test.fail_reportf "after heal+wash: %s" message
      in
      ok_mid && durable_mid && converged)

let prop_immediate =
  check_config ~num_sites:3 ~detection:Cluster.Immediate ~recovery:Config.On_demand
    "random schedules, 3 sites, immediate detection"

let prop_timeout =
  check_config ~num_sites:3 ~detection:Cluster.On_timeout ~recovery:Config.On_demand
    "random schedules, 3 sites, timeout detection"

let prop_four_sites =
  check_config ~num_sites:4 ~detection:Cluster.Immediate ~recovery:Config.On_demand
    "random schedules, 4 sites"

let prop_two_step =
  check_config ~num_sites:3 ~detection:Cluster.Immediate
    ~recovery:(Config.Two_step { threshold = 0.5; batch_size = 3 })
    "random schedules with two-step recovery"

let prop_two_sites =
  check_config ~num_sites:2 ~detection:Cluster.Immediate ~recovery:Config.On_demand
    "random schedules, 2 sites (paper's Figure 1/2 setting)"

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_immediate; prop_timeout; prop_four_sites; prop_two_step; prop_two_sites ]
