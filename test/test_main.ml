let () =
  Alcotest.run "raid"
    [
      ("rng", Test_rng.suite);
      ("bitset", Test_bitset.suite);
      ("stats", Test_stats.suite);
      ("vtime", Test_vtime.suite);
      ("heap", Test_heap.suite);
      ("engine", Test_engine.suite);
      ("engine-props", Test_engine_props.suite);
      ("par", Test_par.suite);
      ("storage", Test_storage.suite);
      ("session", Test_session.suite);
      ("faillock", Test_faillock.suite);
      ("txn", Test_txn.suite);
      ("workload", Test_workload.suite);
      ("cost-model", Test_cost_model.suite);
      ("render", Test_render.suite);
      ("protocol", Test_protocol.suite);
      ("recovery", Test_recovery.suite);
      ("durability", Test_durability.suite);
      ("baselines", Test_baselines.suite);
      ("invariants", Test_invariants.suite);
      ("concurrency", Test_concurrency.suite);
      ("partition", Test_partition.suite);
      ("termination", Test_termination.suite);
      ("obs", Test_obs.suite);
      ("telemetry", Test_telemetry.suite);
      ("sim", Test_sim.suite);
      ("throughput", Test_throughput.suite);
      ("analysis", Test_analysis.suite);
      ("timeline", Test_timeline.suite);
      ("misc", Test_misc.suite);
      ("experiment-reports", Test_experiment_reports.suite);
      ("ablations", Test_ablations.suite);
      ("console", Test_console.suite);
      ("soak", Test_soak.suite);
    ]
