module Stats = Raid_util.Stats

let feq = Alcotest.float 1e-9

let test_mean () =
  Alcotest.check feq "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.check feq "singleton" 5.0 (Stats.mean [ 5.0 ])

let test_mean_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats: empty sample list") (fun () ->
      ignore (Stats.mean []))

let test_stddev () =
  (* sample stddev of {1,3} is sqrt(2); of the classic 8-value set, ~2.138 *)
  Alcotest.check feq "pair" (sqrt 2.0) (Stats.stddev [ 1.0; 3.0 ]);
  Alcotest.check (Alcotest.float 1e-3) "eight values" 2.138
    (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ]);
  Alcotest.check feq "single sample" 0.0 (Stats.stddev [ 42.0 ])

let test_percentile () =
  let samples = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.check feq "p0" 1.0 (Stats.percentile 0.0 samples);
  Alcotest.check feq "p50" 3.0 (Stats.percentile 0.5 samples);
  Alcotest.check feq "p100" 5.0 (Stats.percentile 1.0 samples);
  Alcotest.check feq "p25 interpolates" 2.0 (Stats.percentile 0.25 samples);
  Alcotest.check feq "p125 between ranks" 1.5 (Stats.percentile 0.125 samples)

let test_percentile_small_samples () =
  (* High percentiles of small samples: rank p*(n-1) interpolates toward
     the max instead of snapping onto it, and the boundary indices stay
     in range (the regression this pins was an unclamped floor of the
     rank). *)
  Alcotest.check feq "p99 of a singleton" 7.0 (Stats.percentile 0.99 [ 7.0 ]);
  Alcotest.check feq "p99 of a pair" 1.99 (Stats.percentile 0.99 [ 1.0; 2.0 ]);
  let ten = List.init 10 (fun i -> float_of_int (i + 1)) in
  (* rank = 0.99 * 9 = 8.91 -> 9 + 0.91 * (10 - 9) *)
  Alcotest.check feq "p99 of ten" 9.91 (Stats.percentile 0.99 ten);
  Alcotest.check feq "p95 of ten" 9.55 (Stats.percentile 0.95 ten);
  List.iter
    (fun n ->
      let samples = List.init n (fun i -> float_of_int i) in
      Alcotest.check feq
        (Printf.sprintf "p100 of %d is the max" n)
        (float_of_int (n - 1))
        (Stats.percentile 1.0 samples);
      Alcotest.check feq (Printf.sprintf "p0 of %d is the min" n) 0.0
        (Stats.percentile 0.0 samples))
    [ 1; 2; 3; 7; 99; 100; 101 ];
  (* Unsorted input with ties sorts correctly (Float.compare, not the
     polymorphic compare). *)
  Alcotest.check feq "unsorted ties" 3.0 (Stats.percentile 0.5 [ 3.0; 1.0; 3.0; 5.0; 3.0 ])

let prop_percentile_within_bounds =
  QCheck.Test.make ~name:"percentile stays within [min, max]" ~count:300
    QCheck.(
      pair (float_range 0. 1.) (list_of_size Gen.(int_range 1 120) (float_range (-1e6) 1e6)))
    (fun (p, samples) ->
      let v = Stats.percentile p samples in
      let lo = List.fold_left Float.min Float.infinity samples in
      let hi = List.fold_left Float.max Float.neg_infinity samples in
      lo <= v && v <= hi)

let test_percentile_validation () =
  Alcotest.check_raises "p out of range" (Invalid_argument "Stats.percentile: p outside [0,1]")
    (fun () -> ignore (Stats.percentile 1.5 [ 1.0 ]))

let test_summarize () =
  let s = Stats.summarize [ 4.0; 1.0; 3.0; 2.0 ] in
  Alcotest.(check int) "count" 4 s.Stats.count;
  Alcotest.check feq "mean" 2.5 s.Stats.mean;
  Alcotest.check feq "min" 1.0 s.Stats.min;
  Alcotest.check feq "max" 4.0 s.Stats.max;
  Alcotest.check feq "median" 2.5 s.Stats.p50

let test_accumulator_matches_batch () =
  let samples = [ 3.0; 1.0; 4.0; 1.0; 5.0; 9.0; 2.0; 6.0 ] in
  let acc = Stats.Accumulator.create () in
  List.iter (Stats.Accumulator.add acc) samples;
  Alcotest.(check int) "count" (List.length samples) (Stats.Accumulator.count acc);
  Alcotest.check (Alcotest.float 1e-9) "mean" (Stats.mean samples) (Stats.Accumulator.mean acc);
  Alcotest.check (Alcotest.float 1e-9) "stddev" (Stats.stddev samples)
    (Stats.Accumulator.stddev acc)

let test_accumulator_empty () =
  let acc = Stats.Accumulator.create () in
  Alcotest.check feq "mean of empty" 0.0 (Stats.Accumulator.mean acc);
  Alcotest.check feq "stddev of empty" 0.0 (Stats.Accumulator.stddev acc)

let prop_accumulator_equals_batch =
  QCheck.Test.make ~name:"accumulator equals batch statistics" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1000.) 1000.))
    (fun samples ->
      let acc = Stats.Accumulator.create () in
      List.iter (Stats.Accumulator.add acc) samples;
      Float.abs (Stats.Accumulator.mean acc -. Stats.mean samples) < 1e-6
      && Float.abs (Stats.Accumulator.stddev acc -. Stats.stddev samples) < 1e-6)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 30) (float_range 0. 100.))
    (fun samples ->
      let p25 = Stats.percentile 0.25 samples
      and p50 = Stats.percentile 0.5 samples
      and p75 = Stats.percentile 0.75 samples in
      p25 <= p50 && p50 <= p75)

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "mean of empty raises" `Quick test_mean_empty;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile small samples" `Quick test_percentile_small_samples;
    Alcotest.test_case "percentile validates p" `Quick test_percentile_validation;
    Alcotest.test_case "summarize" `Quick test_summarize;
    Alcotest.test_case "accumulator matches batch" `Quick test_accumulator_matches_batch;
    Alcotest.test_case "accumulator empty" `Quick test_accumulator_empty;
    QCheck_alcotest.to_alcotest prop_accumulator_equals_batch;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_percentile_within_bounds;
  ]
