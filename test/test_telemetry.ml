(* Telemetry registry: registration validation, the virtual-time
   sampling grid, export rendering, and the end-to-end properties the
   design leans on — instrumented runs are deterministic and observing a
   run never changes its outcome. *)

module Telemetry = Raid_obs.Telemetry
module Prom = Raid_obs.Prom
module Series = Raid_obs.Series
module Vtime = Raid_net.Vtime
module Monitor = Raid_sim.Monitor
module Runner = Raid_sim.Runner
module Throughput = Raid_sim.Throughput

let feq = Alcotest.float 1e-9

(* {2 Series} *)

let test_series_growth () =
  let s = Series.create () in
  Alcotest.(check int) "empty" 0 (Series.length s);
  Alcotest.(check bool) "no last" true (Series.last s = None);
  for i = 0 to 99 do
    Series.push s ~at:(Vtime.of_ms i) (float_of_int (i * i))
  done;
  Alcotest.(check int) "grows past the initial chunk" 100 (Series.length s);
  let at, value = Series.get s 7 in
  Alcotest.(check bool) "get" true (at = Vtime.of_ms 7 && value = 49.0);
  Alcotest.(check bool) "last" true (Series.last s = Some (Vtime.of_ms 99, 9801.0));
  let n = ref 0 in
  Series.iter s (fun ~at:_ _ -> incr n);
  Alcotest.(check int) "iter covers all" 100 !n;
  Alcotest.(check int) "to_list covers all" 100 (List.length (Series.to_list s))

(* {2 Registration} *)

let test_registration_validation () =
  let t = Telemetry.create () in
  let _c = Telemetry.counter t "good_total" in
  Alcotest.check_raises "duplicate name+labels"
    (Invalid_argument "Telemetry: metric \"good_total\"{} already registered") (fun () ->
      ignore (Telemetry.counter t "good_total"));
  Alcotest.check_raises "same name, different kind"
    (Invalid_argument "Telemetry: metric \"good_total\" registered with two kinds") (fun () ->
      Telemetry.gauge t "good_total" ~labels:[ ("site", "0") ] (fun () -> 0.0));
  Alcotest.check_raises "ill-formed name"
    (Invalid_argument "Telemetry: ill-formed metric name \"bad-name\"") (fun () ->
      ignore (Telemetry.counter t "bad-name"));
  Alcotest.check_raises "duplicate label key"
    (Invalid_argument "Telemetry: duplicate label key on metric \"dup_total\"") (fun () ->
      ignore (Telemetry.counter t "dup_total" ~labels:[ ("a", "1"); ("a", "2") ]));
  (* Same name with distinct label sets is one metric family. *)
  ignore (Telemetry.counter t "good_total" ~labels:[ ("site", "1") ]);
  Alcotest.check_raises "interval validated"
    (Invalid_argument "Telemetry.create: interval must be positive") (fun () ->
      ignore (Telemetry.create ~interval:0 ()));
  Alcotest.check_raises "histogram buckets must increase"
    (Invalid_argument "Telemetry.histogram: bucket bounds must be strictly increasing")
    (fun () -> ignore (Telemetry.histogram t ~buckets:[ 1.0; 1.0 ] "h_ms"))

let test_counter_and_histogram_values () =
  let t = Telemetry.create () in
  let c = Telemetry.counter t "ops_total" in
  Telemetry.incr c;
  Telemetry.add c 2.5;
  Alcotest.check feq "counter accumulates" 3.5 (Telemetry.counter_value c);
  let h = Telemetry.histogram t ~buckets:[ 1.0; 10.0 ] "lat_ms" in
  List.iter (Telemetry.observe h) [ 0.5; 5.0; 7.0; 50.0 ];
  match Telemetry.find t "lat_ms" with
  | None -> Alcotest.fail "histogram not found"
  | Some view ->
    Alcotest.(check (list (pair (Alcotest.float 0.0) Alcotest.int)))
      "cumulative buckets, +Inf last"
      [ (1.0, 1); (10.0, 3); (Float.infinity, 4) ]
      view.Telemetry.v_buckets;
    Alcotest.check feq "sum" 62.5 view.Telemetry.v_sum;
    Alcotest.check feq "count as value" 4.0 view.Telemetry.v_value

(* {2 The sampling grid} *)

let test_sampling_grid () =
  let t = Telemetry.create ~interval:(Vtime.of_ms 10) () in
  let c = Telemetry.counter t "ticks_total" in
  Telemetry.incr c;
  (* Catch-up stamps one sample per elapsed due time, at the due time. *)
  Telemetry.maybe_sample t ~at:(Vtime.of_ms 35);
  Alcotest.(check int) "three dues elapsed" 3 (Telemetry.samples_taken t);
  (match Telemetry.find t "ticks_total" with
  | None -> Alcotest.fail "counter not found"
  | Some view ->
    Alcotest.(check (list (pair Alcotest.int (Alcotest.float 0.0))))
      "stamped on the grid, not at the observation time"
      [ (Vtime.of_ms 10, 1.0); (Vtime.of_ms 20, 1.0); (Vtime.of_ms 30, 1.0) ]
      (Series.to_list view.Telemetry.v_series));
  (* A final flush adds one off-grid point, once. *)
  Telemetry.sample_now t ~at:(Vtime.of_ms 35);
  Telemetry.sample_now t ~at:(Vtime.of_ms 35);
  Alcotest.(check int) "flush is idempotent" 4 (Telemetry.samples_taken t);
  (* The grid stays anchored: the next due time is still 40 ms. *)
  Telemetry.maybe_sample t ~at:(Vtime.of_ms 39);
  Alcotest.(check int) "no sample before the next due" 4 (Telemetry.samples_taken t);
  Telemetry.maybe_sample t ~at:(Vtime.of_ms 40);
  Alcotest.(check int) "due at 40 fires" 5 (Telemetry.samples_taken t)

(* {2 Exports} *)

let test_exports_sorted_and_escaped () =
  let t = Telemetry.create ~interval:(Vtime.of_ms 10) () in
  ignore (Telemetry.counter t "zz_total" ~help:"Last by name");
  ignore (Telemetry.counter t "aa_total" ~labels:[ ("site", "1") ]);
  ignore (Telemetry.counter t "aa_total" ~labels:[ ("site", "0") ] ~help:{|quote " slash \|});
  Telemetry.sample_now t ~at:(Vtime.of_ms 10);
  let csv = Telemetry.to_csv t in
  (match String.split_on_char '\n' csv with
  | header :: rows ->
    Alcotest.(check string) "csv header" "metric,labels,t_ms,value" header;
    Alcotest.(check (list string))
      "rows sorted by (name, labels)"
      [ "aa_total,site=0,10.000,0"; "aa_total,site=1,10.000,0"; "zz_total,,10.000,0"; "" ]
      rows
  | [] -> Alcotest.fail "empty csv");
  let prom = Prom.render t in
  Alcotest.(check bool) "help line escaped into one line" true
    (let needle = "# HELP aa_total quote \" slash \\\\" in
     let rec contains i =
       i + String.length needle <= String.length prom
       && (String.sub prom i (String.length needle) = needle || contains (i + 1))
     in
     contains 0);
  Alcotest.(check bool) "label values quoted" true
    (let needle = {|aa_total{site="0"} 0|} in
     let rec contains i =
       i + String.length needle <= String.length prom
       && (String.sub prom i (String.length needle) = needle || contains (i + 1))
     in
     contains 0)

(* Hostile label values: the 0.0.4 exposition format escapes backslash,
   double quote and newline inside quoted label values — nothing else.
   A scraper must be able to round-trip these bytes. *)
let test_label_value_escaping () =
  let t = Telemetry.create () in
  ignore
    (Telemetry.counter t "hostile_total"
       ~labels:[ ("path", "C:\\dir\\\"quoted\"\nnext") ]);
  ignore (Telemetry.counter t "tame_total" ~labels:[ ("k", "{a=\"b\",c}") ]);
  let prom = Prom.render t in
  let contains needle =
    let rec go i =
      i + String.length needle <= String.length prom
      && (String.sub prom i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "backslash, quote and newline escaped" true
    (contains {|hostile_total{path="C:\\dir\\\"quoted\"\nnext"} 0|});
  Alcotest.(check bool) "braces and inner = pass through unescaped" true
    (contains {|tame_total{k="{a=\"b\",c}"} 0|});
  (* If the newline leaked through raw, the sample would split into two
     physical lines, the second starting with the bytes after it. *)
  String.split_on_char '\n' prom
  |> List.iter (fun line ->
         Alcotest.(check bool) "sample stays one physical line" false
           (String.length line >= 4 && String.sub line 0 4 = "next"))

(* {2 End-to-end: the raid metrics pipeline} *)

let monitor_output =
  lazy
    (match Monitor.scenario_of_name "exp1" with
    | Error e -> failwith e
    | Ok scenario -> Monitor.run scenario)

let test_monitor_deterministic () =
  let render output = (Monitor.prom output, Monitor.csv output) in
  let a = render (Lazy.force monitor_output) in
  let b =
    match Monitor.scenario_of_name "exp1" with
    | Error e -> failwith e
    | Ok scenario -> render (Monitor.run scenario)
  in
  Alcotest.(check bool) "two instrumented runs render byte-identically" true (a = b);
  Alcotest.(check bool) "series were sampled" true
    (Telemetry.samples_taken (Lazy.force monitor_output).Monitor.registry > 1)

let test_monitor_counters_match_result () =
  let output = Lazy.force monitor_output in
  let registry = output.Monitor.registry in
  let value name =
    match Telemetry.find registry name with
    | Some view -> view.Telemetry.v_value
    | None -> Alcotest.fail (name ^ " not registered")
  in
  Alcotest.check feq "committed counter mirrors the run"
    (float_of_int output.Monitor.result.Runner.committed)
    (value "raid_txns_committed_total");
  Alcotest.check feq "aborted counter mirrors the run"
    (float_of_int output.Monitor.result.Runner.aborted)
    (value "raid_txns_aborted_total");
  Alcotest.(check bool) "engine processed events" true (value "raid_engine_events_total" > 0.0);
  Alcotest.(check bool) "heap high-water observed" true
    (value "raid_engine_heap_high_water" > 0.0);
  (* Deliveries are one event class among several (timers, failure
     notifications), so the per-kind message counters are bounded by the
     total event count. *)
  let messages =
    List.fold_left
      (fun acc view ->
        if view.Telemetry.v_name = "raid_engine_messages_total" then
          acc +. view.Telemetry.v_value
        else acc)
      0.0 (Telemetry.views registry)
  in
  Alcotest.(check bool) "messages bounded by events" true
    (messages > 0.0 && messages <= value "raid_engine_events_total");
  (* Virtual time is attributed per event; sites overlap in virtual
     time, so the sum is bounded by clock * sites, not by the clock. *)
  let vtime_us =
    List.fold_left
      (fun acc view ->
        if view.Telemetry.v_name = "raid_engine_vtime_us_total" then
          acc +. view.Telemetry.v_value
        else acc)
      0.0 (Telemetry.views registry)
  in
  let cluster = output.Monitor.result.Runner.cluster in
  let clock_us = float_of_int (Raid_net.Engine.now (Raid_core.Cluster.engine cluster)) in
  Alcotest.(check bool) "per-kind virtual time bounded by clock * sites" true
    (vtime_us > 0.0
    && vtime_us <= clock_us *. float_of_int (Raid_core.Cluster.num_sites cluster))

let test_telemetry_is_transparent () =
  (* Attaching a registry must not perturb the simulation. *)
  let outcomes result =
    List.map
      (fun r ->
        ( r.Runner.index,
          r.Runner.outcome.Raid_core.Metrics.committed,
          r.Runner.faillocks_per_site ))
      result.Runner.records
  in
  (match Monitor.scenario_of_name "exp1" with
  | Error e -> failwith e
  | Ok scenario ->
    let plain = Runner.run scenario in
    let instrumented = Lazy.force monitor_output in
    Alcotest.(check bool) "runner outcomes unchanged" true
      (outcomes plain = outcomes instrumented.Monitor.result));
  let config = Throughput.make_config ~sites:4 ~items:20 ~duration_ms:800.0 () in
  let strip (r : Throughput.result) =
    (r.Throughput.seed, r.Throughput.submitted, r.Throughput.committed, r.Throughput.aborted,
     r.Throughput.virtual_ms, r.Throughput.events, r.Throughput.messages_sent,
     r.Throughput.windows)
  in
  let plain = Throughput.run config in
  let registry = Telemetry.create ~interval:(Vtime.of_ms 50) () in
  let instrumented = Throughput.run ~telemetry:registry config in
  Alcotest.(check bool) "throughput result unchanged" true (strip plain = strip instrumented);
  Alcotest.(check bool) "throughput run was sampled" true
    (Telemetry.samples_taken registry > 1)

let test_concurrent_lock_gauges () =
  let config = Raid_core.Config.make ~num_sites:4 ~num_items:50 () in
  let registry = Telemetry.create ~interval:(Vtime.of_ms 10) () in
  let result =
    Raid_sim.Concurrent.run ~txns:50 ~telemetry:registry ~config
      ~workload:(Raid_core.Workload.Uniform { max_ops = 5; write_prob = 0.5 })
      ()
  in
  Alcotest.(check bool) "batch completed" true
    (result.Raid_sim.Concurrent.committed + result.Raid_sim.Concurrent.aborted = 50);
  let final name =
    match Telemetry.find registry name with
    | Some view -> view.Telemetry.v_value
    | None -> Alcotest.fail (name ^ " not registered")
  in
  Alcotest.check feq "queue drains" 0.0 (final "raid_lock_queue_depth");
  Alcotest.check feq "nothing in flight at quiescence" 0.0 (final "raid_lock_in_flight");
  Alcotest.check feq "locks all released" 0.0 (final "raid_lock_table_locked");
  match Telemetry.find registry "raid_lock_in_flight" with
  | None -> Alcotest.fail "gauge missing"
  | Some view ->
    let peak = ref 0.0 in
    Series.iter view.Telemetry.v_series (fun ~at:_ v -> if v > !peak then peak := v);
    Alcotest.(check bool) "sampled series saw in-flight transactions" true (!peak > 0.0)

let suite =
  [
    Alcotest.test_case "series growth" `Quick test_series_growth;
    Alcotest.test_case "registration validation" `Quick test_registration_validation;
    Alcotest.test_case "counter and histogram values" `Quick test_counter_and_histogram_values;
    Alcotest.test_case "sampling grid" `Quick test_sampling_grid;
    Alcotest.test_case "exports sorted and escaped" `Quick test_exports_sorted_and_escaped;
    Alcotest.test_case "hostile label values escaped" `Quick test_label_value_escaping;
    Alcotest.test_case "monitor deterministic" `Quick test_monitor_deterministic;
    Alcotest.test_case "counters match result" `Quick test_monitor_counters_match_result;
    Alcotest.test_case "telemetry is transparent" `Quick test_telemetry_is_transparent;
    Alcotest.test_case "concurrent lock gauges" `Quick test_concurrent_lock_gauges;
  ]
