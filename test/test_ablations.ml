(* Direction checks for every ablation study: the qualitative claim each
   table makes must hold, so a regression that flips a conclusion fails
   loudly even if no absolute number is pinned. *)

module Ablation = Raid_sim.Ablation
module Concurrent = Raid_sim.Concurrent

let test_two_step_speeds_recovery () =
  match fst (Ablation.two_step_recovery ()) with
  | [ on_demand; threshold; immediate ] ->
    Alcotest.(check bool) "threshold batching faster" true
      (threshold.Ablation.txns_to_recover < on_demand.Ablation.txns_to_recover);
    Alcotest.(check bool) "immediate batching fastest" true
      (immediate.Ablation.txns_to_recover <= threshold.Ablation.txns_to_recover);
    Alcotest.(check int) "on-demand uses no batches" 0 on_demand.Ablation.batch_rounds
  | _ -> Alcotest.fail "unexpected row count"

let test_rw_ratio_directions () =
  let rows, _ = Ablation.rw_ratio ~write_probs:[ 0.1; 0.9 ] () in
  match rows with
  | [ read_heavy; write_heavy ] ->
    Alcotest.(check bool) "write-heavy locks more during outage" true
      (write_heavy.Ablation.peak_locked > read_heavy.Ablation.peak_locked);
    Alcotest.(check bool) "read-heavy leans on copiers" true
      (read_heavy.Ablation.rw_copiers > write_heavy.Ablation.rw_copiers)
  | _ -> Alcotest.fail "unexpected row count"

let test_placement_tradeoff () =
  let rows, _ = Ablation.coordinator_placement ~weights:[ 0.0; 1.0 ] () in
  match rows with
  | [ never; always ] ->
    Alcotest.(check int) "no routing, no copiers" 0 never.Ablation.pl_copiers;
    Alcotest.(check bool) "routing there recovers faster with more copiers" true
      (always.Ablation.pl_txns_to_recover < never.Ablation.pl_txns_to_recover
      && always.Ablation.pl_copiers > never.Ablation.pl_copiers)
  | _ -> Alcotest.fail "unexpected row count"

let test_embed_clears_cheaper () =
  let rows, _ = Ablation.embed_clears ~trials:40 () in
  match rows with
  | [ separate; embedded ] ->
    Alcotest.(check bool) "embedding is cheaper" true
      (embedded.Ablation.copier_txn_ms < separate.Ablation.copier_txn_ms);
    Alcotest.(check int) "no special txns when embedded" 0 embedded.Ablation.specials_sent
  | _ -> Alcotest.fail "unexpected row count"

let test_protocol_availability_order () =
  let rows, _ = Ablation.protocol_availability ~txns:120 () in
  match rows with
  | [ rowaa; strict; quorum ] ->
    Alcotest.(check int) "ROWAA never aborts here" 0 rowaa.Ablation.aborted;
    Alcotest.(check bool) "strict ROWA aborts writes during the outage" true
      (strict.Ablation.aborted > 30);
    Alcotest.(check int) "majority quorum survives one failure" 0 quorum.Ablation.aborted;
    Alcotest.(check bool) "ROWAA messages exceed quorum's" true
      (rowaa.Ablation.messages > quorum.Ablation.messages)
  | _ -> Alcotest.fail "unexpected row count"

let test_control3_reduces_aborts () =
  let rows, _ = Ablation.partial_replication () in
  match rows with
  | [ plain; spawning ] ->
    Alcotest.(check bool) "backups reduce aborts" true
      (spawning.Ablation.pr_aborted < plain.Ablation.pr_aborted);
    Alcotest.(check bool) "backups were spawned" true (spawning.Ablation.backups_spawned > 0);
    Alcotest.(check int) "none without the feature" 0 plain.Ablation.backups_spawned
  | _ -> Alcotest.fail "unexpected row count"

let test_latency_scaling_linear () =
  let rows, _ = Ablation.communication_delays ~latencies_ms:[ 10.0; 60.0 ] () in
  match rows with
  | [ fast; slow ] ->
    (* Four message hops on the commit path, two on control-1. *)
    Alcotest.check (Alcotest.float 2.0) "txn slope = 4 hops" (4.0 *. 50.0)
      (slow.Ablation.lat_txn_ms -. fast.Ablation.lat_txn_ms);
    Alcotest.check (Alcotest.float 2.0) "control-1 slope = 2 hops" (2.0 *. 50.0)
      (slow.Ablation.lat_control1_ms -. fast.Ablation.lat_control1_ms)
  | _ -> Alcotest.fail "unexpected row count"

let test_benchmark_workloads_all_recover () =
  let rows, _ = Ablation.benchmark_workloads () in
  Alcotest.(check int) "three workloads" 3 (List.length rows);
  List.iter
    (fun row ->
      Alcotest.(check int)
        (row.Ablation.workload_label ^ ": no aborts")
        0 row.Ablation.wl_aborted;
      Alcotest.(check bool)
        (row.Ablation.workload_label ^ ": recovered")
        true
        (row.Ablation.wl_txns_to_recover > 0))
    rows

let test_concurrency_sweep_speedup () =
  let rows = Concurrent.sweep ~levels:[ 1; 8 ] ~txns:100 () in
  match rows with
  | [ serial; parallel ] ->
    Alcotest.(check bool) "speedup > 2x at level 8" true (parallel.Concurrent.speedup > 2.0);
    Alcotest.check (Alcotest.float 0.001) "serial is the baseline" 1.0 serial.Concurrent.speedup
  | _ -> Alcotest.fail "unexpected row count"

let suite =
  [
    Alcotest.test_case "A1 two-step speeds recovery" `Slow test_two_step_speeds_recovery;
    Alcotest.test_case "A2 read/write ratio directions" `Slow test_rw_ratio_directions;
    Alcotest.test_case "A3 placement trade-off" `Slow test_placement_tradeoff;
    Alcotest.test_case "A4 embedding is cheaper" `Slow test_embed_clears_cheaper;
    Alcotest.test_case "A5 availability ordering" `Slow test_protocol_availability_order;
    Alcotest.test_case "A6 control-3 reduces aborts" `Slow test_control3_reduces_aborts;
    Alcotest.test_case "A8 latency scaling is linear" `Slow test_latency_scaling_linear;
    Alcotest.test_case "A9 all workloads recover" `Slow test_benchmark_workloads_all_recover;
    Alcotest.test_case "A7 concurrency speedup" `Slow test_concurrency_sweep_speedup;
  ]
