(* Tests for the discrete-event message-passing engine: delivery order,
   latency accounting, failure notifications, links, timers, counters. *)

module Engine = Raid_net.Engine
module Vtime = Raid_net.Vtime

type msg = Ping of int | Pong of int | Tick

let collector () =
  let events = ref [] in
  let record site event = events := (site, event) :: !events in
  (events, record)

let test_delivery_and_latency () =
  let engine = Engine.create ~message_latency:(Vtime.of_ms 9) ~num_sites:2 () in
  let delivered_at = ref (-1) in
  Engine.register engine 0 (fun ctx event ->
      match event with
      | Engine.Message { payload = Ping n; _ } -> Engine.send ctx 1 (Pong n)
      | _ -> ());
  Engine.register engine 1 (fun ctx event ->
      match event with
      | Engine.Message { payload = Pong _; _ } -> delivered_at := Vtime.to_us (Engine.time ctx)
      | _ -> ());
  Engine.inject engine ~dst:0 (Ping 1);
  Engine.run engine;
  (* Injection arrives at 9 ms; the pong arrives at 18 ms. *)
  Alcotest.(check int) "pong at 18ms" 18_000 !delivered_at;
  let counters = Engine.counters engine in
  Alcotest.(check int) "sent" 2 counters.Engine.sent;
  Alcotest.(check int) "delivered" 2 counters.Engine.delivered

let test_work_delays_sends () =
  let engine = Engine.create ~message_latency:(Vtime.of_ms 10) ~num_sites:2 () in
  let arrival = ref (-1) in
  Engine.register engine 0 (fun ctx event ->
      match event with
      | Engine.Message _ ->
        Engine.work ctx (Vtime.of_ms 25);
        Engine.send ctx 1 Tick
      | _ -> ());
  Engine.register engine 1 (fun ctx event ->
      match event with
      | Engine.Message _ -> arrival := Vtime.to_us (Engine.time ctx)
      | _ -> ());
  Engine.inject engine ~dst:0 Tick;
  Engine.run engine;
  (* 10 (injection) + 25 (work) + 10 (latency) = 45 ms. *)
  Alcotest.(check int) "work delays send" 45_000 !arrival

let test_fifo_order () =
  let engine = Engine.create ~num_sites:2 () in
  let received = ref [] in
  Engine.register engine 0 (fun ctx event ->
      match event with
      | Engine.Message _ ->
        for n = 1 to 5 do
          Engine.send ctx 1 (Ping n)
        done
      | _ -> ());
  Engine.register engine 1 (fun _ctx event ->
      match event with
      | Engine.Message { payload = Ping n; _ } -> received := n :: !received
      | _ -> ());
  Engine.inject engine ~dst:0 Tick;
  Engine.run engine;
  Alcotest.(check (list int)) "in send order" [ 1; 2; 3; 4; 5 ] (List.rev !received)

let test_send_failed_notification () =
  let engine =
    Engine.create ~message_latency:(Vtime.of_ms 9) ~failure_timeout:(Vtime.of_ms 27)
      ~num_sites:2 ()
  in
  let failure_at = ref (-1) in
  Engine.register engine 0 (fun ctx event ->
      match event with
      | Engine.Message _ -> Engine.send ctx 1 Tick
      | Engine.Send_failed { dst; _ } ->
        Alcotest.(check int) "failed dst" 1 dst;
        failure_at := Vtime.to_us (Engine.time ctx)
      | Engine.Timer _ -> ());
  Engine.register engine 1 (fun _ _ -> Alcotest.fail "dead site must not receive");
  Engine.set_alive engine 1 false;
  Engine.inject engine ~dst:0 Tick;
  Engine.run engine;
  (* Send at 9 ms; the sender times out failure_timeout later. *)
  Alcotest.(check int) "timeout at 36ms" 36_000 !failure_at;
  Alcotest.(check int) "undeliverable counted" 1 (Engine.counters engine).Engine.undeliverable

let test_send_failed_per_link_latency () =
  (* Regression: the notification must arrive failure_timeout after the
     send even when the link's latency differs from the engine-wide one.
     It used to be scheduled at arrival + (timeout - global latency),
     i.e. skewed by (link latency - global latency). *)
  let engine =
    Engine.create ~message_latency:(Vtime.of_ms 9) ~failure_timeout:(Vtime.of_ms 27)
      ~num_sites:2 ()
  in
  Engine.set_link_latency engine 0 1 (Vtime.of_ms 2);
  let failure_at = ref (-1) in
  Engine.register engine 0 (fun ctx event ->
      match event with
      | Engine.Message _ -> Engine.send ctx 1 Tick
      | Engine.Send_failed _ -> failure_at := Vtime.to_us (Engine.time ctx)
      | Engine.Timer _ -> ());
  Engine.register engine 1 (fun _ _ -> Alcotest.fail "dead site must not receive");
  Engine.set_alive engine 1 false;
  Engine.inject engine ~dst:0 Tick;
  Engine.run engine;
  (* Send at 9 ms (injection arrival); timeout at 9 + 27 = 36 ms — not
     9 + 2 + (27 - 9) = 29 ms. *)
  Alcotest.(check int) "notified at send + failure_timeout" 36_000 !failure_at

let test_send_failed_slow_link_clamped () =
  (* A link slower than the failure timeout: the engine cannot know the
     message's fate before evaluating its arrival, so the notification is
     clamped to the arrival time. *)
  let engine =
    Engine.create ~message_latency:(Vtime.of_ms 9) ~failure_timeout:(Vtime.of_ms 27)
      ~num_sites:2 ()
  in
  Engine.set_link_latency engine 0 1 (Vtime.of_ms 40);
  let failure_at = ref (-1) in
  Engine.register engine 0 (fun ctx event ->
      match event with
      | Engine.Message _ -> Engine.send ctx 1 Tick
      | Engine.Send_failed _ -> failure_at := Vtime.to_us (Engine.time ctx)
      | Engine.Timer _ -> ());
  Engine.register engine 1 (fun _ _ -> Alcotest.fail "dead site must not receive");
  Engine.set_alive engine 1 false;
  Engine.inject engine ~dst:0 Tick;
  Engine.run engine;
  (* Send at 9 ms, arrival evaluated at 9 + 40 = 49 ms > 9 + 27. *)
  Alcotest.(check int) "clamped to arrival evaluation" 49_000 !failure_at

let test_run_zero_budget_when_quiescent () =
  (* Regression: run ~max_events:0 on an engine with an empty queue must
     return cleanly (the budget check used to precede the emptiness
     check). *)
  let engine = Engine.create ~num_sites:1 () in
  Engine.run ~max_events:0 engine;
  Engine.register engine 0 (fun _ _ -> ());
  Engine.inject engine ~dst:0 Tick;
  Engine.run engine;
  Engine.run ~max_events:0 engine;
  Alcotest.(check int) "still quiescent" 0 (Engine.pending_events engine);
  (* A non-empty queue with a zero budget still trips the guard. *)
  Engine.inject engine ~dst:0 Tick;
  match Engine.run ~max_events:0 engine with
  | () -> Alcotest.fail "guard did not trip on pending work"
  | exception Failure _ -> ()

let test_injection_to_dead_site_is_silent () =
  let engine = Engine.create ~num_sites:1 () in
  Engine.register engine 0 (fun _ _ -> Alcotest.fail "must not fire");
  Engine.set_alive engine 0 false;
  Engine.inject engine ~dst:0 Tick;
  Engine.run engine;
  Alcotest.(check int) "undeliverable" 1 (Engine.counters engine).Engine.undeliverable

let test_severed_link () =
  let engine = Engine.create ~num_sites:3 () in
  let (events, record) = collector () in
  for site = 0 to 2 do
    Engine.register engine site (fun ctx event ->
        match event with
        | Engine.Message { payload = Tick; _ } ->
          Engine.send ctx ((Engine.self ctx + 1) mod 3) (Ping (Engine.self ctx))
        | Engine.Message { payload = Ping n; _ } -> record (Engine.self ctx) (`Ping n)
        | Engine.Send_failed _ -> record site `Fail
        | _ -> ())
  done;
  Engine.set_link engine 0 1 false;
  Alcotest.(check bool) "link severed" false (Engine.link_ok engine 0 1);
  Alcotest.(check bool) "symmetric" false (Engine.link_ok engine 1 0);
  Engine.inject engine ~dst:0 Tick;
  Engine.run engine;
  (* 0 -> 1 is severed: site 0 gets a Send_failed; no Ping reaches 1. *)
  Alcotest.(check bool) "failure recorded" true (List.mem (0, `Fail) !events);
  Alcotest.(check bool) "no delivery on severed link" false (List.mem (1, `Ping 0) !events)

let test_timer_fires_and_respects_death () =
  let engine = Engine.create ~num_sites:2 () in
  let fired = ref [] in
  for site = 0 to 1 do
    Engine.register engine site (fun ctx event ->
        match event with
        | Engine.Message _ -> Engine.set_timer ctx (Vtime.of_ms 50) Tick
        | Engine.Timer Tick -> fired := Engine.self ctx :: !fired
        | _ -> ())
  done;
  Engine.inject engine ~dst:0 Tick;
  Engine.inject engine ~dst:1 Tick;
  (* Kill site 1 before its timer fires. *)
  let rec step_until_timers () =
    if Engine.pending_events engine > 0 && Engine.now engine < Vtime.of_ms 20 then
      if Engine.step engine then step_until_timers ()
  in
  step_until_timers ();
  Engine.set_alive engine 1 false;
  Engine.run engine;
  Alcotest.(check (list int)) "only live site fires" [ 0 ] !fired;
  Alcotest.(check int) "one discarded" 1 (Engine.counters engine).Engine.timer_discarded

let test_trace_records () =
  let engine = Engine.create ~trace:true ~num_sites:2 () in
  Engine.register engine 0 (fun ctx _ -> Engine.send ctx 1 Tick);
  Engine.register engine 1 (fun _ _ -> ());
  Engine.inject engine ~dst:0 Tick;
  Engine.run engine;
  let trace = Engine.trace engine in
  Alcotest.(check int) "two entries" 2 (List.length trace);
  (match trace with
  | [ first; second ] ->
    Alcotest.(check int) "injection src" Engine.external_source first.Engine.trace_src;
    Alcotest.(check int) "second dst" 1 second.Engine.trace_dst;
    Alcotest.(check bool) "delivered" true (second.Engine.trace_outcome = Engine.Delivered)
  | _ -> Alcotest.fail "unexpected trace shape")

let test_per_site_counters () =
  let engine = Engine.create ~num_sites:2 () in
  Engine.register engine 0 (fun ctx _ ->
      Engine.send ctx 1 Tick;
      Engine.send ctx 1 Tick);
  Engine.register engine 1 (fun _ _ -> ());
  Engine.inject engine ~dst:0 Tick;
  Engine.run engine;
  Alcotest.(check int) "sent by 0" 2 (Engine.sent_by engine 0);
  Alcotest.(check int) "delivered to 1" 2 (Engine.delivered_to engine 1);
  Alcotest.(check int) "delivered to 0 (injection)" 1 (Engine.delivered_to engine 0)

let test_validation () =
  Alcotest.check_raises "zero sites" (Invalid_argument "Engine.create: num_sites must be positive")
    (fun () -> ignore (Engine.create ~num_sites:0 ()));
  Alcotest.check_raises "timeout below latency"
    (Invalid_argument "Engine.create: failure_timeout below message_latency") (fun () ->
      ignore
        (Engine.create ~message_latency:(Vtime.of_ms 10) ~failure_timeout:(Vtime.of_ms 5)
           ~num_sites:1 ()))

let test_run_guard () =
  let engine = Engine.create ~num_sites:2 () in
  (* Two sites ping-pong forever. *)
  Engine.register engine 0 (fun ctx _ -> Engine.send ctx 1 Tick);
  Engine.register engine 1 (fun ctx _ -> Engine.send ctx 0 Tick);
  Engine.inject engine ~dst:0 Tick;
  (* The guard message must identify where the run got stuck: the bound,
     the stuck virtual time and the pending-event count. *)
  match Engine.run ~max_events:100 engine with
  | () -> Alcotest.fail "livelock guard did not trip"
  | exception Failure msg ->
    let contains needle =
      Alcotest.(check bool)
        (Printf.sprintf "message mentions %S" needle)
        true
        (let nl = String.length needle and ml = String.length msg in
         let rec scan i = i + nl <= ml && (String.sub msg i nl = needle || scan (i + 1)) in
         scan 0)
    in
    contains "max_events (100) exceeded";
    contains "stuck at virtual time";
    contains "pending events"

let suite =
  [
    Alcotest.test_case "delivery and latency" `Quick test_delivery_and_latency;
    Alcotest.test_case "work delays sends" `Quick test_work_delays_sends;
    Alcotest.test_case "FIFO order" `Quick test_fifo_order;
    Alcotest.test_case "send-failed notification" `Quick test_send_failed_notification;
    Alcotest.test_case "send-failed on fast link" `Quick test_send_failed_per_link_latency;
    Alcotest.test_case "send-failed on slow link" `Quick test_send_failed_slow_link_clamped;
    Alcotest.test_case "zero budget when quiescent" `Quick test_run_zero_budget_when_quiescent;
    Alcotest.test_case "silent failed injection" `Quick test_injection_to_dead_site_is_silent;
    Alcotest.test_case "severed link" `Quick test_severed_link;
    Alcotest.test_case "timers and site death" `Quick test_timer_fires_and_respects_death;
    Alcotest.test_case "trace records" `Quick test_trace_records;
    Alcotest.test_case "per-site counters" `Quick test_per_site_counters;
    Alcotest.test_case "constructor validation" `Quick test_validation;
    Alcotest.test_case "livelock guard" `Quick test_run_guard;
  ]
