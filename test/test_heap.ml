module Heap = Raid_net.Heap

let drain heap =
  let rec loop acc = match Heap.pop heap with None -> List.rev acc | Some x -> loop (x :: acc) in
  loop []

let test_empty () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h)

let test_ordering () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 5; 9; 2; 6 ];
  Alcotest.(check int) "size" 8 (Heap.size h);
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 2; 4; 5; 5; 6; 9 ] (drain h)

let test_interleaved () =
  let h = Heap.create ~cmp:Int.compare in
  Heap.push h 3;
  Heap.push h 1;
  Alcotest.(check (option int)) "pop 1" (Some 1) (Heap.pop h);
  Heap.push h 0;
  Heap.push h 2;
  Alcotest.(check (option int)) "pop 0" (Some 0) (Heap.pop h);
  Alcotest.(check (list int)) "rest" [ 2; 3 ] (drain h)

let test_custom_comparison () =
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) in
  Heap.push h (2, "b");
  Heap.push h (1, "a");
  Alcotest.(check (option (pair int string))) "min by key" (Some (1, "a")) (Heap.pop h)

let prop_sorted =
  QCheck.Test.make ~name:"heap drains sorted" ~count:300 QCheck.(list int) (fun items ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) items;
      drain h = List.sort Int.compare items)

(* {2 The specialised (at, seq) event queue} *)

let drain_prio h =
  let rec loop acc =
    if Heap.Prio.is_empty h then List.rev acc
    else
      let at = Heap.Prio.min_at h in
      let payload = Heap.Prio.pop_min h in
      loop ((at, payload) :: acc)
  in
  loop []

let test_prio_empty () =
  let h = Heap.Prio.create () in
  Alcotest.(check bool) "is_empty" true (Heap.Prio.is_empty h);
  Alcotest.(check int) "size" 0 (Heap.Prio.size h);
  Alcotest.check_raises "min_at empty" (Invalid_argument "Heap.Prio.min_at: empty heap")
    (fun () -> ignore (Heap.Prio.min_at h));
  Alcotest.check_raises "pop_min empty" (Invalid_argument "Heap.Prio.pop_min: empty heap")
    (fun () -> ignore (Heap.Prio.pop_min h))

let test_prio_at_then_seq_order () =
  let h = Heap.Prio.create () in
  (* Same at: seq breaks the tie; different at: at wins regardless of seq. *)
  Heap.Prio.push h ~at:20 ~seq:0 "late";
  Heap.Prio.push h ~at:10 ~seq:2 "early-second";
  Heap.Prio.push h ~at:10 ~seq:1 "early-first";
  Heap.Prio.push h ~at:30 ~seq:3 "latest";
  Alcotest.(check int) "size" 4 (Heap.Prio.size h);
  Alcotest.(check (list (pair int string)))
    "drain order"
    [ (10, "early-first"); (10, "early-second"); (20, "late"); (30, "latest") ]
    (drain_prio h)

let prop_prio_matches_generic =
  (* The specialised queue must order exactly like the generic heap under
     the engine's (at, seq) comparator; seq is the (unique) list index. *)
  QCheck.Test.make ~name:"Prio matches generic heap on (at, seq)" ~count:300
    QCheck.(list small_nat)
    (fun ats ->
      let generic =
        Heap.create ~cmp:(fun (a1, s1) (a2, s2) ->
            match Int.compare a1 a2 with 0 -> Int.compare s1 s2 | c -> c)
      in
      let prio = Heap.Prio.create () in
      List.iteri
        (fun seq at ->
          Heap.push generic (at, seq);
          Heap.Prio.push prio ~at ~seq seq)
        ats;
      let rec drain_generic acc =
        match Heap.pop generic with
        | None -> List.rev acc
        | Some (_, seq) -> drain_generic (seq :: acc)
      in
      drain_generic [] = List.map snd (drain_prio prio))

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    Alcotest.test_case "custom comparison" `Quick test_custom_comparison;
    QCheck_alcotest.to_alcotest prop_sorted;
    Alcotest.test_case "prio: empty" `Quick test_prio_empty;
    Alcotest.test_case "prio: at then seq order" `Quick test_prio_at_then_seq_order;
    QCheck_alcotest.to_alcotest prop_prio_matches_generic;
  ]
