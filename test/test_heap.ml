module Heap = Raid_net.Heap

let drain heap =
  let rec loop acc = match Heap.pop heap with None -> List.rev acc | Some x -> loop (x :: acc) in
  loop []

let test_empty () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h)

let test_ordering () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 5; 9; 2; 6 ];
  Alcotest.(check int) "size" 8 (Heap.size h);
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 2; 4; 5; 5; 6; 9 ] (drain h)

let test_interleaved () =
  let h = Heap.create ~cmp:Int.compare in
  Heap.push h 3;
  Heap.push h 1;
  Alcotest.(check (option int)) "pop 1" (Some 1) (Heap.pop h);
  Heap.push h 0;
  Heap.push h 2;
  Alcotest.(check (option int)) "pop 0" (Some 0) (Heap.pop h);
  Alcotest.(check (list int)) "rest" [ 2; 3 ] (drain h)

let test_custom_comparison () =
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) in
  Heap.push h (2, "b");
  Heap.push h (1, "a");
  Alcotest.(check (option (pair int string))) "min by key" (Some (1, "a")) (Heap.pop h)

let prop_sorted =
  QCheck.Test.make ~name:"heap drains sorted" ~count:300 QCheck.(list int) (fun items ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) items;
      drain h = List.sort Int.compare items)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    Alcotest.test_case "custom comparison" `Quick test_custom_comparison;
    QCheck_alcotest.to_alcotest prop_sorted;
  ]
