(* Integration tests for the ROWAA protocol: two-phase commit, fail-lock
   maintenance, copier and control transactions, driven through Cluster. *)

module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Cost_model = Raid_core.Cost_model
module Txn = Raid_core.Txn
module Metrics = Raid_core.Metrics
module Faillock = Raid_core.Faillock
module Site = Raid_core.Site
module Session = Raid_core.Session
module Invariant = Raid_core.Invariant
module Database = Raid_storage.Database

let config ?(num_sites = 3) ?(num_items = 10) ?(cost = Cost_model.free) () =
  Config.make ~cost ~num_sites ~num_items ()

let txn cluster ops = Txn.make ~id:(Cluster.next_txn_id cluster) ops

let check_invariants cluster =
  match Invariant.all cluster with
  | Ok () -> ()
  | Error message -> Alcotest.failf "invariant violated: %s" message

let test_commit_replicates () =
  let cluster = Cluster.create (config ()) in
  let outcome =
    Cluster.submit cluster ~coordinator:0 (txn cluster [ Txn.Write 3; Txn.Read 3; Txn.Write 7 ])
  in
  Alcotest.(check bool) "committed" true outcome.Metrics.committed;
  List.iter
    (fun s ->
      let db = Site.database (Cluster.site cluster s) in
      Alcotest.(check (option (pair int int)))
        (Printf.sprintf "site %d item 3" s)
        (Some (1, 1)) (Database.read db 3);
      Alcotest.(check (option (pair int int)))
        (Printf.sprintf "site %d item 7" s)
        (Some (1, 1)) (Database.read db 7))
    [ 0; 1; 2 ];
  Alcotest.(check int) "no fail-locks" 0 (Cluster.total_faillocks cluster);
  check_invariants cluster

let test_read_own_writes () =
  let cluster = Cluster.create (config ()) in
  let outcome = Cluster.submit cluster ~coordinator:1 (txn cluster [ Txn.Write 2; Txn.Read 2 ]) in
  Alcotest.(check (list (triple int int int))) "reads own write" [ (2, 1, 1) ] outcome.Metrics.reads

let test_read_only_txn () =
  let cluster = Cluster.create (config ()) in
  let outcome = Cluster.submit cluster ~coordinator:2 (txn cluster [ Txn.Read 0; Txn.Read 9 ]) in
  Alcotest.(check bool) "committed" true outcome.Metrics.committed;
  Alcotest.(check (list (triple int int int)))
    "initial values read" [ (0, 0, 0); (9, 0, 0) ] outcome.Metrics.reads

let test_serial_ids_monotone () =
  let cluster = Cluster.create (config ()) in
  Alcotest.(check int) "first id" 1 (Cluster.next_txn_id cluster);
  Alcotest.(check int) "second id" 2 (Cluster.next_txn_id cluster)

let test_faillocks_set_on_down_site () =
  let cluster = Cluster.create (config ()) in
  Cluster.fail_site cluster 2;
  let outcome = Cluster.submit cluster ~coordinator:0 (txn cluster [ Txn.Write 5 ]) in
  Alcotest.(check bool) "committed despite failure" true outcome.Metrics.committed;
  Alcotest.(check (list int)) "item 5 locked for site 2" [ 5 ] (Cluster.faillocks_for cluster 2);
  (* Both survivors hold the bit (fail-locks are fully replicated). *)
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "bit at site %d" s)
        true
        (Faillock.is_locked (Site.faillocks (Cluster.site cluster s)) ~item:5 ~site:2))
    [ 0; 1 ];
  check_invariants cluster

let test_update_skips_down_site () =
  let cluster = Cluster.create (config ()) in
  Cluster.fail_site cluster 1;
  let _outcome = Cluster.submit cluster ~coordinator:0 (txn cluster [ Txn.Write 4 ]) in
  let db1 = Site.database (Cluster.site cluster 1) in
  Alcotest.(check (option (pair int int))) "site 1 stale" (Some (0, 0)) (Database.read db1 4)

let test_write_refreshes_and_clears () =
  let cluster = Cluster.create (config ()) in
  Cluster.fail_site cluster 2;
  let _ = Cluster.submit cluster ~coordinator:0 (txn cluster [ Txn.Write 5 ]) in
  Alcotest.(check int) "one lock" 1 (Cluster.faillock_count_for cluster 2);
  (match Cluster.recover_site cluster 2 with
  | `Recovered -> ()
  | `Blocked -> Alcotest.fail "recovery blocked");
  (* A write to the same item by a transaction clears the fail-lock. *)
  let _ = Cluster.submit cluster ~coordinator:0 (txn cluster [ Txn.Write 5 ]) in
  Alcotest.(check int) "cleared by write" 0 (Cluster.faillock_count_for cluster 2);
  Alcotest.(check bool) "fully consistent" true (Cluster.fully_consistent cluster);
  check_invariants cluster

let test_copier_on_read_of_faillocked () =
  let cluster = Cluster.create (config ()) in
  Cluster.fail_site cluster 2;
  let _ = Cluster.submit cluster ~coordinator:0 (txn cluster [ Txn.Write 5 ]) in
  (match Cluster.recover_site cluster 2 with
  | `Recovered -> ()
  | `Blocked -> Alcotest.fail "recovery blocked");
  (* Site 2 coordinates a transaction reading its out-of-date item: a
     copier transaction must refresh it first. *)
  let outcome = Cluster.submit cluster ~coordinator:2 (txn cluster [ Txn.Read 5 ]) in
  Alcotest.(check bool) "committed" true outcome.Metrics.committed;
  Alcotest.(check int) "one copier request" 1 outcome.Metrics.copier_requests;
  Alcotest.(check int) "one item refreshed" 1 outcome.Metrics.copier_items;
  (* The read saw the up-to-date value (version 1 from txn 1). *)
  Alcotest.(check (list (triple int int int))) "fresh read" [ (5, 1, 1) ] outcome.Metrics.reads;
  Alcotest.(check int) "no locks left" 0 (Cluster.faillock_count_for cluster 2);
  Alcotest.(check bool) "consistent" true (Cluster.fully_consistent cluster);
  check_invariants cluster

let test_copier_clears_at_other_sites () =
  let cluster = Cluster.create (config ~num_sites:4 ()) in
  Cluster.fail_site cluster 3;
  let _ = Cluster.submit cluster ~coordinator:0 (txn cluster [ Txn.Write 8 ]) in
  ignore (Cluster.recover_site cluster 3);
  let _ = Cluster.submit cluster ~coordinator:3 (txn cluster [ Txn.Read 8 ]) in
  (* The special transaction must have cleared the bit at every site. *)
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "bit cleared at site %d" s)
        false
        (Faillock.is_locked (Site.faillocks (Cluster.site cluster s)) ~item:8 ~site:3))
    [ 0; 1; 2; 3 ];
  check_invariants cluster

let test_abort_when_no_source () =
  (* Figure 2's scenario: the only up-to-date copy is on a down site. *)
  let cluster = Cluster.create (config ~num_sites:2 ()) in
  Cluster.fail_site cluster 0;
  let _ = Cluster.submit cluster ~coordinator:1 (txn cluster [ Txn.Write 5 ]) in
  ignore (Cluster.recover_site cluster 0);
  Cluster.fail_site cluster 1;
  let outcome = Cluster.submit cluster ~coordinator:0 (txn cluster [ Txn.Read 5 ]) in
  Alcotest.(check bool) "aborted" false outcome.Metrics.committed;
  (match outcome.Metrics.abort_reason with
  | Some Metrics.Copier_unavailable -> ()
  | other ->
    Alcotest.failf "expected Copier_unavailable, got %s"
      (match other with
      | None -> "commit"
      | Some r -> Format.asprintf "%a" Metrics.pp_abort_reason r))

let test_blind_write_succeeds_without_source () =
  (* Writes refresh a copy even when no up-to-date source exists. *)
  let cluster = Cluster.create (config ~num_sites:2 ()) in
  Cluster.fail_site cluster 0;
  let _ = Cluster.submit cluster ~coordinator:1 (txn cluster [ Txn.Write 5 ]) in
  ignore (Cluster.recover_site cluster 0);
  Cluster.fail_site cluster 1;
  let outcome = Cluster.submit cluster ~coordinator:0 (txn cluster [ Txn.Write 5 ]) in
  Alcotest.(check bool) "committed" true outcome.Metrics.committed;
  Alcotest.(check int) "lock for site 0 gone" 0 (Cluster.faillock_count_for cluster 0);
  Alcotest.(check (list int)) "site 1 now behind on item 5" [ 5 ] (Cluster.faillocks_for cluster 1)

let test_recovery_installs_session_and_faillocks () =
  let cluster = Cluster.create (config ~num_sites:3 ()) in
  Cluster.fail_site cluster 1;
  let _ = Cluster.submit cluster ~coordinator:0 (txn cluster [ Txn.Write 1; Txn.Write 2 ]) in
  ignore (Cluster.recover_site cluster 1);
  let site1 = Cluster.site cluster 1 in
  Alcotest.(check int) "session incremented" 2 (Site.session_number site1);
  Alcotest.(check (list int)) "knows its stale items" [ 1; 2 ] (Site.locked_items site1);
  Alcotest.(check bool) "recovering" true (Site.is_recovering site1);
  (* Other sites perceive the new session number. *)
  List.iter
    (fun s ->
      let vector = Site.vector (Cluster.site cluster s) in
      Alcotest.(check int) (Printf.sprintf "site %d sees session 2" s) 2 (Session.session vector 1);
      Alcotest.(check bool) (Printf.sprintf "site %d sees up" s) true (Session.is_up vector 1))
    [ 0; 2 ];
  check_invariants cluster

let test_recovery_blocked_without_donor () =
  let cluster = Cluster.create (config ~num_sites:2 ()) in
  Cluster.fail_site cluster 0;
  Cluster.fail_site cluster 1;
  (match Cluster.recover_site cluster 0 with
  | `Blocked -> ()
  | `Recovered -> Alcotest.fail "expected blocked recovery");
  (* Once the other site is back... it also has no donor. *)
  Alcotest.(check bool) "site 0 waiting" true (Site.is_waiting (Cluster.site cluster 0))

let test_session_numbers_increment_per_recovery () =
  let cluster = Cluster.create (config ~num_sites:3 ()) in
  Cluster.fail_site cluster 2;
  ignore (Cluster.recover_site cluster 2);
  Cluster.fail_site cluster 2;
  ignore (Cluster.recover_site cluster 2);
  Alcotest.(check int) "two recoveries" 3 (Site.session_number (Cluster.site cluster 2))

let test_consistency_restored_by_traffic () =
  (* Drive enough uniform writes for every stale copy to refresh. *)
  let cluster = Cluster.create (config ~num_sites:2 ~num_items:5 ()) in
  Cluster.fail_site cluster 0;
  for _ = 1 to 10 do
    let id = Cluster.next_txn_id cluster in
    ignore (Cluster.submit cluster ~coordinator:1 (Txn.make ~id [ Txn.Write (id mod 5) ]))
  done;
  ignore (Cluster.recover_site cluster 0);
  for _ = 1 to 5 do
    let id = Cluster.next_txn_id cluster in
    ignore (Cluster.submit cluster ~coordinator:1 (Txn.make ~id [ Txn.Write (id mod 5) ]))
  done;
  Alcotest.(check bool) "consistent" true (Cluster.fully_consistent cluster);
  check_invariants cluster

let test_on_timeout_detection_aborts_then_recovers () =
  let cluster = Cluster.create ~settings:(Cluster.settings ~detection:Cluster.On_timeout ()) (config ~num_sites:3 ()) in
  Cluster.fail_site cluster 2;
  (* Survivors do not know yet; the first transaction discovers the
     failure through a phase-1 send failure and aborts. *)
  let first = Cluster.submit cluster ~coordinator:0 (txn cluster [ Txn.Write 1 ]) in
  Alcotest.(check bool) "first aborted" false first.Metrics.committed;
  (match first.Metrics.abort_reason with
  | Some Metrics.Participant_failed -> ()
  | _ -> Alcotest.fail "expected Participant_failed");
  (* Control-2 ran: the next transaction proceeds without site 2. *)
  let second = Cluster.submit cluster ~coordinator:0 (txn cluster [ Txn.Write 1 ]) in
  Alcotest.(check bool) "second committed" true second.Metrics.committed;
  Alcotest.(check (list int)) "lock set for site 2" [ 1 ] (Cluster.faillocks_for cluster 2);
  check_invariants cluster

let test_commit_survives_failure_after_prepare () =
  (* Appendix A: "if commit ack not received from all participating sites
     then run control type 2" — but the commit still completes.  Stage a
     participant death between its phase-1 ack and the commit message by
     stepping the engine manually. *)
  let module Engine = Raid_net.Engine in
  let module Message = Raid_core.Message in
  let cluster =
    Cluster.create ~settings:(Cluster.settings ~detection:Cluster.On_timeout ~trace:true ()) (config ~num_sites:3 ())
  in
  let engine = Cluster.engine cluster in
  let id = Cluster.next_txn_id cluster in
  Engine.inject engine ~dst:0 (Message.Begin_txn (Txn.make ~id [ Txn.Write 1 ]));
  (* Step until both phase-1 acks have been delivered to the coordinator,
     then crash participant 1 before it can receive the commit. *)
  let acks_delivered () =
    List.length
      (List.filter
         (fun e ->
           e.Engine.trace_outcome = Engine.Delivered
           &&
           match e.Engine.trace_payload with
           | Message.Prepare_ack _ -> e.Engine.trace_dst = 0
           | _ -> false)
         (Engine.trace engine))
  in
  while acks_delivered () < 2 do
    if not (Engine.step engine) then Alcotest.fail "quiescent before phase 1 completed"
  done;
  Engine.set_alive engine 1 false;
  Site.on_crash (Cluster.site cluster 1);
  Engine.run engine;
  (match Cluster.outcomes cluster with
  | [ outcome ] ->
    Alcotest.(check bool) "committed" true outcome.Metrics.committed;
    (* Site 2 applied the write; dead site 1 did not and is fail-locked. *)
    let db2 = Site.database (Cluster.site cluster 2) in
    Alcotest.(check (option (pair int int))) "site 2 applied" (Some (id, id)) (Database.read db2 1);
    Alcotest.(check (list int)) "site 1 fail-locked" [ 1 ] (Cluster.faillocks_for cluster 1);
    (* Control-2 ran: the survivor knows site 1 is down. *)
    Alcotest.(check bool) "site 2 sees 1 down" false
      (Session.is_up (Site.vector (Cluster.site cluster 2)) 1)
  | outcomes -> Alcotest.failf "expected one outcome, got %d" (List.length outcomes));
  check_invariants cluster

let test_vector_agreement_after_churn () =
  let cluster = Cluster.create (config ~num_sites:4 ()) in
  Cluster.fail_site cluster 1;
  let _ = Cluster.submit cluster ~coordinator:0 (txn cluster [ Txn.Write 3 ]) in
  Cluster.fail_site cluster 2;
  ignore (Cluster.recover_site cluster 1);
  let _ = Cluster.submit cluster ~coordinator:3 (txn cluster [ Txn.Write 4 ]) in
  ignore (Cluster.recover_site cluster 2);
  (match Raid_core.Invariant.session_vectors_sane cluster with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  check_invariants cluster

let test_recovery_donor_failover () =
  (* The designated state donor is dead but the recovering site's stale
     vector still believes it up: the send failure must fail over to the
     next candidate rather than leave the site waiting forever. *)
  let cluster = Cluster.create ~settings:(Cluster.settings ~detection:Cluster.On_timeout ()) (config ~num_sites:3 ()) in
  Cluster.fail_site cluster 2;  (* will be the recoverer *)
  Cluster.fail_site cluster 0;  (* will be the (dead) designated donor *)
  (match Cluster.recover_site cluster 2 with
  | `Recovered -> ()
  | `Blocked -> Alcotest.fail "failover to the live donor did not happen");
  let vector = Site.vector (Cluster.site cluster 2) in
  Alcotest.(check bool) "learned donor's death" false (Session.is_up vector 0);
  Alcotest.(check bool) "live donor still up" true (Session.is_up vector 1);
  (* And the recovered site can immediately coordinate. *)
  let outcome = Cluster.submit cluster ~coordinator:2 (txn cluster [ Txn.Write 1 ]) in
  Alcotest.(check bool) "working" true outcome.Metrics.committed

let suite =
  [
    Alcotest.test_case "recovery donor failover" `Quick test_recovery_donor_failover;
    Alcotest.test_case "commit replicates to all sites" `Quick test_commit_replicates;
    Alcotest.test_case "transaction reads its own write" `Quick test_read_own_writes;
    Alcotest.test_case "read-only transaction commits" `Quick test_read_only_txn;
    Alcotest.test_case "serial ids are monotone" `Quick test_serial_ids_monotone;
    Alcotest.test_case "fail-locks set for down site" `Quick test_faillocks_set_on_down_site;
    Alcotest.test_case "updates skip the down site" `Quick test_update_skips_down_site;
    Alcotest.test_case "write refreshes and clears lock" `Quick test_write_refreshes_and_clears;
    Alcotest.test_case "copier refreshes fail-locked read" `Quick test_copier_on_read_of_faillocked;
    Alcotest.test_case "special txn clears locks everywhere" `Quick test_copier_clears_at_other_sites;
    Alcotest.test_case "abort when no up-to-date source" `Quick test_abort_when_no_source;
    Alcotest.test_case "blind write succeeds without source" `Quick
      test_blind_write_succeeds_without_source;
    Alcotest.test_case "recovery installs state" `Quick test_recovery_installs_session_and_faillocks;
    Alcotest.test_case "recovery blocked without donor" `Quick test_recovery_blocked_without_donor;
    Alcotest.test_case "session numbers increment" `Quick test_session_numbers_increment_per_recovery;
    Alcotest.test_case "traffic restores consistency" `Quick test_consistency_restored_by_traffic;
    Alcotest.test_case "timeout detection aborts then recovers" `Quick
      test_on_timeout_detection_aborts_then_recovers;
    Alcotest.test_case "commit survives late participant failure" `Quick
      test_commit_survives_failure_after_prepare;
    Alcotest.test_case "vectors agree after churn" `Quick test_vector_agreement_after_churn;
  ]
