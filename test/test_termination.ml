(* Graceful shutdown (the paper's Terminating session state) and
   per-link latency (its "communication delays across machines" future
   work). *)

module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Cost_model = Raid_core.Cost_model
module Txn = Raid_core.Txn
module Metrics = Raid_core.Metrics
module Session = Raid_core.Session
module Site = Raid_core.Site
module Engine = Raid_net.Engine
module Vtime = Raid_net.Vtime

let config ?(cost = Cost_model.free) () = Config.make ~cost ~num_sites:3 ~num_items:8 ()

let test_departure_updates_vectors () =
  let cluster = Cluster.create (config ()) in
  Cluster.terminate_site cluster 2;
  Alcotest.(check bool) "site is down" false (Cluster.alive cluster 2);
  List.iter
    (fun s ->
      let vector = Site.vector (Cluster.site cluster s) in
      Alcotest.(check bool)
        (Printf.sprintf "site %d sees terminating" s)
        true
        (Session.state vector 2 = Session.Terminating))
    [ 0; 1 ]

let test_no_aborts_after_graceful_departure () =
  (* Unlike an undetected crash under timeout detection, a graceful
     departure never costs an aborted transaction. *)
  let cluster = Cluster.create ~settings:(Cluster.settings ~detection:Cluster.On_timeout ()) (config ()) in
  Cluster.terminate_site cluster 2;
  let id = Cluster.next_txn_id cluster in
  let outcome = Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Write 1 ]) in
  Alcotest.(check bool) "committed first try" true outcome.Metrics.committed;
  Alcotest.(check int) "no control-2 traffic" 0
    (Cluster.metrics cluster).Metrics.control2_announcements

let test_faillocks_accumulate_for_terminated () =
  let cluster = Cluster.create (config ()) in
  Cluster.terminate_site cluster 2;
  let id = Cluster.next_txn_id cluster in
  ignore (Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Write 5 ]));
  Alcotest.(check (list int)) "stale copy tracked" [ 5 ] (Cluster.faillocks_for cluster 2)

let test_terminated_site_rejoins () =
  let cluster = Cluster.create (config ()) in
  Cluster.terminate_site cluster 2;
  let id = Cluster.next_txn_id cluster in
  ignore (Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Write 5 ]));
  (match Cluster.recover_site cluster 2 with
  | `Recovered -> ()
  | `Blocked -> Alcotest.fail "blocked");
  Alcotest.(check int) "session incremented" 2 (Site.session_number (Cluster.site cluster 2));
  let id = Cluster.next_txn_id cluster in
  ignore (Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Write 5 ]));
  Alcotest.(check bool) "consistent again" true (Cluster.fully_consistent cluster);
  match Raid_core.Invariant.all cluster with Ok () -> () | Error m -> Alcotest.fail m

let test_terminate_is_idempotent () =
  let cluster = Cluster.create (config ()) in
  Cluster.terminate_site cluster 2;
  Cluster.terminate_site cluster 2;
  Alcotest.(check bool) "still down" false (Cluster.alive cluster 2)

(* {2 Per-link latency} *)

let test_link_latency_defaults () =
  let engine = Engine.create ~message_latency:(Vtime.of_ms 9) ~num_sites:3 () in
  Alcotest.(check int) "default link" (Vtime.of_ms 9) (Engine.link_latency engine 0 1);
  Engine.set_link_latency engine 0 1 (Vtime.of_ms 80);
  Alcotest.(check int) "overridden" (Vtime.of_ms 80) (Engine.link_latency engine 0 1);
  Alcotest.(check int) "symmetric" (Vtime.of_ms 80) (Engine.link_latency engine 1 0);
  Alcotest.(check int) "other links untouched" (Vtime.of_ms 9) (Engine.link_latency engine 0 2);
  Alcotest.check_raises "negative" (Invalid_argument "Engine.set_link_latency: negative latency")
    (fun () -> Engine.set_link_latency engine 0 1 (-1))

let test_wan_link_slows_transaction () =
  (* 2 LAN sites + 1 across a slow WAN link: the commit must wait for the
     slow participant, so the coordinator time grows by 4 x the latency
     difference (two round trips). *)
  let run ~wan_ms =
    let cluster = Cluster.create (config ()) in
    let engine = Cluster.engine cluster in
    Engine.set_link_latency engine 0 2 (Vtime.of_ms wan_ms);
    Engine.set_link_latency engine 1 2 (Vtime.of_ms wan_ms);
    let id = Cluster.next_txn_id cluster in
    let outcome = Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Write 1 ]) in
    Vtime.to_ms outcome.Metrics.elapsed
  in
  let lan = run ~wan_ms:9 and wan = run ~wan_ms:59 in
  Alcotest.check (Alcotest.float 0.01) "4 extra half-trips" (4.0 *. 50.0) (wan -. lan)

let suite =
  [
    Alcotest.test_case "departure updates vectors" `Quick test_departure_updates_vectors;
    Alcotest.test_case "no aborts after graceful departure" `Quick
      test_no_aborts_after_graceful_departure;
    Alcotest.test_case "fail-locks accumulate for terminated" `Quick
      test_faillocks_accumulate_for_terminated;
    Alcotest.test_case "terminated site rejoins" `Quick test_terminated_site_rejoins;
    Alcotest.test_case "terminate idempotent" `Quick test_terminate_is_idempotent;
    Alcotest.test_case "link latency accessors" `Quick test_link_latency_defaults;
    Alcotest.test_case "WAN link slows the commit" `Quick test_wan_link_slows_transaction;
  ]
