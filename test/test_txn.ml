module Txn = Raid_core.Txn

let test_make_validation () =
  Alcotest.check_raises "empty ops" (Invalid_argument "Txn.make: empty operation list") (fun () ->
      ignore (Txn.make ~id:1 []));
  Alcotest.check_raises "negative id" (Invalid_argument "Txn.make: negative id") (fun () ->
      ignore (Txn.make ~id:(-1) [ Txn.Read 0 ]))

let test_item_extraction () =
  let txn = Txn.make ~id:1 [ Txn.Read 3; Txn.Write 1; Txn.Read 3; Txn.Write 3; Txn.Read 2 ] in
  Alcotest.(check int) "size counts operations" 5 (Txn.size txn);
  Alcotest.(check (list int)) "reads deduplicated, in order" [ 3; 2 ] (Txn.read_items txn);
  Alcotest.(check (list int)) "writes deduplicated, in order" [ 1; 3 ] (Txn.write_items txn);
  Alcotest.(check (list int)) "all items" [ 3; 1; 2 ] (Txn.items txn)

let test_read_only () =
  Alcotest.(check bool) "read-only" true (Txn.is_read_only (Txn.make ~id:1 [ Txn.Read 0 ]));
  Alcotest.(check bool) "writer" false (Txn.is_read_only (Txn.make ~id:1 [ Txn.Write 0 ]))

let test_pp () =
  let txn = Txn.make ~id:7 [ Txn.Read 1; Txn.Write 2 ] in
  Alcotest.(check string) "render" "T7[r(1) w(2)]" (Format.asprintf "%a" Txn.pp txn)

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "item extraction" `Quick test_item_extraction;
    Alcotest.test_case "read-only detection" `Quick test_read_only;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
