(* Tests for the observability layer: JSON emit/parse round-trip, the
   ring-buffer collector, data-structure change hooks, and the end-to-end
   trace exports (JSONL lines parse; the Chrome export is valid
   trace-event JSON with one track per site and 2PC phases nested inside
   transaction spans; output is deterministic). *)

module Trace = Raid_obs.Trace
module Export = Raid_obs.Trace_export
module Json = Raid_obs.Json
module Faillock = Raid_core.Faillock
module Session = Raid_core.Session
module Tracing = Raid_sim.Tracing

let parse_exn label s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.fail (Printf.sprintf "%s: JSON parse error: %s" label e)

(* {2 Json} *)

let test_json_roundtrip () =
  let value =
    Json.Obj
      [
        ("int", Json.Int 42);
        ("neg", Json.Int (-7));
        ("float", Json.Float 1.5);
        ("str", Json.Str "quote \" backslash \\ newline \n tab \t");
        ("bool", Json.Bool true);
        ("null", Json.Null);
        ("arr", Json.Arr [ Json.Int 1; Json.Str "two"; Json.Arr [] ]);
        ("obj", Json.Obj [ ("nested", Json.Bool false) ]);
      ]
  in
  let compact = Json.to_string value in
  let pretty = Json.to_string ~indent:true value in
  Alcotest.(check bool) "compact round-trips" true (parse_exn "compact" compact = value);
  Alcotest.(check bool) "pretty round-trips" true (parse_exn "pretty" pretty = value)

let test_json_parse_escapes () =
  match Json.parse {|{"s": "\u0061A\n", "xs": [1, -2, 3.5, true, false, null]}|} with
  | Error e -> Alcotest.fail e
  | Ok v ->
    Alcotest.(check string)
      "unicode and control escapes" "aA\n"
      (match Json.member "s" v with Some (Json.Str s) -> s | _ -> "?");
    Alcotest.(check int)
      "array length" 6
      (match Json.member "xs" v with Some xs -> List.length (Json.to_list xs) | None -> -1)

let test_json_nonfinite_roundtrip () =
  (* Non-finite floats use the Python-json spellings; [=] is useless on
     NaN so the round-trip is checked with polymorphic [compare] (which
     treats equal NaNs as equal) plus explicit spelling checks. *)
  let value =
    Json.Arr [ Json.Float Float.nan; Json.Float Float.infinity; Json.Float Float.neg_infinity ]
  in
  Alcotest.(check string) "spellings" "[NaN,Infinity,-Infinity]" (Json.to_string value);
  (match Json.parse (Json.to_string value) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    Alcotest.(check int) "round-trips structurally" 0 (compare parsed value);
    (match parsed with
    | Json.Arr [ Json.Float a; Json.Float b; Json.Float c ] ->
      Alcotest.(check bool) "NaN parses to NaN" true (Float.is_nan a);
      Alcotest.(check bool) "infinities parse" true
        (b = Float.infinity && c = Float.neg_infinity)
    | _ -> Alcotest.fail "unexpected shape"));
  (* Negative finite numbers still parse through the number path. *)
  Alcotest.(check int) "-1.5 unaffected" 0
    (compare (parse_exn "neg" "-1.5") (Json.Float (-1.5)));
  match Json.parse "[-Inf]" with
  | Ok _ -> Alcotest.fail "truncated spelling must not parse"
  | Error _ -> ()

let test_json_float_precision () =
  (* %.17g is enough digits to reconstruct any double exactly. *)
  let values =
    [ 0.1; 1.0000000000000002; 1e-300; 1.7976931348623157e308; -4.9e-324; 3.5; -0.0 ]
  in
  List.iter
    (fun f ->
      match parse_exn "float" (Json.to_string (Json.Float f)) with
      | Json.Float g ->
        Alcotest.(check bool)
          (Printf.sprintf "%h survives" f)
          true
          (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float g))
      | Json.Int g ->
        (* Integer-valued floats print without a point and read back as
           ints; the numeric value must still match. *)
        Alcotest.(check bool) (Printf.sprintf "%h as int" f) true (float_of_int g = f)
      | _ -> Alcotest.fail "not a number")
    values

let test_json_parse_errors () =
  let bad = [ "{"; "[1,]"; "\"unterminated"; "{\"a\" 1}"; "tru"; "1 2" ] in
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S must not parse" s)
      | Error _ -> ())
    bad

(* {2 Ring collector} *)

let test_ring_buffer () =
  let t = Trace.create ~capacity:4 () in
  let sink = Trace.sink t in
  for i = 1 to 6 do
    sink.Trace.emit ~at:(Raid_net.Vtime.of_ms i) ~site:0 (Trace.Txn_commit { txn = i })
  done;
  Alcotest.(check int) "emitted" 6 (Trace.emitted t);
  Alcotest.(check int) "dropped" 2 (Trace.dropped t);
  let txns =
    List.map
      (fun e -> match e.Trace.event with Trace.Txn_commit { txn } -> txn | _ -> -1)
      (Trace.entries t)
  in
  Alcotest.(check (list int)) "oldest dropped, order kept" [ 3; 4; 5; 6 ] txns;
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.entries t));
  Alcotest.check_raises "capacity validated"
    (Invalid_argument "Trace.create: capacity must be positive") (fun () ->
      ignore (Trace.create ~capacity:0 ()))

let test_ring_multi_wrap_accounting () =
  (* Several full wraps: the drop count keeps growing while the retained
     window stays exactly the last [capacity] entries, in order. *)
  let t = Trace.create ~capacity:3 () in
  let sink = Trace.sink t in
  Alcotest.(check int) "capacity exposed" 3 (Trace.capacity t);
  for i = 1 to 11 do
    sink.Trace.emit ~at:(Raid_net.Vtime.of_ms i) ~site:0 (Trace.Txn_commit { txn = i });
    Alcotest.(check int)
      (Printf.sprintf "dropped after %d" i)
      (max 0 (i - 3))
      (Trace.dropped t)
  done;
  Alcotest.(check int) "emitted counts everything" 11 (Trace.emitted t);
  let txns =
    List.map
      (fun e -> match e.Trace.event with Trace.Txn_commit { txn } -> txn | _ -> -1)
      (Trace.entries t)
  in
  Alcotest.(check (list int)) "retains the newest window" [ 9; 10; 11 ] txns;
  (* Clearing resets the drop accounting with the buffer. *)
  Trace.clear t;
  Alcotest.(check int) "dropped resets" 0 (Trace.dropped t);
  sink.Trace.emit ~at:(Raid_net.Vtime.of_ms 1) ~site:0 (Trace.Txn_commit { txn = 1 });
  Alcotest.(check int) "sink still live after clear" 1 (Trace.emitted t)

(* {2 Change hooks} *)

let test_faillock_hook_fires_on_transitions () =
  let fl = Faillock.create ~num_items:4 ~num_sites:2 in
  let fired = ref [] in
  Faillock.set_hook fl
    (Some (fun ~item ~site ~locked -> fired := (item, site, locked) :: !fired));
  Alcotest.(check bool) "set transitions" true (Faillock.set fl ~item:1 ~site:0);
  Alcotest.(check bool) "re-set is a no-op" false (Faillock.set fl ~item:1 ~site:0);
  Alcotest.(check bool) "clear transitions" true (Faillock.clear fl ~item:1 ~site:0);
  Alcotest.(check bool) "re-clear is a no-op" false (Faillock.clear fl ~item:1 ~site:0);
  Alcotest.(check (list (triple int int bool)))
    "one event per actual transition"
    [ (1, 0, true); (1, 0, false) ]
    (List.rev !fired)

let test_session_hook_fires_on_change () =
  let v = Session.create ~num_sites:2 in
  let fired = ref [] in
  Session.set_hook v
    (Some (fun ~site ~session ~state -> fired := (site, session, state) :: !fired));
  Session.mark_down v 1;
  Session.mark_down v 1;  (* no change: no event *)
  Session.mark_up v 1 ~session:2;
  Alcotest.(check int) "two changes, two events" 2 (List.length !fired);
  Alcotest.(check bool)
    "down then up" true
    (List.rev !fired = [ (1, 1, Session.Down); (1, 2, Session.Up) ]);
  (* Copies are inert: mutating a copy fires nothing. *)
  let copy = Session.copy v in
  Session.mark_down copy 0;
  Alcotest.(check int) "copy carries no hook" 2 (List.length !fired)

(* {2 End-to-end exports} *)

let traced_output =
  (* One traced run of Experiment 3 scenario 1 (failures, copiers and
     aborts all occur), shared by the export tests. *)
  lazy
    (match Tracing.scenario_of_name "exp3-1" with
    | Error e -> failwith e
    | Ok scenario -> Tracing.run scenario)

let test_jsonl_lines_parse () =
  let output = Lazy.force traced_output in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Tracing.jsonl output))
  in
  Alcotest.(check bool) "has events" true (List.length lines > 100);
  List.iter
    (fun line ->
      let v = parse_exn "jsonl line" line in
      match (Json.member "ts_us" v, Json.member "site" v, Json.member "kind" v) with
      | Some (Json.Int _), Some (Json.Int _), Some (Json.Str _) -> ()
      | _ -> Alcotest.fail ("missing ts_us/site/kind: " ^ line))
    lines

let chrome_events output =
  let v = parse_exn "chrome export" (Tracing.chrome output) in
  match Json.member "traceEvents" v with
  | Some events -> Json.to_list events
  | None -> Alcotest.fail "no traceEvents key"

let field name event =
  match Json.member name event with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "event lacks %S" name)

let int_field name event =
  match field name event with
  | Json.Int n -> n
  | _ -> Alcotest.fail (Printf.sprintf "field %S not an int" name)

let str_field name event =
  match field name event with
  | Json.Str s -> s
  | _ -> Alcotest.fail (Printf.sprintf "field %S not a string" name)

let test_chrome_one_track_per_site () =
  let output = Lazy.force traced_output in
  let events = chrome_events output in
  let tracks =
    List.filter
      (fun e -> str_field "ph" e = "M" && str_field "name" e = "thread_name")
      events
  in
  Alcotest.(check int) "one thread_name per site" output.Tracing.num_sites
    (List.length tracks);
  let tids = List.sort compare (List.map (int_field "tid") tracks) in
  Alcotest.(check (list int)) "tids are the site ids"
    (List.init output.Tracing.num_sites Fun.id)
    tids

let test_chrome_phases_nest () =
  let output = Lazy.force traced_output in
  let events = chrome_events output in
  let spans cat =
    List.filter (fun e -> str_field "ph" e = "X" && str_field "cat" e = cat) events
  in
  let txn_spans = spans "txn" and phase_spans = spans "2pc" in
  Alcotest.(check bool) "has transaction spans" true (List.length txn_spans > 50);
  Alcotest.(check bool) "has phase spans" true (List.length phase_spans > 50);
  List.iter
    (fun p ->
      let inside t =
        int_field "tid" t = int_field "tid" p
        && int_field "ts" t <= int_field "ts" p
        && int_field "ts" p + int_field "dur" p <= int_field "ts" t + int_field "dur" t
      in
      if not (List.exists inside txn_spans) then
        Alcotest.fail
          (Printf.sprintf "phase span %s at ts=%d not nested in any transaction span"
             (str_field "name" p) (int_field "ts" p)))
    phase_spans

let test_exports_deterministic () =
  let render output = (Tracing.jsonl output, Tracing.chrome output, Tracing.summary output) in
  let a = render (Lazy.force traced_output) in
  let b =
    match Tracing.scenario_of_name "exp3-1" with
    | Error e -> failwith e
    | Ok scenario -> render (Tracing.run scenario)
  in
  Alcotest.(check bool) "two runs render byte-identically" true (a = b)

let test_untraced_run_unchanged () =
  (* Tracing must not perturb the simulation: the same scenario with and
     without the sink produces identical outcomes. *)
  let outcomes result =
    List.map
      (fun r ->
        ( r.Raid_sim.Runner.index,
          r.Raid_sim.Runner.outcome.Raid_core.Metrics.committed,
          r.Raid_sim.Runner.faillocks_per_site ))
      result.Raid_sim.Runner.records
  in
  match Tracing.scenario_of_name "exp3-1" with
  | Error e -> failwith e
  | Ok scenario ->
    let traced = Lazy.force traced_output in
    let untraced = Raid_sim.Runner.run scenario in
    Alcotest.(check bool) "same outcomes" true
      (outcomes traced.Tracing.result = outcomes untraced)

let suite =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json escapes" `Quick test_json_parse_escapes;
    Alcotest.test_case "json non-finite floats" `Quick test_json_nonfinite_roundtrip;
    Alcotest.test_case "json float precision" `Quick test_json_float_precision;
    Alcotest.test_case "json errors" `Quick test_json_parse_errors;
    Alcotest.test_case "ring buffer" `Quick test_ring_buffer;
    Alcotest.test_case "ring multi-wrap accounting" `Quick test_ring_multi_wrap_accounting;
    Alcotest.test_case "faillock hook" `Quick test_faillock_hook_fires_on_transitions;
    Alcotest.test_case "session hook" `Quick test_session_hook_fires_on_change;
    Alcotest.test_case "jsonl lines parse" `Quick test_jsonl_lines_parse;
    Alcotest.test_case "chrome: track per site" `Quick test_chrome_one_track_per_site;
    Alcotest.test_case "chrome: phases nest" `Quick test_chrome_phases_nest;
    Alcotest.test_case "deterministic exports" `Quick test_exports_deterministic;
    Alcotest.test_case "tracing is transparent" `Quick test_untraced_run_unchanged;
  ]
