(* Rendering tests for the report tables and figure charts. *)

module Table = Raid_util.Table
module Chart = Raid_util.Chart

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec loop i = i + nl <= hl && (String.sub haystack i nl = needle || loop (i + 1)) in
  loop 0

let test_table_basic () =
  let t = Table.create ~title:"demo" [ ("name", Table.Left); ("ms", Table.Right) ] in
  Table.add_row t [ "alpha"; "9" ];
  Table.add_row t [ "b"; "123" ];
  let rendered = Table.render t in
  Alcotest.(check bool) "title" true (contains rendered "demo");
  Alcotest.(check bool) "header" true (contains rendered "name");
  (* Right-aligned numbers share the units column. *)
  Alcotest.(check bool) "right aligned" true (contains rendered "  9");
  Alcotest.(check bool) "left aligned" true (contains rendered "alpha");
  Alcotest.(check bool) "separator" true (contains rendered "-+-")

let test_table_rule () =
  let t = Table.create [ ("a", Table.Left) ] in
  Table.add_row t [ "x" ];
  Table.add_rule t;
  Table.add_row t [ "y" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  Alcotest.(check int) "five lines" 5 (List.length (List.filter (fun l -> l <> "") lines))

let test_table_validation () =
  Alcotest.check_raises "no columns" (Invalid_argument "Table.create: no columns") (fun () ->
      ignore (Table.create []));
  let t = Table.create [ ("a", Table.Left); ("b", Table.Left) ] in
  Alcotest.check_raises "wrong width" (Invalid_argument "Table.add_row: wrong number of cells")
    (fun () -> Table.add_row t [ "only one" ])

let test_chart_empty () =
  let c = Chart.create ~title:"empty" ~x_label:"x" ~y_label:"y" () in
  Alcotest.(check bool) "no data note" true (contains (Chart.render c) "(no data)")

let test_chart_plots_points () =
  let c = Chart.create ~width:40 ~height:10 ~title:"fig" ~x_label:"txns" ~y_label:"locks" () in
  Chart.add_series c
    { Chart.label = "site 0"; glyph = '*'; points = [ (0.0, 0.0); (50.0, 25.0); (100.0, 0.0) ] };
  let rendered = Chart.render c in
  Alcotest.(check bool) "glyph plotted" true (contains rendered "*");
  Alcotest.(check bool) "legend" true (contains rendered "* = site 0");
  Alcotest.(check bool) "title" true (contains rendered "fig");
  Alcotest.(check bool) "x axis range" true (contains rendered "100.0")

let test_chart_multiple_series () =
  let c = Chart.create ~width:30 ~height:8 ~title:"two" ~x_label:"x" ~y_label:"y" () in
  Chart.add_series c { Chart.label = "a"; glyph = '*'; points = [ (0.0, 1.0); (10.0, 1.0) ] };
  Chart.add_series c { Chart.label = "b"; glyph = 'o'; points = [ (0.0, 5.0); (10.0, 5.0) ] };
  let rendered = Chart.render c in
  Alcotest.(check bool) "both glyphs" true (contains rendered "*" && contains rendered "o");
  Alcotest.(check bool) "both legends" true
    (contains rendered "* = a" && contains rendered "o = b")

let test_chart_degenerate_range () =
  (* A single point must not divide by zero. *)
  let c = Chart.create ~width:20 ~height:6 ~title:"dot" ~x_label:"x" ~y_label:"y" () in
  Chart.add_series c { Chart.label = "p"; glyph = '#'; points = [ (5.0, 5.0) ] };
  Alcotest.(check bool) "renders" true (String.length (Chart.render c) > 0)

let test_chart_validation () =
  Alcotest.check_raises "degenerate size" (Invalid_argument "Chart.create: degenerate size")
    (fun () -> ignore (Chart.create ~width:1 ~title:"t" ~x_label:"x" ~y_label:"y" ()))

let suite =
  [
    Alcotest.test_case "table basics" `Quick test_table_basic;
    Alcotest.test_case "table rule" `Quick test_table_rule;
    Alcotest.test_case "table validation" `Quick test_table_validation;
    Alcotest.test_case "chart with no data" `Quick test_chart_empty;
    Alcotest.test_case "chart plots points" `Quick test_chart_plots_points;
    Alcotest.test_case "chart multiple series" `Quick test_chart_multiple_series;
    Alcotest.test_case "chart degenerate range" `Quick test_chart_degenerate_range;
    Alcotest.test_case "chart validation" `Quick test_chart_validation;
  ]
