(* Property tests for the engine's delivery semantics: exactly-once
   delivery and per-link FIFO under random message schedules. *)

module Engine = Raid_net.Engine

type msg = Trigger | Payload of int  (* uid *)

(* Site 0 dispatches the whole schedule on its trigger; every site
   records the uids it receives, in arrival order. *)
let run_dispatch ~num_sites sends =
  let received = Array.make num_sites [] in
  let engine = Engine.create ~num_sites () in
  for site = 1 to num_sites - 1 do
    Engine.register engine site (fun ctx event ->
        match event with
        | Engine.Message { payload = Payload uid; _ } ->
          received.(Engine.self ctx) <- uid :: received.(Engine.self ctx)
        | _ -> ())
  done;
  Engine.register engine 0 (fun ctx event ->
      match event with
      | Engine.Message { payload = Trigger; _ } ->
        List.iteri (fun uid dst -> Engine.send ctx dst (Payload uid)) sends
      | Engine.Message { payload = Payload uid; _ } -> received.(0) <- uid :: received.(0)
      | _ -> ());
  Engine.inject engine ~dst:0 Trigger;
  Engine.run engine;
  Array.map List.rev received

let gen_schedule num_sites = QCheck.Gen.(list_size (int_range 0 60) (int_range 0 (num_sites - 1)))

let arbitrary_schedule =
  QCheck.make
    ~print:(fun sends -> String.concat "," (List.map string_of_int sends))
    (gen_schedule 4)

let prop_exactly_once =
  QCheck.Test.make ~name:"every message delivered exactly once" ~count:200 arbitrary_schedule
    (fun sends ->
      let received = run_dispatch ~num_sites:4 sends in
      let got = List.sort compare (List.concat (Array.to_list received)) in
      got = List.init (List.length sends) Fun.id)

let prop_fifo_per_link =
  QCheck.Test.make ~name:"per-link FIFO order" ~count:200 arbitrary_schedule (fun sends ->
      let received = run_dispatch ~num_sites:4 sends in
      (* All messages share the link 0 -> dst, so each destination must see
         uids in increasing order. *)
      Array.for_all (fun uids -> uids = List.sort compare uids) received)

let prop_routing =
  QCheck.Test.make ~name:"messages reach their destination" ~count:200 arbitrary_schedule
    (fun sends ->
      let received = run_dispatch ~num_sites:4 sends in
      List.for_all
        (fun (uid, dst) -> List.mem uid received.(dst))
        (List.mapi (fun uid dst -> (uid, dst)) sends))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_exactly_once;
    QCheck_alcotest.to_alcotest prop_fifo_per_link;
    QCheck_alcotest.to_alcotest prop_routing;
  ]
