module Session = Raid_core.Session

let test_initial () =
  let v = Session.create ~num_sites:3 in
  Alcotest.(check int) "num_sites" 3 (Session.num_sites v);
  for s = 0 to 2 do
    Alcotest.(check int) "session 1" 1 (Session.session v s);
    Alcotest.(check bool) "up" true (Session.is_up v s)
  done;
  Alcotest.(check (list int)) "all operational" [ 0; 1; 2 ] (Session.operational v)

let test_transitions () =
  let v = Session.create ~num_sites:3 in
  Session.mark_down v 1;
  Alcotest.(check bool) "down" false (Session.is_up v 1);
  Alcotest.(check int) "session kept" 1 (Session.session v 1);
  Alcotest.(check (list int)) "operational" [ 0; 2 ] (Session.operational v);
  Session.mark_waiting v 1 ~session:2;
  Alcotest.(check bool) "waiting not up" false (Session.is_up v 1);
  Alcotest.(check int) "new session" 2 (Session.session v 1);
  Session.mark_up v 1 ~session:2;
  Alcotest.(check bool) "up again" true (Session.is_up v 1)

let test_operational_except () =
  let v = Session.create ~num_sites:4 in
  Session.mark_down v 2;
  Alcotest.(check (list int)) "except self" [ 1; 3 ] (Session.operational_except v 0)

let test_install_and_copy () =
  let a = Session.create ~num_sites:2 in
  let b = Session.copy a in
  Session.mark_down b 0;
  Alcotest.(check bool) "copy independent" true (Session.is_up a 0);
  Session.install a ~from:b;
  Alcotest.(check bool) "installed" false (Session.is_up a 0);
  Alcotest.(check bool) "equal" true (Session.equal a b);
  let c = Session.create ~num_sites:3 in
  Alcotest.check_raises "size mismatch" (Invalid_argument "Session.install: size mismatch")
    (fun () -> Session.install a ~from:c)

let test_merge_failure () =
  let v = Session.create ~num_sites:4 in
  Session.merge_failure v [ 1; 3 ];
  Alcotest.(check (list int)) "survivors" [ 0; 2 ] (Session.operational v)

let test_bounds () =
  let v = Session.create ~num_sites:2 in
  Alcotest.check_raises "out of range" (Invalid_argument "Session: site out of range") (fun () ->
      ignore (Session.session v 2))

let test_pp () =
  let v = Session.create ~num_sites:2 in
  Session.mark_down v 1;
  Alcotest.(check string) "render" "[0:1/up; 1:1/down]" (Format.asprintf "%a" Session.pp v)

(* The allocation-free iterators must visit exactly the sites the list
   forms return, in the same (increasing) order — the protocol's send
   order, hence trace byte-identity, depends on it. *)
let test_iterators_match_lists () =
  let v = Session.create ~num_sites:6 in
  Session.mark_down v 1;
  Session.mark_waiting v 4 ~session:2;
  let collect f =
    let acc = ref [] in
    f (fun s -> acc := s :: !acc);
    List.rev !acc
  in
  Alcotest.(check (list int))
    "iter_operational = operational" (Session.operational v)
    (collect (Session.iter_operational v));
  Alcotest.(check (list int))
    "iter_operational_except = operational_except"
    (Session.operational_except v 2)
    (collect (Session.iter_operational_except v ~self:2));
  Alcotest.(check int)
    "count_except (up self)"
    (List.length (Session.operational_except v 2))
    (Session.operational_count_except v ~self:2);
  Alcotest.(check int)
    "count_except (down self)"
    (List.length (Session.operational_except v 1))
    (Session.operational_count_except v ~self:1)

let test_up_count_cached () =
  let v = Session.create ~num_sites:4 in
  Alcotest.(check int) "initial" 4 (Session.up_count v);
  Session.mark_down v 0;
  Session.mark_down v 0;
  Alcotest.(check int) "down is idempotent" 3 (Session.up_count v);
  Session.mark_waiting v 1 ~session:2;
  Alcotest.(check int) "waiting leaves up" 2 (Session.up_count v);
  Session.mark_up v 1 ~session:2;
  Session.mark_up v 0 ~session:2;
  Alcotest.(check int) "recovered" 4 (Session.up_count v);
  Session.mark_terminating v 3;
  Alcotest.(check int) "terminating leaves up" 3 (Session.up_count v);
  let c = Session.copy v in
  Alcotest.(check int) "copy carries count" 3 (Session.up_count c);
  Session.install v ~from:(Session.create ~num_sites:4);
  Alcotest.(check int) "install recomputes" 4 (Session.up_count v)

let test_search_helpers () =
  let v = Session.create ~num_sites:5 in
  Session.mark_down v 0;
  Alcotest.(check bool) "exists" true (Session.exists_operational v (fun s -> s > 3));
  Alcotest.(check bool) "exists misses down" false
    (Session.exists_operational v (fun s -> s = 0));
  Alcotest.(check (option int))
    "first is lowest up" (Some 1)
    (Session.first_operational v (fun _ -> true));
  Alcotest.(check (option int))
    "first none" None
    (Session.first_operational v (fun s -> s = 0))

(* The sparse representation stores only entries that differ from the
   default {session 1, Up}; [diverged] counts them.  The table must stay
   canonical: returning a site to the default state removes its entry,
   so copy/equal stay O(diverged) on mostly-healthy large vectors. *)
let test_sparse_canonical () =
  let v = Session.create ~num_sites:1024 in
  Alcotest.(check int) "fresh vector stores nothing" 0 (Session.diverged v);
  Session.mark_down v 17;
  Session.mark_waiting v 99 ~session:2;
  Alcotest.(check int) "two overrides" 2 (Session.diverged v);
  Session.mark_up v 17 ~session:1;
  Alcotest.(check int) "back to default drops the entry" 1 (Session.diverged v);
  Session.mark_up v 99 ~session:2;
  Alcotest.(check int) "non-default session stays" 1 (Session.diverged v);
  Alcotest.(check int) "up count full" 1024 (Session.up_count v);
  let c = Session.copy v in
  Alcotest.(check int) "copy carries overrides" 1 (Session.diverged c);
  Alcotest.(check bool) "copy equal" true (Session.equal v c);
  Session.install c ~from:(Session.create ~num_sites:1024);
  Alcotest.(check int) "install of default clears" 0 (Session.diverged c)

let suite =
  [
    Alcotest.test_case "initial vector" `Quick test_initial;
    Alcotest.test_case "sparse table stays canonical" `Quick test_sparse_canonical;
    Alcotest.test_case "state transitions" `Quick test_transitions;
    Alcotest.test_case "operational_except" `Quick test_operational_except;
    Alcotest.test_case "iterators match lists" `Quick test_iterators_match_lists;
    Alcotest.test_case "up_count cached" `Quick test_up_count_cached;
    Alcotest.test_case "search helpers" `Quick test_search_helpers;
    Alcotest.test_case "install and copy" `Quick test_install_and_copy;
    Alcotest.test_case "merge_failure" `Quick test_merge_failure;
    Alcotest.test_case "bounds checked" `Quick test_bounds;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
