module Bitset = Raid_util.Bitset

let test_empty () =
  let b = Bitset.create 10 in
  Alcotest.(check int) "capacity" 10 (Bitset.capacity b);
  Alcotest.(check bool) "is_empty" true (Bitset.is_empty b);
  Alcotest.(check int) "cardinal" 0 (Bitset.cardinal b);
  Alcotest.(check (list int)) "to_list" [] (Bitset.to_list b)

let test_set_clear_mem () =
  let b = Bitset.create 16 in
  Bitset.set b 0;
  Bitset.set b 7;
  Bitset.set b 15;
  Alcotest.(check bool) "mem 0" true (Bitset.mem b 0);
  Alcotest.(check bool) "mem 7" true (Bitset.mem b 7);
  Alcotest.(check bool) "mem 8" false (Bitset.mem b 8);
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal b);
  Bitset.clear b 7;
  Alcotest.(check bool) "cleared" false (Bitset.mem b 7);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 15 ] (Bitset.to_list b)

let test_set_idempotent () =
  let b = Bitset.create 8 in
  Bitset.set b 3;
  Bitset.set b 3;
  Alcotest.(check int) "still one" 1 (Bitset.cardinal b)

let test_bounds () =
  let b = Bitset.create 8 in
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index out of range") (fun () ->
      Bitset.set b (-1));
  Alcotest.check_raises "too large" (Invalid_argument "Bitset: index out of range") (fun () ->
      ignore (Bitset.mem b 8))

let test_zero_capacity () =
  let b = Bitset.create 0 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty b)

let test_assign () =
  let b = Bitset.create 4 in
  Bitset.assign b 2 true;
  Alcotest.(check bool) "assigned true" true (Bitset.mem b 2);
  Bitset.assign b 2 false;
  Alcotest.(check bool) "assigned false" false (Bitset.mem b 2)

let test_copy_independent () =
  let a = Bitset.create 8 in
  Bitset.set a 1;
  let b = Bitset.copy a in
  Bitset.set b 2;
  Alcotest.(check bool) "original unchanged" false (Bitset.mem a 2);
  Alcotest.(check bool) "copy has original" true (Bitset.mem b 1)

let test_union_into () =
  let a = Bitset.of_list 8 [ 1; 3 ] and b = Bitset.of_list 8 [ 3; 5 ] in
  Bitset.union_into ~dst:a b;
  Alcotest.(check (list int)) "union" [ 1; 3; 5 ] (Bitset.to_list a);
  let c = Bitset.create 9 in
  Alcotest.check_raises "capacity mismatch"
    (Invalid_argument "Bitset.union_into: capacity mismatch") (fun () ->
      Bitset.union_into ~dst:a c)

let test_clear_all () =
  let b = Bitset.of_list 12 [ 0; 5; 11 ] in
  Bitset.clear_all b;
  Alcotest.(check bool) "empty after clear_all" true (Bitset.is_empty b)

let test_equal () =
  Alcotest.(check bool) "equal" true (Bitset.equal (Bitset.of_list 8 [ 1 ]) (Bitset.of_list 8 [ 1 ]));
  Alcotest.(check bool) "different members" false
    (Bitset.equal (Bitset.of_list 8 [ 1 ]) (Bitset.of_list 8 [ 2 ]));
  Alcotest.(check bool) "different capacity" false
    (Bitset.equal (Bitset.create 8) (Bitset.create 9))

let test_fold_iter () =
  let b = Bitset.of_list 64 [ 0; 31; 32; 63 ] in
  Alcotest.(check int) "fold sum" 126 (Bitset.fold ( + ) b 0);
  let seen = ref [] in
  Bitset.iter (fun i -> seen := i :: !seen) b;
  Alcotest.(check (list int)) "iter order" [ 63; 32; 31; 0 ] !seen

(* Model-based property: a bitset behaves like a set of ints. *)
let prop_model =
  let gen = QCheck.(list (pair (int_range 0 63) bool)) in
  QCheck.Test.make ~name:"bitset matches set model" ~count:300 gen (fun operations ->
      let b = Bitset.create 64 in
      let module IntSet = Set.Make (Int) in
      let model =
        List.fold_left
          (fun model (i, add) ->
            if add then begin
              Bitset.set b i;
              IntSet.add i model
            end
            else begin
              Bitset.clear b i;
              IntSet.remove i model
            end)
          IntSet.empty operations
      in
      Bitset.to_list b = IntSet.elements model
      && Bitset.cardinal b = IntSet.cardinal model
      && Bitset.is_empty b = IntSet.is_empty model)

(* The word-scan [iter] isolates bits within bytes and skips zero bytes;
   pin its order and completeness around every byte boundary. *)
let test_iter_byte_boundaries () =
  let b = Bitset.create 70 in
  let members = [ 0; 6; 7; 8; 9; 15; 16; 31; 32; 63; 64; 69 ] in
  List.iter (Bitset.set b) members;
  let seen = ref [] in
  Bitset.iter (fun i -> seen := i :: !seen) b;
  Alcotest.(check (list int)) "increasing order, every member" members (List.rev !seen);
  Alcotest.(check int) "cardinal agrees" (List.length members) (Bitset.cardinal b)

let test_iter_sparse () =
  let b = Bitset.create 256 in
  Bitset.set b 0;
  Bitset.set b 255;
  Alcotest.(check (list int)) "only the set bits" [ 0; 255 ] (Bitset.to_list b);
  Alcotest.(check int) "fold visits two" 2 (Bitset.fold (fun _ acc -> acc + 1) b 0);
  Bitset.clear b 0;
  Bitset.clear b 255;
  let visited = ref 0 in
  Bitset.iter (fun _ -> incr visited) b;
  Alcotest.(check int) "empty set visits none" 0 !visited

let suite =
  [
    Alcotest.test_case "empty set" `Quick test_empty;
    Alcotest.test_case "iter byte boundaries" `Quick test_iter_byte_boundaries;
    Alcotest.test_case "iter sparse/empty" `Quick test_iter_sparse;
    Alcotest.test_case "set/clear/mem" `Quick test_set_clear_mem;
    Alcotest.test_case "set idempotent" `Quick test_set_idempotent;
    Alcotest.test_case "bounds checked" `Quick test_bounds;
    Alcotest.test_case "zero capacity" `Quick test_zero_capacity;
    Alcotest.test_case "assign" `Quick test_assign;
    Alcotest.test_case "copy independent" `Quick test_copy_independent;
    Alcotest.test_case "union_into" `Quick test_union_into;
    Alcotest.test_case "clear_all" `Quick test_clear_all;
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "fold and iter" `Quick test_fold_iter;
    QCheck_alcotest.to_alcotest prop_model;
  ]
