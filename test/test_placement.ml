(* Placement unit tests: the O(1)/O(k) replica-set layer introduced for
   partial replication, plus its interaction with the protocol
   invariants under churn. *)

module Placement = Raid_core.Placement
module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Cost_model = Raid_core.Cost_model
module Workload = Raid_core.Workload
module Scenario = Raid_sim.Scenario
module Runner = Raid_sim.Runner

let all_shardings ~num_items =
  [
    ("hash", Placement.Hash);
    ("range", Placement.Range);
    ("modular", Placement.Modular);
    ("affinity", Placement.Affinity (Array.init num_items (fun i -> (i * 7) mod 5)));
  ]

let test_factor_clamps_to_full () =
  (* factor >= num_sites degenerates to full replication: every site holds
     every item and the fast-path predicate reports it. *)
  let num_sites = 4 and num_items = 20 in
  let p = Placement.make ~num_sites ~num_items (Placement.spec ~factor:8 ()) in
  let full = Placement.full ~num_sites ~num_items in
  Alcotest.(check bool) "is_full" true (Placement.is_full p);
  Alcotest.(check int) "factor clamped" num_sites (Placement.factor p);
  for item = 0 to num_items - 1 do
    for site = 0 to num_sites - 1 do
      Alcotest.(check bool) "holds matches full"
        (Placement.holds full ~site ~item)
        (Placement.holds p ~site ~item)
    done;
    Alcotest.(check (list int)) "replicas match full"
      (Placement.replicas full item) (Placement.replicas p item)
  done

let test_replicas_consistent_per_sharding () =
  let num_sites = 5 and num_items = 40 and factor = 3 in
  List.iter
    (fun (name, sharding) ->
      let p = Placement.make ~num_sites ~num_items (Placement.spec ~sharding ~factor ()) in
      for item = 0 to num_items - 1 do
        let replicas = Placement.replicas p item in
        Alcotest.(check int) (name ^ ": k replicas") factor (List.length replicas);
        Alcotest.(check int)
          (name ^ ": primary leads the set")
          (Placement.primary p item) (List.hd replicas);
        (* replicas are consecutive on the ring from the primary *)
        Alcotest.(check (list int))
          (name ^ ": consecutive ring")
          (List.init factor (fun i -> (Placement.primary p item + i) mod num_sites))
          replicas;
        (* holds agrees with membership, in both directions *)
        for site = 0 to num_sites - 1 do
          Alcotest.(check bool)
            (name ^ ": holds = membership")
            (List.mem site replicas)
            (Placement.holds p ~site ~item)
        done;
        (* iter and fold agree with the list *)
        let via_iter = ref [] in
        Placement.iter_replicas p item (fun s -> via_iter := s :: !via_iter);
        Alcotest.(check (list int)) (name ^ ": iter order") replicas (List.rev !via_iter);
        Alcotest.(check int)
          (name ^ ": fold count") factor
          (Placement.fold_replicas p item (fun _ acc -> acc + 1) 0)
      done)
    (all_shardings ~num_items)

let test_sharding_primaries () =
  let num_sites = 4 and num_items = 16 in
  let modular =
    Placement.make ~num_sites ~num_items (Placement.spec ~sharding:Placement.Modular ~factor:2 ())
  in
  let range =
    Placement.make ~num_sites ~num_items (Placement.spec ~sharding:Placement.Range ~factor:2 ())
  in
  for item = 0 to num_items - 1 do
    Alcotest.(check int) "modular primary" (item mod num_sites) (Placement.primary modular item);
    Alcotest.(check int) "range primary" (item * num_sites / num_items)
      (Placement.primary range item)
  done

let test_hash_primary_in_range () =
  (* Rng.mix spans all 63-bit integers including negatives; the primary
     must still land in [0, num_sites) for every item id. *)
  let num_sites = 256 and num_items = 100_000 in
  let p = Placement.make ~num_sites ~num_items (Placement.spec ~factor:3 ()) in
  for item = 0 to num_items - 1 do
    let pr = Placement.primary p item in
    if pr < 0 || pr >= num_sites then
      Alcotest.failf "item %d: primary %d out of range" item pr
  done

let test_sharding_string_round_trip () =
  List.iter
    (fun name ->
      match Placement.sharding_of_string name with
      | Ok s -> Alcotest.(check string) "round trip" name (Placement.sharding_to_string s)
      | Error e -> Alcotest.fail e)
    [ "hash"; "range"; "modular" ];
  Alcotest.(check bool) "unknown rejected" true
    (Result.is_error (Placement.sharding_of_string "ring"))

let test_view_extras_round_trip () =
  let num_sites = 5 and num_items = 10 in
  let base =
    Placement.make ~num_sites ~num_items
      (Placement.spec ~sharding:Placement.Modular ~factor:2 ())
  in
  let v = Placement.View.create base in
  (* item 0's static holders are sites 0 and 1 *)
  Alcotest.(check bool) "no backup yet" false (Placement.View.holds v ~site:3 ~item:0);
  Placement.View.add_backup v ~site:3 ~item:0;
  Placement.View.add_backup v ~site:4 ~item:0;
  Placement.View.add_backup v ~site:0 ~item:0;  (* base holder: no-op *)
  Placement.View.add_backup v ~site:4 ~item:7;
  Alcotest.(check bool) "backup visible" true (Placement.View.holds v ~site:3 ~item:0);
  let holders = ref [] in
  Placement.View.iter_holders v 0 (fun s -> holders := s :: !holders);
  Alcotest.(check (list int)) "static then extras" [ 0; 1; 3; 4 ] (List.rev !holders);
  Alcotest.(check int) "count up holders" 3
    (Placement.View.count_holders_if v 0 (fun s -> s <> 1));
  let wire = Placement.View.extras v in
  Alcotest.(check bool) "wire form" true (wire = [ (0, [ 3; 4 ]); (7, [ 4 ]) ]);
  (* install the wire form into a fresh view: same holders everywhere *)
  let w = Placement.View.create base in
  Placement.View.install_extras w wire;
  for item = 0 to num_items - 1 do
    for site = 0 to num_sites - 1 do
      Alcotest.(check bool) "install matches"
        (Placement.View.holds v ~site ~item)
        (Placement.View.holds w ~site ~item)
    done
  done

let test_survives_any_two_failures () =
  (* k = 3 on 6 sites: whatever pair of sites fails, every item keeps at
     least one operational holder — the availability floor the partial
     soak relies on. *)
  let num_sites = 6 and num_items = 90 in
  List.iter
    (fun (name, sharding) ->
      let p = Placement.make ~num_sites ~num_items (Placement.spec ~sharding ~factor:3 ()) in
      for a = 0 to num_sites - 1 do
        for b = 0 to num_sites - 1 do
          for item = 0 to num_items - 1 do
            let up = Placement.fold_replicas p item (fun s acc ->
                if s <> a && s <> b then acc + 1 else acc) 0
            in
            if up < 1 then
              Alcotest.failf "%s: item %d has no holder with sites %d,%d down" name item a b
          done
        done
      done)
    (all_shardings ~num_items)

let test_partial_churn_invariants () =
  (* A quick churn schedule on a k=2 cluster with the runner checking all
     protocol invariants after every action: exercises that staleness
     tracking is judged only against the sites that actually store each
     item (plus coordinator witnesses). *)
  let num_sites = 4 and num_items = 40 in
  let config =
    Config.make ~cost:Cost_model.free
      ~replication:(Config.Partial (Placement.spec ~sharding:Placement.Modular ~factor:2 ()))
      ~num_sites ~num_items ()
  in
  let scenario =
    Scenario.make ~seed:17 ~config
      ~workload:(Workload.Uniform { max_ops = 4; write_prob = 0.5 })
      [
        Scenario.Run_txns 20;
        Scenario.Fail 1;
        Scenario.Run_txns 20;
        Scenario.Recover 1;
        Scenario.Run_txns 10;
        Scenario.Fail 3;
        Scenario.Run_txns 20;
        Scenario.Recover 3;
        Scenario.Run_txns 60;
      ]
  in
  let result = Runner.run ~check_invariants:true scenario in
  (* Sites store different subsets, so whole-database equality does not
     apply here; the runner's per-action invariant checks carry the test.
     Residual fail-locks are legitimate under on-demand recovery (they
     clear when the item is next touched), but traffic must flow. *)
  Alcotest.(check int) "no aborts" 0 result.Runner.aborted;
  Alcotest.(check bool) "substantial traffic" true (result.Runner.committed > 80)

let test_validation_errors () =
  Alcotest.check_raises "bad factor" (Invalid_argument "Placement.make: factor must be positive")
    (fun () ->
      ignore (Placement.make ~num_sites:3 ~num_items:2 (Placement.spec ~factor:0 ())));
  Alcotest.check_raises "wrong affinity length"
    (Invalid_argument "Placement.make: affinity array length must equal num_items") (fun () ->
      ignore
        (Placement.make ~num_sites:3 ~num_items:2
           (Placement.spec ~sharding:(Placement.Affinity [| 0 |]) ~factor:1 ())))

let suite =
  [
    Alcotest.test_case "factor clamps to full" `Quick test_factor_clamps_to_full;
    Alcotest.test_case "replicas consistent per sharding" `Quick
      test_replicas_consistent_per_sharding;
    Alcotest.test_case "modular and range primaries" `Quick test_sharding_primaries;
    Alcotest.test_case "hash primary stays in range" `Quick test_hash_primary_in_range;
    Alcotest.test_case "sharding string round trip" `Quick test_sharding_string_round_trip;
    Alcotest.test_case "view extras round trip" `Quick test_view_extras_round_trip;
    Alcotest.test_case "k=3 survives any two failures" `Quick test_survives_any_two_failures;
    Alcotest.test_case "partial churn under invariants" `Quick test_partial_churn_invariants;
    Alcotest.test_case "validation errors" `Quick test_validation_errors;
  ]
