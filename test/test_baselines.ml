module Protocol = Raid_baselines.Protocol
module Txn = Raid_core.Txn
module Cost_model = Raid_core.Cost_model
module Database = Raid_storage.Database

let create kind = Protocol.create ~cost:Cost_model.free kind ~num_sites:4 ~num_items:10 ()

let txn id ops = Txn.make ~id ops

let test_rowa_commits_when_all_up () =
  let t = create Protocol.Strict_rowa in
  let outcome = Protocol.submit t ~coordinator:0 (txn 1 [ Txn.Write 3; Txn.Read 3 ]) in
  Alcotest.(check bool) "committed" true outcome.Protocol.committed;
  for s = 0 to 3 do
    Alcotest.(check (option (pair int int)))
      (Printf.sprintf "site %d" s)
      (Some (1, 1))
      (Database.read (Protocol.database t s) 3)
  done

let test_rowa_blocks_writes_on_failure () =
  let t = create Protocol.Strict_rowa in
  Protocol.fail_site t 2;
  let write = Protocol.submit t ~coordinator:0 (txn 1 [ Txn.Write 3 ]) in
  Alcotest.(check bool) "write aborted" false write.Protocol.committed;
  (* Reads stay available (read-one). *)
  let read = Protocol.submit t ~coordinator:0 (txn 2 [ Txn.Read 3 ]) in
  Alcotest.(check bool) "read committed" true read.Protocol.committed

let test_rowa_recovery_is_trivial () =
  let t = create Protocol.Strict_rowa in
  Protocol.fail_site t 2;
  ignore (Protocol.submit t ~coordinator:0 (txn 1 [ Txn.Write 3 ]));
  Protocol.recover_site t 2;
  (* No write committed while the site was down, so all copies match. *)
  let ok = Protocol.submit t ~coordinator:0 (txn 2 [ Txn.Write 3 ]) in
  Alcotest.(check bool) "write commits after recovery" true ok.Protocol.committed;
  Alcotest.(check (option (pair int int))) "recovered site current" (Some (2, 2))
    (Database.read (Protocol.database t 2) 3)

let test_quorum_commits_with_minority_down () =
  let t = create (Protocol.majority ~num_sites:4) in
  Protocol.fail_site t 3;
  let outcome = Protocol.submit t ~coordinator:0 (txn 1 [ Txn.Write 5; Txn.Read 5 ]) in
  Alcotest.(check bool) "committed with 3/4 up" true outcome.Protocol.committed

let test_quorum_aborts_below_quorum () =
  let t = create (Protocol.majority ~num_sites:4) in
  Protocol.fail_site t 2;
  Protocol.fail_site t 3;
  let write = Protocol.submit t ~coordinator:0 (txn 1 [ Txn.Write 5 ]) in
  Alcotest.(check bool) "write aborted with 2/4 up" false write.Protocol.committed;
  let read = Protocol.submit t ~coordinator:0 (txn 2 [ Txn.Read 5 ]) in
  Alcotest.(check bool) "read aborted with 2/4 up" false read.Protocol.committed

let test_quorum_read_sees_newest_despite_stale_replica () =
  let t = create (Protocol.Quorum { read_quorum = 3; write_quorum = 2 }) in
  (* Write while sites 2,3 are up-but-unchosen: write quorum 2 targets the
     coordinator plus the first up other (site 1), leaving 2,3 stale. *)
  let w = Protocol.submit t ~coordinator:0 (txn 1 [ Txn.Write 4 ]) in
  Alcotest.(check bool) "write committed" true w.Protocol.committed;
  Alcotest.(check (option (pair int int))) "site 3 stale" (Some (0, 0))
    (Database.read (Protocol.database t 3) 4);
  (* A quorum read from site 2 (whose own copy is stale) must still see
     version 1: any 3 sites intersect the write set {0,1}. *)
  Alcotest.(check (option (pair int int))) "quorum read newest" (Some (1, 1))
    (Protocol.read_value t ~coordinator:2 4)

let test_quorum_transactional_read_path () =
  let t = create (Protocol.Quorum { read_quorum = 3; write_quorum = 2 }) in
  ignore (Protocol.submit t ~coordinator:0 (txn 1 [ Txn.Write 4 ]));
  (* Site 3's transactional read gathers 3 copies and must commit. *)
  let r = Protocol.submit t ~coordinator:3 (txn 2 [ Txn.Read 4 ]) in
  Alcotest.(check bool) "read txn commits" true r.Protocol.committed;
  Alcotest.(check bool) "read txns cost messages" true (r.Protocol.messages >= 4)

let test_quorum_validation () =
  Alcotest.check_raises "r+w too small"
    (Invalid_argument "Protocol: need read_quorum + write_quorum > num_sites") (fun () ->
      ignore
        (Protocol.create (Protocol.Quorum { read_quorum = 2; write_quorum = 2 }) ~num_sites:4
           ~num_items:4 ()));
  Alcotest.check_raises "quorum exceeds sites"
    (Invalid_argument "Protocol: quorum exceeds number of sites") (fun () ->
      ignore
        (Protocol.create (Protocol.Quorum { read_quorum = 5; write_quorum = 1 }) ~num_sites:4
           ~num_items:4 ()))

let test_majority_helper () =
  match Protocol.majority ~num_sites:5 with
  | Protocol.Quorum { read_quorum = 3; write_quorum = 3 } -> ()
  | _ -> Alcotest.fail "majority of 5 should be 3/3"

let test_coordinator_down_rejected () =
  let t = create Protocol.Strict_rowa in
  Protocol.fail_site t 0;
  Alcotest.check_raises "down coordinator" (Invalid_argument "Protocol.submit: coordinator is down")
    (fun () -> ignore (Protocol.submit t ~coordinator:0 (txn 1 [ Txn.Read 0 ])))

let test_message_counting () =
  let t = create Protocol.Strict_rowa in
  (* One write to 3 others: 3 requests + 3 acks = 6 messages. *)
  let outcome = Protocol.submit t ~coordinator:0 (txn 1 [ Txn.Write 0 ]) in
  Alcotest.(check int) "write-all messages" 6 outcome.Protocol.messages;
  (* A local read costs nothing. *)
  let read = Protocol.submit t ~coordinator:0 (txn 2 [ Txn.Read 0 ]) in
  Alcotest.(check int) "read messages" 0 read.Protocol.messages

(* Property: under any schedule of single-site failures/recoveries and
   writes, a quorum read (when available) returns the newest committed
   version — the r+w > n intersection argument, checked empirically. *)
let prop_quorum_reads_never_stale =
  let gen =
    QCheck.Gen.(list_size (int_range 1 40) (pair (int_range 0 9) (int_range 0 3)))
  in
  QCheck.Test.make ~name:"quorum reads never stale" ~count:100
    (QCheck.make ~print:(fun ops ->
         String.concat ";" (List.map (fun (a, s) -> Printf.sprintf "%d@%d" a s) ops))
       gen)
    (fun ops ->
      let t =
        Protocol.create ~cost:Cost_model.free (Protocol.majority ~num_sites:4) ~num_sites:4
          ~num_items:4 ()
      in
      let last_committed = Array.make 4 0 in
      let txn_counter = ref 0 in
      let down = Hashtbl.create 4 in
      let ok = ref true in
      List.iter
        (fun (action, site) ->
          match action mod 10 with
          | 0 | 1 ->
            if Hashtbl.mem down site then begin
              Protocol.recover_site t site;
              Hashtbl.remove down site
            end
            else if Hashtbl.length down < 1 then begin
              (* keep at most one site down: a write quorum must exist *)
              Protocol.fail_site t site;
              Hashtbl.add down site ()
            end
          | n ->
            let item = n mod 4 in
            incr txn_counter;
            let coordinator = if Hashtbl.mem down site then (site + 1) mod 4 else site in
            if not (Hashtbl.mem down coordinator) then begin
              let outcome =
                Protocol.submit t ~coordinator (txn !txn_counter [ Txn.Write item ])
              in
              if outcome.Protocol.committed then last_committed.(item) <- !txn_counter;
              (* Quorum-read every item from every up site. *)
              for reader = 0 to 3 do
                if not (Hashtbl.mem down reader) then
                  for probe = 0 to 3 do
                    match Protocol.read_value t ~coordinator:reader probe with
                    | Some (_, version) -> if version <> last_committed.(probe) then ok := false
                    | None -> ok := false
                  done
              done
            end)
        ops;
      !ok)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_quorum_reads_never_stale;
    Alcotest.test_case "strict ROWA commits when all up" `Quick test_rowa_commits_when_all_up;
    Alcotest.test_case "strict ROWA blocks writes on failure" `Quick
      test_rowa_blocks_writes_on_failure;
    Alcotest.test_case "strict ROWA trivial recovery" `Quick test_rowa_recovery_is_trivial;
    Alcotest.test_case "quorum commits with minority down" `Quick
      test_quorum_commits_with_minority_down;
    Alcotest.test_case "quorum aborts below quorum" `Quick test_quorum_aborts_below_quorum;
    Alcotest.test_case "quorum read sees newest" `Quick
      test_quorum_read_sees_newest_despite_stale_replica;
    Alcotest.test_case "quorum transactional read path" `Quick test_quorum_transactional_read_path;
    Alcotest.test_case "quorum validation" `Quick test_quorum_validation;
    Alcotest.test_case "majority helper" `Quick test_majority_helper;
    Alcotest.test_case "down coordinator rejected" `Quick test_coordinator_down_rejected;
    Alcotest.test_case "message counting" `Quick test_message_counting;
  ]
