(* Structural tests for the experiment reports and remaining runner
   policies: row shapes, sample counts, weighted-policy renormalisation,
   cluster-size scaling directions. *)

module Experiment1 = Raid_sim.Experiment1
module Scenario = Raid_sim.Scenario
module Runner = Raid_sim.Runner
module Scaling = Raid_sim.Scaling
module Config = Raid_core.Config
module Cost_model = Raid_core.Cost_model
module Workload = Raid_core.Workload
module Metrics = Raid_core.Metrics

let test_exp1_report_shapes () =
  (* Small parameters keep this quick; shapes must still be right. *)
  let report = Experiment1.faillock_overhead ~txns:40 () in
  Alcotest.(check int) "four rows" 4 (List.length report.Experiment1.rows);
  List.iter
    (fun row ->
      Alcotest.(check bool)
        (row.Experiment1.label ^ " has samples")
        true (row.Experiment1.samples > 0);
      Alcotest.(check bool)
        (row.Experiment1.label ^ " measured positive")
        true
        (row.Experiment1.measured_ms > 0.0))
    report.Experiment1.rows;
  (* Fail-lock maintenance must cost more than its absence. *)
  (match report.Experiment1.rows with
  | [ coord_without; coord_with; part_without; part_with ] ->
    Alcotest.(check bool) "coordinator dearer with locks" true
      (coord_with.Experiment1.measured_ms > coord_without.Experiment1.measured_ms);
    Alcotest.(check bool) "participant dearer with locks" true
      (part_with.Experiment1.measured_ms > part_without.Experiment1.measured_ms)
  | _ -> Alcotest.fail "unexpected rows");
  let table = Experiment1.to_table report in
  Alcotest.(check bool) "renders" true (String.length (Raid_util.Table.render table) > 0)

let test_exp1_copier_overhead_order () =
  let report = Experiment1.copier_overhead ~trials:25 () in
  match report.Experiment1.rows with
  | [ baseline; with_copier; serve; clear ] ->
    Alcotest.(check bool) "copier txn dearer than baseline" true
      (with_copier.Experiment1.measured_ms > baseline.Experiment1.measured_ms);
    Alcotest.(check bool) "service costs less than the txn" true
      (serve.Experiment1.measured_ms < with_copier.Experiment1.measured_ms);
    Alcotest.(check bool) "clear is the cheapest" true
      (clear.Experiment1.measured_ms < serve.Experiment1.measured_ms +. 1.0)
  | _ -> Alcotest.fail "unexpected rows"

let test_weighted_policy_renormalises () =
  (* Weights listing a down site must renormalise to the operational
     subset rather than fail. *)
  let config = Config.make ~cost:Cost_model.free ~num_sites:3 ~num_items:6 () in
  let scenario =
    Scenario.make
      ~policy:(Scenario.Weighted [ (0, 0.5); (1, 0.25); (2, 0.25) ])
      ~config
      ~workload:(Workload.Uniform { max_ops = 2; write_prob = 0.5 })
      [ Scenario.Fail 0; Scenario.Run_txns 10 ]
  in
  let result = Runner.run scenario in
  Alcotest.(check int) "all ran" 10 (List.length result.Runner.records);
  List.iter
    (fun r ->
      Alcotest.(check bool) "never the dead site" true
        (r.Runner.outcome.Metrics.coordinator <> 0))
    result.Runner.records

let test_weighted_policy_all_zero_falls_back () =
  let config = Config.make ~cost:Cost_model.free ~num_sites:2 ~num_items:4 () in
  let scenario =
    Scenario.make
      ~policy:(Scenario.Weighted [ (0, 0.0); (1, 0.0) ])
      ~config
      ~workload:(Workload.Uniform { max_ops = 2; write_prob = 0.5 })
      [ Scenario.Run_txns 5 ]
  in
  let result = Runner.run scenario in
  Alcotest.(check int) "falls back to uniform" 5 (List.length result.Runner.records)

let test_cluster_size_scaling () =
  let rows = Scaling.recovery_vs_cluster_size ~site_counts:[ 2; 8 ] () in
  match rows with
  | [ two; eight ] ->
    (* The peak only counts site 0's stale copies; it is driven by the
       write pattern, not the cluster size. *)
    Alcotest.(check bool) "both peaks high" true (two.Scaling.cs_peak > 40 && eight.Scaling.cs_peak > 40);
    Alcotest.(check bool) "both recover" true
      (two.Scaling.cs_recovery_txns > 0 && eight.Scaling.cs_recovery_txns > 0)
  | _ -> Alcotest.fail "unexpected rows"

let suite =
  [
    Alcotest.test_case "experiment 1 report shapes" `Slow test_exp1_report_shapes;
    Alcotest.test_case "copier overhead ordering" `Slow test_exp1_copier_overhead_order;
    Alcotest.test_case "weighted policy renormalises" `Quick test_weighted_policy_renormalises;
    Alcotest.test_case "all-zero weights fall back" `Quick test_weighted_policy_all_zero_falls_back;
    Alcotest.test_case "cluster-size scaling" `Slow test_cluster_size_scaling;
  ]
