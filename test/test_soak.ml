(* Endurance ("soak") tests: larger clusters, every extension enabled at
   once, long random schedules — the closest thing to running the full
   system in production.  All invariants must hold throughout (the runner
   checks after every action) and the cluster must converge at the end. *)

module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Cost_model = Raid_core.Cost_model
module Workload = Raid_core.Workload
module Scenario = Raid_sim.Scenario
module Runner = Raid_sim.Runner
module Rng = Raid_util.Rng

let churn_actions ~rng ~num_sites ~rounds =
  (* Rolling churn: each round fails a random site, runs traffic, brings
     it back, runs more traffic.  Never kills the last survivor. *)
  List.concat_map
    (fun _ ->
      let victim = Rng.int rng num_sites in
      [
        Scenario.Fail victim;
        Scenario.Run_txns (10 + Rng.int rng 20);
        Scenario.Recover victim;
        Scenario.Run_txns (10 + Rng.int rng 20);
      ])
    (List.init rounds Fun.id)

let run_soak ~config ~seed ~rounds =
  let rng = Rng.create (seed * 31) in
  let actions =
    churn_actions ~rng ~num_sites:config.Config.num_sites ~rounds
    @ [ Scenario.Run_until_consistent { max_txns = 5000 } ]
  in
  let scenario =
    Scenario.make ~seed ~config
      ~workload:(Workload.Uniform { max_ops = 6; write_prob = 0.4 })
      actions
  in
  (* check_invariants:true makes the runner verify the protocol
     invariants after every single action. *)
  Runner.run ~check_invariants:true scenario

let test_eight_sites_everything_on () =
  let config =
    Config.make ~cost:Cost_model.free
      ~recovery:(Config.Two_step { threshold = 0.4; batch_size = 10 })
      ~durability:(Config.Durable_wal { checkpoint_interval = 32 })
      ~embed_clears:true ~num_sites:8 ~num_items:120 ()
  in
  let result = run_soak ~config ~seed:101 ~rounds:12 in
  Alcotest.(check bool) "converged" true (Cluster.fully_consistent result.Runner.cluster);
  Alcotest.(check bool) "substantial traffic" true (result.Runner.committed > 200)

let test_partial_replication_soak () =
  let num_sites = 6 and num_items = 90 in
  (* three copies per item, on consecutive sites *)
  let placement =
    Raid_core.Placement.spec ~sharding:Raid_core.Placement.Modular ~factor:3 ()
  in
  let config =
    Config.make ~cost:Cost_model.free
      ~replication:(Config.Partial placement)
      ~spawn_backups:true ~num_sites ~num_items ()
  in
  let result = run_soak ~config ~seed:202 ~rounds:10 in
  (* With three copies and single-site churn, nothing should abort. *)
  Alcotest.(check int) "no aborts" 0 result.Runner.aborted;
  Alcotest.(check bool) "substantial traffic" true (result.Runner.committed > 200)

let test_timeout_detection_soak () =
  let config = Config.make ~cost:Cost_model.free ~num_sites:5 ~num_items:60 () in
  let rng = Rng.create 99 in
  let scenario =
    Scenario.make ~detection:Raid_core.Cluster.On_timeout ~seed:303 ~config
      ~workload:(Workload.Uniform { max_ops = 5; write_prob = 0.5 })
      (churn_actions ~rng ~num_sites:5 ~rounds:10
      @ [ Scenario.Run_until_consistent { max_txns = 5000 } ])
  in
  let result = Runner.run scenario in
  Alcotest.(check bool) "converged" true (Cluster.fully_consistent result.Runner.cluster);
  (* Undetected failures cost some aborts, but the system always recovers. *)
  Alcotest.(check bool) "bounded aborts" true (result.Runner.aborted <= 12)

let test_sixteen_site_scale () =
  let config = Config.make ~cost:Cost_model.free ~num_sites:16 ~num_items:200 () in
  let result = run_soak ~config ~seed:404 ~rounds:8 in
  Alcotest.(check bool) "converged at 16 sites" true
    (Cluster.fully_consistent result.Runner.cluster)

let suite =
  [
    Alcotest.test_case "8 sites, every extension on" `Slow test_eight_sites_everything_on;
    Alcotest.test_case "partial replication churn" `Slow test_partial_replication_soak;
    Alcotest.test_case "timeout-detection churn" `Slow test_timeout_detection_soak;
    Alcotest.test_case "16-site scale" `Slow test_sixteen_site_scale;
  ]
