(* Network partitions.

   The paper defines fail-locks for copies "unavailable due to site
   failure or network partitioning" (§1) but its protocol — like any
   ROWA-available scheme — cannot prevent divergence when the network
   splits: each side concludes the other has failed (control-2) and keeps
   accepting writes.  These tests pin down exactly that behaviour: the
   engine's severed links make both halves diverge, and the invariant
   checker catches the resulting stale read.  (The quorum baseline exists
   precisely because majorities make one side stop.) *)

module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Cost_model = Raid_core.Cost_model
module Txn = Raid_core.Txn
module Metrics = Raid_core.Metrics
module Invariant = Raid_core.Invariant
module Engine = Raid_net.Engine

let sever_between engine side_a side_b =
  List.iter (fun a -> List.iter (fun b -> Engine.set_link engine a b false) side_b) side_a

let partitioned_cluster () =
  let config = Config.make ~cost:Cost_model.free ~num_sites:4 ~num_items:10 () in
  let cluster = Cluster.create ~settings:(Cluster.settings ~detection:Cluster.On_timeout ()) config in
  sever_between (Cluster.engine cluster) [ 0; 1 ] [ 2; 3 ];
  cluster

(* Each side's first transaction discovers the "failure" of the other
   side and aborts; retry until the side has adapted. *)
let submit_until_commit cluster ~coordinator ops =
  let rec loop budget =
    if budget = 0 then Alcotest.fail "side never adapted to the partition";
    let id = Cluster.next_txn_id cluster in
    let outcome = Cluster.submit cluster ~coordinator (Txn.make ~id ops) in
    if outcome.Metrics.committed then outcome else loop (budget - 1)
  in
  loop 5

let test_both_sides_keep_writing () =
  let cluster = partitioned_cluster () in
  let a = submit_until_commit cluster ~coordinator:0 [ Txn.Write 5 ] in
  let b = submit_until_commit cluster ~coordinator:2 [ Txn.Write 5 ] in
  Alcotest.(check bool) "both committed" true (a.Metrics.committed && b.Metrics.committed);
  (* The two halves now hold different copies of item 5. *)
  let read side =
    Raid_storage.Database.read (Raid_core.Site.database (Cluster.site cluster side)) 5
  in
  Alcotest.(check bool) "divergence" true (read 0 <> read 2)

let test_stale_read_detected () =
  let cluster = partitioned_cluster () in
  let _ = submit_until_commit cluster ~coordinator:0 [ Txn.Write 5 ] in
  let newer = submit_until_commit cluster ~coordinator:2 [ Txn.Write 5 ] in
  (* Side A now reads its own stale copy of item 5 — a correctness
     violation no fail-lock can flag, because side A believes side B is
     simply down. *)
  let stale = submit_until_commit cluster ~coordinator:0 [ Txn.Read 5 ] in
  (match stale.Metrics.reads with
  | [ (5, _, version) ] ->
    Alcotest.(check bool) "read an old version" true
      (version < newer.Metrics.txn.Raid_core.Txn.id)
  | _ -> Alcotest.fail "unexpected read set");
  match Invariant.no_stale_reads cluster with
  | Error _ -> ()  (* the checker catches the split-brain read *)
  | Ok () -> Alcotest.fail "stale read went undetected"

let test_each_side_marks_other_down () =
  let cluster = partitioned_cluster () in
  let _ = submit_until_commit cluster ~coordinator:0 [ Txn.Write 1 ] in
  let vector0 = Raid_core.Site.vector (Cluster.site cluster 0) in
  Alcotest.(check bool) "side A thinks 2 down" false (Raid_core.Session.is_up vector0 2);
  Alcotest.(check bool) "side A thinks 3 down" false (Raid_core.Session.is_up vector0 3);
  Alcotest.(check bool) "side A keeps 1 up" true (Raid_core.Session.is_up vector0 1)

let test_healing_via_recovery_protocol () =
  (* After the partition heals, running the recovery protocol on one side
     reconciles it: we treat side A's sites as "recovering" so they fetch
     authoritative state from side B (the side chosen to survive).  This
     mirrors how a real deployment resolves ROWAA split-brain: one side
     is designated primary, the other re-joins through control-1. *)
  let cluster = partitioned_cluster () in
  let _ = submit_until_commit cluster ~coordinator:0 [ Txn.Write 5 ] in
  let b = submit_until_commit cluster ~coordinator:2 [ Txn.Write 5 ] in
  (* Heal the network. *)
  List.iter
    (fun a -> List.iter (fun s -> Engine.set_link (Cluster.engine cluster) a s true) [ 2; 3 ])
    [ 0; 1 ];
  (* Re-join side A through fail + recover (state comes from side B). *)
  Cluster.fail_site cluster 0;
  Cluster.fail_site cluster 1;
  (match Cluster.recover_site cluster 0 with `Recovered -> () | `Blocked -> Alcotest.fail "blocked");
  (match Cluster.recover_site cluster 1 with `Recovered -> () | `Blocked -> Alcotest.fail "blocked");
  (* Side A's divergent write of item 5 is overwritten once traffic (or a
     copier) touches it; force it with one write. *)
  let id = Cluster.next_txn_id cluster in
  let _ = Cluster.submit cluster ~coordinator:2 (Txn.make ~id [ Txn.Write 5 ]) in
  Alcotest.(check bool) "consistent after re-join" true (Cluster.fully_consistent cluster);
  ignore b

let suite =
  [
    Alcotest.test_case "both sides keep writing" `Quick test_both_sides_keep_writing;
    Alcotest.test_case "stale read detected by checker" `Quick test_stale_read_detected;
    Alcotest.test_case "each side marks other down" `Quick test_each_side_marks_other_down;
    Alcotest.test_case "healing via recovery protocol" `Quick test_healing_via_recovery_protocol;
  ]
