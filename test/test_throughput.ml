(* Steady-state throughput layer: determinism across domain counts,
   monotonicity in the virtual duration (failure times are absolute, so a
   longer run extends a shorter one), and basic accounting. *)

module Throughput = Raid_sim.Throughput

let failure = { Throughput.fail_site = 0; fail_at_ms = 100.0; recover_at_ms = 300.0 }

(* Small item space so post-recovery transactions are near-certain to touch
   fail-locked items (recovery is on-demand by default). *)
let config ?failure ?(duration_ms = 800.0) () =
  Throughput.make_config ~sites:4 ~items:20 ~duration_ms ?failure ()

let test_deterministic_across_domains () =
  let cfg = config ~failure () in
  let sequential = Throughput.run_seeds ~domains:1 ~seeds:3 cfg in
  let parallel = Throughput.run_seeds ~domains:4 ~seeds:3 cfg in
  Alcotest.(check bool) "bit-identical for any -j" true (sequential = parallel)

let test_monotone_in_duration () =
  let short = Throughput.run (config ~failure ~duration_ms:600.0 ()) in
  let long = Throughput.run (config ~failure ~duration_ms:1200.0 ()) in
  Alcotest.(check bool) "submitted grows" true (long.Throughput.submitted >= short.Throughput.submitted);
  Alcotest.(check bool) "committed grows" true (long.Throughput.committed >= short.Throughput.committed);
  Alcotest.(check bool) "aborted grows" true (long.Throughput.aborted >= short.Throughput.aborted);
  Alcotest.(check bool) "virtual time grows" true
    (long.Throughput.virtual_ms >= short.Throughput.virtual_ms);
  Alcotest.(check bool) "short run not empty" true (short.Throughput.committed > 0)

let test_failure_recovery_accounting () =
  let r = Throughput.run (config ~failure ~duration_ms:3000.0 ()) in
  Alcotest.(check int) "every txn resolves"
    r.Throughput.submitted
    (r.Throughput.committed + r.Throughput.aborted);
  Alcotest.(check bool) "failed site recovered" true r.Throughput.recovered;
  Alcotest.(check bool) "fail-locks were set" true (r.Throughput.faillocks_set > 0);
  Alcotest.(check bool) "fail-locks were cleared" true (r.Throughput.faillocks_cleared > 0);
  Alcotest.(check bool) "events counted" true (r.Throughput.events > 0);
  let window_sum f = List.fold_left (fun acc w -> acc + f w) 0 r.Throughput.windows in
  Alcotest.(check int) "windows sum to committed"
    r.Throughput.committed
    (window_sum (fun w -> w.Throughput.w_committed));
  Alcotest.(check int) "windows sum to aborted" r.Throughput.aborted
    (window_sum (fun w -> w.Throughput.w_aborted));
  (* The protocol columns are diffs of cumulative snapshots at recorded
     transactions, so their sums never exceed the run totals. *)
  Alcotest.(check bool) "window copiers bounded" true
    (window_sum (fun w -> w.Throughput.w_copiers) <= r.Throughput.copier_requests);
  Alcotest.(check bool) "window faillocks_set bounded" true
    (window_sum (fun w -> w.Throughput.w_faillocks_set) <= r.Throughput.faillocks_set);
  Alcotest.(check bool) "window faillocks_cleared bounded" true
    (window_sum (fun w -> w.Throughput.w_faillocks_cleared) <= r.Throughput.faillocks_cleared);
  Alcotest.(check bool) "window messages bounded" true
    (window_sum (fun w -> w.Throughput.w_messages) <= r.Throughput.messages_sent);
  List.iter
    (fun w ->
      Alcotest.(check bool) "window columns non-negative" true
        (w.Throughput.w_copiers >= 0 && w.Throughput.w_faillocks_set >= 0
        && w.Throughput.w_faillocks_cleared >= 0 && w.Throughput.w_messages >= 0))
    r.Throughput.windows;
  Alcotest.(check bool) "windows carry message activity" true
    (window_sum (fun w -> w.Throughput.w_messages) > 0);
  let rate = Throughput.abort_rate r in
  Alcotest.(check bool) "abort rate in [0,1]" true (rate >= 0.0 && rate <= 1.0);
  Alcotest.(check bool) "txns/vsec positive" true (Throughput.txns_per_vsec r > 0.0)

let test_no_failure_run () =
  let r = Throughput.run (config ()) in
  Alcotest.(check bool) "recovered vacuously" true r.Throughput.recovered;
  Alcotest.(check int) "nothing aborted" 0 r.Throughput.aborted;
  Alcotest.(check bool) "commits flow" true (r.Throughput.committed > 0)

let test_validation () =
  let invalid name f = Alcotest.check_raises name (Invalid_argument name) f in
  invalid "Throughput: sites must be positive" (fun () ->
      ignore (Throughput.make_config ~sites:0 ()));
  invalid "Throughput: duration must be positive" (fun () ->
      ignore (Throughput.make_config ~duration_ms:0.0 ()));
  invalid "Throughput: fail_site out of range" (fun () ->
      ignore
        (Throughput.make_config ~sites:4
           ~failure:{ Throughput.fail_site = 4; fail_at_ms = 1.0; recover_at_ms = 2.0 }
           ()));
  invalid "Throughput: need 0 <= fail_at < recover_at" (fun () ->
      ignore
        (Throughput.make_config ~sites:4
           ~failure:{ Throughput.fail_site = 0; fail_at_ms = 5.0; recover_at_ms = 5.0 }
           ()))

let suite =
  [
    Alcotest.test_case "deterministic across -j" `Quick test_deterministic_across_domains;
    Alcotest.test_case "monotone in duration" `Quick test_monotone_in_duration;
    Alcotest.test_case "failure/recovery accounting" `Quick test_failure_recovery_accounting;
    Alcotest.test_case "no-failure run" `Quick test_no_failure_run;
    Alcotest.test_case "config validation" `Quick test_validation;
  ]
