(* Tests for the domain pool: order preservation, sequential equivalence,
   exception propagation from worker domains, and end-to-end determinism
   of a parallel sweep against its sequential twin. *)

module Pool = Raid_par.Pool

let test_order_preserved () =
  let xs = List.init 100 Fun.id in
  let expected = List.map (fun x -> x * x) xs in
  Alcotest.(check (list int))
    "4 domains, 100 items" expected
    (Pool.map ~domains:4 (fun x -> x * x) xs);
  Alcotest.(check (list int))
    "more domains than items" expected
    (Pool.map ~domains:16 (fun x -> x * x) xs)

let test_sequential_equivalence () =
  let xs = List.init 37 (fun i -> i - 5) in
  let f x = (x * 3) - 1 in
  Alcotest.(check (list int)) "domains=1 is List.map" (List.map f xs) (Pool.map ~domains:1 f xs);
  Alcotest.(check (list int)) "empty list" [] (Pool.map ~domains:4 f []);
  Alcotest.(check (list int)) "singleton" [ f 9 ] (Pool.map ~domains:4 f [ 9 ])

let test_exception_propagation () =
  Alcotest.check_raises "worker exception reaches the caller" (Failure "boom-7") (fun () ->
      ignore
        (Pool.map ~domains:4
           (fun x -> if x = 7 then failwith "boom-7" else x)
           (List.init 20 Fun.id)));
  (* With several failures the leftmost one wins, regardless of which
     domain finished first. *)
  Alcotest.check_raises "leftmost failure wins" (Failure "boom-3") (fun () ->
      ignore
        (Pool.map ~domains:4
           (fun x -> if x >= 3 then failwith (Printf.sprintf "boom-%d" x) else x)
           (List.init 20 Fun.id)))

let test_early_stop_on_failure () =
  (* Regression: once a worker records a failure, no worker may claim new
     items (the whole remaining list used to be evaluated just to be
     discarded).  The first item poisons the run; every other item parks
     on a gate the poison item opens just before raising, then burns a
     beat so the pool's failure flag is set well before any worker goes
     back to the claim loop.  If claiming kept going, (nearly) all items
     would run; with the stop, only the in-flight handful does. *)
  let n = 200 in
  let gate = Atomic.make false in
  let ran = Atomic.make 0 in
  (try
     ignore
       (Pool.map ~domains:4
          (fun x ->
            if x = 0 then begin
              Atomic.set gate true;
              failwith "poison"
            end
            else begin
              while not (Atomic.get gate) do
                Domain.cpu_relax ()
              done;
              for _ = 1 to 10_000 do
                Domain.cpu_relax ()
              done;
              Atomic.incr ran;
              x
            end)
          (List.init n Fun.id))
   with Failure _ -> ());
  let ran = Atomic.get ran in
  Alcotest.(check bool)
    (Printf.sprintf "claiming stopped early (%d of %d ran)" ran (n - 1))
    true
    (ran < n / 2);
  (* The leftmost recorded failure still wins deterministically. *)
  Alcotest.check_raises "leftmost evaluated failure" (Failure "poison") (fun () ->
      ignore
        (Pool.map ~domains:4
           (fun x -> if x = 0 then failwith "poison" else x)
           (List.init 50 Fun.id)))

let test_validation () =
  Alcotest.check_raises "zero domains"
    (Invalid_argument "Par.Pool.map: domain count must be at least 1") (fun () ->
      ignore (Pool.map ~domains:0 Fun.id [ 1 ]));
  Alcotest.check_raises "bad default"
    (Invalid_argument "Par.Pool.set_default_domains: domain count must be at least 1") (fun () ->
      Pool.set_default_domains 0)

let test_default_domains () =
  let before = Pool.default_domains () in
  Fun.protect
    ~finally:(fun () -> Pool.set_default_domains before)
    (fun () ->
      Pool.set_default_domains 3;
      Alcotest.(check int) "set/get" 3 (Pool.default_domains ());
      (* ?domains omitted picks up the default. *)
      Alcotest.(check (list int))
        "default applies" [ 2; 4; 6 ]
        (Pool.map (fun x -> 2 * x) [ 1; 2; 3 ]));
  Alcotest.(check bool) "recommended is positive" true (Pool.recommended_domains () >= 1)

(* The acceptance bar for the whole parallel layer: a real multi-seed
   sweep must produce byte-identical results sequentially and with 4
   domains.  seed_summary is a record of floats and ints, so structural
   equality is bit-level. *)
let test_experiment2_sweep_deterministic () =
  let seeds = List.init 6 (fun i -> i + 1) in
  let sequential = Raid_sim.Scaling.experiment2_seeds ~domains:1 ~seeds () in
  let parallel = Raid_sim.Scaling.experiment2_seeds ~domains:4 ~seeds () in
  Alcotest.(check bool) "sequential = 4 domains" true (sequential = parallel)

let test_cluster_sweep_deterministic () =
  let site_counts = [ 2; 3; 4 ] in
  let sequential = Raid_sim.Scaling.recovery_vs_cluster_size ~domains:1 ~site_counts () in
  let parallel = Raid_sim.Scaling.recovery_vs_cluster_size ~domains:4 ~site_counts () in
  Alcotest.(check bool) "sequential = 4 domains" true (sequential = parallel)

let suite =
  [
    Alcotest.test_case "order preserved" `Quick test_order_preserved;
    Alcotest.test_case "sequential equivalence" `Quick test_sequential_equivalence;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "early stop on failure" `Quick test_early_stop_on_failure;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "default domains" `Quick test_default_domains;
    Alcotest.test_case "experiment-2 sweep determinism" `Slow test_experiment2_sweep_deterministic;
    Alcotest.test_case "cluster-size sweep determinism" `Slow test_cluster_sweep_deterministic;
  ]
