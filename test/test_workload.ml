module Workload = Raid_core.Workload
module Txn = Raid_core.Txn
module Rng = Raid_util.Rng

let make ?(num_items = 50) ?(seed = 1) spec =
  Workload.create spec ~num_items ~rng:(Rng.create seed)

let test_uniform_bounds () =
  let w = make (Workload.Uniform { max_ops = 5; write_prob = 0.5 }) in
  for id = 1 to 200 do
    let txn = Workload.next w ~id in
    Alcotest.(check bool) "size in [1,5]" true (Txn.size txn >= 1 && Txn.size txn <= 5);
    List.iter
      (fun item -> Alcotest.(check bool) "item in range" true (item >= 0 && item < 50))
      (Txn.items txn);
    Alcotest.(check int) "id propagated" id txn.Txn.id
  done

let test_uniform_rw_mix () =
  let w = make ~seed:3 (Workload.Uniform { max_ops = 10; write_prob = 0.5 }) in
  let reads = ref 0 and writes = ref 0 in
  for id = 1 to 500 do
    List.iter
      (function Txn.Read _ -> incr reads | Txn.Write _ -> incr writes)
      (Workload.next w ~id).Txn.ops
  done;
  let total = !reads + !writes in
  let fraction = float_of_int !writes /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "write fraction near 0.5 (%.3f)" fraction)
    true
    (fraction > 0.45 && fraction < 0.55)

let test_uniform_write_prob_extremes () =
  let all_reads = make (Workload.Uniform { max_ops = 5; write_prob = 0.0 }) in
  let all_writes = make (Workload.Uniform { max_ops = 5; write_prob = 1.0 }) in
  for id = 1 to 50 do
    Alcotest.(check bool) "read-only" true (Txn.is_read_only (Workload.next all_reads ~id));
    Alcotest.(check (list int)) "no reads" [] (Txn.read_items (Workload.next all_writes ~id))
  done

let test_determinism () =
  let a = make ~seed:9 (Workload.paper_default ~max_ops:10) in
  let b = make ~seed:9 (Workload.paper_default ~max_ops:10) in
  for id = 1 to 50 do
    Alcotest.(check string) "same stream"
      (Format.asprintf "%a" Txn.pp (Workload.next a ~id))
      (Format.asprintf "%a" Txn.pp (Workload.next b ~id))
  done

let test_et1_structure () =
  let spec = Workload.Et1 { branches = 2; tellers_per_branch = 3; accounts_per_branch = 10 } in
  let w = make ~num_items:50 spec in
  for id = 1 to 100 do
    let txn = Workload.next w ~id in
    Alcotest.(check int) "six operations" 6 (Txn.size txn);
    (* Structure: RMW on account, teller, branch. *)
    (match txn.Txn.ops with
    | [ Txn.Read a; Txn.Write a'; Txn.Read t; Txn.Write t'; Txn.Read b; Txn.Write b' ] ->
      Alcotest.(check int) "account RMW" a a';
      Alcotest.(check int) "teller RMW" t t';
      Alcotest.(check int) "branch RMW" b b';
      Alcotest.(check bool) "branch region" true (b >= 0 && b < 2);
      Alcotest.(check bool) "teller region" true (t >= 2 && t < 8);
      Alcotest.(check bool) "account region" true (a >= 8 && a < 28);
      (* The teller and account belong to the chosen branch. *)
      Alcotest.(check int) "teller's branch" b ((t - 2) / 3);
      Alcotest.(check int) "account's branch" b ((a - 8) / 10)
    | _ -> Alcotest.fail "unexpected ET1 shape")
  done

let test_et1_space_validation () =
  Alcotest.check_raises "needs 28 items"
    (Invalid_argument "Workload: ET1 needs 28 items but only 20 available") (fun () ->
      ignore
        (make ~num_items:20
           (Workload.Et1 { branches = 2; tellers_per_branch = 3; accounts_per_branch = 10 })))

let test_wisconsin_mix () =
  let spec = Workload.Wisconsin { scan_length = 8; update_ops = 3; scan_prob = 0.5 } in
  let w = make ~num_items:50 ~seed:4 spec in
  let scans = ref 0 and updates = ref 0 in
  for id = 1 to 200 do
    let txn = Workload.next w ~id in
    if Txn.is_read_only txn then begin
      incr scans;
      Alcotest.(check int) "scan length" 8 (Txn.size txn);
      (* Scan reads are consecutive. *)
      match Txn.read_items txn with
      | first :: _ as items ->
        Alcotest.(check (list int)) "consecutive" (List.init 8 (fun i -> first + i)) items
      | [] -> Alcotest.fail "empty scan"
    end
    else begin
      incr updates;
      Alcotest.(check int) "update ops" 6 (Txn.size txn)
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "both kinds occur (%d scans, %d updates)" !scans !updates)
    true
    (!scans > 50 && !updates > 50)

let test_zipfian_bounds_and_mix () =
  let w = make ~num_items:100 ~seed:7 (Workload.Zipfian { max_ops = 6; write_prob = 0.4; theta = 0.9 }) in
  let reads = ref 0 and writes = ref 0 in
  for id = 1 to 500 do
    let txn = Workload.next w ~id in
    Alcotest.(check bool) "size in [1,6]" true (Txn.size txn >= 1 && Txn.size txn <= 6);
    List.iter
      (fun item -> Alcotest.(check bool) "item in range" true (item >= 0 && item < 100))
      (Txn.items txn);
    List.iter
      (function Txn.Read _ -> incr reads | Txn.Write _ -> incr writes)
      txn.Txn.ops
  done;
  let fraction = float_of_int !writes /. float_of_int (!reads + !writes) in
  Alcotest.(check bool)
    (Printf.sprintf "write fraction near 0.4 (%.3f)" fraction)
    true
    (fraction > 0.35 && fraction < 0.45)

let test_zipfian_shape () =
  (* theta = 0.9 concentrates mass on low ranks: item 0 must dominate and
     the ten hottest items must carry far more than their uniform share
     (10%% of the draws). *)
  let num_items = 100 in
  let w = make ~num_items ~seed:11 (Workload.Zipfian { max_ops = 4; write_prob = 0.5; theta = 0.9 }) in
  let counts = Array.make num_items 0 in
  let total = ref 0 in
  for id = 1 to 3000 do
    List.iter
      (fun item ->
        counts.(item) <- counts.(item) + 1;
        incr total)
      (Txn.items (Workload.next w ~id))
  done;
  let top10 = ref 0 in
  for i = 0 to 9 do
    top10 := !top10 + counts.(i)
  done;
  let top10_share = float_of_int !top10 /. float_of_int !total in
  Alcotest.(check bool)
    (Printf.sprintf "top-10 share well above uniform (%.3f)" top10_share)
    true (top10_share > 0.4);
  Alcotest.(check bool) "hottest item is rank 0" true
    (Array.for_all (fun c -> c <= counts.(0)) counts)

let test_zipfian_determinism () =
  let spec = Workload.Zipfian { max_ops = 8; write_prob = 0.3; theta = 0.7 } in
  let a = make ~num_items:64 ~seed:21 spec in
  let b = make ~num_items:64 ~seed:21 spec in
  for id = 1 to 100 do
    Alcotest.(check string) "same stream"
      (Format.asprintf "%a" Txn.pp (Workload.next a ~id))
      (Format.asprintf "%a" Txn.pp (Workload.next b ~id))
  done

let test_zipfian_theta_validation () =
  Alcotest.check_raises "theta = 0" (Invalid_argument "Workload: zipfian theta must be in (0,1)")
    (fun () -> ignore (make (Workload.Zipfian { max_ops = 5; write_prob = 0.5; theta = 0.0 })));
  Alcotest.check_raises "theta = 1" (Invalid_argument "Workload: zipfian theta must be in (0,1)")
    (fun () -> ignore (make (Workload.Zipfian { max_ops = 5; write_prob = 0.5; theta = 1.0 })))

let test_validation () =
  Alcotest.check_raises "bad max_ops" (Invalid_argument "Workload: max_ops must be positive")
    (fun () -> ignore (make (Workload.Uniform { max_ops = 0; write_prob = 0.5 })));
  Alcotest.check_raises "bad probability" (Invalid_argument "Workload: write_prob outside [0,1]")
    (fun () -> ignore (make (Workload.Uniform { max_ops = 5; write_prob = 1.5 })));
  Alcotest.check_raises "scan too long" (Invalid_argument "Workload: scan_length exceeds num_items")
    (fun () ->
      ignore
        (make ~num_items:5 (Workload.Wisconsin { scan_length = 8; update_ops = 1; scan_prob = 0.5 })))

let suite =
  [
    Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
    Alcotest.test_case "uniform read/write mix" `Quick test_uniform_rw_mix;
    Alcotest.test_case "write_prob extremes" `Quick test_uniform_write_prob_extremes;
    Alcotest.test_case "determinism by seed" `Quick test_determinism;
    Alcotest.test_case "ET1 structure" `Quick test_et1_structure;
    Alcotest.test_case "ET1 space validation" `Quick test_et1_space_validation;
    Alcotest.test_case "Wisconsin mix" `Quick test_wisconsin_mix;
    Alcotest.test_case "zipfian bounds and op mix" `Quick test_zipfian_bounds_and_mix;
    Alcotest.test_case "zipfian shape" `Quick test_zipfian_shape;
    Alcotest.test_case "zipfian determinism" `Quick test_zipfian_determinism;
    Alcotest.test_case "zipfian theta validation" `Quick test_zipfian_theta_validation;
    Alcotest.test_case "spec validation" `Quick test_validation;
  ]
