module Rng = Raid_util.Rng

let test_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_different_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check int) "streams differ" 0 !same

let test_copy_replays () =
  let a = Rng.create 9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b)

let test_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  (* Not a statistical test; just that both streams advance and differ. *)
  Alcotest.(check bool) "split differs" true (Rng.bits64 a <> Rng.bits64 b)

let test_int_bound_validation () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_in_validation () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "lo > hi" (Invalid_argument "Rng.int_in: lo > hi") (fun () ->
      ignore (Rng.int_in rng 3 2))

let test_choose_empty () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "empty list" (Invalid_argument "Rng.choose: empty list") (fun () ->
      ignore (Rng.choose rng []))

let test_choose_weighted_degenerate () =
  let rng = Rng.create 1 in
  Alcotest.(check string) "single alternative" "only"
    (Rng.choose_weighted rng [ ("only", 1.0) ]);
  Alcotest.check_raises "all-zero weights"
    (Invalid_argument "Rng.choose_weighted: weights must sum to a positive value") (fun () ->
      ignore (Rng.choose_weighted rng [ ("a", 0.0); ("b", 0.0) ]))

let test_choose_weighted_skew () =
  let rng = Rng.create 3 in
  let hits = ref 0 in
  for _ = 1 to 1000 do
    if Rng.choose_weighted rng [ (`Heavy, 0.9); (`Light, 0.1) ] = `Heavy then incr hits
  done;
  Alcotest.(check bool)
    (Printf.sprintf "90%% alternative dominates (%d/1000)" !hits)
    true
    (!hits > 850 && !hits < 950)

let test_bernoulli_extremes () =
  let rng = Rng.create 4 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=1" true (Rng.bernoulli rng 1.0);
    Alcotest.(check bool) "p=0" false (Rng.bernoulli rng 0.0)
  done

let test_shuffle_permutes () =
  let rng = Rng.create 6 in
  let a = Array.init 20 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let prop_int_within_bound =
  QCheck.Test.make ~name:"Rng.int stays within bound" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_int_in_within_range =
  QCheck.Test.make ~name:"Rng.int_in stays within range" ~count:500
    QCheck.(triple small_int (int_range (-100) 100) (int_range 0 200))
    (fun (seed, lo, span) ->
      let rng = Rng.create seed in
      let v = Rng.int_in rng lo (lo + span) in
      v >= lo && v <= lo + span)

let prop_float_unit_interval =
  QCheck.Test.make ~name:"Rng.float in [0,1)" ~count:500 QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let v = Rng.float rng in
      v >= 0.0 && v < 1.0)

let suite =
  [
    Alcotest.test_case "determinism by seed" `Quick test_determinism;
    Alcotest.test_case "different seeds differ" `Quick test_different_seeds_differ;
    Alcotest.test_case "copy replays stream" `Quick test_copy_replays;
    Alcotest.test_case "split produces distinct stream" `Quick test_split_independent;
    Alcotest.test_case "int validates bound" `Quick test_int_bound_validation;
    Alcotest.test_case "int_in validates range" `Quick test_int_in_validation;
    Alcotest.test_case "choose rejects empty" `Quick test_choose_empty;
    Alcotest.test_case "choose_weighted degenerate cases" `Quick test_choose_weighted_degenerate;
    Alcotest.test_case "choose_weighted respects skew" `Quick test_choose_weighted_skew;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    QCheck_alcotest.to_alcotest prop_int_within_bound;
    QCheck_alcotest.to_alcotest prop_int_in_within_range;
    QCheck_alcotest.to_alcotest prop_float_unit_interval;
  ]
