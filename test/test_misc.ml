(* Failure-path and coverage tests: the invariant checkers must actually
   fire on violating states, metrics bookkeeping must balance, message
   descriptions and CSV exports must render. *)

module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Cost_model = Raid_core.Cost_model
module Txn = Raid_core.Txn
module Metrics = Raid_core.Metrics
module Faillock = Raid_core.Faillock
module Session = Raid_core.Session
module Site = Raid_core.Site
module Invariant = Raid_core.Invariant
module Message = Raid_core.Message
module Export = Raid_sim.Export
module Database = Raid_storage.Database

let cluster () = Cluster.create (Config.make ~cost:Cost_model.free ~num_sites:3 ~num_items:6 ())

let expect_error name = function
  | Error _ -> ()
  | Ok () -> Alcotest.failf "%s: violation not detected" name

(* {2 Invariant checkers fire on violations} *)

let test_staleness_checker_fires_on_bogus_lock () =
  let c = cluster () in
  (* Corrupt a fail-lock table directly: claim site 1 missed item 2. *)
  ignore (Faillock.set (Site.faillocks (Cluster.site c 0)) ~item:2 ~site:1);
  expect_error "bogus lock" (Invariant.faillocks_track_staleness c)

let test_staleness_checker_fires_on_missing_lock () =
  let c = cluster () in
  Cluster.fail_site c 2;
  let id = Cluster.next_txn_id c in
  ignore (Cluster.submit c ~coordinator:0 (Txn.make ~id [ Txn.Write 3 ]));
  ignore (Cluster.recover_site c 2);
  (* Erase the legitimate lock everywhere: site 2 is now silently stale. *)
  for s = 0 to 2 do
    ignore (Faillock.clear (Site.faillocks (Cluster.site c s)) ~item:3 ~site:2)
  done;
  expect_error "missing lock" (Invariant.faillocks_track_staleness c)

let test_vector_checker_fires_on_disagreement () =
  let c = cluster () in
  Session.mark_down (Site.vector (Cluster.site c 0)) 1;
  expect_error "vector disagreement" (Invariant.session_vectors_sane c)

let test_convergence_checker_fires_when_down () =
  let c = cluster () in
  Cluster.fail_site c 1;
  expect_error "down site" (Invariant.convergence c)

let test_durability_checker_fires_on_false_claim () =
  let c = cluster () in
  Cluster.fail_site c 2;
  let id = Cluster.next_txn_id c in
  ignore (Cluster.submit c ~coordinator:0 (Txn.make ~id [ Txn.Write 1 ]));
  (* Claim the dead site was operational at commit: its log lacks the write. *)
  expect_error "false operational claim"
    (Invariant.write_durability c ~operational_at_commit:(fun _ -> [ 0; 1; 2 ]))

(* {2 Metrics bookkeeping} *)

let test_metrics_balance () =
  let c = cluster () in
  Cluster.fail_site c 2;
  for _ = 1 to 10 do
    let id = Cluster.next_txn_id c in
    ignore (Cluster.submit c ~coordinator:0 (Txn.make ~id [ Txn.Write (id mod 6) ]))
  done;
  ignore (Cluster.recover_site c 2);
  let metrics = Cluster.metrics c in
  let outcomes = Cluster.outcomes c in
  Alcotest.(check int) "committed counter matches outcomes"
    (List.length (List.filter (fun o -> o.Metrics.committed) outcomes))
    metrics.Metrics.txns_committed;
  Alcotest.(check int) "aborted counter matches outcomes"
    (List.length (List.filter (fun o -> not o.Metrics.committed) outcomes))
    metrics.Metrics.txns_aborted;
  Alcotest.(check int) "one control-1" 1 metrics.Metrics.control1_completed;
  (* Counter names are stable (reports depend on them). *)
  Alcotest.(check bool) "snapshot has faillocks_set" true
    (List.mem_assoc "faillocks_set" (Metrics.snapshot_counts metrics));
  Metrics.reset metrics;
  Alcotest.(check int) "reset zeroes" 0 metrics.Metrics.txns_committed;
  Alcotest.(check (list (float 0.))) "reset drops samples" [] metrics.Metrics.coordinator_ms

(* {2 Message descriptions} *)

let test_message_descriptions () =
  let write = { Database.item = 3; value = 7; version = 9 } in
  let cases =
    [
      (Message.Begin_txn (Txn.make ~id:4 [ Txn.Read 1 ]), "begin_txn(4)");
      (Message.Recover_command, "recover_command");
      (Message.Terminate_command, "terminate_command");
      (Message.Departure_announce { site = 2 }, "departure_announce(site 2)");
      (Message.Prepare { txn = 4; writes = [ write ]; cleared = [ 1; 2 ] },
       "prepare(4,1 writes,2 cleared)");
      (Message.Prepare_ack { txn = 4 }, "prepare_ack(4)");
      (Message.Commit { txn = 4 }, "commit(4)");
      (Message.Commit_ack { txn = 4 }, "commit_ack(4)");
      (Message.Abort { txn = 4; cleared = [] }, "abort(4,0 cleared)");
      (Message.Copy_request { txn = 4; items = [ 1; 2 ] }, "copy_request(4,2 items)");
      (Message.Copy_reply { txn = 4; writes = [ write ] }, "copy_reply(4,1 items)");
      (Message.Copy_unavailable { txn = 4; items = [ 1 ] }, "copy_unavailable(4,1 items)");
      (Message.Faillocks_cleared { site = 1; items = [ 0 ] },
       "faillocks_cleared(site 1,1 items)");
      (Message.Failure_announce { failed = [ 1; 2 ] }, "failure_announce(1,2)");
      (Message.Backup_copy { target = 2; write }, "backup_copy(item 3 -> site 2)");
    ]
  in
  List.iter
    (fun (message, expected) ->
      Alcotest.(check string) expected expected (Message.describe message))
    cases

(* {2 CSV export} *)

let test_series_csv () =
  let csv = Export.series_csv ~header:("txn", "locks") [ (1.0, 46.0); (2.5, 40.25) ] in
  Alcotest.(check string) "rendered" "txn,locks\n1,46\n2.5,40.25\n" csv

let test_multi_series_csv () =
  let csv =
    Export.multi_series_csv ~x_name:"txn"
      [ ("a", [ (1.0, 2.0); (2.0, 3.0) ]); ("b", [ (2.0, 9.0) ]) ]
  in
  Alcotest.(check string) "joined" "txn,a,b\n1,2,\n2,3,9\n" csv

let test_records_csv () =
  let scenario =
    Raid_sim.Scenario.make
      ~config:(Config.make ~cost:Cost_model.free ~num_sites:2 ~num_items:4 ())
      ~workload:(Raid_core.Workload.Uniform { max_ops = 2; write_prob = 1.0 })
      [ Raid_sim.Scenario.Run_txns 3 ]
  in
  let result = Raid_sim.Runner.run scenario in
  let csv = Export.records_csv result in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 3 rows" 4 (List.length lines);
  Alcotest.(check string) "header"
    "txn,coordinator,committed,abort_reason,copiers,elapsed_ms,faillocks_site_0,faillocks_site_1"
    (List.hd lines)

let test_write_file () =
  let path = Filename.temp_file "raid_export" ".csv" in
  Export.write_file ~path "a,b\n1,2\n";
  let content = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  Alcotest.(check string) "round trip" "a,b\n1,2\n" content

let suite =
  [
    Alcotest.test_case "staleness checker: bogus lock" `Quick test_staleness_checker_fires_on_bogus_lock;
    Alcotest.test_case "staleness checker: missing lock" `Quick
      test_staleness_checker_fires_on_missing_lock;
    Alcotest.test_case "vector checker fires" `Quick test_vector_checker_fires_on_disagreement;
    Alcotest.test_case "convergence checker fires" `Quick test_convergence_checker_fires_when_down;
    Alcotest.test_case "durability checker fires" `Quick test_durability_checker_fires_on_false_claim;
    Alcotest.test_case "metrics balance" `Quick test_metrics_balance;
    Alcotest.test_case "message descriptions" `Quick test_message_descriptions;
    Alcotest.test_case "series csv" `Quick test_series_csv;
    Alcotest.test_case "multi-series csv" `Quick test_multi_series_csv;
    Alcotest.test_case "records csv" `Quick test_records_csv;
    Alcotest.test_case "write file" `Quick test_write_file;
  ]
