(* Tests for the paper's §3.2 proposed extensions: two-step recovery
   (batch copiers), control transaction type 3 (backup spawning) under
   partial replication, and the §2.2.3 embed-clears optimisation. *)

module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Cost_model = Raid_core.Cost_model
module Txn = Raid_core.Txn
module Metrics = Raid_core.Metrics
module Site = Raid_core.Site
module Invariant = Raid_core.Invariant
module Database = Raid_storage.Database

let check_invariants cluster =
  match Invariant.all cluster with
  | Ok () -> ()
  | Error message -> Alcotest.failf "invariant violated: %s" message

let lock_items cluster ~down ~coordinator items =
  Cluster.fail_site cluster down;
  List.iter
    (fun item ->
      let id = Cluster.next_txn_id cluster in
      ignore (Cluster.submit cluster ~coordinator (Txn.make ~id [ Txn.Write item ])))
    items

let test_immediate_batch_recovers_fully () =
  let config =
    Config.make ~cost:Cost_model.free
      ~recovery:(Config.Two_step { threshold = 1.0; batch_size = 4 })
      ~num_sites:2 ~num_items:10 ()
  in
  let cluster = Cluster.create config in
  lock_items cluster ~down:0 ~coordinator:1 [ 0; 2; 4; 6; 8 ];
  Alcotest.(check int) "five locks" 5 (Cluster.faillock_count_for cluster 0);
  (match Cluster.recover_site cluster 0 with
  | `Recovered -> ()
  | `Blocked -> Alcotest.fail "blocked");
  (* Batch copiers ran during the recovery quiescence: no transactions
     were needed. *)
  Alcotest.(check int) "no locks remain" 0 (Cluster.faillock_count_for cluster 0);
  Alcotest.(check bool) "consistent" true (Cluster.fully_consistent cluster);
  let metrics = Cluster.metrics cluster in
  Alcotest.(check bool)
    (Printf.sprintf "batch rounds ran (%d)" metrics.Metrics.batch_copier_rounds)
    true
    (metrics.Metrics.batch_copier_rounds >= 2);
  check_invariants cluster

let test_threshold_defers_batching () =
  (* Threshold 0.2 of 10 items = 2: with 5 locked items batching must NOT
     start at recovery; it starts once traffic brings locks to <= 2. *)
  let config =
    Config.make ~cost:Cost_model.free
      ~recovery:(Config.Two_step { threshold = 0.2; batch_size = 4 })
      ~num_sites:2 ~num_items:10 ()
  in
  let cluster = Cluster.create config in
  lock_items cluster ~down:0 ~coordinator:1 [ 0; 2; 4; 6; 8 ];
  ignore (Cluster.recover_site cluster 0);
  Alcotest.(check int) "still locked after recovery" 5 (Cluster.faillock_count_for cluster 0);
  (* Writes through normal traffic clear three locks; at <= 2 the batch
     kicks in on the post-commit hook and clears the rest. *)
  List.iter
    (fun item ->
      let id = Cluster.next_txn_id cluster in
      ignore (Cluster.submit cluster ~coordinator:1 (Txn.make ~id [ Txn.Write item ])))
    [ 0; 2; 4 ];
  Alcotest.(check int) "batch finished the job" 0 (Cluster.faillock_count_for cluster 0);
  Alcotest.(check bool) "rounds > 0" true
    ((Cluster.metrics cluster).Metrics.batch_copier_rounds > 0);
  check_invariants cluster

let test_batch_survives_source_failure () =
  let config =
    Config.make ~cost:Cost_model.free
      ~recovery:(Config.Two_step { threshold = 1.0; batch_size = 2 })
      ~num_sites:3 ~num_items:6 ()
  in
  let cluster = Cluster.create config in
  lock_items cluster ~down:0 ~coordinator:1 [ 1; 3; 5 ];
  ignore (Cluster.recover_site cluster 0);
  Alcotest.(check int) "recovered via batches" 0 (Cluster.faillock_count_for cluster 0);
  check_invariants cluster

(* two copies per item, on consecutive sites from [item mod num_sites] *)
let two_copy_placement ~num_sites:_ ~num_items:_ =
  Raid_core.Placement.spec ~sharding:Raid_core.Placement.Modular ~factor:2 ()

let test_partial_replication_reads () =
  let num_sites = 3 and num_items = 6 in
  let config =
    Config.make ~cost:Cost_model.free
      ~replication:(Config.Partial (two_copy_placement ~num_sites ~num_items))
      ~num_sites ~num_items ()
  in
  let cluster = Cluster.create config in
  (* Item 0 is stored at sites 0 and 1; site 2 must fetch it remotely. *)
  Alcotest.(check bool) "site 2 lacks item 0" false (Site.stores (Cluster.site cluster 2) ~item:0);
  let id = Cluster.next_txn_id cluster in
  ignore (Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Write 0 ]));
  let id = Cluster.next_txn_id cluster in
  let outcome = Cluster.submit cluster ~coordinator:2 (Txn.make ~id [ Txn.Read 0 ]) in
  Alcotest.(check bool) "committed" true outcome.Metrics.committed;
  Alcotest.(check (list (triple int int int))) "remote read sees the write" [ (0, 1, 1) ]
    outcome.Metrics.reads;
  (* The fetch-only read did not materialise a copy. *)
  Alcotest.(check bool) "still not stored" false (Site.stores (Cluster.site cluster 2) ~item:0);
  check_invariants cluster

let test_partial_write_unavailable () =
  let num_sites = 3 and num_items = 6 in
  let config =
    Config.make ~cost:Cost_model.free
      ~replication:(Config.Partial (two_copy_placement ~num_sites ~num_items))
      ~num_sites ~num_items ()
  in
  let cluster = Cluster.create config in
  (* Item 0 lives on sites 0 and 1; fail both. *)
  Cluster.fail_site cluster 0;
  Cluster.fail_site cluster 1;
  let id = Cluster.next_txn_id cluster in
  let outcome = Cluster.submit cluster ~coordinator:2 (Txn.make ~id [ Txn.Write 0 ]) in
  Alcotest.(check bool) "aborted" false outcome.Metrics.committed;
  (match outcome.Metrics.abort_reason with
  | Some Metrics.Write_unavailable -> ()
  | _ -> Alcotest.fail "expected Write_unavailable")

let test_control3_spawns_backup () =
  let num_sites = 3 and num_items = 6 in
  let config =
    Config.make ~cost:Cost_model.free ~spawn_backups:true
      ~replication:(Config.Partial (two_copy_placement ~num_sites ~num_items))
      ~num_sites ~num_items ()
  in
  let cluster = Cluster.create config in
  (* Item 0 lives on {0,1}; fail 1, then write item 0: a single
     operational holder remains, so a backup must be spawned on site 2. *)
  Cluster.fail_site cluster 1;
  let id = Cluster.next_txn_id cluster in
  let outcome = Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Write 0 ]) in
  Alcotest.(check bool) "committed" true outcome.Metrics.committed;
  Alcotest.(check int) "one backup" 1 (Cluster.metrics cluster).Metrics.control3_backups;
  Alcotest.(check bool) "site 2 now stores item 0" true
    (Site.stores (Cluster.site cluster 2) ~item:0);
  Alcotest.(check (option (pair int int))) "backup copy current" (Some (id, id))
    (Database.read (Site.database (Cluster.site cluster 2)) 0);
  (* Now failing the original holder keeps the item readable. *)
  Cluster.fail_site cluster 0;
  let id = Cluster.next_txn_id cluster in
  let outcome = Cluster.submit cluster ~coordinator:2 (Txn.make ~id [ Txn.Read 0 ]) in
  Alcotest.(check bool) "readable from backup" true outcome.Metrics.committed

let test_backup_placement_survives_recovery () =
  let num_sites = 3 and num_items = 6 in
  let config =
    Config.make ~cost:Cost_model.free ~spawn_backups:true
      ~replication:(Config.Partial (two_copy_placement ~num_sites ~num_items))
      ~num_sites ~num_items ()
  in
  let cluster = Cluster.create config in
  Cluster.fail_site cluster 1;
  let id = Cluster.next_txn_id cluster in
  ignore (Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Write 0 ]));
  (* Site 1 was down during the spawn; after recovery its placement view
     must still record site 2's backup (shipped with control-1 state). *)
  ignore (Cluster.recover_site cluster 1);
  Alcotest.(check bool) "recovered view knows the backup" true
    (Site.believes_stored (Cluster.site cluster 1) ~site:2 ~item:0);
  check_invariants cluster

let test_embed_clears_equivalent_state () =
  (* The embed-clears optimisation must leave the same final fail-lock and
     database state as the special transactions it replaces. *)
  let run ~embed =
    let config =
      Config.make ~cost:Cost_model.free ~embed_clears:embed ~num_sites:3 ~num_items:8 ()
    in
    let cluster = Cluster.create config in
    lock_items cluster ~down:2 ~coordinator:0 [ 1; 5 ];
    ignore (Cluster.recover_site cluster 2);
    let id = Cluster.next_txn_id cluster in
    ignore (Cluster.submit cluster ~coordinator:2 (Txn.make ~id [ Txn.Read 1; Txn.Read 5 ]));
    check_invariants cluster;
    ( Cluster.total_faillocks cluster,
      (Cluster.metrics cluster).Metrics.clear_specials_sent,
      Cluster.fully_consistent cluster )
  in
  let locks_plain, specials_plain, consistent_plain = run ~embed:false in
  let locks_embed, specials_embed, consistent_embed = run ~embed:true in
  Alcotest.(check int) "no locks either way" locks_plain locks_embed;
  Alcotest.(check bool) "plain used specials" true (specials_plain > 0);
  Alcotest.(check int) "embedded sent none" 0 specials_embed;
  Alcotest.(check bool) "both consistent" true (consistent_plain && consistent_embed)

let test_embed_clears_on_abort () =
  (* If the transaction aborts after its copiers ran, the cleared bits
     must still propagate (piggy-backed on the abort messages). *)
  let config =
    Config.make ~cost:Cost_model.free ~embed_clears:true ~num_sites:3 ~num_items:8 ()
  in
  let cluster = Cluster.create ~settings:(Cluster.settings ~detection:Cluster.On_timeout ()) config in
  lock_items cluster ~down:2 ~coordinator:0 [ 1 ];
  ignore (Cluster.recover_site cluster 2);
  (* Fail a participant without telling anyone, then coordinate at site 2
     a transaction that needs a copier: the copier succeeds (source site
     0), phase 1 discovers site 1's death, the txn aborts. *)
  Cluster.fail_site cluster 1;
  let id = Cluster.next_txn_id cluster in
  let outcome =
    Cluster.submit cluster ~coordinator:2 (Txn.make ~id [ Txn.Read 1; Txn.Write 3 ])
  in
  Alcotest.(check bool) "aborted" false outcome.Metrics.committed;
  (* Site 0 must have learned that site 2's copy of item 1 is fresh. *)
  Alcotest.(check bool) "clear propagated despite abort" false
    (Raid_core.Faillock.is_locked (Site.faillocks (Cluster.site cluster 0)) ~item:1 ~site:2);
  check_invariants cluster

let suite =
  [
    Alcotest.test_case "immediate batch recovers fully" `Quick test_immediate_batch_recovers_fully;
    Alcotest.test_case "threshold defers batching" `Quick test_threshold_defers_batching;
    Alcotest.test_case "batch survives source failure" `Quick test_batch_survives_source_failure;
    Alcotest.test_case "partial replication remote reads" `Quick test_partial_replication_reads;
    Alcotest.test_case "write with no holder aborts" `Quick test_partial_write_unavailable;
    Alcotest.test_case "control-3 spawns a backup" `Quick test_control3_spawns_backup;
    Alcotest.test_case "backup placement survives recovery" `Quick
      test_backup_placement_survives_recovery;
    Alcotest.test_case "embed-clears equivalent state" `Quick test_embed_clears_equivalent_state;
    Alcotest.test_case "embed-clears propagates on abort" `Quick test_embed_clears_on_abort;
  ]
