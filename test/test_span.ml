(* The recovery observatory: causal span trees and incident timelines.
   Pins the exactness guarantees the layer is built around — the
   critical-path steps sum to the transaction's measured latency (the
   same number the latency histogram observed), incident phases tile
   crash → caught-up with no gaps, and every export is byte-identical
   across runs and domain counts. *)

module Span = Raid_obs.Span
module Incident = Raid_obs.Incident
module Trace = Raid_obs.Trace
module Json = Raid_obs.Json
module Tracing = Raid_sim.Tracing
module Monitor = Raid_sim.Monitor
module Runner = Raid_sim.Runner
module Throughput = Raid_sim.Throughput
module Crashmatrix = Raid_sim.Crashmatrix
module Metrics = Raid_core.Metrics
module Vtime = Raid_net.Vtime

let exp1 () =
  match Monitor.scenario_of_name "exp1" with
  | Ok scenario -> scenario
  | Error message -> Alcotest.fail message

let run_exp1 () = Tracing.run ~capacity:(1 lsl 20) (exp1 ())

(* Every transaction the runner recorded has a span tree whose root
   duration equals the outcome's elapsed time — `raid explain` and the
   raid_txn_latency_ms histogram are two views of one number. *)
let test_span_latency_matches_outcome () =
  let output = run_exp1 () in
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped output.Tracing.trace);
  let trees = Tracing.spans output in
  Alcotest.(check bool) "trees assembled" true (trees <> []);
  List.iter
    (fun record ->
      let outcome = record.Runner.outcome in
      let id = outcome.Metrics.txn.Raid_core.Txn.id in
      match Span.find trees id with
      | None -> Alcotest.failf "no span tree for txn %d" id
      | Some tree ->
        Alcotest.(check bool) (Printf.sprintf "txn %d complete" id) true tree.Span.complete;
        Alcotest.(check bool)
          (Printf.sprintf "txn %d committed flag" id)
          outcome.Metrics.committed tree.Span.committed;
        Alcotest.(check int)
          (Printf.sprintf "txn %d root span = elapsed" id)
          outcome.Metrics.elapsed (Span.latency tree))
    output.Tracing.result.Runner.records

(* The critical path is a contiguous partition of the root span: step
   boundaries telescope and the durations sum exactly to the latency. *)
let test_critical_path_sums_to_latency () =
  let output = run_exp1 () in
  let trees = Tracing.spans output in
  let checked = ref 0 in
  List.iter
    (fun tree ->
      if tree.Span.complete then begin
        incr checked;
        let steps = Span.critical_path tree in
        Alcotest.(check bool) "has steps" true (steps <> []);
        let rec walk at total = function
          | [] ->
            Alcotest.(check int) "path ends at root finish" tree.Span.root.Span.finished at;
            total
          | step :: rest ->
            Alcotest.(check int) "steps are contiguous" at step.Span.step_from;
            walk step.Span.step_until (total + (step.Span.step_until - step.Span.step_from)) rest
        in
        let total = walk tree.Span.root.Span.started 0 steps in
        Alcotest.(check int)
          (Printf.sprintf "txn %d critical path sums to latency" tree.Span.txn)
          (Span.latency tree) total
      end)
    trees;
  Alcotest.(check bool) "checked some complete trees" true (!checked > 0)

(* The ring collector only drops the oldest prefix, so a wrapped run
   marks the truncated trees instead of silently shortening them. *)
let test_tiny_ring_flags_incomplete () =
  let output = Tracing.run ~capacity:64 (exp1 ()) in
  Alcotest.(check bool) "ring wrapped" true (Trace.dropped output.Tracing.trace > 0);
  let trees = Tracing.spans output in
  Alcotest.(check bool) "a truncated tree is flagged incomplete" true
    (List.exists (fun tree -> not tree.Span.complete) trees);
  (* The survivors still render without raising. *)
  List.iter (fun tree -> ignore (Span.render tree)) trees

let check_incident_tiles incident =
  let open Incident in
  Alcotest.(check bool) "phases non-empty" true (incident.phases <> []);
  let rec walk at = function
    | [] -> Alcotest.(check int) "last phase ends at finished" incident.finished at
    | (_, from, until) :: rest ->
      Alcotest.(check int) "phase starts at previous boundary" at from;
      Alcotest.(check bool) "phase is non-negative" true (until >= from);
      walk until rest
  in
  walk incident.started incident.phases;
  let sum =
    List.fold_left (fun acc p -> acc + phase_duration incident p) 0 all_phases
  in
  Alcotest.(check int) "phase durations sum to the incident duration"
    (duration incident) sum

(* Phase partition exactness on the exp1 fail/recover cycle: outage +
   replay + resolve + install + drain = crash → caught-up, exactly. *)
let test_incident_partition_exp1 () =
  let output = run_exp1 () in
  let incidents = Tracing.incidents output in
  Alcotest.(check bool) "an incident was recorded" true (incidents <> []);
  List.iter check_incident_tiles incidents;
  Alcotest.(check bool) "the exp1 episode completes" true
    (List.exists (fun i -> i.Incident.complete) incidents);
  List.iter
    (fun i ->
      if i.Incident.complete then
        match Incident.mttr i with
        | None -> Alcotest.fail "complete incident has no MTTR"
        | Some mttr -> Alcotest.(check int) "MTTR = duration" (Incident.duration i) mttr)
    incidents

(* The same partition holds under k=3 partial placement, where the
   drain phase covers a different (smaller) fail-lock population. *)
let test_incident_partition_partial () =
  List.iter
    (fun replication ->
      let config =
        Throughput.make_config ~sites:8 ~items:80 ~duration_ms:8_000.0
          ~failure:(Throughput.default_failure ~sites:8 ~duration_ms:8_000.0)
          ~replication ()
      in
      let result = Throughput.run ~seed:11 ~record_incidents:true config in
      Alcotest.(check bool) "the staged failure recovered" true result.Throughput.recovered;
      let incidents = result.Throughput.incidents in
      Alcotest.(check bool) "incident recorded" true (incidents <> []);
      List.iter check_incident_tiles incidents)
    [
      Raid_core.Config.Full;
      Raid_core.Config.Partial (Raid_core.Placement.spec ~factor:3 ());
    ]

(* Recording incidents observes the run without perturbing it: every
   deterministic result field matches a bare run. *)
let test_recording_is_transparent () =
  let config =
    Throughput.make_config ~sites:6 ~items:60 ~duration_ms:4_000.0
      ~failure:(Throughput.default_failure ~sites:6 ~duration_ms:4_000.0)
      ()
  in
  let bare = Throughput.run ~seed:5 config in
  let recorded = Throughput.run ~seed:5 ~record_incidents:true config in
  Alcotest.(check bool) "same results up to incidents" true
    ({ recorded with Throughput.incidents = [] } = bare)

(* Incident CSV is deterministic: identical across repeated runs, and
   the crash matrix's cell-prefixed variant is identical across domain
   counts. *)
let test_incidents_csv_deterministic () =
  let csv () = Incident.to_csv (Tracing.incidents (run_exp1 ())) in
  let first = csv () in
  Alcotest.(check bool) "csv has rows" true (String.length first > String.length Incident.csv_header);
  Alcotest.(check string) "identical across runs" first (csv ())

let test_crashmatrix_incidents_csv_j_invariant () =
  let run domains =
    Crashmatrix.incidents_csv
      (Crashmatrix.run ~domains ~seeds:[ 1 ] ~sizes:[ 4 ]
         ~points:[ Crashmatrix.Part_after_prepare; Crashmatrix.Flapping ] ())
  in
  let sequential = run 1 in
  Alcotest.(check bool) "cells produced incidents" true
    (String.length sequential > String.length Incident.csv_header);
  Alcotest.(check string) "byte-identical at -j4" sequential (run 4)

(* The fail-lock trace events carry the causing transaction as an
   optional JSONL field: present when known, absent otherwise, and
   wire-compatible either way. *)
let test_faillock_txn_jsonl_round_trip () =
  let entry txn =
    {
      Trace.at = Vtime.of_ms 3;
      site = 1;
      event = Trace.Faillock_set { item = 7; for_site = 2; txn };
    }
  in
  let json txn = Raid_obs.Trace_export.entry_json (entry txn) in
  (match Json.member "txn" (json (Some 42)) with
  | Some (Json.Int 42) -> ()
  | _ -> Alcotest.fail "txn field missing or wrong on attributed set");
  Alcotest.(check bool) "txn field absent when unattributed" true
    (Json.member "txn" (json None) = None);
  (* The rendered line parses back. *)
  let line = Json.to_string (json (Some 42)) in
  match Json.parse line with
  | Ok parsed -> Alcotest.(check bool) "round trip" true (Json.member "txn" parsed = Some (Json.Int 42))
  | Error m -> Alcotest.failf "JSONL line does not parse: %s" m

(* Span and incident JSON bodies are valid JSON (the serve endpoints
   return them verbatim). *)
let test_json_bodies_parse () =
  let output = run_exp1 () in
  let trees = Tracing.spans output in
  (match Span.slowest trees with
  | None -> Alcotest.fail "no slowest tree"
  | Some tree -> (
    match Json.parse (Json.to_string (Span.json tree)) with
    | Ok _ -> ()
    | Error m -> Alcotest.failf "span json: %s" m));
  List.iter
    (fun incident ->
      match Json.parse (Json.to_string (Incident.json incident)) with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "incident json: %s" m)
    (Tracing.incidents output)

let suite =
  [
    Alcotest.test_case "span latency = recorded outcome" `Quick test_span_latency_matches_outcome;
    Alcotest.test_case "critical path sums to latency" `Quick test_critical_path_sums_to_latency;
    Alcotest.test_case "tiny ring flags incomplete trees" `Quick test_tiny_ring_flags_incomplete;
    Alcotest.test_case "incident phases tile exp1 exactly" `Quick test_incident_partition_exp1;
    Alcotest.test_case "incident phases tile under partial placement" `Quick
      test_incident_partition_partial;
    Alcotest.test_case "incident recording is transparent" `Quick test_recording_is_transparent;
    Alcotest.test_case "incidents csv deterministic" `Quick test_incidents_csv_deterministic;
    Alcotest.test_case "crashmatrix incidents csv is -j invariant" `Quick
      test_crashmatrix_incidents_csv_j_invariant;
    Alcotest.test_case "faillock txn JSONL round trip" `Quick test_faillock_txn_jsonl_round_trip;
    Alcotest.test_case "span and incident json parse" `Quick test_json_bodies_parse;
  ]
