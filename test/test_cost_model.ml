module Cost_model = Raid_core.Cost_model
module Vtime = Raid_net.Vtime

let test_calibrated_message_latency () =
  (* The paper's one hard number: 9 ms per intersite communication. *)
  Alcotest.(check int) "9 ms" (Vtime.of_ms 9) Cost_model.calibrated.Cost_model.message_latency

let test_free_zeroes_processing () =
  Alcotest.(check int) "setup free" 0 Cost_model.free.Cost_model.txn_setup;
  Alcotest.(check int) "latency kept" (Vtime.of_ms 9) Cost_model.free.Cost_model.message_latency

let test_zero_is_all_zero () =
  Alcotest.(check int) "latency zero" 0 Cost_model.zero.Cost_model.message_latency;
  Alcotest.(check int) "op zero" 0 Cost_model.zero.Cost_model.op_process

let test_scale () =
  let doubled = Cost_model.scale 2.0 Cost_model.calibrated in
  Alcotest.(check int) "op doubled"
    (2 * Cost_model.calibrated.Cost_model.op_process)
    doubled.Cost_model.op_process;
  Alcotest.(check int) "latency unchanged" Cost_model.calibrated.Cost_model.message_latency
    doubled.Cost_model.message_latency

let test_config_validation () =
  let module Config = Raid_core.Config in
  Alcotest.check_raises "too many sites" (Invalid_argument "Config: at most 1024 sites supported")
    (fun () -> ignore (Config.make ~num_sites:1025 ~num_items:1 ()));
  Alcotest.check_raises "bad threshold" (Invalid_argument "Config: two-step threshold outside [0,1]")
    (fun () ->
      ignore
        (Config.make ~recovery:(Config.Two_step { threshold = 1.5; batch_size = 1 }) ~num_sites:2
           ~num_items:1 ()));
  Alcotest.check_raises "bad replication factor"
    (Invalid_argument "Placement.make: factor must be positive") (fun () ->
      ignore
        (Config.make
           ~replication:(Config.Partial (Raid_core.Placement.spec ~factor:0 ()))
           ~num_sites:2 ~num_items:1 ()));
  Alcotest.check_raises "affinity primary out of range"
    (Invalid_argument "Placement.make: affinity primary out of range") (fun () ->
      ignore
        (Config.make
           ~replication:
             (Config.Partial
                (Raid_core.Placement.spec ~sharding:(Raid_core.Placement.Affinity [| 5 |])
                   ~factor:1 ()))
           ~num_sites:2 ~num_items:1 ()))

let suite =
  [
    Alcotest.test_case "calibrated latency is the paper's 9 ms" `Quick
      test_calibrated_message_latency;
    Alcotest.test_case "free model" `Quick test_free_zeroes_processing;
    Alcotest.test_case "zero model" `Quick test_zero_is_all_zero;
    Alcotest.test_case "scale" `Quick test_scale;
    Alcotest.test_case "config validation" `Quick test_config_validation;
  ]
