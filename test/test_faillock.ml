module Faillock = Raid_core.Faillock

let table () = Faillock.create ~num_items:5 ~num_sites:3

let test_initial () =
  let t = table () in
  Alcotest.(check int) "num_items" 5 (Faillock.num_items t);
  Alcotest.(check int) "num_sites" 3 (Faillock.num_sites t);
  Alcotest.(check int) "nothing locked" 0 (Faillock.total_locked t);
  Alcotest.(check bool) "not locked" false (Faillock.is_locked t ~item:0 ~site:0)

let test_set_clear_transitions () =
  let t = table () in
  Alcotest.(check bool) "fresh set" true (Faillock.set t ~item:2 ~site:1);
  Alcotest.(check bool) "redundant set" false (Faillock.set t ~item:2 ~site:1);
  Alcotest.(check bool) "locked" true (Faillock.is_locked t ~item:2 ~site:1);
  Alcotest.(check bool) "clear transition" true (Faillock.clear t ~item:2 ~site:1);
  Alcotest.(check bool) "redundant clear" false (Faillock.clear t ~item:2 ~site:1)

let test_commit_update () =
  let t = table () in
  (* Site 2 is down: committing item 3 sets its bit, clears others. *)
  ignore (Faillock.set t ~item:3 ~site:0);
  let set_count = ref 0 and cleared = ref 0 in
  Faillock.commit_update t ~item:3 ~site_up:(fun s -> s <> 2) ~set:set_count ~cleared;
  Alcotest.(check int) "one set" 1 !set_count;
  Alcotest.(check int) "one cleared" 1 !cleared;
  Alcotest.(check bool) "bit for down site" true (Faillock.is_locked t ~item:3 ~site:2);
  Alcotest.(check bool) "bit for up site cleared" false (Faillock.is_locked t ~item:3 ~site:0);
  (* Re-running is idempotent (the paper's unconditional re-clear). *)
  let set2 = ref 0 and cleared2 = ref 0 in
  Faillock.commit_update t ~item:3 ~site_up:(fun s -> s <> 2) ~set:set2 ~cleared:cleared2;
  Alcotest.(check int) "no new sets" 0 !set2;
  Alcotest.(check int) "no new clears" 0 !cleared2

let test_locked_items_and_counts () =
  let t = table () in
  ignore (Faillock.set t ~item:0 ~site:1);
  ignore (Faillock.set t ~item:4 ~site:1);
  ignore (Faillock.set t ~item:2 ~site:0);
  Alcotest.(check (list int)) "items for site 1" [ 0; 4 ] (Faillock.locked_items_for t ~site:1);
  Alcotest.(check int) "count for site 1" 2 (Faillock.count_for t ~site:1);
  Alcotest.(check (list int)) "sites for item 0" [ 1 ] (Faillock.locked_sites t ~item:0);
  Alcotest.(check bool) "any locked" true (Faillock.any_locked t ~item:2);
  Alcotest.(check bool) "none locked" false (Faillock.any_locked t ~item:1);
  Alcotest.(check int) "total" 3 (Faillock.total_locked t)

let test_clear_sites () =
  let t = table () in
  ignore (Faillock.set t ~item:1 ~site:0);
  ignore (Faillock.set t ~item:1 ~site:2);
  Alcotest.(check int) "cleared two" 2 (Faillock.clear_sites t ~item:1 ~sites:[ 0; 1; 2 ]);
  Alcotest.(check int) "cleared none" 0 (Faillock.clear_sites t ~item:1 ~sites:[ 0 ])

let test_copy_install_merge () =
  let a = table () in
  ignore (Faillock.set a ~item:0 ~site:0);
  let b = Faillock.copy a in
  ignore (Faillock.set b ~item:1 ~site:1);
  Alcotest.(check bool) "copy independent" false (Faillock.is_locked a ~item:1 ~site:1);
  Faillock.install a ~from:b;
  Alcotest.(check bool) "install equal" true (Faillock.equal a b);
  let c = table () in
  ignore (Faillock.set c ~item:4 ~site:2);
  Faillock.merge a ~from:c;
  Alcotest.(check bool) "merge keeps old" true (Faillock.is_locked a ~item:0 ~site:0);
  Alcotest.(check bool) "merge adds new" true (Faillock.is_locked a ~item:4 ~site:2);
  let wrong = Faillock.create ~num_items:2 ~num_sites:3 in
  Alcotest.check_raises "shape mismatch" (Invalid_argument "Faillock: shape mismatch") (fun () ->
      Faillock.install a ~from:wrong)

let test_bounds () =
  let t = table () in
  Alcotest.check_raises "item range" (Invalid_argument "Faillock: item out of range") (fun () ->
      ignore (Faillock.is_locked t ~item:5 ~site:0))

(* Property: commit_update leaves exactly the down sites locked. *)
let prop_commit_update_postcondition =
  QCheck.Test.make ~name:"commit_update postcondition" ~count:300
    QCheck.(pair (list (pair (int_range 0 4) (int_range 0 2))) (int_range 0 7))
    (fun (initial, up_mask) ->
      let t = table () in
      List.iter (fun (item, site) -> ignore (Faillock.set t ~item ~site)) initial;
      let site_up s = (up_mask lsr s) land 1 = 1 in
      let set_count = ref 0 and cleared = ref 0 in
      Faillock.commit_update t ~item:2 ~site_up ~set:set_count ~cleared;
      List.for_all
        (fun s -> Faillock.is_locked t ~item:2 ~site:s = not (site_up s))
        [ 0; 1; 2 ])

let test_iteration_helpers () =
  let t = table () in
  ignore (Faillock.set t ~item:0 ~site:1);
  ignore (Faillock.set t ~item:3 ~site:1);
  ignore (Faillock.set t ~item:4 ~site:2);
  let seen = ref [] in
  Faillock.iter_locked_items_for t ~site:1 (fun item -> seen := item :: !seen);
  Alcotest.(check (list int))
    "iter = locked_items_for"
    (Faillock.locked_items_for t ~site:1)
    (List.rev !seen);
  Alcotest.(check bool) "any for locked site" true (Faillock.any_locked_for t ~site:1);
  Alcotest.(check bool) "none for clean site" false (Faillock.any_locked_for t ~site:0);
  let union = Raid_util.Bitset.create 3 in
  Faillock.union_locked_into ~dst:union t ~item:0;
  Faillock.union_locked_into ~dst:union t ~item:4;
  Alcotest.(check (list int)) "union of rows" [ 1; 2 ] (Raid_util.Bitset.to_list union)

let suite =
  [
    Alcotest.test_case "initial table" `Quick test_initial;
    Alcotest.test_case "iteration helpers" `Quick test_iteration_helpers;
    Alcotest.test_case "set/clear transitions" `Quick test_set_clear_transitions;
    Alcotest.test_case "commit_update semantics" `Quick test_commit_update;
    Alcotest.test_case "locked items and counts" `Quick test_locked_items_and_counts;
    Alcotest.test_case "clear_sites" `Quick test_clear_sites;
    Alcotest.test_case "copy/install/merge" `Quick test_copy_install_merge;
    Alcotest.test_case "bounds checked" `Quick test_bounds;
    QCheck_alcotest.to_alcotest prop_commit_update_postcondition;
  ]
