(* The HTTP layer without sockets: the incremental request parser (byte
   limits, partial reads, malformed input) and the pattern router.  The
   loopback server tests live in Test_serve. *)

module Http = Raid_obs.Http
module Json = Raid_obs.Json

let parse = Http.parse_request

let complete s =
  match parse s with
  | Http.Complete (req, consumed) -> (req, consumed)
  | Http.Incomplete -> Alcotest.failf "unexpectedly incomplete: %S" s
  | Http.Bad (status, m) -> Alcotest.failf "unexpectedly bad (%d %s): %S" status m s

let bad_status s =
  match parse s with
  | Http.Bad (status, _) -> status
  | Http.Incomplete -> Alcotest.failf "expected Bad, got Incomplete: %S" s
  | Http.Complete _ -> Alcotest.failf "expected Bad, got Complete: %S" s

let test_simple_get () =
  let req, consumed = complete "GET /health HTTP/1.1\r\nHost: x\r\n\r\n" in
  Alcotest.(check string) "meth" "GET" req.Http.meth;
  Alcotest.(check string) "path" "/health" req.Http.path;
  Alcotest.(check (list (pair string string))) "headers" [ ("host", "x") ] req.Http.headers;
  Alcotest.(check string) "no body" "" req.Http.body;
  Alcotest.(check int) "consumed everything" 33 consumed;
  (* Bare-LF line endings (netcat-style clients) are tolerated. *)
  let req, _ = complete "GET / HTTP/1.0\n\n" in
  Alcotest.(check string) "bare-LF path" "/" req.Http.path

let test_query_and_percent_decoding () =
  Alcotest.(check string) "plus and hex" "a b/c" (Http.percent_decode "a+b%2Fc");
  Alcotest.(check string) "malformed escape kept" "100%fun" (Http.percent_decode "100%fun");
  let req, _ = complete "GET /si%74es?a=1&b=x+y&flag HTTP/1.1\r\n\r\n" in
  Alcotest.(check string) "path decoded" "/sites" req.Http.path;
  Alcotest.(check (list (pair string string)))
    "query decoded in order"
    [ ("a", "1"); ("b", "x y"); ("flag", "") ]
    req.Http.query

let test_partial_reads () =
  let whole = "POST /load HTTP/1.1\r\nContent-Length: 4\r\n\r\n{} \n" in
  (* Every proper prefix must be Incomplete — no prefix may parse or
     reject: the server keeps buffering. *)
  for n = 0 to String.length whole - 1 do
    match parse (String.sub whole 0 n) with
    | Http.Incomplete -> ()
    | Http.Complete _ -> Alcotest.failf "prefix of %d bytes completed early" n
    | Http.Bad (status, m) -> Alcotest.failf "prefix of %d bytes rejected: %d %s" n status m
  done;
  let req, consumed = complete whole in
  Alcotest.(check string) "body" "{} \n" req.Http.body;
  Alcotest.(check int) "consumed" (String.length whole) consumed

let test_limits () =
  let long = String.make 5000 'a' in
  Alcotest.(check int) "oversized request line is 414" 414
    (bad_status ("GET /" ^ long ^ " HTTP/1.1\r\n\r\n"));
  (* The bound applies before CRLF arrives: a runaway first line is
     rejected without waiting for the terminator. *)
  Alcotest.(check int) "unterminated runaway line is 414" 414 (bad_status ("GET /" ^ long));
  let many_headers =
    String.concat "" (List.init 500 (fun i -> Printf.sprintf "X-H%d: %s\r\n" i (String.make 30 'v')))
  in
  Alcotest.(check int) "oversized header section is 431" 431
    (bad_status ("GET / HTTP/1.1\r\n" ^ many_headers ^ "\r\n"));
  Alcotest.(check int) "huge content-length is 413" 413
    (bad_status "POST / HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n");
  Alcotest.(check int) "chunked is 501" 501
    (bad_status "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  Alcotest.(check int) "HTTP/2 preface is 505" 505 (bad_status "GET / HTTP/2.0\r\n\r\n");
  Alcotest.(check int) "garbage request line is 400" 400 (bad_status "what even\r\n\r\n");
  Alcotest.(check int) "negative content-length is 400" 400
    (bad_status "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n")

let dummy_req ?(meth = "GET") path =
  { Http.meth; path; query = []; headers = []; body = "" }

let router =
  Http.dispatch
    [
      Http.route ~meth:"GET" "/health" (fun ~params:_ _ -> Http.text "ok");
      Http.route ~meth:"POST" "/sites/:id/fail" (fun ~params _ ->
          Http.text (List.assoc "id" params));
      Http.route ~meth:"GET" "/sites" (fun ~params:_ _ -> Http.text "sites");
    ]

let test_router () =
  Alcotest.(check string) "exact match" "ok" (router (dummy_req "/health")).Http.body;
  Alcotest.(check string) "capture" "7"
    (router (dummy_req ~meth:"POST" "/sites/7/fail")).Http.body;
  Alcotest.(check int) "unknown path is 404" 404 (router (dummy_req "/nope")).Http.status;
  Alcotest.(check int) "deep mismatch is 404" 404
    (router (dummy_req ~meth:"POST" "/sites/7/explode")).Http.status;
  let wrong_method = router (dummy_req ~meth:"POST" "/health") in
  Alcotest.(check int) "wrong method is 405" 405 wrong_method.Http.status;
  Alcotest.(check (option string))
    "405 advertises the allowed method" (Some "GET")
    (List.assoc_opt "Allow" wrong_method.Http.extra_headers);
  let crash =
    Http.dispatch
      [ Http.route ~meth:"GET" "/boom" (fun ~params:_ _ -> failwith "handler bug") ]
  in
  Alcotest.(check int) "raising handler is 500" 500 (crash (dummy_req "/boom")).Http.status

let test_response_builders () =
  Alcotest.(check string) "reason" "Method Not Allowed" (Http.reason 405);
  let e = Http.error 409 "already down" in
  Alcotest.(check int) "error status" 409 e.Http.status;
  (match Json.parse e.Http.body with
  | Ok body ->
    Alcotest.(check bool) "error body carries the message" true
      (Json.member "error" body = Some (Json.Str "already down"))
  | Error m -> Alcotest.fail m);
  let p = Http.prom "x 1\n" in
  Alcotest.(check string) "prom content type" "text/plain; version=0.0.4; charset=utf-8"
    p.Http.content_type

let suite =
  [
    Alcotest.test_case "simple GET" `Quick test_simple_get;
    Alcotest.test_case "query and percent decoding" `Quick test_query_and_percent_decoding;
    Alcotest.test_case "partial reads stay incomplete" `Quick test_partial_reads;
    Alcotest.test_case "size and protocol limits" `Quick test_limits;
    Alcotest.test_case "router" `Quick test_router;
    Alcotest.test_case "response builders" `Quick test_response_builders;
  ]
