(* Benchmark harness.

   Two layers, both printed by this one executable:

   1. The paper reproduction in virtual (cost-model) time: every table of
      Experiment 1 and every figure (1, 2, 3) of Experiments 2-3, each
      annotated with the published value, followed by the ablation studies
      from DESIGN.md.

   2. Host-hardware microbenchmarks (Bechamel): one Test per paper
      artifact measuring what the corresponding code path costs on this
      machine with all modelled costs zeroed, plus substrate
      microbenchmarks.  These do not reproduce the paper's milliseconds
      (the paper's numbers come from a 1987 VAX); they demonstrate the
      implementation's real cost. *)

module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Cost_model = Raid_core.Cost_model
module Workload = Raid_core.Workload
module Txn = Raid_core.Txn
module Faillock = Raid_core.Faillock
module Session = Raid_core.Session
module Table = Raid_util.Table
module Rng = Raid_util.Rng
module Pool = Raid_par.Pool
open Bechamel
open Toolkit

let section title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '#')

(* {2 Command line}

   [-j N]/[--jobs N] fans every independent-run sweep (figures, ablation
   grid, scaling/seed sweeps) out over N OCaml domains; output is
   bit-identical for every N.  [--json FILE] additionally dumps the
   Bechamel OLS estimates and the wall-clock time of each stage as JSON
   so the perf trajectory is machine-readable across commits. *)

let jobs = ref 1
let json_path = ref None
let baseline_path = ref None
let wall_tolerance = ref 1.5

let parse_args () =
  let usage () =
    Printf.eprintf
      "usage: %s [-j N | --jobs N] [--json FILE] [--check-baseline FILE] [--wall-tolerance R]\n"
      Sys.argv.(0);
    exit 2
  in
  let rec go = function
    | [] -> ()
    | ("-j" | "--jobs") :: v :: rest -> (
      match int_of_string_opt v with
      | Some n when n >= 1 ->
        jobs := n;
        go rest
      | _ -> usage ())
    | "--json" :: path :: rest ->
      json_path := Some path;
      go rest
    | "--check-baseline" :: path :: rest ->
      baseline_path := Some path;
      go rest
    | "--wall-tolerance" :: v :: rest -> (
      match float_of_string_opt v with
      | Some r when r >= 1.0 ->
        wall_tolerance := r;
        go rest
      | _ -> usage ())
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv))

(* Wall-clock accounting per printed stage, reported in run order. *)
let wall_timings : (string * float) list ref = ref []

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  wall_timings := (name, Unix.gettimeofday () -. t0) :: !wall_timings;
  r

(* {2 Layer 1: paper reproduction in virtual time} *)

let print_experiment1 () =
  section "Experiment 1: overhead measurements (paper tables, virtual time)";
  List.iter
    (fun report ->
      Table.print (Raid_sim.Experiment1.to_table report);
      List.iter (fun note -> Printf.printf "  note: %s\n" note) report.Raid_sim.Experiment1.notes;
      print_newline ())
    (Raid_sim.Experiment1.all ())

(* The three figure simulations are independent pure runs; compute them
   through the domain pool, then print in the usual order. *)
let run_figures () =
  match
    Pool.map
      (fun run -> run ())
      [
        (fun () -> `E2 (Raid_sim.Experiment2.run ()));
        (fun () -> `S1 (Raid_sim.Experiment3.scenario1 ()));
        (fun () -> `S2 (Raid_sim.Experiment3.scenario2 ()));
      ]
  with
  | [ `E2 e2; `S1 s1; `S2 s2 ] -> (e2, s1, s2)
  | _ -> assert false

let print_experiment2 e2 =
  section "Experiment 2: data availability on a recovering site (Figure 1)";
  Raid_util.Chart.print (Raid_sim.Experiment2.figure e2);
  print_newline ();
  Table.print (Raid_sim.Experiment2.summary_table e2)

let print_experiment3 s1 s2 =
  section "Experiment 3: consistency of replicated copies (Figures 2 and 3)";
  Raid_util.Chart.print
    (Raid_sim.Experiment3.figure
       ~title:"Figure 2: database inconsistency (scenario 1: alternating 2-site failures)" s1);
  print_newline ();
  Table.print (Raid_sim.Experiment3.summary_table ~title:"Scenario 1 summary" s1);
  Raid_util.Chart.print
    (Raid_sim.Experiment3.figure
       ~title:"Figure 3: database inconsistency (scenario 2: rolling 4-site failures)" s2);
  print_newline ();
  Table.print (Raid_sim.Experiment3.summary_table ~title:"Scenario 2 summary" s2)

let print_scaling_and_robustness () =
  section "Scaling and multi-seed robustness";
  Table.print (Raid_sim.Scaling.control1_table (Raid_sim.Scaling.control1_scaling ()));
  print_newline ();
  Table.print
    (Raid_sim.Scaling.experiment2_seeds_table (Raid_sim.Scaling.experiment2_seeds ()));
  print_newline ();
  Table.print (Raid_sim.Scaling.scenario1_seeds_table (Raid_sim.Scaling.scenario1_seeds ()));
  print_newline ();
  Table.print
    (Raid_sim.Scaling.cluster_size_table (Raid_sim.Scaling.recovery_vs_cluster_size ()));
  print_newline ();
  Table.print (Raid_sim.Analysis.comparison_table ());
  print_newline ();
  Raid_util.Chart.print (Raid_sim.Analysis.figure ())

let print_ablations () =
  section "Ablation studies (DESIGN.md)";
  List.iter
    (fun table ->
      Table.print table;
      print_newline ())
    (Raid_sim.Ablation.all_tables ());
  Table.print (Raid_sim.Concurrent.sweep_table (Raid_sim.Concurrent.sweep ()));
  print_newline ()

(* {2 Steady-state throughput (wall-clock layer)}

   Open-loop transaction streams at two cluster scales, each with a
   mid-run failure + recovery.  Virtual-time results (txns/vsec, abort
   rate) are deterministic; the host events/sec figure is this machine's
   real event-processing rate on the protocol hot path. *)

type throughput_case = {
  tp_sites : int;
  tp_items : int;
  tp_factor : int;  (* replication factor; 0 = full replication *)
  tp_zipf_theta : float option;
  tp_txns_per_vsec : float;
  tp_abort_rate : float;
  tp_events : int;
  tp_wall_s : float;
  tp_recovery : (string * float) list;
      (* mean virtual ms per incident phase (plus "mttr") over the
         staged failure's complete recovery incidents, all seeds *)
}

let print_throughput () =
  section "Steady-state throughput (open-loop stream; virtual results, host events/sec)";
  let run_case ?(replication = Config.Full) ?zipf_theta ~sites ~items ~duration_ms () =
    let failure = Raid_sim.Throughput.default_failure ~sites ~duration_ms in
    let config =
      Raid_sim.Throughput.make_config ~sites ~items ~duration_ms ~failure ~replication
        ?zipf_theta ()
    in
    let t0 = Unix.gettimeofday () in
    let results = Raid_sim.Throughput.run_seeds ~seeds:4 ~record_incidents:true config in
    let wall = Unix.gettimeofday () -. t0 in
    Table.print (Raid_sim.Throughput.results_table ~config results);
    let events =
      List.fold_left (fun acc r -> acc + r.Raid_sim.Throughput.events) 0 results
    in
    Printf.printf "  host: %.2f s wall clock, %d events, %.0f events/sec\n" wall events
      (float_of_int events /. wall);
    (* MTTR decomposition of the staged failure, averaged over the
       seeds' incidents — deterministic (virtual time), so it is
       stamped into the JSON dump alongside txns/vsec.  At benchmark
       scale the drain tail usually outlives the stream (the on-demand
       refreshes never touch the coldest fail-locked items), so the
       drain mean is a lower bound and "mttr" is stamped only when a
       seed's episode actually completed. *)
    let incidents =
      List.concat_map (fun r -> r.Raid_sim.Throughput.incidents) results
    in
    let complete_incidents = List.filter (fun i -> i.Raid_obs.Incident.complete) incidents in
    let tp_recovery =
      match incidents with
      | [] -> []
      | incidents ->
        let mean over f =
          List.fold_left (fun acc i -> acc +. f i) 0.0 over /. float_of_int (List.length over)
        in
        List.map
          (fun p ->
            ( Raid_obs.Incident.phase_name p,
              mean incidents (fun i ->
                  Raid_net.Vtime.to_ms (Raid_obs.Incident.phase_duration i p)) ))
          Raid_obs.Incident.all_phases
        @
        match complete_incidents with
        | [] -> []
        | complete ->
          [
            ( "mttr",
              mean complete (fun i ->
                  Raid_net.Vtime.to_ms
                    (Option.value ~default:Raid_net.Vtime.zero (Raid_obs.Incident.mttr i))) );
          ]
    in
    (match tp_recovery with
    | [] -> Printf.printf "  recovery: no incident recorded\n\n"
    | kv ->
      Printf.printf "  recovery (mean over %d incidents, %d complete): %s\n\n"
        (List.length incidents) (List.length complete_incidents)
        (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s %.2f ms" k v) kv)));
    let mean f = Raid_util.Stats.mean (List.map f results) in
    {
      tp_sites = sites;
      tp_items = items;
      tp_factor =
        (match replication with
        | Config.Full -> 0
        | Config.Partial spec -> spec.Raid_core.Placement.factor);
      tp_zipf_theta = zipf_theta;
      tp_txns_per_vsec = mean Raid_sim.Throughput.txns_per_vsec;
      tp_abort_rate = mean Raid_sim.Throughput.abort_rate;
      tp_events = events;
      tp_wall_s = wall;
      tp_recovery;
    }
  in
  [
    run_case ~sites:16 ~items:500 ~duration_ms:30_000.0 ();
    run_case ~sites:64 ~items:5000 ~duration_ms:30_000.0 ();
    (* The partial-replication headline: a k-holder placement keeps the
       per-write fan-out constant, so a 256-site cluster clears more
       events/sec than the 64-site write-all-available case above. *)
    run_case
      ~replication:(Config.Partial (Raid_core.Placement.spec ~factor:3 ()))
      ~zipf_theta:0.9 ~sites:256 ~items:100_000 ~duration_ms:30_000.0 ();
  ]

(* {2 Multi-tenant engine (wall-clock layer)}

   The same tenant population twice: once through the per-shard shared
   group-committed WAL, once with a private per-record-flushed WAL per
   tenant.  Per-tenant protocol results are identical in both modes (the
   WAL is host-side work only), so the wall-clock gap isolates exactly
   the batching win the shared log exists for. *)

type multi_case = {
  mt_tenants : int;
  mt_sites : int;
  mt_shared : bool;
  mt_events : int;
  mt_committed : int;
  mt_wal_flushes : int;
  mt_wall_s : float;
}

let print_multi () =
  section "Multi-tenant engine (shared WAL vs per-tenant WAL)";
  let base ~wal_mode =
    Raid_multi.spec ~tenants:200 ~sites:8 ~items:64 ~txns:30 ~shards:8 ~fail_every:10
      ~wal_mode ()
  in
  let run_case ~wal_mode =
    let spec = base ~wal_mode in
    let t0 = Unix.gettimeofday () in
    let result = Raid_multi.run spec in
    let wall = Unix.gettimeofday () -. t0 in
    let events = Raid_multi.total_events result in
    let flushes =
      Array.fold_left
        (fun acc (w : Raid_storage.Shared_wal.stats) -> acc + w.Raid_storage.Shared_wal.flushes)
        0 result.Raid_multi.wal
    in
    Printf.printf "  %-15s %d tenants x %d sites: %d events, %d wal flushes, %.2f s wall, %.0f \
                   events/sec\n"
      (match wal_mode with
      | Raid_multi.Shared { group_size } -> Printf.sprintf "shared/%d:" group_size
      | Raid_multi.Per_tenant -> "per-tenant:")
      spec.Raid_multi.tenants spec.Raid_multi.sites events flushes wall
      (if wall > 0.0 then float_of_int events /. wall else 0.0);
    {
      mt_tenants = spec.Raid_multi.tenants;
      mt_sites = spec.Raid_multi.sites;
      mt_shared = (match wal_mode with Raid_multi.Shared _ -> true | Raid_multi.Per_tenant -> false);
      mt_events = events;
      mt_committed = Raid_multi.total_committed result;
      mt_wal_flushes = flushes;
      mt_wall_s = wall;
    }
  in
  let shared = run_case ~wal_mode:(Raid_multi.Shared { group_size = 64 }) in
  let per_tenant = run_case ~wal_mode:Raid_multi.Per_tenant in
  if shared.mt_events <> per_tenant.mt_events || shared.mt_committed <> per_tenant.mt_committed
  then Printf.printf "  WARN per-tenant protocol results differ between WAL modes\n"
  else if per_tenant.mt_wall_s > 0.0 then
    Printf.printf "  shared-WAL batching win: %.2fx wall clock (%d vs %d flushes)\n"
      (per_tenant.mt_wall_s /. shared.mt_wall_s)
      shared.mt_wal_flushes per_tenant.mt_wal_flushes;
  print_newline ();
  [ shared; per_tenant ]

(* {2 Layer 2: Bechamel host-hardware microbenchmarks} *)

let bench_config ?(faillocks_enabled = true) () =
  Config.make ~cost:Cost_model.zero ~faillocks_enabled ~num_sites:4 ~num_items:50 ()

let txn_bench ~name ~faillocks_enabled =
  let cluster = Cluster.create (bench_config ~faillocks_enabled ()) in
  let workload =
    Workload.create (Workload.Uniform { max_ops = 10; write_prob = 0.5 }) ~num_items:50
      ~rng:(Rng.create 1)
  in
  Test.make ~name
    (Staged.stage (fun () ->
         let id = Cluster.next_txn_id cluster in
         ignore (Cluster.submit cluster ~coordinator:0 (Workload.next workload ~id))))

let control_cycle_bench =
  let cluster = Cluster.create (bench_config ()) in
  Test.make ~name:"table-2.2.2: control txn 1+2 (fail/recover cycle)"
    (Staged.stage (fun () ->
         Cluster.fail_site cluster 3;
         match Cluster.recover_site cluster 3 with
         | `Recovered -> ()
         | `Blocked -> failwith "bench: recovery blocked"))

let copier_trial_bench =
  let cluster = Cluster.create (bench_config ()) in
  let rng = Rng.create 2 in
  Test.make ~name:"table-2.2.3: db txn incl. one copier txn"
    (Staged.stage (fun () ->
         let item = Rng.int rng 50 in
         Cluster.fail_site cluster 3;
         let id = Cluster.next_txn_id cluster in
         ignore (Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Write item ]));
         (match Cluster.recover_site cluster 3 with
         | `Recovered -> ()
         | `Blocked -> failwith "bench: recovery blocked");
         let id = Cluster.next_txn_id cluster in
         ignore (Cluster.submit cluster ~coordinator:3 (Txn.make ~id [ Txn.Read item ]))))

let figure_benches =
  [
    Test.make ~name:"figure-1: experiment 2 full run"
      (Staged.stage (fun () -> ignore (Raid_sim.Experiment2.run ())));
    Test.make ~name:"figure-2: experiment 3 scenario 1 full run"
      (Staged.stage (fun () -> ignore (Raid_sim.Experiment3.scenario1 ())));
    Test.make ~name:"figure-3: experiment 3 scenario 2 full run"
      (Staged.stage (fun () -> ignore (Raid_sim.Experiment3.scenario2 ())));
  ]

(* The large-cluster hot path the bitset/array structures target: one
   transaction's full 2PC round trip against 63 participants. *)
let large_cluster_bench =
  let config = Config.make ~cost:Cost_model.zero ~num_sites:64 ~num_items:500 () in
  let cluster = Cluster.create config in
  let workload =
    Workload.create (Workload.Uniform { max_ops = 5; write_prob = 0.5 }) ~num_items:500
      ~rng:(Rng.create 3)
  in
  Test.make ~name:"throughput: one txn, 64-site cluster"
    (Staged.stage (fun () ->
         let id = Cluster.next_txn_id cluster in
         ignore (Cluster.submit cluster ~coordinator:0 (Workload.next workload ~id))))

let substrate_benches =
  let faillocks = Faillock.create ~num_items:50 ~num_sites:4 in
  let set_count = ref 0 and cleared = ref 0 in
  let vector = Session.create ~num_sites:4 in
  (* The sparse-representation payoff: a 256-site vector with a handful
     of diverged entries copies in O(diverged), where the old dense
     array paid O(sites) however healthy the cluster was. *)
  let vector256 = Session.create ~num_sites:256 in
  Session.mark_down vector256 17;
  Session.mark_waiting vector256 99 ~session:2;
  Session.mark_down vector256 200;
  let bitset = Raid_util.Bitset.create 64 in
  [
    Test.make ~name:"substrate: fail-lock commit update (one item)"
      (Staged.stage (fun () ->
           Faillock.commit_update faillocks ~item:7 ~site_up:(fun s -> s <> 2) ~set:set_count
             ~cleared));
    Test.make ~name:"substrate: fail-lock table copy (50 items)"
      (Staged.stage (fun () -> ignore (Faillock.copy faillocks)));
    Test.make ~name:"substrate: session vector copy"
      (Staged.stage (fun () -> ignore (Session.copy vector)));
    Test.make ~name:"substrate: session vector create (256 sites)"
      (Staged.stage (fun () -> ignore (Session.create ~num_sites:256)));
    Test.make ~name:"substrate: session vector copy (256 sites, 3 diverged)"
      (Staged.stage (fun () -> ignore (Session.copy vector256)));
    Test.make ~name:"substrate: bitset set/clear"
      (Staged.stage (fun () ->
           Raid_util.Bitset.set bitset 33;
           Raid_util.Bitset.clear bitset 33));
  ]

let run_bechamel () =
  section "Host-hardware microbenchmarks (Bechamel; implementation cost, not paper times)";
  let tests =
    Test.make_grouped ~name:"raid"
      ([
         txn_bench ~name:"table-2.2.1: db txn, fail-locks code removed" ~faillocks_enabled:false;
         txn_bench ~name:"table-2.2.1: db txn, fail-locks code included" ~faillocks_enabled:true;
         control_cycle_bench;
         copier_trial_bench;
         large_cluster_bench;
       ]
      @ figure_benches @ substrate_benches)
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Table.create ~title:"nanoseconds per operation (OLS estimate)"
      [ ("benchmark", Table.Left); ("ns/run", Table.Right); ("r2", Table.Right) ]
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let estimates =
    List.map
      (fun (name, ols) ->
        let estimate =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> Float.nan
        in
        let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square ols) in
        (name, estimate, r2))
      (List.sort compare rows)
  in
  List.iter
    (fun (name, estimate, r2) ->
      Table.add_row table [ name; Printf.sprintf "%.0f" estimate; Printf.sprintf "%.4f" r2 ])
    estimates;
  Table.print table;
  estimates

(* {2 JSON results dump} *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v = if Float.is_finite v then Printf.sprintf "%.3f" v else "null"

(* Provenance: which commit produced these numbers, when, on how wide a
   machine — so BENCH_results.json files are comparable across commits
   and hosts without external context. *)
let git_sha () =
  try
    let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "unknown" in
    match Unix.close_process_in ic with Unix.WEXITED 0 -> line | _ -> "unknown"
  with _ -> "unknown"

let utc_date () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let write_json ~throughput ~multi ~bechamel path =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"git_sha\": \"%s\",\n" (json_escape (git_sha ()));
  out "  \"date_utc\": \"%s\",\n" (utc_date ());
  out "  \"recommended_domains\": %d,\n" (Pool.recommended_domains ());
  out "  \"jobs\": %d,\n" !jobs;
  out "  \"throughput\": [\n";
  List.iteri
    (fun i c ->
      out
        "    {\"sites\": %d, \"items\": %d, \"replication_factor\": %d, \"zipf_theta\": %s, \
         \"committed_txns_per_vsec\": %s, \"abort_rate\": %s, \"events\": %d, \"wall_s\": %s, \
         \"events_per_sec\": %s, \"recovery_phases_ms\": %s}%s\n"
        c.tp_sites c.tp_items c.tp_factor
        (match c.tp_zipf_theta with None -> "null" | Some t -> json_float t)
        (json_float c.tp_txns_per_vsec) (json_float c.tp_abort_rate) c.tp_events
        (json_float c.tp_wall_s)
        (json_float (float_of_int c.tp_events /. c.tp_wall_s))
        (match c.tp_recovery with
        | [] -> "null"
        | kv ->
          "{"
          ^ String.concat ", "
              (List.map
                 (fun (k, v) -> Printf.sprintf "\"%s\": %s" (json_escape k) (json_float v))
                 kv)
          ^ "}")
        (if i = List.length throughput - 1 then "" else ","))
    throughput;
  out "  ],\n";
  out "  \"multi\": [\n";
  List.iteri
    (fun i c ->
      out
        "    {\"tenants\": %d, \"sites\": %d, \"shared_wal\": %s, \"events\": %d, \
         \"committed\": %d, \"wal_flushes\": %d, \"wall_s\": %s, \"events_per_sec\": %s}%s\n"
        c.mt_tenants c.mt_sites
        (if c.mt_shared then "true" else "false")
        c.mt_events c.mt_committed c.mt_wal_flushes (json_float c.mt_wall_s)
        (json_float (float_of_int c.mt_events /. c.mt_wall_s))
        (if i = List.length multi - 1 then "" else ","))
    multi;
  out "  ],\n";
  out "  \"wall_clock_s\": [\n";
  let walls = List.rev !wall_timings in
  List.iteri
    (fun i (name, seconds) ->
      out "    {\"name\": \"%s\", \"seconds\": %s}%s\n" (json_escape name) (json_float seconds)
        (if i = List.length walls - 1 then "" else ","))
    walls;
  out "  ],\n";
  out "  \"bechamel_ns_per_run\": [\n";
  List.iteri
    (fun i (name, estimate, r2) ->
      out "    {\"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s}%s\n" (json_escape name)
        (json_float estimate) (json_float r2)
        (if i = List.length bechamel - 1 then "" else ","))
    bechamel;
  out "  ]\n";
  out "}\n";
  close_out oc;
  Printf.printf "\nbenchmark results written to %s\n" path

(* {2 Baseline guard}

   Compares the throughput cases of this run against a previously
   committed [--json] dump.  The simulation outputs (event counts,
   committed txns/vsec, abort rate) are deterministic, so they must match
   the baseline exactly up to the dump's %.3f rounding — any drift there
   is a semantic change, not noise.  Wall-clock only has to stay within
   [--wall-tolerance] (default 1.5x: CI machines are noisy; the ratio
   still catches order-of-magnitude regressions such as an accidentally
   hot telemetry path). *)
(* A baseline stamped on a commit that is not an ancestor of HEAD (a
   stale branch, a foreign checkout, a rebase that rewrote it away) can
   still pass numerically while guarding the wrong lineage — warn, do
   not fail: the numbers themselves are still checked. *)
let warn_unless_ancestor baseline_sha =
  let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') in
  match baseline_sha with
  | None | Some "unknown" | Some "" -> ()
  | Some sha -> (
    if String.exists (fun c -> not (is_hex c)) sha then
      Printf.printf "  WARN baseline git_sha %S is not a commit hash\n" sha
    else
      let cmd = Printf.sprintf "git merge-base --is-ancestor %s HEAD 2>/dev/null" sha in
      try
        match Unix.system cmd with
        | Unix.WEXITED 0 -> ()
        | Unix.WEXITED _ ->
          Printf.printf
            "  WARN baseline git_sha %s is not an ancestor of HEAD — the baseline predates a \
             rebase or came from another branch; consider re-stamping with --json\n"
            sha
        | _ -> ()
      with _ -> ())

let check_baseline ~throughput ~multi path =
  let module Json = Raid_obs.Json in
  section (Printf.sprintf "Baseline check against %s" path);
  let contents =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let doc =
    match Json.parse contents with
    | Ok doc -> doc
    | Error e ->
      Printf.eprintf "baseline %s does not parse: %s\n" path e;
      exit 1
  in
  (let sha =
     match Json.member "git_sha" doc with Some (Json.Str s) -> Some s | _ -> None
   in
   warn_unless_ancestor sha);
  let cases =
    match Json.member "throughput" doc with Some arr -> Json.to_list arr | None -> []
  in
  let multi_cases =
    match Json.member "multi" doc with Some arr -> Json.to_list arr | None -> []
  in
  let int_field k v = match Json.member k v with Some (Json.Int n) -> Some n | _ -> None in
  let float_field k v =
    match Json.member k v with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int n) -> Some (float_of_int n)
    | _ -> None
  in
  let failures = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun message ->
        incr failures;
        Printf.printf "  FAIL %s\n" message)
      fmt
  in
  List.iter
    (fun c ->
      match
        List.find_opt
          (fun b ->
            int_field "sites" b = Some c.tp_sites
            && int_field "items" b = Some c.tp_items
            (* older baselines predate partial replication: a missing
               replication_factor field means full replication *)
            && Option.value ~default:0 (int_field "replication_factor" b) = c.tp_factor)
          cases
      with
      | None ->
        Printf.printf "  no baseline case for %d sites / %d items / k=%d, skipped\n" c.tp_sites
          c.tp_items c.tp_factor
      | Some b ->
        let label =
          Printf.sprintf "%d sites / %d items%s" c.tp_sites c.tp_items
            (if c.tp_factor = 0 then "" else Printf.sprintf " / k=%d" c.tp_factor)
        in
        (match int_field "events" b with
        | Some events when events <> c.tp_events ->
          fail "%s: events %d, baseline %d (deterministic field drifted)" label c.tp_events
            events
        | _ -> ());
        (match float_field "committed_txns_per_vsec" b with
        | Some tps when Float.abs (tps -. c.tp_txns_per_vsec) > 0.0015 ->
          fail "%s: %.3f txns/vsec, baseline %.3f (deterministic field drifted)" label
            c.tp_txns_per_vsec tps
        | _ -> ());
        (match float_field "abort_rate" b with
        | Some rate when Float.abs (rate -. c.tp_abort_rate) > 0.0015 ->
          fail "%s: abort rate %.3f, baseline %.3f (deterministic field drifted)" label
            c.tp_abort_rate rate
        | _ -> ());
        (* Recovery MTTR is virtual time, hence deterministic; baselines
           stamped before the observatory simply lack the field. *)
        (match Json.member "recovery_phases_ms" b with
        | Some (Json.Obj _ as rp) ->
          List.iter
            (fun key ->
              match (float_field key rp, List.assoc_opt key c.tp_recovery) with
              | Some base, Some current when Float.abs (base -. current) > 0.0015 ->
                fail "%s: recovery %s %.3f ms, baseline %.3f (deterministic field drifted)"
                  label key current base
              | _ -> ())
            [ "outage"; "replay"; "resolve"; "install"; "mttr" ]
        | _ -> ());
        (match float_field "wall_s" b with
        | Some wall when wall > 0.0 ->
          let ratio = c.tp_wall_s /. wall in
          Printf.printf "  %s: wall %.3f s vs baseline %.3f s (%+.1f%%)\n" label c.tp_wall_s
            wall
            ((ratio -. 1.0) *. 100.0);
          if ratio > !wall_tolerance then
            fail "%s: wall clock %.2fx the baseline (tolerance %.2fx)" label ratio
              !wall_tolerance
        | _ -> ()))
    throughput;
  (* Multi-tenant cases: events, committed and flush counts are
     deterministic (fixed shard count, schedule-fixed interleaving), so
     they must match exactly; wall only within tolerance. *)
  if multi_cases = [] && multi <> [] then
    Printf.printf "  no multi section in baseline, skipped (re-stamp with --json to add it)\n"
  else
    List.iter
      (fun c ->
        match
          List.find_opt
            (fun b ->
              int_field "tenants" b = Some c.mt_tenants
              && int_field "sites" b = Some c.mt_sites
              && (match Json.member "shared_wal" b with
                 | Some (Json.Bool shared) -> shared = c.mt_shared
                 | _ -> false))
            multi_cases
        with
        | None ->
          Printf.printf "  no baseline multi case for %d tenants / %d sites / %s, skipped\n"
            c.mt_tenants c.mt_sites
            (if c.mt_shared then "shared wal" else "per-tenant wal")
        | Some b ->
          let label =
            Printf.sprintf "multi %d tenants / %s wal" c.mt_tenants
              (if c.mt_shared then "shared" else "per-tenant")
          in
          (match int_field "events" b with
          | Some events when events <> c.mt_events ->
            fail "%s: events %d, baseline %d (deterministic field drifted)" label c.mt_events
              events
          | _ -> ());
          (match int_field "committed" b with
          | Some committed when committed <> c.mt_committed ->
            fail "%s: committed %d, baseline %d (deterministic field drifted)" label
              c.mt_committed committed
          | _ -> ());
          (match int_field "wal_flushes" b with
          | Some flushes when flushes <> c.mt_wal_flushes ->
            fail "%s: wal flushes %d, baseline %d (deterministic field drifted)" label
              c.mt_wal_flushes flushes
          | _ -> ());
          match float_field "wall_s" b with
          | Some wall when wall > 0.0 ->
            let ratio = c.mt_wall_s /. wall in
            Printf.printf "  %s: wall %.3f s vs baseline %.3f s (%+.1f%%)\n" label c.mt_wall_s
              wall
              ((ratio -. 1.0) *. 100.0);
            if ratio > !wall_tolerance then
              fail "%s: wall clock %.2fx the baseline (tolerance %.2fx)" label ratio
                !wall_tolerance
          | _ -> ())
      multi;
  if !failures > 0 then begin
    Printf.eprintf "baseline check: %d failure%s\n" !failures
      (if !failures = 1 then "" else "s");
    exit 1
  end
  else Printf.printf "  baseline check passed\n"

let () =
  parse_args ();
  Pool.set_default_domains !jobs;
  print_endline "RAID replicated copy control: benchmark harness";
  print_endline "(paper: Bhargava, Noll, Sabo, ICDE 1988 / Purdue CSD-TR-692)";
  Printf.printf "(independent runs fan out over %d domain%s; pass -j N to change)\n" !jobs
    (if !jobs = 1 then "" else "s");
  timed "experiment 1 tables" print_experiment1;
  let e2, s1, s2 = timed "figure runs (experiments 2-3)" run_figures in
  print_experiment2 e2;
  print_experiment3 s1 s2;
  timed "ablation grid" print_ablations;
  timed "scaling and robustness sweeps" print_scaling_and_robustness;
  let throughput = timed "steady-state throughput" print_throughput in
  let multi = timed "multi-tenant engine" print_multi in
  let bechamel = timed "bechamel microbenchmarks" run_bechamel in
  (match !json_path with
  | None -> ()
  | Some path -> write_json ~throughput ~multi ~bechamel path);
  match !baseline_path with
  | None -> ()
  | Some path -> check_baseline ~throughput ~multi path
