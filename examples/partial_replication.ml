(* Control transaction type 3 under partial replication (paper §3.2).

   Items are placed on k consecutive sites from a sharded primary
   (here: k=2, modular sharding, so item i lives on sites i mod n and
   (i+1) mod n).  Two overlapping site failures can take both holders of
   an item down.  Type-3 control transactions watch for items reduced to
   a single operational up-to-date copy and spawn a backup on a site
   that holds none, keeping the item available.

   Run with: dune exec examples/partial_replication.exe *)

module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Placement = Raid_core.Placement
module Txn = Raid_core.Txn
module Metrics = Raid_core.Metrics
module Site = Raid_core.Site

let () =
  let num_sites = 4 and num_items = 20 in
  let spec = Placement.spec ~sharding:Placement.Modular ~factor:2 () in
  let config =
    Config.make ~spawn_backups:true ~replication:(Config.Partial spec) ~num_sites ~num_items ()
  in
  let cluster = Cluster.create config in

  (* The placement is a pure function of the spec: every site computes
     the same holder set without any per-item matrix. *)
  let placement = Placement.make ~num_sites ~num_items spec in
  Printf.printf "item 0 holders: sites %s (primary %d)\n"
    (String.concat ", " (List.map string_of_int (Placement.replicas placement 0)))
    (Placement.primary placement 0);
  Cluster.fail_site cluster 1;
  Printf.printf "site 1 failed; writing item 0 leaves a single operational copy...\n";
  let id = Cluster.next_txn_id cluster in
  let outcome = Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Write 0 ]) in
  Printf.printf "write committed=%b; control-3 backups spawned so far: %d\n"
    outcome.Metrics.committed
    (Cluster.metrics cluster).Metrics.control3_backups;
  let backup_holder =
    List.find_opt
      (fun s -> s <> 0 && s <> 1 && Site.stores (Cluster.site cluster s) ~item:0)
      [ 0; 1; 2; 3 ]
  in
  (match backup_holder with
  | Some s -> Printf.printf "backup copy of item 0 materialised on site %d\n" s
  | None -> Printf.printf "no backup spawned (unexpected)\n");

  (* Now the original holder dies too; without the backup the item would
     be unreadable. *)
  Cluster.fail_site cluster 0;
  Printf.printf "site 0 failed as well; both original holders are now down\n";
  let coordinator = Option.value ~default:2 backup_holder in
  let id = Cluster.next_txn_id cluster in
  let outcome = Cluster.submit cluster ~coordinator (Txn.make ~id [ Txn.Read 0 ]) in
  (match outcome.Metrics.reads with
  | [ (0, value, version) ] when outcome.Metrics.committed ->
    Printf.printf "item 0 still readable from the backup: value %d (version %d)\n" value version
  | _ -> Printf.printf "item 0 unavailable: committed=%b\n" outcome.Metrics.committed)
