(* A narrated replay of the paper's Experiment 2 (Figure 1): watch
   fail-locks accumulate while a site is down and drain as it recovers.

   Run with: dune exec examples/failure_and_recovery.exe *)

module Scenario = Raid_sim.Scenario
module Runner = Raid_sim.Runner
module Config = Raid_core.Config
module Workload = Raid_core.Workload

let () =
  let config = Config.make ~num_sites:2 ~num_items:50 () in
  let scenario =
    Scenario.make ~policy:(Scenario.Fixed 1) ~seed:15 ~config
      ~workload:(Workload.Uniform { max_ops = 5; write_prob = 0.5 })
      [
        Scenario.Fail 0;
        Scenario.Run_txns 100;
        Scenario.Recover 0;
        Scenario.Set_policy (Scenario.Weighted [ (0, 0.05); (1, 0.95) ]);
        Scenario.Run_until_recovered { site = 0; max_txns = 1000 };
      ]
  in
  let result = Runner.run scenario in
  print_endline "txn  | locks for site 0 | note";
  print_endline "-----+------------------+---------------------------";
  List.iter
    (fun record ->
      let index = record.Runner.index in
      let locks = record.Runner.faillocks_per_site.(0) in
      let note =
        if index = 1 then "site 0 failed before txn 1"
        else if index = 101 then "site 0 recovered before txn 101"
        else if locks = 0 && index > 100 then "fully recovered"
        else if record.Runner.outcome.Raid_core.Metrics.copier_requests > 0 then
          Printf.sprintf "%d copier txn(s)" record.Runner.outcome.Raid_core.Metrics.copier_requests
        else ""
      in
      (* Print the interesting rows: every 10th, plus events. *)
      if index mod 10 = 0 || note <> "" then Printf.printf "%4d | %16d | %s\n" index locks note)
    result.Runner.records;
  Printf.printf "\ntransactions processed: %d (aborted: %d)\n"
    (List.length result.Runner.records) result.Runner.aborted;
  Printf.printf "cluster fully consistent: %b\n"
    (Raid_core.Cluster.fully_consistent result.Runner.cluster)
