(* The paper's §3.2 proposal: two-step recovery.

   Step one refreshes out-of-date copies passively (writes and on-demand
   copiers); once the fail-locked fraction drops below a threshold, step
   two proactively issues batch copier transactions.  This example runs
   the same outage under both policies and prints the difference.

   Run with: dune exec examples/two_step_recovery.exe *)

module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Workload = Raid_core.Workload
module Metrics = Raid_core.Metrics
module Scenario = Raid_sim.Scenario
module Runner = Raid_sim.Runner

let run ~label ~recovery =
  let config = Config.make ~recovery ~num_sites:2 ~num_items:50 () in
  let scenario =
    Scenario.make ~policy:(Scenario.Fixed 1) ~seed:30 ~config
      ~workload:(Workload.Uniform { max_ops = 5; write_prob = 0.5 })
      [
        Scenario.Fail 0;
        Scenario.Run_txns 100;
        Scenario.Recover 0;
        Scenario.Set_policy (Scenario.Weighted [ (0, 0.5); (1, 0.5) ]);
        Scenario.Run_until_recovered { site = 0; max_txns = 1500 };
      ]
  in
  let result = Runner.run scenario in
  let metrics = Cluster.metrics result.Runner.cluster in
  let recovery_txns =
    match List.rev result.Runner.records with
    | [] -> 0
    | last :: _ -> max 0 (last.Runner.index - 100)
  in
  Printf.printf "%-44s | %9d | %7d | %6d\n" label recovery_txns
    metrics.Metrics.copier_requests metrics.Metrics.batch_copier_rounds

let () =
  Printf.printf "%-44s | %9s | %7s | %6s\n" "recovery policy" "txns" "copiers" "rounds";
  Printf.printf "%s\n" (String.make 76 '-');
  run ~label:"on-demand (the paper's implementation)" ~recovery:Config.On_demand;
  run ~label:"two-step: batch once 30% or less locked"
    ~recovery:(Config.Two_step { threshold = 0.3; batch_size = 5 });
  run ~label:"two-step: batch immediately"
    ~recovery:(Config.Two_step { threshold = 1.0; batch_size = 10 });
  print_newline ();
  print_endline
    "Batching shortens the vulnerable window in which a second failure could\n\
     leave the last up-to-date copy unreachable (the aborts of Figure 2)."
