(* Concurrent transaction processing (the paper's "complete RAID"
   future-work direction).

   The serial managing site processes one transaction at a time, as the
   paper did.  With the conservative strict-2PL extension, non-conflicting
   transactions overlap: the batch's virtual-time makespan shrinks with
   the concurrency level until hot-set conflicts saturate it.

   Run with: dune exec examples/concurrent_processing.exe *)

let () =
  print_endline "200 transactions, 4 sites, 50-item hot set, P(write)=0.5:";
  print_newline ();
  Raid_util.Table.print
    (Raid_sim.Concurrent.sweep_table (Raid_sim.Concurrent.sweep ~txns:200 ()));
  print_newline ();
  print_endline
    "Every level produces byte-identical replicas and the same final\n\
     database as the serial run: conflicting transactions are serialised\n\
     in id order by the lock table, so the schedule stays equivalent.";
  (* Prove the claim for one pair of levels. *)
  let config = Raid_core.Config.make ~num_sites:4 ~num_items:50 () in
  let workload = Raid_core.Workload.Uniform { max_ops = 5; write_prob = 0.5 } in
  let snapshot level =
    let result = Raid_sim.Concurrent.run ~seed:9 ~concurrency:level ~txns:150 ~config ~workload () in
    Raid_storage.Database.snapshot
      (Raid_core.Site.database (Raid_core.Cluster.site result.Raid_sim.Concurrent.cluster 0))
  in
  let equal = snapshot 1 = snapshot 8 in
  Printf.printf "\nserial and concurrency-8 final states identical: %b\n" equal;
  if not equal then exit 1
