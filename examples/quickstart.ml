(* Quickstart: a three-site replicated database running the ROWAA
   protocol with fail-locks.

   Run with: dune exec examples/quickstart.exe *)

module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Txn = Raid_core.Txn
module Metrics = Raid_core.Metrics
module Site = Raid_core.Site

let show fmt = Printf.printf fmt

let () =
  (* A cluster of 3 sites replicating 20 data items.  The default
     configuration uses the cost model calibrated to the paper; virtual
     times below are therefore comparable to its tables. *)
  let cluster = Cluster.create (Config.make ~num_sites:3 ~num_items:20 ()) in

  (* Submit a transaction: reads and writes on items, committed through
     the two-phase commit protocol of the paper's Appendix A. *)
  let id = Cluster.next_txn_id cluster in
  let outcome =
    Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Write 5; Txn.Read 5; Txn.Write 9 ])
  in
  show "txn %d committed=%b in %.1f ms (virtual)\n" id outcome.Metrics.committed
    (Raid_net.Vtime.to_ms outcome.Metrics.elapsed);

  (* Fail a site.  ROWAA keeps processing: writes skip the dead site and
     set fail-locks on its behalf. *)
  Cluster.fail_site cluster 2;
  let id = Cluster.next_txn_id cluster in
  let outcome = Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Write 5 ]) in
  show "with site 2 down: txn %d committed=%b\n" id outcome.Metrics.committed;
  show "items fail-locked for site 2: %s\n"
    (String.concat ", " (List.map string_of_int (Cluster.faillocks_for cluster 2)));

  (* Recover the site: control transaction type 1 fetches the session
     vector and fail-locks, so the site knows exactly which copies are
     out of date and can serve the rest immediately. *)
  (match Cluster.recover_site cluster 2 with
  | `Recovered -> show "site 2 recovered (session %d)\n" (Site.session_number (Cluster.site cluster 2))
  | `Blocked -> show "site 2 blocked: no operational donor\n");

  (* A read of the stale copy at the recovered site triggers a copier
     transaction that refreshes it on demand. *)
  let id = Cluster.next_txn_id cluster in
  let outcome = Cluster.submit cluster ~coordinator:2 (Txn.make ~id [ Txn.Read 5 ]) in
  show "read at recovered site: copiers=%d value read=%s\n" outcome.Metrics.copier_requests
    (match outcome.Metrics.reads with
    | [ (item, value, version) ] -> Printf.sprintf "item %d = %d (v%d)" item value version
    | _ -> "?");

  show "cluster fully consistent: %b\n" (Cluster.fully_consistent cluster)
