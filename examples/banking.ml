(* A replicated bank ledger under the ET1/DebitCredit transaction mix the
   paper names as future work [Anon85], with a mid-run site failure.

   Every transaction read-modify-writes one account, its teller and its
   branch.  The example verifies that after the failed site recovers and
   traffic continues, all three replicas of the ledger are identical —
   the consistency guarantee of Experiment 3, on a realistic workload.

   Run with: dune exec examples/banking.exe *)

module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Workload = Raid_core.Workload
module Metrics = Raid_core.Metrics
module Scenario = Raid_sim.Scenario
module Runner = Raid_sim.Runner

let () =
  (* 2 branches x (1 branch + 4 tellers + 20 accounts) = 50 ledger rows. *)
  let workload =
    Workload.Et1 { branches = 2; tellers_per_branch = 4; accounts_per_branch = 20 }
  in
  let config = Config.make ~num_sites:3 ~num_items:50 () in
  let scenario =
    Scenario.make ~policy:Scenario.Round_robin ~seed:8 ~config ~workload
      [
        Scenario.Run_txns 40;
        Scenario.Fail 1;  (* a branch office loses its site *)
        Scenario.Run_txns 40;
        Scenario.Recover 1;
        Scenario.Run_until_consistent { max_txns = 500 };
      ]
  in
  let result = Runner.run scenario in
  Printf.printf "debit/credit transactions processed: %d\n" (List.length result.Runner.records);
  Printf.printf "aborted: %d (ROWAA keeps the ledger available through the outage)\n"
    result.Runner.aborted;
  let copiers =
    List.fold_left
      (fun acc r -> acc + r.Runner.outcome.Metrics.copier_requests)
      0 result.Runner.records
  in
  Printf.printf "copier transactions during site 1's catch-up: %d\n" copiers;
  let consistent = Cluster.fully_consistent result.Runner.cluster in
  Printf.printf "all three ledger replicas identical: %b\n" consistent;
  if not consistent then exit 1
