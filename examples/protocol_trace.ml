(* A message-level view of the protocol: the exact Appendix-A exchanges
   for a plain commit, and the copier + special-transaction dance at a
   recovering site.

   Run with: dune exec examples/protocol_trace.exe *)

module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Txn = Raid_core.Txn
module Timeline = Raid_sim.Timeline
module Vtime = Raid_net.Vtime

let () =
  let cluster = Cluster.create ~settings:(Cluster.settings ~trace:true ()) (Config.make ~num_sites:3 ~num_items:10 ()) in

  print_endline "--- a plain transaction (two-phase commit, Appendix A) ---";
  let id = Cluster.next_txn_id cluster in
  ignore (Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Read 1; Txn.Write 4 ]));
  print_endline (Timeline.render cluster);

  print_endline "\n--- failure, recovery, and a copier transaction ---";
  let mark = Raid_net.Engine.now (Cluster.engine cluster) in
  Cluster.fail_site cluster 2;
  let id = Cluster.next_txn_id cluster in
  ignore (Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Write 4 ]));
  ignore (Cluster.recover_site cluster 2);
  let id = Cluster.next_txn_id cluster in
  ignore (Cluster.submit cluster ~coordinator:2 (Txn.make ~id [ Txn.Read 4 ]));
  print_endline (Timeline.render ~since:(Vtime.add mark 1) cluster);

  print_endline "\n(legend: mgr = the managing site; !! = undeliverable, the";
  print_endline " sender gets a timeout notification and runs control type 2)"
