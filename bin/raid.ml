(* The `raid` command-line interface: run the paper's experiments, the
   ablation studies, or a custom failure/recovery scenario. *)

module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Workload = Raid_core.Workload
module Scenario = Raid_sim.Scenario
module Runner = Raid_sim.Runner
module Table = Raid_util.Table
open Cmdliner

(* Shared [-j]/[--jobs] flag: independent simulation runs fan out over
   this many OCaml domains (Raid_par.Pool); results are identical for
   any value. *)
let jobs =
  let domain_count =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ -> Error (`Msg "domain count must be at least 1")
      | None -> Error (`Msg "expected an integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value & opt domain_count 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run independent simulations on $(docv) OCaml domains (default 1 = sequential). \
           Output is bit-identical for every value; use the number of cores for the fastest \
           sweep.")

let set_jobs n = Raid_par.Pool.set_default_domains n

let print_exp1 () =
  List.iter
    (fun report ->
      Table.print (Raid_sim.Experiment1.to_table report);
      List.iter (fun note -> Printf.printf "  note: %s\n" note) report.Raid_sim.Experiment1.notes;
      print_newline ())
    (Raid_sim.Experiment1.all ())

let print_exp2 ?csv () =
  let e2 = Raid_sim.Experiment2.run () in
  Raid_util.Chart.print (Raid_sim.Experiment2.figure e2);
  print_newline ();
  Table.print (Raid_sim.Experiment2.summary_table e2);
  match csv with
  | None -> ()
  | Some path ->
    Raid_sim.Export.write_file ~path
      (Raid_sim.Export.series_csv ~header:("txn", "faillocks_site_0")
         e2.Raid_sim.Experiment2.series);
    Printf.printf "figure data exported to %s\n" path

let print_exp3 ?csv () =
  let s1 = Raid_sim.Experiment3.scenario1 () in
  Raid_util.Chart.print
    (Raid_sim.Experiment3.figure ~title:"Figure 2: database inconsistency (scenario 1)" s1);
  Table.print (Raid_sim.Experiment3.summary_table ~title:"Scenario 1 summary" s1);
  print_newline ();
  let s2 = Raid_sim.Experiment3.scenario2 () in
  Raid_util.Chart.print
    (Raid_sim.Experiment3.figure ~title:"Figure 3: database inconsistency (scenario 2)" s2);
  Table.print (Raid_sim.Experiment3.summary_table ~title:"Scenario 2 summary" s2);
  match csv with
  | None -> ()
  | Some path ->
    Raid_sim.Export.write_file ~path
      (Raid_sim.Export.multi_series_csv ~x_name:"txn"
         (List.map
            (fun (site, points) -> (Printf.sprintf "scenario2_site_%d" site, points))
            s2.Raid_sim.Experiment3.series));
    Printf.printf "figure data exported to %s\n" path

(* `raid exp N` *)
let exp_cmd =
  let which =
    Arg.(
      required
      & pos 0 (some (enum [ ("1", `One); ("2", `Two); ("3", `Three); ("all", `All) ])) None
      & info [] ~docv:"EXPERIMENT" ~doc:"Which experiment to run: 1, 2, 3 or all.")
  in
  let csv =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Export the figure's series as CSV (experiments 2-3).")
  in
  let run which csv =
    match which with
    | `One -> print_exp1 ()
    | `Two -> print_exp2 ?csv ()
    | `Three -> print_exp3 ?csv ()
    | `All ->
      print_exp1 ();
      print_exp2 ?csv ();
      print_exp3 ()
  in
  Cmd.v
    (Cmd.info "exp" ~doc:"Reproduce one of the paper's experiments (tables and figures).")
    Term.(const run $ which $ csv)

(* `raid ablations` *)
let ablations_cmd =
  let run jobs =
    set_jobs jobs;
    List.iter
      (fun table ->
        Table.print table;
        print_newline ())
      (Raid_sim.Ablation.all_tables ())
  in
  Cmd.v
    (Cmd.info "ablations" ~doc:"Run the ablation studies listed in DESIGN.md (A1-A6, A8-A9; A7 via `concurrency`).")
    Term.(const run $ jobs)

(* `raid scaling` *)
let scaling_cmd =
  let partial =
    Arg.(
      value & flag
      & info [ "partial" ]
          ~doc:
            "Run only the partial-replication scaling sweep: zipfian throughput with k=3 \
             hash placement at 64-1024 sites over 10^5 items, against a full-replication \
             baseline at 64 sites.")
  in
  let run partial jobs =
    set_jobs jobs;
    if partial then
      Table.print (Raid_sim.Scaling.partial_scaling_table (Raid_sim.Scaling.partial_scaling ()))
    else begin
      Table.print (Raid_sim.Scaling.control1_table (Raid_sim.Scaling.control1_scaling ()));
      print_newline ();
      Table.print
        (Raid_sim.Scaling.experiment2_seeds_table (Raid_sim.Scaling.experiment2_seeds ()));
      print_newline ();
      Table.print (Raid_sim.Scaling.scenario1_seeds_table (Raid_sim.Scaling.scenario1_seeds ()));
      print_newline ();
      Table.print
        (Raid_sim.Scaling.cluster_size_table (Raid_sim.Scaling.recovery_vs_cluster_size ()));
      print_newline ();
      Table.print (Raid_sim.Analysis.comparison_table ());
      print_newline ();
      Raid_util.Chart.print (Raid_sim.Analysis.figure ())
    end
  in
  Cmd.v
    (Cmd.info "scaling"
       ~doc:
         "Run the scaling and multi-seed robustness sweeps (control-1 scaling, Experiment-2 \
          seed sweep, cluster sizes, model comparison; $(b,--partial) for the \
          partial-replication sweep).")
    Term.(const run $ partial $ jobs)

(* `raid scenario` — a configurable single-outage scenario. *)
let scenario_cmd =
  let sites =
    Arg.(value & opt int 2 & info [ "sites" ] ~docv:"N" ~doc:"Number of database sites.")
  in
  let items =
    Arg.(value & opt int 50 & info [ "items" ] ~docv:"N" ~doc:"Hot-set size in data items.")
  in
  let max_ops =
    Arg.(
      value & opt int 5
      & info [ "max-ops" ] ~docv:"N" ~doc:"Maximum operations per transaction.")
  in
  let write_prob =
    Arg.(
      value & opt float 0.5
      & info [ "write-prob" ] ~docv:"P" ~doc:"Probability that an operation is a write.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let fail_site =
    Arg.(value & opt int 0 & info [ "fail-site" ] ~docv:"SITE" ~doc:"Site to fail.")
  in
  let down_txns =
    Arg.(
      value & opt int 100
      & info [ "down-txns" ] ~docv:"N" ~doc:"Transactions processed while the site is down.")
  in
  let max_recovery =
    Arg.(
      value & opt int 1000
      & info [ "max-recovery-txns" ] ~docv:"N"
          ~doc:"Bound on transactions processed during recovery.")
  in
  let two_step =
    Arg.(
      value & opt (some float) None
      & info [ "two-step" ] ~docv:"THRESHOLD"
          ~doc:"Enable two-step recovery with the given threshold (0..1).")
  in
  let csv =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Export per-transaction records as CSV.")
  in
  let run sites items max_ops write_prob seed fail_site down_txns max_recovery two_step csv =
    if fail_site < 0 || fail_site >= sites then
      invalid_arg "scenario: --fail-site out of range";
    let recovery =
      match two_step with
      | None -> Config.On_demand
      | Some threshold -> Config.Two_step { threshold; batch_size = 8 }
    in
    let config = Config.make ~recovery ~num_sites:sites ~num_items:items () in
    let scenario =
      Scenario.make ~seed ~config
        ~workload:(Workload.Uniform { max_ops; write_prob })
        [
          Scenario.Fail fail_site;
          Scenario.Run_txns down_txns;
          Scenario.Recover fail_site;
          Scenario.Run_until_recovered { site = fail_site; max_txns = max_recovery };
        ]
    in
    let result = Runner.run scenario in
    let chart =
      Raid_util.Chart.create
        ~title:
          (Printf.sprintf "fail-locks for site %d (db=%d, txn<=%d, P(write)=%.2f)" fail_site
             items max_ops write_prob)
        ~x_label:"number of transactions" ~y_label:"fail-locks set" ()
    in
    Raid_util.Chart.add_series chart
      {
        Raid_util.Chart.label = Printf.sprintf "site %d" fail_site;
        glyph = '*';
        points = Runner.series result ~site:fail_site;
      };
    Raid_util.Chart.print chart;
    Printf.printf "\ntransactions: %d committed, %d aborted\n" result.Runner.committed
      result.Runner.aborted;
    Printf.printf "fully consistent at end: %b\n"
      (Cluster.fully_consistent result.Runner.cluster);
    List.iter
      (fun (name, value) -> Printf.printf "%-28s %d\n" name value)
      (Raid_core.Metrics.snapshot_counts (Cluster.metrics result.Runner.cluster));
    match csv with
    | None -> ()
    | Some path ->
      Raid_sim.Export.write_file ~path (Raid_sim.Export.records_csv result);
      Printf.printf "records exported to %s\n" path
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:"Run a custom fail/recover scenario and plot the fail-lock series.")
    Term.(
      const run $ sites $ items $ max_ops $ write_prob $ seed $ fail_site $ down_txns
      $ max_recovery $ two_step $ csv)

(* `raid trace` — run a named scenario with protocol tracing on. *)
let trace_cmd =
  let scenario_doc =
    String.concat "; "
      (List.map
         (fun (name, description) -> Printf.sprintf "$(b,%s): %s" name description)
         Raid_sim.Tracing.scenarios)
  in
  let scenario_name =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO" ~doc:("Scenario to trace. " ^ scenario_doc ^ "."))
  in
  let list =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the named scenarios (one per line with a description) and exit.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome); ("summary", `Summary) ]) `Summary
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: $(b,jsonl) (one JSON object per protocol event), $(b,chrome) \
             (Chrome trace-event JSON, loadable in Perfetto with one track per site and 2PC \
             phases nested inside transaction spans) or $(b,summary) (event counts and \
             virtual-latency histograms).")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to $(docv) instead of stdout.")
  in
  let seed =
    Arg.(
      value & opt (some int) None
      & info [ "seed" ] ~docv:"SEED" ~doc:"Override the scenario's default seed.")
  in
  let run list scenario_name format out seed jobs =
    set_jobs jobs;
    if list then
      List.iter
        (fun (name, description) -> Printf.printf "%-24s %s\n" name description)
        Raid_sim.Tracing.scenarios
    else
    match scenario_name with
    | None ->
      prerr_endline "raid trace: a SCENARIO argument is required (see --list)";
      exit 2
    | Some scenario_name ->
    match Raid_sim.Tracing.scenario_of_name ?seed scenario_name with
    | Error message ->
      prerr_endline ("raid trace: " ^ message);
      exit 2
    | Ok scenario ->
      (* The summary's latency statistics silently skew if the ring
         wraps, so give it room; the export formats keep the default
         bound and warn instead. *)
      let capacity = match format with `Summary -> Some (1 lsl 20) | _ -> None in
      let output = Raid_sim.Tracing.run ?capacity scenario in
      let dropped = Raid_obs.Trace.dropped output.Raid_sim.Tracing.trace in
      if dropped > 0 then
        Printf.eprintf "raid trace: dropped %d entries (capacity %d); oldest events are missing\n%!"
          dropped
          (Raid_obs.Trace.capacity output.Raid_sim.Tracing.trace);
      let rendered = Raid_sim.Tracing.render ~format output in
      (match out with
      | None -> print_string rendered
      | Some path ->
        Raid_sim.Export.write_file ~path rendered;
        Printf.printf "trace written to %s\n" path)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a scenario with the protocol trace enabled and export it (JSONL, Chrome \
          trace-event JSON, or a latency summary).")
    Term.(const run $ list $ scenario_name $ format $ out $ seed $ jobs)

(* `raid metrics` — run a scenario with the telemetry registry attached
   and export the time series. *)
let metrics_cmd =
  let scenario_doc =
    String.concat "; "
      (List.map
         (fun (name, description) -> Printf.sprintf "$(b,%s): %s" name description)
         Raid_sim.Monitor.scenarios)
  in
  let scenario_name =
    Arg.(
      value & opt string "exp1"
      & info [ "scenario" ] ~docv:"SCENARIO" ~doc:("Scenario to instrument. " ^ scenario_doc ^ "."))
  in
  let list =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the named scenarios (one per line with a description) and exit.")
  in
  let sample =
    Arg.(
      value & opt float 100.0
      & info [ "sample" ] ~docv:"MS"
          ~doc:
            "Virtual-time sampling interval in milliseconds.  Samples are stamped at exact \
             multiples of the interval, so output is deterministic and byte-identical for any \
             $(b,-j).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("prom", `Prom); ("csv", `Csv) ]) `Prom
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: $(b,prom) (Prometheus text exposition, final values plus histogram \
             buckets) or $(b,csv) (long-form time series: metric,labels,t_ms,value).")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to $(docv) instead of stdout.")
  in
  let seed =
    Arg.(
      value & opt (some int) None
      & info [ "seed" ] ~docv:"SEED" ~doc:"Override the scenario's default seed.")
  in
  let run list scenario_name sample format out seed jobs =
    set_jobs jobs;
    if list then
      List.iter
        (fun (name, description) -> Printf.printf "%-24s %s\n" name description)
        Raid_sim.Monitor.scenarios
    else begin
    if sample <= 0.0 then begin
      prerr_endline "raid metrics: --sample must be positive";
      exit 2
    end;
    match Raid_sim.Monitor.scenario_of_name ?seed scenario_name with
    | Error message ->
      prerr_endline ("raid metrics: " ^ message);
      exit 2
    | Ok scenario ->
      let output = Raid_sim.Monitor.run ~sample:(Raid_net.Vtime.of_ms_f sample) scenario in
      let rendered = Raid_sim.Monitor.render ~format output in
      (* Build provenance rides at the end of the exposition so the
         scenario series above stay byte-identical across builds. *)
      let rendered =
        match format with
        | `Prom -> rendered ^ Raid_obs.Build_info.prom_block ()
        | `Csv -> rendered
      in
      (match out with
      | None -> print_string rendered
      | Some path ->
        Raid_sim.Export.write_file ~path rendered;
        Printf.printf "metrics written to %s\n" path)
    end
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a scenario with the virtual-time telemetry registry attached and export the \
          sampled series (Prometheus text or long-form CSV).")
    Term.(const run $ list $ scenario_name $ sample $ format $ out $ seed $ jobs)

(* `raid explain` — the span-tree view of one transaction: where its
   latency went, blamed site by site along the critical path. *)
let explain_cmd =
  let scenario_doc =
    String.concat "; "
      (List.map
         (fun (name, description) -> Printf.sprintf "$(b,%s): %s" name description)
         Raid_sim.Monitor.scenarios)
  in
  let scenario_name =
    Arg.(
      value & opt string "exp1"
      & info [ "scenario" ] ~docv:"SCENARIO" ~doc:("Scenario to trace. " ^ scenario_doc ^ "."))
  in
  let txn =
    Arg.(
      value & opt (some int) None
      & info [ "txn" ] ~docv:"ID"
          ~doc:
            "Transaction to explain (default: the slowest complete committed transaction of \
             the run).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the span tree and critical path as JSON instead of the text rendering.")
  in
  let seed =
    Arg.(
      value & opt (some int) None
      & info [ "seed" ] ~docv:"SEED" ~doc:"Override the scenario's default seed.")
  in
  let run scenario_name txn json seed jobs =
    set_jobs jobs;
    match Raid_sim.Monitor.scenario_of_name ?seed scenario_name with
    | Error message ->
      prerr_endline ("raid explain: " ^ message);
      exit 2
    | Ok scenario ->
      (* Span assembly needs the whole stream: a wrapped ring loses the
         oldest transactions' begins, so give the collector the same
         headroom the trace summary gets. *)
      let output = Raid_sim.Tracing.run ~capacity:(1 lsl 20) scenario in
      let dropped = Raid_obs.Trace.dropped output.Raid_sim.Tracing.trace in
      if dropped > 0 then
        Printf.eprintf
          "raid explain: dropped %d trace entries; the oldest transactions are incomplete\n%!"
          dropped;
      let trees = Raid_sim.Tracing.spans output in
      let tree =
        match txn with
        | Some id -> (
          match Raid_obs.Span.find trees id with
          | Some tree -> tree
          | None ->
            Printf.eprintf "raid explain: no transaction %d in scenario %s (%d traced)\n" id
              scenario_name (List.length trees);
            exit 2)
        | None -> (
          match Raid_obs.Span.slowest trees with
          | Some tree -> tree
          | None ->
            prerr_endline "raid explain: the scenario traced no transactions";
            exit 2)
      in
      if json then print_endline (Raid_obs.Json.to_string (Raid_obs.Span.json tree))
      else print_string (Raid_obs.Span.render tree)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Trace a scenario and explain one transaction: its causal span tree (phases, copier \
          fetches, votes) and the critical path through it, each step blamed on the site that \
          spent the time.")
    Term.(const run $ scenario_name $ txn $ json $ seed $ jobs)

(* `raid incidents` — per-(site, episode) recovery timelines. *)
let incidents_cmd =
  let scenario_doc =
    String.concat "; "
      (List.map
         (fun (name, description) -> Printf.sprintf "$(b,%s): %s" name description)
         Raid_sim.Monitor.scenarios)
  in
  let scenario_name =
    Arg.(
      value & opt string "exp1"
      & info [ "scenario" ] ~docv:"SCENARIO" ~doc:("Scenario to run. " ^ scenario_doc ^ "."))
  in
  let csv =
    Arg.(
      value & flag
      & info [ "csv" ]
          ~doc:
            "Emit one CSV row per incident (durations in milliseconds) instead of the human \
             summary; byte-identical for any $(b,-j).")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to $(docv) instead of stdout.")
  in
  let seed =
    Arg.(
      value & opt (some int) None
      & info [ "seed" ] ~docv:"SEED" ~doc:"Override the scenario's default seed.")
  in
  let run scenario_name csv out seed jobs =
    set_jobs jobs;
    match Raid_sim.Monitor.scenario_of_name ?seed scenario_name with
    | Error message ->
      prerr_endline ("raid incidents: " ^ message);
      exit 2
    | Ok scenario ->
      let output = Raid_sim.Tracing.run ~capacity:(1 lsl 20) scenario in
      let dropped = Raid_obs.Trace.dropped output.Raid_sim.Tracing.trace in
      if dropped > 0 then
        Printf.eprintf
          "raid incidents: dropped %d trace entries; the oldest incidents are incomplete\n%!"
          dropped;
      let incidents = Raid_sim.Tracing.incidents output in
      let rendered =
        if csv then Raid_obs.Incident.to_csv incidents
        else if incidents = [] then "no site failures in this scenario\n"
        else
          String.concat ""
            (List.map (fun i -> Raid_obs.Incident.describe i ^ "\n") incidents)
      in
      (match out with
      | None -> print_string rendered
      | Some path ->
        Raid_sim.Export.write_file ~path rendered;
        Printf.printf "incidents written to %s\n" path)
  in
  Cmd.v
    (Cmd.info "incidents"
       ~doc:
         "Run a scenario and report every site-failure incident as a recovery timeline: \
          outage, WAL replay, in-doubt resolution, state install and fail-lock drain phases \
          that partition crash to caught-up exactly.")
    Term.(const run $ scenario_name $ csv $ out $ seed $ jobs)

(* `raid throughput` — steady-state load on a configurable cluster. *)
let throughput_cmd =
  let sites =
    Arg.(value & opt int 16 & info [ "sites" ] ~docv:"N" ~doc:"Number of database sites.")
  in
  let items =
    Arg.(value & opt int 500 & info [ "items" ] ~docv:"N" ~doc:"Database size in data items.")
  in
  let max_ops =
    Arg.(
      value & opt int 5
      & info [ "max-ops" ] ~docv:"N" ~doc:"Maximum operations per transaction.")
  in
  let write_prob =
    Arg.(
      value & opt float 0.5
      & info [ "write-prob" ] ~docv:"P" ~doc:"Probability that an operation is a write.")
  in
  let duration =
    Arg.(
      value & opt float 10_000.0
      & info [ "duration" ] ~docv:"MS" ~doc:"Virtual run length in milliseconds.")
  in
  let seeds =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Number of independent seeds to run (fanned out over -j domains).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Base PRNG seed.")
  in
  let no_failure =
    Arg.(
      value & flag
      & info [ "no-failure" ] ~doc:"Run without the mid-stream failure + recovery.")
  in
  let fail_at =
    Arg.(
      value & opt (some float) None
      & info [ "fail-at" ] ~docv:"MS"
          ~doc:"Fail site 0 at this absolute virtual time (default: duration/5).")
  in
  let recover_at =
    Arg.(
      value & opt (some float) None
      & info [ "recover-at" ] ~docv:"MS"
          ~doc:"Recover the failed site at this absolute virtual time (default: duration/2).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Quick CI run: cap the virtual duration at 1000 ms (failure at 200/500 ms).")
  in
  let csv =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Export the first seed's per-virtual-second trajectory as CSV.")
  in
  let telemetry =
    Arg.(
      value & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:
            "Attach the telemetry registry to the first seed's run and export it as Prometheus \
             text to $(docv) ($(b,-) for stdout).  The instrumented run produces the same \
             result row as without telemetry.")
  in
  let sample =
    Arg.(
      value & opt float 100.0
      & info [ "sample" ] ~docv:"MS"
          ~doc:"Telemetry sampling interval in virtual milliseconds (with $(b,--telemetry)).")
  in
  let replication_factor =
    Arg.(
      value & opt int 0
      & info [ "replication-factor" ] ~docv:"K"
          ~doc:
            "Copies per item (k-holder placement).  0 keeps the paper's full replication; \
             K >= sites also degenerates to it.")
  in
  let sharding =
    Arg.(
      value & opt string "hash"
      & info [ "sharding" ] ~docv:"KIND"
          ~doc:
            "How $(b,--replication-factor) picks each item's primary holder: $(b,hash), \
             $(b,range) or $(b,modular).")
  in
  let zipf_theta =
    Arg.(
      value & opt (some float) None
      & info [ "zipf-theta" ] ~docv:"THETA"
          ~doc:
            "Zipfian item skew in (0,1) (YCSB's parameterisation; 0.99 is its default).  \
             Omitted: the paper's uniform item draw.")
  in
  let run sites items max_ops write_prob duration seeds seed no_failure fail_at recover_at smoke
      csv telemetry sample replication_factor sharding zipf_theta jobs =
    set_jobs jobs;
    let replication =
      if replication_factor = 0 then Raid_core.Config.Full
      else
        match Raid_core.Placement.sharding_of_string sharding with
        | Error message ->
          Printf.eprintf "raid throughput: %s\n" message;
          exit 2
        | Ok sharding ->
          Raid_core.Config.Partial
            (Raid_core.Placement.spec ~sharding ~factor:replication_factor ())
    in
    let duration = if smoke then Float.min duration 1000.0 else duration in
    let failure =
      if no_failure then None
      else begin
        let default = Raid_sim.Throughput.default_failure ~sites ~duration_ms:duration in
        Some
          {
            default with
            Raid_sim.Throughput.fail_at_ms =
              Option.value ~default:default.Raid_sim.Throughput.fail_at_ms fail_at;
            recover_at_ms =
              Option.value ~default:default.Raid_sim.Throughput.recover_at_ms recover_at;
          }
      end
    in
    let config =
      Raid_sim.Throughput.make_config ~sites ~items ~max_ops ~write_prob ~duration_ms:duration
        ?failure ~replication ?zipf_theta ()
    in
    if sample <= 0.0 then begin
      prerr_endline "raid throughput: --sample must be positive";
      exit 2
    end;
    let registry =
      match telemetry with
      | None -> None
      | Some _ ->
        Some (Raid_obs.Telemetry.create ~interval:(Raid_net.Vtime.of_ms_f sample) ())
    in
    let t0 = Unix.gettimeofday () in
    (* The instrumented first seed runs outside the pool (the registry is
       single-domain state); the remaining seeds still fan out over -j. *)
    let results =
      match registry with
      | None -> Raid_sim.Throughput.run_seeds ~base_seed:seed ~seeds config
      | Some registry ->
        Raid_sim.Throughput.run ~seed ~telemetry:registry config
        :: (if seeds > 1 then
              Raid_sim.Throughput.run_seeds ~base_seed:(seed + 1) ~seeds:(seeds - 1) config
            else [])
    in
    let wall_s = Unix.gettimeofday () -. t0 in
    Table.print (Raid_sim.Throughput.results_table ~config results);
    let events = List.fold_left (fun acc r -> acc + r.Raid_sim.Throughput.events) 0 results in
    Printf.printf "\nhost: %.2f s wall clock, %d events, %.0f events/sec\n" wall_s events
      (if wall_s > 0.0 then float_of_int events /. wall_s else 0.0);
    (match (telemetry, registry) with
    | Some "-", Some registry -> print_string (Raid_obs.Prom.render registry)
    | Some path, Some registry ->
      Raid_sim.Export.write_file ~path (Raid_obs.Prom.render registry);
      Printf.printf "telemetry exported to %s\n" path
    | _ -> ());
    match (csv, results) with
    | Some path, first :: _ ->
      Raid_sim.Export.write_file ~path (Raid_sim.Throughput.windows_csv first);
      Printf.printf "trajectory exported to %s\n" path
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "throughput"
       ~doc:
         "Measure steady-state throughput (committed txns per virtual second, abort rate, \
          host events/sec) under an open-loop stream with a mid-run failure and recovery.")
    Term.(
      const run $ sites $ items $ max_ops $ write_prob $ duration $ seeds $ seed $ no_failure
      $ fail_at $ recover_at $ smoke $ csv $ telemetry $ sample $ replication_factor $ sharding
      $ zipf_theta $ jobs)

(* `raid concurrency` *)
let concurrency_cmd =
  let levels =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8; 16 ]
      & info [ "levels" ] ~docv:"N,N,..." ~doc:"Concurrency levels to sweep.")
  in
  let txns =
    Arg.(value & opt int 200 & info [ "txns" ] ~docv:"N" ~doc:"Transactions per level.")
  in
  let run levels txns jobs =
    set_jobs jobs;
    Table.print (Raid_sim.Concurrent.sweep_table (Raid_sim.Concurrent.sweep ~levels ~txns ()))
  in
  Cmd.v
    (Cmd.info "concurrency"
       ~doc:"Sweep concurrent transaction processing levels (conservative strict 2PL).")
    Term.(const run $ levels $ txns $ jobs)

(* `raid serve` — a live soak with the HTTP introspection API. *)
let serve_cmd =
  let port =
    Arg.(
      value & opt int 8080
      & info [ "port" ] ~docv:"PORT"
          ~doc:"Listen on 127.0.0.1:$(docv); $(b,0) picks an ephemeral port.")
  in
  let accel =
    Arg.(
      value & opt float 1.0
      & info [ "accel" ] ~docv:"X"
          ~doc:
            "Virtual milliseconds advanced per wall millisecond: $(b,1.0) is real time, \
             $(b,10) a 10x fast-forward, $(b,0) removes the throttle entirely (as fast as \
             possible).")
  in
  let sample =
    Arg.(
      value & opt float 100.0
      & info [ "sample" ] ~docv:"MS" ~doc:"Telemetry sampling interval in virtual milliseconds.")
  in
  let tenants =
    Arg.(
      value & opt int 1
      & info [ "tenants" ] ~docv:"N"
          ~doc:
            "Host $(docv) independent clusters in one soak; telemetry and /sites gain a \
             tenant label, fail/recover actions address tenant 0.")
  in
  let sites =
    Arg.(value & opt int 16 & info [ "sites" ] ~docv:"N" ~doc:"Number of database sites.")
  in
  let items =
    Arg.(value & opt int 500 & info [ "items" ] ~docv:"N" ~doc:"Database size in data items.")
  in
  let max_ops =
    Arg.(
      value & opt int 5
      & info [ "max-ops" ] ~docv:"N" ~doc:"Maximum operations per transaction.")
  in
  let write_prob =
    Arg.(
      value & opt float 0.5
      & info [ "write-prob" ] ~docv:"P" ~doc:"Probability that an operation is a write.")
  in
  let duration =
    Arg.(
      value & opt (some float) None
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Stop after this much wall-clock time (default: run until SIGINT).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let replication_factor =
    Arg.(
      value & opt int 0
      & info [ "replication-factor" ] ~docv:"K"
          ~doc:"Copies per item (k-holder placement); 0 keeps full replication.")
  in
  let sharding =
    Arg.(
      value & opt string "hash"
      & info [ "sharding" ] ~docv:"KIND"
          ~doc:"Placement for $(b,--replication-factor): $(b,hash), $(b,range) or $(b,modular).")
  in
  let zipf_theta =
    Arg.(
      value & opt (some float) None
      & info [ "zipf-theta" ] ~docv:"THETA"
          ~doc:"Zipfian item skew in (0,1); omitted: uniform item draw.")
  in
  let run port accel sample tenants sites items max_ops write_prob duration seed
      replication_factor sharding zipf_theta =
    if sample <= 0.0 then begin
      prerr_endline "raid serve: --sample must be positive";
      exit 2
    end;
    let replication =
      if replication_factor = 0 then Raid_core.Config.Full
      else
        match Raid_core.Placement.sharding_of_string sharding with
        | Error message ->
          Printf.eprintf "raid serve: %s\n" message;
          exit 2
        | Ok sharding ->
          Raid_core.Config.Partial
            (Raid_core.Placement.spec ~sharding ~factor:replication_factor ())
    in
    let config =
      Raid_sim.Soak.make_config ~tenants ~sites ~items ~max_ops ~write_prob ~replication
        ?zipf_theta ~accel ~sample:(Raid_net.Vtime.of_ms_f sample) ~seed ~port
        ?duration_s:duration ()
    in
    let soak = Raid_sim.Soak.create config in
    Sys.set_signal Sys.sigint
      (Sys.Signal_handle (fun _ -> Raid_sim.Soak.stop soak));
    Printf.printf "raid serve: http://127.0.0.1:%d (%s%d sites, accel %s%s); ctrl-C drains\n%!"
      (Raid_sim.Soak.port soak)
      (if tenants > 1 then Printf.sprintf "%d tenants x " tenants else "")
      sites
      (if accel <= 0.0 then "off" else Printf.sprintf "%gx" accel)
      (match duration with
      | None -> ""
      | Some d -> Printf.sprintf ", duration %gs" d);
    let s = Raid_sim.Soak.run soak in
    Printf.printf
      "raid serve: %d txns (%d committed, %d aborted), %.0f virtual ms in %.1f wall s, %d \
       engine events, %d http requests\n"
      s.Raid_sim.Soak.submitted s.Raid_sim.Soak.committed s.Raid_sim.Soak.aborted
      s.Raid_sim.Soak.virtual_ms s.Raid_sim.Soak.wall_s s.Raid_sim.Soak.events
      s.Raid_sim.Soak.requests
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a long-lived soak — virtual time paced against the wall clock — while an HTTP \
          API on 127.0.0.1 exposes the cluster live: /health, /metrics (Prometheus), /sites, \
          /txns, POST /sites/ID/fail|recover, POST /load.")
    Term.(
      const run $ port $ accel $ sample $ tenants $ sites $ items $ max_ops $ write_prob
      $ duration $ seed $ replication_factor $ sharding $ zipf_theta)

(* `raid repl` *)
(* `raid crashmatrix` — the systematic crash-injection matrix: kill a
   site at every distinct boundary of the 2PC/copier/fail-lock state
   machine, replay its WAL, resolve its in-doubt transactions and assert
   the DESIGN.md invariants (see Raid_sim.Crashmatrix). *)
let crashmatrix_cmd =
  let module Crashmatrix = Raid_sim.Crashmatrix in
  let list =
    Arg.(
      value & flag
      & info [ "list" ]
          ~doc:"List the crash-point taxonomy (one per line with a description) and exit.")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Reduced grid for CI: one seed, one cluster size, every crash point and both \
             placements.")
  in
  let csv =
    Arg.(
      value & flag
      & info [ "csv" ] ~doc:"Emit the per-cell matrix as CSV on stdout instead of a table.")
  in
  let comma_ints =
    let parse s =
      let parts = String.split_on_char ',' s in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | part :: rest -> (
          match int_of_string_opt (String.trim part) with
          | Some n -> go (n :: acc) rest
          | None -> Error (`Msg (Printf.sprintf "%S is not an integer" part)))
      in
      go [] parts
    in
    let print ppf ns =
      Format.pp_print_string ppf (String.concat "," (List.map string_of_int ns))
    in
    Arg.conv (parse, print)
  in
  let seeds =
    Arg.(
      value & opt (some comma_ints) None
      & info [ "seeds" ] ~docv:"S1,S2,.." ~doc:"Seeds to run each cell at (default 1,2,3).")
  in
  let sizes =
    Arg.(
      value & opt (some comma_ints) None
      & info [ "sizes" ] ~docv:"N1,N2,.." ~doc:"Cluster sizes to run (default 4,6).")
  in
  let points =
    Arg.(
      value & opt (some string) None
      & info [ "points" ] ~docv:"P1,P2,.."
          ~doc:"Comma-separated crash-point names to run (default: all; see $(b,--list)).")
  in
  let incidents =
    Arg.(
      value & opt (some string) None
      & info [ "incidents" ] ~docv:"FILE"
          ~doc:
            "Also write every recovery incident the cells recorded as CSV to $(docv), one row \
             per (site, episode) prefixed with the cell coordinates; byte-identical for any \
             $(b,-j).")
  in
  let run list smoke csv incidents seeds sizes points jobs =
    set_jobs jobs;
    if list then
      List.iter
        (fun point ->
          Printf.printf "%-24s %s\n"
            (Crashmatrix.point_name point)
            (Crashmatrix.point_description point))
        Crashmatrix.all_points
    else begin
      let points =
        match points with
        | None -> Crashmatrix.all_points
        | Some names ->
          List.map
            (fun name ->
              match Crashmatrix.point_of_name (String.trim name) with
              | Some p -> p
              | None ->
                Printf.eprintf "raid crashmatrix: unknown crash point %S (see --list)\n" name;
                exit 2)
            (String.split_on_char ',' names)
      in
      let seeds = match seeds with Some s -> s | None -> if smoke then [ 1 ] else [ 1; 2; 3 ] in
      let sizes = match sizes with Some s -> s | None -> if smoke then [ 4 ] else [ 4; 6 ] in
      let summary = Crashmatrix.run ~seeds ~sizes ~points () in
      if csv then print_string (Crashmatrix.to_csv summary)
      else begin
        Table.print (Crashmatrix.table summary);
        Printf.printf "%d cells, %d failed\n" summary.Crashmatrix.cells
          summary.Crashmatrix.failed_cells
      end;
      (match incidents with
      | None -> ()
      | Some path ->
        Raid_sim.Export.write_file ~path (Crashmatrix.incidents_csv summary);
        if not csv then Printf.printf "incident timelines written to %s\n" path);
      if not (Crashmatrix.ok summary) then exit 1
    end
  in
  Cmd.v
    (Cmd.info "crashmatrix"
       ~doc:
         "Crash a site at every distinct point of the 2PC/copier/fail-lock state machine, \
          replay its WAL, resolve in-doubt transactions and assert the protocol invariants; \
          non-zero exit on any violation.")
    Term.(const run $ list $ smoke $ csv $ incidents $ seeds $ sizes $ points $ jobs)

let repl_cmd =
  let sites = Arg.(value & opt int 4 & info [ "sites" ] ~docv:"N" ~doc:"Number of sites.") in
  let items = Arg.(value & opt int 50 & info [ "items" ] ~docv:"N" ~doc:"Data items.") in
  let max_ops =
    Arg.(value & opt int 5 & info [ "max-ops" ] ~docv:"N" ~doc:"Max operations per random txn.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let run sites items max_ops seed =
    Raid_sim.Console.run_stdin (Raid_sim.Console.create ~sites ~items ~max_ops ~seed ())
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive managing-site console (fail/recover sites, run txns).")
    Term.(const run $ sites $ items $ max_ops $ seed)

let multi_cmd =
  let tenants =
    Arg.(
      value & opt int 1000
      & info [ "tenants" ] ~docv:"N" ~doc:"Independent tenant clusters to run in this process.")
  in
  let sites =
    Arg.(value & opt int 8 & info [ "sites" ] ~docv:"N" ~doc:"Database sites per tenant.")
  in
  let items =
    Arg.(value & opt int 64 & info [ "items" ] ~docv:"N" ~doc:"Data items per tenant.")
  in
  let txns =
    Arg.(value & opt int 40 & info [ "txns" ] ~docv:"N" ~doc:"Transactions per tenant.")
  in
  let shards =
    Arg.(
      value & opt int 8
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "WAL shards (tenant mod $(docv)); part of the configuration, never derived from \
             $(b,-j), so results are identical at any job count.")
  in
  let batch =
    Arg.(
      value & opt int 8
      & info [ "batch" ] ~docv:"N"
          ~doc:"Transactions per tenant per round-robin scheduling quantum.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Base PRNG seed.") in
  let group_size =
    Arg.(
      value & opt int 64
      & info [ "group-size" ] ~docv:"N"
          ~doc:"Records per shared-WAL group commit (with the default shared WAL mode).")
  in
  let per_tenant_wal =
    Arg.(
      value & flag
      & info [ "per-tenant-wal" ]
          ~doc:
            "Give every tenant a private WAL flushed per record (group size 1) instead of the \
             shared group-committed shard log — the configuration the shared WAL exists to \
             beat.  Per-tenant protocol results are identical in both modes.")
  in
  let fail_every =
    Arg.(
      value & opt int 0
      & info [ "fail-every" ] ~docv:"K"
          ~doc:
            "Crash one site of every $(docv)-th tenant a third of the way through its stream \
             and recover it at two thirds (0 = no failures).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Quick CI run: cap tenants at 64 and transactions per tenant at 10.")
  in
  let csv =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:
            "Export per-tenant results and per-shard WAL stats as CSV — byte-identical at any \
             $(b,-j) and in both WAL modes (tenant rows).")
  in
  let run tenants sites items txns shards batch seed group_size per_tenant_wal fail_every smoke
      csv jobs =
    set_jobs jobs;
    let tenants = if smoke then min tenants 64 else tenants in
    let txns = if smoke then min txns 10 else txns in
    let wal_mode =
      if per_tenant_wal then Raid_multi.Per_tenant else Raid_multi.Shared { group_size }
    in
    let spec =
      try
        Raid_multi.spec ~tenants ~sites ~items ~txns ~shards ~batch ~seed ~wal_mode ~fail_every
          ()
      with Invalid_argument message ->
        Printf.eprintf "raid multi: %s\n" message;
        exit 2
    in
    let t0 = Unix.gettimeofday () in
    let result = Raid_multi.run spec in
    let wall_s = Unix.gettimeofday () -. t0 in
    Format.printf "%a@." Raid_multi.pp_summary result;
    let events = Raid_multi.total_events result in
    Printf.printf "host: %.2f s wall clock, %.0f events/sec aggregate\n" wall_s
      (if wall_s > 0.0 then float_of_int events /. wall_s else 0.0);
    match csv with
    | Some path ->
      Raid_sim.Export.write_file ~path (Raid_multi.csv result);
      Printf.printf "per-tenant results exported to %s\n" path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "multi"
       ~doc:
         "Run many independent tenant clusters in one process, sharing one group-committed WAL \
          per shard; reports per-tenant results and aggregate events/sec.")
    Term.(
      const run $ tenants $ sites $ items $ txns $ shards $ batch $ seed $ group_size
      $ per_tenant_wal $ fail_every $ smoke $ csv $ jobs)

let main_cmd =
  let doc =
    "replicated copy control during site failure and recovery (Bhargava-Noll-Sabo, ICDE 1988)"
  in
  Cmd.group
    (Cmd.info "raid" ~version:Raid_obs.Build_info.version ~doc)
    [
      exp_cmd;
      ablations_cmd;
      scaling_cmd;
      scenario_cmd;
      trace_cmd;
      metrics_cmd;
      explain_cmd;
      incidents_cmd;
      throughput_cmd;
      concurrency_cmd;
      multi_cmd;
      serve_cmd;
      crashmatrix_cmd;
      repl_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
