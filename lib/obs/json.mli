(** A minimal JSON value type with a printer and a parser.

    The exporters in {!Trace_export} only need to {e emit} JSON, but the
    golden tests and the CI determinism check also need to read exported
    traces back without an external dependency, so the parser lives here
    too.  Output is deterministic: object members are printed in the
    order given, numbers as OCaml [%d]/[%.17g]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Compact by default; [~indent:true] pretty-prints with two-space
    indentation (what the Chrome exporter uses so traces diff well). *)

val parse : string -> (t, string) result
(** Strict parser for the subset this library emits plus standard JSON
    escapes; numbers with a fraction or exponent become [Float], others
    [Int].  Non-finite floats round-trip through the Python-json
    spellings [NaN], [Infinity] and [-Infinity].  Errors carry a
    character offset. *)

val member : string -> t -> t option
(** [member key (Obj ...)] — [None] on a missing key or a non-object. *)

val to_list : t -> t list
(** Elements of an [Arr]; [] for any other constructor. *)
