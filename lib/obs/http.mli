(** A minimal HTTP/1.1 layer over the stdlib [Unix] module.

    Just enough protocol for the live cluster-introspection API
    ({!Raid_sim.Soak}): a pure incremental request parser, a tiny
    pattern router, and a single-threaded non-blocking server whose
    event loop is {e pumped by the owner} ({!poll}) — the soak driver
    calls it between simulation steps, so handlers run on the same
    domain as the engine and need no locking.  No keep-alive (every
    response carries [Connection: close]), no chunked encoding, no TLS;
    curl and Prometheus both speak this subset happily.

    The parser and router are pure functions of strings, tested without
    sockets; only {!serve}/{!poll}/{!close_server} touch the network. *)

type request = {
  meth : string;  (** verb as sent, e.g. ["GET"] *)
  path : string;  (** percent-decoded path, query stripped *)
  query : (string * string) list;  (** decoded key/value pairs, in order *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

type response = {
  status : int;
  content_type : string;
  extra_headers : (string * string) list;
  body : string;
}

val reason : int -> string
(** Reason phrase for the status codes this library emits;
    ["Unknown"] otherwise. *)

val text : ?status:int -> string -> response
(** [text/plain] response (default status 200). *)

val prom : string -> response
(** A Prometheus exposition body:
    [text/plain; version=0.0.4; charset=utf-8]. *)

val json : ?status:int -> Json.t -> response

val error : int -> string -> response
(** JSON [{"error": message, "status": code}] with the given status. *)

(** {2 Parsing} *)

type parse =
  | Incomplete  (** valid so far; read more bytes *)
  | Bad of int * string  (** reject with this status (400/413/414/431/501/505) *)
  | Complete of request * int  (** parsed request and bytes consumed *)

val parse_request : ?max_line:int -> ?max_head:int -> ?max_body:int -> string -> parse
(** Parse the (possibly still partial) bytes received so far.
    [max_line] (default 4096) bounds the request line → [Bad 414];
    [max_head] (default 16384) bounds the whole header section →
    [Bad 431]; [max_body] (default 1 MiB) bounds [Content-Length] →
    [Bad 413].  A [Transfer-Encoding] request is [Bad 501]; a non-1.x
    version [Bad 505]; anything malformed [Bad 400]. *)

val percent_decode : string -> string
(** Decode [%XX] escapes and [+] as space (malformed escapes are kept
    verbatim). *)

(** {2 Routing} *)

type handler = params:(string * string) list -> request -> response

type route

val route : meth:string -> string -> handler -> route
(** [route ~meth:"POST" "/sites/:id/fail" handler]: the pattern is
    matched segment-wise, [:name] segments capture into [params]. *)

val dispatch : route list -> request -> response
(** First matching route wins.  A path that matches some route only
    under a different method yields [405] with an [Allow] header; an
    unmatched path [404].  A handler that raises yields [500]. *)

(** {2 Server} *)

type server

val serve : ?backlog:int -> port:int -> (request -> response) -> server
(** Bind [127.0.0.1:port] ([port = 0] picks an ephemeral port — read it
    back with {!port}), listen, and return without blocking.  SIGPIPE is
    set to ignore (a dropped client must not kill the process).
    @raise Unix.Unix_error e.g. when the port is taken. *)

val port : server -> int

val poll : ?timeout:float -> server -> int
(** Run one pump iteration: wait up to [timeout] seconds (default 0)
    for sockets to become ready, then accept / read / respond until no
    socket is ready, and return the number of requests answered in this
    call.  With nothing ready, [poll] is the owner's sleep. *)

val requests_served : server -> int
(** Total requests answered since {!serve}. *)

val close_server : server -> unit
(** Close the listening socket and every open connection (idempotent). *)
