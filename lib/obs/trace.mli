(** Typed protocol trace: events, sinks and the ring-buffer collector.

    This is the observability layer over the replicated-copy-control
    protocol.  Sites emit {!event}s through a {!sink} at the points the
    paper's three experiments time — transaction begin/read/write/
    commit/abort, the 2PC prepare/vote/decide steps, fail-lock
    transitions, session-vector changes, and control/copier
    transactions.  A {!t} collects entries in a bounded ring buffer
    stamped with virtual time; {!Trace_export} turns a collection into
    JSONL or Chrome trace-event JSON.

    Cost discipline: when tracing is off no sink exists, so the emitting
    code's only overhead is a [match] on an option that is [None] — no
    event value is ever constructed.  Each cluster owns its own
    collector (nothing global), so traced runs stay deterministic under
    {!Raid_par.Pool} fan-out. *)

type phase = Copy | Prepare | Commit
(** Coordinator-side phases of a transaction: the copier round (when one
    is needed), 2PC phase 1 and 2PC phase 2. *)

type control_kind = Recovery | Failure_announce | Backup | Clear_special
(** The paper's control transaction types 1-3 plus the special
    fail-lock-clear transaction. *)

type recovery_step =
  | Recover_command  (** the recover command reached the site *)
  | Wal_replayed of int  (** local WAL replay finished; payload = entries *)
  | Announced of int  (** recovery announced to the cluster; payload = session *)
  | State_installed  (** cluster state (vector/fail-locks) installed; up *)
      (** Boundary markers of control-transaction-1 recovery, emitted by
          the recovering site in this order.  {!Incident} turns them into
          per-episode timelines. *)

type event =
  | Txn_begin of { txn : int; reads : int; writes : int }
  | Txn_read of { txn : int; item : int; remote : bool }
      (** [remote] marks a partial-replication fetch-only read. *)
  | Txn_write of { txn : int; item : int }
  | Txn_commit of { txn : int }
  | Txn_abort of { txn : int; reason : string }
  | Phase_enter of { txn : int; phase : phase }
  | Prepare_sent of { txn : int; participants : int }
  | Vote of { txn : int; participant : int }
      (** Emitted by the participant when it acknowledges phase 1. *)
  | Decide of { txn : int; commit : bool }
  | Faillock_set of { item : int; for_site : int; txn : int option }
      (** [txn] is the transaction (or negative copier round) whose
          commit/install caused the transition, when one is in scope. *)
  | Faillock_cleared of { item : int; for_site : int; txn : int option }
  | Session_change of { about : int; session : int; state : string }
      (** The emitting site's vector entry for site [about] changed. *)
  | Site_failed  (** The emitting site just crashed (cluster-level mark). *)
  | Recovery_step of { step : recovery_step }
  | Control of { kind : control_kind; detail : string }
  | Copier_request of { txn : int; source : int; items : int }
      (** [txn] is negative for a batch (two-step recovery) round. *)
  | Copier_reply of { txn : int; source : int; items : int }

type entry = { at : Raid_net.Vtime.t; site : int; event : event }
(** One emitted event: virtual time and emitting site. *)

type sink = { emit : at:Raid_net.Vtime.t -> site:int -> event -> unit }
(** Where emitting code writes.  A record of one closure rather than a
    first-class module: cheap to store, cheap to test. *)

type t
(** A bounded collector.  When more than [capacity] events are emitted
    the oldest are dropped (and counted). *)

val create : ?capacity:int -> unit -> t
(** Default capacity 65536 entries.
    @raise Invalid_argument on a non-positive capacity. *)

val sink : t -> sink
(** A sink appending into this collector. *)

val tee : sink list -> sink
(** A sink fanning every event out to each of [sinks], in list order.
    Lets a ring collector and a streaming assembler (e.g.
    {!Incident.recorder_sink}) observe the same run. *)

val entries : t -> entry list
(** Retained entries, oldest first (emission order, which is
    chronological in virtual time per site). *)

val emitted : t -> int
(** Total events emitted, including dropped ones. *)

val dropped : t -> int
(** Events lost to the ring bound: [max 0 (emitted - capacity)]. *)

val capacity : t -> int
(** The bound the collector was created with. *)

val clear : t -> unit

(** {2 Names (shared by exporters and reports)} *)

val phase_name : phase -> string
val control_kind_name : control_kind -> string

val recovery_step_name : recovery_step -> string
(** Stable snake_case tag ("recover_command", "wal_replayed", ...). *)

val kind : event -> string
(** Stable snake_case tag of the event constructor ("txn_begin", ...). *)

val counts : t -> (string * int) list
(** Retained-entry histogram by {!kind}, sorted by tag. *)

val pp_event : Format.formatter -> event -> unit
val pp_entry : Format.formatter -> entry -> unit
