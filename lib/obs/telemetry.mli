(** Typed metrics registry sampled at a virtual-time interval.

    The paper's experiments are measurements — fail-locks set and
    cleared, copier transactions requested, recovery-time breakdowns —
    but {!Raid_core.Metrics} only exposes end-of-run aggregates and
    {!Trace} raw events.  This registry is the middle layer: named
    metrics (counters, gauges, histograms, keyed by name plus static
    labels such as [site]/[kind]) whose values are sampled into
    in-memory {!Series} at a configurable {e virtual}-time interval.
    Exports: Prometheus text exposition ({!Prom}) and long-form CSV
    ({!to_csv}).

    Cost discipline (the {!Trace.sink} trick): nothing here is global
    and nothing is wired into the simulator by default.  A cluster
    created without a registry pays one [None] branch per engine event;
    with a registry, counters are one float store and sampling happens
    only when the engine's clock crosses a multiple of the interval.

    Determinism: samples are stamped with the {e due} virtual time (the
    crossed multiple of the interval), never the host clock, and
    exports emit metrics in sorted (name, labels) order — so a sampled
    run renders byte-identically across hosts and [-j] domain counts. *)

type t

type labels = (string * string) list
(** Static labels, e.g. [("site", "3")].  Stored sorted by key; keys
    must be unique within one metric. *)

type kind = Counter | Gauge | Histogram

type counter
(** An incrementing total owned by the instrumented code: updating is a
    single mutable float store. *)

type histogram
(** Fixed cumulative buckets plus running sum and count. *)

val create : ?interval:Raid_net.Vtime.t -> unit -> t
(** A fresh registry.  [interval] (default 100 virtual ms) is the
    sampling period: {!maybe_sample} records one point per metric at
    every crossed multiple of it.
    @raise Invalid_argument on a non-positive interval. *)

val interval : t -> Raid_net.Vtime.t

(** {2 Registration}

    All registration functions raise [Invalid_argument] on a duplicate
    (name, labels) pair, an ill-formed metric name (expected
    [[a-zA-Z_][a-zA-Z0-9_]*]), or duplicate label keys. *)

val counter : t -> ?labels:labels -> ?help:string -> string -> counter
(** An owned counter starting at 0; bump it with {!incr}/{!add}. *)

val polled_counter : t -> ?labels:labels -> ?help:string -> string -> (unit -> float) -> unit
(** A counter whose running total already lives elsewhere (e.g. a
    {!Raid_core.Metrics} field); the closure is polled at each sample
    and at export.  It must be monotone for the Prometheus [counter]
    type to be truthful — not checked. *)

val gauge : t -> ?labels:labels -> ?help:string -> string -> (unit -> float) -> unit
(** A polled instantaneous value (table sizes, queue depths). *)

val histogram : t -> ?labels:labels -> ?help:string -> ?buckets:float list -> string -> histogram
(** Cumulative-bucket histogram; [buckets] are upper bounds in strictly
    increasing order (default powers-of-two milliseconds 1..4096), with
    an implicit [+Inf] bucket appended.  Its sampled series records the
    observation count over time.
    @raise Invalid_argument on an empty or non-increasing bucket list. *)

(** {2 Updates (hot path)} *)

val incr : counter -> unit
val add : counter -> float -> unit
val counter_value : counter -> float
val observe : histogram -> float -> unit

(** {2 Sampling} *)

val maybe_sample : t -> at:Raid_net.Vtime.t -> unit
(** Record one point per metric for every multiple of the interval in
    ((last sampled due time), [at]]; each point is stamped with the due
    time, not [at].  Cheap when no boundary was crossed (one comparison). *)

val sample_now : t -> at:Raid_net.Vtime.t -> unit
(** Unconditionally record a final point stamped [at] — call once at
    the end of a run so the series cover the tail.  No-op if the last
    sample is already stamped [at]. *)

val samples_taken : t -> int
(** Sampling instants so far (including a final {!sample_now}). *)

(** {2 Read side / export} *)

type view = {
  v_name : string;
  v_labels : labels;  (** sorted by key *)
  v_help : string;
  v_kind : kind;
  v_value : float;
      (** counters: running total; gauges: polled now; histograms:
          observation count *)
  v_buckets : (float * int) list;
      (** histograms only: (upper bound, cumulative count), ending with
          the [+Inf] ([infinity]) bucket; empty otherwise *)
  v_sum : float;  (** histograms only: sum of observations *)
  v_series : Series.t;
}

val views : t -> view list
(** Every registered metric, sorted by (name, rendered labels) — the
    deterministic export order. *)

val find : t -> ?labels:labels -> string -> view option

val to_csv : t -> string
(** Long-form CSV, one row per sampled point:
    [metric,labels,t_ms,value] with labels rendered as
    [key=value;key=value] (empty for an unlabelled metric) and times in
    milliseconds with microsecond precision. *)

val labels_string : labels -> string
(** [key=value;key=value], sorted by key; [""] when empty. *)

val float_repr : float -> string
(** Numeric rendering shared by the CSV and Prometheus exports:
    integers without a fraction part, other finite floats with 17
    significant digits (round-trip exact), and ["NaN"]/["+Inf"]/["-Inf"]
    for non-finite values. *)
