(** Build provenance as a metric.

    BENCH_results.json already stamps every benchmark run with the git
    SHA that produced it; the live-operations surface and [raid metrics]
    export the same provenance as a Prometheus [raid_build_info] gauge —
    the conventional constant-1 metric whose labels carry the version
    and revision, so a scrape can always answer "which build is this?".

    The revision is resolved once per process (a [git rev-parse] child,
    memoised); outside a git checkout it is ["unknown"]. *)

val version : string
(** The release version, single source of truth for the CLI's
    [--version] too. *)

val revision : unit -> string
(** Full git SHA of HEAD, or ["unknown"] when git or the checkout is
    unavailable. *)

val register : Telemetry.t -> unit
(** Register [raid_build_info] (constant gauge 1, labels [revision] and
    [version]) into the registry, so it rides along in every
    {!Prom.render} of it. *)

val prom_block : unit -> string
(** The same metric as a standalone Prometheus text block
    ([# HELP]/[# TYPE] plus the sample line) — appended to exports whose
    registry content must stay byte-stable under golden checks. *)
