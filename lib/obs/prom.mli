(** Prometheus text exposition (version 0.0.4) of a {!Telemetry}
    registry's current values.

    Rendering is deterministic: metrics are grouped by name in sorted
    order, label sets sorted within a group, and numbers formatted with
    {!Telemetry.float_repr} — so the same run renders byte-identically
    everywhere (the CI [-j 1] vs [-j 4] check and the committed golden
    snapshot rely on this).  Gauges are polled at render time; render
    after the run is quiescent. *)

val render : Telemetry.t -> string
(** [# HELP]/[# TYPE] header per metric name (HELP omitted when empty),
    then one sample line per label set.  Histograms expand to
    [_bucket{le="..."}] lines (cumulative, ending at [le="+Inf"]) plus
    [_sum] and [_count]. *)
