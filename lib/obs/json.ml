type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape buffer s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s

(* Non-finite floats use the Python-json spellings (strict JSON has no
   representation for them at all, and silently emitting "nan" produces
   a document nothing can read back). *)
let float_repr f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "Infinity"
  else if f = Float.neg_infinity then "-Infinity"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string ?(indent = false) t =
  let buffer = Buffer.create 1024 in
  let pad depth = if indent then Buffer.add_string buffer (String.make (2 * depth) ' ') in
  let newline () = if indent then Buffer.add_char buffer '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string buffer "null"
    | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
    | Int n -> Buffer.add_string buffer (string_of_int n)
    | Float f -> Buffer.add_string buffer (float_repr f)
    | Str s ->
      Buffer.add_char buffer '"';
      escape buffer s;
      Buffer.add_char buffer '"'
    | Arr [] -> Buffer.add_string buffer "[]"
    | Arr items ->
      Buffer.add_char buffer '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buffer ',';
            newline ()
          end;
          pad (depth + 1);
          emit (depth + 1) item)
        items;
      newline ();
      pad depth;
      Buffer.add_char buffer ']'
    | Obj [] -> Buffer.add_string buffer "{}"
    | Obj members ->
      Buffer.add_char buffer '{';
      newline ();
      List.iteri
        (fun i (key, value) ->
          if i > 0 then begin
            Buffer.add_char buffer ',';
            newline ()
          end;
          pad (depth + 1);
          Buffer.add_char buffer '"';
          escape buffer key;
          Buffer.add_string buffer (if indent then "\": " else "\":");
          emit (depth + 1) value)
        members;
      newline ();
      pad depth;
      Buffer.add_char buffer '}'
  in
  emit 0 t;
  Buffer.contents buffer

exception Parse_error of int * string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail message = raise (Parse_error (!pos, message)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some found when found = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub input !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buffer = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match input.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match input.[!pos] with
             | '"' -> Buffer.add_char buffer '"'; advance ()
             | '\\' -> Buffer.add_char buffer '\\'; advance ()
             | '/' -> Buffer.add_char buffer '/'; advance ()
             | 'n' -> Buffer.add_char buffer '\n'; advance ()
             | 'r' -> Buffer.add_char buffer '\r'; advance ()
             | 't' -> Buffer.add_char buffer '\t'; advance ()
             | 'b' -> Buffer.add_char buffer '\b'; advance ()
             | 'f' -> Buffer.add_char buffer '\012'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub input !pos 4 in
               let code =
                 match int_of_string_opt ("0x" ^ hex) with
                 | Some c -> c
                 | None -> fail "bad \\u escape"
               in
               pos := !pos + 4;
               (* Re-encode the code point as UTF-8 (surrogate pairs are
                  not needed for anything this library emits). *)
               if code < 0x80 then Buffer.add_char buffer (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buffer (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buffer (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
               end
             | c -> fail (Printf.sprintf "bad escape %C" c));
          loop ()
        | c ->
          Buffer.add_char buffer c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buffer
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match input.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '+' | '-' ->
        is_float := true;
        true
      | _ -> false
    do
      advance ()
    done;
    let text = String.sub input start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, value) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, value) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (value :: acc)
          | Some ']' ->
            advance ();
            List.rev (value :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elements [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some 'N' -> literal "NaN" (Float Float.nan)
    | Some 'I' -> literal "Infinity" (Float Float.infinity)
    | Some '-' when !pos + 1 < n && input.[!pos + 1] = 'I' ->
      advance ();
      literal "Infinity" (Float Float.neg_infinity)
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let value = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    value
  with
  | value -> Ok value
  | exception Parse_error (at, message) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" at message)

let member key = function
  | Obj members -> List.assoc_opt key members
  | _ -> None

let to_list = function Arr items -> items | _ -> []
