let version = "1.8.0"

(* One child process per OCaml process, not per export. *)
let resolved_revision =
  lazy
    (try
       let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
       let line = try String.trim (input_line ic) with End_of_file -> "" in
       match Unix.close_process_in ic with
       | Unix.WEXITED 0 when line <> "" -> line
       | _ -> "unknown"
     with _ -> "unknown")

let revision () = Lazy.force resolved_revision

let help = "Build provenance: constant 1 with version and git revision labels"

let labels () = [ ("revision", revision ()); ("version", version) ]

let register registry =
  Telemetry.gauge registry "raid_build_info" ~labels:(labels ()) ~help (fun () -> 1.0)

let prom_block () =
  (* Render through a throwaway registry so the escaping and layout are
     exactly Prom's. *)
  let registry = Telemetry.create () in
  register registry;
  Prom.render registry
