module Vtime = Raid_net.Vtime

type phase = Copy | Prepare | Commit

type control_kind = Recovery | Failure_announce | Backup | Clear_special

type recovery_step =
  | Recover_command
  | Wal_replayed of int
  | Announced of int
  | State_installed

type event =
  | Txn_begin of { txn : int; reads : int; writes : int }
  | Txn_read of { txn : int; item : int; remote : bool }
  | Txn_write of { txn : int; item : int }
  | Txn_commit of { txn : int }
  | Txn_abort of { txn : int; reason : string }
  | Phase_enter of { txn : int; phase : phase }
  | Prepare_sent of { txn : int; participants : int }
  | Vote of { txn : int; participant : int }
  | Decide of { txn : int; commit : bool }
  | Faillock_set of { item : int; for_site : int; txn : int option }
  | Faillock_cleared of { item : int; for_site : int; txn : int option }
  | Session_change of { about : int; session : int; state : string }
  | Site_failed
  | Recovery_step of { step : recovery_step }
  | Control of { kind : control_kind; detail : string }
  | Copier_request of { txn : int; source : int; items : int }
  | Copier_reply of { txn : int; source : int; items : int }

type entry = { at : Vtime.t; site : int; event : event }

type sink = { emit : at:Vtime.t -> site:int -> event -> unit }

type t = {
  capacity : int;
  buffer : entry option array;
  mutable emitted : int;  (* total, including overwritten slots *)
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; buffer = Array.make capacity None; emitted = 0 }

let sink t =
  {
    emit =
      (fun ~at ~site event ->
        t.buffer.(t.emitted mod t.capacity) <- Some { at; site; event };
        t.emitted <- t.emitted + 1);
  }

let tee sinks =
  match sinks with
  | [ sink ] -> sink
  | _ ->
    { emit = (fun ~at ~site event -> List.iter (fun s -> s.emit ~at ~site event) sinks) }

let emitted t = t.emitted
let dropped t = max 0 (t.emitted - t.capacity)
let capacity t = t.capacity

let entries t =
  let count = min t.emitted t.capacity in
  let first = if t.emitted <= t.capacity then 0 else t.emitted mod t.capacity in
  List.init count (fun i ->
      match t.buffer.((first + i) mod t.capacity) with
      | Some entry -> entry
      | None -> assert false)

let clear t =
  Array.fill t.buffer 0 t.capacity None;
  t.emitted <- 0

let phase_name = function Copy -> "copy" | Prepare -> "prepare" | Commit -> "commit"

let recovery_step_name = function
  | Recover_command -> "recover_command"
  | Wal_replayed _ -> "wal_replayed"
  | Announced _ -> "announced"
  | State_installed -> "state_installed"

let control_kind_name = function
  | Recovery -> "control1-recovery"
  | Failure_announce -> "control2-failure"
  | Backup -> "control3-backup"
  | Clear_special -> "clear-special"

let kind = function
  | Txn_begin _ -> "txn_begin"
  | Txn_read _ -> "txn_read"
  | Txn_write _ -> "txn_write"
  | Txn_commit _ -> "txn_commit"
  | Txn_abort _ -> "txn_abort"
  | Phase_enter _ -> "phase_enter"
  | Prepare_sent _ -> "prepare_sent"
  | Vote _ -> "vote"
  | Decide _ -> "decide"
  | Faillock_set _ -> "faillock_set"
  | Faillock_cleared _ -> "faillock_cleared"
  | Session_change _ -> "session_change"
  | Site_failed -> "site_failed"
  | Recovery_step _ -> "recovery_step"
  | Control _ -> "control"
  | Copier_request _ -> "copier_request"
  | Copier_reply _ -> "copier_reply"

let counts t =
  let table = Hashtbl.create 16 in
  List.iter
    (fun { event; _ } ->
      let tag = kind event in
      Hashtbl.replace table tag (1 + Option.value ~default:0 (Hashtbl.find_opt table tag)))
    (entries t);
  List.sort compare (Hashtbl.fold (fun tag count acc -> (tag, count) :: acc) table [])

let pp_event ppf = function
  | Txn_begin { txn; reads; writes } ->
    Format.fprintf ppf "txn_begin(T%d,%dr/%dw)" txn reads writes
  | Txn_read { txn; item; remote } ->
    Format.fprintf ppf "txn_read(T%d,item %d%s)" txn item (if remote then ",remote" else "")
  | Txn_write { txn; item } -> Format.fprintf ppf "txn_write(T%d,item %d)" txn item
  | Txn_commit { txn } -> Format.fprintf ppf "txn_commit(T%d)" txn
  | Txn_abort { txn; reason } -> Format.fprintf ppf "txn_abort(T%d,%s)" txn reason
  | Phase_enter { txn; phase } -> Format.fprintf ppf "phase_enter(T%d,%s)" txn (phase_name phase)
  | Prepare_sent { txn; participants } ->
    Format.fprintf ppf "prepare_sent(T%d,%d participants)" txn participants
  | Vote { txn; participant } -> Format.fprintf ppf "vote(T%d,site %d)" txn participant
  | Decide { txn; commit } ->
    Format.fprintf ppf "decide(T%d,%s)" txn (if commit then "commit" else "abort")
  | Faillock_set { item; for_site; txn } ->
    Format.fprintf ppf "faillock_set(item %d,site %d%s)" item for_site
      (match txn with None -> "" | Some id -> Printf.sprintf ",T%d" id)
  | Faillock_cleared { item; for_site; txn } ->
    Format.fprintf ppf "faillock_cleared(item %d,site %d%s)" item for_site
      (match txn with None -> "" | Some id -> Printf.sprintf ",T%d" id)
  | Session_change { about; session; state } ->
    Format.fprintf ppf "session_change(site %d,session %d,%s)" about session state
  | Site_failed -> Format.fprintf ppf "site_failed"
  | Recovery_step { step } -> (
    match step with
    | Recover_command -> Format.fprintf ppf "recovery_step(recover_command)"
    | Wal_replayed entries -> Format.fprintf ppf "recovery_step(wal_replayed,%d entries)" entries
    | Announced session -> Format.fprintf ppf "recovery_step(announced,session %d)" session
    | State_installed -> Format.fprintf ppf "recovery_step(state_installed)")
  | Control { kind; detail } ->
    Format.fprintf ppf "control(%s%s%s)" (control_kind_name kind)
      (if detail = "" then "" else ",")
      detail
  | Copier_request { txn; source; items } ->
    Format.fprintf ppf "copier_request(T%d,source %d,%d items)" txn source items
  | Copier_reply { txn; source; items } ->
    Format.fprintf ppf "copier_reply(T%d,source %d,%d items)" txn source items

let pp_entry ppf { at; site; event } =
  Format.fprintf ppf "%9.2f ms site %d %a" (Vtime.to_ms at) site pp_event event
