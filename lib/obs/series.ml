module Vtime = Raid_net.Vtime

type t = {
  mutable times : int array;  (* Vtime.t is an int count of microseconds *)
  mutable values : float array;
  mutable len : int;
}

let create () = { times = [||]; values = [||]; len = 0 }

let grow t =
  let capacity = max 16 (2 * Array.length t.times) in
  let times = Array.make capacity 0 in
  let values = Array.make capacity 0.0 in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.values 0 values 0 t.len;
  t.times <- times;
  t.values <- values

let push t ~at value =
  if t.len = Array.length t.times then grow t;
  t.times.(t.len) <- at;
  t.values.(t.len) <- value;
  t.len <- t.len + 1

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Series.get: index out of range";
  (t.times.(i), t.values.(i))

let last t = if t.len = 0 then None else Some (t.times.(t.len - 1), t.values.(t.len - 1))

let iter t f =
  for i = 0 to t.len - 1 do
    f ~at:t.times.(i) t.values.(i)
  done

let to_list t = List.init t.len (fun i -> (t.times.(i), t.values.(i)))
