(** Causal span trees per transaction, assembled from the typed trace.

    A committed transaction's life is a tree: the root span covers
    begin → commit on the coordinator, its children are the phase
    windows ({e begin} — local reads, lock checks, setup — then the
    {e copy}, {e prepare} and {e commit} phases the coordinator
    entered), and below those sit the cross-site pairs: one {e fetch}
    span per copier request → reply (attributed to the source site) and
    one {e vote} span per prepare → vote (attributed to the
    participant).

    Phase windows tile the root span exactly — each runs to the next
    phase's start, the last to the terminal event — so the
    {!critical_path} step durations always sum to the transaction's
    end-to-end latency, the same number the [raid_txn_latency_ms]
    histogram observed for this transaction.

    Assembly is a pure fold over collected entries (deterministic for
    any [-j]).  The ring collector only ever drops the {e oldest}
    prefix of the stream, so a tree whose [Txn_begin] survived is
    structurally complete once its terminal arrives; trees missing
    either end carry [complete = false] and {!render} says so rather
    than printing a silently truncated timeline. *)

type span = {
  name : string;
  site : int;  (** the site the time is attributed to *)
  started : Raid_net.Vtime.t;
  finished : Raid_net.Vtime.t;
  children : span list;
}

type tree = {
  txn : int;
  coordinator : int;
  committed : bool;
  reason : string option;  (** abort reason, when aborted *)
  reads : int;
  writes : int;
  complete : bool;  (** begin and terminal both observed *)
  root : span;
}

type step = {
  step_name : string;
  step_site : int;  (** the site this step's duration is blamed on *)
  step_from : Raid_net.Vtime.t;
  step_until : Raid_net.Vtime.t;
  step_note : string;  (** human attribution, e.g. "last vote: site 3" *)
}

val latency : tree -> Raid_net.Vtime.t
(** Root span duration = the transaction's measured latency. *)

val assemble : Trace.entry list -> tree list
(** One tree per transaction id seen (copier batch rounds — negative
    ids — are excluded), sorted by id. *)

val find : tree list -> int -> tree option

val slowest : tree list -> tree option
(** The longest complete committed transaction (falling back to any
    tree when none committed) — the default subject of [raid explain]. *)

val critical_path : tree -> step list
(** The phase windows in order, each blamed on its slowest child: the
    copy phase on the slowest fetch's source, the prepare phase on the
    last vote's participant, begin/commit on the coordinator.  Step
    durations are contiguous and sum exactly to {!latency}. *)

val json : tree -> Json.t
(** Nested span tree plus the critical path (the [raid serve] per-txn
    lookup body). *)

val render : tree -> string
(** Multi-line human rendering: header, indented span tree, critical
    path with a total line. *)
