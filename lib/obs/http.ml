type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  content_type : string;
  extra_headers : (string * string) list;
  body : string;
}

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 413 -> "Content Too Large"
  | 414 -> "URI Too Long"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | 505 -> "HTTP Version Not Supported"
  | _ -> "Unknown"

let text ?(status = 200) body =
  { status; content_type = "text/plain; charset=utf-8"; extra_headers = []; body }

let prom body =
  { status = 200; content_type = "text/plain; version=0.0.4; charset=utf-8";
    extra_headers = []; body }

let json ?(status = 200) value =
  { status; content_type = "application/json"; extra_headers = [];
    body = Json.to_string value ^ "\n" }

let error status message =
  json ~status (Json.Obj [ ("error", Json.Str message); ("status", Json.Int status) ])

(* {2 Parsing} *)

type parse =
  | Incomplete
  | Bad of int * string
  | Complete of request * int

let percent_decode s =
  let n = String.length s in
  let buffer = Buffer.create n in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '+' -> Buffer.add_char buffer ' '
    | '%' when !i + 2 < n -> (
      match (hex s.[!i + 1], hex s.[!i + 2]) with
      | Some hi, Some lo ->
        Buffer.add_char buffer (Char.chr ((hi lsl 4) lor lo));
        i := !i + 2
      | _ -> Buffer.add_char buffer '%')
    | c -> Buffer.add_char buffer c);
    incr i
  done;
  Buffer.contents buffer

let split_query target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some at ->
    let raw = String.sub target (at + 1) (String.length target - at - 1) in
    let pairs =
      List.filter_map
        (fun piece ->
          if piece = "" then None
          else
            match String.index_opt piece '=' with
            | None -> Some (percent_decode piece, "")
            | Some eq ->
              Some
                ( percent_decode (String.sub piece 0 eq),
                  percent_decode (String.sub piece (eq + 1) (String.length piece - eq - 1)) ))
        (String.split_on_char '&' raw)
    in
    (String.sub target 0 at, pairs)

(* Find the end of the header section; accepts CRLF (the only framing we
   send) and tolerates bare LF from hand-typed clients. *)
let find_head_end data =
  let n = String.length data in
  let rec scan i =
    if i + 1 >= n then None
    else if data.[i] = '\n' && data.[i + 1] = '\n' then Some (i + 2)
    else if i + 3 < n && data.[i] = '\r' && String.sub data i 4 = "\r\n\r\n" then Some (i + 4)
    else scan (i + 1)
  in
  scan 0

let header_lines head =
  String.split_on_char '\n' head
  |> List.map (fun line ->
         let n = String.length line in
         if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line)
  |> List.filter (fun line -> line <> "")

let parse_request ?(max_line = 4096) ?(max_head = 16384) ?(max_body = 1 lsl 20) data =
  let n = String.length data in
  match find_head_end data with
  | None ->
    (* No terminator yet: reject early when the partial data already
       blows a bound, so a hostile peer cannot make us buffer forever. *)
    let first_line_len =
      match String.index_opt data '\n' with Some i -> i | None -> n
    in
    if first_line_len > max_line then Bad (414, "request line too long")
    else if n > max_head then Bad (431, "header section too large")
    else Incomplete
  | Some head_len ->
    if head_len > max_head then Bad (431, "header section too large")
    else begin
      match header_lines (String.sub data 0 head_len) with
      | [] -> Bad (400, "empty request")
      | request_line :: header_fields ->
        if String.length request_line > max_line then Bad (414, "request line too long")
        else begin
          match String.split_on_char ' ' request_line with
          | [ meth; target; version ]
            when meth <> "" && target <> "" ->
            if not (String.length version >= 7 && String.sub version 0 7 = "HTTP/1.") then
              Bad (505, "unsupported protocol version")
            else begin
              let headers = ref [] in
              let bad = ref None in
              List.iter
                (fun field ->
                  match String.index_opt field ':' with
                  | None | Some 0 -> if !bad = None then bad := Some "malformed header field"
                  | Some colon ->
                    let name = String.lowercase_ascii (String.sub field 0 colon) in
                    let value =
                      String.trim (String.sub field (colon + 1) (String.length field - colon - 1))
                    in
                    headers := (name, value) :: !headers)
                header_fields;
              match !bad with
              | Some message -> Bad (400, message)
              | None ->
                let headers = List.rev !headers in
                if List.mem_assoc "transfer-encoding" headers then
                  Bad (501, "transfer encodings not supported")
                else begin
                  let content_length =
                    match List.assoc_opt "content-length" headers with
                    | None -> Ok 0
                    | Some raw -> (
                      match int_of_string_opt (String.trim raw) with
                      | Some len when len >= 0 -> Ok len
                      | _ -> Error "malformed content-length")
                  in
                  match content_length with
                  | Error message -> Bad (400, message)
                  | Ok len when len > max_body -> Bad (413, "request body too large")
                  | Ok len ->
                    if n - head_len < len then Incomplete
                    else begin
                      let path, query = split_query target in
                      Complete
                        ( {
                            meth;
                            path = percent_decode path;
                            query;
                            headers;
                            body = String.sub data head_len len;
                          },
                          head_len + len )
                    end
                end
            end
          | _ -> Bad (400, "malformed request line")
        end
    end

(* {2 Routing} *)

type handler = params:(string * string) list -> request -> response

type route = { r_meth : string; r_segments : string list; r_handler : handler }

let segments path =
  List.filter (fun s -> s <> "") (String.split_on_char '/' path)

let route ~meth pattern handler =
  { r_meth = String.uppercase_ascii meth; r_segments = segments pattern; r_handler = handler }

(* [Some params] when the pattern's segments match the path's. *)
let match_segments pattern path =
  let rec walk acc = function
    | [], [] -> Some (List.rev acc)
    | p :: ps, s :: ss when String.length p > 0 && p.[0] = ':' ->
      walk ((String.sub p 1 (String.length p - 1), s) :: acc) (ps, ss)
    | p :: ps, s :: ss when p = s -> walk acc (ps, ss)
    | _ -> None
  in
  walk [] (pattern, path)

let dispatch routes request =
  let path = segments request.path in
  let meth = String.uppercase_ascii request.meth in
  let matching =
    List.filter_map
      (fun r -> Option.map (fun params -> (r, params)) (match_segments r.r_segments path))
      routes
  in
  match List.find_opt (fun (r, _) -> r.r_meth = meth) matching with
  | Some (r, params) -> (
    try r.r_handler ~params request
    with exn -> error 500 (Printexc.to_string exn))
  | None -> (
    match matching with
    | [] -> error 404 (Printf.sprintf "no route for %s" request.path)
    | allowed ->
      let methods =
        List.sort_uniq String.compare (List.map (fun (r, _) -> r.r_meth) allowed)
      in
      {
        (error 405 (Printf.sprintf "%s not allowed on %s" meth request.path)) with
        extra_headers = [ ("Allow", String.concat ", " methods) ];
      })

(* {2 Server} *)

type conn = { c_fd : Unix.file_descr; c_buf : Buffer.t }

type server = {
  listen_fd : Unix.file_descr;
  s_port : int;
  s_handler : request -> response;
  mutable conns : conn list;
  mutable served : int;
  mutable closed : bool;
}

let render_response (r : response) =
  let buffer = Buffer.create (String.length r.body + 256) in
  Buffer.add_string buffer (Printf.sprintf "HTTP/1.1 %d %s\r\n" r.status (reason r.status));
  Buffer.add_string buffer (Printf.sprintf "Content-Type: %s\r\n" r.content_type);
  Buffer.add_string buffer (Printf.sprintf "Content-Length: %d\r\n" (String.length r.body));
  List.iter
    (fun (name, value) -> Buffer.add_string buffer (Printf.sprintf "%s: %s\r\n" name value))
    r.extra_headers;
  Buffer.add_string buffer "Connection: close\r\n\r\n";
  Buffer.add_string buffer r.body;
  Buffer.contents buffer

(* Write the whole response, waiting (bounded) for writability on a
   non-blocking socket; a stalled or vanished client just loses the
   response — never the server. *)
let write_all fd data =
  let bytes = Bytes.of_string data in
  let total = Bytes.length bytes in
  let deadline_tries = 100 in
  let rec loop off tries =
    if off < total && tries > 0 then begin
      match Unix.write fd bytes off (total - off) with
      | written -> loop (off + written) tries
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ignore (Unix.select [] [ fd ] [] 0.05);
        loop off (tries - 1)
      | exception Unix.Unix_error _ -> ()
    end
  in
  loop 0 deadline_tries

let serve ?(backlog = 16) ~port handler =
  (* A broken pipe is an ordinary client disappearance here. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
   with e -> Unix.close fd; raise e);
  Unix.listen fd backlog;
  Unix.set_nonblock fd;
  let actual_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  { listen_fd = fd; s_port = actual_port; s_handler = handler; conns = [];
    served = 0; closed = false }

let port t = t.s_port
let requests_served t = t.served

let close_conn t conn =
  (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c -> c != conn) t.conns

let respond t conn response =
  write_all conn.c_fd (render_response response);
  t.served <- t.served + 1;
  close_conn t conn

let handle_readable t conn =
  let chunk = Bytes.create 4096 in
  match Unix.read conn.c_fd chunk 0 4096 with
  | 0 -> close_conn t conn (* peer closed before completing a request *)
  | n ->
    Buffer.add_subbytes conn.c_buf chunk 0 n;
    (match parse_request (Buffer.contents conn.c_buf) with
    | Incomplete -> ()
    | Bad (status, message) -> respond t conn (error status message)
    | Complete (request, _consumed) ->
      let response =
        try t.s_handler request with exn -> error 500 (Printexc.to_string exn)
      in
      respond t conn response)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn t conn

let accept_pending t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | client, _addr ->
      Unix.set_nonblock client;
      t.conns <- { c_fd = client; c_buf = Buffer.create 512 } :: t.conns;
      loop ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  loop ()

let poll ?(timeout = 0.0) t =
  if t.closed then 0
  else begin
    let before = t.served in
    let rec pump timeout =
      let watched = t.listen_fd :: List.map (fun c -> c.c_fd) t.conns in
      match Unix.select watched [] [] timeout with
      | [], _, _ -> ()
      | ready, _, _ ->
        if List.memq t.listen_fd ready then accept_pending t;
        List.iter
          (fun conn -> if List.memq conn.c_fd ready then handle_readable t conn)
          t.conns;
        (* Drain whatever became ready meanwhile, without sleeping again. *)
        pump 0.0
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    in
    pump timeout;
    t.served - before
  end

let close_server t =
  if not t.closed then begin
    t.closed <- true;
    List.iter (fun conn -> try Unix.close conn.c_fd with Unix.Unix_error _ -> ()) t.conns;
    t.conns <- [];
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
  end
