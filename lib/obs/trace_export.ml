module Vtime = Raid_net.Vtime

type message = {
  msg_at : Vtime.t;
  msg_src : int;
  msg_dst : int;
  msg_label : string;
  msg_delivered : bool;
}

let event_fields : Trace.event -> (string * Json.t) list = function
  | Txn_begin { txn; reads; writes } ->
    [ ("txn", Json.Int txn); ("reads", Json.Int reads); ("writes", Json.Int writes) ]
  | Txn_read { txn; item; remote } ->
    [ ("txn", Json.Int txn); ("item", Json.Int item); ("remote", Json.Bool remote) ]
  | Txn_write { txn; item } -> [ ("txn", Json.Int txn); ("item", Json.Int item) ]
  | Txn_commit { txn } -> [ ("txn", Json.Int txn) ]
  | Txn_abort { txn; reason } -> [ ("txn", Json.Int txn); ("reason", Json.Str reason) ]
  | Phase_enter { txn; phase } ->
    [ ("txn", Json.Int txn); ("phase", Json.Str (Trace.phase_name phase)) ]
  | Prepare_sent { txn; participants } ->
    [ ("txn", Json.Int txn); ("participants", Json.Int participants) ]
  | Vote { txn; participant } ->
    [ ("txn", Json.Int txn); ("participant", Json.Int participant) ]
  | Decide { txn; commit } -> [ ("txn", Json.Int txn); ("commit", Json.Bool commit) ]
  | Faillock_set { item; for_site; txn } ->
    (* The causing-txn field is optional so pre-attribution consumers of
       the JSONL wire shape keep parsing unchanged. *)
    ("item", Json.Int item) :: ("for_site", Json.Int for_site)
    :: (match txn with None -> [] | Some id -> [ ("txn", Json.Int id) ])
  | Faillock_cleared { item; for_site; txn } ->
    ("item", Json.Int item) :: ("for_site", Json.Int for_site)
    :: (match txn with None -> [] | Some id -> [ ("txn", Json.Int id) ])
  | Session_change { about; session; state } ->
    [ ("about", Json.Int about); ("session", Json.Int session); ("state", Json.Str state) ]
  | Site_failed -> []
  | Recovery_step { step } ->
    ("step", Json.Str (Trace.recovery_step_name step))
    :: (match step with
       | Trace.Wal_replayed entries -> [ ("entries", Json.Int entries) ]
       | Trace.Announced session -> [ ("session", Json.Int session) ]
       | Trace.Recover_command | Trace.State_installed -> [])
  | Control { kind; detail } ->
    [ ("control", Json.Str (Trace.control_kind_name kind)); ("detail", Json.Str detail) ]
  | Copier_request { txn; source; items } ->
    [ ("txn", Json.Int txn); ("source", Json.Int source); ("items", Json.Int items) ]
  | Copier_reply { txn; source; items } ->
    [ ("txn", Json.Int txn); ("source", Json.Int source); ("items", Json.Int items) ]

let entry_json ({ at; site; event } : Trace.entry) =
  Json.Obj
    (("ts_us", Json.Int (Vtime.to_us at))
    :: ("site", Json.Int site)
    :: ("kind", Json.Str (Trace.kind event))
    :: event_fields event)

let jsonl trace =
  let buffer = Buffer.create 4096 in
  List.iter
    (fun entry ->
      Buffer.add_string buffer (Json.to_string (entry_json entry));
      Buffer.add_char buffer '\n')
    (Trace.entries trace);
  Buffer.contents buffer

(* {2 Chrome trace-event export} *)

let complete ~name ~cat ~tid ~ts ~dur args =
  Json.Obj
    [
      ("name", Json.Str name);
      ("cat", Json.Str cat);
      ("ph", Json.Str "X");
      ("ts", Json.Int ts);
      ("dur", Json.Int dur);
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", Json.Obj args);
    ]

let instant ~name ~cat ~tid ~ts args =
  Json.Obj
    [
      ("name", Json.Str name);
      ("cat", Json.Str cat);
      ("ph", Json.Str "i");
      ("s", Json.Str "t");
      ("ts", Json.Int ts);
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", Json.Obj args);
    ]

let metadata ~name ~tid args =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", Json.Obj args);
    ]

(* Per-coordinated-transaction open state while scanning the entries. *)
type open_txn = {
  started : Vtime.t;
  mutable open_phase : (string * Vtime.t) option;
  mutable done_phases : (string * Vtime.t * Vtime.t) list;  (* name, start, end; reversed *)
}

let chrome ?(messages = []) ~num_sites trace =
  let events = ref [] in
  let push event = events := event :: !events in
  push (metadata ~name:"process_name" ~tid:0 [ ("name", Json.Str "raid cluster") ]);
  for site = 0 to num_sites - 1 do
    push
      (metadata ~name:"thread_name" ~tid:site
         [ ("name", Json.Str (Printf.sprintf "site %d" site)) ])
  done;
  let open_txns : (int * int, open_txn) Hashtbl.t = Hashtbl.create 16 in
  (* Span-shaped pairs below the phase level: prepare->vote per
     participant and copier request->reply per source, rendered as
     duration bars so the causal tree is visible in Perfetto. *)
  let prepares : (int, Vtime.t) Hashtbl.t = Hashtbl.create 16 in
  let fetches : (int * int * int, Vtime.t Queue.t) Hashtbl.t = Hashtbl.create 16 in
  let close_phase state at =
    match state.open_phase with
    | None -> ()
    | Some (name, started) ->
      state.done_phases <- (name, started, at) :: state.done_phases;
      state.open_phase <- None
  in
  let close_txn ~site ~txn ~at ~outcome args =
    match Hashtbl.find_opt open_txns (site, txn) with
    | None -> ()
    | Some state ->
      Hashtbl.remove open_txns (site, txn);
      close_phase state at;
      push
        (complete
           ~name:(Printf.sprintf "T%d" txn)
           ~cat:"txn" ~tid:site ~ts:(Vtime.to_us state.started)
           ~dur:(Vtime.to_us (Vtime.sub at state.started))
           (("txn", Json.Int txn) :: ("outcome", Json.Str outcome) :: args));
      List.iter
        (fun (name, started, finished) ->
          push
            (complete ~name ~cat:"2pc" ~tid:site ~ts:(Vtime.to_us started)
               ~dur:(Vtime.to_us (Vtime.sub finished started))
               [ ("txn", Json.Int txn) ]))
        (List.rev state.done_phases)
  in
  List.iter
    (fun ({ at; site; event } : Trace.entry) ->
      let ts = Vtime.to_us at in
      match event with
      | Txn_begin { txn; _ } ->
        Hashtbl.replace open_txns (site, txn)
          { started = at; open_phase = None; done_phases = [] };
        push (instant ~name:(Printf.sprintf "begin T%d" txn) ~cat:"txn" ~tid:site ~ts
                (event_fields event))
      | Phase_enter { txn; phase } -> begin
        match Hashtbl.find_opt open_txns (site, txn) with
        | None -> ()
        | Some state ->
          close_phase state at;
          state.open_phase <- Some (Trace.phase_name phase, at)
      end
      | Txn_commit { txn } -> close_txn ~site ~txn ~at ~outcome:"commit" []
      | Txn_abort { txn; reason } ->
        close_txn ~site ~txn ~at ~outcome:"abort" [ ("reason", Json.Str reason) ]
      | Txn_read _ | Txn_write _ -> ()
      | Prepare_sent { txn; _ } ->
        Hashtbl.replace prepares txn at;
        push (instant ~name:(Trace.kind event) ~cat:(Trace.kind event) ~tid:site ~ts
                (event_fields event))
      | Vote { txn; participant } -> begin
        match Hashtbl.find_opt prepares txn with
        | None ->
          push (instant ~name:(Trace.kind event) ~cat:(Trace.kind event) ~tid:site ~ts
                  (event_fields event))
        | Some sent ->
          push
            (complete
               ~name:(Printf.sprintf "vote T%d" txn)
               ~cat:"vote" ~tid:participant ~ts:(Vtime.to_us sent)
               ~dur:(Vtime.to_us (Vtime.sub at sent))
               (event_fields event))
      end
      | Copier_request { txn; source; _ } ->
        let queue =
          match Hashtbl.find_opt fetches (site, txn, source) with
          | Some q -> q
          | None ->
            let q = Queue.create () in
            Hashtbl.replace fetches (site, txn, source) q;
            q
        in
        Queue.add at queue
      | Copier_reply { txn; source; _ } -> begin
        match Hashtbl.find_opt fetches (site, txn, source) with
        | Some q when not (Queue.is_empty q) ->
          let requested = Queue.pop q in
          push
            (complete
               ~name:(Printf.sprintf "fetch T%d <- site %d" txn source)
               ~cat:"copier" ~tid:site ~ts:(Vtime.to_us requested)
               ~dur:(Vtime.to_us (Vtime.sub at requested))
               (event_fields event))
        | _ ->
          push (instant ~name:(Trace.kind event) ~cat:(Trace.kind event) ~tid:site ~ts
                  (event_fields event))
      end
      | Decide _ | Faillock_set _ | Faillock_cleared _ | Session_change _ | Site_failed
      | Recovery_step _ | Control _ ->
        let name =
          match event with
          | Control { kind; _ } -> Trace.control_kind_name kind
          | _ -> Trace.kind event
        in
        push (instant ~name ~cat:(Trace.kind event) ~tid:site ~ts (event_fields event)))
    (Trace.entries trace);
  (* Recovery incidents render as one enclosing bar per failure episode
     with its exact phase decomposition nested inside. *)
  List.iter
    (fun (incident : Incident.t) ->
      push
        (complete
           ~name:(Printf.sprintf "incident site %d #%d" incident.Incident.site
                    incident.Incident.episode)
           ~cat:"incident" ~tid:incident.Incident.site
           ~ts:(Vtime.to_us incident.Incident.started)
           ~dur:(Vtime.to_us (Vtime.sub incident.Incident.finished incident.Incident.started))
           [ ("complete", Json.Bool incident.Incident.complete) ]);
      List.iter
        (fun (phase, from_, until) ->
          push
            (complete ~name:(Incident.phase_name phase) ~cat:"recovery"
               ~tid:incident.Incident.site ~ts:(Vtime.to_us from_)
               ~dur:(Vtime.to_us (Vtime.sub until from_))
               [ ("site", Json.Int incident.Incident.site) ]))
        incident.Incident.phases)
    (Incident.assemble (Trace.entries trace));
  List.iter
    (fun { msg_at; msg_src; msg_dst; msg_label; msg_delivered } ->
      let name = if msg_delivered then msg_label else "undeliverable: " ^ msg_label in
      push
        (instant ~name ~cat:"msg" ~tid:msg_dst ~ts:(Vtime.to_us msg_at)
           [
             ("src", Json.Int msg_src);
             ("dst", Json.Int msg_dst);
             ("delivered", Json.Bool msg_delivered);
           ]))
    messages;
  Json.to_string ~indent:true (Json.Obj [ ("traceEvents", Json.Arr (List.rev !events)) ])
