module Vtime = Raid_net.Vtime

type labels = (string * string) list

type kind = Counter | Gauge | Histogram

type counter = { mutable total : float }

type histogram = {
  bounds : float array;  (* upper bounds, strictly increasing; +Inf implicit *)
  counts : int array;  (* length = Array.length bounds + 1 *)
  mutable hsum : float;
  mutable hcount : int;
}

type source =
  | Owned of counter
  | Polled of (unit -> float)
  | Hist of histogram

type metric = {
  m_name : string;
  m_labels : labels;
  m_labels_str : string;
  m_help : string;
  m_kind : kind;
  m_source : source;
  m_series : Series.t;
}

type t = {
  ivl : Vtime.t;
  mutable metrics_rev : metric list;
  mutable next_due : Vtime.t;
  mutable last_at : Vtime.t;  (* stamp of the most recent sample; -1 = none *)
  mutable samples : int;
}

let labels_string labels =
  String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let float_repr f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let create ?(interval = Vtime.of_ms 100) () =
  if interval <= 0 then invalid_arg "Telemetry.create: interval must be positive";
  { ivl = interval; metrics_rev = []; next_due = interval; last_at = -1; samples = 0 }

let interval t = t.ivl

let valid_name name =
  name <> ""
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let register t ~labels ~help ~kind ~source name =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Telemetry: ill-formed metric name %S" name);
  let labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let rec dup_key = function
    | (a, _) :: ((b, _) :: _ as rest) -> a = b || dup_key rest
    | _ -> false
  in
  if dup_key labels then
    invalid_arg (Printf.sprintf "Telemetry: duplicate label key on metric %S" name);
  let labels_str = labels_string labels in
  List.iter
    (fun m ->
      if m.m_name = name && m.m_labels_str = labels_str then
        invalid_arg (Printf.sprintf "Telemetry: metric %S{%s} already registered" name labels_str);
      if m.m_name = name && m.m_kind <> kind then
        invalid_arg (Printf.sprintf "Telemetry: metric %S registered with two kinds" name))
    t.metrics_rev;
  t.metrics_rev <-
    {
      m_name = name;
      m_labels = labels;
      m_labels_str = labels_str;
      m_help = help;
      m_kind = kind;
      m_source = source;
      m_series = Series.create ();
    }
    :: t.metrics_rev

let counter t ?(labels = []) ?(help = "") name =
  let c = { total = 0.0 } in
  register t ~labels ~help ~kind:Counter ~source:(Owned c) name;
  c

let polled_counter t ?(labels = []) ?(help = "") name poll =
  register t ~labels ~help ~kind:Counter ~source:(Polled poll) name

let gauge t ?(labels = []) ?(help = "") name poll =
  register t ~labels ~help ~kind:Gauge ~source:(Polled poll) name

let default_buckets = [ 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0; 256.0; 512.0; 1024.0; 2048.0; 4096.0 ]

let histogram t ?(labels = []) ?(help = "") ?(buckets = default_buckets) name =
  if buckets = [] then invalid_arg "Telemetry.histogram: empty bucket list";
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  if not (increasing buckets) then
    invalid_arg "Telemetry.histogram: bucket bounds must be strictly increasing";
  let bounds = Array.of_list buckets in
  let h = { bounds; counts = Array.make (Array.length bounds + 1) 0; hsum = 0.0; hcount = 0 } in
  register t ~labels ~help ~kind:Histogram ~source:(Hist h) name;
  h

let incr c = c.total <- c.total +. 1.0
let add c x = c.total <- c.total +. x
let counter_value c = c.total

let observe h x =
  (* Linear scan: bucket lists are short and observations are per
     transaction, not per event. *)
  let n = Array.length h.bounds in
  let rec bucket i = if i >= n || x <= h.bounds.(i) then i else bucket (i + 1) in
  let b = bucket 0 in
  h.counts.(b) <- h.counts.(b) + 1;
  h.hsum <- h.hsum +. x;
  h.hcount <- h.hcount + 1

let current m =
  match m.m_source with
  | Owned c -> c.total
  | Polled poll -> poll ()
  | Hist h -> float_of_int h.hcount

let sample_at t at =
  List.iter (fun m -> Series.push m.m_series ~at (current m)) (List.rev t.metrics_rev);
  t.last_at <- at;
  t.samples <- t.samples + 1

let maybe_sample t ~at =
  while t.next_due <= at do
    sample_at t t.next_due;
    t.next_due <- Vtime.add t.next_due t.ivl
  done

let sample_now t ~at =
  if t.last_at <> at then begin
    (* Keep the interval grid anchored at zero: a final flush must not
       shift subsequent due times (there are none in practice, but the
       invariant keeps [maybe_sample] and [sample_now] commutative). *)
    maybe_sample t ~at;
    if t.last_at <> at then sample_at t at
  end

let samples_taken t = t.samples

type view = {
  v_name : string;
  v_labels : labels;
  v_help : string;
  v_kind : kind;
  v_value : float;
  v_buckets : (float * int) list;
  v_sum : float;
  v_series : Series.t;
}

let view_of_metric m =
  let buckets, sum =
    match m.m_source with
    | Hist h ->
      let cumulative = ref 0 in
      let finite =
        Array.to_list
          (Array.mapi
             (fun i bound ->
               cumulative := !cumulative + h.counts.(i);
               (bound, !cumulative))
             h.bounds)
      in
      (finite @ [ (Float.infinity, h.hcount) ], h.hsum)
    | Owned _ | Polled _ -> ([], 0.0)
  in
  {
    v_name = m.m_name;
    v_labels = m.m_labels;
    v_help = m.m_help;
    v_kind = m.m_kind;
    v_value = current m;
    v_buckets = buckets;
    v_sum = sum;
    v_series = m.m_series;
  }

let sorted_metrics t =
  List.sort
    (fun a b ->
      match String.compare a.m_name b.m_name with
      | 0 -> String.compare a.m_labels_str b.m_labels_str
      | c -> c)
    t.metrics_rev

let views t = List.map view_of_metric (sorted_metrics t)

let find t ?(labels = []) name =
  let labels_str =
    labels_string (List.sort (fun (a, _) (b, _) -> String.compare a b) labels)
  in
  List.find_opt (fun m -> m.m_name = name && m.m_labels_str = labels_str) t.metrics_rev
  |> Option.map view_of_metric

let to_csv t =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer "metric,labels,t_ms,value\n";
  List.iter
    (fun m ->
      Series.iter m.m_series (fun ~at value ->
          Buffer.add_string buffer m.m_name;
          Buffer.add_char buffer ',';
          Buffer.add_string buffer m.m_labels_str;
          Buffer.add_char buffer ',';
          (* Vtime is integer microseconds, so three decimals are exact. *)
          Buffer.add_string buffer (Printf.sprintf "%.3f" (Vtime.to_ms at));
          Buffer.add_char buffer ',';
          Buffer.add_string buffer (float_repr value);
          Buffer.add_char buffer '\n'))
    (sorted_metrics t);
  Buffer.contents buffer
