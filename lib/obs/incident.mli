(** Per-(site, failure-episode) recovery timelines assembled from the
    typed trace stream.

    The paper's subject is what happens between a site going down and
    its copies being consistent again.  This module turns the flat trace
    into that story: each crash of a site opens an {e incident}, the
    control-transaction-1 boundary markers ({!Trace.recovery_step})
    close its phases, and the global fail-lock ledger (set/clear hooks
    fire only on true bit transitions) decides when the last stale copy
    was refreshed — the {e caught-up} moment.

    {2 Phase model}

    Boundaries telescope: every incident is decomposed into five
    contiguous phases that tile [started, finished] {e exactly} — no
    gaps, no overlaps, phases whose marker never fired collapse to zero
    length at the previous boundary:

    - {e outage}: crash → recover command reaches the site;
    - {e replay}: → local WAL replay finished;
    - {e resolve}: → recovery announced (in-doubt probing sits here);
    - {e install}: → cluster state (vector, fail-lock knowledge)
      installed, the site is up;
    - {e drain}: → the outstanding fail-lock set for the site is empty
      (on-demand copier refreshes done).

    An episode interrupted by another crash of the same site, or still
    in flight when the stream ends, is reported with [complete = false]
    and a truncated (but still exactly tiling) phase list.

    Assembly is a pure fold over the entry stream, so timelines are
    byte-identical for any [-j] like every other export. *)

type phase = Outage | Replay | Resolve | Install | Drain

val all_phases : phase list
(** In timeline order. *)

val phase_name : phase -> string

type t = {
  site : int;
  episode : int;  (** nth observed failure of this site, from 0 *)
  started : Raid_net.Vtime.t;  (** the crash *)
  finished : Raid_net.Vtime.t;  (** caught up, or last observed boundary *)
  phases : (phase * Raid_net.Vtime.t * Raid_net.Vtime.t) list;
      (** (phase, from, until); contiguous, tiling [started, finished] *)
  complete : bool;  (** crash and caught-up moment both observed *)
  wal_entries : int;  (** entries replayed from the local WAL *)
  faillocks_accrued : int;  (** fail-lock set transitions during the episode *)
  faillocks_peak : int;  (** max simultaneously outstanding *)
  faillock_txns : int;  (** distinct causing transactions on accrual *)
}

val duration : t -> Raid_net.Vtime.t
(** [finished - started]. *)

val mttr : t -> Raid_net.Vtime.t option
(** Crash to caught-up; [None] unless {!field-complete}. *)

val phase_duration : t -> phase -> Raid_net.Vtime.t

val dominant : t -> phase option
(** The phase the MTTR is mostly spent in ([None] on an all-zero
    timeline; earlier phase wins ties). *)

(** {2 Streaming assembly} *)

type recorder
(** Incremental assembler: feed it a live run via {!recorder_sink}
    (combine with a ring collector through {!Trace.tee}). *)

val recorder : ?on_complete:(t -> unit) -> unit -> recorder
(** [on_complete] fires the moment an incident completes — the hook the
    [raid_recovery_phase_seconds] histograms hang off. *)

val recorder_sink : recorder -> Trace.sink

val incidents : recorder -> t list
(** Everything observed so far, ordered by start time: closed episodes
    plus truncated snapshots of in-flight ones.  Does not disturb the
    recorder. *)

val assemble : Trace.entry list -> t list
(** One-shot assembly over collected entries (a fresh {!recorder} fed
    the list). *)

(** {2 Rendering} *)

val csv_header : string

val csv_row : t -> string
(** One header-less CSV row (no trailing newline) — callers that prefix
    their own key columns (e.g. the crash matrix) compose it with
    {!csv_header}. *)

val to_csv : t list -> string
(** Long-form CSV, one row per incident, header included; durations in
    milliseconds with three decimals (virtual time is integer
    microseconds, so this is exact). *)

val json : t -> Json.t

val describe : t -> string
(** One human line: MTTR, phase breakdown, fail-lock and WAL counts. *)
