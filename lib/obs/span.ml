module Vtime = Raid_net.Vtime

type span = {
  name : string;
  site : int;
  started : Vtime.t;
  finished : Vtime.t;
  children : span list;
}

type tree = {
  txn : int;
  coordinator : int;
  committed : bool;
  reason : string option;
  reads : int;
  writes : int;
  complete : bool;
  root : span;
}

type step = {
  step_name : string;
  step_site : int;
  step_from : Vtime.t;
  step_until : Vtime.t;
  step_note : string;
}

let latency tree = Vtime.sub tree.root.finished tree.root.started

(* {2 Assembly}

   One pass bucketing the stream by transaction id, then a per-txn
   build.  Drops from the ring collector only ever remove the oldest
   prefix of the stream, so a tree whose [Txn_begin] (its earliest
   event) survived is structurally complete once its terminal arrives;
   a tree missing either end is flagged. *)

type collect = {
  mutable c_begin : (int * Vtime.t * int * int) option;  (* site, at, reads, writes *)
  mutable c_phases : (Trace.phase * Vtime.t) list;  (* reversed *)
  mutable c_terminal : (Vtime.t * bool * string option) option;
  mutable c_requests : (int * Vtime.t) list;  (* source, at; reversed *)
  mutable c_replies : (int * Vtime.t) list;  (* source, at; reversed *)
  mutable c_prepare_sent : Vtime.t option;
  mutable c_votes : (int * Vtime.t) list;  (* participant, at; reversed *)
  mutable c_first : Vtime.t;
  mutable c_last : Vtime.t;
  mutable c_order : int;  (* stream position of the first event, for ordering *)
}

let assemble entries =
  let table : (int, collect) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let position = ref 0 in
  let get txn at =
    match Hashtbl.find_opt table txn with
    | Some c ->
      c.c_last <- at;
      c
    | None ->
      let c =
        {
          c_begin = None;
          c_phases = [];
          c_terminal = None;
          c_requests = [];
          c_replies = [];
          c_prepare_sent = None;
          c_votes = [];
          c_first = at;
          c_last = at;
          c_order = !position;
        }
      in
      Hashtbl.replace table txn c;
      order := txn :: !order;
      c
  in
  List.iter
    (fun ({ at; site; event } : Trace.entry) ->
      incr position;
      match event with
      | Trace.Txn_begin { txn; reads; writes } ->
        (get txn at).c_begin <- Some (site, at, reads, writes)
      | Trace.Phase_enter { txn; phase } ->
        let c = get txn at in
        c.c_phases <- (phase, at) :: c.c_phases
      | Trace.Txn_commit { txn } -> (get txn at).c_terminal <- Some (at, true, None)
      | Trace.Txn_abort { txn; reason } ->
        (get txn at).c_terminal <- Some (at, false, Some reason)
      | Trace.Copier_request { txn; source; _ } when txn >= 0 ->
        let c = get txn at in
        c.c_requests <- (source, at) :: c.c_requests
      | Trace.Copier_reply { txn; source; _ } when txn >= 0 ->
        let c = get txn at in
        c.c_replies <- (source, at) :: c.c_replies
      | Trace.Prepare_sent { txn; _ } -> (get txn at).c_prepare_sent <- Some at
      | Trace.Vote { txn; participant } ->
        let c = get txn at in
        c.c_votes <- (participant, at) :: c.c_votes
      | _ -> ())
    entries;
  let build txn (c : collect) =
    let coordinator, started, reads, writes =
      match c.c_begin with
      | Some (site, at, reads, writes) -> (site, at, reads, writes)
      | None -> (-1, c.c_first, 0, 0)
    in
    let finished, committed, reason =
      match c.c_terminal with
      | Some (at, committed, reason) -> (at, committed, reason)
      | None -> (c.c_last, false, None)
    in
    (* Phase windows tile [started, finished]: the pre-copy window
       ("begin": reads, lock checks, local setup) runs to the first
       recorded phase; each phase runs to the next. *)
    let boundaries =
      ("begin", started) :: List.rev_map (fun (p, at) -> (Trace.phase_name p, at)) c.c_phases
    in
    let rec windows = function
      | [] -> []
      | (name, from_) :: rest ->
        let until = match rest with (_, next) :: _ -> next | [] -> finished in
        (name, from_, until) :: windows rest
    in
    let windows = windows boundaries in
    (* Request -> reply pairing is FIFO per source (the protocol answers
       a source's requests in order). *)
    let fetches =
      let pending : (int, Vtime.t Queue.t) Hashtbl.t = Hashtbl.create 4 in
      let spans = ref [] in
      List.iter
        (fun (source, at) ->
          let q =
            match Hashtbl.find_opt pending source with
            | Some q -> q
            | None ->
              let q = Queue.create () in
              Hashtbl.replace pending source q;
              q
          in
          Queue.add at q)
        (List.rev c.c_requests);
      List.iter
        (fun (source, at) ->
          match Hashtbl.find_opt pending source with
          | Some q when not (Queue.is_empty q) ->
            let from_ = Queue.pop q in
            spans :=
              {
                name = Printf.sprintf "fetch <- site %d" source;
                site = source;
                started = from_;
                finished = at;
                children = [];
              }
              :: !spans
          | _ -> ())
        (List.rev c.c_replies);
      (* Requests never answered (source died, txn aborted) stay open to
         the end of the transaction. *)
      Hashtbl.fold
        (fun source q acc ->
          Queue.fold
            (fun acc from_ ->
              {
                name = Printf.sprintf "fetch <- site %d (unanswered)" source;
                site = source;
                started = from_;
                finished;
                children = [];
              }
              :: acc)
            acc q)
        pending []
      @ !spans
      |> List.sort (fun a b -> compare (a.started, a.site) (b.started, b.site))
    in
    let votes =
      List.rev_map
        (fun (participant, at) ->
          {
            name = Printf.sprintf "vote site %d" participant;
            site = participant;
            started = Option.value ~default:at c.c_prepare_sent;
            finished = at;
            children = [];
          })
        c.c_votes
      |> List.sort (fun a b -> compare (a.finished, a.site) (b.finished, b.site))
    in
    let child_of (name, from_, until) child =
      (* Bucket sub-spans into the phase window containing their start. *)
      ignore name;
      child.started >= from_ && (child.started < until || from_ = until)
    in
    let phase_spans =
      List.map
        (fun ((name, from_, until) as w) ->
          let children =
            match name with
            | "copy" -> List.filter (child_of w) fetches
            | "prepare" -> List.filter (child_of w) votes
            | _ -> []
          in
          { name; site = coordinator; started = from_; finished = until; children })
        windows
    in
    {
      txn;
      coordinator;
      committed;
      reason;
      reads;
      writes;
      complete = c.c_begin <> None && c.c_terminal <> None;
      root =
        {
          name = Printf.sprintf "T%d" txn;
          site = coordinator;
          started;
          finished;
          children = phase_spans;
        };
    }
  in
  List.rev !order
  |> List.filter_map (fun txn ->
         if txn < 0 then None
         else Option.map (build txn) (Hashtbl.find_opt table txn))
  |> List.sort (fun a b -> compare a.txn b.txn)

let find trees txn = List.find_opt (fun t -> t.txn = txn) trees

let slowest trees =
  let pick candidates =
    List.fold_left
      (fun best t ->
        match best with
        | Some b when latency b >= latency t -> best
        | _ -> Some t)
      None candidates
  in
  match pick (List.filter (fun t -> t.committed && t.complete) trees) with
  | Some t -> Some t
  | None -> pick trees

(* {2 Critical path}

   The phase windows tile the root span, so walking them in order and
   blaming each on its slowest child yields a path whose step durations
   sum exactly to the transaction's end-to-end latency. *)

let critical_path tree =
  let slowest_child children =
    List.fold_left
      (fun best c ->
        match best with
        | Some b when b.finished >= c.finished -> best
        | _ -> Some c)
      None children
  in
  List.map
    (fun phase ->
      let site, note =
        match phase.name with
        | "copy" -> (
          match slowest_child phase.children with
          | Some fetch ->
            ( fetch.site,
              Printf.sprintf "slowest fetch: site %d (%.2f ms)" fetch.site
                (Vtime.to_ms (Vtime.sub fetch.finished fetch.started)) )
          | None -> (phase.site, "no copier traffic"))
        | "prepare" -> (
          match slowest_child phase.children with
          | Some vote ->
            ( vote.site,
              Printf.sprintf "last vote: site %d (%.2f ms after prepare)" vote.site
                (Vtime.to_ms (Vtime.sub vote.finished vote.started)) )
          | None -> (phase.site, "no votes recorded"))
        | "commit" -> (phase.site, "decide + local commit")
        | _ -> (phase.site, "local reads, lock checks, setup")
      in
      {
        step_name = phase.name;
        step_site = site;
        step_from = phase.started;
        step_until = phase.finished;
        step_note = note;
      })
    tree.root.children

(* {2 Rendering} *)

let rec span_json span =
  Json.Obj
    [
      ("name", Json.Str span.name);
      ("site", Json.Int span.site);
      ("from_ms", Json.Float (Vtime.to_ms span.started));
      ("until_ms", Json.Float (Vtime.to_ms span.finished));
      ("duration_ms", Json.Float (Vtime.to_ms (Vtime.sub span.finished span.started)));
      ("children", Json.Arr (List.map span_json span.children));
    ]

let json tree =
  Json.Obj
    [
      ("txn", Json.Int tree.txn);
      ("coordinator", Json.Int tree.coordinator);
      ("outcome", Json.Str (if tree.committed then "commit" else "abort"));
      ("reason", match tree.reason with None -> Json.Null | Some r -> Json.Str r);
      ("complete", Json.Bool tree.complete);
      ("reads", Json.Int tree.reads);
      ("writes", Json.Int tree.writes);
      ("latency_ms", Json.Float (Vtime.to_ms (latency tree)));
      ("span", span_json tree.root);
      ( "critical_path",
        Json.Arr
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("step", Json.Str s.step_name);
                   ("site", Json.Int s.step_site);
                   ("duration_ms", Json.Float (Vtime.to_ms (Vtime.sub s.step_until s.step_from)));
                   ("note", Json.Str s.step_note);
                 ])
             (critical_path tree)) );
    ]

let render tree =
  let buffer = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  out "txn %d (coordinator site %d): %s, %d reads / %d writes, %.2f ms%s\n" tree.txn
    tree.coordinator
    (match (tree.committed, tree.reason) with
    | true, _ -> "committed"
    | false, Some reason -> "aborted: " ^ reason
    | false, None -> "unterminated")
    tree.reads tree.writes
    (Vtime.to_ms (latency tree))
    (if tree.complete then "" else " [INCOMPLETE TREE: events missing from the ring]");
  out "\nspan tree:\n";
  let rec walk indent span =
    out "%s%-24s site %-3d [%9.2f .. %9.2f]  %8.2f ms\n" indent span.name span.site
      (Vtime.to_ms span.started) (Vtime.to_ms span.finished)
      (Vtime.to_ms (Vtime.sub span.finished span.started));
    List.iter (walk (indent ^ "  ")) span.children
  in
  walk "  " tree.root;
  out "\ncritical path:\n";
  let total = ref Vtime.zero in
  List.iter
    (fun s ->
      let d = Vtime.sub s.step_until s.step_from in
      total := Vtime.add !total d;
      out "  %-8s %8.2f ms  site %-3d  %s\n" s.step_name (Vtime.to_ms d) s.step_site s.step_note)
    (critical_path tree);
  out "  %-8s %8.2f ms  (= end-to-end transaction latency)\n" "total" (Vtime.to_ms !total);
  Buffer.contents buffer
