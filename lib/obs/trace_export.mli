(** Serialize a protocol trace as JSONL or Chrome trace-event JSON.

    The Chrome format ({{:https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU}trace-event spec})
    loads directly in Perfetto / [chrome://tracing]: the export lays out
    one track (thread) per site, draws each coordinated transaction as a
    complete ("X") span with its copier / prepare / commit phases as
    spans nested inside it, and renders everything else (votes,
    fail-lock transitions, session changes, control transactions,
    engine-level message deliveries) as instant events on the relevant
    site's track. *)

type message = {
  msg_at : Raid_net.Vtime.t;
  msg_src : int;  (** negative for the managing site *)
  msg_dst : int;
  msg_label : string;
  msg_delivered : bool;
}
(** A network-engine trace entry, pre-rendered by the caller (the engine
    is payload-generic; this library never sees payload types). *)

val entry_json : Trace.entry -> Json.t
(** One flat object: ["ts_us"], ["site"], ["kind"], then event fields. *)

val jsonl : Trace.t -> string
(** One compact JSON object per line, in emission order. *)

val chrome : ?messages:message list -> num_sites:int -> Trace.t -> string
(** A single JSON object [{"traceEvents": [...]}], pretty-printed.
    [messages] (chronological) adds a "msg" instant on the destination
    site's track per delivery attempt, with undeliverable ones marked.
    Transactions still open when the trace ends (e.g. lost to a
    coordinator crash) produce no span. *)
