(** A growable in-memory time series: (virtual time, value) pairs in
    append order.

    The telemetry registry ({!Telemetry}) owns one series per metric and
    appends a point at every sampling instant.  Points are stored in two
    parallel unboxed arrays (int microseconds, float), so a sample costs
    two array writes and no allocation beyond amortised growth —
    sampling must not perturb the run it is observing. *)

type t

val create : unit -> t

val push : t -> at:Raid_net.Vtime.t -> float -> unit
(** Append one point.  Times are expected to be non-decreasing (the
    registry samples at increasing virtual times); this is not checked
    here. *)

val length : t -> int

val get : t -> int -> Raid_net.Vtime.t * float
(** @raise Invalid_argument on an out-of-range index. *)

val last : t -> (Raid_net.Vtime.t * float) option

val iter : t -> (at:Raid_net.Vtime.t -> float -> unit) -> unit
(** In append order. *)

val to_list : t -> (Raid_net.Vtime.t * float) list
