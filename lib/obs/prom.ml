(* HELP text escapes only backslash and newline (the exposition format
   leaves quotes alone there, unlike label values). *)
let escape_help s =
  let buffer = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let escape_label_value s =
  let buffer = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '"' -> Buffer.add_string buffer "\\\""
      | '\n' -> Buffer.add_string buffer "\\n"
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

(* Render a label set as {k="v",...}; [extra] appends one more pair
   (the histogram [le] bound). *)
let label_set ?extra labels =
  let pairs =
    List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels
    @ (match extra with None -> [] | Some (k, v) -> [ Printf.sprintf "%s=\"%s\"" k v ])
  in
  if pairs = [] then "" else "{" ^ String.concat "," pairs ^ "}"

let kind_name = function
  | Telemetry.Counter -> "counter"
  | Telemetry.Gauge -> "gauge"
  | Telemetry.Histogram -> "histogram"

let render registry =
  let buffer = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  let last_name = ref "" in
  List.iter
    (fun (v : Telemetry.view) ->
      if v.Telemetry.v_name <> !last_name then begin
        last_name := v.Telemetry.v_name;
        if v.Telemetry.v_help <> "" then
          out "# HELP %s %s\n" v.Telemetry.v_name (escape_help v.Telemetry.v_help);
        out "# TYPE %s %s\n" v.Telemetry.v_name (kind_name v.Telemetry.v_kind)
      end;
      match v.Telemetry.v_kind with
      | Telemetry.Counter | Telemetry.Gauge ->
        out "%s%s %s\n" v.Telemetry.v_name
          (label_set v.Telemetry.v_labels)
          (Telemetry.float_repr v.Telemetry.v_value)
      | Telemetry.Histogram ->
        List.iter
          (fun (bound, cumulative) ->
            out "%s_bucket%s %d\n" v.Telemetry.v_name
              (label_set ~extra:("le", Telemetry.float_repr bound) v.Telemetry.v_labels)
              cumulative)
          v.Telemetry.v_buckets;
        out "%s_sum%s %s\n" v.Telemetry.v_name
          (label_set v.Telemetry.v_labels)
          (Telemetry.float_repr v.Telemetry.v_sum);
        out "%s_count%s %s\n" v.Telemetry.v_name
          (label_set v.Telemetry.v_labels)
          (Telemetry.float_repr v.Telemetry.v_value))
    (Telemetry.views registry);
  Buffer.contents buffer
