module Vtime = Raid_net.Vtime

type phase = Outage | Replay | Resolve | Install | Drain

let all_phases = [ Outage; Replay; Resolve; Install; Drain ]

let phase_name = function
  | Outage -> "outage"
  | Replay -> "replay"
  | Resolve -> "resolve"
  | Install -> "install"
  | Drain -> "drain"

type t = {
  site : int;
  episode : int;
  started : Vtime.t;
  finished : Vtime.t;
  phases : (phase * Vtime.t * Vtime.t) list;
  complete : bool;
  wal_entries : int;
  faillocks_accrued : int;
  faillocks_peak : int;
  faillock_txns : int;
}

let duration t = Vtime.sub t.finished t.started

let mttr t = if t.complete then Some (duration t) else None

let phase_duration t phase =
  List.fold_left
    (fun acc (p, from_, until) -> if p = phase then Vtime.add acc (Vtime.sub until from_) else acc)
    Vtime.zero t.phases

let dominant t =
  match t.phases with
  | [] -> None
  | phases ->
    let best, best_len =
      List.fold_left
        (fun (best, best_len) (p, from_, until) ->
          let len = Vtime.sub until from_ in
          if len > best_len then (Some p, len) else (best, best_len))
        (None, -1) phases
    in
    if best_len <= 0 then None else best

(* {2 Streaming assembly}

   One pass over the trace stream.  The fail-lock ledger is global: an
   episode's drain end is the moment the outstanding (table-site, item)
   set for the recovering site goes empty at-or-after state install, and
   set/clear hooks fire only on true bit transitions, so counting is
   exact. *)

type open_incident = {
  oi_site : int;
  oi_episode : int;
  oi_started : Vtime.t;
  mutable oi_saw_down : bool;
  mutable oi_recover_at : Vtime.t option;
  mutable oi_replayed_at : Vtime.t option;
  mutable oi_wal_entries : int;
  mutable oi_announced_at : Vtime.t option;
  mutable oi_installed_at : Vtime.t option;
  mutable oi_accrued : int;
  mutable oi_peak : int;
  oi_txns : (int, unit) Hashtbl.t;
}

type recorder = {
  on_complete : (t -> unit) option;
  open_incidents : (int, open_incident) Hashtbl.t;  (* by recovering site *)
  episodes : (int, int) Hashtbl.t;  (* next episode number per site *)
  outstanding : (int * int * int, unit) Hashtbl.t;  (* table site, item, for_site *)
  outstanding_for : (int, int) Hashtbl.t;  (* per target site count *)
  mutable closed_rev : t list;
}

let recorder ?on_complete () =
  {
    on_complete;
    open_incidents = Hashtbl.create 8;
    episodes = Hashtbl.create 8;
    outstanding = Hashtbl.create 64;
    outstanding_for = Hashtbl.create 8;
    closed_rev = [];
  }

let outstanding_count r site =
  Option.value ~default:0 (Hashtbl.find_opt r.outstanding_for site)

(* Telescoping boundaries: each phase ends at its marker event when one
   was observed, else collapses to zero length at the previous boundary
   — so the phases always tile [started, finished] exactly, including on
   truncated (incomplete) episodes. *)
let close r oi ~finished ~complete =
  let b0 = oi.oi_started in
  let bound prev = function None -> prev | Some at -> max prev at in
  let b1 = bound b0 oi.oi_recover_at in
  let b2 = bound b1 oi.oi_replayed_at in
  let b3 = bound b2 oi.oi_announced_at in
  let b4 = bound b3 oi.oi_installed_at in
  let b5 = max b4 finished in
  let incident =
    {
      site = oi.oi_site;
      episode = oi.oi_episode;
      started = b0;
      finished = b5;
      phases =
        [ (Outage, b0, b1); (Replay, b1, b2); (Resolve, b2, b3); (Install, b3, b4);
          (Drain, b4, b5) ];
      complete = complete && oi.oi_saw_down;
      wal_entries = oi.oi_wal_entries;
      faillocks_accrued = oi.oi_accrued;
      faillocks_peak = oi.oi_peak;
      faillock_txns = Hashtbl.length oi.oi_txns;
    }
  in
  Hashtbl.remove r.open_incidents oi.oi_site;
  r.closed_rev <- incident :: r.closed_rev;
  if incident.complete then Option.iter (fun f -> f incident) r.on_complete

let open_incident r ~site ~at ~saw_down =
  let episode = Option.value ~default:0 (Hashtbl.find_opt r.episodes site) in
  Hashtbl.replace r.episodes site (episode + 1);
  let oi =
    {
      oi_site = site;
      oi_episode = episode;
      oi_started = at;
      oi_saw_down = saw_down;
      oi_recover_at = None;
      oi_replayed_at = None;
      oi_wal_entries = 0;
      oi_announced_at = None;
      oi_installed_at = None;
      oi_accrued = 0;
      oi_peak = 0;
      oi_txns = Hashtbl.create 4;
    }
  in
  Hashtbl.replace r.open_incidents site oi;
  oi

(* A recover command with no observed crash (trace started late, or a
   duplicate recover) still yields a timeline, flagged incomplete. *)
let current r ~site ~at =
  match Hashtbl.find_opt r.open_incidents site with
  | Some oi -> oi
  | None -> open_incident r ~site ~at ~saw_down:false

let maybe_caught_up r ~site ~at =
  match Hashtbl.find_opt r.open_incidents site with
  | Some oi when oi.oi_installed_at <> None && outstanding_count r site = 0 ->
    close r oi ~finished:(max at (Option.get oi.oi_installed_at)) ~complete:true
  | _ -> ()

let observe r ~at ~site (event : Trace.event) =
  match event with
  | Trace.Site_failed -> begin
    (match Hashtbl.find_opt r.open_incidents site with
    | Some oi ->
      (* Flapped mid-recovery: the interrupted episode closes truncated
         and a fresh one opens at the new crash. *)
      let finished =
        let bound prev = function None -> prev | Some v -> max prev v in
        bound
          (bound (bound (bound oi.oi_started oi.oi_recover_at) oi.oi_replayed_at)
             oi.oi_announced_at)
          oi.oi_installed_at
      in
      close r oi ~finished ~complete:false
    | None -> ());
    ignore (open_incident r ~site ~at ~saw_down:true)
  end
  | Trace.Recovery_step { step } -> begin
    let oi = current r ~site ~at in
    (match step with
    | Trace.Recover_command -> if oi.oi_recover_at = None then oi.oi_recover_at <- Some at
    | Trace.Wal_replayed entries ->
      if oi.oi_replayed_at = None then oi.oi_replayed_at <- Some at;
      oi.oi_wal_entries <- oi.oi_wal_entries + entries
    | Trace.Announced _ -> if oi.oi_announced_at = None then oi.oi_announced_at <- Some at
    | Trace.State_installed -> if oi.oi_installed_at = None then oi.oi_installed_at <- Some at);
    match step with Trace.State_installed -> maybe_caught_up r ~site ~at | _ -> ()
  end
  | Trace.Faillock_set { item; for_site; txn } ->
    if not (Hashtbl.mem r.outstanding (site, item, for_site)) then begin
      Hashtbl.replace r.outstanding (site, item, for_site) ();
      let count = outstanding_count r for_site + 1 in
      Hashtbl.replace r.outstanding_for for_site count;
      match Hashtbl.find_opt r.open_incidents for_site with
      | Some oi ->
        oi.oi_accrued <- oi.oi_accrued + 1;
        if count > oi.oi_peak then oi.oi_peak <- count;
        Option.iter (fun id -> Hashtbl.replace oi.oi_txns id ()) txn
      | None -> ()
    end
  | Trace.Faillock_cleared { item; for_site; _ } ->
    if Hashtbl.mem r.outstanding (site, item, for_site) then begin
      Hashtbl.remove r.outstanding (site, item, for_site);
      Hashtbl.replace r.outstanding_for for_site (outstanding_count r for_site - 1);
      maybe_caught_up r ~site:for_site ~at
    end
  | _ -> ()

let recorder_sink r = { Trace.emit = (fun ~at ~site event -> observe r ~at ~site event) }

let order = List.sort (fun a b -> compare (a.started, a.site, a.episode) (b.started, b.site, b.episode))

let incidents r =
  let open_ones =
    Hashtbl.fold
      (fun _ oi acc ->
        (* Snapshot the in-flight episode as a truncated timeline without
           disturbing the recorder (the soak keeps feeding it). *)
        let bound prev = function None -> prev | Some v -> max prev v in
        let b1 = bound oi.oi_started oi.oi_recover_at in
        let b2 = bound b1 oi.oi_replayed_at in
        let b3 = bound b2 oi.oi_announced_at in
        let b4 = bound b3 oi.oi_installed_at in
        {
          site = oi.oi_site;
          episode = oi.oi_episode;
          started = oi.oi_started;
          finished = b4;
          phases =
            [ (Outage, oi.oi_started, b1); (Replay, b1, b2); (Resolve, b2, b3);
              (Install, b3, b4); (Drain, b4, b4) ];
          complete = false;
          wal_entries = oi.oi_wal_entries;
          faillocks_accrued = oi.oi_accrued;
          faillocks_peak = oi.oi_peak;
          faillock_txns = Hashtbl.length oi.oi_txns;
        }
        :: acc)
      r.open_incidents []
  in
  order (List.rev_append r.closed_rev open_ones)

let assemble entries =
  let r = recorder () in
  List.iter (fun (e : Trace.entry) -> observe r ~at:e.Trace.at ~site:e.Trace.site e.Trace.event)
    entries;
  incidents r

(* {2 Rendering} *)

let to_ms v = Vtime.to_ms v

let csv_header =
  "site,episode,started_ms,outage_ms,replay_ms,resolve_ms,install_ms,drain_ms,mttr_ms,complete,dominant,wal_entries,faillocks_accrued,faillocks_peak,faillock_txns"

let csv_row t =
  Printf.sprintf "%d,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%s,%b,%s,%d,%d,%d,%d" t.site t.episode
    (to_ms t.started)
    (to_ms (phase_duration t Outage))
    (to_ms (phase_duration t Replay))
    (to_ms (phase_duration t Resolve))
    (to_ms (phase_duration t Install))
    (to_ms (phase_duration t Drain))
    (match mttr t with None -> "" | Some d -> Printf.sprintf "%.3f" (to_ms d))
    t.complete
    (match dominant t with None -> "" | Some p -> phase_name p)
    t.wal_entries t.faillocks_accrued t.faillocks_peak t.faillock_txns

let to_csv incidents =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer csv_header;
  Buffer.add_char buffer '\n';
  List.iter
    (fun t ->
      Buffer.add_string buffer (csv_row t);
      Buffer.add_char buffer '\n')
    incidents;
  Buffer.contents buffer

let json t =
  Json.Obj
    [
      ("site", Json.Int t.site);
      ("episode", Json.Int t.episode);
      ("started_ms", Json.Float (to_ms t.started));
      ("finished_ms", Json.Float (to_ms t.finished));
      ("complete", Json.Bool t.complete);
      ( "mttr_ms",
        match mttr t with None -> Json.Null | Some d -> Json.Float (to_ms d) );
      ( "dominant",
        match dominant t with None -> Json.Null | Some p -> Json.Str (phase_name p) );
      ( "phases",
        Json.Arr
          (List.map
             (fun (p, from_, until) ->
               Json.Obj
                 [
                   ("phase", Json.Str (phase_name p));
                   ("from_ms", Json.Float (to_ms from_));
                   ("until_ms", Json.Float (to_ms until));
                   ("duration_ms", Json.Float (to_ms (Vtime.sub until from_)));
                 ])
             t.phases) );
      ("wal_entries", Json.Int t.wal_entries);
      ("faillocks_accrued", Json.Int t.faillocks_accrued);
      ("faillocks_peak", Json.Int t.faillocks_peak);
      ("faillock_txns", Json.Int t.faillock_txns);
    ]

let describe t =
  Printf.sprintf "site %d #%d: %s %s, %d fail-locks (peak %d, %d txns), %d wal entries%s" t.site
    t.episode
    (match mttr t with
    | Some d -> Printf.sprintf "recovered in %.2f ms" (to_ms d)
    | None -> Printf.sprintf "incomplete after %.2f ms" (to_ms (duration t)))
    (String.concat " "
       (List.map
          (fun (p, from_, until) ->
            Printf.sprintf "%s=%.2f" (phase_name p) (to_ms (Vtime.sub until from_)))
          t.phases))
    t.faillocks_accrued t.faillocks_peak t.faillock_txns t.wal_entries
    (match dominant t with
    | None -> ""
    | Some p -> Printf.sprintf ", dominated by %s" (phase_name p))
