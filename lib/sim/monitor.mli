(** Telemetry-instrumented scenario runs: the pipeline behind
    [raid metrics].

    Runs a named scenario with a {!Raid_obs.Telemetry} registry wired
    into the cluster (see {!Raid_core.Cluster.create}) and renders the
    sampled series as Prometheus text exposition or long-form CSV.
    Sampling happens at multiples of the virtual-time interval as the
    engine processes events, plus one final sample at the quiescent end
    time — so the output is a pure function of (scenario, interval):
    byte-identical across runs, hosts and [-j] domain counts. *)

val scenarios : (string * string) list
(** Named scenarios accepted by {!scenario_of_name}: the tracing
    scenarios ({!Tracing.scenarios}) plus ["exp1"], a fail/recover
    cycle on the paper's Experiment-1 configuration (4 sites, 50 items,
    transactions of up to 10 operations). *)

val scenario_of_name : ?seed:int -> string -> (Scenario.t, string) result

val exp1_scenario : ?seed:int -> unit -> Scenario.t
(** The ["exp1"] scenario: warm-up transactions, site 0 fails, load
    continues while down, site 0 recovers on demand, then a settle
    tail — one trajectory covering every phase the registry gauges
    track. *)

type output = {
  registry : Raid_obs.Telemetry.t;
  result : Runner.result;
  trace : Raid_obs.Trace.t;  (** the typed event stream of the run *)
  recorder : Raid_obs.Incident.recorder;  (** streaming recovery timelines *)
}

val attach_observatory :
  Raid_obs.Telemetry.t -> Raid_obs.Trace.t -> Raid_obs.Trace.sink * Raid_obs.Incident.recorder
(** Register the recovery observatory on a registry: one
    [raid_recovery_phase_seconds] histogram per incident phase (fed the
    moment an incident completes) and a [raid_trace_dropped_total]
    counter polled from the given ring collector.  Returns the sink to
    run the cluster with — the collector teed with a fresh incident
    recorder — and that recorder. *)

val run : ?sample:Raid_net.Vtime.t -> Scenario.t -> output
(** Run with telemetry and the recovery observatory attached; [sample]
    (default 100 virtual ms) is the registry interval.  A final sample
    is recorded at the engine's quiescent end time. *)

val incidents : output -> Raid_obs.Incident.t list
(** The run's recovery timelines, ordered by start time. *)

val prom : output -> string
val csv : output -> string

val render : format:[ `Prom | `Csv ] -> output -> string
