module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Workload = Raid_core.Workload
module Metrics = Raid_core.Metrics
module Engine = Raid_net.Engine
module Vtime = Raid_net.Vtime
module Rng = Raid_util.Rng
module Stats = Raid_util.Stats
module Table = Raid_util.Table
module Pool = Raid_par.Pool

type failure = { fail_site : int; fail_at_ms : float; recover_at_ms : float }

type config = {
  sites : int;
  items : int;
  max_ops : int;
  write_prob : float;
  duration_ms : float;
  failure : failure option;
  replication : Config.replication;
  zipf_theta : float option;  (** hot-spot skew; [None] keeps the uniform draw *)
}

let make_config ?(sites = 16) ?(items = 500) ?(max_ops = 5) ?(write_prob = 0.5)
    ?(duration_ms = 10_000.0) ?failure ?(replication = Config.Full) ?zipf_theta () =
  if sites <= 0 then invalid_arg "Throughput: sites must be positive";
  if items <= 0 then invalid_arg "Throughput: items must be positive";
  if duration_ms <= 0.0 then invalid_arg "Throughput: duration must be positive";
  (match failure with
  | None -> ()
  | Some { fail_site; fail_at_ms; recover_at_ms } ->
    if fail_site < 0 || fail_site >= sites then invalid_arg "Throughput: fail_site out of range";
    if fail_at_ms < 0.0 || recover_at_ms <= fail_at_ms then
      invalid_arg "Throughput: need 0 <= fail_at < recover_at");
  { sites; items; max_ops; write_prob; duration_ms; failure; replication; zipf_theta }

(* Failure times are absolute virtual times (not fractions of the
   duration), so a longer run of the same seed is a strict extension of a
   shorter one — the monotonicity property the tests pin. *)
let default_failure ~sites:_ ~duration_ms =
  { fail_site = 0; fail_at_ms = duration_ms /. 5.0; recover_at_ms = duration_ms /. 2.0 }

type window = {
  w_start_s : int;
  w_committed : int;
  w_aborted : int;
  w_copiers : int;
  w_faillocks_set : int;
  w_faillocks_cleared : int;
  w_messages : int;
}

type result = {
  seed : int;
  submitted : int;
  committed : int;
  aborted : int;
  copier_requests : int;
  faillocks_set : int;
  faillocks_cleared : int;
  virtual_ms : float;  (** engine virtual time when the stream stopped *)
  events : int;  (** messages delivered + timers fired, host-side work *)
  messages_sent : int;
  recovered : bool;  (** the failed site completed control-1 (no failure = true) *)
  windows : window list;  (** per-virtual-second activity, ascending start time *)
  incidents : Raid_obs.Incident.t list;
      (** recovery timelines; empty unless the run recorded incidents *)
}

let txns_per_vsec r =
  if r.virtual_ms <= 0.0 then 0.0 else float_of_int r.committed /. (r.virtual_ms /. 1000.0)

let abort_rate r =
  let total = r.committed + r.aborted in
  if total = 0 then 0.0 else float_of_int r.aborted /. float_of_int total

(* Host-side events per wall-clock second; the caller supplies the wall
   time so the simulation result itself stays deterministic. *)
let events_per_sec ~wall_s r =
  if wall_s <= 0.0 then 0.0 else float_of_int r.events /. wall_s

(* The steady-state stream.  Transactions are drawn from a uniform
   workload and submitted serially in virtual time (the paper's sites run
   serially); the stream is open-loop in the sense that load never adapts
   to outcomes — aborts do not slow the arrival of the next transaction.
   The optional failure/recovery pair fires at absolute virtual times
   mid-run, so the measurement covers normal processing, the degraded
   window and the recovery tail in one trajectory. *)
let run ?(seed = 42) ?telemetry ?(record_incidents = false) config =
  let ccfg =
    Config.make ~replication:config.replication ~num_sites:config.sites
      ~num_items:config.items ()
  in
  (* Incident recording rides the trace-sink hook: opt-in because the
     per-event closure call is measurable at benchmark scale, and the
     benchmark's deterministic fields must not depend on it either way. *)
  let recorder = if record_incidents then Some (Raid_obs.Incident.recorder ()) else None in
  let obs = Option.map Raid_obs.Incident.recorder_sink recorder in
  let cluster = Cluster.create ~settings:(Cluster.settings ?telemetry ?obs ()) ccfg in
  let engine = Cluster.engine cluster in
  let metrics = Cluster.metrics cluster in
  let rng = Rng.create seed in
  let workload_spec =
    match config.zipf_theta with
    | None -> Workload.Uniform { max_ops = config.max_ops; write_prob = config.write_prob }
    | Some theta ->
      Workload.Zipfian { max_ops = config.max_ops; write_prob = config.write_prob; theta }
  in
  let workload = Workload.create workload_spec ~num_items:config.items ~rng:(Rng.split rng) in
  let committed = ref 0 and aborted = ref 0 and submitted = ref 0 in
  let windows = Hashtbl.create 32 in
  let failed = ref false and recovered_once = ref false in
  let now_ms () = Vtime.to_ms (Engine.now engine) in
  let fail_due () =
    match config.failure with
    | Some f when (not !failed) && (not !recovered_once) && now_ms () >= f.fail_at_ms ->
      Some f.fail_site
    | _ -> None
  in
  let recover_due () =
    match config.failure with
    | Some f when !failed && now_ms () >= f.recover_at_ms -> Some f.fail_site
    | _ -> None
  in
  (* The operational set only changes at the staged failure/recovery
     (and a blocked recovery), so the candidate list is cached rather
     than rebuilt per transaction — an O(sites) allocation that dominated
     the driver at large site counts.  [Rng.choose] consumes one draw
     either way, so the stream is unchanged. *)
  let operational = ref [] in
  let refresh_operational () =
    operational :=
      List.filter
        (fun s -> not (Raid_core.Site.is_waiting (Cluster.site cluster s)))
        (Cluster.alive_sites cluster)
  in
  refresh_operational ();
  let pick_coordinator () =
    if !operational = [] then invalid_arg "Throughput: no operational site";
    Rng.choose rng !operational
  in
  (* Each window keeps its commit/abort tallies plus a snapshot of the
     cumulative protocol counters at its last recorded transaction; the
     snapshots are diffed into per-window activity once the run ends.
     Activity between two recorded windows (e.g. control traffic in a
     second with no completions) lands in the next recorded window. *)
  let record outcome =
    let window = int_of_float (now_ms () /. 1000.0) in
    let c, a =
      match Hashtbl.find_opt windows window with
      | Some (c, a, _, _, _, _) -> (c, a)
      | None -> (0, 0)
    in
    let c, a =
      if outcome.Metrics.committed then begin
        incr committed;
        (c + 1, a)
      end
      else begin
        incr aborted;
        (c, a + 1)
      end
    in
    Hashtbl.replace windows window
      ( c,
        a,
        metrics.Metrics.copier_requests,
        metrics.Metrics.faillocks_set,
        metrics.Metrics.faillocks_cleared,
        (Engine.counters engine).Engine.sent )
  in
  while now_ms () < config.duration_ms do
    (match fail_due () with
    | Some site ->
      Cluster.fail_site cluster site;
      failed := true;
      refresh_operational ()
    | None -> ());
    (match recover_due () with
    | Some site ->
      (match Cluster.recover_site cluster site with
      | `Recovered -> recovered_once := true
      | `Blocked -> ());
      failed := false;
      refresh_operational ()
    | None -> ());
    let id = Cluster.next_txn_id cluster in
    incr submitted;
    record (Cluster.submit cluster ~coordinator:(pick_coordinator ()) (Workload.next workload ~id))
  done;
  (match telemetry with
  | None -> ()
  | Some registry -> Raid_obs.Telemetry.sample_now registry ~at:(Engine.now engine));
  let counters = Engine.counters engine in
  {
    seed;
    submitted = !submitted;
    committed = !committed;
    aborted = !aborted;
    copier_requests = metrics.Metrics.copier_requests;
    faillocks_set = metrics.Metrics.faillocks_set;
    faillocks_cleared = metrics.Metrics.faillocks_cleared;
    virtual_ms = now_ms ();
    events = counters.Engine.delivered + counters.Engine.timer_fired;
    messages_sent = counters.Engine.sent;
    recovered = (match config.failure with None -> true | Some _ -> !recovered_once);
    incidents =
      (match recorder with None -> [] | Some r -> Raid_obs.Incident.incidents r);
    windows =
      (let raw =
         List.sort compare (Hashtbl.fold (fun w v acc -> (w, v) :: acc) windows [])
       in
       let prev = ref (0, 0, 0, 0) in
       List.map
         (fun (w, (c, a, cop, fs, fc, sent)) ->
           let pcop, pfs, pfc, psent = !prev in
           prev := (cop, fs, fc, sent);
           {
             w_start_s = w;
             w_committed = c;
             w_aborted = a;
             w_copiers = cop - pcop;
             w_faillocks_set = fs - pfs;
             w_faillocks_cleared = fc - pfc;
             w_messages = sent - psent;
           })
         raw);
  }

(* Multi-seed sweep: each seed is an independent pure run, so the batch
   fans out over the domain pool with bit-identical results for any -j. *)
let run_seeds ?domains ?(base_seed = 42) ?record_incidents ~seeds config =
  if seeds <= 0 then invalid_arg "Throughput: seeds must be positive";
  Pool.map ?domains
    (fun seed -> run ~seed ?record_incidents config)
    (List.init seeds (fun i -> base_seed + i))

let results_table ~config results =
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Steady-state throughput: %d sites, %d items, txn<=%d ops, P(write)=%.2f, %.0f \
            virtual ms%s%s%s"
           config.sites config.items config.max_ops config.write_prob config.duration_ms
           (match config.replication with
           | Raid_core.Config.Full -> ""
           | Raid_core.Config.Partial spec ->
             Printf.sprintf ", k=%d %s" spec.Raid_core.Placement.factor
               (Raid_core.Placement.sharding_to_string spec.Raid_core.Placement.sharding))
           (match config.zipf_theta with
           | None -> ""
           | Some theta -> Printf.sprintf ", zipf theta=%.2f" theta)
           (match config.failure with
           | None -> ", no failure"
           | Some f ->
             Printf.sprintf ", site %d down %.0f-%.0f ms" f.fail_site f.fail_at_ms
               f.recover_at_ms))
      [
        ("seed", Table.Right);
        ("committed", Table.Right);
        ("aborted", Table.Right);
        ("abort %", Table.Right);
        ("txns/vsec", Table.Right);
        ("copiers", Table.Right);
        ("events", Table.Right);
        ("recovered", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.seed;
          string_of_int r.committed;
          string_of_int r.aborted;
          Printf.sprintf "%.1f" (100.0 *. abort_rate r);
          Printf.sprintf "%.1f" (txns_per_vsec r);
          string_of_int r.copier_requests;
          string_of_int r.events;
          string_of_bool r.recovered;
        ])
    results;
  table

let summary results =
  let stat f = Stats.summarize (List.map f results) in
  ( stat txns_per_vsec,
    stat abort_rate,
    stat (fun r -> float_of_int r.events) )

let windows_csv r =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer
    "virtual_s,committed,aborted,copier_requests,faillocks_set,faillocks_cleared,messages_sent\n";
  List.iter
    (fun w ->
      Buffer.add_string buffer
        (Printf.sprintf "%d,%d,%d,%d,%d,%d,%d\n" w.w_start_s w.w_committed w.w_aborted
           w.w_copiers w.w_faillocks_set w.w_faillocks_cleared w.w_messages))
    r.windows;
  Buffer.contents buffer
