(** Concurrent transaction processing (the paper's "complete RAID"
    future-work direction, §5).

    The serial driver of {!Runner} processes one transaction at a time,
    as the paper did.  This driver keeps up to [concurrency] transactions
    in flight: it acquires each transaction's full lock set from the
    conservative strict-2PL table ({!Raid_core.Lock_manager}) before
    injecting it, so in-flight transactions never conflict, executions
    are conflict-serializable, and per-item version order is preserved
    (a transaction is additionally never started ahead of a {e
    conflicting} lower-numbered waiting transaction).

    The payoff is wall-clock (virtual-time) overlap: the makespan of a
    batch shrinks as the concurrency level grows until conflicts and the
    coordinator population saturate — measured by {!sweep}. *)

type result = {
  committed : int;
  aborted : int;
  lost : int;
      (** transactions whose coordinator crashed mid-flight; their locks
          are released and they are not retried (retrying would need the
          2PC termination protocol the paper's serial model sidesteps) *)
  makespan_ms : float;  (** virtual time from first injection to quiescence *)
  mean_txn_ms : float;  (** mean committed-coordinator elapsed time *)
  max_in_flight : int;  (** highest concurrency actually reached *)
  cluster : Raid_core.Cluster.t;
}

val run :
  ?seed:int ->
  ?concurrency:int ->
  ?txns:int ->
  ?churn:(int * [ `Fail of int | `Recover of int ]) list ->
  ?telemetry:Raid_obs.Telemetry.t ->
  config:Raid_core.Config.t ->
  workload:Raid_core.Workload.spec ->
  unit ->
  result
(** Run a batch of [txns] (default 200) generated transactions with up to
    [concurrency] (default 4) in flight, coordinators assigned round-robin
    over operational sites.

    [churn] injects failures into the running batch: [(n, `Fail s)] fails
    site [s] once [n] transactions have finished (committed, aborted or
    lost); [`Recover s] brings it back.  Transactions in flight at a
    crashed coordinator are counted as [lost]; transactions that had the
    crashed site as a participant abort through the normal Appendix-A
    branches and are re-admitted never (they count as [aborted]).

    [telemetry] additionally registers driver-level gauges
    ([raid_lock_table_locked], [raid_lock_queue_depth],
    [raid_lock_in_flight]) on top of the cluster instrumentation.
    @raise Invalid_argument on non-positive [concurrency] or [txns]. *)

type sweep_row = {
  level : int;
  sweep_makespan_ms : float;
  sweep_mean_txn_ms : float;
  speedup : float;  (** serial makespan / this makespan *)
}

val sweep :
  ?domains:int ->
  ?seed:int ->
  ?levels:int list ->
  ?txns:int ->
  ?num_sites:int ->
  unit ->
  sweep_row list
(** One independent simulation per concurrency level, fanned out over
    [?domains] {!Raid_par.Pool} domains. *)

val sweep_table : sweep_row list -> Raid_util.Table.t
