module Cluster = Raid_core.Cluster
module Workload = Raid_core.Workload
module Metrics = Raid_core.Metrics
module Invariant = Raid_core.Invariant
module Rng = Raid_util.Rng

type txn_record = {
  index : int;
  outcome : Metrics.outcome;
  faillocks_per_site : int array;
  cumulative_aborts : int;
  cumulative_copiers : int;
}

type result = {
  cluster : Cluster.t;
  records : txn_record list;
  committed : int;
  aborted : int;
  operational_at_commit : (int, int list) Hashtbl.t;
}

type state = {
  scenario : Scenario.t;
  cluster : Cluster.t;
  workload : Workload.t;
  rng : Rng.t;  (* coordinator choice; independent of the workload stream *)
  mutable policy : Scenario.coordinator_policy;
  mutable round_robin_cursor : int;
  mutable records_rev : txn_record list;
  mutable committed : int;
  mutable aborted : int;
  mutable copiers : int;
  operational_at_commit : (int, int list) Hashtbl.t;
}

let choose_coordinator state =
  let operational =
    List.filter
      (fun s -> not (Raid_core.Site.is_waiting (Cluster.site state.cluster s)))
      (Cluster.alive_sites state.cluster)
  in
  if operational = [] then invalid_arg "Runner: no operational site to coordinate";
  match state.policy with
  | Scenario.Fixed site ->
    if List.mem site operational then site
    else invalid_arg (Printf.sprintf "Runner: fixed coordinator %d is not operational" site)
  | Scenario.Uniform_random -> Rng.choose state.rng operational
  | Scenario.Weighted weights ->
    let available = List.filter (fun (s, w) -> w > 0.0 && List.mem s operational) weights in
    if available = [] then Rng.choose state.rng operational
    else Rng.choose_weighted state.rng available
  | Scenario.Round_robin ->
    let n = List.length operational in
    let pick = List.nth operational (state.round_robin_cursor mod n) in
    state.round_robin_cursor <- state.round_robin_cursor + 1;
    pick

let run_one_txn state =
  let id = Cluster.next_txn_id state.cluster in
  let txn = Workload.next state.workload ~id in
  let coordinator = choose_coordinator state in
  let outcome = Cluster.submit state.cluster ~coordinator txn in
  if outcome.Metrics.committed then begin
    state.committed <- state.committed + 1;
    Hashtbl.replace state.operational_at_commit id (Cluster.alive_sites state.cluster)
  end
  else state.aborted <- state.aborted + 1;
  state.copiers <- state.copiers + outcome.Metrics.copier_requests;
  let faillocks_per_site = Cluster.faillock_counts state.cluster in
  state.records_rev <-
    {
      index = id;
      outcome;
      faillocks_per_site;
      cumulative_aborts = state.aborted;
      cumulative_copiers = state.copiers;
    }
    :: state.records_rev

let check state =
  match Invariant.all state.cluster with
  | Ok () -> ()
  | Error message -> failwith (Printf.sprintf "Runner: invariant violated: %s" message)

let run_action state ~check_invariants action =
  (match action with
  | Scenario.Run_txns n ->
    for _ = 1 to n do
      run_one_txn state
    done
  | Scenario.Fail site -> Cluster.fail_site state.cluster site
  | Scenario.Recover site -> ignore (Cluster.recover_site state.cluster site)
  | Scenario.Set_policy policy -> state.policy <- policy
  | Scenario.Run_until_recovered { site; max_txns } ->
    let rec loop remaining =
      if remaining > 0 && Cluster.faillock_count_for state.cluster site > 0 then begin
        run_one_txn state;
        loop (remaining - 1)
      end
    in
    loop max_txns
  | Scenario.Run_until_consistent { max_txns } ->
    let rec loop remaining =
      if remaining > 0 && not (Cluster.fully_consistent state.cluster) then begin
        run_one_txn state;
        loop (remaining - 1)
      end
    in
    loop max_txns);
  if check_invariants then check state

let run ?(check_invariants = true) ?(trace = false) ?obs ?telemetry (scenario : Scenario.t) =
  let cluster =
    Cluster.create
      ~settings:(Cluster.settings ~detection:scenario.Scenario.detection ~trace ?obs ?telemetry ())
      scenario.Scenario.config
  in
  let rng = Rng.create scenario.Scenario.seed in
  let workload_rng = Rng.split rng in
  let workload =
    Workload.create scenario.Scenario.workload
      ~num_items:scenario.Scenario.config.Raid_core.Config.num_items ~rng:workload_rng
  in
  let state =
    {
      scenario;
      cluster;
      workload;
      rng;
      policy = scenario.Scenario.policy;
      round_robin_cursor = 0;
      records_rev = [];
      committed = 0;
      aborted = 0;
      copiers = 0;
      operational_at_commit = Hashtbl.create 64;
    }
  in
  List.iter (run_action state ~check_invariants) scenario.Scenario.actions;
  {
    cluster;
    records = List.rev state.records_rev;
    committed = state.committed;
    aborted = state.aborted;
    operational_at_commit = state.operational_at_commit;
  }

let series (result : result) ~site =
  List.map
    (fun r -> (float_of_int r.index, float_of_int r.faillocks_per_site.(site)))
    result.records

let abort_count (result : result) = result.aborted

let final_faillocks (result : result) ~site = Cluster.faillock_count_for result.cluster site
