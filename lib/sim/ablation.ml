module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Workload = Raid_core.Workload
module Metrics = Raid_core.Metrics
module Txn = Raid_core.Txn
module Table = Raid_util.Table
module Rng = Raid_util.Rng
module Stats = Raid_util.Stats
module Protocol = Raid_baselines.Protocol

type table = Table.t

let paper_workload = Workload.Uniform { max_ops = 5; write_prob = 0.5 }

let recovery_length result =
  match List.rev result.Runner.records with
  | [] -> 0
  | last :: _ -> max 0 (last.Runner.index - 100)

(* {2 A1: two-step recovery} *)

type recovery_row = {
  policy_label : string;
  txns_to_recover : int;
  copier_requests : int;
  batch_rounds : int;
}

let two_step_recovery ?(seed = 21) () =
  let run ~label ~recovery =
    let config = Config.make ~recovery ~num_sites:2 ~num_items:50 () in
    let scenario =
      Scenario.make ~policy:(Scenario.Fixed 1) ~seed ~config ~workload:paper_workload
        [
          Scenario.Fail 0;
          Scenario.Run_txns 100;
          Scenario.Recover 0;
          Scenario.Set_policy (Scenario.Weighted [ (0, 0.5); (1, 0.5) ]);
          Scenario.Run_until_recovered { site = 0; max_txns = 1500 };
        ]
    in
    let result = Runner.run scenario in
    let metrics = Cluster.metrics result.Runner.cluster in
    {
      policy_label = label;
      txns_to_recover = recovery_length result;
      copier_requests = metrics.Metrics.copier_requests;
      batch_rounds = metrics.Metrics.batch_copier_rounds;
    }
  in
  let rows =
    [
      run ~label:"on-demand (paper)" ~recovery:Config.On_demand;
      run ~label:"two-step, threshold 30%, batch 5"
        ~recovery:(Config.Two_step { threshold = 0.3; batch_size = 5 });
      run ~label:"two-step, immediate batch (threshold 100%), batch 10"
        ~recovery:(Config.Two_step { threshold = 1.0; batch_size = 10 });
    ]
  in
  let table =
    Table.create ~title:"Ablation A1: two-step recovery (paper \xc2\xa73.2 proposal)"
      [
        ("recovery policy", Table.Left);
        ("txns to full recovery", Table.Right);
        ("copier requests", Table.Right);
        ("batch rounds", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.policy_label;
          string_of_int r.txns_to_recover;
          string_of_int r.copier_requests;
          string_of_int r.batch_rounds;
        ])
    rows;
  (rows, table)

(* {2 A2: read/write ratio} *)

type rw_row = {
  write_prob : float;
  peak_locked : int;
  rw_txns_to_recover : int;
  rw_copiers : int;
}

let rw_ratio ?(seed = 22) ?(write_probs = [ 0.1; 0.25; 0.5; 0.75; 0.9 ]) () =
  let run write_prob =
    let config = Config.make ~num_sites:2 ~num_items:50 () in
    let scenario =
      Scenario.make ~policy:(Scenario.Fixed 1) ~seed ~config
        ~workload:(Workload.Uniform { max_ops = 5; write_prob })
        [
          Scenario.Fail 0;
          Scenario.Run_txns 100;
          Scenario.Recover 0;
          Scenario.Set_policy (Scenario.Weighted [ (0, 0.5); (1, 0.5) ]);
          Scenario.Run_until_recovered { site = 0; max_txns = 4000 };
        ]
    in
    let result = Runner.run scenario in
    let peak =
      List.fold_left
        (fun acc r -> if r.Runner.index <= 100 then max acc r.Runner.faillocks_per_site.(0) else acc)
        0 result.Runner.records
    in
    let metrics = Cluster.metrics result.Runner.cluster in
    {
      write_prob;
      peak_locked = peak;
      rw_txns_to_recover = recovery_length result;
      rw_copiers = metrics.Metrics.copier_requests;
    }
  in
  let rows = List.map run write_probs in
  let table =
    Table.create
      ~title:"Ablation A2: read/write ratio (paper \xc2\xa75 discussion; paper uses P(write)=0.5)"
      [
        ("P(write)", Table.Right);
        ("locks after 100-txn outage", Table.Right);
        ("txns to full recovery", Table.Right);
        ("copier requests", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Printf.sprintf "%.2f" r.write_prob;
          string_of_int r.peak_locked;
          string_of_int r.rw_txns_to_recover;
          string_of_int r.rw_copiers;
        ])
    rows;
  (rows, table)

(* {2 A3: coordinator placement during recovery} *)

type placement_row = {
  recovering_weight : float;
  pl_txns_to_recover : int;
  pl_copiers : int;
}

let coordinator_placement ?(seed = 15) ?(weights = [ 0.0; 0.05; 0.25; 0.5; 1.0 ]) () =
  let run recovering_weight =
    let e2 = Experiment2.run ~seed ~recovering_weight () in
    {
      recovering_weight;
      pl_txns_to_recover = e2.Experiment2.stats.Experiment2.txns_to_recover;
      pl_copiers = e2.Experiment2.stats.Experiment2.copier_requests;
    }
  in
  let rows = List.map run weights in
  let table =
    Table.create
      ~title:
        "Ablation A3: share of recovery-period transactions routed to the recovering site \
         (Figure-1 routing inference)"
      [
        ("weight of recovering site", Table.Right);
        ("txns to full recovery", Table.Right);
        ("copier requests", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Printf.sprintf "%.2f" r.recovering_weight;
          string_of_int r.pl_txns_to_recover;
          string_of_int r.pl_copiers;
        ])
    rows;
  (rows, table)

(* {2 A4: embedding fail-lock clears in the commit protocol} *)

type embed_row = { embed_label : string; copier_txn_ms : float; specials_sent : int }

let copier_trials ~config ~seed ~trials =
  let cluster = Cluster.create config in
  let rng = Rng.create seed in
  for _ = 1 to trials do
    let locked_item = Rng.int rng 50 in
    Cluster.fail_site cluster 3;
    let id = Cluster.next_txn_id cluster in
    ignore (Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Write locked_item ]));
    (match Cluster.recover_site cluster 3 with
    | `Recovered -> ()
    | `Blocked -> failwith "Ablation: recovery blocked");
    let tail =
      List.init
        (Rng.int_in rng 1 10 - 1)
        (fun _ ->
          let item = Rng.int rng 50 in
          if Rng.bool rng then Txn.Write item else Txn.Read item)
    in
    let id = Cluster.next_txn_id cluster in
    ignore (Cluster.submit cluster ~coordinator:3 (Txn.make ~id (Txn.Read locked_item :: tail)))
  done;
  Cluster.metrics cluster

let embed_clears ?(seed = 23) ?(trials = 100) () =
  let run ~label ~embed =
    let config = Config.make ~embed_clears:embed ~num_sites:4 ~num_items:50 () in
    let metrics = copier_trials ~config ~seed ~trials in
    {
      embed_label = label;
      copier_txn_ms = Stats.mean metrics.Metrics.coordinator_copier_ms;
      specials_sent = metrics.Metrics.clear_specials_sent;
    }
  in
  let rows =
    [
      run ~label:"separate special transactions (paper)" ~embed:false;
      run ~label:"clears embedded in 2PC (paper \xc2\xa72.2.3 suggestion)" ~embed:true;
    ]
  in
  let table =
    Table.create ~title:"Ablation A4: clearing fail-locks after a copier transaction"
      [
        ("implementation", Table.Left);
        ("copier txn time (ms)", Table.Right);
        ("special txns sent", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ r.embed_label; Printf.sprintf "%.1f" r.copier_txn_ms; string_of_int r.specials_sent ])
    rows;
  (rows, table)

(* {2 A5: protocol availability comparison} *)

type protocol_row = {
  protocol_label : string;
  committed : int;
  aborted : int;
  avg_txn_ms : float;
  messages : int;
}

let protocol_availability ?(seed = 24) ?(txns = 200) () =
  let num_sites = 4 and num_items = 50 in
  let fail_at = (txns / 4) + 1 and recover_at = (3 * txns / 4) + 1 in
  let make_stream () =
    let rng = Rng.create seed in
    Workload.create paper_workload ~num_items ~rng
  in
  let rowaa () =
    let config = Config.make ~num_sites ~num_items () in
    let cluster = Cluster.create config in
    let stream = make_stream () in
    let committed = ref 0 and aborted = ref 0 and elapsed = ref [] in
    let sent_before = (Raid_net.Engine.counters (Cluster.engine cluster)).Raid_net.Engine.sent in
    for i = 1 to txns do
      if i = fail_at then Cluster.fail_site cluster 3;
      if i = recover_at then ignore (Cluster.recover_site cluster 3);
      let id = Cluster.next_txn_id cluster in
      let outcome = Cluster.submit cluster ~coordinator:0 (Workload.next stream ~id) in
      if outcome.Metrics.committed then begin
        incr committed;
        elapsed := Raid_net.Vtime.to_ms outcome.Metrics.elapsed :: !elapsed
      end
      else incr aborted
    done;
    let sent_after = (Raid_net.Engine.counters (Cluster.engine cluster)).Raid_net.Engine.sent in
    {
      protocol_label = "ROWAA + fail-locks (this paper)";
      committed = !committed;
      aborted = !aborted;
      avg_txn_ms = Stats.mean !elapsed;
      messages = sent_after - sent_before - txns;
    }
  in
  let baseline ~label kind =
    let t = Protocol.create kind ~num_sites ~num_items () in
    let stream = make_stream () in
    let committed = ref 0 and aborted = ref 0 and elapsed = ref [] and messages = ref 0 in
    for i = 1 to txns do
      if i = fail_at then Protocol.fail_site t 3;
      if i = recover_at then Protocol.recover_site t 3;
      let outcome = Protocol.submit t ~coordinator:0 (Workload.next stream ~id:i) in
      messages := !messages + outcome.Protocol.messages;
      if outcome.Protocol.committed then begin
        incr committed;
        elapsed := Raid_net.Vtime.to_ms outcome.Protocol.elapsed :: !elapsed
      end
      else incr aborted
    done;
    {
      protocol_label = label;
      committed = !committed;
      aborted = !aborted;
      avg_txn_ms = Stats.mean !elapsed;
      messages = !messages;
    }
  in
  let rows =
    [
      rowaa ();
      baseline ~label:"strict read-one/write-all" Protocol.Strict_rowa;
      baseline ~label:"majority quorum (r=w=3)" (Protocol.majority ~num_sites);
    ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation A5: availability under one site failure (txns %d-%d of %d with a site \
            down)"
           fail_at (recover_at - 1) txns)
      [
        ("protocol", Table.Left);
        ("committed", Table.Right);
        ("aborted", Table.Right);
        ("avg txn (ms)", Table.Right);
        ("messages", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.protocol_label;
          string_of_int r.committed;
          string_of_int r.aborted;
          Printf.sprintf "%.1f" r.avg_txn_ms;
          string_of_int r.messages;
        ])
    rows;
  (rows, table)

(* {2 A6: partial replication and control transaction type 3} *)

type partial_row = {
  spawn_label : string;
  pr_committed : int;
  pr_aborted : int;
  backups_spawned : int;
}

let partial_replication ?(seed = 25) () =
  let num_sites = 4 and num_items = 50 in
  (* two copies per item, on consecutive sites *)
  let spec =
    Raid_core.Placement.spec ~sharding:Raid_core.Placement.Modular ~factor:2 ()
  in
  let run ~label ~spawn_backups =
    let config =
      Config.make ~replication:(Config.Partial spec) ~spawn_backups ~num_sites ~num_items ()
    in
    let scenario =
      Scenario.make ~policy:(Scenario.Fixed 2) ~seed ~config ~workload:paper_workload
        [
          Scenario.Fail 0;
          Scenario.Run_txns 60;
          Scenario.Fail 1;
          Scenario.Run_txns 60;
          Scenario.Recover 0;
          Scenario.Recover 1;
          Scenario.Run_txns 30;
        ]
    in
    let result = Runner.run scenario in
    let metrics = Cluster.metrics result.Runner.cluster in
    {
      spawn_label = label;
      pr_committed = result.Runner.committed;
      pr_aborted = result.Runner.aborted;
      backups_spawned = metrics.Metrics.control3_backups;
    }
  in
  let rows =
    [
      run ~label:"no backups (types 1-2 only)" ~spawn_backups:false;
      run ~label:"control type 3 backup spawning" ~spawn_backups:true;
    ]
  in
  let table =
    Table.create
      ~title:
        "Ablation A6: partial replication (2 copies/item), overlapping failures of both \
         holders (paper \xc2\xa73.2 control-type-3 proposal)"
      [
        ("configuration", Table.Left);
        ("committed", Table.Right);
        ("aborted", Table.Right);
        ("backups spawned", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.spawn_label;
          string_of_int r.pr_committed;
          string_of_int r.pr_aborted;
          string_of_int r.backups_spawned;
        ])
    rows;
  (rows, table)

(* {2 A8: communication delays} *)

type latency_row = { latency_ms : float; lat_txn_ms : float; lat_control1_ms : float }

let communication_delays ?(seed = 26) ?(latencies_ms = [ 1.0; 9.0; 25.0; 50.0; 100.0 ]) () =
  let run latency_ms =
    let cost =
      { Raid_core.Cost_model.calibrated with
        Raid_core.Cost_model.message_latency = Raid_net.Vtime.of_ms_f latency_ms
      }
    in
    let config = Config.make ~cost ~num_sites:4 ~num_items:50 () in
    let actions =
      List.concat_map
        (fun _ ->
          [
            Scenario.Run_txns 5;
            Scenario.Fail 3;
            Scenario.Run_txns 2;
            Scenario.Recover 3;
            Scenario.Run_until_recovered { site = 3; max_txns = 80 };
          ])
        (List.init 8 Fun.id)
    in
    let scenario =
      Scenario.make ~policy:(Scenario.Fixed 0) ~seed ~config
        ~workload:(Workload.Uniform { max_ops = 10; write_prob = 0.5 })
        actions
    in
    let result = Runner.run scenario in
    let metrics = Cluster.metrics result.Runner.cluster in
    let mean = function [] -> Float.nan | samples -> Stats.mean samples in
    {
      latency_ms;
      lat_txn_ms = mean metrics.Metrics.coordinator_ms;
      lat_control1_ms = mean metrics.Metrics.control1_recovering_ms;
    }
  in
  let rows = List.map run latencies_ms in
  let table =
    Table.create
      ~title:
        "Ablation A8: communication delays across machines (paper §5 future work; the paper measured 9 ms)"
      [
        ("message latency (ms)", Table.Right);
        ("db txn at coordinator (ms)", Table.Right);
        ("control-1 at recovering site (ms)", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Printf.sprintf "%.0f" r.latency_ms;
          Printf.sprintf "%.1f" r.lat_txn_ms;
          Printf.sprintf "%.1f" r.lat_control1_ms;
        ])
    rows;
  (rows, table)

(* {2 A9: benchmark workloads} *)

type workload_row = {
  workload_label : string;
  wl_peak_locked : int;
  wl_txns_to_recover : int;
  wl_copiers : int;
  wl_aborted : int;
}

let benchmark_workloads ?(seed = 27) () =
  let run (workload_label, workload) =
    let config = Config.make ~num_sites:2 ~num_items:50 () in
    let scenario =
      Scenario.make ~policy:(Scenario.Fixed 1) ~seed ~config ~workload
        [
          Scenario.Fail 0;
          Scenario.Run_txns 100;
          Scenario.Recover 0;
          Scenario.Set_policy (Scenario.Weighted [ (0, 0.5); (1, 0.5) ]);
          Scenario.Run_until_recovered { site = 0; max_txns = 4000 };
        ]
    in
    let result = Runner.run scenario in
    let peak =
      List.fold_left
        (fun acc r -> if r.Runner.index <= 100 then max acc r.Runner.faillocks_per_site.(0) else acc)
        0 result.Runner.records
    in
    let metrics = Cluster.metrics result.Runner.cluster in
    {
      workload_label;
      wl_peak_locked = peak;
      wl_txns_to_recover = recovery_length result;
      wl_copiers = metrics.Metrics.copier_requests;
      wl_aborted = result.Runner.aborted;
    }
  in
  let rows =
    List.map run
      [
        ("uniform, P(write)=0.5 (the paper's)", Workload.Uniform { max_ops = 5; write_prob = 0.5 });
        ( "ET1 / DebitCredit [Anon85]",
          Workload.Et1 { branches = 2; tellers_per_branch = 4; accounts_per_branch = 20 } );
        ( "Wisconsin-style scan/update [Bitt83]",
          Workload.Wisconsin { scan_length = 6; update_ops = 2; scan_prob = 0.5 } );
      ]
  in
  let table =
    Table.create
      ~title:
        "Ablation A9: benchmark workloads on the Experiment-2 schedule (paper §5 future work)"
      [
        ("workload", Table.Left);
        ("locks after outage", Table.Right);
        ("txns to recover", Table.Right);
        ("copiers", Table.Right);
        ("aborted", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.workload_label;
          string_of_int r.wl_peak_locked;
          string_of_int r.wl_txns_to_recover;
          string_of_int r.wl_copiers;
          string_of_int r.wl_aborted;
        ])
    rows;
  (rows, table)

(* Each ablation is an independent deterministic study; the grid fans
   out one domain per study. *)
let all_tables ?domains ?(seed = 21) () =
  Raid_par.Pool.map ?domains
    (fun study -> study ())
    [
      (fun () -> snd (two_step_recovery ~seed ()));
      (fun () -> snd (rw_ratio ~seed:(seed + 1) ()));
      (fun () -> snd (coordinator_placement ()));
      (fun () -> snd (embed_clears ~seed:(seed + 2) ()));
      (fun () -> snd (protocol_availability ~seed:(seed + 3) ()));
      (fun () -> snd (partial_replication ~seed:(seed + 4) ()));
      (fun () -> snd (communication_delays ~seed:(seed + 5) ()));
      (fun () -> snd (benchmark_workloads ~seed:(seed + 6) ()));
    ]
