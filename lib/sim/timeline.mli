(** Message-timeline rendering for protocol traces.

    Create a cluster with [Cluster.create ~trace:true] and this module
    renders the engine's delivery trace as a readable sequence chart —
    the debugging view a mini-RAID operator would have had on the
    managing site's console.  Used by the docs, the examples and the
    golden-trace conformance tests. *)

val entries :
  Raid_core.Cluster.t -> Raid_core.Message.t Raid_net.Engine.trace_entry list
(** The cluster engine's chronological trace (empty unless the cluster
    was created with [~trace:true]). *)

val describe_entry : Raid_core.Message.t Raid_net.Engine.trace_entry -> string
(** One line: ["  18.00 ms  0 -> 1   prepare(1,2 writes)"]; failed
    deliveries are marked ["!!"]. *)

val render :
  ?since:Raid_net.Vtime.t ->
  ?limit:int ->
  Raid_core.Cluster.t ->
  string
(** Render the trace (optionally only entries at or after [since], and at
    most [limit] lines, default unlimited). *)

val message_kinds :
  Raid_core.Cluster.t -> string list
(** Just the message descriptions of {e delivered} entries, in order —
    the skeleton the golden-trace tests compare against. *)
