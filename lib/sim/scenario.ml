type coordinator_policy =
  | Fixed of int
  | Uniform_random
  | Weighted of (int * float) list
  | Round_robin

type action =
  | Run_txns of int
  | Fail of int
  | Recover of int
  | Set_policy of coordinator_policy
  | Run_until_recovered of { site : int; max_txns : int }
  | Run_until_consistent of { max_txns : int }

type t = {
  config : Raid_core.Config.t;
  detection : Raid_core.Cluster.detection;
  workload : Raid_core.Workload.spec;
  policy : coordinator_policy;
  seed : int;
  actions : action list;
}

let make ?(detection = Raid_core.Cluster.Immediate) ?(policy = Uniform_random) ?(seed = 42)
    ~config ~workload actions =
  { config; detection; workload; policy; seed; actions }
