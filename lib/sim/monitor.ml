module Telemetry = Raid_obs.Telemetry
module Prom = Raid_obs.Prom
module Trace = Raid_obs.Trace
module Incident = Raid_obs.Incident
module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Workload = Raid_core.Workload
module Engine = Raid_net.Engine
module Vtime = Raid_net.Vtime

(* A representative trajectory on the paper's Experiment-1 configuration
   (4 sites, 50 items, transactions of up to 10 operations, §2.1):
   steady load, a failure, degraded processing, on-demand recovery and a
   settle tail.  Experiment 1 proper measures isolated overheads, so it
   exposes no scenario of its own; this is the telemetry-facing
   equivalent on the same configuration. *)
let exp1_scenario ?(seed = 42) () =
  let config = Config.make ~num_sites:4 ~num_items:50 () in
  Scenario.make ~seed ~config
    ~workload:(Workload.Uniform { max_ops = 10; write_prob = 0.5 })
    [
      Scenario.Run_txns 60;
      Scenario.Fail 0;
      Scenario.Run_txns 60;
      Scenario.Recover 0;
      Scenario.Run_until_recovered { site = 0; max_txns = 400 };
      Scenario.Run_txns 20;
    ]

let scenarios =
  ("exp1",
   "Experiment-1 configuration (4 sites, 50 items, txn<=10 ops): fail, degrade, recover, settle")
  :: Tracing.scenarios

let scenario_of_name ?seed name =
  match name with
  | "exp1" -> Ok (exp1_scenario ?seed ())
  | _ -> (
    match Tracing.scenario_of_name ?seed name with
    | Ok scenario -> Ok scenario
    | Error _ ->
      Error
        (Printf.sprintf "unknown scenario %S (available: %s)" name
           (String.concat ", " (List.map fst scenarios))))

type output = {
  registry : Telemetry.t;
  result : Runner.result;
  trace : Trace.t;
  recorder : Incident.recorder;
}

(* MTTRs here are virtual milliseconds-to-seconds; the buckets span the
   sub-millisecond copier refreshes up to multi-second blocked
   recoveries. *)
let recovery_phase_buckets =
  [ 0.0001; 0.00025; 0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0 ]

(* Wire the recovery observatory into a registry: one
   [raid_recovery_phase_seconds] histogram per incident phase (observed
   the moment an incident completes) and a dropped-entry counter over
   the ring collector.  Returns the sink to run the cluster with and
   the recorder for post-run timeline queries. *)
let attach_observatory registry collector =
  let histograms =
    List.map
      (fun phase ->
        ( phase,
          Telemetry.histogram registry "raid_recovery_phase_seconds"
            ~labels:[ ("phase", Incident.phase_name phase) ]
            ~buckets:recovery_phase_buckets
            ~help:"Recovery incident phase durations, by phase (virtual seconds)" ))
      Incident.all_phases
  in
  let recorder =
    Incident.recorder
      ~on_complete:(fun incident ->
        List.iter
          (fun (phase, histogram) ->
            Telemetry.observe histogram
              (Vtime.to_ms (Incident.phase_duration incident phase) /. 1000.0))
          histograms)
      ()
  in
  Telemetry.polled_counter registry "raid_trace_dropped_total"
    ~help:"Trace entries dropped by the ring collector (oldest-first)" (fun () ->
      float_of_int (Trace.dropped collector));
  (Trace.tee [ Trace.sink collector; Incident.recorder_sink recorder ], recorder)

let run ?(sample = Vtime.of_ms 100) scenario =
  let registry = Telemetry.create ~interval:sample () in
  let collector = Trace.create () in
  let obs, recorder = attach_observatory registry collector in
  let result = Runner.run ~obs ~telemetry:registry scenario in
  (* One final point at the quiescent end time, so every series covers
     the whole run even when it ends between interval boundaries. *)
  Telemetry.sample_now registry ~at:(Engine.now (Cluster.engine result.Runner.cluster));
  { registry; result; trace = collector; recorder }

let incidents output = Incident.incidents output.recorder
let prom output = Prom.render output.registry
let csv output = Telemetry.to_csv output.registry

let render ~format output =
  match format with `Prom -> prom output | `Csv -> csv output
