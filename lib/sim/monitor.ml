module Telemetry = Raid_obs.Telemetry
module Prom = Raid_obs.Prom
module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Workload = Raid_core.Workload
module Engine = Raid_net.Engine
module Vtime = Raid_net.Vtime

(* A representative trajectory on the paper's Experiment-1 configuration
   (4 sites, 50 items, transactions of up to 10 operations, §2.1):
   steady load, a failure, degraded processing, on-demand recovery and a
   settle tail.  Experiment 1 proper measures isolated overheads, so it
   exposes no scenario of its own; this is the telemetry-facing
   equivalent on the same configuration. *)
let exp1_scenario ?(seed = 42) () =
  let config = Config.make ~num_sites:4 ~num_items:50 () in
  Scenario.make ~seed ~config
    ~workload:(Workload.Uniform { max_ops = 10; write_prob = 0.5 })
    [
      Scenario.Run_txns 60;
      Scenario.Fail 0;
      Scenario.Run_txns 60;
      Scenario.Recover 0;
      Scenario.Run_until_recovered { site = 0; max_txns = 400 };
      Scenario.Run_txns 20;
    ]

let scenarios =
  ("exp1",
   "Experiment-1 configuration (4 sites, 50 items, txn<=10 ops): fail, degrade, recover, settle")
  :: Tracing.scenarios

let scenario_of_name ?seed name =
  match name with
  | "exp1" -> Ok (exp1_scenario ?seed ())
  | _ -> (
    match Tracing.scenario_of_name ?seed name with
    | Ok scenario -> Ok scenario
    | Error _ ->
      Error
        (Printf.sprintf "unknown scenario %S (available: %s)" name
           (String.concat ", " (List.map fst scenarios))))

type output = {
  registry : Telemetry.t;
  result : Runner.result;
}

let run ?(sample = Vtime.of_ms 100) scenario =
  let registry = Telemetry.create ~interval:sample () in
  let result = Runner.run ~telemetry:registry scenario in
  (* One final point at the quiescent end time, so every series covers
     the whole run even when it ends between interval boundaries. *)
  Telemetry.sample_now registry ~at:(Engine.now (Cluster.engine result.Runner.cluster));
  { registry; result }

let prom output = Prom.render output.registry
let csv output = Telemetry.to_csv output.registry

let render ~format output =
  match format with `Prom -> prom output | `Csv -> csv output
