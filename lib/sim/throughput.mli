(** Steady-state throughput measurement (beyond the paper's scale).

    The paper's experiments measure costs around a single failure and
    recovery at 4 sites and 50 items; this layer measures {e sustained}
    load on a configurable cluster: a serial open-loop transaction stream
    (arrivals never adapt to outcomes) runs for a fixed virtual duration
    with an optional failure + recovery at absolute virtual times mid-run.
    The deterministic result reports committed transactions per virtual
    second, the abort rate, and the host-side event count — the events/sec
    rate is computed by the caller from its own wall clock so the
    simulation output stays bit-identical across hosts and [-j] values. *)

type failure = { fail_site : int; fail_at_ms : float; recover_at_ms : float }

type config = {
  sites : int;
  items : int;
  max_ops : int;
  write_prob : float;
  duration_ms : float;  (** virtual run length *)
  failure : failure option;
  replication : Raid_core.Config.replication;
  zipf_theta : float option;  (** hot-spot skew; [None] keeps the uniform draw *)
}

val make_config :
  ?sites:int ->
  ?items:int ->
  ?max_ops:int ->
  ?write_prob:float ->
  ?duration_ms:float ->
  ?failure:failure ->
  ?replication:Raid_core.Config.replication ->
  ?zipf_theta:float ->
  unit ->
  config
(** Defaults: 16 sites, 500 items, txn <= 5 ops, P(write) 0.5, 10 000
    virtual ms, no failure, full replication, uniform items.
    @raise Invalid_argument on non-positive sizes/duration, an
    out-of-range [fail_site], or [recover_at_ms <= fail_at_ms]. *)

val default_failure : sites:int -> duration_ms:float -> failure
(** Site 0 down from 1/5 to 1/2 of the duration — computed once into
    absolute times, so extending the duration afterwards still yields a
    prefix-compatible schedule. *)

type window = {
  w_start_s : int;  (** window start, in whole virtual seconds *)
  w_committed : int;
  w_aborted : int;
  w_copiers : int;  (** copier transactions requested in this window *)
  w_faillocks_set : int;
  w_faillocks_cleared : int;
  w_messages : int;  (** messages submitted in this window *)
}
(** One virtual second of activity.  Commit/abort counts are exact per
    window; the protocol counters are cumulative snapshots at each
    window's last completed transaction, diffed between consecutive
    {e recorded} windows — activity in a second with no completions
    lands in the next recorded window. *)

type result = {
  seed : int;
  submitted : int;
  committed : int;
  aborted : int;
  copier_requests : int;
  faillocks_set : int;
  faillocks_cleared : int;
  virtual_ms : float;
  events : int;  (** messages delivered + timers fired *)
  messages_sent : int;
  recovered : bool;
  windows : window list;  (** ascending start time *)
  incidents : Raid_obs.Incident.t list;
      (** recovery timelines of the staged failure; empty unless the run
          was started with [record_incidents] *)
}

val run :
  ?seed:int -> ?telemetry:Raid_obs.Telemetry.t -> ?record_incidents:bool -> config -> result
(** One deterministic run: a pure function of [seed] and [config].
    [telemetry] is instrumented over the cluster
    ({!Raid_core.Cluster.create}) and sampled in virtual time as the
    stream runs, with a final sample at the end; it observes the run
    without changing any result field.  [record_incidents] (default
    false) attaches an {!Raid_obs.Incident.recorder} and fills
    [result.incidents]; like telemetry it observes without perturbing
    the virtual-time results. *)

val run_seeds :
  ?domains:int -> ?base_seed:int -> ?record_incidents:bool -> seeds:int -> config -> result list
(** [seeds] independent runs ([base_seed], [base_seed+1], ...) fanned out
    over the domain pool; result order and contents are bit-identical for
    any domain count. *)

val txns_per_vsec : result -> float
(** Committed transactions per virtual second. *)

val abort_rate : result -> float
(** Aborted / (committed + aborted); 0 on an empty run. *)

val events_per_sec : wall_s:float -> result -> float
(** Host-side events per wall-clock second; the caller measures the wall
    time (keeps [result] deterministic). *)

val results_table : config:config -> result list -> Raid_util.Table.t

val summary :
  result list -> Raid_util.Stats.summary * Raid_util.Stats.summary * Raid_util.Stats.summary
(** (txns/vsec, abort rate, events) across runs. *)

val windows_csv : result -> string
(** The per-virtual-second trajectory as CSV with header
    [virtual_s,committed,aborted,copier_requests,faillocks_set,faillocks_cleared,messages_sent]. *)
