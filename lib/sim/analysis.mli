(** Closed-form model of fail-lock dynamics.

    The paper observes (§3.1.2) that "the rate at which fail-locks are
    cleared is directly related to the percentage of data items
    fail-locked" — clearing is a coupon-collector process.  This module
    derives the expected curves from first principles and compares them
    with the simulation, closing the loop between the analytical and the
    experimental view of the protocol:

    - An operation writes one specific item with probability
      [write_prob / num_items]; over a transaction of size uniform in
      [1, max_ops], a given item receives at least one write with
      probability {!item_write_probability} [q].
    - During an outage, locks accumulate as
      [L(n) = I (1 - (1-q)^n)].
    - During a writes-driven recovery, the expected number of
      transactions to go from [j] to [j-1] locked items is
      [1 / (1 - (1-q)^j)], so clearing the last few locks dominates —
      exactly Figure 1's long tail. *)

val item_write_probability : num_items:int -> max_ops:int -> write_prob:float -> float
(** [q] above. *)

val expected_locked_after : q:float -> num_items:int -> txns:int -> float
(** Expected fail-locked items after an outage of [txns] transactions. *)

val expected_txns_to_clear : q:float -> from_locks:int -> to_locks:int -> float
(** Expected transactions (writes only) to shrink the locked set from
    [from_locks] to [to_locks].  @raise Invalid_argument unless
    [0 <= to_locks <= from_locks] and [0 < q <= 1]. *)

val outage_curve : q:float -> num_items:int -> txns:int -> (float * float) list
(** Model points for the left half of Figure 1. *)

val recovery_curve : q:float -> peak:int -> (float * float) list
(** Model points for the right half: expected locked count as a function
    of transactions since recovery (inverted from the clearing times). *)

val comparison_table : ?domains:int -> ?seeds:int list -> unit -> Raid_util.Table.t
(** Model vs. multi-seed simulation means for Experiment 2's headline
    statistics; the seed sweep fans out over [?domains]
    {!Raid_par.Pool} domains. *)

val figure : ?seed:int -> unit -> Raid_util.Chart.t
(** Figure 1 with the measured series and the model curve overlaid. *)
