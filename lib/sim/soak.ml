module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Workload = Raid_core.Workload
module Message = Raid_core.Message
module Site = Raid_core.Site
module Engine = Raid_net.Engine
module Vtime = Raid_net.Vtime
module Telemetry = Raid_obs.Telemetry
module Prom = Raid_obs.Prom
module Http = Raid_obs.Http
module Json = Raid_obs.Json
module Trace = Raid_obs.Trace
module Incident = Raid_obs.Incident
module Span = Raid_obs.Span
module Rng = Raid_util.Rng

type config = {
  tenants : int;
  sites : int;
  items : int;
  max_ops : int;
  write_prob : float;
  replication : Config.replication;
  zipf_theta : float option;
  accel : float;
  sample : Vtime.t;
  seed : int;
  port : int;
  duration_s : float option;
}

let make_config ?(tenants = 1) ?(sites = 16) ?(items = 500) ?(max_ops = 5) ?(write_prob = 0.5)
    ?(replication = Config.Full) ?zipf_theta ?(accel = 1.0) ?(sample = Vtime.of_ms 100)
    ?(seed = 42) ?(port = 0) ?duration_s () =
  if tenants <= 0 then invalid_arg "Soak: tenants must be positive";
  if sites <= 0 then invalid_arg "Soak: sites must be positive";
  if items <= 0 then invalid_arg "Soak: items must be positive";
  if accel < 0.0 then invalid_arg "Soak: accel must be non-negative";
  (match duration_s with
  | Some d when d <= 0.0 -> invalid_arg "Soak: duration must be positive"
  | _ -> ());
  { tenants; sites; items; max_ops; write_prob; replication; zipf_theta; accel; sample; seed;
    port; duration_s }

(* One tenant: a full independent cluster with its own transaction
   stream.  Tenant 0 keeps the exact single-tenant stream (same seed
   path), so [tenants = 1] behaves byte-for-byte like the pre-tenant
   soak. *)
type tenant = {
  tn_id : int;
  tn_cluster : Cluster.t;
  tn_rng : Rng.t;
  mutable tn_workload : Workload.t;
  mutable tn_operational : int list;  (** cached coordinator candidates *)
}

type t = {
  cfg : config;
  tenants : tenant array;
  reg : Telemetry.t;
  (* Recovery observatory over tenant 0: the typed event ring and the
     streaming incident recorder behind /incidents and /txns/:id. *)
  obs_trace : Trace.t;
  obs_recorder : Incident.recorder;
  server : Http.server;
  started : float;  (** wall clock at {!create} *)
  (* live-adjustable workload shape (POST /load), applied to every tenant *)
  mutable max_ops : int;
  mutable write_prob : float;
  mutable zipf_theta : float option;
  mutable rate_cap : float option;  (** max submissions per wall second *)
  mutable next_tenant : int;  (** round-robin admission cursor *)
  mutable submitted : int;
  mutable committed : int;
  mutable aborted : int;
  mutable stopping : bool;
  mutable shut : bool;
  (* events/sec over a sliding wall-clock window, surfaced as a gauge *)
  mutable eps : float;
  mutable eps_wall : float;
  mutable eps_events : int;
}

let wall t = Unix.gettimeofday () -. t.started
let tenant0 t = t.tenants.(0)
let cluster t = (tenant0 t).tn_cluster

(* Pacing floor: the slowest tenant's virtual clock.  Round-robin
   admission keeps the clocks together, so for one tenant this is the
   old single-clock value. *)
let now_ms t =
  Array.fold_left
    (fun acc tn -> Float.min acc (Vtime.to_ms (Engine.now (Cluster.engine tn.tn_cluster))))
    Float.infinity t.tenants

let events t =
  Array.fold_left
    (fun acc tn ->
      let c = Engine.counters (Cluster.engine tn.tn_cluster) in
      acc + c.Engine.delivered + c.Engine.timer_fired)
    0 t.tenants

let refresh_operational tn =
  tn.tn_operational <-
    List.filter
      (fun s -> not (Site.is_waiting (Cluster.site tn.tn_cluster s)))
      (Cluster.alive_sites tn.tn_cluster)

let rebuild_workload t =
  let spec =
    match t.zipf_theta with
    | None -> Workload.Uniform { max_ops = t.max_ops; write_prob = t.write_prob }
    | Some theta -> Workload.Zipfian { max_ops = t.max_ops; write_prob = t.write_prob; theta }
  in
  Array.iter
    (fun tn ->
      tn.tn_workload <- Workload.create spec ~num_items:t.cfg.items ~rng:(Rng.split tn.tn_rng))
    t.tenants

(* {2 Endpoint bodies} *)

let json_of_status ?tenant (s : Cluster.site_status) =
  let base =
    [
      ("site", Json.Int s.Cluster.st_id);
      ("alive", Json.Bool s.Cluster.st_alive);
      ("waiting", Json.Bool s.Cluster.st_waiting);
      ("faillocks", Json.Int s.Cluster.st_faillocks);
      ("table_bits", Json.Int s.Cluster.st_table_bits);
      ("pending_2pc", Json.Int s.Cluster.st_pending_2pc);
      ("buffered_prepares", Json.Int s.Cluster.st_buffered_prepares);
      ("session_up", Json.Int s.Cluster.st_session_up);
    ]
  in
  Json.Obj (match tenant with None -> base | Some i -> ("tenant", Json.Int i) :: base)

let sites_body t =
  let multi = Array.length t.tenants > 1 in
  let alive =
    Array.fold_left
      (fun a tn -> a + List.length (Cluster.alive_sites tn.tn_cluster))
      0 t.tenants
  in
  let faillocks =
    Array.fold_left (fun a tn -> a + Cluster.total_faillocks tn.tn_cluster) 0 t.tenants
  in
  let sites =
    List.concat_map
      (fun tn ->
        let tenant = if multi then Some tn.tn_id else None in
        List.map (json_of_status ?tenant) (Array.to_list (Cluster.status tn.tn_cluster)))
      (Array.to_list t.tenants)
  in
  Json.Obj
    (("virtual_ms", Json.Float (now_ms t))
     :: (if multi then [ ("tenants", Json.Int (Array.length t.tenants)) ] else [])
    @ [
        ("alive", Json.Int alive);
        ("total_faillocks", Json.Int faillocks);
        ("sites", Json.Arr sites);
      ])

(* With one tenant the latency series carries only the outcome label;
   with many, one series per tenant — aggregate them (the bucket edges
   are shared, so cumulative counts add). *)
let latency_views t ~outcome =
  if Array.length t.tenants = 1 then
    Option.to_list (Telemetry.find t.reg "raid_txn_latency_ms" ~labels:[ ("outcome", outcome) ])
  else
    List.filter_map
      (fun tn ->
        Telemetry.find t.reg "raid_txn_latency_ms"
          ~labels:[ ("tenant", string_of_int tn.tn_id); ("outcome", outcome) ])
      (Array.to_list t.tenants)

let latency_summary t ~outcome =
  match latency_views t ~outcome with
  | [] -> Json.Null
  | first :: _ as views ->
    let count =
      List.fold_left (fun a (v : Telemetry.view) -> a + int_of_float v.Telemetry.v_value) 0 views
    in
    let sum = List.fold_left (fun a v -> a +. v.Telemetry.v_sum) 0.0 views in
    let buckets =
      List.fold_left
        (fun acc v ->
          List.map2 (fun (le, c) (_, c') -> (le, c + c')) acc v.Telemetry.v_buckets)
        (List.map (fun (le, _) -> (le, 0)) first.Telemetry.v_buckets)
        views
    in
    Json.Obj
      [
        ("count", Json.Int count);
        ("sum_ms", Json.Float sum);
        ("mean_ms", if count = 0 then Json.Null else Json.Float (sum /. float_of_int count));
        ( "buckets",
          Json.Arr
            (List.map
               (fun (le, cumulative) ->
                 Json.Obj
                   [
                     ("le", Json.Str (Telemetry.float_repr le));
                     ("count", Json.Int cumulative);
                   ])
               buckets) );
      ]

let txns_body t =
  let total = t.committed + t.aborted in
  Json.Obj
    [
      ("submitted", Json.Int t.submitted);
      ("committed", Json.Int t.committed);
      ("aborted", Json.Int t.aborted);
      ( "abort_rate",
        Json.Float (if total = 0 then 0.0 else float_of_int t.aborted /. float_of_int total) );
      ("virtual_ms", Json.Float (now_ms t));
      ( "latency_ms",
        Json.Obj
          [
            ("commit", latency_summary t ~outcome:"commit");
            ("abort", latency_summary t ~outcome:"abort");
          ] );
    ]

let incidents_body t =
  let incidents = Incident.incidents t.obs_recorder in
  Json.Obj
    [
      ("virtual_ms", Json.Float (now_ms t));
      ("count", Json.Int (List.length incidents));
      ("dropped_trace_entries", Json.Int (Trace.dropped t.obs_trace));
      ("incidents", Json.Arr (List.map Incident.json incidents));
    ]

(* Per-transaction span tree: assembled on demand from whatever the
   tenant-0 ring still holds (old transactions age out oldest-first;
   a tree caught mid-drop reports [complete = false]). *)
let txn_span_action t ~params _req =
  match int_of_string_opt (List.assoc "id" params) with
  | None -> Http.error 404 (Printf.sprintf "bad txn id %S" (List.assoc "id" params))
  | Some id -> (
    match Span.find (Span.assemble (Trace.entries t.obs_trace)) id with
    | None -> Http.error 404 (Printf.sprintf "no span tree for txn %d in the ring (tenant 0)" id)
    | Some tree -> Http.json (Span.json tree))

let health_body t =
  Json.Obj
    [
      ("status", Json.Str (if t.stopping then "draining" else "ok"));
      ("uptime_s", Json.Float (wall t));
      ("virtual_ms", Json.Float (now_ms t));
      ("submitted", Json.Int t.submitted);
      ("accel", Json.Float t.cfg.accel);
    ]

(* Operator fail/recover actions address tenant 0: the soak's tenants
   are independent, so one controllable cluster is enough to exercise
   the recovery protocol live while the rest keep serving. *)
let site_id_of ~params t =
  match int_of_string_opt (List.assoc "id" params) with
  | Some id when id >= 0 && id < Cluster.num_sites (cluster t) -> Ok id
  | _ -> Error (Http.error 404 (Printf.sprintf "no such site %S" (List.assoc "id" params)))

let fail_action t ~params _req =
  match site_id_of ~params t with
  | Error resp -> resp
  | Ok id ->
    let tn = tenant0 t in
    if not (Cluster.alive tn.tn_cluster id) then
      Http.error 409 (Printf.sprintf "site %d is already down" id)
    else if tn.tn_operational = [ id ] then
      Http.error 409 "refusing to fail the last operational site"
    else begin
      Cluster.fail_site tn.tn_cluster id;
      refresh_operational tn;
      Http.json
        (Json.Obj
           [ ("site", Json.Int id); ("alive", Json.Bool false); ("action", Json.Str "fail") ])
    end

let recover_action t ~params _req =
  match site_id_of ~params t with
  | Error resp -> resp
  | Ok id ->
    let tn = tenant0 t in
    let report status =
      refresh_operational tn;
      Http.json
        (Json.Obj
           [
             ("site", Json.Int id);
             ("alive", Json.Bool (Cluster.alive tn.tn_cluster id));
             ("action", Json.Str "recover");
             ("result", Json.Str status);
           ])
    in
    if Cluster.alive tn.tn_cluster id then
      if Site.is_waiting (Cluster.site tn.tn_cluster id) then begin
        (* A blocked recovery (no operational donor at the time) retries
           through the same control-1 path. *)
        Engine.inject (Cluster.engine tn.tn_cluster) ~dst:id Message.Recover_command;
        Cluster.run_to_quiescence tn.tn_cluster;
        report
          (if Site.is_waiting (Cluster.site tn.tn_cluster id) then "blocked" else "recovered")
      end
      else Http.error 409 (Printf.sprintf "site %d is already up" id)
    else
      match Cluster.recover_site tn.tn_cluster id with
      | `Recovered -> report "recovered"
      | `Blocked -> report "blocked"

let load_action t ~params:_ (req : Http.request) =
  match Json.parse (if String.trim req.Http.body = "" then "{}" else req.Http.body) with
  | Error message -> Http.error 400 message
  | Ok body ->
    let number key =
      match Json.member key body with
      | None -> Ok None
      | Some (Json.Int n) -> Ok (Some (float_of_int n))
      | Some (Json.Float f) -> Ok (Some f)
      | Some Json.Null -> Ok (Some Float.nan)  (* explicit reset marker *)
      | Some _ -> Error (Printf.sprintf "field %S must be a number or null" key)
    in
    let ( let* ) r k = match r with Error m -> Http.error 400 m | Ok v -> k v in
    let* max_ops = number "max_ops" in
    let* write_prob = number "write_prob" in
    let* zipf_theta = number "zipf_theta" in
    let* rate = number "rate" in
    let invalid m = Http.error 400 m in
    let apply () =
      match max_ops with
      | Some m when Float.is_nan m || m < 1.0 -> invalid "max_ops must be >= 1"
      | _ -> (
        match write_prob with
        | Some p when Float.is_nan p || p < 0.0 || p > 1.0 ->
          invalid "write_prob must be in [0,1]"
        | _ -> (
          match zipf_theta with
          | Some theta when (not (Float.is_nan theta)) && (theta <= 0.0 || theta >= 1.0) ->
            invalid "zipf_theta must be in (0,1), or null for uniform"
          | _ -> (
            match rate with
            | Some r when (not (Float.is_nan r)) && r < 0.0 -> invalid "rate must be >= 0"
            | _ ->
              (match max_ops with Some m -> t.max_ops <- int_of_float m | None -> ());
              (match write_prob with Some p -> t.write_prob <- p | None -> ());
              (match zipf_theta with
              | Some theta ->
                t.zipf_theta <- (if Float.is_nan theta then None else Some theta)
              | None -> ());
              (match rate with
              | Some r -> t.rate_cap <- (if Float.is_nan r || r = 0.0 then None else Some r)
              | None -> ());
              rebuild_workload t;
              Http.json
                (Json.Obj
                   [
                     ("max_ops", Json.Int t.max_ops);
                     ("write_prob", Json.Float t.write_prob);
                     ( "zipf_theta",
                       match t.zipf_theta with
                       | None -> Json.Null
                       | Some theta -> Json.Float theta );
                     ( "rate",
                       match t.rate_cap with None -> Json.Null | Some r -> Json.Float r );
                   ]))))
    in
    apply ()

let index_body =
  String.concat "\n"
    [
      "raid serve: live cluster introspection";
      "";
      "GET  /health            liveness and stream counters";
      "GET  /metrics           Prometheus text exposition (tenant-labelled when --tenants > 1)";
      "GET  /sites             per-site status across tenants (JSON)";
      "GET  /txns              stream counters + latency histograms (JSON)";
      "GET  /txns/:id          causal span tree + critical path for one txn (tenant 0)";
      "GET  /incidents         recovery incident timelines (tenant 0, JSON)";
      "POST /sites/:id/fail    crash a site (tenant 0)";
      "POST /sites/:id/recover bring a site back (tenant 0)";
      "POST /load              adjust workload: max_ops, write_prob, zipf_theta, rate";
      "";
    ]

let routes t_ref =
  let with_t f ~params req =
    match !t_ref with
    | None -> Http.error 503 "server warming up"
    | Some t -> f t ~params req
  in
  [
    Http.route ~meth:"GET" "/" (fun ~params:_ _ -> Http.text index_body);
    Http.route ~meth:"GET" "/health" (with_t (fun t ~params:_ _ -> Http.json (health_body t)));
    Http.route ~meth:"GET" "/metrics"
      (with_t (fun t ~params:_ _ -> Http.prom (Prom.render t.reg)));
    Http.route ~meth:"GET" "/sites" (with_t (fun t ~params:_ _ -> Http.json (sites_body t)));
    Http.route ~meth:"GET" "/txns" (with_t (fun t ~params:_ _ -> Http.json (txns_body t)));
    Http.route ~meth:"GET" "/txns/:id" (with_t txn_span_action);
    Http.route ~meth:"GET" "/incidents"
      (with_t (fun t ~params:_ _ -> Http.json (incidents_body t)));
    Http.route ~meth:"POST" "/sites/:id/fail" (with_t fail_action);
    Http.route ~meth:"POST" "/sites/:id/recover" (with_t recover_action);
    Http.route ~meth:"POST" "/load" (with_t load_action);
  ]

let create cfg =
  let reg = Telemetry.create ~interval:cfg.sample () in
  (* The recovery observatory watches tenant 0 only — the tenant the
     operator fail/recover endpoints address, so its ring holds exactly
     the incidents those actions produce. *)
  let obs_trace = Trace.create () in
  let obs_sink, obs_recorder = Monitor.attach_observatory reg obs_trace in
  let ccfg =
    Config.make ~replication:cfg.replication ~num_sites:cfg.sites ~num_items:cfg.items ()
  in
  let make_tenant i =
    (* Label every series by tenant only in multi-tenant mode, so a
       single-tenant soak exposes the exact historical series names. *)
    let telemetry_labels = if cfg.tenants > 1 then [ ("tenant", string_of_int i) ] else [] in
    let tn_cluster =
      Cluster.of_spec
        (Cluster.Spec.make ~telemetry:reg ~telemetry_labels
           ?obs:(if i = 0 then Some obs_sink else None)
           ccfg)
    in
    (* Tenant 0 reproduces the historical single-tenant stream; the rest
       get independent mixed streams (cf. Raid_multi). *)
    let tn_rng =
      if i = 0 then Rng.create cfg.seed
      else Rng.create (Rng.mix ((cfg.seed * 1_000_003) + i))
    in
    let tn_workload =
      Workload.create
        (Workload.Uniform { max_ops = cfg.max_ops; write_prob = cfg.write_prob })
        ~num_items:cfg.items ~rng:(Rng.split tn_rng)
    in
    let tn = { tn_id = i; tn_cluster; tn_rng; tn_workload; tn_operational = [] } in
    refresh_operational tn;
    tn
  in
  let tenants = Array.init cfg.tenants make_tenant in
  let t_ref = ref None in
  let router = Http.dispatch (routes t_ref) in
  let server = Http.serve ~port:cfg.port router in
  let t =
    {
      cfg;
      tenants;
      reg;
      obs_trace;
      obs_recorder;
      server;
      started = Unix.gettimeofday ();
      max_ops = cfg.max_ops;
      write_prob = cfg.write_prob;
      zipf_theta = cfg.zipf_theta;
      rate_cap = None;
      next_tenant = 0;
      submitted = 0;
      committed = 0;
      aborted = 0;
      stopping = false;
      shut = false;
      eps = 0.0;
      eps_wall = 0.0;
      eps_events = 0;
    }
  in
  rebuild_workload t;
  (* Process-level gauges: wall-clock facts about this soak, next to the
     virtual-time cluster metrics in the same exposition. *)
  Telemetry.gauge reg "raid_process_uptime_seconds"
    ~help:"Wall-clock seconds since the soak started" (fun () -> wall t);
  Telemetry.gauge reg "raid_process_events_per_sec"
    ~help:"Engine events per wall-clock second, over a recent window" (fun () -> t.eps);
  Telemetry.polled_counter reg "raid_process_requests_total"
    ~help:"HTTP requests answered by the introspection API" (fun () ->
      float_of_int (Http.requests_served server));
  (if cfg.tenants > 1 then
     Telemetry.gauge reg "raid_process_tenants"
       ~help:"Independent tenant clusters hosted by this soak" (fun () ->
         float_of_int cfg.tenants));
  Raid_obs.Build_info.register reg;
  t_ref := Some t;
  t

let port t = Http.port t.server
let registry t = t.reg
let stop t = t.stopping <- true
let finished t = t.stopping || t.shut

let rate_allows t =
  match t.rate_cap with
  | None -> true
  | Some rate -> float_of_int t.submitted < (rate *. wall t) +. 1.0

(* Admit one transaction to the next tenant (round-robin) that has an
   operational coordinator.  False when no tenant can make progress. *)
let submit_one t =
  let n = Array.length t.tenants in
  let rec try_from k attempts =
    if attempts = 0 then false  (* everything failable failed; idle until recover *)
    else
      let tn = t.tenants.(k) in
      let next = (k + 1) mod n in
      match tn.tn_operational with
      | [] -> try_from next (attempts - 1)
      | candidates ->
        t.next_tenant <- next;
        let coordinator = Rng.choose tn.tn_rng candidates in
        let id = Cluster.next_txn_id tn.tn_cluster in
        let outcome = Cluster.submit tn.tn_cluster ~coordinator (Workload.next tn.tn_workload ~id) in
        t.submitted <- t.submitted + 1;
        if outcome.Raid_core.Metrics.committed then t.committed <- t.committed + 1
        else t.aborted <- t.aborted + 1;
        true
  in
  try_from t.next_tenant n

(* Cap the admission burst per tick so the HTTP server stays responsive
   even when the virtual clock is far behind the pacing target (or the
   throttle is off entirely). *)
let max_batch = 64

let tick ?(timeout = 0.02) t =
  if not (finished t) then begin
    (match t.cfg.duration_s with
    | Some d when wall t >= d -> t.stopping <- true
    | _ -> ());
    if not t.stopping then begin
      let target_vms =
        if t.cfg.accel <= 0.0 then Float.infinity else t.cfg.accel *. wall t *. 1000.0
      in
      let budget = ref max_batch in
      let progress = ref true in
      while
        !progress && !budget > 0 && now_ms t < target_vms && rate_allows t
        && not t.stopping
      do
        progress := submit_one t;
        decr budget
      done;
      (* Refresh the events/sec window gauge about twice a second. *)
      let w = wall t in
      if w -. t.eps_wall >= 0.5 then begin
        let e = events t in
        t.eps <- float_of_int (e - t.eps_events) /. (w -. t.eps_wall);
        t.eps_wall <- w;
        t.eps_events <- e
      end;
      (* Behind the pacing target with budget exhausted: come back
         immediately; otherwise sleep in the server's select. *)
      let timeout =
        if !budget = 0 && now_ms t < target_vms && rate_allows t then 0.0 else timeout
      in
      ignore (Http.poll ~timeout t.server)
    end
  end

type summary = {
  submitted : int;
  committed : int;
  aborted : int;
  virtual_ms : float;
  wall_s : float;
  events : int;
  requests : int;
}

let summary (t : t) =
  {
    submitted = t.submitted;
    committed = t.committed;
    aborted = t.aborted;
    virtual_ms = now_ms t;
    wall_s = wall t;
    events = events t;
    requests = Http.requests_served t.server;
  }

let shutdown t =
  if not t.shut then begin
    t.stopping <- true;
    Array.iter (fun tn -> Cluster.run_to_quiescence tn.tn_cluster) t.tenants;
    (* Stamp the final sample at the most advanced tenant clock. *)
    let at =
      Array.fold_left
        (fun acc tn ->
          let n = Engine.now (Cluster.engine tn.tn_cluster) in
          if Vtime.to_ms n > Vtime.to_ms acc then n else acc)
        (Engine.now (Cluster.engine (cluster t)))
        t.tenants
    in
    Telemetry.sample_now t.reg ~at;
    (* Answer anything already buffered, then stop listening. *)
    ignore (Http.poll ~timeout:0.0 t.server);
    Http.close_server t.server;
    t.shut <- true
  end;
  summary t

let run t =
  while not (finished t) do
    tick t
  done;
  shutdown t
