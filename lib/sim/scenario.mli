(** Declarative experiment scenarios.

    Each of the paper's experiments is a schedule of managing-site actions
    taken at transaction boundaries ("Before transaction 26, we brought
    site 0 up and failed site 1", §4.2.1).  A scenario is that schedule:
    a configuration, a workload, a coordinator policy and an action
    list. *)

type coordinator_policy =
  | Fixed of int  (** all transactions to one site (must be operational) *)
  | Uniform_random  (** uniform over currently-operational sites *)
  | Weighted of (int * float) list
      (** weighted random over the operational subset of the listed
          sites; weights of down sites are renormalised away *)
  | Round_robin
      (** cycle through operational sites in id order *)

type action =
  | Run_txns of int  (** generate and process this many transactions *)
  | Fail of int
  | Recover of int
  | Set_policy of coordinator_policy
  | Run_until_recovered of { site : int; max_txns : int }
      (** keep processing transactions until no item is fail-locked for
          [site] (or the bound is hit) *)
  | Run_until_consistent of { max_txns : int }
      (** ... until [Cluster.fully_consistent] *)

type t = {
  config : Raid_core.Config.t;
  detection : Raid_core.Cluster.detection;
  workload : Raid_core.Workload.spec;
  policy : coordinator_policy;
  seed : int;
  actions : action list;
}

val make :
  ?detection:Raid_core.Cluster.detection ->
  ?policy:coordinator_policy ->
  ?seed:int ->
  config:Raid_core.Config.t ->
  workload:Raid_core.Workload.spec ->
  action list ->
  t
(** Defaults: immediate detection, [Uniform_random] policy, seed 42. *)
