(** Experiment 2: data availability on a recovering site (paper §3,
    Figure 1).

    Two sites, 50 items, maximum transaction size 5.  Site 0 fails before
    transaction 1; transactions 1-100 run on site 1; site 0 recovers
    before transaction 101; traffic then continues until site 0 is fully
    recovered.  The paper reports: over 90% of the copies fail-locked at
    the peak, roughly 160 further transactions to complete recovery, only
    two copier transactions, the first 10 fail-locks cleared within ~6
    transactions and the last 10 within ~106.

    The paper's two-copier count implies the managing site kept routing
    nearly all post-recovery transactions to the up site; the default
    [recovering_weight] reproduces that (see DESIGN.md).  Setting it to
    0.5 gives the alternating-coordinator variant (faster recovery, many
    copiers) studied in the ablations. *)

type stats = {
  peak_faillocks : int;  (** locks for site 0 when it comes back *)
  peak_fraction : float;
  txns_to_recover : int;  (** transactions after recovery until all clear *)
  copier_requests : int;
  first_10_cleared_in : int option;
      (** transactions to go from the peak to peak-10 locks *)
  last_10_cleared_in : int option;  (** transactions spent below 10 locks *)
  aborted : int;
}

type t = {
  result : Runner.result;
  stats : stats;
  series : (float * float) list;  (** Figure 1: (txn number, locks for site 0) *)
}

val scenario :
  ?seed:int -> ?recovering_weight:float -> ?max_recovery_txns:int -> unit -> Scenario.t
(** The declarative scenario behind {!run}, for reuse by other drivers
    (e.g. {!Tracing}).  Same defaults as {!run}. *)

val run : ?seed:int -> ?recovering_weight:float -> ?max_recovery_txns:int -> unit -> t
(** Defaults: seed 15, [recovering_weight] 0.05, bound 1200. *)

val figure : t -> Raid_util.Chart.t
(** The Figure-1 reproduction. *)

val summary_table : t -> Raid_util.Table.t
(** Paper-vs-measured summary statistics. *)
