(** Live soak harness: the engine behind [raid serve].

    Every other driver in this repository is batch — run, print, exit.
    This one keeps a cluster alive: an open-loop transaction stream
    advances virtual time {e paced against the wall clock} while a
    minimal HTTP server ({!Raid_obs.Http}) exposes the cluster for
    inspection and operator actions.  It is the task-manager-style
    operations surface of ROADMAP item 5 (cf. PlaceOS's cluster API):
    per-site status and load, kill-and-relaunch, live load adjustment.

    {2 Multi-tenancy}

    With [tenants > 1] the soak hosts that many fully independent
    clusters (cf. {!Raid_multi}), admitting transactions round-robin so
    the tenant virtual clocks advance together against one pacing
    target.  Every telemetry series gains a [tenant] label, [/sites]
    reports each tenant's sites with a [tenant] field, and [/txns]
    latency histograms aggregate across tenants.  Operator fail/recover
    actions address tenant 0.  A single-tenant soak is byte-compatible
    with the pre-tenant behaviour: no extra labels or fields appear.

    {2 Pacing model}

    The engine's virtual clock only advances when events are processed,
    so pacing works by {e admission}: each {!tick} computes the target
    virtual time [accel × wall-elapsed] and submits transactions (each
    runs to quiescence, like every serial driver here) until the
    virtual clock catches up, then pumps the HTTP server — handlers
    therefore always observe a quiescent cluster and run on the
    simulation's own domain, no locking anywhere.  [accel = 1.0] is
    real time, [10.0] is 10× fast-forward, [0.0] removes the throttle
    entirely (CI soaks).  An optional rate cap (settable at runtime via
    [POST /load]) bounds submissions per wall second independently.

    {2 Determinism caveat}

    A soak run is paced by the wall clock, so the {e number} of
    transactions processed — and hence any exported series — is not
    reproducible across runs; this is the one driver that trades the
    repository's byte-determinism for liveness.  What remains exact:
    given the same submitted prefix, the simulation state is the same
    (the stream is still a pure function of the seed), and a [/metrics]
    scrape is a faithful snapshot of a quiescent cluster.

    {2 Endpoints}

    - [GET /health] — liveness: uptime, virtual time, stream counters.
    - [GET /metrics] — Prometheus text exposition of the full telemetry
      registry ({!Raid_obs.Prom}), including per-site gauges, engine
      counters, txn-latency histograms, process gauges (uptime,
      events/sec, heap high-water) and [raid_build_info].
    - [GET /sites] — JSON per-site status ({!Raid_core.Cluster.status}):
      up/down/waiting, fail-lock counts, pending-2PC cardinality,
      buffered prepares, session up-count.
    - [GET /txns] — stream counters plus commit/abort latency histogram
      summaries.
    - [POST /sites/:id/fail], [POST /sites/:id/recover] — operator
      actions (409 when already in the target state or when failing the
      last operational site).
    - [POST /load] — adjust the workload live: JSON body with any of
      [max_ops], [write_prob], [zipf_theta] (number or [null] to return
      to uniform) and [rate] (max txns per wall second, [0] or [null]
      to uncap). *)

type config = {
  tenants : int;  (** independent clusters hosted side by side *)
  sites : int;
  items : int;
  max_ops : int;
  write_prob : float;
  replication : Raid_core.Config.replication;
  zipf_theta : float option;
  accel : float;  (** virtual ms per wall ms; [0.] = as fast as possible *)
  sample : Raid_net.Vtime.t;  (** telemetry sampling interval *)
  seed : int;
  port : int;  (** [0] picks an ephemeral port *)
  duration_s : float option;  (** wall-clock bound; [None] = until {!stop} *)
}

val make_config :
  ?tenants:int ->
  ?sites:int ->
  ?items:int ->
  ?max_ops:int ->
  ?write_prob:float ->
  ?replication:Raid_core.Config.replication ->
  ?zipf_theta:float ->
  ?accel:float ->
  ?sample:Raid_net.Vtime.t ->
  ?seed:int ->
  ?port:int ->
  ?duration_s:float ->
  unit ->
  config
(** Defaults: 1 tenant, 16 sites, 500 items, txn <= 5 ops, P(write)
    0.5, full replication, uniform items, real time ([accel = 1.0]),
    100 virtual ms sampling, seed 42, ephemeral port, no duration
    bound.  @raise Invalid_argument on non-positive sizes, a negative
    [accel], or a non-positive [duration_s]. *)

type t

val create : config -> t
(** Build the cluster (telemetry attached), bind the HTTP server and
    return — no transaction has run yet.  @raise Unix.Unix_error when
    the port cannot be bound. *)

val port : t -> int
(** The bound port (useful with [port = 0]). *)

val cluster : t -> Raid_core.Cluster.t
(** Tenant 0's cluster — the one operator fail/recover actions address.
    With [tenants = 1] this is the whole soak. *)

val registry : t -> Raid_obs.Telemetry.t

val tick : ?timeout:float -> t -> unit
(** One pump iteration: admit transactions up to the pacing target (at
    most a small batch, to stay responsive), refresh the process
    gauges, then poll the HTTP server for up to [timeout] seconds
    (default 0.02).  A no-op once draining. *)

val stop : t -> unit
(** Request a graceful drain: no further transactions are admitted and
    {!run} returns after quiescing.  Safe to call from a signal
    handler. *)

val finished : t -> bool
(** True once {!stop} was called or the wall-clock duration elapsed. *)

type summary = {
  submitted : int;
  committed : int;
  aborted : int;
  virtual_ms : float;
  wall_s : float;
  events : int;  (** engine deliveries + timer firings *)
  requests : int;  (** HTTP requests answered *)
}

val shutdown : t -> summary
(** Drain the engine to quiescence, record a final telemetry sample,
    close the HTTP server and return the totals (idempotent). *)

val run : t -> summary
(** {!tick} until {!finished}, then {!shutdown}.  Install a SIGINT
    handler calling {!stop} beforehand for a graceful ctrl-C. *)

val summary : t -> summary
(** The totals so far, without shutting down. *)
