(** Ablation studies for the design choices the paper discusses.

    Each ablation returns its raw rows plus a rendering; the bench
    harness prints them after the paper tables and figures.

    - {!two_step_recovery} — §3.2's proposed two-step recovery (threshold
      + batch copiers) against the paper's on-demand implementation.
    - {!rw_ratio} — §5's discussion of read-heavy workloads: how the
      write probability changes fail-lock accumulation and clearing.
    - {!coordinator_placement} — how much traffic the managing site sends
      to the recovering site (the Figure-1 routing inference): copier
      count vs. recovery length.
    - {!embed_clears} — §2.2.3's suggestion to embed fail-lock clearing
      in the commit protocol instead of special transactions.
    - {!protocol_availability} — ROWAA against strict read-one/write-all
      and majority quorum on an identical failure schedule (§1.1's
      availability claim).
    - {!partial_replication} — §3.2's control transaction type 3 under a
      partially replicated database. *)

type table = Raid_util.Table.t

(** {2 A1: two-step recovery} *)

type recovery_row = {
  policy_label : string;
  txns_to_recover : int;  (** transactions after the recovery point *)
  copier_requests : int;
  batch_rounds : int;
}

val two_step_recovery : ?seed:int -> unit -> recovery_row list * table

(** {2 A2: read/write ratio} *)

type rw_row = {
  write_prob : float;
  peak_locked : int;  (** items locked after the 100-transaction outage *)
  rw_txns_to_recover : int;
  rw_copiers : int;
}

val rw_ratio : ?seed:int -> ?write_probs:float list -> unit -> rw_row list * table

(** {2 A3: coordinator placement during recovery} *)

type placement_row = {
  recovering_weight : float;
  pl_txns_to_recover : int;
  pl_copiers : int;
}

val coordinator_placement : ?seed:int -> ?weights:float list -> unit -> placement_row list * table

(** {2 A4: embedding fail-lock clears in the commit protocol} *)

type embed_row = {
  embed_label : string;
  copier_txn_ms : float;
  specials_sent : int;
}

val embed_clears : ?seed:int -> ?trials:int -> unit -> embed_row list * table

(** {2 A5: protocol availability comparison} *)

type protocol_row = {
  protocol_label : string;
  committed : int;
  aborted : int;
  avg_txn_ms : float;  (** committed transactions *)
  messages : int;  (** total intersite messages *)
}

val protocol_availability : ?seed:int -> ?txns:int -> unit -> protocol_row list * table

(** {2 A6: partial replication and control transaction type 3} *)

type partial_row = {
  spawn_label : string;
  pr_committed : int;
  pr_aborted : int;
  backups_spawned : int;
}

val partial_replication : ?seed:int -> unit -> partial_row list * table

(** {2 A8: communication delays}

    The paper's §5 future work: "take into account ... communication
    delays across machines".  Sweeps the intersite message latency and
    reports how transaction and control-transaction times scale — each is
    linear in the latency with a slope equal to its message depth. *)

type latency_row = {
  latency_ms : float;
  lat_txn_ms : float;  (** committed coordinator mean *)
  lat_control1_ms : float;  (** control-1 at the recovering site *)
}

val communication_delays : ?seed:int -> ?latencies_ms:float list -> unit -> latency_row list * table

(** {2 A9: benchmark workloads}

    The paper's §5 future work: "repeat our experiments with the
    well-known benchmarks ET1 ... and the Wisconsin benchmark".  Runs the
    Experiment-2 schedule under each workload. *)

type workload_row = {
  workload_label : string;
  wl_peak_locked : int;
  wl_txns_to_recover : int;
  wl_copiers : int;
  wl_aborted : int;
}

val benchmark_workloads : ?seed:int -> unit -> workload_row list * table

val all_tables : ?domains:int -> ?seed:int -> unit -> table list
(** All ablation tables, one independent study per {!Raid_par.Pool}
    domain ([?domains] defaults to {!Raid_par.Pool.default_domains}). *)
