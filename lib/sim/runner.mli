(** Scenario execution and per-transaction series collection.

    The runner plays the managing site: it walks a {!Scenario.t}'s action
    list, generates workload transactions, picks coordinators per policy,
    and records after every transaction the data behind the paper's
    figures — the number of items fail-locked for each site, cumulative
    copier transactions and aborts. *)

type txn_record = {
  index : int;  (** serial transaction number, from 1 *)
  outcome : Raid_core.Metrics.outcome;
  faillocks_per_site : int array;
      (** oracle fail-lock count for each site, after this transaction *)
  cumulative_aborts : int;
  cumulative_copiers : int;
}

type result = {
  cluster : Raid_core.Cluster.t;  (** final state, quiescent *)
  records : txn_record list;  (** in execution order *)
  committed : int;
  aborted : int;
  operational_at_commit : (int, int list) Hashtbl.t;
      (** txn id -> sites alive at completion (for durability checks) *)
}

val run :
  ?check_invariants:bool ->
  ?trace:bool ->
  ?obs:Raid_obs.Trace.sink ->
  ?telemetry:Raid_obs.Telemetry.t ->
  Scenario.t ->
  result
(** Execute the scenario.  With [check_invariants] (default true), the
    DESIGN.md invariants are verified after every action and a [Failure]
    is raised on violation — experiments double as protocol tests.
    [trace] turns on the network engine's message trace; [obs] receives
    the sites' protocol trace (see {!Tracing} for the assembled
    pipeline); [telemetry] is instrumented over the cluster and sampled
    in virtual time (see {!Monitor}).  All default to off, which costs
    nothing.

    @raise Invalid_argument if a [Fixed] coordinator is down when a
    transaction must be issued, or no site is operational. *)

val series : result -> site:int -> (float * float) list
(** (transaction number, fail-locks for [site]) — a figure's data. *)

val abort_count : result -> int

val final_faillocks : result -> site:int -> int
