(** Experiment 1: overhead measurements (paper §2).

    Three sub-experiments on the paper's configuration (4 sites, 50
    items, maximum transaction size 10):
    - {!faillock_overhead}: transaction times at coordinating and
      participating sites with the fail-lock maintenance code removed
      vs. included (§2.2.1, paper: 176→186 ms and 90→97 ms).
    - {!control_overhead}: control transaction costs (§2.2.2, paper:
      type 1 = 190 ms at the recovering site and 50 ms at an operational
      site; type 2 = 68 ms).
    - {!copier_overhead}: a database transaction that triggers one copier
      transaction (§2.2.3, paper: 270 ms, +45% over 186 ms; copy-request
      service 25 ms; fail-lock clearing 20 ms per site; the clearing
      traffic is roughly a third of the added cost).

    All times are virtual (cost-model) milliseconds; [paper_ms] carries
    the published number for side-by-side reporting. *)

type row = {
  label : string;
  paper_ms : float;
  measured_ms : float;
  samples : int;
}

type report = {
  title : string;
  rows : row list;
  notes : string list;
}

val faillock_overhead : ?txns:int -> ?seed:int -> unit -> report
(** [txns] transactions (default 400) are run twice — without and with
    fail-lock maintenance — over the same workload stream. *)

val control_overhead : ?cycles:int -> ?seed:int -> unit -> report
(** [cycles] (default 40) fail/recover cycles of one site, collecting
    control-1 and control-2 event times. *)

val copier_overhead : ?trials:int -> ?seed:int -> unit -> report
(** [trials] (default 200) controlled trials: fail a site, lock one item,
    recover it, then coordinate a transaction there whose first operation
    reads the fail-locked item. *)

val all : ?seed:int -> unit -> report list

val to_table : report -> Raid_util.Table.t
