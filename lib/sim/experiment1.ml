module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Workload = Raid_core.Workload
module Metrics = Raid_core.Metrics
module Txn = Raid_core.Txn
module Stats = Raid_util.Stats
module Table = Raid_util.Table
module Rng = Raid_util.Rng

type row = { label : string; paper_ms : float; measured_ms : float; samples : int }

type report = { title : string; rows : row list; notes : string list }

let mean_of = function [] -> Float.nan | samples -> Stats.mean samples

let row label ~paper samples =
  { label; paper_ms = paper; measured_ms = mean_of samples; samples = List.length samples }

let paper_workload = Workload.Uniform { max_ops = 10; write_prob = 0.5 }

(* §2.2.1 — run the same transaction stream with the fail-lock
   maintenance code disabled, then enabled. *)
let faillock_overhead ?(txns = 400) ?(seed = 7) () =
  let run ~faillocks_enabled =
    let config = Config.make ~faillocks_enabled ~num_sites:4 ~num_items:50 () in
    let scenario =
      Scenario.make ~policy:(Scenario.Fixed 0) ~seed ~config ~workload:paper_workload
        [ Scenario.Run_txns txns ]
    in
    let result = Runner.run scenario in
    Cluster.metrics result.Runner.cluster
  in
  let without = run ~faillocks_enabled:false in
  let with_locks = run ~faillocks_enabled:true in
  {
    title = "Experiment 1a: overhead for fail-locks maintenance (\xc2\xa72.2.1)";
    rows =
      [
        row "coordinating site, without fail-locks code" ~paper:176.0
          without.Metrics.coordinator_ms;
        row "coordinating site, with fail-locks code" ~paper:186.0
          with_locks.Metrics.coordinator_ms;
        row "participating site, without fail-locks code" ~paper:90.0
          without.Metrics.participant_ms;
        row "participating site, with fail-locks code" ~paper:97.0
          with_locks.Metrics.participant_ms;
      ];
    notes =
      [
        "4 sites, 50 items, max transaction size 10; identical workload stream both runs.";
        "Paper finding: fail-lock maintenance adds only a few percent because it is \
         folded into commit processing.";
      ];
  }

(* §2.2.2 — control transaction costs over repeated fail/recover cycles. *)
let control_overhead ?(cycles = 40) ?(seed = 11) () =
  let config = Config.make ~num_sites:4 ~num_items:50 () in
  let actions =
    List.concat_map
      (fun _ ->
        [
          Scenario.Fail 3;
          Scenario.Run_txns 3;
          Scenario.Recover 3;
          Scenario.Run_until_recovered { site = 3; max_txns = 60 };
        ])
      (List.init cycles Fun.id)
  in
  let scenario =
    Scenario.make ~policy:(Scenario.Fixed 0) ~seed ~config ~workload:paper_workload actions
  in
  let result = Runner.run scenario in
  let metrics = Cluster.metrics result.Runner.cluster in
  {
    title = "Experiment 1b: overhead for control transactions (\xc2\xa72.2.2)";
    rows =
      [
        row "control type 1, at recovering site" ~paper:190.0
          metrics.Metrics.control1_recovering_ms;
        row "control type 1, at operational site" ~paper:50.0
          metrics.Metrics.control1_operational_ms;
        row "control type 2, per announcement" ~paper:68.0 metrics.Metrics.control2_ms;
      ];
    notes =
      [
        "Type 1 at the recovering site grows with the number of sites (one announcement \
         per operational site); at the operational site it grows with database size \
         (fail-locks shipped with the session vector).";
      ];
  }

(* §2.2.3 — controlled copier-transaction trials: lock exactly one item
   for site 3, recover it, then coordinate a transaction at site 3 whose
   first operation reads the locked item. *)
let copier_overhead ?(trials = 200) ?(seed = 13) () =
  let config = Config.make ~num_sites:4 ~num_items:50 () in
  let cluster = Cluster.create config in
  let rng = Rng.create seed in
  let random_ops n =
    List.init n (fun _ ->
        let item = Rng.int rng 50 in
        if Rng.bool rng then Txn.Write item else Txn.Read item)
  in
  (* The pooled coordinator samples include the single-write transactions
     that set up each trial (issued while a site is down, so cheaper);
     collect the all-sites-up baselines separately. *)
  let baseline_samples = ref [] in
  for _ = 1 to trials do
    let locked_item = Rng.int rng 50 in
    Cluster.fail_site cluster 3;
    let id = Cluster.next_txn_id cluster in
    ignore (Cluster.submit cluster ~coordinator:0 (Txn.make ~id [ Txn.Write locked_item ]));
    (match Cluster.recover_site cluster 3 with
    | `Recovered -> ()
    | `Blocked -> failwith "Experiment1.copier_overhead: recovery blocked");
    (* The copier-bearing transaction: first op reads the locked item,
       the rest is the usual random tail (total size uniform in 1..10). *)
    let tail = random_ops (Rng.int_in rng 1 10 - 1) in
    let id = Cluster.next_txn_id cluster in
    let outcome =
      Cluster.submit cluster ~coordinator:3 (Txn.make ~id (Txn.Read locked_item :: tail))
    in
    assert outcome.Metrics.committed;
    (* A baseline transaction at the same (now clean) coordinator. *)
    let id = Cluster.next_txn_id cluster in
    let baseline_outcome =
      Cluster.submit cluster ~coordinator:3 (Txn.make ~id (random_ops (Rng.int_in rng 1 10)))
    in
    baseline_samples :=
      Raid_net.Vtime.to_ms baseline_outcome.Metrics.elapsed :: !baseline_samples
  done;
  let metrics = Cluster.metrics cluster in
  let with_copier = mean_of metrics.Metrics.coordinator_copier_ms in
  let baseline = mean_of !baseline_samples in
  {
    title = "Experiment 1c: overhead for copier transactions (\xc2\xa72.2.3)";
    rows =
      [
        row "database txn without copier (baseline)" ~paper:186.0 !baseline_samples;
        row "database txn incl. one copier txn" ~paper:270.0 metrics.Metrics.coordinator_copier_ms;
        row "copy request service at source site" ~paper:25.0 metrics.Metrics.copy_serve_ms;
        row "clear fail-locks at one site" ~paper:20.0 metrics.Metrics.clear_special_ms;
      ];
    notes =
      [
        Printf.sprintf "measured copier overhead: +%.0f%% (paper: +45%%)"
          ((with_copier -. baseline) /. baseline *. 100.0);
        "Roughly a third of the added cost is the special transactions clearing \
         fail-locks; Config.embed_clears removes them (ablation A4).";
      ];
  }

let all ?(seed = 7) () =
  [
    faillock_overhead ~seed ();
    control_overhead ~seed:(seed + 1) ();
    copier_overhead ~seed:(seed + 2) ();
  ]

let to_table report =
  let table =
    Table.create ~title:report.title
      [
        ("event", Table.Left);
        ("paper (ms)", Table.Right);
        ("measured (ms)", Table.Right);
        ("samples", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.label;
          Printf.sprintf "%.0f" r.paper_ms;
          Printf.sprintf "%.1f" r.measured_ms;
          string_of_int r.samples;
        ])
    report.rows;
  table
