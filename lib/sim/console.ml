module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Txn = Raid_core.Txn
module Metrics = Raid_core.Metrics
module Session = Raid_core.Session
module Site = Raid_core.Site
module Workload = Raid_core.Workload
module Database = Raid_storage.Database
module Rng = Raid_util.Rng

type t = { cluster : Cluster.t; workload : Workload.t; rng : Rng.t }

let create ?(sites = 4) ?(items = 50) ?(max_ops = 5) ?(seed = 42) () =
  let config = Config.make ~num_sites:sites ~num_items:items () in
  let cluster = Cluster.create ~settings:(Cluster.settings ~trace:true ()) config in
  let rng = Rng.create seed in
  let workload =
    Workload.create (Workload.Uniform { max_ops; write_prob = 0.5 }) ~num_items:items
      ~rng:(Rng.split rng)
  in
  { cluster; workload; rng }

let cluster t = t.cluster

let help_text =
  "commands:\n\
  \  txn <site> <op>...     run a transaction at <site>; ops are rN / wN (e.g. txn 0 r3 w7)\n\
  \  auto <n> [site]        run n random transactions (at <site>, or random operational)\n\
  \  fail <site>            crash a site\n\
  \  recover <site>         bring a site back (control transaction type 1)\n\
  \  terminate <site>       graceful shutdown (Terminating state)\n\
  \  status                 sites, sessions, fail-lock counts, consistency\n\
  \  faillocks <site>       items fail-locked for a site\n\
  \  db <site> [item]       a site's copies (or one item)\n\
  \  trace [n]              last n message-trace lines (default all)\n\
  \  metrics                protocol counters\n\
  \  check                  run the protocol invariants\n\
  \  help | quit"

let parse_op token =
  if String.length token < 2 then None
  else
    match (token.[0], int_of_string_opt (String.sub token 1 (String.length token - 1))) with
    | 'r', Some item -> Some (Txn.Read item)
    | 'w', Some item -> Some (Txn.Write item)
    | _ -> None

let describe_outcome outcome =
  if outcome.Metrics.committed then
    Printf.sprintf "T%d committed in %.1f ms (copiers: %d)" outcome.Metrics.txn.Txn.id
      (Raid_net.Vtime.to_ms outcome.Metrics.elapsed)
      outcome.Metrics.copier_requests
  else
    Printf.sprintf "T%d ABORTED (%s)" outcome.Metrics.txn.Txn.id
      (match outcome.Metrics.abort_reason with
      | Some reason -> Format.asprintf "%a" Metrics.pp_abort_reason reason
      | None -> "unknown")

let status t print =
  print (Printf.sprintf "%-5s %-8s %-8s %-12s %s" "site" "alive" "session" "state" "locked items");
  for s = 0 to Cluster.num_sites t.cluster - 1 do
    let site = Cluster.site t.cluster s in
    print
      (Printf.sprintf "%-5d %-8b %-8d %-12s %d" s (Cluster.alive t.cluster s)
         (Site.session_number site)
         (Format.asprintf "%a" Session.pp_state (Session.state (Site.vector site) s))
         (Cluster.faillock_count_for t.cluster s))
  done;
  print (Printf.sprintf "fully consistent: %b" (Cluster.fully_consistent t.cluster))

let submit t print ~coordinator ops =
  let id = Cluster.next_txn_id t.cluster in
  print (describe_outcome (Cluster.submit t.cluster ~coordinator (Txn.make ~id ops)))

let auto t print n coordinator =
  for _ = 1 to n do
    let operational =
      List.filter
        (fun s -> not (Site.is_waiting (Cluster.site t.cluster s)))
        (Cluster.alive_sites t.cluster)
    in
    match operational with
    | [] -> print "no operational site"
    | sites ->
      let coordinator = match coordinator with Some c -> c | None -> Rng.choose t.rng sites in
      let id = Cluster.next_txn_id t.cluster in
      print
        (describe_outcome (Cluster.submit t.cluster ~coordinator (Workload.next t.workload ~id)))
  done

let show_db t print site item =
  let db = Site.database (Cluster.site t.cluster site) in
  let show_item item =
    match Database.read db item with
    | Some (value, version) ->
      print (Printf.sprintf "item %d: value=%d version=%d" item value version)
    | None -> print (Printf.sprintf "item %d: (no copy)" item)
  in
  match item with
  | Some item -> show_item item
  | None ->
    for item = 0 to Database.num_items db - 1 do
      show_item item
    done

let interpret t print line =
  match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
  | [] -> `Continue
  | [ "help" ] ->
    print help_text;
    `Continue
  | "txn" :: coordinator :: ops ->
    (match (int_of_string_opt coordinator, List.map parse_op ops) with
    | Some coordinator, parsed when parsed <> [] && List.for_all Option.is_some parsed ->
      submit t print ~coordinator (List.map Option.get parsed)
    | _ -> print "usage: txn <site> <rN|wN>...");
    `Continue
  | [ "auto"; n ] ->
    (match int_of_string_opt n with
    | Some n -> auto t print n None
    | None -> print "usage: auto <n> [site]");
    `Continue
  | [ "auto"; n; site ] ->
    (match (int_of_string_opt n, int_of_string_opt site) with
    | Some n, Some site -> auto t print n (Some site)
    | _ -> print "usage: auto <n> [site]");
    `Continue
  | [ "fail"; site ] ->
    (match int_of_string_opt site with
    | Some site ->
      Cluster.fail_site t.cluster site;
      print (Printf.sprintf "site %d failed" site)
    | None -> print "usage: fail <site>");
    `Continue
  | [ "recover"; site ] ->
    (match int_of_string_opt site with
    | Some site -> (
      match Cluster.recover_site t.cluster site with
      | `Recovered -> print (Printf.sprintf "site %d recovered" site)
      | `Blocked -> print (Printf.sprintf "site %d blocked: no operational donor" site))
    | None -> print "usage: recover <site>");
    `Continue
  | [ "terminate"; site ] ->
    (match int_of_string_opt site with
    | Some site ->
      Cluster.terminate_site t.cluster site;
      print (Printf.sprintf "site %d terminated gracefully" site)
    | None -> print "usage: terminate <site>");
    `Continue
  | [ "status" ] ->
    status t print;
    `Continue
  | [ "faillocks"; site ] ->
    (match int_of_string_opt site with
    | Some site ->
      print
        (Printf.sprintf "items fail-locked for site %d: %s" site
           (String.concat ", " (List.map string_of_int (Cluster.faillocks_for t.cluster site))))
    | None -> print "usage: faillocks <site>");
    `Continue
  | "db" :: site :: rest ->
    (match (int_of_string_opt site, rest) with
    | Some site, [] -> show_db t print site None
    | Some site, [ item ] -> show_db t print site (int_of_string_opt item)
    | _ -> print "usage: db <site> [item]");
    `Continue
  | [ "trace" ] ->
    List.iter (fun e -> print (Timeline.describe_entry e)) (Timeline.entries t.cluster);
    `Continue
  | [ "trace"; n ] ->
    (match int_of_string_opt n with
    | Some n ->
      let all = Timeline.entries t.cluster in
      let skip = max 0 (List.length all - n) in
      List.iteri (fun i e -> if i >= skip then print (Timeline.describe_entry e)) all
    | None -> print "usage: trace [n]");
    `Continue
  | [ "metrics" ] ->
    List.iter
      (fun (name, value) -> print (Printf.sprintf "%-28s %d" name value))
      (Metrics.snapshot_counts (Cluster.metrics t.cluster));
    `Continue
  | [ "check" ] ->
    (match Raid_core.Invariant.all t.cluster with
    | Ok () -> print "all invariants hold"
    | Error message -> print (Printf.sprintf "VIOLATION: %s" message));
    `Continue
  | [ "quit" ] | [ "exit" ] -> `Quit
  | _ ->
    print "unknown command; try `help`";
    `Continue

let command t ~print line =
  try interpret t print line
  with Invalid_argument message ->
    print (Printf.sprintf "error: %s" message);
    `Continue

let run_stdin t =
  let print line = print_endline line in
  let rec loop () =
    print_string "raid> ";
    match In_channel.input_line stdin with
    | None -> print "bye"
    | Some line -> ( match command t ~print line with `Continue -> loop () | `Quit -> print "bye")
  in
  loop ()
