(** Scaling studies behind the paper's qualitative cost claims, and
    multi-seed robustness statistics for the figures.

    The paper asserts (§2.2.2) that the control-1 time at the recovering
    site "is dependent on the number of sites", that the operational-site
    side "is dependent on the size of the database", and that control-2
    "is independent of the number of sites".  {!control1_scaling} measures
    all three dependencies.

    The figures report a single run each; {!experiment2_seeds} replays
    Experiment 2 over many seeds and summarises the distribution of its
    headline statistics, so EXPERIMENTS.md can state ranges rather than
    one lucky sample.

    Every sweep here is a batch of independent deterministic runs; each
    takes [?domains] and fans the batch out through {!Raid_par.Pool.map}
    (default: {!Raid_par.Pool.default_domains}, i.e. sequential unless
    [-j] was given).  Results are identical for every domain count. *)

type control1_row = {
  num_sites : int;
  num_items : int;
  recovering_ms : float;
  operational_ms : float;
  control2_ms : float;
}

val control1_scaling :
  ?domains:int ->
  ?seed:int ->
  ?site_counts:int list ->
  ?item_counts:int list ->
  unit ->
  control1_row list

val control1_table : control1_row list -> Raid_util.Table.t

type seed_summary = {
  seeds : int;
  peak : Raid_util.Stats.summary;  (** fail-locks at the recovery point *)
  recovery_txns : Raid_util.Stats.summary;
  copiers : Raid_util.Stats.summary;
  first_10 : Raid_util.Stats.summary;
  last_10 : Raid_util.Stats.summary;
}

val experiment2_seeds :
  ?domains:int -> ?seeds:int list -> ?recovering_weight:float -> unit -> seed_summary

val experiment2_seeds_table : seed_summary -> Raid_util.Table.t

type cluster_size_row = {
  cs_sites : int;
  cs_peak : int;
  cs_recovery_txns : int;
  cs_copiers : int;
}

val recovery_vs_cluster_size :
  ?domains:int -> ?seed:int -> ?site_counts:int list -> unit -> cluster_size_row list
(** The Experiment-2 schedule at different cluster sizes (the paper used
    2 sites): peak fail-locks for the failed site, recovery length and
    copier count. *)

val cluster_size_table : cluster_size_row list -> Raid_util.Table.t

type scenario1_summary = {
  s1_seeds : int;
  aborts : Raid_util.Stats.summary;
}

val scenario1_seeds : ?domains:int -> ?seeds:int list -> unit -> scenario1_summary
(** Experiment 3 scenario 1's abort count across seeds (paper: 13). *)

val scenario1_seeds_table : scenario1_summary -> Raid_util.Table.t
