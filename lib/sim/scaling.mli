(** Scaling studies behind the paper's qualitative cost claims, and
    multi-seed robustness statistics for the figures.

    The paper asserts (§2.2.2) that the control-1 time at the recovering
    site "is dependent on the number of sites", that the operational-site
    side "is dependent on the size of the database", and that control-2
    "is independent of the number of sites".  {!control1_scaling} measures
    all three dependencies.

    The figures report a single run each; {!experiment2_seeds} replays
    Experiment 2 over many seeds and summarises the distribution of its
    headline statistics, so EXPERIMENTS.md can state ranges rather than
    one lucky sample.

    Every sweep here is a batch of independent deterministic runs; each
    takes [?domains] and fans the batch out through {!Raid_par.Pool.map}
    (default: {!Raid_par.Pool.default_domains}, i.e. sequential unless
    [-j] was given).  Results are identical for every domain count. *)

type control1_row = {
  num_sites : int;
  num_items : int;
  recovering_ms : float;
  operational_ms : float;
  control2_ms : float;
}

val control1_scaling :
  ?domains:int ->
  ?seed:int ->
  ?site_counts:int list ->
  ?item_counts:int list ->
  unit ->
  control1_row list

val control1_table : control1_row list -> Raid_util.Table.t

type seed_summary = {
  seeds : int;
  peak : Raid_util.Stats.summary;  (** fail-locks at the recovery point *)
  recovery_txns : Raid_util.Stats.summary;
  copiers : Raid_util.Stats.summary;
  first_10 : Raid_util.Stats.summary;
  last_10 : Raid_util.Stats.summary;
}

val experiment2_seeds :
  ?domains:int -> ?seeds:int list -> ?recovering_weight:float -> unit -> seed_summary

val experiment2_seeds_table : seed_summary -> Raid_util.Table.t

type cluster_size_row = {
  cs_sites : int;
  cs_peak : int;
  cs_recovery_txns : int;
  cs_copiers : int;
}

val recovery_vs_cluster_size :
  ?domains:int -> ?seed:int -> ?site_counts:int list -> unit -> cluster_size_row list
(** The Experiment-2 schedule at different cluster sizes (the paper used
    2 sites): peak fail-locks for the failed site, recovery length and
    copier count. *)

val cluster_size_table : cluster_size_row list -> Raid_util.Table.t

type partial_row = {
  ps_sites : int;
  ps_factor : int;  (** replication factor; 0 means full replication *)
  ps_committed : int;
  ps_aborted : int;
  ps_txns_per_vsec : float;
  ps_events : int;
  ps_messages : int;
}

val partial_scaling :
  ?domains:int ->
  ?seed:int ->
  ?site_counts:int list ->
  ?items:int ->
  ?factor:int ->
  ?zipf_theta:float ->
  ?duration_ms:float ->
  unit ->
  partial_row list
(** Steady-state zipfian throughput under k-holder placement across
    [site_counts] (default 64-1024 sites over 10^5 items, k=3,
    theta=0.9), preceded by a full-replication baseline at the smallest
    site count.  Under write-all-available every write touches every
    site, so throughput is flat in the cluster size; with k holders the
    per-write cost is constant and committed throughput grows with the
    site count.  @raise Invalid_argument on an empty [site_counts]. *)

val partial_scaling_table : partial_row list -> Raid_util.Table.t

type scenario1_summary = {
  s1_seeds : int;
  aborts : Raid_util.Stats.summary;
}

val scenario1_seeds : ?domains:int -> ?seeds:int list -> unit -> scenario1_summary
(** Experiment 3 scenario 1's abort count across seeds (paper: 13). *)

val scenario1_seeds_table : scenario1_summary -> Raid_util.Table.t
