(** Systematic crash-injection matrix over the 2PC / copier / fail-lock
    state machine.

    The engine processes each event atomically (a handler's WAL records
    and outgoing messages are one indivisible step), so the distinct
    places a site can crash are exactly the boundaries {e between}
    events.  This module enumerates those boundaries as named crash
    points — coordinator before/after its durable decide, participant
    before/after its durable vote, mid copier transaction, during a
    fail-lock clear broadcast, during a WAL checkpoint with a buffered
    prepare, mid two-step batch refresh — plus two schedule
    pseudo-points (a flapping site, correlated coordinator+participant
    death).  Each point is run for every (seed, cluster size, full vs
    k=3 partial placement) cell: the victim site is killed at the
    boundary via {!Raid_core.Cluster.crash_site_now}, its volatile state
    wiped, the cluster drained, every site recovered (WAL replay plus
    in-doubt resolution), and a battery of assertions checked — the
    prepared transaction resolves the same way everywhere, no in-doubt
    prepare survives, the DESIGN.md invariants hold, and the cluster
    converges.

    Every cell is a pure function of its coordinates, so the matrix fans
    out through {!Raid_par.Pool.map} and its CSV is byte-identical at
    any [-j]. *)

type point =
  | Coord_after_begin
  | Coord_before_decide
  | Coord_after_decide
  | Coord_mid_copy
  | Part_before_prepare
  | Part_after_prepare
  | Part_after_commit
  | Copier_source
  | During_clear
  | Mid_checkpoint
  | Recovering_mid_batch
  | Flapping
  | Correlated

val all_points : point list
(** In taxonomy order (the [--list] order). *)

val point_name : point -> string
(** Stable kebab-case name ("coord-after-decide", ...). *)

val point_description : point -> string

val point_of_name : string -> point option

type row = {
  r_point : string;
  r_seed : int;
  r_sites : int;
  r_partial : bool;
  r_crashes : int;  (** crash-trigger firings during the cell *)
  r_resolved : string;
      (** how the victim transaction ended: "committed", "aborted" or
          "ghost-commit" (coordinator died post-decide; the outcome was
          proved from survivor update logs / its durable decision
          record) *)
  r_in_doubt : int;  (** in-doubt prepares left anywhere after recovery *)
  r_knowledge_loss : int;
      (** DESIGN.md §11 knowledge-loss events the cell recorded *)
  r_violations : string list;  (** empty iff the cell passed *)
  r_incidents : Raid_obs.Incident.t list;
      (** recovery timelines recorded by the cell's incident recorder,
          ordered by start time *)
}

type summary = { rows : row list; cells : int; failed_cells : int }

val run :
  ?domains:int ->
  ?seeds:int list ->
  ?sizes:int list ->
  ?points:point list ->
  unit ->
  summary
(** Run the matrix: [points] × [seeds] (default 1-3) × [sizes] (default
    4 and 6) × {full, k=3 partial}.  Deterministic for any [domains].
    @raise Invalid_argument on an empty seed/size list or a size below
    3 (a 2PC crash cell needs a coordinator, a victim and a witness). *)

val ok : summary -> bool
(** No cell recorded a violation. *)

val to_csv : summary -> string
(** One line per cell, in matrix order; the [status] column is "ok" or
    the violation list.  Byte-identical across [-j] values. *)

val incidents_csv : summary -> string
(** One line per recovery incident across all cells, prefixed with the
    cell coordinates (point, seed, sites, placement) and laid out as
    {!Raid_obs.Incident.csv_header}.  Byte-identical across [-j]
    values. *)

val table : summary -> Raid_util.Table.t
