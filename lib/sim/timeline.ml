module Engine = Raid_net.Engine
module Vtime = Raid_net.Vtime
module Cluster = Raid_core.Cluster
module Message = Raid_core.Message

let entries cluster = Engine.trace (Cluster.engine cluster)

let site_name s = if s = Engine.external_source then "mgr" else string_of_int s

let describe_entry e =
  let marker = match e.Engine.trace_outcome with Engine.Delivered -> "  " | Engine.Undeliverable -> "!!" in
  Printf.sprintf "%9.2f ms %s %3s -> %-3s %s"
    (Vtime.to_ms e.Engine.trace_time)
    marker
    (site_name e.Engine.trace_src)
    (site_name e.Engine.trace_dst)
    (Message.describe e.Engine.trace_payload)

let render ?(since = Vtime.zero) ?limit cluster =
  let selected =
    List.filter (fun e -> Vtime.compare e.Engine.trace_time since >= 0) (entries cluster)
  in
  let selected =
    match limit with
    | None -> selected
    | Some n -> List.filteri (fun i _ -> i < n) selected
  in
  String.concat "\n" (List.map describe_entry selected)

let message_kinds cluster =
  List.filter_map
    (fun e ->
      match e.Engine.trace_outcome with
      | Engine.Delivered -> Some (Message.describe e.Engine.trace_payload)
      | Engine.Undeliverable -> None)
    (entries cluster)
