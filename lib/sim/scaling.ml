module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Workload = Raid_core.Workload
module Metrics = Raid_core.Metrics
module Stats = Raid_util.Stats
module Table = Raid_util.Table
module Pool = Raid_par.Pool

type control1_row = {
  num_sites : int;
  num_items : int;
  recovering_ms : float;
  operational_ms : float;
  control2_ms : float;
}

let mean_of = function [] -> Float.nan | samples -> Stats.mean samples

let control1_once ~seed ~num_sites ~num_items =
  let config = Config.make ~num_sites ~num_items () in
  let actions =
    List.concat_map
      (fun _ ->
        [
          Scenario.Fail (num_sites - 1);
          Scenario.Run_txns 2;
          Scenario.Recover (num_sites - 1);
          Scenario.Run_until_recovered { site = num_sites - 1; max_txns = 200 };
        ])
      (List.init 10 Fun.id)
  in
  let scenario =
    Scenario.make ~policy:(Scenario.Fixed 0) ~seed ~config
      ~workload:(Workload.Uniform { max_ops = 5; write_prob = 0.5 })
      actions
  in
  let result = Runner.run scenario in
  let metrics = Cluster.metrics result.Runner.cluster in
  {
    num_sites;
    num_items;
    recovering_ms = mean_of metrics.Metrics.control1_recovering_ms;
    operational_ms = mean_of metrics.Metrics.control1_operational_ms;
    control2_ms = mean_of metrics.Metrics.control2_ms;
  }

(* Default site counts reach 64: the bitset/array hot path makes the
   large-cluster rows affordable, and the control-1 trend the paper
   predicts (recovering cost grows with sites) only shows clearly past
   16.  Tier-1 tests pass explicit small [site_counts]. *)
let control1_scaling ?domains ?(seed = 31) ?(site_counts = [ 2; 4; 8; 16; 32; 64 ])
    ?(item_counts = [ 50; 200; 800 ]) () =
  let cases =
    List.map (fun num_sites -> (num_sites, 50)) site_counts
    @ List.map (fun num_items -> (4, num_items)) item_counts
  in
  Pool.map ?domains (fun (num_sites, num_items) -> control1_once ~seed ~num_sites ~num_items) cases

let fmt_ms v = if Float.is_nan v then "-" else Printf.sprintf "%.1f" v

let control1_table rows =
  let table =
    Table.create
      ~title:
        "Control transaction scaling (paper \xc2\xa72.2.2: type-1-recovering grows with sites, \
         type-1-operational with database size, type 2 with neither)"
      [
        ("sites", Table.Right);
        ("items", Table.Right);
        ("type 1 @ recovering (ms)", Table.Right);
        ("type 1 @ operational (ms)", Table.Right);
        ("type 2 (ms)", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.num_sites;
          string_of_int r.num_items;
          fmt_ms r.recovering_ms;
          fmt_ms r.operational_ms;
          fmt_ms r.control2_ms;
        ])
    rows;
  table

type seed_summary = {
  seeds : int;
  peak : Stats.summary;
  recovery_txns : Stats.summary;
  copiers : Stats.summary;
  first_10 : Stats.summary;
  last_10 : Stats.summary;
}

let experiment2_seeds ?domains ?(seeds = List.init 25 (fun i -> i + 1))
    ?(recovering_weight = 0.05) () =
  let runs = Pool.map ?domains (fun seed -> Experiment2.run ~seed ~recovering_weight ()) seeds in
  let stat f = Stats.summarize (List.map (fun r -> f r.Experiment2.stats) runs) in
  {
    seeds = List.length seeds;
    peak = stat (fun s -> float_of_int s.Experiment2.peak_faillocks);
    recovery_txns = stat (fun s -> float_of_int s.Experiment2.txns_to_recover);
    copiers = stat (fun s -> float_of_int s.Experiment2.copier_requests);
    first_10 =
      stat (fun s -> float_of_int (Option.value ~default:0 s.Experiment2.first_10_cleared_in));
    last_10 =
      stat (fun s -> float_of_int (Option.value ~default:0 s.Experiment2.last_10_cleared_in));
  }

let experiment2_seeds_table summary =
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Experiment 2 across %d seeds (the paper reports one run; paper values: peak >45, \
            recovery 160, copiers 2, first-10 6, last-10 106)"
           summary.seeds)
      [
        ("statistic", Table.Left);
        ("mean", Table.Right);
        ("sd", Table.Right);
        ("min", Table.Right);
        ("max", Table.Right);
      ]
  in
  let add name (s : Stats.summary) =
    Table.add_row table
      [
        name;
        Printf.sprintf "%.1f" s.Stats.mean;
        Printf.sprintf "%.1f" s.Stats.stddev;
        Printf.sprintf "%.0f" s.Stats.min;
        Printf.sprintf "%.0f" s.Stats.max;
      ]
  in
  add "peak fail-locks (of 50)" summary.peak;
  add "transactions to recover" summary.recovery_txns;
  add "copier transactions" summary.copiers;
  add "txns to clear first 10" summary.first_10;
  add "txns to clear last 10" summary.last_10;
  table

type cluster_size_row = {
  cs_sites : int;
  cs_peak : int;
  cs_recovery_txns : int;
  cs_copiers : int;
}

let recovery_vs_cluster_size ?domains ?(seed = 33) ?(site_counts = [ 2; 4; 8 ]) () =
  let run num_sites =
    let config = Config.make ~num_sites ~num_items:50 () in
    let scenario =
      Scenario.make ~policy:Scenario.Uniform_random ~seed ~config
        ~workload:(Workload.Uniform { max_ops = 5; write_prob = 0.5 })
        [
          Scenario.Fail 0;
          Scenario.Run_txns 100;
          Scenario.Recover 0;
          Scenario.Run_until_recovered { site = 0; max_txns = 2000 };
        ]
    in
    let result = Runner.run scenario in
    let peak =
      List.fold_left
        (fun acc r ->
          if r.Runner.index <= 100 then max acc r.Runner.faillocks_per_site.(0) else acc)
        0 result.Runner.records
    in
    let recovery =
      match List.rev result.Runner.records with
      | [] -> 0
      | last :: _ -> max 0 (last.Runner.index - 100)
    in
    {
      cs_sites = num_sites;
      cs_peak = peak;
      cs_recovery_txns = recovery;
      cs_copiers = (Cluster.metrics result.Runner.cluster).Metrics.copier_requests;
    }
  in
  Pool.map ?domains run site_counts

let cluster_size_table rows =
  let table =
    Table.create
      ~title:"Experiment-2 schedule at different cluster sizes (the paper used 2 sites)"
      [
        ("sites", Table.Right);
        ("peak locks (site 0)", Table.Right);
        ("txns to recover", Table.Right);
        ("copiers", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.cs_sites;
          string_of_int r.cs_peak;
          string_of_int r.cs_recovery_txns;
          string_of_int r.cs_copiers;
        ])
    rows;
  table

type partial_row = {
  ps_sites : int;
  ps_factor : int;
  ps_committed : int;
  ps_aborted : int;
  ps_txns_per_vsec : float;
  ps_events : int;
  ps_messages : int;
}

(* Write-all-available touches every site per write, so under full
   replication adding sites adds work per transaction and committed
   throughput stays flat (or falls).  With k-holder placement a write
   touches k sites regardless of cluster size, so independent shards mean
   throughput grows with the site count — the break in the wall this
   sweep demonstrates.  The full-replication baseline runs only at the
   smallest site count: a dense database at 1024 x 10^5 would be the very
   cost the placement layer exists to avoid. *)
let partial_scaling ?domains ?(seed = 47) ?(site_counts = [ 64; 256; 512; 1024 ])
    ?(items = 100_000) ?(factor = 3) ?(zipf_theta = 0.9) ?(duration_ms = 1_000.0) () =
  (match site_counts with [] -> invalid_arg "Scaling: site_counts must be non-empty" | _ -> ());
  let case (sites, replication) =
    let config =
      Throughput.make_config ~sites ~items ~duration_ms ~replication ~zipf_theta ()
    in
    let r = Throughput.run ~seed config in
    {
      ps_sites = sites;
      ps_factor =
        (match replication with
        | Config.Full -> 0
        | Config.Partial s -> s.Raid_core.Placement.factor);
      ps_committed = r.Throughput.committed;
      ps_aborted = r.Throughput.aborted;
      ps_txns_per_vsec = Throughput.txns_per_vsec r;
      ps_events = r.Throughput.events;
      ps_messages = r.Throughput.messages_sent;
    }
  in
  let spec = Raid_core.Placement.spec ~factor () in
  let cases =
    (List.hd site_counts, Config.Full)
    :: List.map (fun sites -> (sites, Config.Partial spec)) site_counts
  in
  Pool.map ?domains case cases

let partial_scaling_table rows =
  let table =
    Table.create
      ~title:
        "Partial replication scaling: k-holder placement vs the write-all-available wall \
         (k=0 means full replication)"
      [
        ("sites", Table.Right);
        ("k", Table.Right);
        ("committed", Table.Right);
        ("aborted", Table.Right);
        ("txns/vsec", Table.Right);
        ("events", Table.Right);
        ("messages", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.ps_sites;
          string_of_int r.ps_factor;
          string_of_int r.ps_committed;
          string_of_int r.ps_aborted;
          Printf.sprintf "%.1f" r.ps_txns_per_vsec;
          string_of_int r.ps_events;
          string_of_int r.ps_messages;
        ])
    rows;
  table

type scenario1_summary = { s1_seeds : int; aborts : Stats.summary }

let scenario1_seeds ?domains ?(seeds = List.init 25 (fun i -> i + 1)) () =
  let aborts =
    Pool.map ?domains
      (fun seed -> float_of_int (Experiment3.scenario1 ~seed ()).Experiment3.aborted)
      seeds
  in
  { s1_seeds = List.length seeds; aborts = Stats.summarize aborts }

let scenario1_seeds_table summary =
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Experiment 3 scenario 1 aborts across %d seeds (paper reports 13 in one run)"
           summary.s1_seeds)
      [ ("statistic", Table.Left); ("value", Table.Right) ]
  in
  Table.add_row table [ "mean aborts"; Printf.sprintf "%.1f" summary.aborts.Stats.mean ];
  Table.add_row table [ "sd"; Printf.sprintf "%.1f" summary.aborts.Stats.stddev ];
  Table.add_row table
    [ "range"; Printf.sprintf "%.0f-%.0f" summary.aborts.Stats.min summary.aborts.Stats.max ];
  table
