module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Workload = Raid_core.Workload
module Metrics = Raid_core.Metrics
module Lock_manager = Raid_core.Lock_manager
module Txn = Raid_core.Txn
module Rng = Raid_util.Rng
module Stats = Raid_util.Stats
module Table = Raid_util.Table

type result = {
  committed : int;
  aborted : int;
  lost : int;
  makespan_ms : float;
  mean_txn_ms : float;
  max_in_flight : int;
  cluster : Cluster.t;
}

type state = {
  cluster : Cluster.t;
  locks : Lock_manager.t;
  mutable waiting : (Txn.t * (int * Lock_manager.mode) list) list;  (* id order *)
  assigned : (int, int) Hashtbl.t;  (* in-flight txn -> its coordinator *)
  mutable in_flight : int;
  mutable max_in_flight : int;
  mutable lost : int;
  mutable next_coordinator : int;
  concurrency : int;
}

let pick_coordinator state =
  let operational =
    List.filter
      (fun s -> not (Raid_core.Site.is_waiting (Cluster.site state.cluster s)))
      (Cluster.alive_sites state.cluster)
  in
  let n = List.length operational in
  let pick = List.nth operational (state.next_coordinator mod n) in
  state.next_coordinator <- state.next_coordinator + 1;
  pick

(* Admit every waiting transaction whose locks are free, skipping any that
   conflicts with an earlier waiting transaction (per-item version order
   must follow transaction ids). *)
let rec admit state =
  if state.in_flight < state.concurrency then begin
    let rec scan earlier = function
      | [] -> None
      | ((txn, lockset) as entry) :: rest ->
        let blocked_by_earlier =
          List.exists (fun (_, other) -> Lock_manager.conflicts lockset other) earlier
        in
        if (not blocked_by_earlier) && Lock_manager.try_acquire state.locks ~txn:txn.Txn.id lockset
        then Some (txn, List.rev_append earlier rest)
        else scan (entry :: earlier) rest
    in
    match scan [] state.waiting with
    | None -> ()
    | Some (txn, remaining) ->
      state.waiting <- remaining;
      state.in_flight <- state.in_flight + 1;
      state.max_in_flight <- max state.max_in_flight state.in_flight;
      let coordinator = pick_coordinator state in
      Hashtbl.replace state.assigned txn.Txn.id coordinator;
      Cluster.inject_txn state.cluster ~coordinator txn;
      admit state
  end

(* Chaos support: a crashed coordinator takes its in-flight transactions
   with it (no outcome will ever arrive); release their locks and account
   them as lost. *)
let reap_lost state site =
  let victims =
    Hashtbl.fold (fun txn c acc -> if c = site then txn :: acc else acc) state.assigned []
  in
  List.iter
    (fun txn ->
      Hashtbl.remove state.assigned txn;
      Lock_manager.release_all state.locks ~txn;
      state.in_flight <- state.in_flight - 1;
      state.lost <- state.lost + 1)
    victims

let run ?(seed = 17) ?(concurrency = 4) ?(txns = 200) ?(churn = []) ?telemetry ~config
    ~workload () =
  if concurrency <= 0 then invalid_arg "Concurrent.run: concurrency must be positive";
  if txns <= 0 then invalid_arg "Concurrent.run: txns must be positive";
  let cluster = Cluster.create ~settings:(Cluster.settings ?telemetry ()) config in
  let generator =
    Workload.create workload ~num_items:config.Config.num_items ~rng:(Rng.create seed)
  in
  let state =
    {
      cluster;
      locks = Lock_manager.create ~num_items:config.Config.num_items;
      waiting = [];
      assigned = Hashtbl.create 16;
      in_flight = 0;
      max_in_flight = 0;
      lost = 0;
      next_coordinator = 0;
      concurrency;
    }
  in
  state.waiting <-
    List.init txns (fun _ ->
        let id = Cluster.next_txn_id cluster in
        let txn = Workload.next generator ~id in
        (txn, Lock_manager.of_txn txn));
  (match telemetry with
  | None -> ()
  | Some registry ->
    let module Telemetry = Raid_obs.Telemetry in
    Telemetry.gauge registry "raid_lock_table_locked"
      ~help:"Items locked in the strict-2PL table" (fun () ->
        float_of_int (Lock_manager.locked_count state.locks));
    Telemetry.gauge registry "raid_lock_queue_depth"
      ~help:"Transactions waiting for admission (lock-manager queue depth)" (fun () ->
        float_of_int (List.length state.waiting));
    Telemetry.gauge registry "raid_lock_in_flight"
      ~help:"Transactions currently in flight under the concurrent driver" (fun () ->
        float_of_int state.in_flight));
  let committed = ref 0 and aborted = ref 0 in
  Cluster.set_outcome_hook cluster
    (Some
       (fun outcome ->
         if outcome.Metrics.committed then incr committed else incr aborted;
         Hashtbl.remove state.assigned outcome.Metrics.txn.Txn.id;
         Lock_manager.release_all state.locks ~txn:outcome.Metrics.txn.Txn.id;
         state.in_flight <- state.in_flight - 1;
         admit state));
  admit state;
  (* Drive to quiescence, applying churn events once their completion
     thresholds are reached. *)
  let pending_churn = ref (List.sort compare churn) in
  let finished () = !committed + !aborted + state.lost in
  let apply_due_churn () =
    match !pending_churn with
    | (threshold, action) :: rest when finished () >= threshold ->
      pending_churn := rest;
      (match action with
      | `Fail site ->
        Cluster.fail_site cluster site;
        reap_lost state site
      | `Recover site -> if not (Cluster.alive cluster site) then ignore (Cluster.recover_site cluster site));
      admit state
    | _ -> ()
  in
  let engine = Cluster.engine cluster in
  let rec drive () =
    apply_due_churn ();
    if Raid_net.Engine.step engine then drive ()
    else if !pending_churn <> [] && finished () >= fst (List.hd !pending_churn) then drive ()
    else ()
  in
  drive ();
  Cluster.set_outcome_hook cluster None;
  if state.waiting <> [] then
    failwith
      (Printf.sprintf "Concurrent.run: %d transactions were never admitted"
         (List.length state.waiting));
  let metrics = Cluster.metrics cluster in
  let mean_txn_ms =
    match metrics.Metrics.coordinator_ms @ metrics.Metrics.coordinator_copier_ms with
    | [] -> 0.0
    | samples -> Stats.mean samples
  in
  {
    committed = !committed;
    aborted = !aborted;
    lost = state.lost;
    makespan_ms = Raid_net.Vtime.to_ms (Raid_net.Engine.now (Cluster.engine cluster));
    mean_txn_ms;
    max_in_flight = state.max_in_flight;
    cluster;
  }

type sweep_row = {
  level : int;
  sweep_makespan_ms : float;
  sweep_mean_txn_ms : float;
  speedup : float;
}

let sweep ?domains ?(seed = 17) ?(levels = [ 1; 2; 4; 8; 16 ]) ?(txns = 200) ?(num_sites = 4) () =
  let workload = Workload.Uniform { max_ops = 5; write_prob = 0.5 } in
  let results =
    Raid_par.Pool.map ?domains
      (fun level ->
        let config = Config.make ~num_sites ~num_items:50 () in
        (level, run ~seed ~concurrency:level ~txns ~config ~workload ()))
      levels
  in
  let serial_makespan =
    match results with (_, first) :: _ -> first.makespan_ms | [] -> 0.0
  in
  List.map
    (fun (level, r) ->
      {
        level;
        sweep_makespan_ms = r.makespan_ms;
        sweep_mean_txn_ms = r.mean_txn_ms;
        speedup = serial_makespan /. r.makespan_ms;
      })
    results

let sweep_table rows =
  let table =
    Table.create
      ~title:
        "Ablation A7: concurrent transaction processing (conservative strict 2PL; paper \
         processed transactions serially)"
      [
        ("concurrency level", Table.Right);
        ("makespan (ms)", Table.Right);
        ("mean txn (ms)", Table.Right);
        ("speedup", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.level;
          Printf.sprintf "%.0f" r.sweep_makespan_ms;
          Printf.sprintf "%.1f" r.sweep_mean_txn_ms;
          Printf.sprintf "%.2fx" r.speedup;
        ])
    rows;
  table
