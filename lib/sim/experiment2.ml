module Config = Raid_core.Config
module Workload = Raid_core.Workload
module Chart = Raid_util.Chart
module Table = Raid_util.Table

type stats = {
  peak_faillocks : int;
  peak_fraction : float;
  txns_to_recover : int;
  copier_requests : int;
  first_10_cleared_in : int option;
  last_10_cleared_in : int option;
  aborted : int;
}

type t = { result : Runner.result; stats : stats; series : (float * float) list }

let paper_workload = Workload.Uniform { max_ops = 5; write_prob = 0.5 }

let scenario ?(seed = 15) ?(recovering_weight = 0.05) ?(max_recovery_txns = 1200) () =
  let config = Config.make ~num_sites:2 ~num_items:50 () in
  Scenario.make ~policy:(Scenario.Fixed 1) ~seed ~config ~workload:paper_workload
    [
      Scenario.Fail 0;
      Scenario.Run_txns 100;
      Scenario.Recover 0;
      Scenario.Set_policy
        (Scenario.Weighted [ (0, recovering_weight); (1, 1.0 -. recovering_weight) ]);
      Scenario.Run_until_recovered { site = 0; max_txns = max_recovery_txns };
    ]

let run ?seed ?recovering_weight ?max_recovery_txns () =
  let result = Runner.run (scenario ?seed ?recovering_weight ?max_recovery_txns ()) in
  let series = Runner.series result ~site:0 in
  (* Locks for site 0 over the recovery phase (txn 101 onwards). *)
  let recovery_records =
    List.filter (fun r -> r.Runner.index > 100) result.Runner.records
  in
  let peak_faillocks =
    match recovery_records with
    | [] -> 0
    | first :: _ ->
      (* Value when site 0 came back = locks before its first post-recovery
         transaction; the count recorded at txn 100 equals it. *)
      let at_100 =
        List.fold_left
          (fun acc r -> if r.Runner.index = 100 then r.Runner.faillocks_per_site.(0) else acc)
          first.Runner.faillocks_per_site.(0)
          result.Runner.records
      in
      at_100
  in
  let txns_to_recover =
    match List.rev recovery_records with
    | [] -> 0
    | last :: _ -> last.Runner.index - 100
  in
  let count_while predicate =
    List.length (List.filter (fun r -> predicate r.Runner.faillocks_per_site.(0)) recovery_records)
  in
  let first_10_cleared_in =
    if peak_faillocks < 10 then None
    else Some (count_while (fun locks -> locks > peak_faillocks - 10))
  in
  let last_10_cleared_in = if peak_faillocks < 10 then None else Some (count_while (fun l -> l < 10)) in
  let copier_requests =
    List.fold_left (fun acc r -> acc + r.Runner.outcome.Raid_core.Metrics.copier_requests) 0
      recovery_records
  in
  let stats =
    {
      peak_faillocks;
      peak_fraction = float_of_int peak_faillocks /. 50.0;
      txns_to_recover;
      copier_requests;
      first_10_cleared_in;
      last_10_cleared_in;
      aborted = result.Runner.aborted;
    }
  in
  { result; stats; series }

let figure t =
  let chart =
    Chart.create ~title:"Figure 1: data availability during failure and recovery (db=50, txn<=5)"
      ~x_label:"number of transactions" ~y_label:"fail-locks set (site 0)" ()
  in
  Chart.add_series chart { Chart.label = "site 0"; glyph = '*'; points = t.series };
  chart

let summary_table t =
  let table =
    Table.create ~title:"Experiment 2 summary"
      [ ("statistic", Table.Left); ("paper", Table.Right); ("measured", Table.Right) ]
  in
  let opt = function None -> "-" | Some v -> string_of_int v in
  Table.add_row table
    [ "fail-locked fraction at peak"; "> 90%"; Printf.sprintf "%.0f%%" (t.stats.peak_fraction *. 100.) ];
  Table.add_row table
    [ "transactions to complete recovery"; "160"; string_of_int t.stats.txns_to_recover ];
  Table.add_row table [ "copier transactions requested"; "2"; string_of_int t.stats.copier_requests ];
  Table.add_row table
    [ "transactions to clear first 10 locks"; "6"; opt t.stats.first_10_cleared_in ];
  Table.add_row table
    [ "transactions to clear last 10 locks"; "106"; opt t.stats.last_10_cleared_in ];
  Table.add_row table [ "aborted transactions"; "0"; string_of_int t.stats.aborted ];
  table
