module Trace = Raid_obs.Trace
module Trace_export = Raid_obs.Trace_export
module Cluster = Raid_core.Cluster
module Metrics = Raid_core.Metrics
module Message = Raid_core.Message
module Engine = Raid_net.Engine
module Stats = Raid_util.Stats

let scenarios =
  [
    ("exp2", "Experiment 2: site 0 down for 100 txns, then recovers (Figure 1)");
    ("exp3-1", "Experiment 3 scenario 1: alternating two-site failures (Figure 2)");
    ("exp3-2", "Experiment 3 scenario 2: four sites fail singly (Figure 3)");
  ]

let scenario_of_name ?seed name =
  match name with
  | "exp2" -> Ok (Experiment2.scenario ?seed ())
  | "exp3-1" -> Ok (Experiment3.scenario1_scenario ?seed ())
  | "exp3-2" -> Ok (Experiment3.scenario2_scenario ?seed ())
  | other ->
    Error
      (Printf.sprintf "unknown scenario %S (available: %s)" other
         (String.concat ", " (List.map fst scenarios)))

type output = {
  trace : Trace.t;
  result : Runner.result;
  messages : Trace_export.message list;
  num_sites : int;
}

let run ?capacity scenario =
  let collector = Trace.create ?capacity () in
  let result = Runner.run ~trace:true ~obs:(Trace.sink collector) scenario in
  let engine = Cluster.engine result.Runner.cluster in
  let messages =
    List.map
      (fun (e : Message.t Engine.trace_entry) ->
        {
          Trace_export.msg_at = e.Engine.trace_time;
          msg_src = e.Engine.trace_src;
          msg_dst = e.Engine.trace_dst;
          msg_label = Message.describe e.Engine.trace_payload;
          msg_delivered = (e.Engine.trace_outcome = Engine.Delivered);
        })
      (Engine.trace engine)
  in
  {
    trace = collector;
    result;
    messages;
    num_sites = Cluster.num_sites result.Runner.cluster;
  }

let spans output = Raid_obs.Span.assemble (Trace.entries output.trace)
let incidents output = Raid_obs.Incident.assemble (Trace.entries output.trace)
let jsonl output = Trace_export.jsonl output.trace

let chrome output =
  Trace_export.chrome ~messages:output.messages ~num_sites:output.num_sites output.trace

let summary output =
  let buffer = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buffer in
  let metrics = Cluster.metrics output.result.Runner.cluster in
  Format.fprintf ppf "transactions: %d committed, %d aborted@."
    output.result.Runner.committed output.result.Runner.aborted;
  Format.fprintf ppf "trace: %d events emitted, %d dropped, %d messages@.@."
    (Trace.emitted output.trace) (Trace.dropped output.trace)
    (List.length output.messages);
  Format.fprintf ppf "events by kind:@.";
  List.iter
    (fun (kind, count) -> Format.fprintf ppf "  %-20s %6d@." kind count)
    (Trace.counts output.trace);
  Format.fprintf ppf "@.virtual latencies (ms):@.";
  List.iter
    (fun (label, samples) ->
      if samples <> [] then begin
        Format.fprintf ppf "  %-22s %a@." label Stats.pp_summary
          (Stats.summarize samples);
        if List.length samples >= 5 then
          Format.fprintf ppf "@[<v 4>    %a@]@." Stats.pp_histogram
            (Stats.histogram samples)
      end)
    (Metrics.latency_groups metrics);
  Format.pp_print_flush ppf ();
  Buffer.contents buffer

let render ~format output =
  match format with
  | `Jsonl -> jsonl output
  | `Chrome -> chrome output
  | `Summary -> summary output
