module Engine = Raid_net.Engine
module Cluster = Raid_core.Cluster
module Config = Raid_core.Config
module Cost_model = Raid_core.Cost_model
module Placement = Raid_core.Placement
module Site = Raid_core.Site
module Txn = Raid_core.Txn
module Message = Raid_core.Message
module Metrics = Raid_core.Metrics
module Invariant = Raid_core.Invariant
module Database = Raid_storage.Database
module Update_log = Raid_storage.Update_log
module Wal = Raid_storage.Wal
module Rng = Raid_util.Rng
module Table = Raid_util.Table

(* {2 Crash-point taxonomy}

   The engine processes events atomically (a handler's WAL writes and
   outgoing messages are one indivisible step), so the distinct points
   at which a site can die are the boundaries {e between} events.  Each
   point below names one such boundary, parameterised by the role the
   dying site plays in the in-flight protocol step.  [Flapping] and
   [Correlated] are schedule pseudo-points: repeated crash/recover of
   one site, and simultaneous death of a participant and its
   coordinator. *)

type point =
  | Coord_after_begin
  | Coord_before_decide
  | Coord_after_decide
  | Coord_mid_copy
  | Part_before_prepare
  | Part_after_prepare
  | Part_after_commit
  | Copier_source
  | During_clear
  | Mid_checkpoint
  | Recovering_mid_batch
  | Flapping
  | Correlated

let all_points =
  [
    Coord_after_begin;
    Coord_before_decide;
    Coord_after_decide;
    Coord_mid_copy;
    Part_before_prepare;
    Part_after_prepare;
    Part_after_commit;
    Copier_source;
    During_clear;
    Mid_checkpoint;
    Recovering_mid_batch;
    Flapping;
    Correlated;
  ]

let point_name = function
  | Coord_after_begin -> "coord-after-begin"
  | Coord_before_decide -> "coord-before-decide"
  | Coord_after_decide -> "coord-after-decide"
  | Coord_mid_copy -> "coord-mid-copy"
  | Part_before_prepare -> "part-before-prepare"
  | Part_after_prepare -> "part-after-prepare"
  | Part_after_commit -> "part-after-commit"
  | Copier_source -> "copier-source"
  | During_clear -> "during-clear"
  | Mid_checkpoint -> "mid-checkpoint"
  | Recovering_mid_batch -> "recovering-mid-batch"
  | Flapping -> "flapping"
  | Correlated -> "correlated"

let point_description = function
  | Coord_after_begin -> "coordinator dies with its Prepares in flight, before any vote returns"
  | Coord_before_decide -> "coordinator dies after the first vote, before the commit decision"
  | Coord_after_decide -> "coordinator dies after durably deciding commit, Commits in flight"
  | Coord_mid_copy -> "coordinator dies mid copier transaction, after a Copy_reply"
  | Part_before_prepare -> "participant dies before its Prepare arrives (bounced vote)"
  | Part_after_prepare -> "participant dies after voting yes: the canonical in-doubt crash"
  | Part_after_commit -> "participant dies after applying Commit, its ack in flight"
  | Copier_source -> "copier source dies right after serving a Copy_request"
  | During_clear -> "a site dies right after applying a fail-lock clear broadcast"
  | Mid_checkpoint -> "participant dies after a Commit whose WAL checkpoint ran with another prepare buffered"
  | Recovering_mid_batch -> "recovering site dies again mid two-step batch refresh"
  | Flapping -> "one site crashes and recovers repeatedly at shifting protocol points"
  | Correlated -> "participant and coordinator die together around the decide point"

let point_of_name name =
  List.find_opt (fun p -> point_name p = name) all_points

(* {2 Matrix rows} *)

type row = {
  r_point : string;
  r_seed : int;
  r_sites : int;
  r_partial : bool;
  r_crashes : int;  (** crash-trigger firings during the cell *)
  r_resolved : string;
      (** how the victim transaction ended: "committed", "aborted" or
          "ghost-commit" (coordinator died post-decide; outcome proved
          from survivor logs) *)
  r_in_doubt : int;  (** in-doubt prepares left anywhere after recovery *)
  r_knowledge_loss : int;  (** DESIGN.md §11 events recorded by the cell *)
  r_violations : string list;  (** empty iff the cell passed *)
  r_incidents : Raid_obs.Incident.t list;  (** recovery timelines the cell produced *)
}

type summary = { rows : row list; cells : int; failed_cells : int }

(* {2 Crash triggers}

   A trigger watches events as sites process them and crashes its
   victims immediately {e after} the matching handler step completes —
   the step's outgoing messages are already in flight, exactly the
   at-a-boundary semantics the engine's atomicity gives us.  Triggers
   are installed by wrapping each site's handler; a wrapper on a dead
   site never runs (undeliverable arrivals invoke no handler). *)

type trigger = {
  tr_match : self:int -> Message.t Engine.event -> bool;
  tr_victims : self:int -> int list;
  mutable tr_remaining : int;  (* fires when the nth match completes *)
  mutable tr_fired : bool;
}

let trigger ?(count = 1) ~victims match_ =
  { tr_match = match_; tr_victims = victims; tr_remaining = count; tr_fired = false }

let arm cluster triggers =
  let engine = Cluster.engine cluster in
  for s = 0 to Cluster.num_sites cluster - 1 do
    let base = Site.handler (Cluster.site cluster s) in
    Engine.register engine s (fun ctx event ->
        base ctx event;
        List.iter
          (fun tr ->
            if (not tr.tr_fired) && tr.tr_match ~self:s event then begin
              tr.tr_remaining <- tr.tr_remaining - 1;
              if tr.tr_remaining <= 0 then begin
                tr.tr_fired <- true;
                List.iter (Cluster.crash_site_now cluster) (tr.tr_victims ~self:s)
              end
            end)
          !triggers)
  done

let on_message pred ~self:_ = function
  | Engine.Message { payload; _ } -> pred payload
  | Engine.Send_failed _ | Engine.Timer _ -> false

let at site pred ~self event = self = site && on_message pred ~self event

(* {2 One matrix cell}

   Items 0-3 are reserved for victim transactions; warmup and epilogue
   traffic stays on items 4+, so the post-recovery atomicity check on a
   victim's writes never races a later write to the same item. *)

let num_items = 12

let run_cell ~point ~seed ~sites:n ~partial =
  let rng = Rng.create (Rng.mix ((seed * 8191) + (n * 131) + if partial then 1 else 0)) in
  let on_demand =
    match point with Coord_mid_copy | During_clear | Copier_source -> true | _ -> false
  in
  let config =
    Config.make ~cost:Cost_model.free
      ~durability:
        (Config.Durable_wal
           { checkpoint_interval = (match point with Mid_checkpoint -> 2 | _ -> 8) })
      ~recovery:
        (if on_demand then Config.On_demand
         else Config.Two_step { threshold = 1.0; batch_size = 4 })
      ~replication:
        (if partial then Config.Partial (Placement.spec ~factor:3 ()) else Config.Full)
      ~num_sites:n ~num_items ()
  in
  (* Every cell records its recovery timelines: crashes and recoveries
     are the matrix's whole subject, so the incident stream doubles as a
     cross-check that each cell's cluster really went down and came
     back. *)
  let recorder = Raid_obs.Incident.recorder () in
  let cluster =
    Cluster.create
      ~settings:(Cluster.settings ~obs:(Raid_obs.Incident.recorder_sink recorder) ())
      config
  in
  let engine = Cluster.engine cluster in
  let all_sites = List.init n Fun.id in
  let violations = ref [] in
  let viol fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let stores site item = Config.stores config ~site ~item in
  let holders item = List.filter (fun s -> stores s item) all_sites in
  (* Roles: [c] coordinates the victim transaction and holds item 0;
     [p] is a distinct holder of item 0 (the crashing participant). *)
  let c = match holders 0 with h :: _ -> h | [] -> 0 in
  let p =
    match List.filter (fun s -> s <> c) (holders 0) with
    | s :: _ -> s
    | [] -> (c + 1) mod n
  in
  let submit_background coordinator =
    let id = Cluster.next_txn_id cluster in
    let item = 4 + Rng.int rng (num_items - 4) in
    let item' = 4 + Rng.int rng (num_items - 4) in
    ignore (Cluster.submit cluster ~coordinator (Txn.make ~id [ Txn.Write item; Txn.Read item' ]))
  in
  let notice_dead () =
    let dead = List.filter (fun s -> not (Cluster.alive cluster s)) all_sites in
    (match (dead, List.find_opt (Cluster.alive cluster) all_sites) with
    | [], _ | _, None -> ()
    | _ :: _, Some witness -> Engine.inject engine ~dst:witness (Message.Failure_noticed dead));
    Cluster.run_to_quiescence cluster
  in
  let recover_all () =
    let dead =
      Array.of_list (List.filter (fun s -> not (Cluster.alive cluster s)) all_sites)
    in
    Rng.shuffle rng dead;
    Array.iter
      (fun s ->
        match Cluster.recover_site cluster s with
        | `Recovered -> ()
        | `Blocked -> viol "site %d blocked on recovery" s)
      dead;
    Cluster.run_to_quiescence cluster
  in
  (* Warmup: establish versions and update-log history on every site. *)
  List.iter (fun i -> submit_background (i mod n)) [ 1; 2; 3; 4 ];
  (* The copier points need the coordinator to hold a fail-locked copy:
     crash it, advance item 0 behind its back, bring it back under
     [On_demand] so the lock survives until a transaction reads it. *)
  if on_demand then begin
    Cluster.fail_site cluster c;
    let writer = if p <> c then p else (c + 1) mod n in
    let id = Cluster.next_txn_id cluster in
    ignore (Cluster.submit cluster ~coordinator:writer (Txn.make ~id [ Txn.Write 0 ]));
    let id = Cluster.next_txn_id cluster in
    ignore (Cluster.submit cluster ~coordinator:writer (Txn.make ~id [ Txn.Write 0 ]));
    (match Cluster.recover_site cluster c with
    | `Recovered -> ()
    | `Blocked -> viol "setup: coordinator blocked on recovery")
  end;
  if point = Recovering_mid_batch then begin
    Cluster.fail_site cluster p;
    let writer = c in
    List.iter
      (fun item ->
        let id = Cluster.next_txn_id cluster in
        ignore (Cluster.submit cluster ~coordinator:writer (Txn.make ~id [ Txn.Write item ])))
      [ 0; 1; 2 ]
  end;
  let triggers = ref [] in
  arm cluster triggers;
  let crashes () =
    List.length (List.filter (fun tr -> tr.tr_fired) !triggers)
  in
  (* Victim transactions, on the reserved items.  [victims] collects
     (txn, write items) pairs for the post-recovery atomicity check. *)
  let victim_txns = ref [] in
  let inject_victim ~coordinator txn =
    victim_txns := (txn, Txn.write_items txn) :: !victim_txns;
    Cluster.inject_txn cluster ~coordinator txn;
    Cluster.run_to_quiescence cluster;
    notice_dead ()
  in
  let expected_acks items =
    List.length
      (List.filter (fun s -> s <> c && List.exists (fun item -> stores s item) items) all_sites)
  in
  let write2 = [ Txn.Write 0; Txn.Write 1 ] in
  (match point with
  | Coord_after_begin ->
    let id = Cluster.next_txn_id cluster in
    triggers :=
      [ trigger ~victims:(fun ~self:_ -> [ c ])
          (at c (function Message.Begin_txn t -> t.Txn.id = id | _ -> false)) ];
    inject_victim ~coordinator:c (Txn.make ~id write2)
  | Coord_before_decide ->
    let id = Cluster.next_txn_id cluster in
    triggers :=
      [ trigger ~victims:(fun ~self:_ -> [ c ])
          (at c (function Message.Prepare_ack { txn } -> txn = id | _ -> false)) ];
    inject_victim ~coordinator:c (Txn.make ~id write2)
  | Coord_after_decide ->
    let id = Cluster.next_txn_id cluster in
    triggers :=
      [ trigger
          ~count:(expected_acks [ 0; 1 ])
          ~victims:(fun ~self:_ -> [ c ])
          (at c (function Message.Prepare_ack { txn } -> txn = id | _ -> false)) ];
    inject_victim ~coordinator:c (Txn.make ~id write2)
  | Coord_mid_copy ->
    let id = Cluster.next_txn_id cluster in
    triggers :=
      [ trigger ~victims:(fun ~self:_ -> [ c ])
          (at c (function Message.Copy_reply { txn; _ } -> txn = id | _ -> false)) ];
    inject_victim ~coordinator:c (Txn.make ~id [ Txn.Read 0; Txn.Write 1 ])
  | Part_before_prepare ->
    let id = Cluster.next_txn_id cluster in
    triggers :=
      [ trigger ~victims:(fun ~self:_ -> [ p ])
          (at c (function Message.Begin_txn t -> t.Txn.id = id | _ -> false)) ];
    inject_victim ~coordinator:c (Txn.make ~id write2)
  | Part_after_prepare ->
    let id = Cluster.next_txn_id cluster in
    triggers :=
      [ trigger ~victims:(fun ~self:_ -> [ p ])
          (at p (function Message.Prepare { txn; _ } -> txn = id | _ -> false)) ];
    inject_victim ~coordinator:c (Txn.make ~id write2)
  | Part_after_commit ->
    let id = Cluster.next_txn_id cluster in
    triggers :=
      [ trigger ~victims:(fun ~self:_ -> [ p ])
          (at p (function Message.Commit { txn } -> txn = id | _ -> false)) ];
    inject_victim ~coordinator:c (Txn.make ~id write2)
  | Copier_source ->
    let id = Cluster.next_txn_id cluster in
    triggers :=
      [ trigger
          ~victims:(fun ~self -> [ self ])
          (fun ~self event ->
            self <> c
            && on_message
                 (function Message.Copy_request { txn; _ } -> txn = id | _ -> false)
                 ~self event) ];
    inject_victim ~coordinator:c (Txn.make ~id [ Txn.Read 0; Txn.Write 1 ])
  | During_clear ->
    let id = Cluster.next_txn_id cluster in
    triggers :=
      [ trigger
          ~victims:(fun ~self -> [ self ])
          (fun ~self event ->
            self <> c
            && on_message
                 (function Message.Faillocks_cleared { site; _ } -> site = c | _ -> false)
                 ~self event) ];
    inject_victim ~coordinator:c (Txn.make ~id [ Txn.Read 0; Txn.Write 1 ])
  | Mid_checkpoint ->
    (* Two overlapping disjoint-write transactions at one coordinator:
       the participant's checkpoint after applying A's Commit runs while
       B's durable prepare is still buffered.  The crash right after
       that checkpoint must not lose B's in-doubt record. *)
    let id_a = Cluster.next_txn_id cluster in
    let id_b = Cluster.next_txn_id cluster in
    triggers :=
      [ trigger ~victims:(fun ~self:_ -> [ p ])
          (at p (function Message.Commit { txn } -> txn = id_a | _ -> false)) ];
    let a = Txn.make ~id:id_a write2 in
    let b = Txn.make ~id:id_b [ Txn.Write 2; Txn.Write 3 ] in
    victim_txns := (b, Txn.write_items b) :: !victim_txns;
    victim_txns := (a, Txn.write_items a) :: !victim_txns;
    Cluster.inject_txn cluster ~coordinator:c a;
    Cluster.inject_txn cluster ~coordinator:c b;
    Cluster.run_to_quiescence cluster;
    notice_dead ()
  | Recovering_mid_batch ->
    triggers :=
      [ trigger ~victims:(fun ~self:_ -> [ p ])
          (at p (function Message.Copy_reply _ -> true | _ -> false)) ];
    (match Cluster.recover_site cluster p with
    | `Recovered | `Blocked -> ());
    Cluster.run_to_quiescence cluster;
    notice_dead ()
  | Flapping ->
    (* Two rounds on disjoint item pairs, crashing [p] at a different
       protocol point each time and recovering it in between. *)
    List.iteri
      (fun round items ->
        let id = Cluster.next_txn_id cluster in
        let matcher =
          if round = 0 then at p (function Message.Prepare { txn; _ } -> txn = id | _ -> false)
          else at p (function Message.Commit { txn } -> txn = id | _ -> false)
        in
        triggers := trigger ~victims:(fun ~self:_ -> [ p ]) matcher :: !triggers;
        inject_victim ~coordinator:c (Txn.make ~id (List.map (fun i -> Txn.Write i) items));
        recover_all ())
      [ [ 0; 1 ]; [ 2; 3 ] ]
  | Correlated ->
    let id = Cluster.next_txn_id cluster in
    triggers :=
      [
        trigger ~victims:(fun ~self:_ -> [ p ])
          (at p (function Message.Prepare { txn; _ } -> txn = id | _ -> false));
        trigger
          ~count:(expected_acks [ 0; 1 ])
          ~victims:(fun ~self:_ -> [ c ])
          (at c (function Message.Prepare_ack { txn } -> txn = id | _ -> false));
      ];
    inject_victim ~coordinator:c (Txn.make ~id write2));
  if crashes () = 0 then viol "no crash trigger fired: the point was not exercised";
  (* Ghost commits: a victim transaction with no recorded outcome whose
     decision provably was commit (a survivor applied it, or the
     coordinator's durable decision record exists) is recorded for the
     oracle before anything else runs. *)
  let outcome_of id =
    List.find_opt (fun o -> o.Metrics.txn.Txn.id = id) (Cluster.outcomes cluster)
  in
  let commit_evidence id =
    (* Only an entry installing version [id] proves a commit: copier
       installs are logged under the requesting transaction's id but
       carry the source copy's older version (the bug this matrix first
       caught in the site-level probe scan). *)
    List.exists
      (fun s ->
        List.exists
          (fun e -> e.Update_log.txn = id && e.Update_log.write.Database.version = id)
          (Update_log.entries (Site.log (Cluster.site cluster s))))
      all_sites
    ||
    match Site.wal (Cluster.site cluster c) with
    | Some wal -> Wal.decided_commit wal ~txn:id
    | None -> false
  in
  let classify (txn, _items) =
    match outcome_of txn.Txn.id with
    | Some o -> if o.Metrics.committed then "committed" else "aborted"
    | None ->
      if commit_evidence txn.Txn.id then begin
        Cluster.note_ghost_commit cluster txn;
        "ghost-commit"
      end
      else "aborted"
  in
  let classified = List.map (fun v -> (v, classify v)) (List.rev !victim_txns) in
  let resolved = match classified with [] -> "none" | l -> snd (List.nth l (List.length l - 1)) in
  recover_all ();
  (* Assertion battery, on the fully recovered, quiescent cluster. *)
  let in_doubt_left =
    List.fold_left (fun acc s -> acc + Site.in_doubt (Cluster.site cluster s)) 0 all_sites
  in
  if in_doubt_left > 0 then viol "%d in-doubt prepares survived recovery" in_doubt_left;
  List.iter
    (fun s ->
      let site = Cluster.site cluster s in
      if Site.buffered_prepares site > 0 then
        viol "site %d still buffers %d prepares" s (Site.buffered_prepares site);
      if Site.pending_2pc site > 0 then
        viol "site %d still awaits %d 2PC acks" s (Site.pending_2pc site))
    all_sites;
  (* Atomicity: each victim transaction is either applied at every
     alive storing site (or the site's staleness is fail-locked in the
     union view) or applied nowhere. *)
  List.iter
    (fun ((txn, items), verdict) ->
      let id = txn.Txn.id in
      let committed = verdict <> "aborted" in
      List.iter
        (fun item ->
          List.iter
            (fun s ->
              if stores s item then begin
                let v =
                  match Database.version (Site.database (Cluster.site cluster s)) item with
                  | Some v -> v
                  | None -> 0
                in
                let locked = List.mem item (Cluster.faillocks_for cluster s) in
                if committed && v <> id && not locked then
                  viol "txn %d committed but site %d has item %d at v%d, unlocked" id s item v;
                if (not committed) && v = id then
                  viol "txn %d aborted but site %d applied item %d" id s item
              end)
            all_sites)
        items)
    classified;
  (* Converge: under [On_demand] the recovered sites keep their locks
     until a transaction reads through them, so read the locked items
     from each lagging site until the union view drains. *)
  let rec converge budget =
    if budget > 0 && Cluster.total_faillocks cluster > 0 then begin
      List.iter
        (fun s ->
          match Cluster.faillocks_for cluster s with
          | [] -> ()
          | locked ->
            let id = Cluster.next_txn_id cluster in
            ignore
              (Cluster.submit cluster ~coordinator:s
                 (Txn.make ~id (List.map (fun i -> Txn.Read i) locked))))
        all_sites;
      converge (budget - 1)
    end
  in
  converge 4;
  List.iter (fun i -> submit_background (i mod n)) [ 1; 2 ];
  (match Invariant.all cluster with
  | Ok () -> ()
  | Error message -> viol "invariant: %s" message);
  if not (Cluster.fully_consistent cluster) then begin
    let disagreements = ref [] in
    for item = num_items - 1 downto 0 do
      let copies =
        List.filter_map
          (fun s ->
            match Database.read (Site.database (Cluster.site cluster s)) item with
            | Some (value, version) -> Some (s, value, version)
            | None -> None)
          all_sites
      in
      match copies with
      | [] -> ()
      | (_, value, version) :: rest ->
        if List.exists (fun (_, v, ver) -> v <> value || ver <> version) rest then
          disagreements :=
            Printf.sprintf "item %d: %s" item
              (String.concat " "
                 (List.map (fun (s, v, ver) -> Printf.sprintf "s%d=v%d@%d" s ver v) copies))
            :: !disagreements
    done;
    viol "cluster did not converge (%d fail-locks left%s)"
      (Cluster.total_faillocks cluster)
      (match !disagreements with [] -> "" | d -> "; " ^ String.concat ", " d)
  end;
  {
    r_point = point_name point;
    r_seed = seed;
    r_sites = n;
    r_partial = partial;
    r_crashes = crashes ();
    r_resolved = resolved;
    r_in_doubt = in_doubt_left;
    r_knowledge_loss = Cluster.knowledge_loss_events cluster;
    r_violations = List.rev !violations;
    r_incidents = Raid_obs.Incident.incidents recorder;
  }

(* {2 The matrix} *)

let default_seeds = [ 1; 2; 3 ]
let default_sizes = [ 4; 6 ]

let run ?domains ?(seeds = default_seeds) ?(sizes = default_sizes) ?(points = all_points) () =
  if seeds = [] then invalid_arg "Crashmatrix.run: empty seed list";
  if sizes = [] then invalid_arg "Crashmatrix.run: empty size list";
  List.iter
    (fun n -> if n < 3 then invalid_arg "Crashmatrix.run: cluster sizes below 3 cannot host a 2PC crash cell")
    sizes;
  let cells =
    List.concat_map
      (fun point ->
        List.concat_map
          (fun seed ->
            List.concat_map
              (fun sites -> [ (point, seed, sites, false); (point, seed, sites, true) ])
              sizes)
          seeds)
      points
  in
  let rows =
    Raid_par.Pool.map ?domains
      (fun (point, seed, sites, partial) -> run_cell ~point ~seed ~sites ~partial)
      cells
  in
  let failed_cells = List.length (List.filter (fun r -> r.r_violations <> []) rows) in
  { rows; cells = List.length rows; failed_cells }

let ok summary = summary.failed_cells = 0

let to_csv summary =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "point,seed,sites,placement,crashes,resolved,in_doubt,knowledge_loss,violations\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%s,%d,%s,%d,%d,%s\n" r.r_point r.r_seed r.r_sites
           (if r.r_partial then "partial-k3" else "full")
           r.r_crashes r.r_resolved r.r_in_doubt r.r_knowledge_loss
           (match r.r_violations with
           | [] -> "ok"
           | v -> String.concat "; " v)))
    summary.rows;
  Buffer.contents buf

(* One row per recovery incident across all cells, keyed by the cell's
   coordinates — the long-form companion to {!to_csv} for studying MTTR
   phase decomposition over the whole matrix. *)
let incidents_csv summary =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf ("point,seed,sites,placement," ^ Raid_obs.Incident.csv_header ^ "\n");
  List.iter
    (fun r ->
      List.iter
        (fun incident ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%d,%d,%s,%s\n" r.r_point r.r_seed r.r_sites
               (if r.r_partial then "partial-k3" else "full")
               (Raid_obs.Incident.csv_row incident)))
        r.r_incidents)
    summary.rows;
  Buffer.contents buf

let table summary =
  let t =
    Table.create ~title:"Crash-recovery matrix"
      [
        ("point", Table.Left);
        ("seed", Table.Right);
        ("sites", Table.Right);
        ("placement", Table.Left);
        ("crashes", Table.Right);
        ("resolved", Table.Left);
        ("in-doubt", Table.Right);
        ("kn-loss", Table.Right);
        ("status", Table.Left);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.r_point;
          string_of_int r.r_seed;
          string_of_int r.r_sites;
          (if r.r_partial then "partial-k3" else "full");
          string_of_int r.r_crashes;
          r.r_resolved;
          string_of_int r.r_in_doubt;
          string_of_int r.r_knowledge_loss;
          (match r.r_violations with [] -> "ok" | v -> String.concat "; " v);
        ])
    summary.rows;
  t
