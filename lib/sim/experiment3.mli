(** Experiment 3: consistency of replicated copies (paper §4,
    Figures 2 and 3).

    Scenario 1 (Figure 2): two sites alternate failures — site 0 down for
    transactions 1-25, site 1 down for 26-50, both up from 51.  During
    26-50 the recovering site 0 cannot reach any up-to-date copy of the
    items it missed, so transactions reading them abort (the paper saw 13
    such aborts).

    Scenario 2 (Figure 3): four sites fail singly in succession (site k
    down for transactions 25k+1 .. 25k+25), then all run from 101.  An
    up-to-date copy always exists, so no transaction aborts. *)

type t = {
  result : Runner.result;
  series : (int * (float * float) list) list;  (** per site: figure data *)
  aborted : int;
  paper_aborts : int;
}

val scenario1_scenario : ?seed:int -> ?tail_txns:int -> unit -> Scenario.t
(** The declarative scenario behind {!scenario1} (same defaults). *)

val scenario2_scenario : ?seed:int -> ?tail_txns:int -> unit -> Scenario.t
(** The declarative scenario behind {!scenario2} (same defaults). *)

val scenario1 : ?seed:int -> ?tail_txns:int -> unit -> t
(** Figure 2.  [tail_txns] (default 70) transactions after both sites are
    back, as in the paper's 51-120. *)

val scenario2 : ?seed:int -> ?tail_txns:int -> unit -> t
(** Figure 3.  [tail_txns] (default 60) transactions after all four sites
    are back (the paper's 101-160). *)

val figure : title:string -> t -> Raid_util.Chart.t

val summary_table : title:string -> t -> Raid_util.Table.t
