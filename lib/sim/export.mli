(** CSV export of experiment data.

    The terminal figures are previews; for a paper-grade plot the series
    behind every figure can be exported as CSV and fed to any plotting
    tool.  Used by the CLI's [--csv] options. *)

val series_csv : header:string * string -> (float * float) list -> string
(** ["x,y\n1,46\n..."] with the given column names.  Numbers are printed
    with enough precision to round-trip. *)

val multi_series_csv : x_name:string -> (string * (float * float) list) list -> string
(** Join several series on their x values (union of all x's, empty cells
    where a series has no point): ["txn,site 0,site 1\n..."]. *)

val records_csv : Runner.result -> string
(** One row per transaction: index, coordinator, committed, abort reason,
    copiers, elapsed ms, then one fail-lock-count column per site. *)

val latency_summary_csv : Raid_core.Metrics.t -> string
(** One row per non-empty latency group of
    {!Raid_core.Metrics.latency_groups}: count, mean, stddev, min and
    the 50/95/99 percentiles, in ms. *)

val write_file : path:string -> string -> unit
(** Write contents to [path] (creates/truncates). *)
