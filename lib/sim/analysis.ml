module Table = Raid_util.Table
module Chart = Raid_util.Chart
module Stats = Raid_util.Stats

let item_write_probability ~num_items ~max_ops ~write_prob =
  if num_items <= 0 || max_ops <= 0 then invalid_arg "Analysis: non-positive sizes";
  if write_prob < 0.0 || write_prob > 1.0 then invalid_arg "Analysis: bad write_prob";
  let per_op = write_prob /. float_of_int num_items in
  let sum = ref 0.0 in
  for size = 1 to max_ops do
    sum := !sum +. (1.0 -. ((1.0 -. per_op) ** float_of_int size))
  done;
  !sum /. float_of_int max_ops

let expected_locked_after ~q ~num_items ~txns =
  float_of_int num_items *. (1.0 -. ((1.0 -. q) ** float_of_int txns))

let expected_txns_to_clear ~q ~from_locks ~to_locks =
  if q <= 0.0 || q > 1.0 then invalid_arg "Analysis: q outside (0,1]";
  if to_locks < 0 || to_locks > from_locks then invalid_arg "Analysis: bad lock range";
  if from_locks = 0 || to_locks = from_locks then 0.0
  else begin
    (* Each locked item clears independently with probability q per
       transaction, so the expected locked count decays geometrically:
       n = ln(b/a) / ln(1-q).  The very last item is a plain geometric
       wait of 1/q, appended when clearing to zero. *)
    let decay a b = log (b /. a) /. log (1.0 -. q) in
    let a = float_of_int from_locks in
    if to_locks > 0 then decay a (float_of_int to_locks)
    else decay a 1.0 +. (1.0 /. q)
  end

let outage_curve ~q ~num_items ~txns =
  List.init txns (fun n ->
      (float_of_int (n + 1), expected_locked_after ~q ~num_items ~txns:(n + 1)))

let recovery_curve ~q ~peak =
  (* Invert the clearing times: the model predicts the locked count drops
     to j after expected_txns_to_clear peak -> j transactions. *)
  List.init peak (fun i ->
      let j = peak - i in
      (expected_txns_to_clear ~q ~from_locks:peak ~to_locks:j, float_of_int j))

let paper_q = lazy (item_write_probability ~num_items:50 ~max_ops:5 ~write_prob:0.5)

let comparison_table ?domains ?(seeds = List.init 25 (fun i -> i + 1)) () =
  let q = Lazy.force paper_q in
  let summary = Scaling.experiment2_seeds ?domains ~seeds () in
  let model_peak = expected_locked_after ~q ~num_items:50 ~txns:100 in
  let peak_int = int_of_float (Float.round model_peak) in
  let model_first10 = expected_txns_to_clear ~q ~from_locks:peak_int ~to_locks:(peak_int - 10) in
  let model_last10 = expected_txns_to_clear ~q ~from_locks:10 ~to_locks:0 in
  let model_full = expected_txns_to_clear ~q ~from_locks:peak_int ~to_locks:0 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Analytical model vs simulation (Experiment 2, %d seeds; per-item write probability \
            q=%.4f)"
           summary.Scaling.seeds q)
      [
        ("statistic", Table.Left);
        ("model", Table.Right);
        ("simulated mean", Table.Right);
        ("paper (1 run)", Table.Right);
      ]
  in
  let row name model (s : Stats.summary) paper =
    Table.add_row table
      [ name; Printf.sprintf "%.1f" model; Printf.sprintf "%.1f" s.Stats.mean; paper ]
  in
  row "fail-locks after 100-txn outage" model_peak summary.Scaling.peak ">45";
  row "txns to clear first 10 locks" model_first10 summary.Scaling.first_10 "6";
  row "txns to clear last 10 locks" model_last10 summary.Scaling.last_10 "106";
  row "txns to full recovery" model_full summary.Scaling.recovery_txns "160";
  table

let figure ?(seed = 15) () =
  let q = Lazy.force paper_q in
  let e2 = Experiment2.run ~seed () in
  let chart =
    Chart.create ~title:"Figure 1 with the analytical model overlaid (o = model, * = simulated)"
      ~x_label:"number of transactions" ~y_label:"fail-locks set (site 0)" ()
  in
  Chart.add_series chart { Chart.label = "simulated"; glyph = '*'; points = e2.Experiment2.series };
  let model_outage = outage_curve ~q ~num_items:50 ~txns:100 in
  let peak = e2.Experiment2.stats.Experiment2.peak_faillocks in
  let model_recovery =
    List.map (fun (x, y) -> (x +. 100.0, y)) (recovery_curve ~q ~peak)
  in
  Chart.add_series chart
    { Chart.label = "model"; glyph = 'o'; points = model_outage @ model_recovery };
  chart
