(** Traced scenario runs: the pipeline behind [raid trace].

    Runs a scenario with the protocol trace ({!Raid_obs.Trace}) and the
    network engine's message trace both enabled, and renders the
    combined collection in one of three formats:

    - [`Jsonl]: one JSON object per protocol event, for ad-hoc analysis;
    - [`Chrome]: Chrome trace-event JSON (Perfetto / [chrome://tracing]),
      one track per site, 2PC phases as spans nested in their
      transaction's span, message deliveries as instants;
    - [`Summary]: a text report — event counts by kind plus
      {!Raid_util.Stats} summaries and histograms of the per-transaction
      virtual latencies by outcome and by 2PC phase.

    Output is deterministic for a given scenario: byte-identical across
    runs and [-j] levels (each run owns its collector; nothing is
    global). *)

val scenarios : (string * string) list
(** Named scenarios accepted by {!scenario_of_name}, with one-line
    descriptions (the paper's experiments 2 and 3). *)

val scenario_of_name : ?seed:int -> string -> (Scenario.t, string) result

type output = {
  trace : Raid_obs.Trace.t;
  result : Runner.result;
  messages : Raid_obs.Trace_export.message list;
      (** engine deliveries, pre-rendered for the chrome export *)
  num_sites : int;
}

val run : ?capacity:int -> Scenario.t -> output
(** Run with tracing enabled (protocol events and engine messages).
    [capacity] bounds the ring-buffer collector (default 65536 entries);
    when a run emits more, the oldest entries are dropped and counted —
    check {!Raid_obs.Trace.dropped} on [output.trace] and warn. *)

val spans : output -> Raid_obs.Span.tree list
(** Causal span trees assembled from the collected entries, one per
    transaction, sorted by id. *)

val incidents : output -> Raid_obs.Incident.t list
(** Recovery timelines assembled from the collected entries, ordered by
    start time. *)

val jsonl : output -> string
val chrome : output -> string
val summary : output -> string

val render : format:[ `Jsonl | `Chrome | `Summary ] -> output -> string
