module Config = Raid_core.Config
module Workload = Raid_core.Workload
module Chart = Raid_util.Chart
module Table = Raid_util.Table

type t = {
  result : Runner.result;
  series : (int * (float * float) list) list;
  aborted : int;
  paper_aborts : int;
}

let paper_workload = Workload.Uniform { max_ops = 5; write_prob = 0.5 }

let build ~paper_aborts scenario =
  let result = Runner.run scenario in
  let num_sites = scenario.Scenario.config.Config.num_sites in
  let series = List.init num_sites (fun site -> (site, Runner.series result ~site)) in
  { result; series; aborted = result.Runner.aborted; paper_aborts }

let scenario1_scenario ?(seed = 43) ?(tail_txns = 70) () =
  let config = Config.make ~num_sites:2 ~num_items:50 () in
  Scenario.make ~policy:Scenario.Uniform_random ~seed ~config ~workload:paper_workload
    [
      Scenario.Fail 0;
      Scenario.Run_txns 25;
      Scenario.Recover 0;
      Scenario.Fail 1;
      Scenario.Run_txns 25;
      Scenario.Recover 1;
      Scenario.Run_txns tail_txns;
    ]

let scenario2_scenario ?(seed = 43) ?(tail_txns = 60) () =
  let config = Config.make ~num_sites:4 ~num_items:50 () in
  Scenario.make ~policy:Scenario.Uniform_random ~seed ~config ~workload:paper_workload
    [
      Scenario.Fail 0;
      Scenario.Run_txns 25;
      Scenario.Recover 0;
      Scenario.Fail 1;
      Scenario.Run_txns 25;
      Scenario.Recover 1;
      Scenario.Fail 2;
      Scenario.Run_txns 25;
      Scenario.Recover 2;
      Scenario.Fail 3;
      Scenario.Run_txns 25;
      Scenario.Recover 3;
      Scenario.Run_txns tail_txns;
    ]

let scenario1 ?seed ?tail_txns () =
  build ~paper_aborts:13 (scenario1_scenario ?seed ?tail_txns ())

let scenario2 ?seed ?tail_txns () =
  build ~paper_aborts:0 (scenario2_scenario ?seed ?tail_txns ())

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@' |]

let figure ~title t =
  let chart =
    Chart.create ~title ~x_label:"number of transactions" ~y_label:"fail-locks set" ()
  in
  List.iter
    (fun (site, points) ->
      Chart.add_series chart
        {
          Chart.label = Printf.sprintf "site %d" site;
          glyph = glyphs.(site mod Array.length glyphs);
          points;
        })
    t.series;
  chart

let summary_table ~title t =
  let table =
    Table.create ~title [ ("statistic", Table.Left); ("paper", Table.Right); ("measured", Table.Right) ]
  in
  Table.add_row table
    [ "aborted transactions"; string_of_int t.paper_aborts; string_of_int t.aborted ];
  Table.add_row table
    [
      "committed transactions";
      "-";
      string_of_int t.result.Runner.committed;
    ];
  List.iter
    (fun (site, _) ->
      Table.add_row table
        [
          Printf.sprintf "final fail-locks for site %d" site;
          "0";
          string_of_int (Runner.final_faillocks t.result ~site);
        ])
    t.series;
  table
