(** The interactive managing site.

    The paper's managing site "provide[s] interactive control of system
    actions ... used to cause sites to fail and recover and to initiate a
    database transaction to a site" (§1.2).  This module is that console:
    a line-oriented command interpreter over a {!Raid_core.Cluster}, used
    by [raid repl] and directly testable (output goes through a supplied
    printer). *)

type t

val create : ?sites:int -> ?items:int -> ?max_ops:int -> ?seed:int -> unit -> t
(** A fresh traced cluster behind a console.  Defaults: 4 sites, 50
    items, random transactions of at most [max_ops] (default 5)
    operations, seed 42. *)

val cluster : t -> Raid_core.Cluster.t

val help_text : string

val command : t -> print:(string -> unit) -> string -> [ `Continue | `Quit ]
(** Interpret one command line; every line of output is passed to
    [print] (without trailing newlines).  Unknown or malformed commands
    print usage hints; protocol errors are caught and printed. *)

val run_stdin : t -> unit
(** The interactive loop: prompt on stdout, read stdin until EOF or
    [quit]. *)
