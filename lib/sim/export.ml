module Metrics = Raid_core.Metrics

let float_cell v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let series_csv ~header:(x_name, y_name) points =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (Printf.sprintf "%s,%s\n" x_name y_name);
  List.iter
    (fun (x, y) -> Buffer.add_string buffer (Printf.sprintf "%s,%s\n" (float_cell x) (float_cell y)))
    points;
  Buffer.contents buffer

let multi_series_csv ~x_name series =
  let module FloatSet = Set.Make (Float) in
  let xs =
    List.fold_left
      (fun acc (_, points) -> List.fold_left (fun acc (x, _) -> FloatSet.add x acc) acc points)
      FloatSet.empty series
  in
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer x_name;
  List.iter (fun (name, _) -> Buffer.add_string buffer ("," ^ name)) series;
  Buffer.add_char buffer '\n';
  FloatSet.iter
    (fun x ->
      Buffer.add_string buffer (float_cell x);
      List.iter
        (fun (_, points) ->
          Buffer.add_char buffer ',';
          match List.assoc_opt x points with
          | Some y -> Buffer.add_string buffer (float_cell y)
          | None -> ())
        series;
      Buffer.add_char buffer '\n')
    xs;
  Buffer.contents buffer

let records_csv (result : Runner.result) =
  let num_sites = Raid_core.Cluster.num_sites result.Runner.cluster in
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer "txn,coordinator,committed,abort_reason,copiers,elapsed_ms";
  for s = 0 to num_sites - 1 do
    Buffer.add_string buffer (Printf.sprintf ",faillocks_site_%d" s)
  done;
  Buffer.add_char buffer '\n';
  List.iter
    (fun record ->
      let outcome = record.Runner.outcome in
      Buffer.add_string buffer
        (Printf.sprintf "%d,%d,%b,%s,%d,%.3f" record.Runner.index outcome.Metrics.coordinator
           outcome.Metrics.committed
           (match outcome.Metrics.abort_reason with
           | None -> ""
           | Some reason -> Format.asprintf "%a" Metrics.pp_abort_reason reason)
           outcome.Metrics.copier_requests
           (Raid_net.Vtime.to_ms outcome.Metrics.elapsed));
      Array.iter
        (fun count -> Buffer.add_string buffer (Printf.sprintf ",%d" count))
        record.Runner.faillocks_per_site;
      Buffer.add_char buffer '\n')
    result.Runner.records;
  Buffer.contents buffer

let latency_summary_csv metrics =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "group,count,mean_ms,stddev_ms,min_ms,p50_ms,p95_ms,p99_ms,max_ms\n";
  List.iter
    (fun (label, samples) ->
      if samples <> [] then begin
        let s = Raid_util.Stats.summarize samples in
        Buffer.add_string buffer
          (Printf.sprintf "%s,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n" label
             s.Raid_util.Stats.count s.Raid_util.Stats.mean s.Raid_util.Stats.stddev
             s.Raid_util.Stats.min s.Raid_util.Stats.p50 s.Raid_util.Stats.p95
             s.Raid_util.Stats.p99 s.Raid_util.Stats.max)
      end)
    (Metrics.latency_groups metrics);
  Buffer.contents buffer

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
