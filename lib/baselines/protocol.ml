module Engine = Raid_net.Engine
module Vtime = Raid_net.Vtime
module Database = Raid_storage.Database
module Txn = Raid_core.Txn
module Cost_model = Raid_core.Cost_model

type kind = Strict_rowa | Quorum of { read_quorum : int; write_quorum : int }

let majority ~num_sites =
  let q = (num_sites / 2) + 1 in
  Quorum { read_quorum = q; write_quorum = q }

type outcome = { txn : Txn.t; committed : bool; messages : int; elapsed : Vtime.t }

type msg =
  | Begin of Txn.t
  | Read_req of { txn : int; items : int list }
  | Read_reply of { txn : int; copies : (int * int * int) list }
  | Write_req of { txn : int; writes : Database.write list }
  | Write_ack of { txn : int }

type phase =
  | Reading of { mutable pending : int list; mutable copies : (int * int * int) list }
  | Writing of { mutable pending : int list }

type coord = { txn : Txn.t; started_at : Vtime.t; writes : Database.write list; mutable phase : phase }

type site = {
  id : int;
  db : Database.t;
  view : bool array;  (* which sites this site believes up *)
  mutable coord : coord option;
}

type t = {
  kind : kind;
  cost : Cost_model.t;
  engine : msg Engine.t;
  sites : site array;
  mutable finished : (Txn.t * bool) option;  (* outcome of the txn in flight *)
  mutable finished_at : Vtime.t;
}

let rec create ?(cost = Cost_model.calibrated) kind ~num_sites ~num_items () =
  (match kind with
  | Strict_rowa -> ()
  | Quorum { read_quorum; write_quorum } ->
    if read_quorum <= 0 || write_quorum <= 0 then invalid_arg "Protocol: quorums must be positive";
    if read_quorum > num_sites || write_quorum > num_sites then
      invalid_arg "Protocol: quorum exceeds number of sites";
    if read_quorum + write_quorum <= num_sites then
      invalid_arg "Protocol: need read_quorum + write_quorum > num_sites");
  let engine =
    Engine.create ~message_latency:cost.Cost_model.message_latency ~num_sites ()
  in
  let sites =
    Array.init num_sites (fun id ->
        {
          id;
          db = Database.create ~num_items;
          view = Array.make num_sites true;
          coord = None;
        })
  in
  let t = { kind; cost; engine; sites; finished = None; finished_at = Vtime.zero } in
  Array.iter (fun site -> Engine.register engine site.id (handler t site)) sites;
  t

and handler t site ctx event =
  match event with
  | Engine.Message { src; payload } -> handle_message t site ctx ~src payload
  | Engine.Send_failed { dst = _; payload } -> begin
    (* A target died mid-transaction: abort (baselines get no recovery
       machinery). *)
    match (site.coord, payload) with
    | Some coord, (Read_req _ | Write_req _) -> finish t site ctx coord ~committed:false
    | _ -> ()
  end
  | Engine.Timer _ -> ()

and finish t site ctx coord ~committed =
  site.coord <- None;
  t.finished <- Some (coord.txn, committed);
  t.finished_at <- Vtime.sub (Engine.time ctx) coord.started_at

and up_others site = List.filter (fun s -> s <> site.id && site.view.(s)) (List.init (Array.length site.view) Fun.id)

and up_count site = Array.fold_left (fun acc up -> if up then acc + 1 else acc) 0 site.view

and begin_writes t site ctx coord =
  if coord.writes = [] then finish t site ctx coord ~committed:true
  else begin
    let targets =
      match t.kind with
      | Strict_rowa -> up_others site  (* all sites were verified up *)
      | Quorum { write_quorum; _ } ->
        let rec take n = function
          | [] -> []
          | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
        in
        take (write_quorum - 1) (up_others site)
    in
    Database.apply_all site.db coord.writes;
    List.iter (fun { Database.item = _; _ } -> Engine.work ctx t.cost.Cost_model.commit_apply_per_write) coord.writes;
    if targets = [] then finish t site ctx coord ~committed:true
    else begin
      coord.phase <- Writing { pending = targets };
      List.iter
        (fun target ->
          Engine.work ctx t.cost.Cost_model.prepare_send;
          Engine.send ctx target (Write_req { txn = coord.txn.Txn.id; writes = coord.writes }))
        targets
    end
  end

and begin_txn t site ctx txn =
  Engine.work ctx t.cost.Cost_model.txn_setup;
  Engine.work ctx (Txn.size txn * t.cost.Cost_model.op_process);
  let writes =
    List.map (fun item -> { Database.item; value = txn.Txn.id; version = txn.Txn.id }) (Txn.write_items txn)
  in
  let coord = { txn; started_at = Engine.time ctx; writes; phase = Reading { pending = []; copies = [] } } in
  site.coord <- Some coord;
  match t.kind with
  | Strict_rowa ->
    (* Reads are local; a write requires every site to be up. *)
    if writes <> [] && up_count site < Array.length site.view then
      (* started_at charged, abort: write-all is blocked. *)
      finish t site ctx coord ~committed:false
    else begin_writes t site ctx coord
  | Quorum { read_quorum; write_quorum } ->
    let n_up = up_count site in
    if (Txn.read_items txn <> [] && n_up < read_quorum)
       || (writes <> [] && n_up < write_quorum)
    then finish t site ctx coord ~committed:false
    else begin
      let read_items = Txn.read_items txn in
      if read_items = [] then begin_writes t site ctx coord
      else begin
        let rec take n = function
          | [] -> []
          | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
        in
        let targets = take (read_quorum - 1) (up_others site) in
        if targets = [] then begin_writes t site ctx coord
        else begin
          coord.phase <- Reading { pending = targets; copies = [] };
          List.iter
            (fun target ->
              Engine.work ctx t.cost.Cost_model.copier_request_send;
              Engine.send ctx target (Read_req { txn = txn.Txn.id; items = read_items }))
            targets
        end
      end
    end

and handle_message t site ctx ~src payload =
  match payload with
  | Begin txn ->
    (match site.coord with
    | Some _ -> invalid_arg "Protocol: concurrent transactions are not supported"
    | None -> ());
    begin_txn t site ctx txn
  | Read_req { txn; items } ->
    Engine.work ctx t.cost.Cost_model.copier_serve_base;
    let copies =
      List.filter_map
        (fun item ->
          Option.map (fun (value, version) -> (item, value, version)) (Database.read site.db item))
        items
    in
    Engine.send ctx src (Read_reply { txn; copies })
  | Read_reply { txn; copies } -> begin
    match site.coord with
    | Some coord when coord.txn.Txn.id = txn -> begin
      match coord.phase with
      | Reading r ->
        Engine.work ctx t.cost.Cost_model.ack_process;
        r.copies <- copies @ r.copies;
        r.pending <- List.filter (fun s -> s <> src) r.pending;
        if r.pending = [] then begin_writes t site ctx coord
      | Writing _ -> ()
    end
    | _ -> ()
  end
  | Write_req { txn; writes } ->
    Engine.work ctx t.cost.Cost_model.prepare_process;
    (* Quorum members may hold stale copies; never regress a version. *)
    List.iter
      (fun ({ Database.item; version; _ } as write) ->
        match Database.version site.db item with
        | Some v when v >= version -> ()
        | _ -> Database.apply site.db write)
      writes;
    Engine.send ctx src (Write_ack { txn })
  | Write_ack { txn } -> begin
    match site.coord with
    | Some coord when coord.txn.Txn.id = txn -> begin
      match coord.phase with
      | Writing w ->
        Engine.work ctx t.cost.Cost_model.ack_process;
        w.pending <- List.filter (fun s -> s <> src) w.pending;
        if w.pending = [] then finish t site ctx coord ~committed:true
      | Reading _ -> ()
    end
    | _ -> ()
  end

let kind t = t.kind
let num_sites t = Array.length t.sites

let set_view t =
  Array.iter
    (fun site ->
      if Engine.alive t.engine site.id then
        Array.iteri (fun s _ -> site.view.(s) <- Engine.alive t.engine s) site.view)
    t.sites

let fail_site t i =
  Engine.set_alive t.engine i false;
  t.sites.(i).coord <- None;
  set_view t

let recover_site t i =
  Engine.set_alive t.engine i true;
  set_view t

let submit t ~coordinator txn =
  if not (Engine.alive t.engine coordinator) then
    invalid_arg "Protocol.submit: coordinator is down";
  t.finished <- None;
  let sent_before = (Engine.counters t.engine).Engine.sent in
  Engine.inject t.engine ~dst:coordinator (Begin txn);
  Engine.run t.engine;
  let messages = (Engine.counters t.engine).Engine.sent - sent_before - 1 (* minus injection *) in
  match t.finished with
  | Some (txn, committed) -> { txn; committed; messages; elapsed = t.finished_at }
  | None -> failwith "Protocol.submit: transaction produced no outcome"

let database t i = t.sites.(i).db

let read_value t ~coordinator item =
  let site = t.sites.(coordinator) in
  match t.kind with
  | Strict_rowa -> Database.read site.db item
  | Quorum { read_quorum; _ } ->
    (* Synchronous oracle-style quorum read over current copies. *)
    let up = List.filter (fun s -> site.view.(s)) (List.init (num_sites t) Fun.id) in
    if List.length up < read_quorum then None
    else
      let rec take n = function
        | [] -> []
        | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
      in
      let members = take read_quorum (coordinator :: List.filter (fun s -> s <> coordinator) up) in
      List.fold_left
        (fun best s ->
          match (best, Database.read t.sites.(s).db item) with
          | None, copy -> copy
          | copy, None -> copy
          | Some (_, bv), Some (value, version) when version > bv -> Some (value, version)
          | best, _ -> best)
        None members
