(** Baseline replicated-copy protocols for availability comparisons.

    The paper motivates ROWAA by its availability: "transaction processing
    [continues] as long as a single copy is available" (§1.1), unlike
    read-one/write-{e all} (which blocks every write while any site is
    down) and quorum consensus [Bern84]/[ElAb85] (which requires a
    majority).  These baselines let the benches quantify that claim on
    identical failure schedules and workloads.

    Both baselines run over the same {!Raid_net.Engine} substrate as
    ROWAA, as message-driven coordinators with a managing-site-maintained
    view of which sites are up.  They intentionally omit the machinery a
    production protocol would add around atomic commitment of multi-item
    transactions — the quantity compared here is availability (commit
    rate under failures) and message cost, not recovery behaviour. *)

type kind =
  | Strict_rowa
      (** read one local copy; a write must be installed at {e every}
          site, so any down site aborts all writing transactions *)
  | Quorum of { read_quorum : int; write_quorum : int }
      (** read [r] copies and take the newest; write [w] copies; requires
          [r + w > n].  Reads cost a round-trip; a transaction aborts
          when fewer than the needed sites are up. *)

val majority : num_sites:int -> kind
(** Majority quorums: r = w = ⌊n/2⌋ + 1. *)

type outcome = {
  txn : Raid_core.Txn.t;
  committed : bool;
  messages : int;  (** messages this transaction put on the wire *)
  elapsed : Raid_net.Vtime.t;  (** coordinator reception to completion *)
}

type t
(** A running baseline cluster. *)

val create :
  ?cost:Raid_core.Cost_model.t -> kind -> num_sites:int -> num_items:int -> unit -> t
(** @raise Invalid_argument on invalid quorum sizes. *)

val kind : t -> kind
val num_sites : t -> int

val fail_site : t -> int -> unit
(** Crash a site; every survivor's view is updated (the comparison grants
    baselines free perfect failure detection, which only flatters them). *)

val recover_site : t -> int -> unit
(** Bring a site back (its copies may be stale; under quorum rules that
    is safe, under strict ROWA no update was ever missed). *)

val submit : t -> coordinator:int -> Raid_core.Txn.t -> outcome
(** Run one transaction to completion.
    @raise Invalid_argument if the coordinator is down. *)

val database : t -> int -> Raid_storage.Database.t

val read_value : t -> coordinator:int -> int -> (int * int) option
(** Protocol-correct read of one item (quorum-read under [Quorum]),
    bypassing transaction accounting; for tests. *)
