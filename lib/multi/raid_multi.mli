(** Multi-tenant engine: thousands of independent RAID clusters in one
    process, sharing the expensive infrastructure.

    The paper studies one replicated cluster; erlang-ra's key design
    point (and this layer's) is that a node should host {e many}
    logically independent consensus clusters — tenants — and share one
    WAL so per-tenant durability does not mean per-tenant fsync.  Each
    tenant here is a full {!Raid_core.Cluster} (own engine, sites,
    session vectors, fail-locks); tenants are deterministically assigned
    to shards ([tenant mod shards]), each shard owns one group-committed
    {!Raid_storage.Shared_wal}, and shards — never tenants — are the unit
    of domain parallelism via {!Raid_par.Pool}.

    Determinism contract: per-tenant results are a pure function of
    [spec] alone.  The shard count is part of the spec (never derived
    from [-j]), tenants within a shard advance round-robin in quanta of
    [batch] transactions (so the shared log's record interleaving is
    schedule-fixed), and all WAL flush work is host-side only — it never
    touches virtual time or protocol outcomes.  Hence {!csv} output is
    byte-identical at any [-j] and under either WAL mode, which is what
    the CI slice pins. *)

type wal_mode =
  | Shared of { group_size : int }
      (** one {!Raid_storage.Shared_wal} per shard: a batch of tenants
          amortizes one group commit (page pad + checksum) *)
  | Per_tenant
      (** one log per tenant with group size 1: every record pays a full
          page write-out — the fsync-per-tenant cost model the shared
          log exists to beat *)

type spec = {
  tenants : int;
  shards : int;
  sites : int;  (** per tenant *)
  items : int;  (** per tenant *)
  txns : int;  (** per tenant *)
  batch : int;  (** transactions per tenant per scheduling quantum *)
  seed : int;
  max_ops : int;  (** transaction size bound *)
  write_prob : float;
  wal_mode : wal_mode;
  fail_every : int;
      (** 0 disables failures; otherwise every [fail_every]-th tenant
          crashes one site a third of the way through its stream and
          recovers it at two thirds *)
}

val spec :
  ?shards:int ->
  ?sites:int ->
  ?items:int ->
  ?txns:int ->
  ?batch:int ->
  ?seed:int ->
  ?max_ops:int ->
  ?write_prob:float ->
  ?wal_mode:wal_mode ->
  ?fail_every:int ->
  tenants:int ->
  unit ->
  spec
(** Defaults: 8 shards, 8 sites, 64 items, 40 txns, batch 8, seed 1,
    max_ops 4, write_prob 0.5, [Shared {group_size = 64}], no failures.
    @raise Invalid_argument on non-positive counts, [sites < 2], or a
    write probability outside [0, 1]. *)

type tenant_result = {
  tenant : int;
  shard : int;
  submitted : int;
  committed : int;
  aborted : int;
  events : int;  (** engine deliveries + timer firings *)
  virtual_ms : float;  (** tenant virtual clock at the end of its stream *)
  recovered : int;  (** successful site recoveries in its failure plan *)
}

type result = {
  run_spec : spec;
  results : tenant_result array;  (** indexed by tenant id *)
  wal : Raid_storage.Shared_wal.stats array;  (** per shard, after a final flush *)
}

val run :
  ?make_sink:(int -> Raid_obs.Trace.sink option) ->
  ?telemetry:Raid_obs.Telemetry.t ->
  spec ->
  result
(** Run every tenant's stream to completion.  [make_sink tenant], when
    given, provides a per-tenant protocol-trace sink (tenant isolation
    tests compare these streams).  [telemetry], when given, is attached
    to every tenant's cluster with a [("tenant", n)] label on every
    series — and forces the shards onto the calling domain (one registry
    cannot be mutated from parallel domains); results are identical
    either way, only wall time differs. *)

val csv : result -> string
(** Per-tenant rows (sorted by tenant id) followed by a per-shard WAL
    section — every byte a pure function of the spec. *)

val total_events : result -> int
val total_committed : result -> int
val total_aborted : result -> int

val pp_summary : Format.formatter -> result -> unit
(** Aggregate one-screen summary (no wall-clock figures; callers time
    {!run} themselves). *)
