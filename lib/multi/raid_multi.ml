module Config = Raid_core.Config
module Cluster = Raid_core.Cluster
module Workload = Raid_core.Workload
module Metrics = Raid_core.Metrics
module Site = Raid_core.Site
module Engine = Raid_net.Engine
module Vtime = Raid_net.Vtime
module Wal = Raid_storage.Wal
module Shared_wal = Raid_storage.Shared_wal
module Rng = Raid_util.Rng
module Pool = Raid_par.Pool

type wal_mode = Shared of { group_size : int } | Per_tenant

type spec = {
  tenants : int;
  shards : int;
  sites : int;
  items : int;
  txns : int;
  batch : int;
  seed : int;
  max_ops : int;
  write_prob : float;
  wal_mode : wal_mode;
  fail_every : int;
}

let spec ?(shards = 8) ?(sites = 8) ?(items = 64) ?(txns = 40) ?(batch = 8) ?(seed = 1)
    ?(max_ops = 4) ?(write_prob = 0.5) ?(wal_mode = Shared { group_size = 64 })
    ?(fail_every = 0) ~tenants () =
  if tenants <= 0 then invalid_arg "Multi.spec: non-positive tenants";
  if shards <= 0 then invalid_arg "Multi.spec: non-positive shards";
  if sites < 2 then invalid_arg "Multi.spec: need at least 2 sites per tenant";
  if items <= 0 then invalid_arg "Multi.spec: non-positive items";
  if txns <= 0 then invalid_arg "Multi.spec: non-positive txns";
  if batch <= 0 then invalid_arg "Multi.spec: non-positive batch";
  if max_ops <= 0 then invalid_arg "Multi.spec: non-positive max_ops";
  if write_prob < 0.0 || write_prob > 1.0 then invalid_arg "Multi.spec: write_prob out of range";
  if fail_every < 0 then invalid_arg "Multi.spec: negative fail_every";
  (match wal_mode with
  | Shared { group_size } when group_size <= 0 ->
    invalid_arg "Multi.spec: non-positive group_size"
  | Shared _ | Per_tenant -> ());
  { tenants; shards; sites; items; txns; batch; seed; max_ops; write_prob; wal_mode; fail_every }

type tenant_result = {
  tenant : int;
  shard : int;
  submitted : int;
  committed : int;
  aborted : int;
  events : int;
  virtual_ms : float;
  recovered : int;
}

type result = {
  run_spec : spec;
  results : tenant_result array;
  wal : Shared_wal.stats array;
}

(* One tenant's live state while its stream is in flight. *)
type tenant_state = {
  t_id : int;
  cluster : Cluster.t;
  rng : Rng.t;
  workload : Workload.t;
  victim : int;  (* site its failure plan crashes, if any *)
  mutable s_submitted : int;
  mutable s_committed : int;
  mutable s_aborted : int;
  mutable s_recovered : int;
}

let has_failure_plan spec tenant = spec.fail_every > 0 && tenant mod spec.fail_every = 0

let make_tenant spec ~tenant ~wal_factory ~obs ~telemetry =
  let config =
    Config.make ~num_sites:spec.sites ~num_items:spec.items
      ~durability:(Config.Durable_wal { checkpoint_interval = 64 })
      ()
  in
  let cluster =
    Cluster.of_spec
      {
        Cluster.Spec.config;
        detection = Cluster.Immediate;
        trace = false;
        obs;
        telemetry;
        telemetry_labels = [ ("tenant", string_of_int tenant) ];
        wal_factory;
      }
  in
  (* Independent per-tenant streams: the workload draws from a split of
     the tenant generator, coordinator choice from the remainder. *)
  let rng = Rng.create (Rng.mix ((spec.seed * 1_000_003) + tenant)) in
  let workload =
    Workload.create
      (Workload.Uniform { max_ops = spec.max_ops; write_prob = spec.write_prob })
      ~num_items:spec.items ~rng:(Rng.split rng)
  in
  {
    t_id = tenant;
    cluster;
    rng;
    workload;
    victim = 1 + (tenant mod (spec.sites - 1));
    s_submitted = 0;
    s_committed = 0;
    s_aborted = 0;
    s_recovered = 0;
  }

(* Coordinators must be alive and done recovering; the failure plan
   keeps at least sites-1 of them so this never empties. *)
let pick_coordinator st =
  let operational =
    List.filter
      (fun s -> not (Site.is_waiting (Cluster.site st.cluster s)))
      (Cluster.alive_sites st.cluster)
  in
  Rng.choose st.rng operational

let apply_failure_plan spec st =
  if has_failure_plan spec st.t_id then begin
    if st.s_submitted = spec.txns / 3 && Cluster.alive st.cluster st.victim then
      Cluster.fail_site st.cluster st.victim
    else if st.s_submitted = 2 * spec.txns / 3 && not (Cluster.alive st.cluster st.victim) then
      match Cluster.recover_site st.cluster st.victim with
      | `Recovered -> st.s_recovered <- st.s_recovered + 1
      | `Blocked -> ()
  end

(* Advance one scheduling quantum: up to [batch] transactions.  Returns
   whether the tenant still has work, so the shard loop can drop it. *)
let step spec st =
  let n = min spec.batch (spec.txns - st.s_submitted) in
  for _ = 1 to n do
    apply_failure_plan spec st;
    let id = Cluster.next_txn_id st.cluster in
    let txn = Workload.next st.workload ~id in
    let coordinator = pick_coordinator st in
    let outcome = Cluster.submit st.cluster ~coordinator txn in
    st.s_submitted <- st.s_submitted + 1;
    if outcome.Metrics.committed then st.s_committed <- st.s_committed + 1
    else st.s_aborted <- st.s_aborted + 1
  done;
  st.s_submitted < spec.txns

let finish st =
  let counters = Engine.counters (Cluster.engine st.cluster) in
  {
    tenant = st.t_id;
    shard = 0;  (* stamped by the caller *)
    submitted = st.s_submitted;
    committed = st.s_committed;
    aborted = st.s_aborted;
    events = counters.Engine.delivered + counters.Engine.timer_fired;
    virtual_ms = Vtime.to_ms (Engine.now (Cluster.engine st.cluster));
    recovered = st.s_recovered;
  }

(* Combine per-tenant log digests into one deterministic per-shard value
   (Per_tenant mode has no single byte stream to digest). *)
let combine_digests ds = List.fold_left (fun acc d -> Rng.mix (acc lxor d)) 0 ds

let run_shard spec ~shard ~make_sink ~telemetry =
  let tenants =
    List.filter (fun t -> t mod spec.shards = shard) (List.init spec.tenants Fun.id)
  in
  let shared_log, log_for =
    match spec.wal_mode with
    | Shared { group_size } ->
      let log = Shared_wal.create ~group_size () in
      (Some log, fun _tenant -> log)
    | Per_tenant ->
      let logs = Hashtbl.create 16 in
      ( None,
        fun tenant ->
          match Hashtbl.find_opt logs tenant with
          | Some log -> log
          | None ->
            let log = Shared_wal.create ~group_size:1 () in
            Hashtbl.replace logs tenant log;
            log )
  in
  let states =
    List.map
      (fun tenant ->
        let log = log_for tenant in
        let wal_factory ~site ~initial =
          Wal.create ~checkpoint_interval:64
            ~backing:(Shared_wal.attach log ~tenant ~site)
            ~initial ~num_items:spec.items ()
        in
        make_tenant spec ~tenant ~wal_factory:(Some wal_factory) ~obs:(make_sink tenant)
          ~telemetry)
      tenants
  in
  (* Round-robin quanta in tenant order: the shared log's record
     interleaving is fixed by this schedule, independent of -j and of
     wall-clock speed. *)
  let live = ref states in
  while !live <> [] do
    live := List.filter (fun st -> step spec st) !live
  done;
  let wal_stats =
    match shared_log with
    | Some log ->
      Shared_wal.flush log;
      Shared_wal.stats log
    | None ->
      let per_tenant =
        List.map
          (fun tenant ->
            let log = log_for tenant in
            Shared_wal.flush log;
            Shared_wal.stats log)
          tenants
      in
      {
        Shared_wal.records = List.fold_left (fun a s -> a + s.Shared_wal.records) 0 per_tenant;
        flushes = List.fold_left (fun a s -> a + s.Shared_wal.flushes) 0 per_tenant;
        pages = List.fold_left (fun a s -> a + s.Shared_wal.pages) 0 per_tenant;
        bytes_logged = List.fold_left (fun a s -> a + s.Shared_wal.bytes_logged) 0 per_tenant;
        digest = combine_digests (List.map (fun s -> s.Shared_wal.digest) per_tenant);
      }
  in
  (List.map (fun st -> { (finish st) with shard }) states, wal_stats)

let run ?(make_sink = fun _ -> None) ?telemetry spec =
  let shard_ids = List.init spec.shards Fun.id in
  let f shard = run_shard spec ~shard ~make_sink ~telemetry in
  let shard_results =
    match telemetry with
    | Some _ ->
      (* One registry cannot be mutated from parallel domains; keep the
         whole run on the calling domain.  Results are identical either
         way — Pool.map is order-preserving and shards are independent. *)
      List.map f shard_ids
    | None -> Pool.map f shard_ids
  in
  let results =
    Array.init spec.tenants (fun tenant ->
        let per_shard, _ = List.nth shard_results (tenant mod spec.shards) in
        List.find (fun r -> r.tenant = tenant) per_shard)
  in
  let wal = Array.of_list (List.map snd shard_results) in
  { run_spec = spec; results; wal }

let total_events r = Array.fold_left (fun a t -> a + t.events) 0 r.results
let total_committed r = Array.fold_left (fun a t -> a + t.committed) 0 r.results
let total_aborted r = Array.fold_left (fun a t -> a + t.aborted) 0 r.results

let csv r =
  let buf = Buffer.create (64 * (Array.length r.results + Array.length r.wal)) in
  Buffer.add_string buf "tenant,shard,submitted,committed,aborted,events,virtual_ms,recovered\n";
  Array.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d,%d,%d,%.3f,%d\n" t.tenant t.shard t.submitted t.committed
           t.aborted t.events t.virtual_ms t.recovered))
    r.results;
  Buffer.add_string buf "shard,wal_records,wal_flushes,wal_pages,wal_bytes,wal_digest\n";
  Array.iteri
    (fun shard (s : Shared_wal.stats) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d,%d,%x\n" shard s.Shared_wal.records s.Shared_wal.flushes
           s.Shared_wal.pages s.Shared_wal.bytes_logged s.Shared_wal.digest))
    r.wal;
  Buffer.contents buf

let pp_summary ppf r =
  let s = r.run_spec in
  let wal_records = Array.fold_left (fun a (w : Shared_wal.stats) -> a + w.Shared_wal.records) 0 r.wal in
  let wal_flushes = Array.fold_left (fun a (w : Shared_wal.stats) -> a + w.Shared_wal.flushes) 0 r.wal in
  let wal_pages = Array.fold_left (fun a (w : Shared_wal.stats) -> a + w.Shared_wal.pages) 0 r.wal in
  Format.fprintf ppf
    "@[<v>%d tenants x %d sites (%d shards, %s wal)@,\
     txns: %d submitted, %d committed, %d aborted@,\
     events: %d   recoveries: %d@,\
     wal: %d records in %d flushes (%d pages, %.1f records/flush)@]"
    s.tenants s.sites s.shards
    (match s.wal_mode with
    | Shared { group_size } -> Printf.sprintf "shared/%d" group_size
    | Per_tenant -> "per-tenant")
    (Array.fold_left (fun a t -> a + t.submitted) 0 r.results)
    (total_committed r) (total_aborted r) (total_events r)
    (Array.fold_left (fun a t -> a + t.recovered) 0 r.results)
    wal_records wal_flushes wal_pages
    (if wal_flushes = 0 then 0.0 else float_of_int wal_records /. float_of_int wal_flushes)
