type entry = { txn : int; write : Database.write; applied_at : int }

type t = { mutable entries_rev : entry list; mutable length : int }

let create () = { entries_rev = []; length = 0 }

let append t entry =
  t.entries_rev <- entry :: t.entries_rev;
  t.length <- t.length + 1

let length t = t.length
let entries t = List.rev t.entries_rev

let entries_for_item t item =
  List.filter (fun e -> e.write.Database.item = item) (entries t)

let last_version_of t item =
  let rec find = function
    | [] -> None
    | e :: rest ->
      if e.write.Database.item = item then Some e.write.Database.version else find rest
  in
  find t.entries_rev
