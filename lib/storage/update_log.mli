(** Per-site append-only log of applied updates.

    mini-RAID factored real I/O out; this log is the accounting artefact
    that lets tests check write durability ("a committed write is present
    at every site that was operational at commit time") and lets the
    experiment harness replay who applied what, when. *)

type entry = {
  txn : int;  (** transaction (or copier/control) identifier *)
  write : Database.write;
  applied_at : int;  (** virtual time in microseconds *)
}

type t

val create : unit -> t
val append : t -> entry -> unit
val length : t -> int

val entries : t -> entry list
(** In application order. *)

val entries_for_item : t -> int -> entry list
(** Applications touching one item, in order. *)

val last_version_of : t -> int -> int option
(** Highest version this log has applied for the item. *)
