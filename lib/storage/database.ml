type copy = { mutable value : int; mutable version : int; mutable present : bool }

type t = { copies : copy array }

type write = { item : int; value : int; version : int }

let create_with ~num_items ~stored =
  if num_items < 0 then invalid_arg "Database.create: negative num_items";
  { copies = Array.init num_items (fun i -> { value = 0; version = 0; present = stored i }) }

let create ~num_items = create_with ~num_items ~stored:(fun _ -> true)
let create_partial ~num_items ~stored = create_with ~num_items ~stored

let num_items t = Array.length t.copies

let check t item =
  if item < 0 || item >= Array.length t.copies then invalid_arg "Database: item out of range"

let stores t item =
  check t item;
  t.copies.(item).present

let materialize t { item; value; version } =
  check t item;
  let c = t.copies.(item) in
  c.value <- value;
  c.version <- version;
  c.present <- true

let drop t item =
  check t item;
  t.copies.(item).present <- false

let read t item =
  check t item;
  let c = t.copies.(item) in
  if c.present then Some (c.value, c.version) else None

let version t item = Option.map snd (read t item)

let apply t { item; value; version } =
  check t item;
  let c = t.copies.(item) in
  if c.present && version <= c.version then
    invalid_arg
      (Printf.sprintf "Database.apply: version regression on item %d (%d <= %d)" item version
         c.version);
  c.value <- value;
  c.version <- version;
  c.present <- true

let apply_all t writes = List.iter (apply t) writes

let snapshot t =
  Array.map (fun c -> if c.present then Some (c.value, c.version) else None) t.copies

let items_behind replica reference =
  let behind = ref [] in
  for item = num_items replica - 1 downto 0 do
    match (read replica item, read reference item) with
    | Some (_, v_replica), Some (_, v_reference) when v_replica < v_reference ->
      behind := item :: !behind
    | _ -> ()
  done;
  !behind

let equal a b =
  num_items a = num_items b
  && Array.for_all2
       (fun (x : copy) (y : copy) ->
         x.present = y.present && ((not x.present) || (x.value = y.value && x.version = y.version)))
       a.copies b.copies

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun item c ->
      if c.present then Format.fprintf ppf "%3d: value=%d version=%d@," item c.value c.version
      else Format.fprintf ppf "%3d: (absent)@," item)
    t.copies;
  Format.fprintf ppf "@]"
