type copy = { mutable value : int; mutable version : int; mutable present : bool }

(* Two backends behind one interface.  [Dense] is the original
   array-of-copies, right for full replication where every slot is live.
   [Sparse] carries a base predicate (the static placement) plus a table
   of copies that have diverged from the initial state — written,
   materialised or dropped.  An untouched base item reads as
   (value 0, version 0) without ever allocating, so a 1024-site cluster
   over 10^5 items costs O(touched) per site instead of O(items). *)
type repr =
  | Dense of copy array
  | Sparse of { base : int -> bool; table : (int, copy) Hashtbl.t }

type t = { num_items : int; repr : repr }

type write = { item : int; value : int; version : int }

let create ~num_items =
  if num_items < 0 then invalid_arg "Database.create: negative num_items";
  {
    num_items;
    repr = Dense (Array.init num_items (fun _ -> { value = 0; version = 0; present = true }));
  }

let create_partial ~num_items ~stored =
  if num_items < 0 then invalid_arg "Database.create: negative num_items";
  { num_items; repr = Sparse { base = stored; table = Hashtbl.create 16 } }

let num_items t = t.num_items

let check t item =
  if item < 0 || item >= t.num_items then invalid_arg "Database: item out of range"

(* The copy to read for [item]: a stored slot, or [None] when the item
   tracks its pristine base state ((0, 0) if the base stores it). *)
let copy_opt t item =
  check t item;
  match t.repr with Dense copies -> Some copies.(item) | Sparse s -> Hashtbl.find_opt s.table item

(* The copy to mutate for [item], allocating a slot on first touch. *)
let copy_slot t item =
  check t item;
  match t.repr with
  | Dense copies -> copies.(item)
  | Sparse s -> (
    match Hashtbl.find_opt s.table item with
    | Some c -> c
    | None ->
      let c = { value = 0; version = 0; present = s.base item } in
      Hashtbl.replace s.table item c;
      c)

let stores t item =
  match copy_opt t item with
  | Some c -> c.present
  | None -> ( match t.repr with Dense _ -> assert false | Sparse s -> s.base item)

let materialize t { item; value; version } =
  let c = copy_slot t item in
  c.value <- value;
  c.version <- version;
  c.present <- true

let drop t item =
  let c = copy_slot t item in
  c.present <- false

let read t item =
  match copy_opt t item with
  | Some c -> if c.present then Some (c.value, c.version) else None
  | None -> ( match t.repr with Dense _ -> assert false | Sparse s -> if s.base item then Some (0, 0) else None)

let version t item = Option.map snd (read t item)

let apply t { item; value; version } =
  let c = copy_slot t item in
  if c.present && version <= c.version then
    invalid_arg
      (Printf.sprintf "Database.apply: version regression on item %d (%d <= %d)" item version
         c.version);
  c.value <- value;
  c.version <- version;
  c.present <- true

let apply_all t writes = List.iter (apply t) writes

let wipe t =
  (* Crash of a volatile store: forget everything back to the creation
     state (base items pristine at (0, 0), dynamic copies gone).  The
     write-ahead log replay rebuilds from here. *)
  match t.repr with
  | Dense copies ->
    Array.iter
      (fun (c : copy) ->
        c.value <- 0;
        c.version <- 0;
        c.present <- true)
      copies
  | Sparse s -> Hashtbl.reset s.table

let snapshot t = Array.init t.num_items (fun item -> read t item)

let items_behind replica reference =
  let behind = ref [] in
  for item = num_items replica - 1 downto 0 do
    match (read replica item, read reference item) with
    | Some (_, v_replica), Some (_, v_reference) when v_replica < v_reference ->
      behind := item :: !behind
    | _ -> ()
  done;
  !behind

let equal a b =
  num_items a = num_items b
  &&
  let same = ref true in
  for item = 0 to num_items a - 1 do
    if read a item <> read b item then same := false
  done;
  !same

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  for item = 0 to t.num_items - 1 do
    match read t item with
    | Some (value, version) ->
      Format.fprintf ppf "%3d: value=%d version=%d@," item value version
    | None -> Format.fprintf ppf "%3d: (absent)@," item
  done;
  Format.fprintf ppf "@]"
