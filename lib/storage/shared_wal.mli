(** One durable log shared by many tenants (erlang-ra's key design
    point): every tenant cluster in a shard funnels its durable records —
    redo entries, prepares, decisions, session bumps, checkpoints —
    through a single append-only log, so a batch of tenants amortizes one
    group commit instead of paying one fsync each.

    Like {!Wal}, nothing touches the file system; the log simulates the
    {e information flow} and the {e host-side cost} of a real device.
    Records carry a tenant/site-prefixed header, accumulate in a pending
    buffer, and are group-committed once [group_size] records are
    pending (or on {!flush}): the commit pads the batch to a whole number
    of [page_bytes] pages and checksums every byte of those pages — the
    per-page work a real log pays on write-out.  A per-tenant-WAL
    configuration is simply [group_size = 1]: every record pays a full
    page, which is exactly the fsync-per-tenant cost the shared log
    exists to avoid.

    All counters and the rolling page digest are pure functions of the
    record sequence, so two runs that feed the log identically produce
    identical {!stats} — the property the multi-tenant determinism tests
    pin down.  The log itself is not thread-safe; in a sharded engine
    each domain owns its shard's log exclusively. *)

type kind = Redo | Prepare | Decision | Session | Checkpoint | Forget
(** What a record durably represents.  [Forget] covers dropping a
    prepare or decision record (presumed-abort bookkeeping). *)

type t
(** A shard log. *)

type handle
(** A tenant+site-scoped writer: the only way to append.  Handles are
    cheap; a site holds one and never sees the log of another shard. *)

type stats = {
  records : int;  (** records appended across all tenants *)
  flushes : int;  (** group commits performed *)
  pages : int;  (** padded pages written out by those commits *)
  bytes_logged : int;  (** payload + header bytes, before padding *)
  digest : int;  (** rolling checksum over every padded page written *)
}

val create : ?group_size:int -> ?page_bytes:int -> unit -> t
(** A fresh shard log.  [group_size] (default 64) is the number of
    pending records that triggers a group commit; [page_bytes]
    (default 4096) the device page size commits are padded to.
    @raise Invalid_argument if either is non-positive. *)

val attach : t -> tenant:int -> site:int -> handle
(** Scope a writer to one tenant's site. *)

val tenant : handle -> int
val site : handle -> int

val record : handle -> kind -> size:int -> unit
(** Append one record of [size] payload bytes under the handle's
    tenant/site prefix; group-commits automatically when the pending
    batch reaches [group_size].  @raise Invalid_argument on negative
    [size]. *)

val flush : t -> unit
(** Force a group commit of any pending records (end-of-quantum or
    shutdown barrier).  No-op when nothing is pending. *)

val pending : t -> int
(** Records appended but not yet group-committed. *)

val stats : t -> stats
(** Deterministic given the record sequence.  Call after a final
    {!flush} if every record must be accounted to a page. *)

val pp_stats : Format.formatter -> stats -> unit
