type entry = { txn : int; write : Database.write }

type t = {
  checkpoint_interval : int;
  mutable checkpoint_image : (int * int) option array;  (* (value, version) or absent *)
  mutable log_rev : entry list;
  mutable log_length : int;
  mutable checkpoints_taken : int;
  mutable session : int;
}

let create ?(checkpoint_interval = 64) ~num_items () =
  if checkpoint_interval <= 0 then invalid_arg "Wal.create: non-positive checkpoint interval";
  if num_items < 0 then invalid_arg "Wal.create: negative num_items";
  {
    checkpoint_interval;
    checkpoint_image = Array.make num_items (Some (0, 0));
    log_rev = [];
    log_length = 0;
    checkpoints_taken = 0;
    session = 1;
  }

let append t entry =
  t.log_rev <- entry :: t.log_rev;
  t.log_length <- t.log_length + 1

let log_length t = t.log_length
let entries t = List.rev t.log_rev

let checkpoint t db =
  if Database.num_items db <> Array.length t.checkpoint_image then
    invalid_arg "Wal.checkpoint: database shape mismatch";
  t.checkpoint_image <- Database.snapshot db;
  t.log_rev <- [];
  t.log_length <- 0;
  t.checkpoints_taken <- t.checkpoints_taken + 1

let maybe_checkpoint t db =
  if t.log_length >= t.checkpoint_interval then begin
    checkpoint t db;
    true
  end
  else false

let checkpoints_taken t = t.checkpoints_taken

let replay_into t db =
  if Database.num_items db <> Array.length t.checkpoint_image then
    invalid_arg "Wal.replay_into: database shape mismatch";
  Array.iteri
    (fun item copy ->
      match copy with
      | Some (value, version) -> Database.materialize db { Database.item; value; version }
      | None -> Database.drop db item)
    t.checkpoint_image;
  List.iter (fun { write; _ } -> Database.materialize db write) (entries t);
  t.log_length

let session t = t.session

let record_session t session =
  if session <= t.session then invalid_arg "Wal.record_session: session numbers must increase";
  t.session <- session
