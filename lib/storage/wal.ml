type entry = { txn : int; write : Database.write }

type prepared = { p_txn : int; coordinator : int; writes : Database.write list }

(* Simulated on-device footprint of each durable record, in bytes.  The
   constants only have to be stable and plausible: they feed the shared
   log's page accounting, not any protocol decision. *)
let redo_bytes = 32  (* txn + item + value + version *)
let marker_bytes = 8  (* decision / forget / session records: one txn id *)
let prepare_base_bytes = 16  (* txn + coordinator *)
let write_bytes = 24  (* item + value + version *)
let item_image_bytes = 12  (* checkpoint image slot *)

type t = {
  checkpoint_interval : int;
  backing : Shared_wal.handle option;  (* shard log this WAL's records funnel into *)
  mutable checkpoint_image : (int * int) option array;  (* (value, version) or absent *)
  mutable log_rev : entry list;
  mutable log_length : int;
  mutable checkpoints_taken : int;
  mutable session : int;
  (* In-doubt transaction records live OUTSIDE the redo log on purpose:
     [checkpoint] truncates the log but must never drop a buffered
     prepare (the participant is still in doubt), and [replay_into] must
     never materialize a prepared-but-undecided write (it was never
     committed).  Keeping them in side tables makes both properties
     structural rather than relying on careful log filtering. *)
  prepared_tbl : (int, prepared) Hashtbl.t;
  decided_tbl : (int, unit) Hashtbl.t;
}

let notify t kind ~size =
  match t.backing with None -> () | Some h -> Shared_wal.record h kind ~size

let create ?(checkpoint_interval = 64) ?backing ?initial ~num_items () =
  if checkpoint_interval <= 0 then invalid_arg "Wal.create: non-positive checkpoint interval";
  if num_items < 0 then invalid_arg "Wal.create: negative num_items";
  (match initial with
  | Some db when Database.num_items db <> num_items ->
    invalid_arg "Wal.create: initial database shape mismatch"
  | Some _ | None -> ());
  {
    checkpoint_interval;
    backing;
    (* The initial checkpoint must mirror the owner's real initial
       database: for a partial-replication site, an all-items image
       would make the first post-crash replay resurrect copies of items
       the site never stored — phantom version-0 copies no fail-lock
       tracks. *)
    checkpoint_image =
      (match initial with
      | Some db -> Database.snapshot db
      | None -> Array.make num_items (Some (0, 0)));
    log_rev = [];
    log_length = 0;
    checkpoints_taken = 0;
    session = 1;
    prepared_tbl = Hashtbl.create 8;
    decided_tbl = Hashtbl.create 8;
  }

let append t entry =
  t.log_rev <- entry :: t.log_rev;
  t.log_length <- t.log_length + 1;
  notify t Shared_wal.Redo ~size:redo_bytes

let log_length t = t.log_length
let entries t = List.rev t.log_rev

let checkpoint t db =
  if Database.num_items db <> Array.length t.checkpoint_image then
    invalid_arg "Wal.checkpoint: database shape mismatch";
  t.checkpoint_image <- Database.snapshot db;
  t.log_rev <- [];
  t.log_length <- 0;
  t.checkpoints_taken <- t.checkpoints_taken + 1;
  notify t Shared_wal.Checkpoint ~size:(Database.num_items db * item_image_bytes)

let maybe_checkpoint t db =
  if t.log_length >= t.checkpoint_interval then begin
    checkpoint t db;
    true
  end
  else false

let checkpoints_taken t = t.checkpoints_taken

let replay_into t db =
  if Database.num_items db <> Array.length t.checkpoint_image then
    invalid_arg "Wal.replay_into: database shape mismatch";
  Array.iteri
    (fun item copy ->
      match copy with
      | Some (value, version) -> Database.materialize db { Database.item; value; version }
      | None -> Database.drop db item)
    t.checkpoint_image;
  List.iter (fun { write; _ } -> Database.materialize db write) (entries t);
  t.log_length

let session t = t.session

let record_session t session =
  if session <= t.session then invalid_arg "Wal.record_session: session numbers must increase";
  t.session <- session;
  notify t Shared_wal.Session ~size:marker_bytes

let log_prepare t ~txn ~coordinator writes =
  Hashtbl.replace t.prepared_tbl txn { p_txn = txn; coordinator; writes };
  notify t Shared_wal.Prepare ~size:(prepare_base_bytes + (write_bytes * List.length writes))

let forget_prepare t ~txn =
  if Hashtbl.mem t.prepared_tbl txn then begin
    Hashtbl.remove t.prepared_tbl txn;
    notify t Shared_wal.Forget ~size:marker_bytes
  end

let prepared t =
  Hashtbl.fold (fun _ p acc -> p :: acc) t.prepared_tbl []
  |> List.sort (fun a b -> compare a.p_txn b.p_txn)

let prepared_count t = Hashtbl.length t.prepared_tbl

let log_decision t ~txn =
  if not (Hashtbl.mem t.decided_tbl txn) then begin
    Hashtbl.replace t.decided_tbl txn ();
    notify t Shared_wal.Decision ~size:marker_bytes
  end

let forget_decision t ~txn =
  if Hashtbl.mem t.decided_tbl txn then begin
    Hashtbl.remove t.decided_tbl txn;
    notify t Shared_wal.Forget ~size:marker_bytes
  end

let decided_commit t ~txn = Hashtbl.mem t.decided_tbl txn
