type kind = Redo | Prepare | Decision | Session | Checkpoint | Forget

type t = {
  group_size : int;
  page_bytes : int;
  buf : Buffer.t;  (* pending record headers, not yet committed *)
  mutable payload_pending : int;  (* payload bytes of pending records *)
  mutable pending : int;
  mutable records : int;
  mutable flushes : int;
  mutable pages : int;
  mutable bytes_logged : int;
  mutable digest : int;
}

type handle = { log : t; tenant : int; site : int }

type stats = {
  records : int;
  flushes : int;
  pages : int;
  bytes_logged : int;
  digest : int;
}

let create ?(group_size = 64) ?(page_bytes = 4096) () =
  if group_size <= 0 then invalid_arg "Shared_wal.create: non-positive group_size";
  if page_bytes <= 0 then invalid_arg "Shared_wal.create: non-positive page_bytes";
  {
    group_size;
    page_bytes;
    buf = Buffer.create 1024;
    payload_pending = 0;
    pending = 0;
    records = 0;
    flushes = 0;
    pages = 0;
    bytes_logged = 0;
    digest = 0x4bf29ce484222325;  (* FNV-1a offset basis, truncated to 63-bit int *)
  }

let attach log ~tenant ~site = { log; tenant; site }
let tenant h = h.tenant
let site h = h.site

let fnv_prime = 0x100000001b3

let flush t =
  if t.pending > 0 then begin
    let header_len = Buffer.length t.buf in
    let len = header_len + t.payload_pending in
    let pages = (len + t.page_bytes - 1) / t.page_bytes in
    let padded = pages * t.page_bytes in
    (* Checksum every byte the commit writes out: the headers as stored,
       then payload and page padding as zero fill.  This is the honest
       per-page cost of the write-out — the work group commit amortizes
       across tenants — and it makes [digest] pin the exact byte stream,
       so determinism tests catch any reordering of tenant records. *)
    let d = ref t.digest in
    String.iter (fun c -> d := (!d lxor Char.code c) * fnv_prime) (Buffer.contents t.buf);
    for _ = header_len + 1 to padded do
      d := !d * fnv_prime
    done;
    t.digest <- !d land max_int;
    t.flushes <- t.flushes + 1;
    t.pages <- t.pages + pages;
    t.bytes_logged <- t.bytes_logged + len;
    Buffer.clear t.buf;
    t.payload_pending <- 0;
    t.pending <- 0
  end

let tag = function
  | Redo -> 0
  | Prepare -> 1
  | Decision -> 2
  | Session -> 3
  | Checkpoint -> 4
  | Forget -> 5

let record h kind ~size =
  if size < 0 then invalid_arg "Shared_wal.record: negative size";
  let t = h.log in
  Buffer.add_int32_le t.buf (Int32.of_int h.tenant);
  Buffer.add_int32_le t.buf (Int32.of_int h.site);
  Buffer.add_uint8 t.buf (tag kind);
  Buffer.add_int32_le t.buf (Int32.of_int size);
  t.payload_pending <- t.payload_pending + size;
  t.records <- t.records + 1;
  t.pending <- t.pending + 1;
  if t.pending >= t.group_size then flush t

let pending t = t.pending

let stats (t : t) : stats =
  {
    records = t.records;
    flushes = t.flushes;
    pages = t.pages;
    bytes_logged = t.bytes_logged;
    digest = t.digest;
  }

let pp_stats ppf s =
  Format.fprintf ppf "@[<h>records=%d flushes=%d pages=%d bytes=%d digest=%x@]" s.records
    s.flushes s.pages s.bytes_logged s.digest
