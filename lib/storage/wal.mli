(** Simulated stable storage: a write-ahead log with checkpoints.

    The paper factors data I/O out ("our system kept data copies within
    the virtual memory of each process", §1.2 assumption 3), which this
    repository reproduces by default.  For users who want crashes to mean
    something, [Raid_core.Config.durability = Wal _] switches each site to
    this store: every committed write is logged before the transaction
    completes, the volatile database is {e wiped} on a crash, and recovery
    rebuilds it by replaying the last checkpoint plus the log tail.  The
    site's own session number also lives here, because session numbers
    must be monotone across crashes.

    The store is an in-memory simulation of a disk: nothing is written to
    the file system, but the information flow is exactly that of a
    checkpointed redo log, so recovery correctness is exercised for
    real. *)

type entry = { txn : int; write : Database.write }

type prepared = { p_txn : int; coordinator : int; writes : Database.write list }
(** A durably buffered prepare: the participant voted yes for [p_txn]
    (coordinated by [coordinator]) and must be able to apply [writes]
    after a crash if the decision turns out to be commit. *)

type t

val create :
  ?checkpoint_interval:int ->
  ?backing:Shared_wal.handle ->
  ?initial:Database.t ->
  num_items:int ->
  unit ->
  t
(** A fresh store whose checkpoint is the owner's initial database:
    [initial] when given (a partial-replication site must pass its own
    database, or the first post-crash replay resurrects phantom copies
    of items it never stored), otherwise all items at (value 0,
    version 0).  [checkpoint_interval] (default 64) is the number of
    appended entries after which {!maybe_checkpoint} compacts.

    When [backing] is given, every durable mutation (redo append,
    prepare, decision, session bump, checkpoint, forget) additionally
    emits a tenant-prefixed record into that {!Shared_wal} shard log —
    the multi-tenant engine's group-commit path.  The WAL's own contents
    and recovery semantics are unchanged; the backing only accounts the
    durable byte stream.
    @raise Invalid_argument on non-positive interval, negative
    [num_items], or an [initial] of a different shape. *)

val append : t -> entry -> unit
(** Log one committed write (redo record). *)

val log_length : t -> int
(** Entries since the last checkpoint. *)

val entries : t -> entry list
(** The current log tail, oldest first. *)

val checkpoint : t -> Database.t -> unit
(** Compact: snapshot the given database as the new checkpoint and
    truncate the log.  The database must already contain every logged
    write (it is the authoritative copy at a quiescent point). *)

val maybe_checkpoint : t -> Database.t -> bool
(** [checkpoint] iff the log tail has reached the interval; returns
    whether it did. *)

val checkpoints_taken : t -> int

val replay_into : t -> Database.t -> int
(** Rebuild the database from the checkpoint plus the log tail: every
    item is restored to its checkpointed state and redo records are
    re-applied in order.  Returns the number of log entries replayed.
    @raise Invalid_argument if the database shape differs. *)

val session : t -> int
(** The durably stored session number (initially 1). *)

val record_session : t -> int -> unit
(** Persist a new session number.  @raise Invalid_argument if it does
    not increase. *)

(** {1 In-doubt transaction records}

    Prepare and decision records are stored in side tables, {e not} in
    the redo log: {!checkpoint} truncates the log without touching them
    (a checkpoint taken while a prepare is buffered must not drop the
    in-doubt transaction), and {!replay_into} never materializes a
    prepared-but-undecided write (only committed redo records replay).
    A participant logs a prepare before voting yes and forgets it once
    the decision is applied or the transaction aborts; a coordinator
    logs a commit decision at the decide point (before any [Commit]
    message leaves) and forgets it once every participant has acked. *)

val log_prepare : t -> txn:int -> coordinator:int -> Database.write list -> unit
(** Durably buffer an in-doubt prepare (overwrites any record for the
    same transaction). *)

val forget_prepare : t -> txn:int -> unit
(** Drop the prepare record once the transaction is decided locally. *)

val prepared : t -> prepared list
(** All in-doubt prepares, in transaction-id order. *)

val prepared_count : t -> int

val log_decision : t -> txn:int -> unit
(** Durably record a commit decision for a transaction this site
    coordinates.  There is no abort record: absence means presumed
    abort. *)

val forget_decision : t -> txn:int -> unit

val decided_commit : t -> txn:int -> bool
(** Whether a durable commit decision exists for [txn]. *)
