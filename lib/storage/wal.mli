(** Simulated stable storage: a write-ahead log with checkpoints.

    The paper factors data I/O out ("our system kept data copies within
    the virtual memory of each process", §1.2 assumption 3), which this
    repository reproduces by default.  For users who want crashes to mean
    something, [Raid_core.Config.durability = Wal _] switches each site to
    this store: every committed write is logged before the transaction
    completes, the volatile database is {e wiped} on a crash, and recovery
    rebuilds it by replaying the last checkpoint plus the log tail.  The
    site's own session number also lives here, because session numbers
    must be monotone across crashes.

    The store is an in-memory simulation of a disk: nothing is written to
    the file system, but the information flow is exactly that of a
    checkpointed redo log, so recovery correctness is exercised for
    real. *)

type entry = { txn : int; write : Database.write }

type t

val create : ?checkpoint_interval:int -> num_items:int -> unit -> t
(** A fresh store whose checkpoint is the initial database (all items
    value 0, version 0).  [checkpoint_interval] (default 64) is the
    number of appended entries after which {!maybe_checkpoint} compacts.
    @raise Invalid_argument on non-positive interval or negative
    [num_items]. *)

val append : t -> entry -> unit
(** Log one committed write (redo record). *)

val log_length : t -> int
(** Entries since the last checkpoint. *)

val entries : t -> entry list
(** The current log tail, oldest first. *)

val checkpoint : t -> Database.t -> unit
(** Compact: snapshot the given database as the new checkpoint and
    truncate the log.  The database must already contain every logged
    write (it is the authoritative copy at a quiescent point). *)

val maybe_checkpoint : t -> Database.t -> bool
(** [checkpoint] iff the log tail has reached the interval; returns
    whether it did. *)

val checkpoints_taken : t -> int

val replay_into : t -> Database.t -> int
(** Rebuild the database from the checkpoint plus the log tail: every
    item is restored to its checkpointed state and redo records are
    re-applied in order.  Returns the number of log entries replayed.
    @raise Invalid_argument if the database shape differs. *)

val session : t -> int
(** The durably stored session number (initially 1). *)

val record_session : t -> int -> unit
(** Persist a new session number.  @raise Invalid_argument if it does
    not increase. *)
