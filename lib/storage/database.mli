(** One site's replica of the (fully or partially) replicated database.

    The paper keeps "data copies within the virtual memory of each process
    which represented a site" (§1.2, assumption 3), factoring out I/O; we
    do the same.  Each copy of a data item carries a [value] and a
    [version] — the global commit sequence number of the last update
    applied to this copy.  Versions order copies: a copy is *out of date*
    exactly when its version is below the highest version of that item on
    any operational site, which is the condition fail-locks track.

    Items are identified by dense indices [0 .. num_items-1], matching the
    paper's model of a fixed hot set ("the portion of the database
    consisting of very frequently referenced data items"). *)

type t

type write = { item : int; value : int; version : int }
(** One committed update to one item. *)

val create : num_items:int -> t
(** All items start present with value 0 and version 0 (consistent across
    sites).  @raise Invalid_argument on negative [num_items]. *)

val create_partial : num_items:int -> stored:(int -> bool) -> t
(** Partial replication: only items with [stored item = true] have a local
    copy; the rest are absent until materialised (control transaction
    type 3). *)

val num_items : t -> int

val stores : t -> int -> bool
(** Whether this replica currently holds a copy of the item. *)

val materialize : t -> write -> unit
(** Create a local copy from an up-to-date remote copy (control type 3 /
    copier under partial replication).  Replaces any existing copy. *)

val drop : t -> int -> unit
(** Remove the local copy of an item (shedding a backup copy).
    @raise Invalid_argument if the item is out of range. *)

val read : t -> int -> (int * int) option
(** [read t item] is [Some (value, version)], or [None] when the item is
    not stored locally.  @raise Invalid_argument if out of range. *)

val version : t -> int -> int option

val apply : t -> write -> unit
(** Apply a committed write.  Versions must not regress: applying a write
    with a version at or below the stored one raises [Invalid_argument] —
    the engine's FIFO delivery and the protocol's serial execution make
    regressions a protocol bug, so we fail loudly.  Applying to an absent
    item materialises it (a write refreshes the copy). *)

val apply_all : t -> write list -> unit

val wipe : t -> unit
(** Forget all volatile state back to the creation state: items covered
    at creation are pristine again ((value 0, version 0)), dynamically
    materialised copies are gone.  Models a crash losing main memory;
    write-ahead-log replay rebuilds from here. *)

val snapshot : t -> (int * int) option array
(** Per-item [(value, version)] copies; [None] for absent items. *)

val items_behind : t -> t -> int list
(** [items_behind replica reference] lists items stored by both whose
    version in [replica] is strictly below that in [reference]. *)

val equal : t -> t -> bool
(** Same item count and identical (value, version) for every item. *)

val pp : Format.formatter -> t -> unit
