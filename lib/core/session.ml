type state = Up | Down | Waiting_recover | Terminating

type entry = { session : int; state : state }

type t = entry array

let create ~num_sites =
  if num_sites <= 0 then invalid_arg "Session.create: num_sites must be positive";
  Array.make num_sites { session = 1; state = Up }

let num_sites = Array.length

let check t site =
  if site < 0 || site >= Array.length t then invalid_arg "Session: site out of range"

let get t site =
  check t site;
  t.(site)

let session t site = (get t site).session
let state t site = (get t site).state

let set t site entry =
  check t site;
  t.(site) <- entry

let mark_down t site = set t site { (get t site) with state = Down }
let mark_waiting t site ~session = set t site { session; state = Waiting_recover }
let mark_terminating t site = set t site { (get t site) with state = Terminating }
let mark_up t site ~session = set t site { session; state = Up }

let is_up t site = state t site = Up

let operational t =
  let up = ref [] in
  for site = Array.length t - 1 downto 0 do
    if t.(site).state = Up then up := site :: !up
  done;
  !up

let operational_except t site = List.filter (fun s -> s <> site) (operational t)

let copy = Array.copy

let install t ~from =
  if Array.length t <> Array.length from then invalid_arg "Session.install: size mismatch";
  Array.blit from 0 t 0 (Array.length t)

let merge_failure t failed = List.iter (mark_down t) failed

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun (x : entry) (y : entry) -> x.session = y.session && x.state = y.state) a b

let pp_state ppf = function
  | Up -> Format.pp_print_string ppf "up"
  | Down -> Format.pp_print_string ppf "down"
  | Waiting_recover -> Format.pp_print_string ppf "waiting"
  | Terminating -> Format.pp_print_string ppf "terminating"

let pp ppf t =
  Format.fprintf ppf "@[<h>[";
  Array.iteri
    (fun site { session; state } ->
      if site > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%d:%d/%a" site session pp_state state)
    t;
  Format.fprintf ppf "]@]"
