module Bitset = Raid_util.Bitset

type state = Up | Down | Waiting_recover | Terminating

type entry = { session : int; state : state }

type hook = site:int -> session:int -> state:state -> unit

(* Sparse representation.  Every vector starts as "all sites up with
   session 1" — the initial consistent configuration — so that entry is
   the implicit default and only sites whose entry has {e diverged} from
   it are stored.  In a k-holder partial-replication run a site only ever
   learns about the members of the placement groups it touches plus the
   coordinators that witness failures, so the override table stays at the
   size of that set rather than the cluster: creating, copying and
   shipping a vector (control-1 recovery state) is O(diverged), not
   O(sites).  [non_up] mirrors the overrides whose state is not [Up] as a
   bitmap so the hot-path queries ([is_up], the operational iterators)
   never touch the hashtable; [up] caches the number of [Up] entries so
   participant selection never scans. *)
type t = {
  num_sites : int;
  overrides : (int, entry) Hashtbl.t;  (* canonical: present iff <> default *)
  non_up : Bitset.t;  (* sites whose current state is not [Up] *)
  mutable up : int;
  mutable hook : hook option;
}

let default_entry = { session = 1; state = Up }

let create ~num_sites =
  if num_sites <= 0 then invalid_arg "Session.create: num_sites must be positive";
  {
    num_sites;
    overrides = Hashtbl.create 4;
    non_up = Bitset.create num_sites;
    up = num_sites;
    hook = None;
  }

let set_hook t hook = t.hook <- hook

let num_sites t = t.num_sites

let check t site =
  if site < 0 || site >= t.num_sites then invalid_arg "Session: site out of range"

let get t site =
  check t site;
  match Hashtbl.find_opt t.overrides site with Some entry -> entry | None -> default_entry

let session t site = (get t site).session
let state t site = (get t site).state

let diverged t = Hashtbl.length t.overrides

(* Fire the observability hook only when the entry actually changes. *)
let notify t site (entry : entry) =
  match t.hook with
  | None -> ()
  | Some hook -> hook ~site ~session:entry.session ~state:entry.state

let set t site entry =
  let before = get t site in
  (* Keep the table canonical (an override exists iff the entry differs
     from the default), so storage — and therefore [copy]/[equal] — stays
     proportional to the diverged set. *)
  if entry = default_entry then Hashtbl.remove t.overrides site
  else Hashtbl.replace t.overrides site entry;
  (match (before.state, entry.state) with
  | Up, Up -> ()
  | Up, _ ->
    t.up <- t.up - 1;
    Bitset.set t.non_up site
  | _, Up ->
    t.up <- t.up + 1;
    Bitset.clear t.non_up site
  | _, _ -> ());
  if before <> entry then notify t site entry

let mark_down t site = set t site { (get t site) with state = Down }
let mark_waiting t site ~session = set t site { session; state = Waiting_recover }
let mark_terminating t site = set t site { (get t site) with state = Terminating }
let mark_up t site ~session = set t site { session; state = Up }

let is_up t site =
  check t site;
  not (Bitset.mem t.non_up site)

let up_count t = t.up

let operational t =
  let up = ref [] in
  for site = t.num_sites - 1 downto 0 do
    if not (Bitset.mem t.non_up site) then up := site :: !up
  done;
  !up

let operational_except t site = List.filter (fun s -> s <> site) (operational t)

(* Allocation-free traversal of the [Up] sites, in increasing id order —
   the same order [operational] returns, so send sequences (and therefore
   traces) are identical whichever form a caller uses.  With every site
   up (the common steady state) the bitmap test is skipped entirely. *)
let iter_operational t f =
  if t.up = t.num_sites then
    for site = 0 to t.num_sites - 1 do
      f site
    done
  else
    for site = 0 to t.num_sites - 1 do
      if not (Bitset.mem t.non_up site) then f site
    done

let iter_operational_except t ~self f =
  if t.up = t.num_sites then
    for site = 0 to t.num_sites - 1 do
      if site <> self then f site
    done
  else
    for site = 0 to t.num_sites - 1 do
      if site <> self && not (Bitset.mem t.non_up site) then f site
    done

let operational_count_except t ~self = t.up - (if is_up t self then 1 else 0)

exception Found

let exists_operational t pred =
  try
    iter_operational t (fun site -> if pred site then raise Found);
    false
  with Found -> true

let first_operational t pred =
  let found = ref (-1) in
  (try
     iter_operational t (fun site ->
         if pred site then begin
           found := site;
           raise Found
         end)
   with Found -> ());
  if !found < 0 then None else Some !found

(* Copies are inert data (shipped inside [Recovery_state] messages); they
   never carry the source's hook.  O(diverged), not O(sites). *)
let copy t =
  {
    num_sites = t.num_sites;
    overrides = Hashtbl.copy t.overrides;
    non_up = Bitset.copy t.non_up;
    up = t.up;
    hook = None;
  }

let install t ~from =
  if t.num_sites <> from.num_sites then invalid_arg "Session.install: size mismatch";
  (* Per-site [set] keeps the change hook firing exactly as the dense
     representation did: once per entry that actually changes, in
     increasing site order. *)
  for site = 0 to t.num_sites - 1 do
    set t site (get from site)
  done

let merge_failure t failed = List.iter (mark_down t) failed

(* Both tables are canonical, so equality is equality of the override
   sets — O(diverged), not O(sites). *)
let equal a b =
  a.num_sites = b.num_sites
  && Hashtbl.length a.overrides = Hashtbl.length b.overrides
  && Hashtbl.fold
       (fun site (entry : entry) acc ->
         acc
         &&
         match Hashtbl.find_opt b.overrides site with
         | Some other -> entry.session = other.session && entry.state = other.state
         | None -> false)
       a.overrides true

let pp_state ppf = function
  | Up -> Format.pp_print_string ppf "up"
  | Down -> Format.pp_print_string ppf "down"
  | Waiting_recover -> Format.pp_print_string ppf "waiting"
  | Terminating -> Format.pp_print_string ppf "terminating"

let state_name state = Format.asprintf "%a" pp_state state

let pp ppf t =
  Format.fprintf ppf "@[<h>[";
  for site = 0 to t.num_sites - 1 do
    let { session; state } = get t site in
    if site > 0 then Format.fprintf ppf "; ";
    Format.fprintf ppf "%d:%d/%a" site session pp_state state
  done;
  Format.fprintf ppf "]@]"
