type state = Up | Down | Waiting_recover | Terminating

type entry = { session : int; state : state }

type hook = site:int -> session:int -> state:state -> unit

(* [up] caches the number of [Up] entries so the hot path (participant
   selection on every message) never scans the vector to count. *)
type t = { entries : entry array; mutable up : int; mutable hook : hook option }

let create ~num_sites =
  if num_sites <= 0 then invalid_arg "Session.create: num_sites must be positive";
  { entries = Array.make num_sites { session = 1; state = Up }; up = num_sites; hook = None }

let set_hook t hook = t.hook <- hook

let num_sites t = Array.length t.entries

let check t site =
  if site < 0 || site >= Array.length t.entries then invalid_arg "Session: site out of range"

let get t site =
  check t site;
  t.entries.(site)

let session t site = (get t site).session
let state t site = (get t site).state

(* Fire the observability hook only when the entry actually changes. *)
let notify t site (entry : entry) =
  match t.hook with
  | None -> ()
  | Some hook -> hook ~site ~session:entry.session ~state:entry.state

let set t site entry =
  check t site;
  let before = t.entries.(site) in
  t.entries.(site) <- entry;
  (match (before.state, entry.state) with
  | Up, Up -> ()
  | Up, _ -> t.up <- t.up - 1
  | _, Up -> t.up <- t.up + 1
  | _, _ -> ());
  if before <> entry then notify t site entry

let mark_down t site = set t site { (get t site) with state = Down }
let mark_waiting t site ~session = set t site { session; state = Waiting_recover }
let mark_terminating t site = set t site { (get t site) with state = Terminating }
let mark_up t site ~session = set t site { session; state = Up }

let is_up t site = state t site = Up

let up_count t = t.up

let operational t =
  let up = ref [] in
  for site = Array.length t.entries - 1 downto 0 do
    if t.entries.(site).state = Up then up := site :: !up
  done;
  !up

let operational_except t site = List.filter (fun s -> s <> site) (operational t)

(* Allocation-free traversal of the [Up] sites, in increasing id order —
   the same order [operational] returns, so send sequences (and therefore
   traces) are identical whichever form a caller uses. *)
let iter_operational t f =
  for site = 0 to Array.length t.entries - 1 do
    if t.entries.(site).state = Up then f site
  done

let iter_operational_except t ~self f =
  for site = 0 to Array.length t.entries - 1 do
    if site <> self && t.entries.(site).state = Up then f site
  done

let operational_count_except t ~self = t.up - (if is_up t self then 1 else 0)

exception Found

let exists_operational t pred =
  try
    iter_operational t (fun site -> if pred site then raise Found);
    false
  with Found -> true

let first_operational t pred =
  let found = ref (-1) in
  (try
     iter_operational t (fun site ->
         if pred site then begin
           found := site;
           raise Found
         end)
   with Found -> ());
  if !found < 0 then None else Some !found

(* Copies are inert data (shipped inside [Recovery_state] messages); they
   never carry the source's hook. *)
let copy t = { entries = Array.copy t.entries; up = t.up; hook = None }

let install t ~from =
  if Array.length t.entries <> Array.length from.entries then
    invalid_arg "Session.install: size mismatch";
  Array.iteri (fun site entry -> set t site entry) from.entries

let merge_failure t failed = List.iter (mark_down t) failed

let equal a b =
  Array.length a.entries = Array.length b.entries
  && Array.for_all2
       (fun (x : entry) (y : entry) -> x.session = y.session && x.state = y.state)
       a.entries b.entries

let pp_state ppf = function
  | Up -> Format.pp_print_string ppf "up"
  | Down -> Format.pp_print_string ppf "down"
  | Waiting_recover -> Format.pp_print_string ppf "waiting"
  | Terminating -> Format.pp_print_string ppf "terminating"

let state_name state = Format.asprintf "%a" pp_state state

let pp ppf t =
  Format.fprintf ppf "@[<h>[";
  Array.iteri
    (fun site { session; state } ->
      if site > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%d:%d/%a" site session pp_state state)
    t.entries;
  Format.fprintf ppf "]@]"
