type abort_reason =
  | Copier_unavailable
  | Copier_source_failed
  | Participant_failed
  | Write_unavailable

type outcome = {
  txn : Txn.t;
  coordinator : int;
  committed : bool;
  abort_reason : abort_reason option;
  copier_requests : int;
  copier_items : int;
  reads : (int * int * int) list;
  writes : Raid_storage.Database.write list;
  elapsed : Raid_net.Vtime.t;
}

type t = {
  mutable txns_committed : int;
  mutable txns_aborted : int;
  mutable copier_requests : int;
  mutable copier_items_refreshed : int;
  mutable batch_copier_rounds : int;
  mutable clear_specials_sent : int;
  mutable control1_completed : int;
  mutable control2_announcements : int;
  mutable control3_backups : int;
  mutable faillocks_set : int;
  mutable faillocks_cleared : int;
  mutable coordinator_ms : float list;
  mutable coordinator_copier_ms : float list;
  mutable abort_ms : float list;
  mutable participant_ms : float list;
  mutable phase_copy_ms : float list;
  mutable phase_prepare_ms : float list;
  mutable phase_commit_ms : float list;
  mutable control1_recovering_ms : float list;
  mutable control1_operational_ms : float list;
  mutable control2_ms : float list;
  mutable copy_serve_ms : float list;
  mutable clear_special_ms : float list;
}

let create () =
  {
    txns_committed = 0;
    txns_aborted = 0;
    copier_requests = 0;
    copier_items_refreshed = 0;
    batch_copier_rounds = 0;
    clear_specials_sent = 0;
    control1_completed = 0;
    control2_announcements = 0;
    control3_backups = 0;
    faillocks_set = 0;
    faillocks_cleared = 0;
    coordinator_ms = [];
    coordinator_copier_ms = [];
    abort_ms = [];
    participant_ms = [];
    phase_copy_ms = [];
    phase_prepare_ms = [];
    phase_commit_ms = [];
    control1_recovering_ms = [];
    control1_operational_ms = [];
    control2_ms = [];
    copy_serve_ms = [];
    clear_special_ms = [];
  }

let reset t =
  t.txns_committed <- 0;
  t.txns_aborted <- 0;
  t.copier_requests <- 0;
  t.copier_items_refreshed <- 0;
  t.batch_copier_rounds <- 0;
  t.clear_specials_sent <- 0;
  t.control1_completed <- 0;
  t.control2_announcements <- 0;
  t.control3_backups <- 0;
  t.faillocks_set <- 0;
  t.faillocks_cleared <- 0;
  t.coordinator_ms <- [];
  t.coordinator_copier_ms <- [];
  t.abort_ms <- [];
  t.participant_ms <- [];
  t.phase_copy_ms <- [];
  t.phase_prepare_ms <- [];
  t.phase_commit_ms <- [];
  t.control1_recovering_ms <- [];
  t.control1_operational_ms <- [];
  t.control2_ms <- [];
  t.copy_serve_ms <- [];
  t.clear_special_ms <- []

let snapshot_counts t =
  [
    ("txns_committed", t.txns_committed);
    ("txns_aborted", t.txns_aborted);
    ("copier_requests", t.copier_requests);
    ("copier_items_refreshed", t.copier_items_refreshed);
    ("batch_copier_rounds", t.batch_copier_rounds);
    ("clear_specials_sent", t.clear_specials_sent);
    ("control1_completed", t.control1_completed);
    ("control2_announcements", t.control2_announcements);
    ("control3_backups", t.control3_backups);
    ("faillocks_set", t.faillocks_set);
    ("faillocks_cleared", t.faillocks_cleared);
  ]

(* Every latency sample list, labelled, for the observability reports:
   first by transaction outcome, then by 2PC phase, then the control and
   service samples the Experiment-1 tables quote.  Samples are stored
   most-recent-first; groups may be empty. *)
let latency_groups t =
  [
    ("commit (no copier)", t.coordinator_ms);
    ("commit (with copier)", t.coordinator_copier_ms);
    ("abort", t.abort_ms);
    ("participant", t.participant_ms);
    ("phase: copy", t.phase_copy_ms);
    ("phase: prepare", t.phase_prepare_ms);
    ("phase: commit", t.phase_commit_ms);
    ("control1 (recovering)", t.control1_recovering_ms);
    ("control1 (operational)", t.control1_operational_ms);
    ("control2", t.control2_ms);
    ("copy serve", t.copy_serve_ms);
    ("clear special", t.clear_special_ms);
  ]

let pp_abort_reason ppf = function
  | Copier_unavailable -> Format.pp_print_string ppf "copier-unavailable"
  | Copier_source_failed -> Format.pp_print_string ppf "copier-source-failed"
  | Participant_failed -> Format.pp_print_string ppf "participant-failed"
  | Write_unavailable -> Format.pp_print_string ppf "write-unavailable"
