(** Replica placement: which sites hold a copy of which items.

    The paper's prototype is fully replicated — "each site stores a copy
    of every data item" — which makes every write, fail-lock table and
    2PC participant set O(sites).  This module introduces k-replication
    with *consecutive replica sets*: each item has a primary site chosen
    by a sharding function, and its k copies live on sites
    [primary, primary+1, ..., primary+k-1 (mod num_sites)].  Membership
    tests are O(1) (a circular-distance comparison, no per-item storage)
    and replica iteration is O(k) with no allocation, so protocol state
    shrinks from O(sites) to O(k) per item.  This is the sharded
    replica-group architecture of Sutra & Shapiro (fault-tolerant partial
    replication) and Bravo et al. (reconfigurable atomic commit).

    Control transactions of type 3 can still spawn *backup* copies on
    sites outside an item's static replica set; those dynamic extras are
    carried by a {!View} overlay per site, kept out of the O(1) base. *)

type sharding =
  | Hash  (** primary = splitmix64(item) mod sites — the default; spreads
              any item-id distribution evenly. *)
  | Range  (** contiguous key ranges: primary = item * sites / num_items;
               preserves key locality. *)
  | Modular  (** primary = item mod sites — matches the consecutive
                 placements used in the paper-era tests and examples. *)
  | Affinity of int array
      (** Explicit primary per item ([Array.length] = num_items). *)

type spec = { factor : int; sharding : sharding }
(** A declarative placement: [factor] copies per item ([k]); clamped to
    the site count at resolution time, so [factor >= num_sites]
    degenerates to full replication. *)

val spec : ?sharding:sharding -> factor:int -> unit -> spec
(** [spec ~factor ()] with [sharding] defaulting to {!Hash}. *)

val sharding_of_string : string -> (sharding, string) result
val sharding_to_string : sharding -> string
(** Round-trip the symbolic shardings ("hash", "range", "modular");
    [Affinity] prints as "affinity". *)

type t
(** A resolved placement over a fixed [num_sites] x [num_items] space. *)

val full : num_sites:int -> num_items:int -> t
(** Every site holds every item (the paper's model). *)

val make : num_sites:int -> num_items:int -> spec -> t
(** Resolve a spec.  @raise Invalid_argument when [factor <= 0], when an
    [Affinity] array has the wrong length, or when an affinity primary is
    out of range. *)

val num_sites : t -> int
val num_items : t -> int

val is_full : t -> bool
(** True when every site holds every item — either built with {!full} or
    a spec whose factor covers all sites.  The protocol uses this to keep
    full-replication fast paths byte-identical to the original code. *)

val factor : t -> int
(** Number of copies per item (= [num_sites] when full). *)

val primary : t -> int -> int
(** [primary t item] is the first site of the item's replica set. *)

val holds : t -> site:int -> item:int -> bool
(** O(1) membership: circular distance from the primary < factor. *)

val iter_replicas : t -> int -> (int -> unit) -> unit
(** [iter_replicas t item f] applies [f] to each of the item's k holders.
    Allocation-free.  Under full replication sites are visited in
    ascending order [0 .. num_sites-1]; under sharding, in ring order
    starting at the primary. *)

val fold_replicas : t -> int -> (int -> 'a -> 'a) -> 'a -> 'a

val replicas : t -> int -> int list
(** The item's holders as a list (ring order from the primary). *)

(** {2 Per-site views with dynamic backups}

    A [View.t] is one site's belief about placement: the shared static
    base plus mutable per-site extras recording control-3 backup copies.
    Views are what the protocol consults; the hot path stays O(1)/O(k)
    because the extras overlay is empty until a backup is spawned. *)

module View : sig
  type placement := t
  type t

  val create : placement -> t
  (** Fresh view with no extras. *)

  val base : t -> placement

  val num_sites : t -> int
  val num_items : t -> int
  val is_full : t -> bool

  val holds : t -> site:int -> item:int -> bool
  (** Static base OR a recorded backup. *)

  val add_backup : t -> site:int -> item:int -> unit
  (** Record that [site] now stores a dynamically spawned copy of [item].
      No-op when the base already covers it. *)

  val iter_holders : t -> int -> (int -> unit) -> unit
  (** Static replicas (ring order) then any backup holders (ascending
      site order), each site at most once. *)

  val count_holders_if : t -> int -> (int -> bool) -> int
  (** Number of holders of [item] satisfying the predicate. *)

  val exists_holder : t -> int -> (int -> bool) -> bool

  val extras : t -> (int * int list) list
  (** Backup copies as [(item, sites)] pairs, items ascending, sites
      ascending — the wire form shipped in recovery-state messages. *)

  val install_extras : t -> (int * int list) list -> unit
  (** Replace this view's extras wholesale (recovery installation). *)

  val copy_extras_from : t -> t -> unit
  (** [copy_extras_from dst src] replaces [dst]'s extras with [src]'s. *)
end
