(** Transaction workload generators.

    The paper's generator (§1.2): "a random number of operations (from 1
    to the maximum specified for the system)", "an equal probability of an
    operation being a read or a write", "each operation ... for a randomly
    chosen data item" — uniform over the frequently-referenced hot set.
    [uniform] reproduces it, with the read/write ratio exposed because the
    paper's §5 discussion analyses what a read-heavy mix would change.

    [et1] and [wisconsin] implement the two benchmarks the paper names as
    future work: the Tandem ET1/DebitCredit transaction [Anon85] and a
    Wisconsin-style scan/update mix [Bitt83], both mapped onto the dense
    item space. *)

type spec =
  | Uniform of { max_ops : int; write_prob : float }
      (** The paper's generator: size uniform in [1, max_ops], each op a
          write with probability [write_prob] (paper: 0.5), item uniform. *)
  | Zipfian of { max_ops : int; write_prob : float; theta : float }
      (** [Uniform]'s op-mix contract (size uniform in [1, max_ops], each
          op a write with probability [write_prob]) with zipf-distributed
          items: item 0 is the hottest, skew grows with
          [theta] in (0,1) (YCSB's parameterisation; 0.99 is its
          "zipfian" default).  Draws are rejection-free (Gray et al.), so
          the generator consumes exactly one uniform draw per item like
          [Uniform] does. *)
  | Et1 of { branches : int; tellers_per_branch : int; accounts_per_branch : int }
      (** DebitCredit: each transaction read-modify-writes one account,
          its teller and its branch.  The item space is carved into
          [branches] branch items, then teller items, then account items;
          [num_items] must be at least the implied total. *)
  | Wisconsin of { scan_length : int; update_ops : int; scan_prob : float }
      (** A mix of scan transactions ([scan_length] consecutive reads from
          a random offset) and update transactions ([update_ops]
          read-modify-write pairs on random items). *)

type t

val create : spec -> num_items:int -> rng:Raid_util.Rng.t -> t
(** @raise Invalid_argument when the spec is inconsistent with
    [num_items] (e.g. ET1 regions exceed the item space, non-positive
    sizes, probabilities outside [0,1]). *)

val next : t -> id:int -> Txn.t
(** Generate the transaction with serial number [id]. *)

val paper_default : max_ops:int -> spec
(** [Uniform] with the paper's equal read/write probability. *)
