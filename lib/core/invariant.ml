module Database = Raid_storage.Database
module Update_log = Raid_storage.Update_log

type result = (unit, string) Stdlib.result

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let fail fmt = Format.kasprintf (fun message -> Error message) fmt

let checkable_sites cluster =
  List.filter
    (fun s -> not (Site.is_waiting (Cluster.site cluster s)))
    (Cluster.alive_sites cluster)

let faillocks_track_staleness cluster =
  let config = Cluster.config cluster in
  let sites = checkable_sites cluster in
  let rec check_site = function
    | [] -> Ok ()
    | s :: rest ->
      let site = Cluster.site cluster s in
      (* One oracle sweep per site, not one per item: the per-item
         membership test below must not rebuild the whole list. *)
      let locked_for_s = Array.make config.Config.num_items false in
      List.iter (fun item -> locked_for_s.(item) <- true) (Cluster.faillocks_for cluster s);
      let rec check_item item =
        if item >= config.Config.num_items then Ok ()
        else if not (Site.stores site ~item) then check_item (item + 1)
        else
          let version = Option.get (Database.version (Site.database site) item) in
          (* The reference is the latest committed version: when every
             holder of the newest copy is down, the alive copies are still
             genuinely out of date and must stay fail-locked. *)
          let reference = Cluster.committed_version cluster item in
          let behind = version < reference in
          let locked = locked_for_s.(item) in
          if behind && not locked then
            if Cluster.knowledge_lost cluster ~item ~site:s then
              (* The DESIGN.md §11 gap, detected and warned about when
                 the last witness crashed: tolerated here so the crash
                 matrix distinguishes the known paper-level limitation
                 from a protocol regression. *)
              check_item (item + 1)
            else
              fail "site %d item %d is behind (v%d < v%d) but not fail-locked" s item version
                reference
          else if locked && not behind then
            fail "site %d item %d is fail-locked but current (v%d)" s item version
          else check_item (item + 1)
      in
      let* () = check_item 0 in
      check_site rest
  in
  check_site sites

let no_stale_reads cluster =
  let config = Cluster.config cluster in
  let last_committed = Array.make config.Config.num_items 0 in
  let check_outcome outcome =
    if not outcome.Metrics.committed then Ok ()
    else
      let txn_id = outcome.Metrics.txn.Txn.id in
      let rec check_reads = function
        | [] -> Ok ()
        | (item, _value, version) :: rest ->
          if version <> last_committed.(item) && version <> txn_id then
            fail "txn %d read item %d at version %d; latest committed was %d" txn_id item
              version last_committed.(item)
          else check_reads rest
      in
      let* () = check_reads outcome.Metrics.reads in
      List.iter
        (fun { Database.item; version; _ } ->
          if version > last_committed.(item) then last_committed.(item) <- version)
        outcome.Metrics.writes;
      Ok ()
  in
  List.fold_left
    (fun acc outcome ->
      let* () = acc in
      check_outcome outcome)
    (Ok ()) (Cluster.outcomes cluster)

let write_durability cluster ~operational_at_commit =
  let check_outcome outcome =
    if not outcome.Metrics.committed then Ok ()
    else
      let txn_id = outcome.Metrics.txn.Txn.id in
      let holders = operational_at_commit txn_id in
      let rec check_writes = function
        | [] -> Ok ()
        | { Database.item; _ } :: rest ->
          let missing =
            List.find_opt
              (fun s ->
                let site = Cluster.site cluster s in
                Site.stores site ~item
                && not
                     (List.exists
                        (fun e -> e.Update_log.txn = txn_id && e.Update_log.write.Database.item = item)
                        (Update_log.entries (Site.log site))))
              holders
          in
          (match missing with
          | Some s -> fail "txn %d write of item %d missing from site %d's log" txn_id item s
          | None -> check_writes rest)
      in
      check_writes outcome.Metrics.writes
  in
  List.fold_left
    (fun acc outcome ->
      let* () = acc in
      check_outcome outcome)
    (Ok ()) (Cluster.outcomes cluster)

let convergence cluster =
  let num_sites = Cluster.num_sites cluster in
  let alive = Cluster.alive_sites cluster in
  if List.length alive <> num_sites then fail "convergence: %d sites are down" (num_sites - List.length alive)
  else if not (Cluster.fully_consistent cluster) then
    fail "convergence: databases differ or fail-locks remain (%d set)"
      (Cluster.total_faillocks cluster)
  else Ok ()

let session_vectors_sane cluster =
  let sites = checkable_sites cluster in
  match sites with
  | [] -> Ok ()
  | reference :: _ ->
    let reference_vector = Site.vector (Cluster.site cluster reference) in
    let rec check = function
      | [] -> Ok ()
      | s :: rest ->
        let vector = Site.vector (Cluster.site cluster s) in
        let rec check_target = function
          | [] -> check rest
          | target :: more ->
            let own = Site.session_number (Cluster.site cluster target) in
            let entry = Session.get vector target in
            if entry.Session.state <> Session.Up then
              fail "site %d believes alive site %d is not up" s target
            else if entry.Session.session <> own then
              fail "site %d perceives session %d for site %d whose own session is %d" s
                entry.Session.session target own
            else if Session.state reference_vector target <> Session.Up then
              fail "reference site %d disagrees that %d is up" reference target
            else check_target more
        in
        check_target sites
    in
    check sites

let all cluster =
  let* () = faillocks_track_staleness cluster in
  let* () = no_stale_reads cluster in
  session_vectors_sane cluster
