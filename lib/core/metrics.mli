(** Cluster-wide protocol accounting.

    One instance is shared by all sites of a cluster.  Counters follow
    the quantities the paper records per experiment ("the number of
    fail-locks set, the number of fail-locks cleared, and the number of
    copier transactions requested", §3.1.1) plus the event-time samples
    behind every Experiment-1 table row. *)

type abort_reason =
  | Copier_unavailable
      (** a read hit a fail-locked copy and no operational site holds an
          up-to-date copy (the 13 aborts of Figure 2's scenario) *)
  | Copier_source_failed
      (** the site a copy request was sent to is now down (Appendix A) *)
  | Participant_failed  (** a participant died during phase 1 *)
  | Write_unavailable
      (** partial replication: a written item has no operational holder,
          so the update would be installed nowhere *)

type outcome = {
  txn : Txn.t;
  coordinator : int;
  committed : bool;
  abort_reason : abort_reason option;
  copier_requests : int;  (** copier transactions issued for this txn *)
  copier_items : int;  (** items refreshed by those copiers *)
  reads : (int * int * int) list;  (** (item, value, version) as read *)
  writes : Raid_storage.Database.write list;  (** installed writes; [] if aborted *)
  elapsed : Raid_net.Vtime.t;  (** coordinator time, reception to completion *)
}

type t = {
  mutable txns_committed : int;
  mutable txns_aborted : int;
  mutable copier_requests : int;
  mutable copier_items_refreshed : int;
  mutable batch_copier_rounds : int;
  mutable clear_specials_sent : int;
  mutable control1_completed : int;
  mutable control2_announcements : int;
  mutable control3_backups : int;
  mutable faillocks_set : int;  (** bit transitions clear->set, all sites *)
  mutable faillocks_cleared : int;  (** bit transitions set->clear, all sites *)
  mutable coordinator_ms : float list;  (** committed txns without copiers *)
  mutable coordinator_copier_ms : float list;  (** committed txns with >= 1 copier *)
  mutable abort_ms : float list;  (** aborted txns, reception to abort *)
  mutable participant_ms : float list;
  mutable phase_copy_ms : float list;
      (** coordinator time in the copier round, per txn that ran one *)
  mutable phase_prepare_ms : float list;
      (** 2PC phase 1: prepare sent to last vote received *)
  mutable phase_commit_ms : float list;
      (** 2PC phase 2: decide sent to last commit-ack (or send-failure) *)
  mutable control1_recovering_ms : float list;
  mutable control1_operational_ms : float list;
  mutable control2_ms : float list;
  mutable copy_serve_ms : float list;
  mutable clear_special_ms : float list;
}

val create : unit -> t

val reset : t -> unit
(** Zero all counters and drop all samples. *)

val snapshot_counts : t -> (string * int) list
(** Counter names and values, for reports. *)

val latency_groups : t -> (string * float list) list
(** Every latency sample list with a stable label — per-transaction
    virtual latencies by outcome, by 2PC phase, and the control/service
    samples.  Groups may be empty; samples are most-recent-first. *)

val pp_abort_reason : Format.formatter -> abort_reason -> unit
