(** Virtual-time processing costs.

    The paper measured event times on one processor's clock and stressed
    that "the average times are not intended to represent the absolute
    performance of the system but rather the performance of the system
    for a particular configuration" (§2.1) — comparisons between averages
    are what matter.  This module is the corresponding configuration: a
    set of named per-event processing costs that sites charge through
    {!Raid_net.Engine.work}.  [calibrated] reproduces the paper's
    configuration (its only published hardware constant is the 9 ms
    intersite communication; the remaining constants were fitted so the
    Experiment-1 tables land on the published averages); [free] zeroes all
    processing so tests can reason about pure message counts. *)

type t = {
  message_latency : Raid_net.Vtime.t;
      (** one intersite communication; the paper measured 9 ms *)
  txn_setup : Raid_net.Vtime.t;
      (** coordinator: receive a database transaction, plan its execution *)
  op_process : Raid_net.Vtime.t;
      (** execute one read or write operation against the local copy *)
  prepare_send : Raid_net.Vtime.t;
      (** coordinator: format one phase-1 copy-update message *)
  prepare_process : Raid_net.Vtime.t;
      (** participant: buffer a phase-1 copy update and acknowledge *)
  commit_apply_per_write : Raid_net.Vtime.t;
      (** commit one written copy into the local database *)
  faillock_update_per_write : Raid_net.Vtime.t;
      (** per written item: set/clear the per-site fail-lock bits during
          commitment (the cost Experiment 1 isolates) *)
  faillock_read_check : Raid_net.Vtime.t;
      (** per read operation: test whether the local copy is fail-locked *)
  ack_process : Raid_net.Vtime.t;
      (** coordinator: absorb one phase-1 or phase-2 acknowledgement *)
  copier_request_send : Raid_net.Vtime.t;
      (** recovering coordinator: build one copy request *)
  copier_serve_base : Raid_net.Vtime.t;
      (** source site: format a response with the specified copies (paper:
          25 ms including the send) *)
  copier_serve_per_item : Raid_net.Vtime.t;
  copier_install_per_item : Raid_net.Vtime.t;
      (** recovering site: write a refreshed copy and clear its fail-lock *)
  faillock_clear_send : Raid_net.Vtime.t;
      (** coordinator: issue the special transaction that clears fail-lock
          bits at one other site after a copier transaction *)
  faillock_clear_process : Raid_net.Vtime.t;
      (** receiver of that special transaction (paper: 20 ms with send) *)
  recovery_announce_send : Raid_net.Vtime.t;
      (** recovering site: format and send one control-1 announcement *)
  recovery_state_build_base : Raid_net.Vtime.t;
      (** operational site: start formatting session vector + fail-locks *)
  recovery_state_build_per_item : Raid_net.Vtime.t;
      (** ... per data item of fail-locks (the paper notes this cost grows
          with database size) *)
  recovery_install_base : Raid_net.Vtime.t;
      (** recovering site: install the received session vector *)
  recovery_install_per_item : Raid_net.Vtime.t;
      (** ... and fail-locks, per item *)
  failure_announce_process : Raid_net.Vtime.t;
      (** control-2: update a session vector on receiving a failure
          announcement (paper: 68 ms including the send) *)
  backup_spawn : Raid_net.Vtime.t;
      (** control-3 extension: create a backup copy on another site *)
  wal_append : Raid_net.Vtime.t;
      (** durability extension: log one redo record to stable storage
          (zero in [calibrated] — the paper factors data I/O out) *)
  wal_replay_per_entry : Raid_net.Vtime.t;
      (** durability extension: replay one redo record at recovery *)
}

val calibrated : t
(** Fitted to the paper's Experiment-1 configuration (50 items, 4 sites,
    max transaction size 10). *)

val free : t
(** All processing costs zero; [message_latency] still 9 ms. *)

val zero : t
(** Everything zero, including latency — for logic-only tests. *)

val scale : float -> t -> t
(** Multiply every processing cost (not the latency) by a factor. *)
