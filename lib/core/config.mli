(** System configuration.

    Mirrors the parameters the paper's managing site exposes (§1.2): "the
    database size in terms of the number of data items", "the number of
    database sites for the transaction processing (not including the
    managing site)", and the transaction-size bound (which lives in
    {!Workload}).  Extended with the knobs this reproduction adds: the
    cost model, the replication map, the recovery policy (for the paper's
    proposed two-step extension) and control-transaction-type-3 backup
    spawning. *)

type replication =
  | Full  (** every site stores every item (paper assumption 4) *)
  | Partial of Placement.spec
      (** k copies per item on sharded replica sets ({!Placement}).
          Enables the paper's §3.2 control-type-3 discussion; a factor
          covering every site degenerates to [Full]. *)

type durability =
  | In_memory
      (** the paper's assumption 3: copies live in each site process's
          virtual memory; a crash loses nothing but volatile protocol
          state *)
  | Durable_wal of { checkpoint_interval : int }
      (** each site runs a checkpointed redo log ({!Raid_storage.Wal}); a
          crash wipes the volatile database, and recovery replays the log
          before running control transaction type 1 *)

type recovery_policy =
  | On_demand
      (** The paper's implementation: copier transactions only when a
          transaction at the recovering coordinator reads a fail-locked
          copy. *)
  | Two_step of { threshold : float; batch_size : int }
      (** The paper's §3.2 proposal: once the fraction of items
          fail-locked for the recovering site drops to [threshold] or
          below, proactively refresh the remaining out-of-date copies
          with batch copier transactions, [batch_size] items at a time.
          [threshold = 1.0] batches immediately upon recovery. *)

type t = {
  num_sites : int;
  num_items : int;
  cost : Cost_model.t;
  replication : replication;
  recovery : recovery_policy;
  spawn_backups : bool;
      (** control transaction type 3: when a committed write leaves a
          single operational up-to-date copy of an item, copy it to a
          site that holds none (meaningful under [Partial]) *)
  durability : durability;
  embed_clears : bool;
      (** the optimisation the paper sketches in §2.2.3: instead of a
          separate special transaction after copier transactions,
          piggy-back the cleared fail-lock information on the two-phase
          commit (and abort) messages *)
  faillocks_enabled : bool;
      (** [false] reproduces Experiment 1's "fail-locks maintenance code
          removed from the software" runs; only safe while no site
          fails *)
}

val make :
  ?cost:Cost_model.t ->
  ?replication:replication ->
  ?recovery:recovery_policy ->
  ?spawn_backups:bool ->
  ?durability:durability ->
  ?embed_clears:bool ->
  ?faillocks_enabled:bool ->
  num_sites:int ->
  num_items:int ->
  unit ->
  t
(** Defaults: calibrated cost model, full replication, on-demand
    recovery, no backup spawning, in-memory durability, separate clear
    transactions (as in the paper), fail-locks enabled.
    @raise Invalid_argument on non-positive sizes, more than 1024 sites
    (a sanity bound; fail-lock bitmaps are [Bytes]-backed and grow with
    the site count), an invalid [Partial] spec (non-positive factor,
    ill-formed affinity map), or an out-of-range two-step threshold. *)

val placement : t -> Placement.t
(** The resolved static placement ({!Placement.full} under [Full]). *)

val stores : t -> site:int -> item:int -> bool
(** Initial placement. *)

val paper_experiment1 : t
(** 4 sites, 50 items (transaction size bound 10 lives in the workload). *)

val paper_experiment2 : t
(** 2 sites, 50 items. *)
