(** Protocol invariant checkers.

    These implement the DESIGN.md §5 invariants as executable checks over
    a quiescent cluster; unit tests and qcheck properties call them after
    random failure/recovery/transaction schedules.  Each checker returns
    [Ok ()] or [Error description]. *)

type result = (unit, string) Stdlib.result

val faillocks_track_staleness : Cluster.t -> result
(** For every alive, non-waiting site [s] and item [i] stored by [s]:
    [s]'s copy is behind the reference version among alive sites iff the
    union fail-lock view has bit [(i, s)] set.  A behind-but-unlocked
    pair recorded by the cluster's knowledge-loss sweep
    ({!Cluster.knowledge_lost}) is tolerated: that is the DESIGN.md §11
    gap, already counted and warned about at the crash that caused it. *)

val no_stale_reads : Cluster.t -> result
(** Every read in every committed outcome returned the newest version
    committed before the reading transaction (or the reader's own write). *)

val write_durability : Cluster.t -> operational_at_commit:(int -> int list) -> result
(** For each committed transaction [id], every site in
    [operational_at_commit id] that stores a written item has that write
    in its update log.  The caller supplies the operational sets it
    observed when submitting (the cluster cannot reconstruct them). *)

val convergence : Cluster.t -> result
(** With every site up: all databases equal and no fail-locks set.  Use
    after the recovery protocol should have completed. *)

val session_vectors_sane : Cluster.t -> result
(** Alive, non-waiting sites agree on which sites are up, and no alive
    site's perceived session number for a site exceeds that site's own. *)

val all : Cluster.t -> result
(** [faillocks_track_staleness], [no_stale_reads] and
    [session_vectors_sane] in sequence (the always-applicable checks). *)
