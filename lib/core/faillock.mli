(** Fail-lock tables (paper §1.1-1.2).

    "A replicated copy control algorithm uses a fail-lock to represent the
    fact that a copy of a data item is being updated while some other
    copies are unavailable due to site failure."  Implementation follows
    the paper: one bitmap per data item, one bit per site; bit [k] set for
    item [i] means site [k]'s copy of item [i] missed an update.  The
    table is fully replicated: every operational site maintains bits on
    behalf of every failed site. *)

type t

type hook = item:int -> site:int -> locked:bool -> unit
(** Observability callback, fired on every {e actual} bit transition
    ([locked] is the new state).  Not fired by no-op operations. *)

val create : num_items:int -> num_sites:int -> t
(** All bits clear, no hook. *)

val set_hook : t -> hook option -> unit
(** Install (or remove) the transition hook.  {!copy} never carries the
    hook over — copies are inert data shipped in messages.  With no hook
    the per-operation overhead is one branch. *)

val num_items : t -> int
val num_sites : t -> int

val set : t -> item:int -> site:int -> bool
(** Returns [true] if the bit transitioned from clear to set (used to
    count newly created inconsistency).  @raise Invalid_argument out of
    range. *)

val clear : t -> item:int -> site:int -> bool
(** Returns [true] if the bit transitioned from set to clear. *)

val is_locked : t -> item:int -> site:int -> bool

val commit_update : t -> item:int -> site_up:(int -> bool) -> set:int ref -> cleared:int ref -> unit
(** The paper's per-commit rule (§1.2): "the fail-lock for each site was
    cleared if the site was up and set for each failed site" — applied
    unconditionally to every site's bit of a committed item, which the
    paper found cheaper than conditional maintenance.  Transition counts
    are accumulated into [set]/[cleared]. *)

val update_for : t -> item:int -> site:int -> up:bool -> set:int ref -> cleared:int ref -> unit
(** One site's share of {!commit_update}: clear the bit when [up], set it
    otherwise, accumulating transition counts.  Under partial replication
    the commit rule runs over an item's k holders instead of all sites;
    this is the per-holder step. *)

val locked_items_for : t -> site:int -> int list
(** Items whose bit for [site] is set (a recovering site's out-of-date
    copies), increasing order. *)

val iter_locked_items_for : t -> site:int -> (int -> unit) -> unit
(** [locked_items_for] without the list: applies the function to each
    locked item in increasing order. *)

val any_locked_for : t -> site:int -> bool
(** Is any item fail-locked for [site]?  Stops at the first hit. *)

val count_for : t -> site:int -> int
(** Number of items fail-locked for a site — the y-axis of the paper's
    figures. *)

val locked_sites : t -> item:int -> int list
(** Sites that have missed updates on this item. *)

val union_locked_into : dst:Raid_util.Bitset.t -> t -> item:int -> unit
(** Or this item's lock bitmap into [dst] (an oracle combining several
    sites' tables in one pass).  @raise Invalid_argument on capacity
    mismatch. *)

val any_locked : t -> item:int -> bool

val clear_sites : t -> item:int -> sites:int list -> int
(** Clear the given sites' bits on one item; returns the number of bits
    actually cleared. *)

val copy : t -> t

val install : ?keep:(int -> bool) -> t -> from:t -> unit
(** Replace contents (control-1 installation).  [keep] filters which
    items' rows are taken from [from] (rows of dropped items are cleared)
    — under partial replication a site only maintains bits for items it
    holds.  @raise Invalid_argument on shape mismatch. *)

val merge : t -> from:t -> unit
(** Bitwise union (used when reconciling fail-lock knowledge). *)

val total_locked : t -> int
(** Total set bits over all items and sites. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
