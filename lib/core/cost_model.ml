type t = {
  message_latency : Raid_net.Vtime.t;
  txn_setup : Raid_net.Vtime.t;
  op_process : Raid_net.Vtime.t;
  prepare_send : Raid_net.Vtime.t;
  prepare_process : Raid_net.Vtime.t;
  commit_apply_per_write : Raid_net.Vtime.t;
  faillock_update_per_write : Raid_net.Vtime.t;
  faillock_read_check : Raid_net.Vtime.t;
  ack_process : Raid_net.Vtime.t;
  copier_request_send : Raid_net.Vtime.t;
  copier_serve_base : Raid_net.Vtime.t;
  copier_serve_per_item : Raid_net.Vtime.t;
  copier_install_per_item : Raid_net.Vtime.t;
  faillock_clear_send : Raid_net.Vtime.t;
  faillock_clear_process : Raid_net.Vtime.t;
  recovery_announce_send : Raid_net.Vtime.t;
  recovery_state_build_base : Raid_net.Vtime.t;
  recovery_state_build_per_item : Raid_net.Vtime.t;
  recovery_install_base : Raid_net.Vtime.t;
  recovery_install_per_item : Raid_net.Vtime.t;
  failure_announce_process : Raid_net.Vtime.t;
  backup_spawn : Raid_net.Vtime.t;
  wal_append : Raid_net.Vtime.t;
  wal_replay_per_entry : Raid_net.Vtime.t;
}

let ms = Raid_net.Vtime.of_ms_f

(* Fitted so that with the paper's Experiment-1 configuration (4 sites, 50
   items, maximum transaction size 10, hence 5.5 operations and 2.75
   writes per transaction on average) the measured averages land on the
   published table: coordinating 176 -> 186 ms, participating 90 -> 97 ms,
   control-1 190/50 ms, control-2 68 ms, copier transaction 270 ms with
   copy service 25 ms and fail-lock clearing 20 ms per site. *)
let calibrated =
  {
    message_latency = ms 9.0;
    txn_setup = ms 17.5;
    op_process = ms 8.0;
    prepare_send = ms 3.0;
    prepare_process = ms 35.5;
    commit_apply_per_write = ms 12.0;
    faillock_update_per_write = ms 2.5;
    faillock_read_check = ms 1.1;
    ack_process = ms 1.0;
    copier_request_send = ms 18.0;
    copier_serve_base = ms 12.0;
    copier_serve_per_item = ms 4.0;
    copier_install_per_item = ms 10.5;
    faillock_clear_send = ms 8.5;
    faillock_clear_process = ms 11.0;
    recovery_announce_send = ms 12.0;
    recovery_state_build_base = ms 5.0;
    recovery_state_build_per_item = ms 0.72;
    recovery_install_base = ms 15.0;
    recovery_install_per_item = ms 1.6;
    failure_announce_process = ms 59.0;
    backup_spawn = ms 12.0;
    (* The paper factors data I/O out (§1.2 assumption 3): stable-storage
       costs are zero in the calibrated model and only charged when the
       durability extension sets them explicitly. *)
    wal_append = 0;
    wal_replay_per_entry = 0;
  }

let zero =
  {
    message_latency = 0;
    txn_setup = 0;
    op_process = 0;
    prepare_send = 0;
    prepare_process = 0;
    commit_apply_per_write = 0;
    faillock_update_per_write = 0;
    faillock_read_check = 0;
    ack_process = 0;
    copier_request_send = 0;
    copier_serve_base = 0;
    copier_serve_per_item = 0;
    copier_install_per_item = 0;
    faillock_clear_send = 0;
    faillock_clear_process = 0;
    recovery_announce_send = 0;
    recovery_state_build_base = 0;
    recovery_state_build_per_item = 0;
    recovery_install_base = 0;
    recovery_install_per_item = 0;
    failure_announce_process = 0;
    backup_spawn = 0;
    wal_append = 0;
    wal_replay_per_entry = 0;
  }

let free = { zero with message_latency = ms 9.0 }

let scale factor t =
  let f v = int_of_float (Float.round (float_of_int v *. factor)) in
  {
    t with
    txn_setup = f t.txn_setup;
    op_process = f t.op_process;
    prepare_send = f t.prepare_send;
    prepare_process = f t.prepare_process;
    commit_apply_per_write = f t.commit_apply_per_write;
    faillock_update_per_write = f t.faillock_update_per_write;
    faillock_read_check = f t.faillock_read_check;
    ack_process = f t.ack_process;
    copier_request_send = f t.copier_request_send;
    copier_serve_base = f t.copier_serve_base;
    copier_serve_per_item = f t.copier_serve_per_item;
    copier_install_per_item = f t.copier_install_per_item;
    faillock_clear_send = f t.faillock_clear_send;
    faillock_clear_process = f t.faillock_clear_process;
    recovery_announce_send = f t.recovery_announce_send;
    recovery_state_build_base = f t.recovery_state_build_base;
    recovery_state_build_per_item = f t.recovery_state_build_per_item;
    recovery_install_base = f t.recovery_install_base;
    recovery_install_per_item = f t.recovery_install_per_item;
    failure_announce_process = f t.failure_announce_process;
    backup_spawn = f t.backup_spawn;
    wal_append = f t.wal_append;
    wal_replay_per_entry = f t.wal_replay_per_entry;
  }
