module Rng = Raid_util.Rng

type spec =
  | Uniform of { max_ops : int; write_prob : float }
  | Zipfian of { max_ops : int; write_prob : float; theta : float }
  | Et1 of { branches : int; tellers_per_branch : int; accounts_per_branch : int }
  | Wisconsin of { scan_length : int; update_ops : int; scan_prob : float }

(* Precomputed state for the zipfian item draw (Gray et al.'s "Quickly
   generating billion-record synthetic databases" rejection-free method,
   as popularised by YCSB).  Computed once at [create]: the harmonic sum
   is O(num_items). *)
type zipf = { theta : float; alpha : float; zetan : float; eta : float; zeta2 : float }

let make_zipf ~num_items ~theta =
  let n = float_of_int num_items in
  let zetan = ref 0.0 in
  for i = 1 to num_items do
    zetan := !zetan +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  let zetan = !zetan in
  let zeta2 = 1.0 +. Float.pow 0.5 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta = (1.0 -. Float.pow (2.0 /. n) (1.0 -. theta)) /. (1.0 -. (zeta2 /. zetan)) in
  { theta; alpha; zetan; eta; zeta2 }

type t = { spec : spec; num_items : int; rng : Rng.t; zipf : zipf option }

(* Zipf-distributed rank in [0, num_items): rank 0 is the hottest item. *)
let zipf_draw t z =
  let u = Rng.float t.rng in
  let uz = u *. z.zetan in
  if uz < 1.0 then 0
  else if uz < z.zeta2 then 1
  else
    let rank =
      int_of_float (float_of_int t.num_items *. Float.pow ((z.eta *. u) -. z.eta +. 1.0) z.alpha)
    in
    min rank (t.num_items - 1)

let validate spec ~num_items =
  let check_prob name p =
    if p < 0.0 || p > 1.0 then invalid_arg (Printf.sprintf "Workload: %s outside [0,1]" name)
  in
  if num_items <= 0 then invalid_arg "Workload: num_items must be positive";
  match spec with
  | Uniform { max_ops; write_prob } ->
    if max_ops <= 0 then invalid_arg "Workload: max_ops must be positive";
    check_prob "write_prob" write_prob
  | Zipfian { max_ops; write_prob; theta } ->
    if max_ops <= 0 then invalid_arg "Workload: max_ops must be positive";
    check_prob "write_prob" write_prob;
    if theta <= 0.0 || theta >= 1.0 then
      invalid_arg "Workload: zipfian theta must be in (0,1)"
  | Et1 { branches; tellers_per_branch; accounts_per_branch } ->
    if branches <= 0 || tellers_per_branch <= 0 || accounts_per_branch <= 0 then
      invalid_arg "Workload: ET1 region sizes must be positive";
    let total = branches * (1 + tellers_per_branch + accounts_per_branch) in
    if total > num_items then
      invalid_arg
        (Printf.sprintf "Workload: ET1 needs %d items but only %d available" total num_items)
  | Wisconsin { scan_length; update_ops; scan_prob } ->
    if scan_length <= 0 || update_ops <= 0 then
      invalid_arg "Workload: Wisconsin sizes must be positive";
    if scan_length > num_items then invalid_arg "Workload: scan_length exceeds num_items";
    check_prob "scan_prob" scan_prob

let create spec ~num_items ~rng =
  validate spec ~num_items;
  let zipf =
    match spec with
    | Zipfian { theta; _ } -> Some (make_zipf ~num_items ~theta)
    | Uniform _ | Et1 _ | Wisconsin _ -> None
  in
  { spec; num_items; rng; zipf }

let next t ~id =
  let ops =
    match t.spec with
    | Uniform { max_ops; write_prob } ->
      let size = Rng.int_in t.rng 1 max_ops in
      List.init size (fun _ ->
          let item = Rng.int t.rng t.num_items in
          if Rng.bernoulli t.rng write_prob then Txn.Write item else Txn.Read item)
    | Zipfian { max_ops; write_prob; _ } ->
      (* Same op-mix contract as [Uniform] — one size draw, then one item
         draw and one read/write draw per op — only the item distribution
         differs. *)
      let z = Option.get t.zipf in
      let size = Rng.int_in t.rng 1 max_ops in
      List.init size (fun _ ->
          let item = zipf_draw t z in
          if Rng.bernoulli t.rng write_prob then Txn.Write item else Txn.Read item)
    | Et1 { branches; tellers_per_branch; accounts_per_branch } ->
      (* Item layout: [0, branches) branch records, then teller records,
         then account records. *)
      let branch = Rng.int t.rng branches in
      let teller = branches + (branch * tellers_per_branch) + Rng.int t.rng tellers_per_branch in
      let account =
        branches + (branches * tellers_per_branch) + (branch * accounts_per_branch)
        + Rng.int t.rng accounts_per_branch
      in
      [
        Txn.Read account; Txn.Write account;
        Txn.Read teller; Txn.Write teller;
        Txn.Read branch; Txn.Write branch;
      ]
    | Wisconsin { scan_length; update_ops; scan_prob } ->
      if Rng.bernoulli t.rng scan_prob then
        let start = Rng.int t.rng (t.num_items - scan_length + 1) in
        List.init scan_length (fun i -> Txn.Read (start + i))
      else
        List.concat_map
          (fun _ ->
            let item = Rng.int t.rng t.num_items in
            [ Txn.Read item; Txn.Write item ])
          (List.init update_ops Fun.id)
  in
  Txn.make ~id ops

let paper_default ~max_ops = Uniform { max_ops; write_prob = 0.5 }
