module Rng = Raid_util.Rng

type spec =
  | Uniform of { max_ops : int; write_prob : float }
  | Et1 of { branches : int; tellers_per_branch : int; accounts_per_branch : int }
  | Wisconsin of { scan_length : int; update_ops : int; scan_prob : float }

type t = { spec : spec; num_items : int; rng : Rng.t }

let validate spec ~num_items =
  let check_prob name p =
    if p < 0.0 || p > 1.0 then invalid_arg (Printf.sprintf "Workload: %s outside [0,1]" name)
  in
  if num_items <= 0 then invalid_arg "Workload: num_items must be positive";
  match spec with
  | Uniform { max_ops; write_prob } ->
    if max_ops <= 0 then invalid_arg "Workload: max_ops must be positive";
    check_prob "write_prob" write_prob
  | Et1 { branches; tellers_per_branch; accounts_per_branch } ->
    if branches <= 0 || tellers_per_branch <= 0 || accounts_per_branch <= 0 then
      invalid_arg "Workload: ET1 region sizes must be positive";
    let total = branches * (1 + tellers_per_branch + accounts_per_branch) in
    if total > num_items then
      invalid_arg
        (Printf.sprintf "Workload: ET1 needs %d items but only %d available" total num_items)
  | Wisconsin { scan_length; update_ops; scan_prob } ->
    if scan_length <= 0 || update_ops <= 0 then
      invalid_arg "Workload: Wisconsin sizes must be positive";
    if scan_length > num_items then invalid_arg "Workload: scan_length exceeds num_items";
    check_prob "scan_prob" scan_prob

let create spec ~num_items ~rng =
  validate spec ~num_items;
  { spec; num_items; rng }

let next t ~id =
  let ops =
    match t.spec with
    | Uniform { max_ops; write_prob } ->
      let size = Rng.int_in t.rng 1 max_ops in
      List.init size (fun _ ->
          let item = Rng.int t.rng t.num_items in
          if Rng.bernoulli t.rng write_prob then Txn.Write item else Txn.Read item)
    | Et1 { branches; tellers_per_branch; accounts_per_branch } ->
      (* Item layout: [0, branches) branch records, then teller records,
         then account records. *)
      let branch = Rng.int t.rng branches in
      let teller = branches + (branch * tellers_per_branch) + Rng.int t.rng tellers_per_branch in
      let account =
        branches + (branches * tellers_per_branch) + (branch * accounts_per_branch)
        + Rng.int t.rng accounts_per_branch
      in
      [
        Txn.Read account; Txn.Write account;
        Txn.Read teller; Txn.Write teller;
        Txn.Read branch; Txn.Write branch;
      ]
    | Wisconsin { scan_length; update_ops; scan_prob } ->
      if Rng.bernoulli t.rng scan_prob then
        let start = Rng.int t.rng (t.num_items - scan_length + 1) in
        List.init scan_length (fun i -> Txn.Read (start + i))
      else
        List.concat_map
          (fun _ ->
            let item = Rng.int t.rng t.num_items in
            [ Txn.Read item; Txn.Write item ])
          (List.init update_ops Fun.id)
  in
  Txn.make ~id ops

let paper_default ~max_ops = Uniform { max_ops; write_prob = 0.5 }
