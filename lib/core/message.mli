(** Protocol messages exchanged between sites (and injected by the
    managing site).

    One constructor per arrow in the paper's protocol: the two-phase
    commit of Appendix A, copier transactions and their fail-lock-clearing
    special transaction (§1.2), and control transactions types 1-3.
    [Begin_txn], [Recover_command] and [Failure_noticed] are managing-site
    inputs. *)

type t =
  | Begin_txn of Txn.t
      (** managing site hands a database transaction to the coordinator *)
  | Recover_command
      (** managing site tells a down site to start recovery (control-1) *)
  | Failure_noticed of int list
      (** managing site tells a surviving site which sites failed
          (immediate-detection mode); the receiver runs control-2 *)
  | Terminate_command
      (** managing site asks a site to shut down gracefully: it announces
          its departure (entering the paper's [Terminating] state) so that
          survivors need neither a timeout nor control transaction 2 *)
  | Departure_announce of { site : int }
  | Prepare of {
      txn : int;
      writes : Raid_storage.Database.write list;
      cleared : int list;
          (** with [Config.embed_clears]: items whose fail-lock bit for
              the coordinating site was cleared by copier transactions,
              piggy-backed instead of a separate special transaction *)
    }
  | Prepare_ack of { txn : int }
  | Commit of { txn : int }
  | Commit_ack of { txn : int }
  | Abort of { txn : int; cleared : int list }
  | Copy_request of { txn : int; items : int list }
      (** copier transaction: fetch up-to-date copies; [txn] is the
          requesting database transaction (or a synthetic id for batch
          copiers) *)
  | Copy_reply of { txn : int; writes : Raid_storage.Database.write list }
  | Copy_unavailable of { txn : int; items : int list }
      (** source no longer has an up-to-date copy of these items *)
  | Faillocks_cleared of { site : int; items : int list }
      (** the special transaction informing other sites of fail-lock bits
          cleared by copier transactions *)
  | Recovery_announce of { site : int; session : int; want_state : bool }
      (** control-1; [want_state] asks the receiver to reply with its
          session vector and fail-locks (the paper fetches state from one
          operational site) *)
  | Recovery_state of {
      vector : Session.t;
      faillocks : Faillock.t;
      backups : (int * int list) list;
          (** the donor's dynamic placement extras ([(item, sites)]), so
              control-3 backups created while the recoverer was down are
              not forgotten; the static placement needs no shipping *)
    }
  | Failure_announce of { failed : int list }  (** control-2 *)
  | Backup_copy of { target : int; write : Raid_storage.Database.write }
      (** control-3: [target] must materialise the copy; other receivers
          just update their placement view *)
  | Faillock_hint of { for_site : int; items : int list }
      (** partial replication, control-1: a holder tells the recovering
          site [for_site] which of its items missed updates — the state
          donor may not hold (hence not track) them.  Also sent by a
          coordinator whose [Commit] to a participant bounced: the
          witness bits it is about to set exist nowhere else, so it
          broadcasts them — otherwise a state donor other than the
          coordinator would ship the dead participant a fail-lock table
          missing its own staleness *)
  | Txn_status_request of { txn : int }
      (** in-doubt resolution: a recovering participant with a durably
          buffered prepare asks the transaction's coordinator for the
          outcome *)
  | Txn_status_reply of { txn : int; committed : bool }
      (** coordinator's answer, from its durable decision record (or
          live coordinator state); absence of a record means presumed
          abort *)

val kind : t -> string
(** Stable snake_case tag of the constructor alone ("prepare",
    "copy_request", ...) — unlike {!describe} it carries no transaction
    ids, so it is usable as a metric label. *)

val all_kinds : string list
(** The {!kind} values pre-registered for aligned telemetry series, in
    constructor order.  ["faillock_hint"] and the in-doubt resolution
    kinds ["txn_status_request"]/["txn_status_reply"] are deliberately
    absent — they only flow on rare paths (partial replication,
    recovery with a buffered prepare), and the common-case metric set
    must stay unchanged; instrumentation registers unlisted kinds on
    first use. *)

val describe : t -> string
(** Short human-readable tag for traces and logs. *)

val pp : Format.formatter -> t -> unit
