type t =
  | Begin_txn of Txn.t
  | Recover_command
  | Failure_noticed of int list
  | Terminate_command
  | Departure_announce of { site : int }
  | Prepare of { txn : int; writes : Raid_storage.Database.write list; cleared : int list }
  | Prepare_ack of { txn : int }
  | Commit of { txn : int }
  | Commit_ack of { txn : int }
  | Abort of { txn : int; cleared : int list }
  | Copy_request of { txn : int; items : int list }
  | Copy_reply of { txn : int; writes : Raid_storage.Database.write list }
  | Copy_unavailable of { txn : int; items : int list }
  | Faillocks_cleared of { site : int; items : int list }
  | Recovery_announce of { site : int; session : int; want_state : bool }
  | Recovery_state of {
      vector : Session.t;
      faillocks : Faillock.t;
      backups : (int * int list) list;
    }
  | Failure_announce of { failed : int list }
  | Backup_copy of { target : int; write : Raid_storage.Database.write }
  | Faillock_hint of { for_site : int; items : int list }
  | Txn_status_request of { txn : int }
  | Txn_status_reply of { txn : int; committed : bool }

let kind = function
  | Begin_txn _ -> "begin_txn"
  | Recover_command -> "recover_command"
  | Failure_noticed _ -> "failure_noticed"
  | Terminate_command -> "terminate_command"
  | Departure_announce _ -> "departure_announce"
  | Prepare _ -> "prepare"
  | Prepare_ack _ -> "prepare_ack"
  | Commit _ -> "commit"
  | Commit_ack _ -> "commit_ack"
  | Abort _ -> "abort"
  | Copy_request _ -> "copy_request"
  | Copy_reply _ -> "copy_reply"
  | Copy_unavailable _ -> "copy_unavailable"
  | Faillocks_cleared _ -> "faillocks_cleared"
  | Recovery_announce _ -> "recovery_announce"
  | Recovery_state _ -> "recovery_state"
  | Failure_announce _ -> "failure_announce"
  | Backup_copy _ -> "backup_copy"
  | Faillock_hint _ -> "faillock_hint"
  | Txn_status_request _ -> "txn_status_request"
  | Txn_status_reply _ -> "txn_status_reply"

(* Kinds pre-registered for aligned telemetry series.  [faillock_hint]
   is deliberately absent: it only flows under partial replication, and
   keeping the full-replication metric set unchanged keeps the exp-1
   telemetry golden byte-identical.  The in-doubt resolution kinds
   [txn_status_request]/[txn_status_reply] are absent for the same
   reason: they only flow when a site recovers with a durably buffered
   prepare.  Unlisted kinds are registered on first use by the engine
   probe. *)
let all_kinds =
  [
    "begin_txn"; "recover_command"; "failure_noticed"; "terminate_command"; "departure_announce";
    "prepare"; "prepare_ack"; "commit"; "commit_ack"; "abort"; "copy_request"; "copy_reply";
    "copy_unavailable"; "faillocks_cleared"; "recovery_announce"; "recovery_state";
    "failure_announce"; "backup_copy";
  ]

let describe = function
  | Begin_txn txn -> Printf.sprintf "begin_txn(%d)" txn.Txn.id
  | Recover_command -> "recover_command"
  | Failure_noticed _ -> "failure_noticed"
  | Terminate_command -> "terminate_command"
  | Departure_announce { site } -> Printf.sprintf "departure_announce(site %d)" site
  | Prepare { txn; writes; cleared } ->
    Printf.sprintf "prepare(%d,%d writes,%d cleared)" txn (List.length writes)
      (List.length cleared)
  | Prepare_ack { txn } -> Printf.sprintf "prepare_ack(%d)" txn
  | Commit { txn } -> Printf.sprintf "commit(%d)" txn
  | Commit_ack { txn } -> Printf.sprintf "commit_ack(%d)" txn
  | Abort { txn; cleared } -> Printf.sprintf "abort(%d,%d cleared)" txn (List.length cleared)
  | Copy_request { txn; items } ->
    Printf.sprintf "copy_request(%d,%d items)" txn (List.length items)
  | Copy_reply { txn; writes } ->
    Printf.sprintf "copy_reply(%d,%d items)" txn (List.length writes)
  | Copy_unavailable { txn; items } ->
    Printf.sprintf "copy_unavailable(%d,%d items)" txn (List.length items)
  | Faillocks_cleared { site; items } ->
    Printf.sprintf "faillocks_cleared(site %d,%d items)" site (List.length items)
  | Recovery_announce { site; session; want_state } ->
    Printf.sprintf "recovery_announce(site %d,session %d%s)" site session
      (if want_state then ",want_state" else "")
  | Recovery_state _ -> "recovery_state"
  | Failure_announce { failed } ->
    Printf.sprintf "failure_announce(%s)" (String.concat "," (List.map string_of_int failed))
  | Backup_copy { target; write } ->
    Printf.sprintf "backup_copy(item %d -> site %d)" write.Raid_storage.Database.item target
  | Faillock_hint { for_site; items } ->
    Printf.sprintf "faillock_hint(site %d,%d items)" for_site (List.length items)
  | Txn_status_request { txn } -> Printf.sprintf "txn_status_request(%d)" txn
  | Txn_status_reply { txn; committed } ->
    Printf.sprintf "txn_status_reply(%d,%s)" txn (if committed then "committed" else "aborted")

let pp ppf t = Format.pp_print_string ppf (describe t)
