(** A database site: the message-driven state machine implementing the
    ROWAA replicated copy control protocol.

    One value of type {!t} holds everything a mini-RAID site process held:
    a copy of the database, a nominal session vector, a fail-lock table
    and the transient coordinator/participant state of the two-phase
    commit of Appendix A.  Sites communicate only through
    {!Raid_net.Engine} messages; the managing site injects
    [Begin_txn]/[Recover_command]/[Failure_noticed] inputs (see
    {!Cluster} for the driver that does this).

    Protocol summary (paper §1.1, §1.2, Appendix A):
    - A coordinator receiving a transaction first runs copier
      transactions for every read of a fail-locked copy; if any needed
      copy has no operational up-to-date source the transaction aborts.
    - Phase 1 sends the copy updates to every operational site; phase 2
      commits.  A participant failure aborts the transaction and triggers
      control transaction type 2; a missing commit-ack triggers
      control-2 but the commit still completes.
    - Commitment (re-)clears each written item's fail-lock bit for every
      up site and sets it for every down site.
    - Recovery (control-1) announces a fresh session number to the
      believed-operational sites and installs the session vector and
      fail-lock table fetched from one of them.
    - The two-step recovery policy and control transaction type 3 are the
      paper's §3.2 proposed extensions. *)

type t

val create :
  id:int ->
  config:Config.t ->
  metrics:Metrics.t ->
  on_outcome:(Metrics.outcome -> unit) ->
  ?obs:Raid_obs.Trace.sink ->
  ?wal_factory:(site:int -> initial:Raid_storage.Database.t -> Raid_storage.Wal.t) ->
  unit ->
  t
(** A fresh site in the initial consistent state (database of zeros,
    everything up, no fail-locks).  [on_outcome] fires once per database
    transaction this site coordinates, committed or aborted.  [obs], when
    given, receives the typed protocol trace ({!Raid_obs.Trace.event})
    this site emits; without it tracing costs one [None] branch per
    emission point.  [wal_factory], when given and the config's
    durability is [Durable_wal], builds this site's stable store instead
    of a private {!Raid_storage.Wal.create} — the multi-tenant engine
    passes a factory whose WALs share one group-committed
    {!Raid_storage.Shared_wal} shard log.  [initial] is the site's own
    initial database (the factory must pass it through, or partial
    replication resurrects phantom copies on replay).
    @raise Invalid_argument if [id] is outside [0, num_sites). *)

val handler : t -> Message.t Raid_net.Engine.handler
(** The event handler to register with the engine. *)

(** {2 Inspection} *)

val id : t -> int
val database : t -> Raid_storage.Database.t
val faillocks : t -> Faillock.t
val vector : t -> Session.t
val log : t -> Raid_storage.Update_log.t

val stores : t -> item:int -> bool
(** Current placement view for this site itself (static placement plus
    any control-3 backups materialised here). *)

val believes_stored : t -> site:int -> item:int -> bool
(** This site's view of another site's placement. *)

val locked_items : t -> int list
(** Items currently fail-locked {e for this site} according to its own
    table — its out-of-date copies. *)

val is_recovering : t -> bool
(** [true] while this site has out-of-date copies ([locked_items] non
    empty) — the paper's "recovery period". *)

val is_waiting : t -> bool
(** [true] between [Recover_command] and the installation of the fetched
    state (control-1 in flight). *)

val session_number : t -> int
(** This site's own current session number. *)

val pending_2pc : t -> int
(** Sum over this site's in-flight coordinated transactions of the
    pending-acknowledgement set cardinality (copier sources awaited,
    phase-1 acks, phase-2 acks) — 0 at quiescence.  O(in-flight
    transactions): the bitset cardinalities are cached. *)

val buffered_prepares : t -> int
(** Participant-side phase-1 write sets buffered awaiting the
    coordinator's decision — 0 at quiescence. *)

val in_doubt : t -> int
(** Prepares this site would still have to resolve after a crash: the
    durable prepare records under [Config.Durable_wal], the volatile
    buffered prepares otherwise.  0 once every transaction this site
    voted on has been decided or presumed aborted. *)

val wal : t -> Raid_storage.Wal.t option
(** The site's simulated stable storage ([None] under
    [Config.In_memory]).  Read-only introspection for tests and the
    crash matrix; mutating it mid-run voids the recovery guarantees. *)

val on_crash : ?now:Raid_net.Vtime.t -> t -> unit
(** Reset volatile state (in-flight coordination, buffered phase-1
    writes).  The cluster driver calls this when it fails the site;
    database, fail-locks and session vector survive, as they would on
    stable storage.  A coordinated transaction past its decide point has
    durably logged the decision with its Commit messages already in
    flight, so its writes are preserved locally (logged to the WAL under
    [Config.Durable_wal]) rather than lost; [now] stamps those update-log
    entries. *)
