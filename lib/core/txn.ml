type op = Read of int | Write of int

type t = { id : int; ops : op list }

let make ~id ops =
  if id < 0 then invalid_arg "Txn.make: negative id";
  if ops = [] then invalid_arg "Txn.make: empty operation list";
  { id; ops }

let size t = List.length t.ops

let distinct items =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun item ->
      if Hashtbl.mem seen item then false
      else begin
        Hashtbl.add seen item ();
        true
      end)
    items

let read_items t =
  distinct (List.filter_map (function Read item -> Some item | Write _ -> None) t.ops)

let write_items t =
  distinct (List.filter_map (function Write item -> Some item | Read _ -> None) t.ops)

let items t = distinct (List.map (function Read item | Write item -> item) t.ops)

let is_read_only t = write_items t = []

let pp_op ppf = function
  | Read item -> Format.fprintf ppf "r(%d)" item
  | Write item -> Format.fprintf ppf "w(%d)" item

let pp ppf t =
  Format.fprintf ppf "@[<h>T%d[%a]@]" t.id
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ') pp_op)
    t.ops
