module Vtime = Raid_net.Vtime
module Engine = Raid_net.Engine
module Database = Raid_storage.Database
module Update_log = Raid_storage.Update_log
module Wal = Raid_storage.Wal
module Obs = Raid_obs.Trace
module Bitset = Raid_util.Bitset

let log_src = Logs.Src.create "raid.site" ~doc:"RAID site state machine"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Coordinator phases for the transaction in progress (Appendix A).
   Pending sets are site bitsets with an explicit remaining count, so
   each ack costs O(1) instead of rebuilding an O(sites) list. *)
type copying = { pending : int array; mutable remaining : int }
(* pending.(s) = outstanding copy requests at source s; a source can
   carry more than one live request when a Copy_unavailable failover
   re-targets items at a site that is already serving others *)

type phase =
  | Copying of copying
  | Preparing of {
      participants : Bitset.t;
      participant_count : int;
      pending_acks : Bitset.t;
      mutable remaining : int;
    }
  | Committing of {
      pending_acks : Bitset.t;
      mutable remaining : int;
      mutable lost : bool;
          (* a participant died before acknowledging the commit: keep the
             durable decision record so it can resolve its in-doubt
             prepare when it recovers *)
    }

type coord = {
  txn : Txn.t;
  started_at : Vtime.t;
  writes : Database.write list;
  mutable phase : phase;
  mutable phase_entered_at : Vtime.t;
      (* when the current phase began; drives the per-phase latency
         samples (Metrics.phase_*_ms) and the trace's nested spans *)
  mutable copier_requests : int;
  mutable copier_items : int;
  mutable cleared_items : int list;
      (* items whose own fail-lock a copier cleared; announced by the
         special transaction once all copy replies are in *)
  remote_reads : (int, int * int) Hashtbl.t;
      (* item -> (value, version): reads satisfied by a copy reply without
         a local copy (partial replication fetch-only reads) *)
  fetch_only : (int, unit) Hashtbl.t;
}

type batch = { round_id : int; pending_sources : Bitset.t; mutable remaining : int }

(* A buffered prepare at a participant: the writes to apply if the
   decision is commit, the coordinator to ask if this site has to
   resolve the transaction after a crash, and — during resolution with a
   dead coordinator — the number of outstanding status probes to other
   sites (0 when not probing). *)
type pending_prepare = {
  pp_writes : Database.write list;
  pp_coord : int;
  mutable pp_outstanding : int;
}

type mode =
  | Normal
  | Waiting_recovery of {
      new_session : int;
      mutable candidates : int list;  (* remaining state-donor candidates *)
      mutable observed_down : int list;
          (* failures this site witnessed while waiting; the donor's
             vector predates them, so control-2 re-applies them after
             installation *)
      mutable hints : int list list;
          (* buffered fail-lock hints (partial replication): items other
             sites know this site missed, applied after the donor's state
             is installed *)
      started_at : Vtime.t;
      mutable unresolved : int;
          (* in-doubt prepares from the previous incarnation still being
             resolved; the control-1 announcements wait until this hits
             zero so the donor's state reflects the resolutions *)
      mutable announced : bool;
    }

type t = {
  id : int;
  config : Config.t;
  cost : Cost_model.t;
  metrics : Metrics.t;
  on_outcome : Metrics.outcome -> unit;
  vector : Session.t;
  db : Database.t;
  faillocks : Faillock.t;
  log : Update_log.t;
  stable : Wal.t option;  (* simulated stable storage (durability extension) *)
  placement : Placement.View.t;  (* this site's view of who holds what *)
  pending_prepares : (int, pending_prepare) Hashtbl.t;
  participant_started : (int, Vtime.t) Hashtbl.t;
  mutable mode : mode;
  coords : (int, coord) Hashtbl.t;  (* in-flight coordinated transactions *)
  mutable batch : batch option;
  mutable batch_seq : int;
  obs : Obs.sink option;
  mutable obs_ctx : Message.t Engine.ctx option;
      (* the handler context of the event being processed, so the
         fail-lock and session-vector change hooks can stamp their trace
         events; only maintained when [obs] is set *)
  mutable faillock_txn : int option;
      (* the transaction (or negative copier round) whose commit/install
         is currently mutating the fail-lock table, so the change hook
         can attribute the transition; only maintained when [obs] is set *)
}

(* Current virtual time for hook-driven emissions.  Hooks can only fire
   inside an event handler (where [obs_ctx] is set); the fallback covers
   construction-time mutations before any event runs. *)
let obs_now t = match t.obs_ctx with Some ctx -> Engine.time ctx | None -> Vtime.zero

let create ~id ~config ~metrics ~on_outcome ?obs ?wal_factory () =
  if id < 0 || id >= config.Config.num_sites then invalid_arg "Site.create: id out of range";
  let num_items = config.Config.num_items in
  let num_sites = config.Config.num_sites in
  let stored item = Config.stores config ~site:id ~item in
  let db =
    match config.Config.replication with
    | Config.Full -> Database.create ~num_items
    | Config.Partial _ -> Database.create_partial ~num_items ~stored
  in
  let t =
  {
    id;
    config;
    cost = config.Config.cost;
    metrics;
    on_outcome;
    vector = Session.create ~num_sites;
    db;
    faillocks = Faillock.create ~num_items ~num_sites;
    log = Update_log.create ();
    stable =
      (match config.Config.durability with
      | Config.In_memory -> None
      | Config.Durable_wal { checkpoint_interval } ->
        Some
          (match wal_factory with
          | Some factory -> factory ~site:id ~initial:db
          | None -> Wal.create ~checkpoint_interval ~initial:db ~num_items ()));
    placement = Placement.View.create (Config.placement config);
    pending_prepares = Hashtbl.create 16;
    participant_started = Hashtbl.create 16;
    mode = Normal;
    coords = Hashtbl.create 4;
    batch = None;
    batch_seq = 0;
    obs;
    obs_ctx = None;
    faillock_txn = None;
  }
  in
  (* Fail-lock and session-vector changes are traced via change hooks on
     the data structures themselves, so every mutation path (commit
     updates, copier clears, control transactions, state installation) is
     covered without instrumenting each caller. *)
  (match obs with
  | None -> ()
  | Some sink ->
    Faillock.set_hook t.faillocks
      (Some
         (fun ~item ~site ~locked ->
           let event =
             if locked then Obs.Faillock_set { item; for_site = site; txn = t.faillock_txn }
             else Obs.Faillock_cleared { item; for_site = site; txn = t.faillock_txn }
           in
           sink.Obs.emit ~at:(obs_now t) ~site:t.id event));
    Session.set_hook t.vector
      (Some
         (fun ~site ~session ~state ->
           sink.Obs.emit ~at:(obs_now t) ~site:t.id
             (Obs.Session_change
                { about = site; session; state = Session.state_name state }))));
  t

let id t = t.id
let database t = t.db
let faillocks t = t.faillocks
let vector t = t.vector
let log t = t.log
let stores t ~item = Placement.View.holds t.placement ~site:t.id ~item
let believes_stored t ~site ~item = Placement.View.holds t.placement ~site ~item
let partial t = not (Placement.View.is_full t.placement)
let locked_items t = Faillock.locked_items_for t.faillocks ~site:t.id
let is_recovering t = Faillock.any_locked_for t.faillocks ~site:t.id
let is_waiting t = match t.mode with Waiting_recovery _ -> true | Normal -> false
let session_number t = Session.session t.vector t.id

(* Sum of the in-flight coordinated transactions' pending-set
   cardinalities; [remaining] caches the set bits of each phase's
   bitset, so this is O(in-flight txns), not O(sites). *)
let pending_2pc t =
  Hashtbl.fold
    (fun _ coord acc ->
      acc
      +
      match coord.phase with
      | Copying { remaining; _ } -> remaining
      | Preparing { remaining; _ } -> remaining
      | Committing { remaining; _ } -> remaining)
    t.coords 0

let buffered_prepares t = Hashtbl.length t.pending_prepares

let in_doubt t =
  match t.stable with
  | Some wal -> Wal.prepared_count wal
  | None -> Hashtbl.length t.pending_prepares

let wal t = t.stable

(* Drop an in-doubt prepare everywhere it is recorded (decided,
   resolved, or presumed aborted). *)
let forget_in_doubt t ~txn =
  Hashtbl.remove t.pending_prepares txn;
  Hashtbl.remove t.participant_started txn;
  match t.stable with None -> () | Some wal -> Wal.forget_prepare wal ~txn

(* Presumed abort on coordinator death: a coordinator that died before
   deciding can never send the commit, so every prepare buffered for it
   is dropped.  This never races a decided commit: per-link delivery is
   FIFO with uniform latency, so a Commit sent before the coordinator
   died always arrives before any announcement of that death. *)
let purge_prepares_from t ~coordinator =
  if Hashtbl.length t.pending_prepares > 0 then begin
    let doomed =
      Hashtbl.fold
        (fun txn pp acc -> if pp.pp_coord = coordinator then txn :: acc else acc)
        t.pending_prepares []
    in
    List.iter (fun txn -> forget_in_doubt t ~txn) doomed
  end

let on_crash ?(now = Vtime.zero) t =
  (* A coordinator past the decide point has durably logged the decision
     and its Commit messages are already in flight: participants will
     apply the writes and clear this site's fail-lock bits for them (they
     believe it up).  Losing the writes here would leave this site behind
     yet unlocked after recovery, so the crash preserves them — the redo
     records were logged with the decision. *)
  Hashtbl.iter
    (fun _ coord ->
      match coord.phase with
      | Committing _ ->
        List.iter
          (fun ({ Database.item; _ } as write) ->
            if stores t ~item then begin
              Database.apply t.db write;
              Update_log.append t.log
                { Update_log.txn = coord.txn.Txn.id; write; applied_at = now };
              match t.stable with
              | None -> ()
              | Some wal -> Wal.append wal { Wal.txn = coord.txn.Txn.id; write }
            end)
          coord.writes
      | Copying _ | Preparing _ -> ())
    t.coords;
  Hashtbl.reset t.coords;
  t.batch <- None;
  t.mode <- Normal;
  Hashtbl.reset t.pending_prepares;
  Hashtbl.reset t.participant_started;
  (* Under the durability extension the crash also loses the volatile
     database; only the write-ahead log survives.  Recovery replays it,
     and the in-doubt prepare and decision records in stable storage
     survive untouched. *)
  match t.stable with None -> () | Some _ -> Database.wipe t.db

let ms_of = Vtime.to_ms

(* {2 Small helpers} *)

(* Operational sites other than this one, visited in increasing id order
   (the same order [Session.operational_except] listed them in); the
   iterator form never allocates the list. *)
let iter_others t f = Session.iter_operational_except t.vector ~self:t.id f
let count_others t = Session.operational_count_except t.vector ~self:t.id
let faillocks_on t = t.config.Config.faillocks_enabled

(* Tracing helpers.  [emit] takes the event pre-built, so call sites
   that would allocate to describe the event guard on [tracing] first —
   with tracing off the only cost on any protocol path is a [None]
   match. *)
let tracing t = match t.obs with Some _ -> true | None -> false

let emit t ctx event =
  match t.obs with
  | None -> ()
  | Some sink -> sink.Obs.emit ~at:(Engine.time ctx) ~site:t.id event

(* An operational site (other than this one) holding an up-to-date copy
   of [item], per this site's fail-lock table and placement view.  The
   lowest-id match, as [List.find_opt] over the operational list gave. *)
let find_source t item =
  if Placement.View.is_full t.placement then
    Session.first_operational t.vector (fun s ->
        s <> t.id && not (Faillock.is_locked t.faillocks ~item ~site:s))
  else begin
    (* O(k): scan the item's holders instead of the operational list,
       keeping the lowest-id match (what the full scan returned). *)
    let best = ref (-1) in
    Placement.View.iter_holders t.placement item (fun s ->
        if
          s <> t.id
          && ((!best < 0) || s < !best)
          && Session.is_up t.vector s
          && not (Faillock.is_locked t.faillocks ~item ~site:s)
        then best := s);
    if !best < 0 then None else Some !best
  end

(* Control transaction type 2: mark the given sites down and announce the
   failure to the remaining operational sites. *)
let announce_failures t ctx failed =
  let fresh = List.filter (fun s -> s <> t.id && Session.is_up t.vector s) failed in
  if fresh <> [] then begin
    List.iter (Session.mark_down t.vector) fresh;
    (* While waiting for recovery state the resolution machinery owns the
       buffered prepares; purging here would strand its bookkeeping. *)
    if not (is_waiting t) then
      List.iter (fun s -> purge_prepares_from t ~coordinator:s) fresh;
    iter_others t (fun r -> Engine.send ctx r (Message.Failure_announce { failed = fresh }));
    t.metrics.Metrics.control2_announcements <-
      t.metrics.Metrics.control2_announcements + count_others t;
    if tracing t then
      emit t ctx
        (Obs.Control
           {
             kind = Obs.Failure_announce;
             detail =
               Printf.sprintf "sites [%s] down"
                 (String.concat ";" (List.map string_of_int fresh));
           })
  end

(* The special transaction informing other sites of fail-lock bits cleared
   by copier transactions (or a commit that refreshed a stale copy under
   partial replication). *)
let broadcast_clears t ctx items =
  if items <> [] then begin
    iter_others t (fun r ->
        Engine.work ctx t.cost.Cost_model.faillock_clear_send;
        Engine.send ctx r (Message.Faillocks_cleared { site = t.id; items });
        t.metrics.Metrics.clear_specials_sent <- t.metrics.Metrics.clear_specials_sent + 1);
    if tracing t then
      emit t ctx
        (Obs.Control
           {
             kind = Obs.Clear_special;
             detail = Printf.sprintf "%d items" (List.length items);
           })
  end

(* Commit-time fail-lock maintenance (paper §1.2): for each written item,
   unconditionally clear the bit of every up site and set the bit of every
   down site.  Under partial replication knowledge is group-local: only
   holders of an item maintain its bits, and only holders' bits exist —
   a non-holder cannot miss an update, and a non-holder's table would
   never hear the commit-time clears.  Two partial-mode refinements:

   - [witness]: the coordinator records the bits even for items it does
     not hold.  Without this, a write committed while some holders are
     down leaves the staleness known only to the up holders — and if
     those fail too, the knowledge is gone and a recovering holder would
     serve stale reads.  The coordinator acts as a witness; its bits are
     dropped at its own control-1 install (non-stored rows are cleared)
     and by the clear broadcasts below, so they cannot outlive the
     staleness they record.

   - A participant whose own stale copy is refreshed by this very commit
     (it was fail-locked, and whole-item writes overwrite the copy)
     broadcasts the clear of its own bit: under partial replication the
     commit reaches only the holders of the written items, but witnesses
     and holders of *other* items this site shares a group with are not
     participants and would keep the stale bit forever. *)
let faillock_commit_update ?(witness = false) t ctx ~txn writes =
  if faillocks_on t then begin
    if tracing t then t.faillock_txn <- Some txn;
    let set_count = ref 0 and cleared = ref 0 in
    let self_cleared = ref [] in
    List.iter
      (fun { Database.item; _ } ->
        Engine.work ctx t.cost.Cost_model.faillock_update_per_write;
        if Placement.View.is_full t.placement then
          Faillock.commit_update t.faillocks ~item
            ~site_up:(fun s -> Session.is_up t.vector s)
            ~set:set_count ~cleared
        else if witness || stores t ~item then begin
          if stores t ~item && Faillock.is_locked t.faillocks ~item ~site:t.id then
            self_cleared := item :: !self_cleared;
          Placement.View.iter_holders t.placement item (fun s ->
              Faillock.update_for t.faillocks ~item ~site:s ~up:(Session.is_up t.vector s)
                ~set:set_count ~cleared)
        end)
      writes;
    t.faillock_txn <- None;
    t.metrics.Metrics.faillocks_set <- t.metrics.Metrics.faillocks_set + !set_count;
    t.metrics.Metrics.faillocks_cleared <- t.metrics.Metrics.faillocks_cleared + !cleared;
    broadcast_clears t ctx (List.rev !self_cleared)
  end

(* Log a committed write to stable storage (durability extension). *)
let log_durable t ctx ~txn write =
  match t.stable with
  | None -> ()
  | Some wal ->
    Engine.work ctx t.cost.Cost_model.wal_append;
    Wal.append wal { Wal.txn; write };
    ignore (Wal.maybe_checkpoint wal t.db)

(* Apply committed writes to the local copy (those this site stores). *)
let apply_writes t ctx ~txn writes =
  List.iter
    (fun ({ Database.item; _ } as write) ->
      if stores t ~item then begin
        Engine.work ctx t.cost.Cost_model.commit_apply_per_write;
        Database.apply t.db write;
        Update_log.append t.log { Update_log.txn; write; applied_at = Engine.time ctx };
        log_durable t ctx ~txn write
      end)
    writes

(* Refresh local copies from a copier reply.  Writes not newer than the
   local copy are skipped (the copy may have been refreshed by a write
   committed after the request was issued).  Clears this site's own
   fail-lock bits; returns the items whose bit was actually cleared. *)
let install_refreshed t ctx ~round writes =
  if tracing t then t.faillock_txn <- Some round;
  let cleared =
  List.filter_map
    (fun ({ Database.item; version; _ } as write) ->
      let stale =
        match Database.version t.db item with None -> true | Some v -> v < version
      in
      if stale then begin
        Engine.work ctx t.cost.Cost_model.copier_install_per_item;
        Database.materialize t.db write;
        Update_log.append t.log { Update_log.txn = round; write; applied_at = Engine.time ctx };
        log_durable t ctx ~txn:round write
      end;
      if Faillock.clear t.faillocks ~item ~site:t.id then begin
        t.metrics.Metrics.faillocks_cleared <- t.metrics.Metrics.faillocks_cleared + 1;
        Some item
      end
      else None)
    writes
  in
  t.faillock_txn <- None;
  cleared

(* {2 Two-step recovery (paper §3.2 extension)} *)

(* Group items by an up-to-date source site; items with no available
   source are dropped.  Groups come back in increasing source order with
   each group's items in request order — a per-site array gives that
   directly, where the old hashtable needed a sort. *)
let group_by_source t items =
  let num_sites = Session.num_sites t.vector in
  let by_source = Array.make num_sites [] in
  List.iter
    (fun item ->
      match find_source t item with
      | None -> ()
      | Some s -> by_source.(s) <- item :: by_source.(s))
    items;
  let groups = ref [] in
  for s = num_sites - 1 downto 0 do
    if by_source.(s) <> [] then groups := (s, List.rev by_source.(s)) :: !groups
  done;
  !groups

let rec start_batch_round t ctx =
  match t.config.Config.recovery with
  | Config.On_demand -> ()
  | Config.Two_step { threshold; batch_size } ->
    if t.batch = None && Hashtbl.length t.coords = 0 && t.mode = Normal then begin
      (* One pass over the fail-lock column: count the locked items and
         keep the first [batch_size] of them (increasing item order). *)
      let num_locked = ref 0 in
      let take_rev = ref [] in
      Faillock.iter_locked_items_for t.faillocks ~site:t.id (fun item ->
          incr num_locked;
          if !num_locked <= batch_size then take_rev := item :: !take_rev);
      let fraction = float_of_int !num_locked /. float_of_int t.config.Config.num_items in
      if !num_locked > 0 && fraction <= threshold then begin
        let take = List.rev !take_rev in
        match group_by_source t take with
        | [] -> ()  (* nothing refreshable right now *)
        | groups ->
          t.batch_seq <- t.batch_seq + 1;
          let round_id = -t.batch_seq in
          let pending_sources = Bitset.create (Session.num_sites t.vector) in
          List.iter
            (fun (source, items) ->
              Bitset.set pending_sources source;
              Engine.work ctx t.cost.Cost_model.copier_request_send;
              Engine.send ctx source (Message.Copy_request { txn = round_id; items });
              t.metrics.Metrics.copier_requests <- t.metrics.Metrics.copier_requests + 1;
              if tracing t then
                emit t ctx
                  (Obs.Copier_request
                     { txn = round_id; source; items = List.length items }))
            groups;
          t.batch <- Some { round_id; pending_sources; remaining = List.length groups };
          t.metrics.Metrics.batch_copier_rounds <- t.metrics.Metrics.batch_copier_rounds + 1
      end
    end

and finish_batch_source t ctx b source =
  if Bitset.mem b.pending_sources source then begin
    Bitset.clear b.pending_sources source;
    b.remaining <- b.remaining - 1;
    if b.remaining = 0 then begin
      t.batch <- None;
      start_batch_round t ctx
    end
  end

(* {2 Control transaction type 3 (paper §3.2 extension)} *)

let maybe_spawn_backups t ctx writes =
  if t.config.Config.spawn_backups then
    List.iter
      (fun ({ Database.item; _ } as write) ->
        let holders =
          Placement.View.count_holders_if t.placement item (Session.is_up t.vector)
        in
        if holders = 1 then begin
          match
            Session.first_operational t.vector (fun s ->
                not (Placement.View.holds t.placement ~site:s ~item))
          with
          | None -> ()
          | Some target ->
            Engine.work ctx t.cost.Cost_model.backup_spawn;
            (* Broadcast so every operational site updates its placement
               view; the target also materialises the copy. *)
            iter_others t (fun r -> Engine.send ctx r (Message.Backup_copy { target; write }));
            Placement.View.add_backup t.placement ~site:target ~item;
            if target = t.id then Database.materialize t.db write;
            t.metrics.Metrics.control3_backups <- t.metrics.Metrics.control3_backups + 1;
            if tracing t then
              emit t ctx
                (Obs.Control
                   {
                     kind = Obs.Backup;
                     detail = Printf.sprintf "item %d to site %d" item target;
                   })
        end)
      writes

(* {2 Coordinator (Appendix A, "actions at the coordinating site")} *)

let finish t ctx coord ~committed ~abort_reason ~reads =
  let elapsed = Vtime.sub (Engine.time ctx) coord.started_at in
  if committed then begin
    t.metrics.Metrics.txns_committed <- t.metrics.Metrics.txns_committed + 1;
    if coord.copier_requests > 0 then
      t.metrics.Metrics.coordinator_copier_ms <-
        ms_of elapsed :: t.metrics.Metrics.coordinator_copier_ms
    else
      t.metrics.Metrics.coordinator_ms <- ms_of elapsed :: t.metrics.Metrics.coordinator_ms
  end
  else begin
    t.metrics.Metrics.txns_aborted <- t.metrics.Metrics.txns_aborted + 1;
    t.metrics.Metrics.abort_ms <- ms_of elapsed :: t.metrics.Metrics.abort_ms
  end;
  if tracing t then
    emit t ctx
      (if committed then Obs.Txn_commit { txn = coord.txn.Txn.id }
       else
         Obs.Txn_abort
           {
             txn = coord.txn.Txn.id;
             reason =
               (match abort_reason with
               | Some r -> Format.asprintf "%a" Metrics.pp_abort_reason r
               | None -> "unknown");
           });
  Hashtbl.remove t.coords coord.txn.Txn.id;
  t.on_outcome
    {
      Metrics.txn = coord.txn;
      coordinator = t.id;
      committed;
      abort_reason;
      copier_requests = coord.copier_requests;
      copier_items = coord.copier_items;
      reads;
      writes = (if committed then coord.writes else []);
      elapsed;
    }

(* Read every distinct read item: local copies, plus fetch-only remote
   reads collected from copy replies under partial replication. *)
let collect_reads t coord =
  List.filter_map
    (fun item ->
      if Hashtbl.mem coord.fetch_only item then
        Option.map
          (fun (value, version) -> (item, value, version))
          (Hashtbl.find_opt coord.remote_reads item)
      else
        match Database.read t.db item with
        | Some (value, version) -> Some (item, value, version)
        | None -> None)
    (Txn.read_items coord.txn)

let local_commit t ctx coord =
  (match coord.phase with
  | Committing c ->
    t.metrics.Metrics.phase_commit_ms <-
      ms_of (Vtime.sub (Engine.time ctx) coord.phase_entered_at)
      :: t.metrics.Metrics.phase_commit_ms;
    (* The decision record can be retired once every participant applied;
       if one died before acknowledging, keep it — that participant will
       ask for the outcome when it recovers. *)
    (match t.stable with
    | Some wal when not c.lost -> Wal.forget_decision wal ~txn:coord.txn.Txn.id
    | Some _ | None -> ())
  | Copying _ | Preparing _ -> ());
  apply_writes t ctx ~txn:coord.txn.Txn.id coord.writes;
  faillock_commit_update ~witness:true t ctx ~txn:coord.txn.Txn.id coord.writes;
  let reads = collect_reads t coord in
  finish t ctx coord ~committed:true ~abort_reason:None ~reads;
  maybe_spawn_backups t ctx coord.writes;
  start_batch_round t ctx

(* Begin phase 1: "issue copy update for written items to every
   operational site". *)
let begin_phase1 t ctx coord =
  (* Close the copier phase: only transactions that actually ran a copier
     round contribute a phase-copy sample (and span). *)
  if coord.copier_requests > 0 then
    t.metrics.Metrics.phase_copy_ms <-
      ms_of (Vtime.sub (Engine.time ctx) coord.phase_entered_at)
      :: t.metrics.Metrics.phase_copy_ms;
  (* Under full replication every operational site participates, even one
     storing none of the written items: fail-locks are fully replicated
     (paper §1.1), so every site must see the commit to maintain its
     table.  Under partial replication fail-lock knowledge is group-local,
     so only the operational holders of the written items participate —
     the 2PC fan-out is O(k · writes) instead of O(sites). *)
  let participants = Bitset.create (Session.num_sites t.vector) in
  let participant_count = ref 0 in
  if Placement.View.is_full t.placement then begin
    participant_count := count_others t;
    iter_others t (fun s -> Bitset.set participants s)
  end
  else
    List.iter
      (fun { Database.item; _ } ->
        Placement.View.iter_holders t.placement item (fun s ->
            if s <> t.id && Session.is_up t.vector s && not (Bitset.mem participants s) then begin
              Bitset.set participants s;
              incr participant_count
            end))
      coord.writes;
  let participant_count = !participant_count in
  if participant_count = 0 then local_commit t ctx coord
  else begin
    coord.phase <-
      Preparing
        {
          participants;
          participant_count;
          pending_acks = Bitset.copy participants;
          remaining = participant_count;
        };
    coord.phase_entered_at <- Engine.time ctx;
    if tracing t then begin
      emit t ctx (Obs.Phase_enter { txn = coord.txn.Txn.id; phase = Obs.Prepare });
      emit t ctx
        (Obs.Prepare_sent { txn = coord.txn.Txn.id; participants = participant_count })
    end;
    let cleared = if t.config.Config.embed_clears then coord.cleared_items else [] in
    Bitset.iter
      (fun p ->
        Engine.work ctx t.cost.Cost_model.prepare_send;
        Engine.send ctx p
          (Message.Prepare { txn = coord.txn.Txn.id; writes = coord.writes; cleared }))
      participants
  end

let begin_txn t ctx txn =
  (* Multiple transactions may be coordinated here concurrently (the
     concurrency-control extension); the same id must not be reused. *)
  if Hashtbl.mem t.coords txn.Txn.id then begin
    Log.err (fun m -> m "site %d: duplicate transaction id %d" t.id txn.Txn.id);
    invalid_arg "Site: duplicate transaction id"
  end;
  let started_at = Engine.time ctx in
  (* Emitted at [started_at], before any modelled setup work, so the root
     span's duration is exactly the latency [finish] measures and the
     txn-latency histograms observe. *)
  if tracing t then
    emit t ctx
      (Obs.Txn_begin
         {
           txn = txn.Txn.id;
           reads = List.length (Txn.read_items txn);
           writes = List.length (Txn.write_items txn);
         });
  Engine.work ctx t.cost.Cost_model.txn_setup;
  Engine.work ctx (Txn.size txn * t.cost.Cost_model.op_process);
  let read_ops =
    List.length (List.filter (function Txn.Read _ -> true | Txn.Write _ -> false) txn.Txn.ops)
  in
  if faillocks_on t then Engine.work ctx (read_ops * t.cost.Cost_model.faillock_read_check);
  let writes =
    List.map
      (fun item -> { Database.item; value = txn.Txn.id; version = txn.Txn.id })
      (Txn.write_items txn)
  in
  let coord =
    {
      txn;
      started_at;
      writes;
      phase = Copying { pending = Array.make (Session.num_sites t.vector) 0; remaining = 0 };
      phase_entered_at = started_at;
      copier_requests = 0;
      copier_items = 0;
      cleared_items = [];
      remote_reads = Hashtbl.create 4;
      fetch_only = Hashtbl.create 4;
    }
  in
  Hashtbl.replace t.coords txn.Txn.id coord;
  (* Under partial replication a written item must have at least one
     operational holder, or the update would be installed nowhere. *)
  let write_unavailable =
    partial t
    && List.exists
         (fun { Database.item; _ } ->
           not (Placement.View.exists_holder t.placement item (Session.is_up t.vector)))
         writes
  in
  if write_unavailable then
    finish t ctx coord ~committed:false ~abort_reason:(Some Metrics.Write_unavailable) ~reads:[]
  else begin
  (* Reads needing a copier: fail-locked local copies (paper §1.2), plus —
     under partial replication — reads of items with no local copy, which
     are fetched without being installed. *)
  let needs_copier item = faillocks_on t && Faillock.is_locked t.faillocks ~item ~site:t.id in
  let needed, fetch_only =
    List.partition (fun item -> stores t ~item)
      (List.filter
         (fun item -> (not (stores t ~item)) || needs_copier item)
         (Txn.read_items txn))
  in
  let needed = List.filter needs_copier needed in
  List.iter (fun item -> Hashtbl.replace coord.fetch_only item ()) fetch_only;
  if tracing t then begin
    List.iter
      (fun item ->
        emit t ctx
          (Obs.Txn_read
             { txn = txn.Txn.id; item; remote = Hashtbl.mem coord.fetch_only item }))
      (Txn.read_items txn);
    List.iter
      (fun { Database.item; _ } -> emit t ctx (Obs.Txn_write { txn = txn.Txn.id; item }))
      writes
  end;
  let to_fetch = needed @ fetch_only in
  if to_fetch = [] then begin_phase1 t ctx coord
  else begin
    let groups = group_by_source t to_fetch in
    let covered = List.concat_map snd groups in
    if List.exists (fun item -> not (List.mem item covered)) to_fetch then begin
      (* Some needed copy has no operational up-to-date source: "the
         inability to get up-to-date copies via copier transactions"
         aborts the transaction (paper §4.2.1). *)
      finish t ctx coord ~committed:false ~abort_reason:(Some Metrics.Copier_unavailable)
        ~reads:[]
    end
    else begin
      if tracing t then
        emit t ctx (Obs.Phase_enter { txn = txn.Txn.id; phase = Obs.Copy });
      let pending = Array.make (Session.num_sites t.vector) 0 in
      List.iter
        (fun (source, items) ->
          pending.(source) <- pending.(source) + 1;
          Engine.work ctx t.cost.Cost_model.copier_request_send;
          Engine.send ctx source (Message.Copy_request { txn = txn.Txn.id; items });
          coord.copier_requests <- coord.copier_requests + 1;
          t.metrics.Metrics.copier_requests <- t.metrics.Metrics.copier_requests + 1;
          if tracing t then
            emit t ctx
              (Obs.Copier_request
                 { txn = txn.Txn.id; source; items = List.length items }))
        groups;
      coord.phase <- Copying { pending; remaining = List.length groups };
      coord.phase_entered_at <- Engine.time ctx
    end
  end
  end

let abort_txn t ctx coord ~reason ~notify =
  (* With embedded clears, an abort message still carries the fail-lock
     bits our copier transactions cleared, so other sites do not keep
     stale bits for this site. *)
  let cleared = if t.config.Config.embed_clears then coord.cleared_items else [] in
  if notify || cleared <> [] then begin
    iter_others t (fun p ->
        Engine.send ctx p (Message.Abort { txn = coord.txn.Txn.id; cleared }));
    if notify && tracing t then
      emit t ctx (Obs.Decide { txn = coord.txn.Txn.id; commit = false })
  end;
  (* Without embedded clears an abort message carries nothing, yet copier
     installs that already ran have cleared local bits other sites track;
     under partial replication announce them explicitly. *)
  if (not t.config.Config.embed_clears) && partial t then
    broadcast_clears t ctx coord.cleared_items;
  finish t ctx coord ~committed:false ~abort_reason:(Some reason) ~reads:[]

(* {2 The event handler} *)

let current_coord t txn_id = Hashtbl.find_opt t.coords txn_id

let handle_copy_reply t ctx ~txn ~writes ~src =
  if tracing t then
    emit t ctx (Obs.Copier_reply { txn; source = src; items = List.length writes });
  if txn < 0 then begin
    (* Batch copier round (two-step recovery). *)
    match t.batch with
    | Some b when b.round_id = txn ->
      let cleared = install_refreshed t ctx ~round:txn writes in
      t.metrics.Metrics.copier_items_refreshed <-
        t.metrics.Metrics.copier_items_refreshed + List.length cleared;
      broadcast_clears t ctx cleared;
      finish_batch_source t ctx b src
    | _ -> ()  (* stale reply from an abandoned round *)
  end
  else
    match current_coord t txn with
    | None -> ()
    | Some coord -> begin
      match coord.phase with
      | Copying c ->
        let installable, fetch_only =
          List.partition
            (fun { Database.item; _ } -> not (Hashtbl.mem coord.fetch_only item))
            writes
        in
        List.iter
          (fun { Database.item; value; version } ->
            Hashtbl.replace coord.remote_reads item (value, version))
          fetch_only;
        let cleared = install_refreshed t ctx ~round:txn installable in
        coord.copier_items <- coord.copier_items + List.length cleared;
        t.metrics.Metrics.copier_items_refreshed <-
          t.metrics.Metrics.copier_items_refreshed + List.length cleared;
        coord.cleared_items <- cleared @ coord.cleared_items;
        if c.pending.(src) > 0 then begin
          c.pending.(src) <- c.pending.(src) - 1;
          c.remaining <- c.remaining - 1;
          if c.remaining = 0 then begin
            (* All copier transactions done: run the special transaction to
               clear fail-locks at other sites (unless the information is
               embedded in the commit protocol), then enter phase 1.  Under
               partial replication the broadcast runs regardless: embedded
               clears only reach the commit's participants, but witnesses
               and fellow holders outside this write set also track the
               cleared bits. *)
            if (not t.config.Config.embed_clears) || partial t then
              broadcast_clears t ctx coord.cleared_items;
            begin_phase1 t ctx coord
          end
        end
      | Preparing _ | Committing _ -> ()
    end

(* Copy_unavailable failover (partial replication).  A non-holder
   coordinator has no fail-lock knowledge for the item, so the holder it
   picked as source may itself turn out to be stale.  The refusal is
   authoritative only about that holder's own copy: retry each refused
   item at its next holder in id order rather than aborting.  Source ids
   increase strictly on every retry, so the loop terminates; only when an
   item has no further candidate does the transaction abort (the paper's
   "inability to get up-to-date copies" case).  The refusing source still
   sends its Copy_reply for the items it could serve, which is what
   decrements its pending slot. *)
let retry_copy_sources t ctx coord c ~failed ~items =
  let next_source item =
    let best = ref (-1) in
    Placement.View.iter_holders t.placement item (fun s ->
        if
          s <> t.id
          && s > failed
          && ((!best < 0) || s < !best)
          && Session.is_up t.vector s
          && not (Faillock.is_locked t.faillocks ~item ~site:s)
        then best := s);
    if !best < 0 then None else Some !best
  in
  let num_sites = Session.num_sites t.vector in
  let by_source = Array.make num_sites [] in
  let stuck = ref false in
  List.iter
    (fun item ->
      match next_source item with
      | None -> stuck := true
      | Some s -> by_source.(s) <- item :: by_source.(s))
    items;
  if !stuck then abort_txn t ctx coord ~reason:Metrics.Copier_unavailable ~notify:false
  else
    for source = 0 to num_sites - 1 do
      if by_source.(source) <> [] then begin
        let items = List.rev by_source.(source) in
        c.pending.(source) <- c.pending.(source) + 1;
        c.remaining <- c.remaining + 1;
        Engine.work ctx t.cost.Cost_model.copier_request_send;
        Engine.send ctx source (Message.Copy_request { txn = coord.txn.Txn.id; items });
        coord.copier_requests <- coord.copier_requests + 1;
        t.metrics.Metrics.copier_requests <- t.metrics.Metrics.copier_requests + 1;
        if tracing t then
          emit t ctx
            (Obs.Copier_request
               { txn = coord.txn.Txn.id; source; items = List.length items })
      end
    done

let apply_embedded_clears t ~coordinator ~txn items =
  if tracing t then t.faillock_txn <- Some txn;
  let cleared =
    List.fold_left
      (fun acc item -> acc + Faillock.clear_sites t.faillocks ~item ~sites:[ coordinator ])
      0 items
  in
  t.faillock_txn <- None;
  t.metrics.Metrics.faillocks_cleared <- t.metrics.Metrics.faillocks_cleared + cleared

let handle_prepare t ctx ~txn ~writes ~cleared ~src =
  apply_embedded_clears t ~coordinator:src ~txn cleared;
  Hashtbl.replace t.pending_prepares txn { pp_writes = writes; pp_coord = src; pp_outstanding = 0 };
  (* Log the prepare before voting yes: a crash between the vote and the
     decision must leave enough on stable storage to apply (or resolve)
     the transaction on recovery. *)
  (match t.stable with
  | None -> ()
  | Some wal -> Wal.log_prepare wal ~txn ~coordinator:src writes);
  Hashtbl.replace t.participant_started txn (Engine.time ctx);
  Engine.work ctx t.cost.Cost_model.prepare_process;
  Engine.send ctx src (Message.Prepare_ack { txn });
  if tracing t then emit t ctx (Obs.Vote { txn; participant = t.id })

let handle_commit t ctx ~txn ~src =
  match Hashtbl.find_opt t.pending_prepares txn with
  | None -> ()  (* unknown transaction (e.g. prepared before a crash) *)
  | Some { pp_writes = writes; _ } ->
    Hashtbl.remove t.pending_prepares txn;
    (match t.stable with None -> () | Some wal -> Wal.forget_prepare wal ~txn);
    (* Acknowledge before applying: the coordinator does not wait on our
       local commit work (see Cost_model calibration notes). *)
    Engine.send ctx src (Message.Commit_ack { txn });
    apply_writes t ctx ~txn writes;
    faillock_commit_update t ctx ~txn writes;
    (match Hashtbl.find_opt t.participant_started txn with
    | Some started ->
      Hashtbl.remove t.participant_started txn;
      t.metrics.Metrics.participant_ms <-
        ms_of (Vtime.sub (Engine.time ctx) started) :: t.metrics.Metrics.participant_ms
    | None -> ());
    start_batch_round t ctx

let handle_prepare_ack t ctx ~txn ~src =
  match current_coord t txn with
  | None -> ()
  | Some coord -> begin
    match coord.phase with
    | Preparing p ->
      Engine.work ctx t.cost.Cost_model.ack_process;
      if Bitset.mem p.pending_acks src then begin
        Bitset.clear p.pending_acks src;
        p.remaining <- p.remaining - 1;
        if p.remaining = 0 then begin
          t.metrics.Metrics.phase_prepare_ms <-
            ms_of (Vtime.sub (Engine.time ctx) coord.phase_entered_at)
            :: t.metrics.Metrics.phase_prepare_ms;
          (* The decide point: log the commit decision durably before any
             Commit message leaves.  A crash from here on must preserve
             the decision — participants resolve their in-doubt prepares
             against it. *)
          (match t.stable with None -> () | Some wal -> Wal.log_decision wal ~txn);
          (* Phase 2 goes to exactly the phase-1 participants; the
             participant bitset becomes the commit-ack pending set. *)
          coord.phase <-
            Committing
              { pending_acks = p.participants; remaining = p.participant_count; lost = false };
          coord.phase_entered_at <- Engine.time ctx;
          if tracing t then begin
            emit t ctx (Obs.Decide { txn; commit = true });
            emit t ctx (Obs.Phase_enter { txn; phase = Obs.Commit })
          end;
          Bitset.iter (fun s -> Engine.send ctx s (Message.Commit { txn })) p.participants
        end
      end
    | Copying _ | Committing _ -> ()
  end

let handle_commit_ack t ctx ~txn ~src =
  match current_coord t txn with
  | None -> ()
  | Some coord -> begin
    match coord.phase with
    | Committing c ->
      Engine.work ctx t.cost.Cost_model.ack_process;
      if Bitset.mem c.pending_acks src then begin
        Bitset.clear c.pending_acks src;
        c.remaining <- c.remaining - 1;
        if c.remaining = 0 then local_commit t ctx coord
      end
    | Copying _ | Preparing _ -> ()
  end

(* {2 Control transaction type 1 (recovery)} *)

let send_announcements t ctx ~new_session ~designated ~others =
  let announce want_state dst =
    Engine.work ctx t.cost.Cost_model.recovery_announce_send;
    Engine.send ctx dst
      (Message.Recovery_announce { site = t.id; session = new_session; want_state })
  in
  (* The announcements are formatted one after another (the paper's sites
     run serially, which is why control-1 cost grows with the number of
     sites); the designated donor's goes out last so every announcement is
     on the critical path of the recovery, as in the paper's timing. *)
  List.iter (announce false) others;
  announce true designated;
  (* The resolve phase of the incident timeline ends when the recovery is
     announced (all in-doubt prepares have verdicts by this point). *)
  if tracing t then emit t ctx (Obs.Recovery_step { step = Obs.Announced new_session })

let begin_recovery t ctx =
  on_crash ~now:(Engine.time ctx) t;
  (* The outage phase of the site's incident timeline ends here: the
     operator's recover command has reached the site. *)
  if tracing t then emit t ctx (Obs.Recovery_step { step = Obs.Recover_command });
  (* Durability extension: rebuild the database from stable storage and
     take the next session number from it (session numbers must be
     monotone across crashes even if the vector were lost). *)
  let new_session =
    match t.stable with
    | None ->
      if tracing t then emit t ctx (Obs.Recovery_step { step = Obs.Wal_replayed 0 });
      Session.session t.vector t.id + 1
    | Some wal ->
      let replayed = Wal.replay_into wal t.db in
      Engine.work ctx (replayed * t.cost.Cost_model.wal_replay_per_entry);
      if tracing t then emit t ctx (Obs.Recovery_step { step = Obs.Wal_replayed replayed });
      let session = Wal.session wal + 1 in
      Wal.record_session wal session;
      session
  in
  (* Reload in-doubt prepares: a crash between the vote and the decision
     left them on stable storage, and they must be resolved — not
     silently forgotten — before this site serves transactions again. *)
  (match t.stable with
  | None -> ()
  | Some wal ->
    List.iter
      (fun { Wal.p_txn; coordinator; writes } ->
        Hashtbl.replace t.pending_prepares p_txn
          { pp_writes = writes; pp_coord = coordinator; pp_outstanding = 0 })
      (Wal.prepared wal));
  Session.mark_waiting t.vector t.id ~session:new_session;
  (* Candidate state donors: sites this (stale) vector believes up first,
     then the rest — a believed-up site may be dead and a believed-down
     site may have recovered since. *)
  let all_others =
    List.filter (fun s -> s <> t.id) (List.init (Session.num_sites t.vector) Fun.id)
  in
  let believed_up, believed_down = List.partition (Session.is_up t.vector) all_others in
  let candidates = believed_up @ believed_down in
  match candidates with
  | [] ->
    Log.warn (fun m -> m "site %d: no other sites; recovering standalone" t.id);
    (* No peers to resolve against: in-doubt prepares are presumed
       aborted. *)
    let doomed = Hashtbl.fold (fun txn _ acc -> txn :: acc) t.pending_prepares [] in
    List.iter (fun txn -> forget_in_doubt t ~txn) doomed;
    Session.mark_up t.vector t.id ~session:new_session;
    t.mode <- Normal;
    t.metrics.Metrics.control1_completed <- t.metrics.Metrics.control1_completed + 1;
    if tracing t then begin
      emit t ctx (Obs.Recovery_step { step = Obs.Announced new_session });
      emit t ctx (Obs.Recovery_step { step = Obs.State_installed })
    end
  | designated :: _ ->
    let in_doubt =
      List.sort compare
        (Hashtbl.fold (fun txn pp acc -> (txn, pp.pp_coord) :: acc) t.pending_prepares [])
    in
    t.mode <-
      Waiting_recovery
        {
          new_session;
          candidates;
          observed_down = [];
          hints = [];
          started_at = Engine.time ctx;
          unresolved = List.length in_doubt;
          announced = in_doubt = [];
        };
    if in_doubt <> [] then
      (* Resolve the in-doubt prepares first; the control-1 announcements
         go out once the last verdict is in, so the donor's shipped state
         already reflects any resolved commit's clears. *)
      List.iter
        (fun (txn, coordinator) ->
          Engine.send ctx coordinator (Message.Txn_status_request { txn }))
        in_doubt
    else begin
      (* Announce to every other site — the paper sends to each operational
         site, but our vector is stale, and a site we wrongly believe down
         must still learn our new session number (announcements to actually
         dead sites just produce ignorable send failures).  The designated
         candidate also ships its state. *)
      let others = List.filter (fun s -> s <> designated) all_others in
      send_announcements t ctx ~new_session ~designated ~others;
      if tracing t then
        emit t ctx
          (Obs.Control
             {
               kind = Obs.Recovery;
               detail = Printf.sprintf "announce session %d" new_session;
             })
    end

let handle_recovery_announce t ctx ~site ~session ~want_state ~src =
  Session.mark_up t.vector site ~session;
  (* The announcer is back with its stable storage intact: any prepare it
     coordinated before crashing can now be resolved authoritatively
     (durable decision record, or presumed abort). *)
  let stale_in_doubt =
    Hashtbl.fold
      (fun txn pp acc ->
        if pp.pp_coord = site && pp.pp_outstanding = 0 then txn :: acc else acc)
      t.pending_prepares []
  in
  List.iter
    (fun txn -> Engine.send ctx src (Message.Txn_status_request { txn }))
    (List.sort compare stale_in_doubt);
  (* Partial replication: fail-lock knowledge is group-local, and the
     state donor may not hold (hence not track) items the recovering site
     missed.  Every operational site that knows of missed updates sends
     the recovering site a hint; it applies them after installing the
     donor's state. *)
  if
    partial t && faillocks_on t && (not (is_waiting t))
    && Faillock.any_locked_for t.faillocks ~site
  then begin
    Engine.work ctx t.cost.Cost_model.faillock_clear_send;
    Engine.send ctx src
      (Message.Faillock_hint
         { for_site = site; items = Faillock.locked_items_for t.faillocks ~site })
  end;
  if want_state then begin
    if is_waiting t then
      (* We cannot serve authoritative state while waiting ourselves; the
         serial cluster driver never creates this situation. *)
      Log.err (fun m -> m "site %d: asked for recovery state while waiting" t.id)
    else begin
      let num_items = t.config.Config.num_items in
      Engine.work ctx t.cost.Cost_model.recovery_state_build_base;
      Engine.work ctx (num_items * t.cost.Cost_model.recovery_state_build_per_item);
      Engine.send ctx src
        (Message.Recovery_state
           {
             vector = Session.copy t.vector;
             faillocks = Faillock.copy t.faillocks;
             backups = Placement.View.extras t.placement;
           });
      t.metrics.Metrics.control1_operational_ms <-
        ms_of
          (t.cost.Cost_model.recovery_state_build_base
          + (num_items * t.cost.Cost_model.recovery_state_build_per_item)
          + t.cost.Cost_model.message_latency)
        :: t.metrics.Metrics.control1_operational_ms;
      if tracing t then
        emit t ctx
          (Obs.Control
             {
               kind = Obs.Recovery;
               detail = Printf.sprintf "serve state to site %d" src;
             })
    end
  end

(* A fail-lock hint names items this site missed updates on; keep the
   ones it actually holds (group-local knowledge). *)
let apply_faillock_hint t items =
  let fresh = ref 0 in
  List.iter
    (fun item ->
      if stores t ~item && Faillock.set t.faillocks ~item ~site:t.id then incr fresh)
    items;
  t.metrics.Metrics.faillocks_set <- t.metrics.Metrics.faillocks_set + !fresh

let handle_recovery_state t ctx ~vector ~faillocks ~backups =
  match t.mode with
  | Normal -> ()  (* duplicate or stale state shipment *)
  | Waiting_recovery { new_session; started_at; observed_down; hints; _ } ->
    let num_items = t.config.Config.num_items in
    Engine.work ctx t.cost.Cost_model.recovery_install_base;
    Engine.work ctx (num_items * t.cost.Cost_model.recovery_install_per_item);
    Session.install t.vector ~from:vector;
    Placement.View.install_extras t.placement backups;
    (* Under partial replication only rows of locally held items are
       installed: this site will never hear commit-time clears for items
       it does not hold, so foreign rows would go stale. *)
    (if Placement.View.is_full t.placement then Faillock.install t.faillocks ~from:faillocks
     else Faillock.install ~keep:(fun item -> stores t ~item) t.faillocks ~from:faillocks);
    List.iter (apply_faillock_hint t) (List.rev hints);
    Session.mark_up t.vector t.id ~session:new_session;
    t.mode <- Normal;
    t.metrics.Metrics.control1_completed <- t.metrics.Metrics.control1_completed + 1;
    t.metrics.Metrics.control1_recovering_ms <-
      ms_of (Vtime.sub (Engine.time ctx) started_at) :: t.metrics.Metrics.control1_recovering_ms;
    if tracing t then begin
      emit t ctx (Obs.Recovery_step { step = Obs.State_installed });
      emit t ctx (Obs.Control { kind = Obs.Recovery; detail = "state installed" })
    end;
    (* The donor's vector predates any failures we witnessed while
       waiting (e.g. a dead designated donor): re-apply them through
       control transaction type 2. *)
    announce_failures t ctx observed_down;
    (* Step two of two-step recovery may start immediately. *)
    start_batch_round t ctx

let handle_recovery_candidate_failure t ctx ~dst =
  match t.mode with
  | Normal -> ()
  | Waiting_recovery ({ new_session; _ } as w) ->
    Session.mark_down t.vector dst;
    if not (List.mem dst w.observed_down) then w.observed_down <- dst :: w.observed_down;
    w.candidates <- List.filter (fun s -> s <> dst) w.candidates;
    (match List.find_opt (fun s -> s <> dst) w.candidates with
    | Some next ->
      Engine.work ctx t.cost.Cost_model.recovery_announce_send;
      Engine.send ctx next
        (Message.Recovery_announce { site = t.id; session = new_session; want_state = true })
    | None ->
      (* Every potential donor is down: recovery is blocked, exactly the
         hazard the paper's two-step proposal aims to shrink (§3.2). *)
      Log.warn (fun m -> m "site %d: recovery blocked, no operational donor" t.id))

(* {2 In-doubt resolution (durability extension)}

   A participant that crashed between its yes-vote and the decision
   recovers with the prepare still on stable storage.  Before announcing
   recovery (control-1) it asks the transaction's coordinator for the
   outcome: a durable decision record (or a live commit phase) means
   commit, an up coordinator without one means presumed abort.  If the
   coordinator is down, every other site is probed — any site whose
   update log contains the transaction proves the commit; if all probes
   come back negative the prepare is presumed aborted (the only commits
   invisible to every survivor are the knowledge-loss corner the cluster
   detector counts). *)

let maybe_announce_after_resolution t ctx =
  match t.mode with
  | Normal -> ()
  | Waiting_recovery w ->
    if (not w.announced) && w.unresolved <= 0 then begin
      w.announced <- true;
      match w.candidates with
      | [] -> ()
      | designated :: _ ->
        let all_others =
          List.filter (fun s -> s <> t.id) (List.init (Session.num_sites t.vector) Fun.id)
        in
        let others = List.filter (fun s -> s <> designated) all_others in
        send_announcements t ctx ~new_session:w.new_session ~designated ~others;
        if tracing t then
          emit t ctx
            (Obs.Control
               {
                 kind = Obs.Recovery;
                 detail = Printf.sprintf "announce session %d" w.new_session;
               })
    end

(* One in-doubt prepare reached a verdict (or was superseded); release
   the control-1 announcements once the last one resolves. *)
let resolution_step t ctx =
  match t.mode with
  | Normal -> ()
  | Waiting_recovery w ->
    w.unresolved <- w.unresolved - 1;
    maybe_announce_after_resolution t ctx

let resolve_in_doubt t ctx ~txn ~committed =
  match Hashtbl.find_opt t.pending_prepares txn with
  | None -> ()  (* already resolved (duplicate probe answer) *)
  | Some pp ->
    if committed then begin
      forget_in_doubt t ~txn;
      (* Apply the decided writes from the durable prepare record.  Our
         own fail-lock bits for these items (set by the coordinator as a
         witness when our commit-ack bounced) are left to the normal
         recovery machinery: the copier refresh is version-safe even if
         later transactions overwrote the items, and clears them
         everywhere once our copy is provably current. *)
      apply_writes t ctx ~txn pp.pp_writes;
      if tracing t then
        emit t ctx
          (Obs.Control
             { kind = Obs.Recovery; detail = Printf.sprintf "in-doubt txn %d committed" txn });
      resolution_step t ctx
    end
    else if pp.pp_outstanding > 1 then pp.pp_outstanding <- pp.pp_outstanding - 1
    else begin
      (* Authoritative abort from the coordinator, or the last probe came
         back negative: presumed abort. *)
      forget_in_doubt t ~txn;
      if tracing t then
        emit t ctx
          (Obs.Control
             { kind = Obs.Recovery; detail = Printf.sprintf "in-doubt txn %d aborted" txn });
      resolution_step t ctx
    end

(* A status request bounced off a dead site.  First bounce (the
   coordinator): fan the probe out to every other site.  Later bounces
   (probes): count them as negative answers. *)
let handle_status_request_failed t ctx ~txn ~dst =
  match Hashtbl.find_opt t.pending_prepares txn with
  | None -> ()
  | Some pp ->
    if pp.pp_outstanding > 0 then begin
      if pp.pp_outstanding > 1 then pp.pp_outstanding <- pp.pp_outstanding - 1
      else begin
        forget_in_doubt t ~txn;
        resolution_step t ctx
      end
    end
    else begin
      let targets =
        List.filter
          (fun s -> s <> t.id && s <> dst)
          (List.init (Session.num_sites t.vector) Fun.id)
      in
      match targets with
      | [] ->
        forget_in_doubt t ~txn;
        resolution_step t ctx
      | _ ->
        pp.pp_outstanding <- List.length targets;
        List.iter (fun s -> Engine.send ctx s (Message.Txn_status_request { txn })) targets
    end

let handle_txn_status_request t ctx ~txn ~src =
  Engine.work ctx t.cost.Cost_model.ack_process;
  let committed =
    match current_coord t txn with
    | Some coord -> begin
      match coord.phase with
      | Committing _ -> true
      | Copying _ | Preparing _ ->
        (* The asker crashed before this transaction could gather every
           vote; it can never commit — abort it now. *)
        abort_txn t ctx coord ~reason:Metrics.Participant_failed ~notify:true;
        false
    end
    | None -> (
      match t.stable with
      | Some wal when Wal.decided_commit wal ~txn -> true
      | Some _ | None ->
        (* Not ours (or long retired): our update log proves any commit
           we applied.  Only an entry installing version [txn] counts —
           copier installs are logged under the {e requesting}
           transaction's id but carry the source copy's older version,
           and must not masquerade as a commit of that transaction.  A
           negative answer is only authoritative from the coordinator;
           the asker treats probe negatives as presumed abort once every
           probe agrees. *)
        List.exists
          (fun e -> e.Update_log.txn = txn && e.Update_log.write.Database.version = txn)
          (Update_log.entries t.log))
  in
  Engine.send ctx src (Message.Txn_status_reply { txn; committed })

(* {2 Send failures (Appendix A "site is now down" branches)} *)

let handle_send_failed t ctx ~dst ~payload =
  match payload with
  | Message.Copy_request { txn; _ } ->
    if txn < 0 then begin
      (match t.batch with
      | Some b when b.round_id = txn ->
        announce_failures t ctx [ dst ];
        finish_batch_source t ctx b dst
      | _ -> announce_failures t ctx [ dst ])
    end
    else begin
      match current_coord t txn with
      | Some coord ->
        announce_failures t ctx [ dst ];
        abort_txn t ctx coord ~reason:Metrics.Copier_source_failed ~notify:false
      | None -> announce_failures t ctx [ dst ]
    end
  | Message.Prepare { txn; _ } -> begin
    match current_coord t txn with
    | Some coord ->
      announce_failures t ctx [ dst ];
      abort_txn t ctx coord ~reason:Metrics.Participant_failed ~notify:true
    | None -> announce_failures t ctx [ dst ]
  end
  | Message.Commit { txn } -> begin
    announce_failures t ctx [ dst ];
    match current_coord t txn with
    | Some coord -> begin
      match coord.phase with
      | Committing c ->
        if Bitset.mem c.pending_acks dst then begin
          c.lost <- true;
          (* The witness bits our local commit is about to set for [dst]
             exist nowhere else: the other participants cleared dst's
             bits believing it up.  If dst later recovers from a state
             donor other than us, that donor would ship it a fail-lock
             table missing its own staleness — broadcast the bits as
             hints so every survivor records them. *)
          (if faillocks_on t then begin
             let items =
               List.filter_map
                 (fun { Database.item; _ } ->
                   if believes_stored t ~site:dst ~item then Some item else None)
                 coord.writes
             in
             if items <> [] then
               iter_others t (fun r ->
                   Engine.send ctx r (Message.Faillock_hint { for_site = dst; items }))
           end);
          Bitset.clear c.pending_acks dst;
          c.remaining <- c.remaining - 1;
          if c.remaining = 0 then local_commit t ctx coord
        end
      | Copying _ | Preparing _ -> ()
    end
    | None -> ()
  end
  | Message.Prepare_ack { txn } ->
    (* The coordinator died before our acknowledgement arrived: it never
       decided this transaction, so the prepare is presumed aborted. *)
    if Hashtbl.mem t.pending_prepares txn then begin
      forget_in_doubt t ~txn;
      resolution_step t ctx
    end;
    announce_failures t ctx [ dst ]
  | Message.Commit_ack _ -> announce_failures t ctx [ dst ]
  | Message.Txn_status_request { txn } ->
    (match t.mode with
    | Waiting_recovery w ->
      Session.mark_down t.vector dst;
      if not (List.mem dst w.observed_down) then w.observed_down <- dst :: w.observed_down
    | Normal -> announce_failures t ctx [ dst ]);
    handle_status_request_failed t ctx ~txn ~dst
  | Message.Txn_status_reply _ ->
    (* The asker died after asking; it will ask again when it recovers. *)
    announce_failures t ctx [ dst ]
  | Message.Recovery_announce { want_state; _ } ->
    if want_state then handle_recovery_candidate_failure t ctx ~dst
    else begin
      match t.mode with
      | Waiting_recovery w ->
        Session.mark_down t.vector dst;
        if not (List.mem dst w.observed_down) then w.observed_down <- dst :: w.observed_down
      | Normal -> announce_failures t ctx [ dst ]
    end
  | Message.Faillocks_cleared _ | Message.Failure_announce _ | Message.Backup_copy _
  | Message.Abort _ | Message.Faillock_hint _ ->
    announce_failures t ctx [ dst ]
  | Message.Copy_reply _ | Message.Copy_unavailable _ | Message.Recovery_state _ ->
    (* A reply to a site that died after asking; nothing of ours is
       pending on it. *)
    announce_failures t ctx [ dst ]
  | Message.Departure_announce _ -> announce_failures t ctx [ dst ]
  | Message.Begin_txn _ | Message.Recover_command | Message.Failure_noticed _
  | Message.Terminate_command ->
    ()  (* managing-site inputs are never sent site-to-site *)

(* {2 Dispatch} *)

let handle_message t ctx ~src payload =
  match payload with
  | Message.Begin_txn txn -> begin_txn t ctx txn
  | Message.Recover_command -> begin_recovery t ctx
  | Message.Failure_noticed failed -> announce_failures t ctx failed
  | Message.Terminate_command ->
    (* Graceful departure: announce before going away, so survivors never
       have to discover the absence through timeouts. *)
    Session.mark_terminating t.vector t.id;
    iter_others t (fun r ->
        Engine.work ctx t.cost.Cost_model.recovery_announce_send;
        Engine.send ctx r (Message.Departure_announce { site = t.id }))
  | Message.Departure_announce { site } -> Session.mark_terminating t.vector site
  | Message.Prepare { txn; writes; cleared } -> handle_prepare t ctx ~txn ~writes ~cleared ~src
  | Message.Prepare_ack { txn } -> handle_prepare_ack t ctx ~txn ~src
  | Message.Commit { txn } -> handle_commit t ctx ~txn ~src
  | Message.Commit_ack { txn } -> handle_commit_ack t ctx ~txn ~src
  | Message.Abort { txn; cleared } ->
    apply_embedded_clears t ~coordinator:src ~txn cleared;
    if Hashtbl.mem t.pending_prepares txn then begin
      forget_in_doubt t ~txn;
      resolution_step t ctx
    end
  | Message.Copy_request { txn; items } ->
    (* Serve up-to-date copies; items our own copy is fail-locked for (or
       that we do not store) cannot be served. *)
    let good, bad =
      List.partition
        (fun item ->
          stores t ~item && not (Faillock.is_locked t.faillocks ~item ~site:t.id))
        items
    in
    Engine.work ctx t.cost.Cost_model.copier_serve_base;
    Engine.work ctx (List.length good * t.cost.Cost_model.copier_serve_per_item);
    let writes =
      List.filter_map
        (fun item ->
          Option.map
            (fun (value, version) -> { Database.item; value; version })
            (Database.read t.db item))
        good
    in
    t.metrics.Metrics.copy_serve_ms <-
      ms_of
        (t.cost.Cost_model.copier_serve_base
        + (List.length good * t.cost.Cost_model.copier_serve_per_item)
        + t.cost.Cost_model.message_latency)
      :: t.metrics.Metrics.copy_serve_ms;
    if bad <> [] then Engine.send ctx src (Message.Copy_unavailable { txn; items = bad });
    Engine.send ctx src (Message.Copy_reply { txn; writes })
  | Message.Copy_reply { txn; writes } -> handle_copy_reply t ctx ~txn ~writes ~src
  | Message.Copy_unavailable { txn; items } -> begin
    if txn < 0 then begin
      match t.batch with
      | Some b when b.round_id = txn -> finish_batch_source t ctx b src
      | _ -> ()
    end
    else
      match current_coord t txn with
      | Some coord -> begin
        match coord.phase with
        | Copying c when partial t -> retry_copy_sources t ctx coord c ~failed:src ~items
        | Copying _ | Preparing _ | Committing _ ->
          abort_txn t ctx coord ~reason:Metrics.Copier_unavailable ~notify:false
      end
      | None -> ()
  end
  | Message.Faillocks_cleared { site; items } ->
    Engine.work ctx t.cost.Cost_model.faillock_clear_process;
    let cleared =
      List.fold_left
        (fun acc item -> acc + Faillock.clear_sites t.faillocks ~item ~sites:[ site ])
        0 items
    in
    t.metrics.Metrics.faillocks_cleared <- t.metrics.Metrics.faillocks_cleared + cleared;
    t.metrics.Metrics.clear_special_ms <-
      ms_of (t.cost.Cost_model.faillock_clear_process + t.cost.Cost_model.message_latency)
      :: t.metrics.Metrics.clear_special_ms
  | Message.Recovery_announce { site; session; want_state } ->
    handle_recovery_announce t ctx ~site ~session ~want_state ~src
  | Message.Txn_status_request { txn } -> handle_txn_status_request t ctx ~txn ~src
  | Message.Txn_status_reply { txn; committed } -> resolve_in_doubt t ctx ~txn ~committed
  | Message.Recovery_state { vector; faillocks; backups } ->
    handle_recovery_state t ctx ~vector ~faillocks ~backups
  | Message.Failure_announce { failed } ->
    Engine.work ctx t.cost.Cost_model.failure_announce_process;
    Session.merge_failure t.vector failed;
    (* Presumed abort for prepares whose coordinator just died (see
       [purge_prepares_from] for why this never races a commit). *)
    if not (is_waiting t) then
      List.iter (fun s -> purge_prepares_from t ~coordinator:s) failed;
    t.metrics.Metrics.control2_ms <-
      ms_of (t.cost.Cost_model.failure_announce_process + t.cost.Cost_model.message_latency)
      :: t.metrics.Metrics.control2_ms
  | Message.Faillock_hint { for_site; items } ->
    if for_site = t.id then begin
      match t.mode with
      | Waiting_recovery w -> w.hints <- items :: w.hints
      | Normal -> apply_faillock_hint t items
    end
    else if faillocks_on t then begin
      (* A coordinator witnessed [for_site] die mid-commit: record the
         missed items so any state donor ships the staleness.  Under
         partial replication only holders of an item track its bits. *)
      let fresh = ref 0 in
      List.iter
        (fun item ->
          if ((not (partial t)) || stores t ~item) && Faillock.set t.faillocks ~item ~site:for_site
          then incr fresh)
        items;
      t.metrics.Metrics.faillocks_set <- t.metrics.Metrics.faillocks_set + !fresh
    end
  | Message.Backup_copy { target; write } ->
    Placement.View.add_backup t.placement ~site:target ~item:write.Database.item;
    if target = t.id then begin
      let stale =
        match Database.version t.db write.Database.item with
        | None -> true
        | Some v -> v < write.Database.version
      in
      if stale then begin
        Database.materialize t.db write;
        log_durable t ctx ~txn:write.Database.version write
      end
    end

let handler t ctx event =
  if tracing t then t.obs_ctx <- Some ctx;
  match event with
  | Engine.Message { src; payload } -> handle_message t ctx ~src payload
  | Engine.Send_failed { dst; payload } -> handle_send_failed t ctx ~dst ~payload
  | Engine.Timer _ -> ()
