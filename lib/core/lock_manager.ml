type mode = Shared | Exclusive

type t = {
  table : (int, (int * mode) list) Hashtbl.t;  (* item -> holders *)
  held : (int, (int * mode) list) Hashtbl.t;  (* txn -> its locks *)
}

let create ~num_items =
  if num_items < 0 then invalid_arg "Lock_manager.create: negative num_items";
  { table = Hashtbl.create (max 16 num_items); held = Hashtbl.create 16 }

(* Collapse duplicate requests on the same item to the strongest mode.
   Sorted by item: [Hashtbl.fold] order is unspecified (and changed
   across OCaml releases), and the result is stored and compared, so the
   output order must not depend on hashing internals. *)
let normalize requests =
  let strongest = Hashtbl.create 8 in
  List.iter
    (fun (item, mode) ->
      match (Hashtbl.find_opt strongest item, mode) with
      | Some Exclusive, _ -> ()
      | _, mode -> Hashtbl.replace strongest item mode)
    requests;
  List.sort
    (fun (a, _) (b, _) -> compare (a : int) b)
    (Hashtbl.fold (fun item mode acc -> (item, mode) :: acc) strongest [])

let compatible ~requested ~holding =
  match (requested, holding) with Shared, Shared -> true | _ -> false

let available t ~txn (item, mode) =
  match Hashtbl.find_opt t.table item with
  | None | Some [] -> true
  | Some holders ->
    List.for_all
      (fun (holder, held_mode) -> holder = txn || compatible ~requested:mode ~holding:held_mode)
      holders

let try_acquire t ~txn requests =
  if Hashtbl.mem t.held txn then invalid_arg "Lock_manager.try_acquire: txn already holds locks";
  let requests = normalize requests in
  if List.for_all (available t ~txn) requests then begin
    List.iter
      (fun (item, mode) ->
        let holders = Option.value ~default:[] (Hashtbl.find_opt t.table item) in
        Hashtbl.replace t.table item ((txn, mode) :: holders))
      requests;
    Hashtbl.replace t.held txn requests;
    true
  end
  else false

let release_all t ~txn =
  match Hashtbl.find_opt t.held txn with
  | None -> ()
  | Some locks ->
    Hashtbl.remove t.held txn;
    List.iter
      (fun (item, _) ->
        let holders =
          List.filter (fun (holder, _) -> holder <> txn)
            (Option.value ~default:[] (Hashtbl.find_opt t.table item))
        in
        if holders = [] then Hashtbl.remove t.table item
        else Hashtbl.replace t.table item holders)
      locks

let conflicts a b =
  let a = normalize a and b = normalize b in
  List.exists
    (fun (item, mode_a) ->
      List.exists
        (fun (item_b, mode_b) ->
          item = item_b && not (compatible ~requested:mode_a ~holding:mode_b))
        b)
    a

let holders t item = Option.value ~default:[] (Hashtbl.find_opt t.table item)

let locked_count t = Hashtbl.length t.table

let of_txn txn =
  let writes = Txn.write_items txn in
  let reads = List.filter (fun item -> not (List.mem item writes)) (Txn.read_items txn) in
  List.map (fun item -> (item, Exclusive)) writes
  @ List.map (fun item -> (item, Shared)) reads
