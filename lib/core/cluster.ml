module Engine = Raid_net.Engine
module Database = Raid_storage.Database

type detection = Immediate | On_timeout

type t = {
  config : Config.t;
  detection : detection;
  engine : Message.t Engine.t;
  sites : Site.t array;
  metrics : Metrics.t;
  mutable outcomes_rev : Metrics.outcome list;
  mutable last_outcome : Metrics.outcome option;
  mutable next_id : int;
  committed_versions : int array;
  mutable outcome_hook : (Metrics.outcome -> unit) option;
}

let create ?(detection = Immediate) ?(trace = false) ?obs config =
  let metrics = Metrics.create () in
  let engine =
    Engine.create ~message_latency:config.Config.cost.Cost_model.message_latency ~trace
      ~num_sites:config.Config.num_sites ()
  in
  let cluster_ref = ref None in
  let on_outcome outcome =
    match !cluster_ref with
    | None -> ()
    | Some t ->
      t.outcomes_rev <- outcome :: t.outcomes_rev;
      t.last_outcome <- Some outcome;
      if outcome.Metrics.committed then
        List.iter
          (fun { Database.item; version; _ } ->
            if version > t.committed_versions.(item) then
              t.committed_versions.(item) <- version)
          outcome.Metrics.writes;
      match t.outcome_hook with None -> () | Some hook -> hook outcome
  in
  let sites =
    Array.init config.Config.num_sites (fun id ->
        Site.create ~id ~config ~metrics ~on_outcome ?obs ())
  in
  Array.iteri (fun id site -> Engine.register engine id (Site.handler site)) sites;
  let t =
    {
      config;
      detection;
      engine;
      sites;
      metrics;
      outcomes_rev = [];
      last_outcome = None;
      next_id = 0;
      committed_versions = Array.make config.Config.num_items 0;
      outcome_hook = None;
    }
  in
  cluster_ref := Some t;
  t

let config t = t.config
let metrics t = t.metrics
let engine t = t.engine
let num_sites t = Array.length t.sites

let site t i =
  if i < 0 || i >= Array.length t.sites then invalid_arg "Cluster.site: bad site id";
  t.sites.(i)

let alive t i = Engine.alive t.engine i

let alive_sites t =
  List.filter (alive t) (List.init (num_sites t) Fun.id)

let run_to_quiescence t = Engine.run t.engine

let fail_site t i =
  if alive t i then begin
    Engine.set_alive t.engine i false;
    Site.on_crash (site t i);
    (match t.detection with
    | On_timeout -> ()
    | Immediate -> begin
      match List.find_opt (fun s -> s <> i) (alive_sites t) with
      | None -> ()
      | Some witness ->
        Engine.inject t.engine ~dst:witness (Message.Failure_noticed [ i ]);
        run_to_quiescence t
    end)
  end

let terminate_site t i =
  if alive t i then begin
    Engine.inject t.engine ~dst:i Message.Terminate_command;
    run_to_quiescence t;
    Engine.set_alive t.engine i false;
    Site.on_crash (site t i)
  end

let recover_site t i =
  if alive t i then invalid_arg "Cluster.recover_site: site is already up";
  Engine.set_alive t.engine i true;
  Engine.inject t.engine ~dst:i Message.Recover_command;
  run_to_quiescence t;
  if Site.is_waiting (site t i) then `Blocked else `Recovered

let next_txn_id t =
  t.next_id <- t.next_id + 1;
  t.next_id

let inject_txn t ~coordinator txn =
  if not (alive t coordinator) then invalid_arg "Cluster.submit: coordinator is down";
  if Site.is_waiting (site t coordinator) then
    invalid_arg "Cluster.submit: coordinator is still waiting to recover";
  Engine.inject t.engine ~dst:coordinator (Message.Begin_txn txn)

let set_outcome_hook t hook = t.outcome_hook <- hook

let submit t ~coordinator txn =
  t.last_outcome <- None;
  inject_txn t ~coordinator txn;
  run_to_quiescence t;
  match t.last_outcome with
  | Some outcome -> outcome
  | None -> failwith "Cluster.submit: transaction produced no outcome (protocol bug)"

let outcomes t = List.rev t.outcomes_rev

(* {2 Oracle views} *)

let faillocks_for t target =
  let alive = alive_sites t in
  let items = ref [] in
  for item = t.config.Config.num_items - 1 downto 0 do
    let locked =
      List.exists
        (fun s -> Faillock.is_locked (Site.faillocks t.sites.(s)) ~item ~site:target)
        alive
    in
    if locked then items := item :: !items
  done;
  !items

let faillock_count_for t target = List.length (faillocks_for t target)

(* All targets in one sweep: per item, union the alive sites' lock
   bitmaps and bump a count per set bit.  O(items * alive * sites/8)
   instead of calling [faillock_count_for] once per target
   (O(items * alive * sites) with a list allocation per item). *)
let faillock_counts t =
  let n = num_sites t in
  let counts = Array.make n 0 in
  let tables = List.map (fun s -> Site.faillocks t.sites.(s)) (alive_sites t) in
  let union = Raid_util.Bitset.create n in
  for item = 0 to t.config.Config.num_items - 1 do
    Raid_util.Bitset.clear_all union;
    List.iter (fun fl -> Faillock.union_locked_into ~dst:union fl ~item) tables;
    Raid_util.Bitset.iter (fun target -> counts.(target) <- counts.(target) + 1) union
  done;
  counts

let total_faillocks t = Array.fold_left ( + ) 0 (faillock_counts t)

let reference_version t item =
  List.fold_left
    (fun acc s ->
      match Database.version (Site.database t.sites.(s)) item with
      | None -> acc
      | Some v -> ( match acc with None -> Some v | Some best -> Some (max best v) ))
    None (alive_sites t)

let committed_version t item =
  if item < 0 || item >= Array.length t.committed_versions then
    invalid_arg "Cluster.committed_version: bad item";
  t.committed_versions.(item)

let fully_consistent t =
  match alive_sites t with
  | [] -> true
  | first :: rest ->
    List.for_all
      (fun s -> Database.equal (Site.database t.sites.(s)) (Site.database t.sites.(first)))
      rest
    && total_faillocks t = 0
