module Engine = Raid_net.Engine
module Database = Raid_storage.Database
module Wal = Raid_storage.Wal
module Vtime = Raid_net.Vtime
module Telemetry = Raid_obs.Telemetry

let log_src = Logs.Src.create "raid.cluster" ~doc:"RAID managing site"

module Log = (val Logs.src_log log_src : Logs.LOG)

type detection = Immediate | On_timeout

type settings = {
  detection : detection;
  trace : bool;
  obs : Raid_obs.Trace.sink option;
  telemetry : Raid_obs.Telemetry.t option;
}

let default_settings = { detection = Immediate; trace = false; obs = None; telemetry = None }

let settings ?(detection = Immediate) ?(trace = false) ?obs ?telemetry () =
  { detection; trace; obs; telemetry }

module Spec = struct
  type wal_factory = site:int -> initial:Database.t -> Wal.t

  type t = {
    config : Config.t;
    detection : detection;
    trace : bool;
    obs : Raid_obs.Trace.sink option;
    telemetry : Raid_obs.Telemetry.t option;
    telemetry_labels : (string * string) list;
    wal_factory : wal_factory option;
  }

  let make ?(detection = Immediate) ?(trace = false) ?obs ?telemetry ?(telemetry_labels = [])
      ?wal_factory config =
    { config; detection; trace; obs; telemetry; telemetry_labels; wal_factory }

  let of_settings (s : settings) config =
    {
      config;
      detection = s.detection;
      trace = s.trace;
      obs = s.obs;
      telemetry = s.telemetry;
      telemetry_labels = [];
      wal_factory = None;
    }
end

type t = {
  config : Config.t;
  detection : detection;
  engine : Message.t Engine.t;
  obs : Raid_obs.Trace.sink option;
  sites : Site.t array;
  metrics : Metrics.t;
  mutable outcomes_rev : Metrics.outcome list;
  mutable last_outcome : Metrics.outcome option;
  mutable next_id : int;
  committed_versions : int array;
  mutable outcome_hook : (Metrics.outcome -> unit) option;
  mutable telemetry_observe : (Metrics.outcome -> unit) option;
  knowledge_lost : (int * int, unit) Hashtbl.t;
      (* (item, target): staleness facts whose last alive fail-lock
         witness crashed (the DESIGN.md §11 gap), recorded at the crash
         that removed the witness.  Append-only for the cluster's
         lifetime: the set documents that the hazard arose, not that it
         is still open. *)
  mutable knowledge_loss_events : int;
}

(* Wire a telemetry registry into every layer of this cluster: polled
   gauges over site state, counters fed by the engine's probe, polled
   counters over the protocol aggregates, and per-outcome latency
   histograms.  Everything registered here either polls on sample (a
   closure over existing state, zero steady-state cost) or is a single
   float store on the probe path — the run itself is never perturbed. *)
let attach_telemetry t registry ~extra_labels =
  let engine = t.engine in
  (* Prefix every series with the caller's labels (the multi-tenant
     engine passes [("tenant", n)]) so one registry can hold many
     clusters without (name, labels) collisions. *)
  let with_extra labels = extra_labels @ labels in
  (* Engine profile: events, messages and virtual handler time by
     payload kind.  Counters are pre-registered for every message kind
     so all series are aligned from the first sample. *)
  let events_total =
    Telemetry.counter registry "raid_engine_events_total" ~labels:(with_extra [])
      ~help:"Engine events processed (deliveries, failure notifications, timer firings)"
  in
  let msg_counters = Hashtbl.create 32 in
  let vtime_counters = Hashtbl.create 32 in
  let msg_counter kind =
    match Hashtbl.find_opt msg_counters kind with
    | Some c -> c
    | None ->
      (* A kind outside [Message.all_kinds] (e.g. the partial-replication
         fail-lock hint): register its series on first use so the
         pre-registered set — and the goldens built on it — is unchanged
         for runs that never send one. *)
      let c =
        Telemetry.counter registry "raid_engine_messages_total"
          ~labels:(with_extra [ ("kind", kind) ])
          ~help:"Messages delivered, by payload kind"
      in
      Hashtbl.replace msg_counters kind c;
      c
  in
  let vtime_counter kind =
    match Hashtbl.find_opt vtime_counters kind with
    | Some c -> c
    | None ->
      let c =
        Telemetry.counter registry "raid_engine_vtime_us_total"
          ~labels:(with_extra [ ("kind", kind) ])
          ~help:"Virtual handler time accumulated via the cost model, by payload kind (us)"
      in
      Hashtbl.replace vtime_counters kind c;
      c
  in
  List.iter
    (fun kind ->
      ignore (msg_counter kind);
      ignore (vtime_counter kind))
    Message.all_kinds;
  Telemetry.gauge registry "raid_engine_queue_depth" ~labels:(with_extra [])
    ~help:"Pending events in the engine queue" (fun () ->
      float_of_int (Engine.pending_events engine));
  Telemetry.gauge registry "raid_engine_heap_high_water" ~labels:(with_extra [])
    ~help:"Highest event-queue depth observed since creation" (fun () ->
      float_of_int (Engine.heap_high_water engine));
  Telemetry.polled_counter registry "raid_engine_sent_total" ~labels:(with_extra [])
    ~help:"Messages submitted, including managing-site injections" (fun () ->
      float_of_int (Engine.counters engine).Engine.sent);
  Telemetry.polled_counter registry "raid_engine_undeliverable_total" ~labels:(with_extra [])
    ~help:"Arrivals at a dead site or severed link" (fun () ->
      float_of_int (Engine.counters engine).Engine.undeliverable);
  Telemetry.polled_counter registry "raid_knowledge_loss_total" ~labels:(with_extra [])
    ~help:
      "Staleness facts (item, site) whose last alive fail-lock witness crashed (DESIGN.md section 11 gap)"
    (fun () -> float_of_int t.knowledge_loss_events);
  (* Per-site gauges: the quantities the paper's figures track, sampled
     over virtual time instead of per transaction. *)
  Array.iter
    (fun site ->
      let own = Site.id site in
      let labels = with_extra [ ("site", string_of_int own) ] in
      Telemetry.gauge registry "raid_site_faillocks" ~labels
        ~help:"Items fail-locked for this site in its own table (its out-of-date copies)"
        (fun () -> float_of_int (Faillock.count_for (Site.faillocks site) ~site:own));
      Telemetry.gauge registry "raid_site_faillock_bits" ~labels
        ~help:"Set bits in this site's fail-lock table, over all items and sites"
        (fun () -> float_of_int (Faillock.total_locked (Site.faillocks site)));
      Telemetry.gauge registry "raid_site_pending_2pc" ~labels
        ~help:"Pending 2PC acknowledgements across in-flight coordinated transactions"
        (fun () -> float_of_int (Site.pending_2pc site));
      Telemetry.gauge registry "raid_site_buffered_prepares" ~labels
        ~help:"Participant-side phase-1 write sets awaiting the coordinator's decision"
        (fun () -> float_of_int (Site.buffered_prepares site));
      Telemetry.gauge registry "raid_site_session_up" ~labels
        ~help:"Sites this site believes operational (session-vector up-count)"
        (fun () -> float_of_int (Session.up_count (Site.vector site)));
      Telemetry.gauge registry "raid_site_alive" ~labels ~help:"1 while the site is up"
        (fun () -> if Engine.alive engine own then 1.0 else 0.0))
    t.sites;
  (* Protocol aggregates: every Metrics counter, polled. *)
  List.iter
    (fun (name, _) ->
      Telemetry.polled_counter registry ("raid_" ^ name ^ "_total") ~labels:(with_extra [])
        ~help:"Cumulative protocol count (see Raid_core.Metrics)" (fun () ->
          float_of_int (List.assoc name (Metrics.snapshot_counts t.metrics))))
    (Metrics.snapshot_counts t.metrics);
  let latency_help = "Virtual transaction latency at the coordinator, by outcome (ms)" in
  let commit_latency =
    Telemetry.histogram registry "raid_txn_latency_ms"
      ~labels:(with_extra [ ("outcome", "commit") ])
      ~help:latency_help
  in
  let abort_latency =
    Telemetry.histogram registry "raid_txn_latency_ms"
      ~labels:(with_extra [ ("outcome", "abort") ])
      ~help:latency_help
  in
  t.telemetry_observe <-
    Some
      (fun outcome ->
        let ms = Vtime.to_ms outcome.Metrics.elapsed in
        Telemetry.observe
          (if outcome.Metrics.committed then commit_latency else abort_latency)
          ms);
  Engine.set_probe engine
    (Some
       {
         Engine.on_event =
           (fun ~at:_ event ~cost ->
             Telemetry.incr events_total;
             let payload_kind =
               match event with
               | Engine.Message { payload; _ } ->
                 let kind = Message.kind payload in
                 Telemetry.incr (msg_counter kind);
                 kind
               | Engine.Send_failed { payload; _ } | Engine.Timer payload ->
                 Message.kind payload
             in
             Telemetry.add (vtime_counter payload_kind) (float_of_int cost));
         on_advance = (fun ~at -> Telemetry.maybe_sample registry ~at);
       })

let of_spec (spec : Spec.t) =
  let { Spec.config; detection; trace; obs; telemetry; telemetry_labels; wal_factory } = spec in
  let metrics = Metrics.create () in
  let engine =
    Engine.create ~message_latency:config.Config.cost.Cost_model.message_latency ~trace
      ~num_sites:config.Config.num_sites ()
  in
  let cluster_ref = ref None in
  let on_outcome outcome =
    match !cluster_ref with
    | None -> ()
    | Some t ->
      t.outcomes_rev <- outcome :: t.outcomes_rev;
      t.last_outcome <- Some outcome;
      if outcome.Metrics.committed then
        List.iter
          (fun { Database.item; version; _ } ->
            if version > t.committed_versions.(item) then
              t.committed_versions.(item) <- version)
          outcome.Metrics.writes;
      (match t.telemetry_observe with None -> () | Some observe -> observe outcome);
      match t.outcome_hook with None -> () | Some hook -> hook outcome
  in
  let sites =
    Array.init config.Config.num_sites (fun id ->
        Site.create ~id ~config ~metrics ~on_outcome ?obs ?wal_factory ())
  in
  Array.iteri (fun id site -> Engine.register engine id (Site.handler site)) sites;
  let t =
    {
      config;
      detection;
      engine;
      obs;
      sites;
      metrics;
      outcomes_rev = [];
      last_outcome = None;
      next_id = 0;
      committed_versions = Array.make config.Config.num_items 0;
      outcome_hook = None;
      telemetry_observe = None;
      knowledge_lost = Hashtbl.create 8;
      knowledge_loss_events = 0;
    }
  in
  cluster_ref := Some t;
  (match telemetry with
  | None -> ()
  | Some registry -> attach_telemetry t registry ~extra_labels:telemetry_labels);
  t

let create ?(settings = default_settings) config = of_spec (Spec.of_settings settings config)

let config t = t.config
let metrics t = t.metrics
let engine t = t.engine
let num_sites t = Array.length t.sites

let site t i =
  if i < 0 || i >= Array.length t.sites then invalid_arg "Cluster.site: bad site id";
  t.sites.(i)

let alive t i = Engine.alive t.engine i

let alive_sites t =
  List.filter (alive t) (List.init (num_sites t) Fun.id)

let run_to_quiescence t = Engine.run t.engine

(* DESIGN.md §11: when a site dies, any (item, target) staleness fact
   recorded only in its fail-lock table vanishes from the union view the
   survivors can reconstruct — a later control-1 can then ship [target] a
   table without the bit and its stale copy will serve reads as current.
   Detect the condition at the instant it arises (the crash that removes
   the last witness), count it, and warn loudly.
   [Invariant.faillocks_track_staleness] tolerates recorded pairs so the
   crash matrix can tell this known paper-level gap apart from a protocol
   regression.  A dead target's staleness is judged against what its
   stable storage would restore, not its wiped volatile database. *)
let detect_knowledge_loss t ~dying =
  let dying_fl = Site.faillocks t.sites.(dying) in
  let survivors = alive_sites t in
  let replayed = Hashtbl.create 4 in
  let restored_version target item =
    let s = t.sites.(target) in
    match Site.wal s with
    | Some wal when not (alive t target) ->
      let db =
        match Hashtbl.find_opt replayed target with
        | Some db -> db
        | None ->
          let db = Database.create ~num_items:t.config.Config.num_items in
          ignore (Wal.replay_into wal db);
          Hashtbl.replace replayed target db;
          db
      in
      Database.version db item
    | _ -> Database.version (Site.database s) item
  in
  for item = 0 to t.config.Config.num_items - 1 do
    List.iter
      (fun target ->
        let visible_elsewhere =
          List.exists
            (fun s -> Faillock.is_locked (Site.faillocks t.sites.(s)) ~item ~site:target)
            survivors
        in
        if not visible_elsewhere then begin
          let committed = t.committed_versions.(item) in
          let behind =
            match restored_version target item with
            | Some v -> v < committed
            | None -> committed > 0
          in
          if behind && not (Hashtbl.mem t.knowledge_lost (item, target)) then begin
            Hashtbl.replace t.knowledge_lost (item, target) ();
            t.knowledge_loss_events <- t.knowledge_loss_events + 1;
            Log.warn (fun m ->
                m
                  "knowledge loss: site %d was the last alive witness that site %d's copy of \
                   item %d is stale (behind v%d)"
                  dying target item committed)
          end
        end)
      (Faillock.locked_sites dying_fl ~item)
  done

let crash_site_now t i =
  if alive t i then begin
    Engine.set_alive t.engine i false;
    (* Crashes happen outside any handler, so the site's own tracing
       (which needs an engine context) can't record them; the incident
       timeline's opening marker is emitted here instead. *)
    (match t.obs with
    | None -> ()
    | Some sink -> sink.Raid_obs.Trace.emit ~at:(Engine.now t.engine) ~site:i Raid_obs.Trace.Site_failed);
    Site.on_crash ~now:(Engine.now t.engine) (site t i);
    detect_knowledge_loss t ~dying:i
  end

let fail_site t i =
  if alive t i then begin
    crash_site_now t i;
    (match t.detection with
    | On_timeout -> ()
    | Immediate -> begin
      match List.find_opt (fun s -> s <> i) (alive_sites t) with
      | None -> ()
      | Some witness ->
        Engine.inject t.engine ~dst:witness (Message.Failure_noticed [ i ]);
        run_to_quiescence t
    end)
  end

let terminate_site t i =
  if alive t i then begin
    Engine.inject t.engine ~dst:i Message.Terminate_command;
    run_to_quiescence t;
    crash_site_now t i
  end

let knowledge_lost t ~item ~site = Hashtbl.mem t.knowledge_lost (item, site)
let knowledge_loss_events t = t.knowledge_loss_events

let recover_site t i =
  if alive t i then invalid_arg "Cluster.recover_site: site is already up";
  Engine.set_alive t.engine i true;
  Engine.inject t.engine ~dst:i Message.Recover_command;
  run_to_quiescence t;
  if Site.is_waiting (site t i) then `Blocked else `Recovered

let next_txn_id t =
  t.next_id <- t.next_id + 1;
  t.next_id

let inject_txn t ~coordinator txn =
  if not (alive t coordinator) then invalid_arg "Cluster.submit: coordinator is down";
  if Site.is_waiting (site t coordinator) then
    invalid_arg "Cluster.submit: coordinator is still waiting to recover";
  Engine.inject t.engine ~dst:coordinator (Message.Begin_txn txn)

let set_outcome_hook t hook = t.outcome_hook <- hook

let submit t ~coordinator txn =
  t.last_outcome <- None;
  inject_txn t ~coordinator txn;
  run_to_quiescence t;
  match t.last_outcome with
  | Some outcome -> outcome
  | None -> failwith "Cluster.submit: transaction produced no outcome (protocol bug)"

let outcomes t = List.rev t.outcomes_rev

(* A coordinator that durably decided commit and then crashed reports no
   outcome: its Commit messages are in flight and the writes land
   everywhere, but the oracle ([committed_version],
   [Invariant.no_stale_reads]) stays blind to the transaction.  The
   crash matrix records such ghost commits here once it has proved —
   from a survivor's update log or the coordinator's durable decision
   record — that the decision really was commit.  Must be called before
   any later transaction is injected, so the outcome list keeps
   submission order. *)
let note_ghost_commit t txn =
  let writes =
    List.map
      (fun item -> { Database.item; value = txn.Txn.id; version = txn.Txn.id })
      (Txn.write_items txn)
  in
  let outcome =
    {
      Metrics.txn;
      coordinator = -1;
      committed = true;
      abort_reason = None;
      copier_requests = 0;
      copier_items = 0;
      reads = [];
      writes;
      elapsed = Vtime.zero;
    }
  in
  t.outcomes_rev <- outcome :: t.outcomes_rev;
  List.iter
    (fun { Database.item; version; _ } ->
      if version > t.committed_versions.(item) then t.committed_versions.(item) <- version)
    writes

(* {2 Oracle views} *)

let faillocks_for t target =
  let alive = alive_sites t in
  let items = ref [] in
  for item = t.config.Config.num_items - 1 downto 0 do
    let locked =
      List.exists
        (fun s -> Faillock.is_locked (Site.faillocks t.sites.(s)) ~item ~site:target)
        alive
    in
    if locked then items := item :: !items
  done;
  !items

let faillock_count_for t target = List.length (faillocks_for t target)

(* All targets in one sweep: per item, union the alive sites' lock
   bitmaps and bump a count per set bit.  O(items * alive * sites/8)
   instead of calling [faillock_count_for] once per target
   (O(items * alive * sites) with a list allocation per item). *)
let faillock_counts t =
  let n = num_sites t in
  let counts = Array.make n 0 in
  let tables = List.map (fun s -> Site.faillocks t.sites.(s)) (alive_sites t) in
  let union = Raid_util.Bitset.create n in
  for item = 0 to t.config.Config.num_items - 1 do
    Raid_util.Bitset.clear_all union;
    List.iter (fun fl -> Faillock.union_locked_into ~dst:union fl ~item) tables;
    Raid_util.Bitset.iter (fun target -> counts.(target) <- counts.(target) + 1) union
  done;
  counts

let total_faillocks t = Array.fold_left ( + ) 0 (faillock_counts t)

type site_status = {
  st_id : int;
  st_alive : bool;
  st_waiting : bool;
  st_faillocks : int;
  st_table_bits : int;
  st_pending_2pc : int;
  st_buffered_prepares : int;
  st_session_up : int;
}

let site_status_of t i ~faillocks =
  let s = t.sites.(i) in
  {
    st_id = i;
    st_alive = alive t i;
    st_waiting = Site.is_waiting s;
    st_faillocks = faillocks;
    st_table_bits = Faillock.total_locked (Site.faillocks s);
    st_pending_2pc = Site.pending_2pc s;
    st_buffered_prepares = Site.buffered_prepares s;
    st_session_up = Session.up_count (Site.vector s);
  }

let site_status t i =
  if i < 0 || i >= Array.length t.sites then invalid_arg "Cluster.site_status: bad site id";
  site_status_of t i ~faillocks:(faillock_count_for t i)

let status t =
  let counts = faillock_counts t in
  Array.init (num_sites t) (fun i -> site_status_of t i ~faillocks:counts.(i))

let reference_version t item =
  List.fold_left
    (fun acc s ->
      match Database.version (Site.database t.sites.(s)) item with
      | None -> acc
      | Some v -> ( match acc with None -> Some v | Some best -> Some (max best v) ))
    None (alive_sites t)

let committed_version t item =
  if item < 0 || item >= Array.length t.committed_versions then
    invalid_arg "Cluster.committed_version: bad item";
  t.committed_versions.(item)

let fully_consistent t =
  (* Per item, every alive site storing it agrees — under full
     replication this degenerates to whole-database equality, and under
     partial replication it compares only the copies that exist (sites
     hold disjoint item sets by design, so [Database.equal] would never
     hold there). *)
  let alive = alive_sites t in
  let agree item =
    match
      List.filter_map (fun s -> Database.read (Site.database t.sites.(s)) item) alive
    with
    | [] -> true
    | copy :: rest -> List.for_all (( = ) copy) rest
  in
  let rec items_agree item =
    item >= t.config.Config.num_items || (agree item && items_agree (item + 1))
  in
  items_agree 0 && total_faillocks t = 0
