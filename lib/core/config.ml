type replication = Full | Partial of Placement.spec

type durability = In_memory | Durable_wal of { checkpoint_interval : int }

type recovery_policy = On_demand | Two_step of { threshold : float; batch_size : int }

type t = {
  num_sites : int;
  num_items : int;
  cost : Cost_model.t;
  replication : replication;
  recovery : recovery_policy;
  spawn_backups : bool;
  durability : durability;
  embed_clears : bool;
  faillocks_enabled : bool;
}

let validate t =
  if t.num_sites <= 0 then invalid_arg "Config: num_sites must be positive";
  if t.num_sites > 1024 then invalid_arg "Config: at most 1024 sites supported";
  if t.num_items <= 0 then invalid_arg "Config: num_items must be positive";
  (match t.replication with
  | Full -> ()
  | Partial spec ->
    (* Resolution validates the spec (positive factor, well-formed
       affinity map); a factor >= 1 always leaves every item a copy. *)
    ignore (Placement.make ~num_sites:t.num_sites ~num_items:t.num_items spec));
  (match t.durability with
  | In_memory -> ()
  | Durable_wal { checkpoint_interval } ->
    if checkpoint_interval <= 0 then
      invalid_arg "Config: checkpoint_interval must be positive");
  (match t.recovery with
  | On_demand -> ()
  | Two_step { threshold; batch_size } ->
    if threshold < 0.0 || threshold > 1.0 then
      invalid_arg "Config: two-step threshold outside [0,1]";
    if batch_size <= 0 then invalid_arg "Config: two-step batch_size must be positive");
  t

let make ?(cost = Cost_model.calibrated) ?(replication = Full) ?(recovery = On_demand)
    ?(spawn_backups = false) ?(durability = In_memory) ?(embed_clears = false)
    ?(faillocks_enabled = true) ~num_sites ~num_items () =
  validate
    {
      num_sites;
      num_items;
      cost;
      replication;
      recovery;
      spawn_backups;
      durability;
      embed_clears;
      faillocks_enabled;
    }

let placement t =
  match t.replication with
  | Full -> Placement.full ~num_sites:t.num_sites ~num_items:t.num_items
  | Partial spec -> Placement.make ~num_sites:t.num_sites ~num_items:t.num_items spec

let stores t ~site ~item =
  if site < 0 || site >= t.num_sites then invalid_arg "Config.stores: bad site";
  if item < 0 || item >= t.num_items then invalid_arg "Config.stores: bad item";
  Placement.holds (placement t) ~site ~item

let paper_experiment1 = make ~num_sites:4 ~num_items:50 ()
let paper_experiment2 = make ~num_sites:2 ~num_items:50 ()
