module Rng = Raid_util.Rng

type sharding = Hash | Range | Modular | Affinity of int array

type spec = { factor : int; sharding : sharding }

let spec ?(sharding = Hash) ~factor () = { factor; sharding }

let sharding_of_string = function
  | "hash" -> Ok Hash
  | "range" -> Ok Range
  | "modular" -> Ok Modular
  | s -> Error (Printf.sprintf "unknown sharding %S (expected hash, range or modular)" s)

let sharding_to_string = function
  | Hash -> "hash"
  | Range -> "range"
  | Modular -> "modular"
  | Affinity _ -> "affinity"

type t =
  | Full of { num_sites : int; num_items : int }
  | Sharded of {
      num_sites : int;
      num_items : int;
      factor : int;  (* 1 <= factor < num_sites *)
      sharding : sharding;
    }

let full ~num_sites ~num_items = Full { num_sites; num_items }

let make ~num_sites ~num_items spec =
  if spec.factor <= 0 then invalid_arg "Placement.make: factor must be positive";
  (match spec.sharding with
  | Affinity primaries ->
    if Array.length primaries <> num_items then
      invalid_arg "Placement.make: affinity array length must equal num_items";
    Array.iter
      (fun p ->
        if p < 0 || p >= num_sites then
          invalid_arg "Placement.make: affinity primary out of range")
      primaries
  | Hash | Range | Modular -> ());
  if spec.factor >= num_sites then Full { num_sites; num_items }
  else Sharded { num_sites; num_items; factor = spec.factor; sharding = spec.sharding }

let num_sites = function Full p -> p.num_sites | Sharded p -> p.num_sites
let num_items = function Full p -> p.num_items | Sharded p -> p.num_items
let is_full = function Full _ -> true | Sharded _ -> false
let factor = function Full p -> p.num_sites | Sharded p -> p.factor

let primary t item =
  match t with
  | Full _ -> 0
  | Sharded p -> (
    match p.sharding with
    | Hash ->
      (* mask the sign bit: [Rng.mix] ranges over all 63-bit ints *)
      Rng.mix item land max_int mod p.num_sites
    | Range ->
      (* num_items > 0 whenever there is an item to place *)
      item * p.num_sites / p.num_items
    | Modular -> item mod p.num_sites
    | Affinity primaries -> primaries.(item))

let holds t ~site ~item =
  match t with
  | Full _ -> true
  | Sharded p ->
    let d = site - primary t item in
    let d = if d < 0 then d + p.num_sites else d in
    d < p.factor

let iter_replicas t item f =
  match t with
  | Full p ->
    for site = 0 to p.num_sites - 1 do
      f site
    done
  | Sharded p ->
    let first = primary t item in
    for i = 0 to p.factor - 1 do
      let site = first + i in
      f (if site >= p.num_sites then site - p.num_sites else site)
    done

let fold_replicas t item f init =
  let acc = ref init in
  iter_replicas t item (fun site -> acc := f site !acc);
  !acc

let replicas t item = List.rev (fold_replicas t item (fun site acc -> site :: acc) [])

module View = struct
  type placement = t

  let base_holds = holds

  type t = {
    base : placement;
    (* item -> backup holders outside the static replica set, sorted
       ascending.  Empty almost always: guarded by [extra_count] so the
       hot path costs one load. *)
    extras : (int, int list) Hashtbl.t;
    mutable extra_count : int;
  }

  let create base = { base; extras = Hashtbl.create 8; extra_count = 0 }

  let base t = t.base
  let num_sites t = num_sites t.base
  let num_items t = num_items t.base
  let is_full t = is_full t.base

  let holds t ~site ~item =
    holds t.base ~site ~item
    || (t.extra_count > 0
       &&
       match Hashtbl.find_opt t.extras item with
       | None -> false
       | Some sites -> List.mem site sites)

  let add_backup t ~site ~item =
    if not (holds t ~site ~item) then begin
      let sites = Option.value (Hashtbl.find_opt t.extras item) ~default:[] in
      Hashtbl.replace t.extras item (List.sort compare (site :: sites));
      t.extra_count <- t.extra_count + 1
    end

  let iter_holders t item f =
    iter_replicas t.base item f;
    if t.extra_count > 0 then
      match Hashtbl.find_opt t.extras item with
      | None -> ()
      | Some sites -> List.iter f sites

  let count_holders_if t item pred =
    let n = ref 0 in
    iter_holders t item (fun site -> if pred site then incr n);
    !n

  let exists_holder t item pred =
    (* [iter_holders] has no early exit; holder sets are O(k) so a full
       pass is still cheap. *)
    count_holders_if t item pred > 0

  let extras t =
    Hashtbl.fold (fun item sites acc -> (item, sites) :: acc) t.extras []
    |> List.sort compare

  let install_extras t pairs =
    Hashtbl.reset t.extras;
    t.extra_count <- 0;
    List.iter
      (fun (item, sites) ->
        let sites = List.sort_uniq compare sites in
        let sites =
          List.filter (fun site -> not (base_holds t.base ~site ~item)) sites
        in
        if sites <> [] then begin
          Hashtbl.replace t.extras item sites;
          t.extra_count <- t.extra_count + List.length sites
        end)
      pairs

  let copy_extras_from dst src = install_extras dst (extras src)
end
