module Bitset = Raid_util.Bitset

type hook = item:int -> site:int -> locked:bool -> unit

type t = { num_sites : int; maps : Bitset.t array; mutable hook : hook option }

let create ~num_items ~num_sites =
  if num_items < 0 then invalid_arg "Faillock.create: negative num_items";
  if num_sites <= 0 then invalid_arg "Faillock.create: num_sites must be positive";
  { num_sites; maps = Array.init num_items (fun _ -> Bitset.create num_sites); hook = None }

let set_hook t hook = t.hook <- hook

(* Fire the observability hook on an actual bit transition.  With no
   hook installed (the default) this is a single branch. *)
let notify t ~item ~site ~locked =
  match t.hook with None -> () | Some hook -> hook ~item ~site ~locked

let num_items t = Array.length t.maps
let num_sites t = t.num_sites

let map t item =
  if item < 0 || item >= Array.length t.maps then invalid_arg "Faillock: item out of range";
  t.maps.(item)

let is_locked t ~item ~site = Bitset.mem (map t item) site

let set t ~item ~site =
  let m = map t item in
  let fresh = not (Bitset.mem m site) in
  Bitset.set m site;
  if fresh then notify t ~item ~site ~locked:true;
  fresh

let clear t ~item ~site =
  let m = map t item in
  let was_set = Bitset.mem m site in
  Bitset.clear m site;
  if was_set then notify t ~item ~site ~locked:false;
  was_set

let commit_update t ~item ~site_up ~set:set_count ~cleared =
  let m = map t item in
  for site = 0 to t.num_sites - 1 do
    if site_up site then begin
      if Bitset.mem m site then begin
        Bitset.clear m site;
        incr cleared;
        notify t ~item ~site ~locked:false
      end
    end
    else if not (Bitset.mem m site) then begin
      Bitset.set m site;
      incr set_count;
      notify t ~item ~site ~locked:true
    end
  done

let locked_items_for t ~site =
  let locked = ref [] in
  for item = Array.length t.maps - 1 downto 0 do
    if Bitset.mem t.maps.(item) site then locked := item :: !locked
  done;
  !locked

(* Allocation-free variant of [locked_items_for]: same items, same
   increasing order, no list. *)
let iter_locked_items_for t ~site f =
  for item = 0 to Array.length t.maps - 1 do
    if Bitset.mem t.maps.(item) site then f item
  done

let any_locked_for t ~site =
  let n = Array.length t.maps in
  let rec scan item = item < n && (Bitset.mem t.maps.(item) site || scan (item + 1)) in
  scan 0

let count_for t ~site =
  let count = ref 0 in
  Array.iter (fun m -> if Bitset.mem m site then incr count) t.maps;
  !count

let locked_sites t ~item = Bitset.to_list (map t item)
let union_locked_into ~dst t ~item = Bitset.union_into ~dst (map t item)
let any_locked t ~item = not (Bitset.is_empty (map t item))

let clear_sites t ~item ~sites =
  List.fold_left (fun acc site -> if clear t ~item ~site then acc + 1 else acc) 0 sites

(* Copies are inert data (shipped inside [Recovery_state] messages); they
   never fire the source's hook. *)
let copy t = { t with maps = Array.map Bitset.copy t.maps; hook = None }

let check_shape t from =
  if num_items t <> num_items from || t.num_sites <> from.num_sites then
    invalid_arg "Faillock: shape mismatch"

let install t ~from =
  check_shape t from;
  Array.iteri
    (fun item m ->
      (* Report the per-bit diff before overwriting (control-1 installs a
         whole table at once; the trace still wants transitions). *)
      (match t.hook with
      | None -> ()
      | Some _ ->
        for site = 0 to t.num_sites - 1 do
          let before = Bitset.mem t.maps.(item) site in
          let after = Bitset.mem m site in
          if before <> after then notify t ~item ~site ~locked:after
        done);
      Bitset.clear_all t.maps.(item);
      Bitset.union_into ~dst:t.maps.(item) m)
    from.maps

let merge t ~from =
  check_shape t from;
  Array.iteri
    (fun item m ->
      (match t.hook with
      | None -> ()
      | Some _ ->
        List.iter
          (fun site ->
            if not (Bitset.mem t.maps.(item) site) then notify t ~item ~site ~locked:true)
          (Bitset.to_list m));
      Bitset.union_into ~dst:t.maps.(item) m)
    from.maps

let total_locked t = Array.fold_left (fun acc m -> acc + Bitset.cardinal m) 0 t.maps

let equal a b =
  num_items a = num_items b && a.num_sites = b.num_sites
  && Array.for_all2 Bitset.equal a.maps b.maps

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun item m ->
      if not (Bitset.is_empty m) then Format.fprintf ppf "item %3d: %a@," item Bitset.pp m)
    t.maps;
  Format.fprintf ppf "@]"
