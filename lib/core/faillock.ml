module Bitset = Raid_util.Bitset

type hook = item:int -> site:int -> locked:bool -> unit

(* Sparse representation: one bitmap per item *with at least one bit
   set*, plus per-site counts.  At paper scale (every item locked for a
   failed site) this costs the same as the old dense array-of-bitmaps;
   at placement scale (1024 sites x 10^5 items, k holders per item) the
   dense table is ~13 GB while the sparse one is proportional to the
   actual inconsistency.  Invariant: a row is present iff non-empty. *)
type t = {
  num_items : int;
  num_sites : int;
  rows : (int, Bitset.t) Hashtbl.t;
  counts : int array;  (* per-site number of locked items *)
  mutable total : int;
  mutable hook : hook option;
}

let create ~num_items ~num_sites =
  if num_items < 0 then invalid_arg "Faillock.create: negative num_items";
  if num_sites <= 0 then invalid_arg "Faillock.create: num_sites must be positive";
  {
    num_items;
    num_sites;
    rows = Hashtbl.create 16;
    counts = Array.make num_sites 0;
    total = 0;
    hook = None;
  }

let set_hook t hook = t.hook <- hook

(* Fire the observability hook on an actual bit transition.  With no
   hook installed (the default) this is a single branch. *)
let notify t ~item ~site ~locked =
  match t.hook with None -> () | Some hook -> hook ~item ~site ~locked

let num_items t = t.num_items
let num_sites t = t.num_sites

let check_item t item =
  if item < 0 || item >= t.num_items then invalid_arg "Faillock: item out of range"

let check_site t site =
  if site < 0 || site >= t.num_sites then invalid_arg "Faillock: site out of range"

let row_opt t item =
  check_item t item;
  Hashtbl.find_opt t.rows item

let is_locked t ~item ~site =
  check_site t site;
  match row_opt t item with None -> false | Some m -> Bitset.mem m site

(* Raw bit updates maintaining counts/total and the non-empty-row
   invariant; return whether the bit actually transitioned.  The public
   [set]/[clear] add hook notification on top. *)
let set_raw t ~item ~site =
  check_site t site;
  let m =
    match row_opt t item with
    | Some m -> m
    | None ->
      let m = Bitset.create t.num_sites in
      Hashtbl.replace t.rows item m;
      m
  in
  if Bitset.mem m site then false
  else begin
    Bitset.set m site;
    t.counts.(site) <- t.counts.(site) + 1;
    t.total <- t.total + 1;
    true
  end

let clear_raw t ~item ~site =
  check_site t site;
  match row_opt t item with
  | None -> false
  | Some m ->
    if Bitset.mem m site then begin
      Bitset.clear m site;
      t.counts.(site) <- t.counts.(site) - 1;
      t.total <- t.total - 1;
      if Bitset.is_empty m then Hashtbl.remove t.rows item;
      true
    end
    else false

let set t ~item ~site =
  let fresh = set_raw t ~item ~site in
  if fresh then notify t ~item ~site ~locked:true;
  fresh

let clear t ~item ~site =
  let was_set = clear_raw t ~item ~site in
  if was_set then notify t ~item ~site ~locked:false;
  was_set

let update_for t ~item ~site ~up ~set:set_count ~cleared =
  if up then begin
    if clear_raw t ~item ~site then begin
      incr cleared;
      notify t ~item ~site ~locked:false
    end
  end
  else if set_raw t ~item ~site then begin
    incr set_count;
    notify t ~item ~site ~locked:true
  end

let commit_update t ~item ~site_up ~set ~cleared =
  check_item t item;
  for site = 0 to t.num_sites - 1 do
    update_for t ~item ~site ~up:(site_up site) ~set ~cleared
  done

let sorted_items t = List.sort compare (Hashtbl.fold (fun item _ acc -> item :: acc) t.rows [])

let locked_items_for t ~site =
  check_site t site;
  if t.counts.(site) = 0 then []
  else List.filter (fun item -> Bitset.mem (Hashtbl.find t.rows item) site) (sorted_items t)

(* Same items, same increasing order as [locked_items_for]. *)
let iter_locked_items_for t ~site f = List.iter f (locked_items_for t ~site)

let any_locked_for t ~site =
  check_site t site;
  t.counts.(site) > 0

let count_for t ~site =
  check_site t site;
  t.counts.(site)

let locked_sites t ~item =
  match row_opt t item with None -> [] | Some m -> Bitset.to_list m

let union_locked_into ~dst t ~item =
  match row_opt t item with
  | None ->
    if Bitset.capacity dst <> t.num_sites then invalid_arg "Bitset: capacity mismatch"
  | Some m -> Bitset.union_into ~dst m

let any_locked t ~item = row_opt t item <> None

let clear_sites t ~item ~sites =
  List.fold_left (fun acc site -> if clear t ~item ~site then acc + 1 else acc) 0 sites

(* Copies are inert data (shipped inside [Recovery_state] messages); they
   never fire the source's hook. *)
let copy t =
  let rows = Hashtbl.create (max 16 (Hashtbl.length t.rows)) in
  Hashtbl.iter (fun item m -> Hashtbl.replace rows item (Bitset.copy m)) t.rows;
  { t with rows; counts = Array.copy t.counts; hook = None }

let check_shape t from =
  if t.num_items <> from.num_items || t.num_sites <> from.num_sites then
    invalid_arg "Faillock: shape mismatch"

let install ?keep t ~from =
  check_shape t from;
  let kept item = match keep with None -> true | Some f -> f item in
  (* Visit the union of both tables' rows in ascending item order so the
     per-bit diff reported to the hook matches the old dense sweep
     (control-1 installs a whole table at once; the trace still wants
     transitions). *)
  let items = List.sort_uniq compare (sorted_items t @ sorted_items from) in
  List.iter
    (fun item ->
      let target = if kept item then Hashtbl.find_opt from.rows item else None in
      for site = 0 to t.num_sites - 1 do
        let after = match target with None -> false | Some m -> Bitset.mem m site in
        if after then ignore (set t ~item ~site) else ignore (clear t ~item ~site)
      done)
    items

let merge t ~from =
  check_shape t from;
  List.iter
    (fun item ->
      Bitset.iter (fun site -> ignore (set t ~item ~site)) (Hashtbl.find from.rows item))
    (sorted_items from)

let total_locked t = t.total

let equal a b =
  a.num_items = b.num_items && a.num_sites = b.num_sites && a.total = b.total
  && Hashtbl.length a.rows = Hashtbl.length b.rows
  && Hashtbl.fold
       (fun item m acc ->
         acc
         && match Hashtbl.find_opt b.rows item with None -> false | Some m' -> Bitset.equal m m')
       a.rows true

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun item -> Format.fprintf ppf "item %3d: %a@," item Bitset.pp (Hashtbl.find t.rows item))
    (sorted_items t);
  Format.fprintf ppf "@]"
