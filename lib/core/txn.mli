(** Database transactions.

    Matching the paper (§1.2): a transaction is a sequence of operations,
    each a read or a write of one data item; transactions are serially
    numbered from 1 for identification.  We also use the transaction
    number as the commit version its writes install, which is sound
    because processing is serial. *)

type op = Read of int | Write of int

type t = { id : int; ops : op list }

val make : id:int -> op list -> t
(** @raise Invalid_argument if [id < 0] or [ops] is empty. *)

val size : t -> int
(** Number of operations. *)

val read_items : t -> int list
(** Distinct items read, in first-occurrence order. *)

val write_items : t -> int list
(** Distinct items written, in first-occurrence order. *)

val items : t -> int list
(** Distinct items touched, in first-occurrence order. *)

val is_read_only : t -> bool

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
