(** Conservative strict two-phase locking.

    The paper processed transactions serially and left concurrency
    control to "the complete RAID system" (§5); this module is that
    extension.  Because a transaction's read and write sets are known
    when it is submitted (operations are declared up front), we use
    {e conservative} (static) 2PL: all locks are acquired atomically
    before the transaction starts and held until it completes, so
    deadlock is impossible by construction and every execution is
    conflict-serializable in lock-acquisition order.

    The table is a managing-site-level structure: the concurrent driver
    ({!Raid_sim.Concurrent}) acquires locks before injecting a
    transaction and releases them when its outcome arrives.  Sites never
    see conflicting concurrent transactions, which keeps the per-item
    version order (versions are transaction ids) intact — the driver also
    refuses to start a transaction out of id order with a {e conflicting}
    waiting one. *)

type mode = Shared | Exclusive

type t

val create : num_items:int -> t
(** @raise Invalid_argument on negative [num_items]. *)

val try_acquire : t -> txn:int -> (int * mode) list -> bool
(** Atomically acquire every requested lock, or none.  Shared locks are
    compatible with shared locks of other transactions; exclusive locks
    with nothing.  Requesting an item twice (e.g. read and write) is
    allowed — the strongest mode wins.  A transaction already holding
    locks must not acquire again.
    @raise Invalid_argument on out-of-range items or if [txn] already
    holds locks. *)

val release_all : t -> txn:int -> unit
(** Release everything [txn] holds (no-op if it holds nothing). *)

val normalize : (int * mode) list -> (int * mode) list
(** Collapse duplicate items to the strongest requested mode.  The
    result is sorted by item — deterministic regardless of request
    order or hash-table internals. *)

val conflicts : (int * mode) list -> (int * mode) list -> bool
(** Would these two lock sets conflict?  (Used for the driver's
    id-order admission rule.) *)

val holders : t -> int -> (int * mode) list
(** Current holders of one item's lock, as (txn, mode). *)

val locked_count : t -> int
(** Number of items currently locked in any mode. *)

val of_txn : Txn.t -> (int * mode) list
(** The lock set a transaction needs: exclusive on written items,
    shared on items only read. *)
