(** Session numbers and nominal session vectors (paper §1.1-1.2).

    A session number "identifies a time period in which a site is up"; it
    increments every time the site recovers.  A nominal session vector is
    "an array of records, with each record representing a site", holding
    the perceived session number and state of every site — the paper's
    four states are [Up], [Down], [Waiting_recover] and [Terminating].
    Each site consults its own vector to decide which sites participate in
    ROWAA transaction processing.

    The representation is sparse: every vector starts as "all sites up
    with session 1", so only entries that have diverged from that default
    are stored (plus a bitmap of non-[Up] sites for the hot-path
    queries).  Under k-holder partial replication a site only ever learns
    about its placement groups and the failures it witnesses, so
    {!create}, {!copy} and {!equal} are O(diverged) rather than O(sites)
    — the cost of spinning up or checkpointing a vector no longer grows
    with the cluster. *)

type state = Up | Down | Waiting_recover | Terminating

type entry = { session : int; state : state }

type t
(** A nominal session vector. *)

type hook = site:int -> session:int -> state:state -> unit
(** Observability callback, fired whenever a vector entry {e actually}
    changes (the arguments are the new entry). *)

val create : num_sites:int -> t
(** All sites perceived [Up] with session number 1 (the initial
    "consistent and up-to-date" configuration of every experiment).
    O(1) in the number of sites. *)

val set_hook : t -> hook option -> unit
(** Install (or remove) the change hook.  {!copy} never carries the hook
    over — copies are inert data shipped in messages.  With no hook the
    per-update overhead is one branch. *)

val num_sites : t -> int
val get : t -> int -> entry
val session : t -> int -> int
val state : t -> int -> state

val set : t -> int -> entry -> unit
val mark_down : t -> int -> unit
(** Session number is retained; only the state changes. *)

val mark_waiting : t -> int -> session:int -> unit

val mark_terminating : t -> int -> unit
(** Graceful departure announced; session number retained. *)

val mark_up : t -> int -> session:int -> unit

val is_up : t -> int -> bool

val up_count : t -> int
(** Number of sites perceived [Up].  O(1): the count is cached and
    maintained by every state transition. *)

val operational : t -> int list
(** Sites perceived [Up], in increasing id order. *)

val operational_except : t -> int -> int list
(** [operational] minus the given site (a coordinator's participants). *)

val iter_operational : t -> (int -> unit) -> unit
(** Apply to every [Up] site in increasing id order without materialising
    a list — equivalent to [List.iter f (operational t)]. *)

val iter_operational_except : t -> self:int -> (int -> unit) -> unit
(** {!iter_operational} skipping [self] — the allocation-free form of
    [List.iter f (operational_except t self)]. *)

val operational_count_except : t -> self:int -> int
(** [List.length (operational_except t self)], in O(1). *)

val exists_operational : t -> (int -> bool) -> bool
(** Does any [Up] site satisfy the predicate?  Stops at the first hit. *)

val first_operational : t -> (int -> bool) -> int option
(** Lowest-id [Up] site satisfying the predicate — equivalent to
    [List.find_opt pred (operational t)]. *)

val copy : t -> t
(** O(diverged): only entries differing from the initial default are
    copied.  The hook is never carried over. *)

val diverged : t -> int
(** Number of entries currently differing from the initial default
    [{session = 1; state = Up}] — the size of the sparse storage. *)

val install : t -> from:t -> unit
(** Overwrite every entry of [t] with those of [from] (control-1
    installation at a recovering site).  @raise Invalid_argument on a
    size mismatch. *)

val merge_failure : t -> int list -> unit
(** Control-2: mark each listed site [Down]. *)

val equal : t -> t -> bool
val pp_state : Format.formatter -> state -> unit

val state_name : state -> string
(** ["up"], ["down"], ["waiting"] or ["terminating"]. *)

val pp : Format.formatter -> t -> unit
