(** The managing site: builds a cluster and drives it.

    The paper's managing site "provide[s] interactive control of system
    actions ... used to cause sites to fail and recover and to initiate a
    database transaction to a site" (§1.2).  This module is that driver:
    it owns the engine and the sites, injects transactions serially (the
    paper processes transactions serially, with no concurrency control),
    fails and recovers sites at transaction boundaries, and exposes the
    oracle views (global fail-lock counts, reference versions) the
    experiment harness plots.

    Failure detection modes:
    - [Immediate]: when a site is failed, the managing site immediately
      tells the lowest-numbered surviving site, which runs control
      transaction type 2.  This matches how the paper's experiments stage
      failures between numbered transactions.
    - [On_timeout]: survivors only learn of a failure when a send to the
      dead site times out during a later transaction (Appendix A's
      "site is now down" branches), which then aborts that transaction
      and runs control-2. *)

type detection = Immediate | On_timeout

type settings = {
  detection : detection;
  trace : bool;
  obs : Raid_obs.Trace.sink option;
  telemetry : Raid_obs.Telemetry.t option;
}
(** Cross-cutting observation and failure-detection knobs, gathered in
    one record so [create] does not grow an optional argument per
    concern.  [obs] is handed to every site: one sink collects the whole
    cluster's protocol trace (entries carry the emitting site's id).
    [telemetry], when given, is instrumented over every layer — per-site
    gauges (fail-lock table sizes, pending 2PC cardinalities, session
    up-counts), engine event/message/virtual-time counters via
    {!Raid_net.Engine.set_probe}, polled {!Metrics} totals and
    per-outcome latency histograms — and sampled at its interval as the
    engine's clock advances; telemetry reads but never changes the
    run. *)

val default_settings : settings
(** [Immediate] detection, no trace, no sink, no telemetry. *)

val settings :
  ?detection:detection ->
  ?trace:bool ->
  ?obs:Raid_obs.Trace.sink ->
  ?telemetry:Raid_obs.Telemetry.t ->
  unit ->
  settings
(** {!default_settings} with the given fields overridden. *)

(** The full construction row, as one record — everything a cluster
    needs to exist as {e one tenant among many} in a process rather than
    the implicit only cluster.  {!settings} covers the single-cluster
    observation knobs; [Spec] adds the per-tenant dimensions:

    - [telemetry_labels] is prepended to the labels of {e every} series
      this cluster registers (the multi-tenant engine passes
      [("tenant", n)]), so thousands of clusters can share one registry
      without (name, labels) collisions;
    - [wal_factory] replaces each site's private {!Raid_storage.Wal}
      with one built by the caller — the hook through which all of a
      shard's tenants write into one group-committed
      {!Raid_storage.Shared_wal}.  Only consulted when the config's
      durability is [Durable_wal]. *)
module Spec : sig
  type wal_factory = site:int -> initial:Raid_storage.Database.t -> Raid_storage.Wal.t

  type t = {
    config : Config.t;
    detection : detection;
    trace : bool;
    obs : Raid_obs.Trace.sink option;
    telemetry : Raid_obs.Telemetry.t option;
    telemetry_labels : (string * string) list;
    wal_factory : wal_factory option;
  }

  val make :
    ?detection:detection ->
    ?trace:bool ->
    ?obs:Raid_obs.Trace.sink ->
    ?telemetry:Raid_obs.Telemetry.t ->
    ?telemetry_labels:(string * string) list ->
    ?wal_factory:wal_factory ->
    Config.t ->
    t
  (** Defaults mirror {!default_settings}: [Immediate] detection, no
      trace, no sinks, no labels, private WALs. *)

  val of_settings : settings -> Config.t -> t
end

type t

val of_spec : Spec.t -> t
(** A fresh cluster built from the full specification: all sites up,
    databases identical, no fail-locks. *)

val create : ?settings:settings -> Config.t -> t
(** [of_spec (Spec.of_settings settings config)] — the single-cluster
    form.  [settings] defaults to {!default_settings}. *)

val config : t -> Config.t
val metrics : t -> Metrics.t
val engine : t -> Message.t Raid_net.Engine.t
val num_sites : t -> int
val site : t -> int -> Site.t

val alive : t -> int -> bool
val alive_sites : t -> int list

val fail_site : t -> int -> unit
(** Crash a site between transactions.  Volatile state is lost; database,
    fail-locks and session vector survive.  No-op if already down.
    Under [Immediate] detection the survivors' session vectors are
    updated before this returns. *)

val terminate_site : t -> int -> unit
(** Graceful shutdown: the site announces its departure (the paper's
    [Terminating] session state), survivors update their vectors without
    control transaction 2 or timeouts, and the site then stops.  It
    rejoins later through the normal recovery protocol. *)

val crash_site_now : t -> int -> unit
(** Crash a site at the engine's current virtual time {e without}
    notifying survivors or draining the queue — the crash-matrix
    primitive for killing a site mid-protocol, between two handler
    events.  Messages already in flight to or from the site stay in the
    queue ({!Raid_net.Engine} semantics); survivors learn of the death
    through [Send_failed] bounces or a later [Failure_noticed]
    injection.  Also sweeps the dying site's fail-lock table for
    staleness knowledge no surviving site holds (the DESIGN.md §11
    knowledge-loss gap), counting and logging each lost fact.  No-op if
    already down. *)

val knowledge_lost : t -> item:int -> site:int -> bool
(** Whether the staleness fact "[site]'s copy of [item] is behind" was
    ever lost with its last alive witness (recorded by the crash sweep;
    never un-recorded).  {!Invariant.faillocks_track_staleness} tolerates
    recorded pairs. *)

val knowledge_loss_events : t -> int
(** Total (item, site) staleness facts lost across all crashes so far —
    also exported as the [raid_knowledge_loss_total] telemetry series. *)

val note_ghost_commit : t -> Txn.t -> unit
(** Record a committed outcome for a transaction whose coordinator
    crashed after durably deciding commit but before reporting — the
    writes land at the surviving participants, and without this the
    oracle ({!committed_version}, {!Invariant.no_stale_reads}) would
    treat them as uncommitted.  The caller must first prove the decision
    was commit (survivor update-log entry or the coordinator's durable
    decision record), and must call this before injecting any later
    transaction so the outcome history keeps submission order. *)

val recover_site : t -> int -> [ `Recovered | `Blocked ]
(** Bring a down site back: control transaction type 1 runs to
    completion.  [`Blocked] when no operational donor exists (the site
    stays in the waiting state and can be recovered again later).
    @raise Invalid_argument if the site is already up. *)

val submit : t -> coordinator:int -> Txn.t -> Metrics.outcome
(** Hand a database transaction to [coordinator] and run the system to
    quiescence; returns the transaction's outcome.  Transaction ids must
    be fresh and increasing across the life of the cluster (use
    {!next_txn_id}).
    @raise Invalid_argument if the coordinator is down or waiting. *)

val next_txn_id : t -> int
(** Serial transaction numbers starting at 1, as in the paper. *)

val outcomes : t -> Metrics.outcome list
(** Every outcome so far, in submission order. *)

val run_to_quiescence : t -> unit
(** Drain pending events (normally a no-op; every driver call already
    runs to quiescence). *)

(** {2 Concurrent driving}

    The concurrency extension ({!Raid_sim.Concurrent}) keeps several
    transactions in flight: it injects without draining and reacts to
    completions through a hook. *)

val inject_txn : t -> coordinator:int -> Txn.t -> unit
(** Hand a transaction to a coordinator {e without} running the engine;
    combine with {!run_to_quiescence} and {!set_outcome_hook}.  The
    caller is responsible for never injecting conflicting transactions
    concurrently (see {!Lock_manager}).
    @raise Invalid_argument if the coordinator is down or waiting. *)

val set_outcome_hook : t -> (Metrics.outcome -> unit) option -> unit
(** Called on every transaction outcome, in completion order, in
    addition to the internal bookkeeping. *)

(** {2 Oracle views}

    Computed over the union of the {e alive} sites' fail-lock tables —
    down sites' tables are frozen and may be stale. *)

val faillocks_for : t -> int -> int list
(** Items currently fail-locked for the given site, per the union view —
    the y-value the paper's figures plot per site. *)

val faillock_count_for : t -> int -> int

val faillock_counts : t -> int array
(** [faillock_count_for] for every site in one sweep over the tables —
    use this when a caller wants the whole per-site profile (the sweep
    runner samples it after every transaction). *)

val total_faillocks : t -> int
(** Set bits in the union view, over all items and sites. *)

type site_status = {
  st_id : int;
  st_alive : bool;
  st_waiting : bool;  (** down-then-recovered but still blocked on a donor *)
  st_faillocks : int;  (** items fail-locked {e for} this site, union view *)
  st_table_bits : int;  (** set bits in this site's own fail-lock table *)
  st_pending_2pc : int;  (** outstanding 2PC acks across its coordinated txns *)
  st_buffered_prepares : int;  (** participant write sets awaiting a decision *)
  st_session_up : int;  (** sites this site believes operational *)
}
(** One site's externally visible state — what a task-manager-style
    introspection API (the [raid serve] [/sites] endpoint) reports.
    Every field is read-only derived state; computing a status never
    perturbs the run. *)

val site_status : t -> int -> site_status
(** @raise Invalid_argument on a bad site id. *)

val status : t -> site_status array
(** {!site_status} for every site, with the fail-lock oracle swept once
    ({!faillock_counts}) instead of per site. *)

val reference_version : t -> int -> int option
(** Highest version of an item among alive sites storing it ([None] when
    no alive site stores it). *)

val committed_version : t -> int -> int
(** Highest version ever committed for the item (0 initially), from the
    outcome history. *)

val fully_consistent : t -> bool
(** All alive sites' databases equal and the union fail-lock view empty —
    the paper's "completely recovered" condition when all sites are up. *)
