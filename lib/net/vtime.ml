type t = int

let zero = 0
let of_us us = us
let of_ms ms = ms * 1000
let of_ms_f ms = int_of_float (Float.round (ms *. 1000.0))
let to_us t = t
let to_ms t = float_of_int t /. 1000.0
let add = ( + )
let sub = ( - )
let compare = Int.compare
let pp ppf t = Format.fprintf ppf "%.2f ms" (to_ms t)
