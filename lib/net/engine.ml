type 'm event =
  | Message of { src : int; payload : 'm }
  | Send_failed of { dst : int; payload : 'm }
  | Timer of 'm

type trace_outcome = Delivered | Undeliverable

type 'm trace_entry = {
  trace_time : Vtime.t;
  trace_src : int;
  trace_dst : int;
  trace_payload : 'm;
  trace_outcome : trace_outcome;
}

type counters = {
  sent : int;
  delivered : int;
  undeliverable : int;
  timer_fired : int;
  timer_discarded : int;
}

(* Internal scheduled actions.  [Arrive] evaluates deliverability at
   arrival time; [Notify_failure] is the sender-side timeout; [Fire] is a
   local timer. *)
type 'm action =
  | Arrive of { src : int; dst : int; payload : 'm }
  | Notify_failure of { src : int; dst : int; payload : 'm }
  | Fire of { dst : int; payload : 'm }

type 'm scheduled = { at : Vtime.t; seq : int; action : 'm action }

type 'm t = {
  num_sites : int;
  message_latency : Vtime.t;
  failure_timeout : Vtime.t;
  queue : 'm scheduled Heap.t;
  handlers : 'm handler option array;
  alive : bool array;
  links : bool array array;
  latencies : Vtime.t array array;  (* per-link one-way latency *)
  mutable clock : Vtime.t;
  mutable seq : int;
  mutable counters : counters;
  sent_by : int array;
  delivered_to : int array;
  trace_enabled : bool;
  mutable trace_rev : 'm trace_entry list;
}

and 'm handler = 'm ctx -> 'm event -> unit

and 'm ctx = { engine : 'm t; ctx_self : int; base : Vtime.t; mutable elapsed : Vtime.t }

let external_source = -1

let create ?(message_latency = Vtime.of_ms 9) ?failure_timeout ?(trace = false) ~num_sites () =
  if num_sites <= 0 then invalid_arg "Engine.create: num_sites must be positive";
  if message_latency < 0 then invalid_arg "Engine.create: negative latency";
  let failure_timeout =
    match failure_timeout with Some t -> t | None -> 3 * message_latency
  in
  if failure_timeout < message_latency then
    invalid_arg "Engine.create: failure_timeout below message_latency";
  {
    num_sites;
    message_latency;
    failure_timeout;
    queue =
      Heap.create ~cmp:(fun a b ->
          match Vtime.compare a.at b.at with 0 -> Int.compare a.seq b.seq | c -> c);
    handlers = Array.make num_sites None;
    alive = Array.make num_sites true;
    links = Array.init num_sites (fun _ -> Array.make num_sites true);
    latencies = Array.init num_sites (fun _ -> Array.make num_sites message_latency);
    clock = Vtime.zero;
    seq = 0;
    counters = { sent = 0; delivered = 0; undeliverable = 0; timer_fired = 0; timer_discarded = 0 };
    sent_by = Array.make num_sites 0;
    delivered_to = Array.make num_sites 0;
    trace_enabled = trace;
    trace_rev = [];
  }

let register t site handler =
  if site < 0 || site >= t.num_sites then invalid_arg "Engine.register: bad site id";
  t.handlers.(site) <- Some handler

let num_sites t = t.num_sites
let now t = t.clock
let message_latency t = t.message_latency

let check_site t site =
  if site < 0 || site >= t.num_sites then invalid_arg "Engine: bad site id"

let set_alive t site up =
  check_site t site;
  t.alive.(site) <- up

let alive t site =
  check_site t site;
  t.alive.(site)

let set_link t a b ok =
  check_site t a;
  check_site t b;
  t.links.(a).(b) <- ok;
  t.links.(b).(a) <- ok

let link_ok t a b =
  check_site t a;
  check_site t b;
  a = b || t.links.(a).(b)

let set_link_latency t a b latency =
  check_site t a;
  check_site t b;
  if latency < 0 then invalid_arg "Engine.set_link_latency: negative latency";
  t.latencies.(a).(b) <- latency;
  t.latencies.(b).(a) <- latency

let link_latency t a b =
  check_site t a;
  check_site t b;
  t.latencies.(a).(b)

let schedule t at action =
  let at = max at t.clock in
  Heap.push t.queue { at; seq = t.seq; action };
  t.seq <- t.seq + 1

let record_trace t ~time ~src ~dst ~payload ~outcome =
  if t.trace_enabled then
    t.trace_rev <-
      { trace_time = time; trace_src = src; trace_dst = dst; trace_payload = payload;
        trace_outcome = outcome }
      :: t.trace_rev

let submit t ~at ~src ~dst payload =
  check_site t dst;
  t.counters <- { t.counters with sent = t.counters.sent + 1 };
  if src >= 0 then t.sent_by.(src) <- t.sent_by.(src) + 1;
  let latency = if src >= 0 then t.latencies.(src).(dst) else t.message_latency in
  schedule t (Vtime.add at latency) (Arrive { src; dst; payload })

let inject t ~dst payload = submit t ~at:t.clock ~src:external_source ~dst payload

let self ctx = ctx.ctx_self
let time ctx = Vtime.add ctx.base ctx.elapsed

let work ctx cost =
  if cost < 0 then invalid_arg "Engine.work: negative cost";
  ctx.elapsed <- Vtime.add ctx.elapsed cost

let send ctx dst payload = submit ctx.engine ~at:(time ctx) ~src:ctx.ctx_self ~dst payload

let set_timer ctx delay payload =
  if delay < 0 then invalid_arg "Engine.set_timer: negative delay";
  schedule ctx.engine (Vtime.add (time ctx) delay) (Fire { dst = ctx.ctx_self; payload })

let invoke t site event =
  match t.handlers.(site) with
  | None -> failwith (Printf.sprintf "Engine: no handler registered for site %d" site)
  | Some handler ->
    let ctx = { engine = t; ctx_self = site; base = t.clock; elapsed = Vtime.zero } in
    handler ctx event

let deliverable t ~src ~dst = t.alive.(dst) && (src < 0 || link_ok t src dst)

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some { at; action; _ } ->
    t.clock <- at;
    (match action with
    | Arrive { src; dst; payload } ->
      if deliverable t ~src ~dst then begin
        t.counters <- { t.counters with delivered = t.counters.delivered + 1 };
        t.delivered_to.(dst) <- t.delivered_to.(dst) + 1;
        record_trace t ~time:at ~src ~dst ~payload ~outcome:Delivered;
        invoke t dst (Message { src; payload })
      end
      else begin
        t.counters <- { t.counters with undeliverable = t.counters.undeliverable + 1 };
        record_trace t ~time:at ~src ~dst ~payload ~outcome:Undeliverable;
        if src >= 0 then
          (* The sender times out [failure_timeout] after the send, i.e.
             [failure_timeout - latency] after the failed arrival. *)
          schedule t
            (Vtime.add at (Vtime.sub t.failure_timeout t.message_latency))
            (Notify_failure { src; dst; payload })
      end
    | Notify_failure { src; dst; payload } ->
      if t.alive.(src) then invoke t src (Send_failed { dst; payload })
    | Fire { dst; payload } ->
      if t.alive.(dst) then begin
        t.counters <- { t.counters with timer_fired = t.counters.timer_fired + 1 };
        invoke t dst (Timer payload)
      end
      else
        t.counters <- { t.counters with timer_discarded = t.counters.timer_discarded + 1 });
    true

let run ?(max_events = 10_000_000) t =
  let rec loop remaining =
    if remaining = 0 then failwith "Engine.run: max_events exceeded (livelock?)"
    else if step t then loop (remaining - 1)
  in
  loop max_events

let pending_events t = Heap.size t.queue
let counters t = t.counters

let sent_by t site =
  check_site t site;
  t.sent_by.(site)

let delivered_to t site =
  check_site t site;
  t.delivered_to.(site)

let trace t = List.rev t.trace_rev
