type 'm event =
  | Message of { src : int; payload : 'm }
  | Send_failed of { dst : int; payload : 'm }
  | Timer of 'm

type trace_outcome = Delivered | Undeliverable

type 'm trace_entry = {
  trace_time : Vtime.t;
  trace_src : int;
  trace_dst : int;
  trace_payload : 'm;
  trace_outcome : trace_outcome;
}

type counters = {
  sent : int;
  delivered : int;
  undeliverable : int;
  timer_fired : int;
  timer_discarded : int;
}

type 'm probe = {
  on_event : at:Vtime.t -> 'm event -> cost:Vtime.t -> unit;
  on_advance : at:Vtime.t -> unit;
}

(* Hot-path accounting: updated in place on every event.  The public
   [counters] record above stays immutable; [counters t] takes a
   snapshot copy.  Rebuilding a five-field record per delivered message
   (the previous representation) was the engine's dominant per-event
   allocation. *)
type live_counters = {
  mutable live_sent : int;
  mutable live_delivered : int;
  mutable live_undeliverable : int;
  mutable live_timer_fired : int;
  mutable live_timer_discarded : int;
}

(* Internal scheduled actions.  [Arrive] evaluates deliverability at
   arrival time and carries the send time so a failed delivery can be
   notified exactly [failure_timeout] after the send regardless of the
   link's latency; [Notify_failure] is the sender-side timeout; [Fire] is
   a local timer.  The [(at, seq)] ordering keys live unboxed inside
   [Heap.Prio]; no per-event wrapper record is allocated. *)
type 'm action =
  | Arrive of { src : int; dst : int; payload : 'm; sent : Vtime.t }
  | Notify_failure of { src : int; dst : int; payload : 'm }
  | Fire of { dst : int; payload : 'm }

type 'm t = {
  num_sites : int;
  message_latency : Vtime.t;
  failure_timeout : Vtime.t;
  queue : 'm action Heap.Prio.t;
  handlers : 'm handler option array;
  alive : bool array;
  links : bool array array;
  latencies : Vtime.t array array;  (* per-link one-way latency *)
  mutable clock : Vtime.t;
  mutable seq : int;
  live : live_counters;
  sent_by : int array;
  delivered_to : int array;
  trace_enabled : bool;
  mutable trace_rev : 'm trace_entry list;
  mutable ctxs : 'm ctx array;  (* per-site scratch, reset on each invoke *)
  mutable probe : 'm probe option;
  mutable heap_high_water : int;
}

and 'm handler = 'm ctx -> 'm event -> unit

and 'm ctx = { engine : 'm t; ctx_self : int; mutable base : Vtime.t; mutable elapsed : Vtime.t }

let external_source = -1

let create ?(message_latency = Vtime.of_ms 9) ?failure_timeout ?(trace = false) ~num_sites () =
  if num_sites <= 0 then invalid_arg "Engine.create: num_sites must be positive";
  if message_latency < 0 then invalid_arg "Engine.create: negative latency";
  let failure_timeout =
    match failure_timeout with Some t -> t | None -> 3 * message_latency
  in
  if failure_timeout < message_latency then
    invalid_arg "Engine.create: failure_timeout below message_latency";
  let t =
    {
      num_sites;
      message_latency;
      failure_timeout;
      queue = Heap.Prio.create ();
      handlers = Array.make num_sites None;
      alive = Array.make num_sites true;
      links = Array.init num_sites (fun _ -> Array.make num_sites true);
      latencies = Array.init num_sites (fun _ -> Array.make num_sites message_latency);
      clock = Vtime.zero;
      seq = 0;
      live =
        {
          live_sent = 0;
          live_delivered = 0;
          live_undeliverable = 0;
          live_timer_fired = 0;
          live_timer_discarded = 0;
        };
      sent_by = Array.make num_sites 0;
      delivered_to = Array.make num_sites 0;
      trace_enabled = trace;
      trace_rev = [];
      ctxs = [||];
      probe = None;
      heap_high_water = 0;
    }
  in
  t.ctxs <-
    Array.init num_sites (fun i ->
        { engine = t; ctx_self = i; base = Vtime.zero; elapsed = Vtime.zero });
  t

let register t site handler =
  if site < 0 || site >= t.num_sites then invalid_arg "Engine.register: bad site id";
  t.handlers.(site) <- Some handler

let num_sites t = t.num_sites
let now t = t.clock
let message_latency t = t.message_latency

let check_site t site =
  if site < 0 || site >= t.num_sites then invalid_arg "Engine: bad site id"

let set_alive t site up =
  check_site t site;
  t.alive.(site) <- up

let alive t site =
  check_site t site;
  t.alive.(site)

let set_link t a b ok =
  check_site t a;
  check_site t b;
  t.links.(a).(b) <- ok;
  t.links.(b).(a) <- ok

let link_ok t a b =
  check_site t a;
  check_site t b;
  a = b || t.links.(a).(b)

let set_link_latency t a b latency =
  check_site t a;
  check_site t b;
  if latency < 0 then invalid_arg "Engine.set_link_latency: negative latency";
  t.latencies.(a).(b) <- latency;
  t.latencies.(b).(a) <- latency

let link_latency t a b =
  check_site t a;
  check_site t b;
  t.latencies.(a).(b)

let set_probe t probe = t.probe <- probe
let heap_high_water t = t.heap_high_water

let schedule t at action =
  let at = max at t.clock in
  Heap.Prio.push t.queue ~at ~seq:t.seq action;
  t.seq <- t.seq + 1;
  let depth = Heap.Prio.size t.queue in
  if depth > t.heap_high_water then t.heap_high_water <- depth

let record_trace t ~time ~src ~dst ~payload ~outcome =
  if t.trace_enabled then
    t.trace_rev <-
      { trace_time = time; trace_src = src; trace_dst = dst; trace_payload = payload;
        trace_outcome = outcome }
      :: t.trace_rev

let submit t ~at ~src ~dst payload =
  check_site t dst;
  t.live.live_sent <- t.live.live_sent + 1;
  if src >= 0 then t.sent_by.(src) <- t.sent_by.(src) + 1;
  let latency = if src >= 0 then t.latencies.(src).(dst) else t.message_latency in
  schedule t (Vtime.add at latency) (Arrive { src; dst; payload; sent = at })

let inject t ~dst payload = submit t ~at:t.clock ~src:external_source ~dst payload

let self ctx = ctx.ctx_self
let time ctx = Vtime.add ctx.base ctx.elapsed

let work ctx cost =
  if cost < 0 then invalid_arg "Engine.work: negative cost";
  ctx.elapsed <- Vtime.add ctx.elapsed cost

let send ctx dst payload = submit ctx.engine ~at:(time ctx) ~src:ctx.ctx_self ~dst payload

let set_timer ctx delay payload =
  if delay < 0 then invalid_arg "Engine.set_timer: negative delay";
  schedule ctx.engine (Vtime.add (time ctx) delay) (Fire { dst = ctx.ctx_self; payload })

(* Handlers run one at a time (only [step] invokes them, and sends/timers
   merely schedule), so each site's scratch [ctx] can be reset and reused
   instead of allocating a fresh one per event. *)
let invoke t site event =
  match t.handlers.(site) with
  | None -> failwith (Printf.sprintf "Engine: no handler registered for site %d" site)
  | Some handler ->
    let ctx = t.ctxs.(site) in
    ctx.base <- t.clock;
    ctx.elapsed <- Vtime.zero;
    handler ctx event;
    (* After the handler returns, [ctx.elapsed] is the total virtual
       cost it accumulated through [work] — the per-event profile. *)
    match t.probe with
    | None -> ()
    | Some probe -> probe.on_event ~at:t.clock event ~cost:ctx.elapsed

let deliverable t ~src ~dst = t.alive.(dst) && (src < 0 || link_ok t src dst)

let step t =
  if Heap.Prio.is_empty t.queue then false
  else begin
    let at = Heap.Prio.min_at t.queue in
    let action = Heap.Prio.pop_min t.queue in
    t.clock <- at;
    (match action with
    | Arrive { src; dst; payload; sent } ->
      if deliverable t ~src ~dst then begin
        t.live.live_delivered <- t.live.live_delivered + 1;
        t.delivered_to.(dst) <- t.delivered_to.(dst) + 1;
        record_trace t ~time:at ~src ~dst ~payload ~outcome:Delivered;
        invoke t dst (Message { src; payload })
      end
      else begin
        t.live.live_undeliverable <- t.live.live_undeliverable + 1;
        record_trace t ~time:at ~src ~dst ~payload ~outcome:Undeliverable;
        if src >= 0 then
          (* The sender times out [failure_timeout] after the actual send
             time, independent of the link's latency.  Deliverability is
             only evaluated at arrival, so on a link slower than the
             timeout the notification is clamped to the arrival time by
             [schedule] (never earlier than the failure is detectable). *)
          schedule t (Vtime.add sent t.failure_timeout)
            (Notify_failure { src; dst; payload })
      end
    | Notify_failure { src; dst; payload } ->
      if t.alive.(src) then invoke t src (Send_failed { dst; payload })
    | Fire { dst; payload } ->
      if t.alive.(dst) then begin
        t.live.live_timer_fired <- t.live.live_timer_fired + 1;
        invoke t dst (Timer payload)
      end
      else t.live.live_timer_discarded <- t.live.live_timer_discarded + 1);
    (match t.probe with None -> () | Some probe -> probe.on_advance ~at:t.clock);
    true
  end

let run ?(max_events = 10_000_000) t =
  (* The emptiness check comes before the budget check: an already
     quiescent engine returns cleanly even with [max_events = 0]. *)
  let rec loop remaining =
    if not (Heap.Prio.is_empty t.queue) then
      if remaining = 0 then
        failwith
          (Format.asprintf
             "Engine.run: max_events (%d) exceeded (livelock?): stuck at virtual time %a with %d \
              pending events"
             max_events Vtime.pp t.clock (Heap.Prio.size t.queue))
      else begin
        ignore (step t);
        loop (remaining - 1)
      end
  in
  loop max_events

let pending_events t = Heap.Prio.size t.queue

let counters t =
  {
    sent = t.live.live_sent;
    delivered = t.live.live_delivered;
    undeliverable = t.live.live_undeliverable;
    timer_fired = t.live.live_timer_fired;
    timer_discarded = t.live.live_timer_discarded;
  }

let sent_by t site =
  check_site t site;
  t.sent_by.(site)

let delivered_to t site =
  check_site t site;
  t.delivered_to.(site)

let trace t = List.rev t.trace_rev
