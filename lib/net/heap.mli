(** Minimal binary min-heap, specialised to the event queue's needs.

    Elements are ordered by a caller-supplied comparison; ties must be
    broken by the caller (the engine uses a monotonically increasing
    sequence number) so that event processing is fully deterministic. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the minimum, or [None] when empty. *)

val peek : 'a t -> 'a option
