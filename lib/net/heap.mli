(** Minimal binary min-heap, specialised to the event queue's needs.

    Elements are ordered by a caller-supplied comparison; ties must be
    broken by the caller (the engine uses a monotonically increasing
    sequence number) so that event processing is fully deterministic. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the minimum, or [None] when empty. *)

val peek : 'a t -> 'a option

(** Event queue specialised to the engine's hot path.

    The engine orders events by [(at, seq)] where both are plain [int]s
    ({!Vtime.t} is an integer count of microseconds, [seq] a submission
    sequence number).  The generic heap above pays for that with a
    closure-captured comparator call and one heap-allocated element
    record per scheduled event; [Prio] stores the two keys unboxed in
    parallel [int] arrays, compares them with monomorphic integer
    comparisons, and neither [push] nor [pop_min] allocates (beyond
    amortised array growth). *)
module Prio : sig
  type 'a t
  (** A min-heap of ['a] payloads keyed by [(at, seq)]. *)

  val create : unit -> 'a t
  val is_empty : _ t -> bool
  val size : _ t -> int

  val push : 'a t -> at:int -> seq:int -> 'a -> unit
  (** Keys are compared lexicographically: earlier [at] first, ties
      broken by lower [seq].  [seq] values must be distinct for a fully
      deterministic order (the engine guarantees this). *)

  val min_at : _ t -> int
  (** [at] key of the minimum.  @raise Invalid_argument when empty. *)

  val pop_min : 'a t -> 'a
  (** Removes the minimum and returns its payload; read {!min_at} first
      if the key is needed.  @raise Invalid_argument when empty. *)
end
