(** Deterministic discrete-event message-passing engine.

    This is the repository's substitute for mini-RAID's substrate: "database
    sites were implemented as Unix processes (on one processor with one
    process per site)" with "a reliable message passing facility: no
    messages were lost; messages arrived and were processed in the order
    that they were sent" (paper §1.2).  Sites are message-driven state
    machines; every message between live sites is delivered exactly once,
    after a fixed latency, in send order (FIFO per link, global order
    fixed by a sequence number), so a run is a pure function of the
    initial state and injected inputs.

    Failure model: a site can be marked down ([set_alive]); a message
    arriving at a down site (or over a severed link) is not delivered, and
    the sender instead receives a [Send_failed] notification once its
    [failure_timeout] elapses — modelling the sender-side timeout that
    Appendix A's "site is now down" branches rely on.  Virtual processing
    cost is modelled by [work], which delays the site's subsequent sends. *)

type 'm event =
  | Message of { src : int; payload : 'm }
      (** Normal delivery.  [src] is [external_source] for injected
          messages (the managing site). *)
  | Send_failed of { dst : int; payload : 'm }
      (** The message this site sent to [dst] could not be delivered; the
          notification arrives [failure_timeout] after the {e send},
          whatever the link's latency.  On a link slower than the timeout
          it arrives at the failed delivery's evaluation time instead
          (the engine cannot know the fate of a message before its
          arrival time). *)
  | Timer of 'm
      (** A timer set by this site has fired. *)

type 'm t
(** An engine instance, generic in the message payload type. *)

type 'm ctx
(** Handler context: identifies the receiving site and accumulates the
    virtual processing cost of handling the current event. *)

type 'm handler = 'm ctx -> 'm event -> unit

type trace_outcome = Delivered | Undeliverable

type 'm trace_entry = {
  trace_time : Vtime.t;  (** arrival (or failure-detection) time *)
  trace_src : int;
  trace_dst : int;
  trace_payload : 'm;
  trace_outcome : trace_outcome;
}

val external_source : int
(** Pseudo site id ([-1]) used as [src] for injected messages. *)

val create :
  ?message_latency:Vtime.t ->
  ?failure_timeout:Vtime.t ->
  ?trace:bool ->
  num_sites:int ->
  unit ->
  'm t
(** [message_latency] defaults to 9 ms, the paper's measured cost of "a
    single communication from one site to another" (§2.1).
    [failure_timeout] (default 3 × latency) is the sender-side wait before
    a [Send_failed] notification; it must be at least the latency.
    All sites start alive, fully connected and with no handler.
    @raise Invalid_argument on non-positive [num_sites] or inconsistent
    timing parameters. *)

val register : 'm t -> int -> 'm handler -> unit
(** [register t site handler] installs [handler]; replaces any previous
    handler.  Events delivered to a site with no handler raise
    [Failure]. *)

val num_sites : _ t -> int

val now : _ t -> Vtime.t
(** Time of the most recently processed event (zero initially). *)

val message_latency : _ t -> Vtime.t

val set_alive : _ t -> int -> bool -> unit
(** Mark a site up or down.  Pending deliveries to a down site fail at
    their arrival time; a down site's timers are discarded when they
    fire. *)

val alive : _ t -> int -> bool

val set_link : _ t -> int -> int -> bool -> unit
(** [set_link t a b ok] sets bidirectional connectivity between [a] and
    [b] (used to model network partitions).  Links default to connected.
    A site is always connected to itself. *)

val link_ok : _ t -> int -> int -> bool

val set_link_latency : _ t -> int -> int -> Vtime.t -> unit
(** Override the message latency of one (bidirectional) link — the
    paper's future-work "communication delays across machines": model a
    WAN link between two LAN clusters by raising specific pairs.  FIFO
    order is preserved per link (latency is constant per link).
    @raise Invalid_argument on a negative latency. *)

val link_latency : _ t -> int -> int -> Vtime.t
(** Current latency of a link ([message_latency] unless overridden;
    injections always use [message_latency]). *)

val inject : 'm t -> dst:int -> 'm -> unit
(** Schedule a message from the managing site ([external_source]) to
    [dst], subject to the same latency and failure rules (a failed
    injection is silently counted, not notified). *)

(** {2 Handler context operations} *)

val self : _ ctx -> int
val time : _ ctx -> Vtime.t
(** Current virtual time inside the handler: arrival time plus the cost
    accumulated through [work] so far. *)

val work : _ ctx -> Vtime.t -> unit
(** Model [cost] of local processing; delays this handler's subsequent
    sends and timers. *)

val send : 'm ctx -> int -> 'm -> unit
(** Send a message from the handling site; it leaves at [time ctx]. *)

val set_timer : 'm ctx -> Vtime.t -> 'm -> unit
(** Deliver [payload] back to this site as a [Timer] event after the
    given delay (measured from [time ctx]). *)

(** {2 Execution} *)

val step : 'm t -> bool
(** Process one event; [false] when the queue is empty. *)

val run : ?max_events:int -> 'm t -> unit
(** Process events until quiescent.  @raise Failure if more than
    [max_events] (default 10_000_000) events are processed — a guard
    against protocol livelock in tests; the message reports the stuck
    virtual time and the pending-event count.  An already quiescent
    engine returns cleanly for any budget, including [max_events:0]. *)

val pending_events : _ t -> int

(** {2 Profiling hooks}

    The engine cannot depend on the observability layer (the dependency
    points the other way), so profiling is exposed as a generic probe
    the owner installs; {!Raid_core.Cluster} wires it into a telemetry
    registry.  With no probe installed the cost is one [None] branch
    per event. *)

type 'm probe = {
  on_event : at:Vtime.t -> 'm event -> cost:Vtime.t -> unit;
      (** After each handled event: the event, its processing time and
          the virtual cost the handler accumulated through [work].
          Not called for undeliverable arrivals or discarded timers
          (no handler ran). *)
  on_advance : at:Vtime.t -> unit;
      (** After every processed queue entry (including undeliverable /
          discarded ones), with the engine clock — the natural place to
          drive virtual-time sampling. *)
}

val set_probe : 'm t -> 'm probe option -> unit
(** Install or remove the probe (at most one; [None] removes). *)

val heap_high_water : _ t -> int
(** Highest event-queue depth observed since creation (tracked
    unconditionally; one integer comparison per scheduled event). *)

(** {2 Accounting} *)

type counters = {
  sent : int;  (** messages submitted, including injected *)
  delivered : int;
  undeliverable : int;  (** arrivals at a dead site / severed link *)
  timer_fired : int;
  timer_discarded : int;  (** timers that fired at a down site *)
}

val counters : _ t -> counters
(** Immutable snapshot of the running totals (the engine keeps them in
    mutable fields internally; this copies). *)

val sent_by : _ t -> int -> int
(** Messages sent by one site (injections are attributed to no site). *)

val delivered_to : _ t -> int -> int

val trace : 'm t -> 'm trace_entry list
(** Chronological trace (empty unless [create ~trace:true]). *)
