(** Virtual time.

    The paper measures everything in milliseconds on one processor's
    clock; mini-RAID's only network-visible constant is the 9 ms cost of
    one intersite communication.  We keep virtual time as an integer
    number of microseconds so cost-model arithmetic is exact, and print
    in milliseconds like the paper. *)

type t = int
(** Microseconds.  Always non-negative in engine events. *)

val zero : t

val of_us : int -> t
val of_ms : int -> t
val of_ms_f : float -> t
(** Rounded to the nearest microsecond. *)

val to_us : t -> int
val to_ms : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints as milliseconds with two decimals, e.g. ["186.00 ms"]. *)
