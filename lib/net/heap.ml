type 'a t = { cmp : 'a -> 'a -> int; mutable data : 'a array; mutable size : int }

let create ~cmp = { cmp; data = [||]; size = 0 }

let is_empty t = t.size = 0
let size t = t.size

let grow t x =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let next = Array.make (max 16 (capacity * 2)) x in
    Array.blit t.data 0 next 0 t.size;
    t.data <- next
  end

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && t.cmp t.data.(left) t.data.(!smallest) < 0 then smallest := left;
  if right < t.size && t.cmp t.data.(right) t.data.(!smallest) < 0 then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some top
  end

let peek t = if t.size = 0 then None else Some t.data.(0)

module Prio = struct
  type 'a t = {
    mutable ats : int array;
    mutable seqs : int array;
    mutable payloads : 'a array;
    mutable size : int;
  }

  let create () = { ats = [||]; seqs = [||]; payloads = [||]; size = 0 }
  let is_empty t = t.size = 0
  let size t = t.size

  let min_at t =
    if t.size = 0 then invalid_arg "Heap.Prio.min_at: empty heap";
    t.ats.(0)

  (* Lexicographic (at, seq) order on unboxed int keys. *)
  let less t i j =
    let ai = t.ats.(i) and aj = t.ats.(j) in
    ai < aj || (ai = aj && t.seqs.(i) < t.seqs.(j))

  let swap t i j =
    let a = t.ats.(i) in
    t.ats.(i) <- t.ats.(j);
    t.ats.(j) <- a;
    let s = t.seqs.(i) in
    t.seqs.(i) <- t.seqs.(j);
    t.seqs.(j) <- s;
    let p = t.payloads.(i) in
    t.payloads.(i) <- t.payloads.(j);
    t.payloads.(j) <- p

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if less t i parent then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let left = (2 * i) + 1 and right = (2 * i) + 2 in
    let smallest = ref i in
    if left < t.size && less t left !smallest then smallest := left;
    if right < t.size && less t right !smallest then smallest := right;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end

  let grow t x =
    let capacity = Array.length t.payloads in
    if t.size = capacity then begin
      let next = max 16 (capacity * 2) in
      let ats = Array.make next 0 and seqs = Array.make next 0 and payloads = Array.make next x in
      Array.blit t.ats 0 ats 0 t.size;
      Array.blit t.seqs 0 seqs 0 t.size;
      Array.blit t.payloads 0 payloads 0 t.size;
      t.ats <- ats;
      t.seqs <- seqs;
      t.payloads <- payloads
    end

  let push t ~at ~seq x =
    grow t x;
    let i = t.size in
    t.ats.(i) <- at;
    t.seqs.(i) <- seq;
    t.payloads.(i) <- x;
    t.size <- i + 1;
    sift_up t i

  let pop_min t =
    if t.size = 0 then invalid_arg "Heap.Prio.pop_min: empty heap";
    let top = t.payloads.(0) in
    let n = t.size - 1 in
    t.size <- n;
    if n > 0 then begin
      t.ats.(0) <- t.ats.(n);
      t.seqs.(0) <- t.seqs.(n);
      t.payloads.(0) <- t.payloads.(n);
      (* Alias the vacated tail slot to a live element so the popped
         payload is not retained by the backing array. *)
      t.payloads.(n) <- t.payloads.(0);
      sift_down t 0
    end;
    top
end
