(** Deterministic fork-join parallelism over OCaml 5 domains.

    Every headline artifact of this repository (the experiment figures,
    the ablation grid, the multi-seed and cluster-size sweeps) is a batch
    of fully independent simulations: each run is a pure function of its
    seed and configuration, sharing no mutable state with its siblings.
    {!map} exploits that by fanning the batch out over a fixed-size pool
    of worker domains while keeping the result {e order} — and therefore
    every downstream table, statistic and chart — bit-identical to the
    sequential execution.

    The pool is fork-join per call: [map ~domains:k] spawns [k - 1]
    worker domains (the calling domain is the k-th worker), drains a
    shared work queue, joins, and returns.  No resident domains linger
    between calls, so nested [map]s cannot deadlock and a library user
    pays nothing unless a sweep actually runs. *)

val set_default_domains : int -> unit
(** Set the domain count used when [map] is called without [?domains]
    (initially 1, i.e. fully sequential).  This is how the [-j]/[--jobs]
    command-line flags reach library code.
    @raise Invalid_argument on a count below 1. *)

val default_domains : unit -> int
(** Current default domain count. *)

val recommended_domains : unit -> int
(** The runtime's recommendation for this host
    ({!Domain.recommended_domain_count}); a sensible [-j] value. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] applies [f] to every element of [xs] using up to
    [domains] domains and returns the results in input order.

    - [domains] defaults to {!default_domains}; with [domains = 1] (or a
      list of fewer than two elements) this is exactly [List.map f xs] —
      no domain is spawned.
    - Results preserve input order regardless of which domain computed
      which element, so output is identical to the sequential path
      whenever [f] is pure.
    - If one or more applications of [f] raise, the exception of the
      {e leftmost} failing element among those evaluated is re-raised
      (with its original backtrace) after all workers have drained — the
      choice at assembly is deterministic even though workers finish in
      nondeterministic real-time order.  Recording a failure also stops
      workers from claiming further elements, so a poisoned batch does
      not run its whole tail; elements already in flight still complete
      (which elements were skipped is scheduling-dependent).

    [f] must not depend on shared mutable state: elements are evaluated
    concurrently on separate domains.
    @raise Invalid_argument on a domain count below 1. *)
