let default = Atomic.make 1

let set_default_domains n =
  if n < 1 then invalid_arg "Par.Pool.set_default_domains: domain count must be at least 1";
  Atomic.set default n

let default_domains () = Atomic.get default
let recommended_domains () = Domain.recommended_domain_count ()

type 'b slot = Pending | Done of 'b | Failed of exn * Printexc.raw_backtrace

let map ?domains f xs =
  let domains = match domains with Some d -> d | None -> default_domains () in
  if domains < 1 then invalid_arg "Par.Pool.map: domain count must be at least 1";
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when domains = 1 -> List.map f xs
  | xs ->
    let items = Array.of_list xs in
    let n = Array.length items in
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let poisoned = Atomic.make false in
    (* Workers race on an atomic cursor; each element is claimed exactly
       once and its result lands at its input index, so assembly order
       (and the leftmost-failure choice below) is independent of
       scheduling.  Once any element fails, workers stop claiming new
       work: a poisoned batch does not run its whole tail before the
       join re-raises (elements already in flight still finish). *)
    let rec worker () =
      if not (Atomic.get poisoned) then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f items.(i) with
          | y -> results.(i) <- Done y
          | exception e ->
            results.(i) <- Failed (e, Printexc.get_raw_backtrace ());
            Atomic.set poisoned true);
          worker ()
        end
      end
    in
    let spawned = Array.init (min (domains - 1) (n - 1)) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.iter
      (function Failed (e, bt) -> Printexc.raise_with_backtrace e bt | Pending | Done _ -> ())
      results;
    List.init n (fun i ->
        match results.(i) with Done y -> y | Pending | Failed _ -> assert false)
