type align = Left | Right

type row = Cells of string list | Rule

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list;  (* reversed *)
}

let create ?title columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { title; headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun widths row ->
        match row with
        | Rule -> widths
        | Cells cells -> List.map2 (fun w c -> max w (String.length c)) widths cells)
      (List.map String.length t.headers)
      rows
  in
  let buffer = Buffer.create 256 in
  let total_width = List.fold_left ( + ) 0 widths + (3 * (List.length widths - 1)) in
  (match t.title with
  | Some title ->
    Buffer.add_string buffer title;
    Buffer.add_char buffer '\n';
    Buffer.add_string buffer (String.make (max total_width (String.length title)) '=');
    Buffer.add_char buffer '\n'
  | None -> ());
  let render_cells cells =
    let padded = List.map2 (fun (a, w) c -> pad a w c) (List.combine t.aligns widths) cells in
    Buffer.add_string buffer (String.concat " | " padded);
    Buffer.add_char buffer '\n'
  in
  render_cells t.headers;
  Buffer.add_string buffer
    (String.concat "-+-" (List.map (fun w -> String.make w '-') widths));
  Buffer.add_char buffer '\n';
  List.iter
    (function
      | Cells cells -> render_cells cells
      | Rule ->
        Buffer.add_string buffer
          (String.concat "-+-" (List.map (fun w -> String.make w '-') widths));
        Buffer.add_char buffer '\n')
    rows;
  Buffer.contents buffer

let print t = print_string (render t); print_newline ()
