type series = { label : string; glyph : char; points : (float * float) list }

type t = {
  width : int;
  height : int;
  title : string;
  x_label : string;
  y_label : string;
  mutable series : series list;  (* reversed *)
}

let create ?(width = 72) ?(height = 20) ~title ~x_label ~y_label () =
  if width < 2 || height < 2 then invalid_arg "Chart.create: degenerate size";
  { width; height; title; x_label; y_label; series = [] }

let add_series t s = t.series <- s :: t.series

let bounds series =
  let fold f init =
    List.fold_left
      (fun acc s -> List.fold_left (fun acc (x, y) -> f acc x y) acc s.points)
      init series
  in
  let x_min = fold (fun acc x _ -> Float.min acc x) Float.infinity in
  let x_max = fold (fun acc x _ -> Float.max acc x) Float.neg_infinity in
  let y_min = fold (fun acc _ y -> Float.min acc y) Float.infinity in
  let y_max = fold (fun acc _ y -> Float.max acc y) Float.neg_infinity in
  if x_min > x_max then None
  else
    (* Widen degenerate ranges so scaling stays well-defined. *)
    let widen lo hi = if lo = hi then (lo -. 0.5, hi +. 0.5) else (lo, hi) in
    let x_min, x_max = widen x_min x_max in
    let y_min, y_max = widen (Float.min y_min 0.0) y_max in
    Some (x_min, x_max, y_min, y_max)

let render t =
  let series = List.rev t.series in
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer t.title;
  Buffer.add_char buffer '\n';
  (match bounds series with
  | None ->
    Buffer.add_string buffer "  (no data)\n"
  | Some (x_min, x_max, y_min, y_max) ->
    let grid = Array.make_matrix t.height t.width ' ' in
    let to_col x =
      int_of_float (Float.round ((x -. x_min) /. (x_max -. x_min) *. float_of_int (t.width - 1)))
    in
    let to_row y =
      (t.height - 1)
      - int_of_float (Float.round ((y -. y_min) /. (y_max -. y_min) *. float_of_int (t.height - 1)))
    in
    let plot_segment glyph (x0, y0) (x1, y1) =
      (* Draw with column-stepped interpolation: one glyph per column
         between the two points, so monotone series read as a line. *)
      let c0 = to_col x0 and c1 = to_col x1 in
      let steps = max 1 (abs (c1 - c0)) in
      for k = 0 to steps do
        let f = float_of_int k /. float_of_int steps in
        let x = x0 +. (f *. (x1 -. x0)) and y = y0 +. (f *. (y1 -. y0)) in
        grid.(to_row y).(to_col x) <- glyph
      done
    in
    List.iter
      (fun s ->
        let sorted = List.sort (fun (a, _) (b, _) -> compare a b) s.points in
        match sorted with
        | [] -> ()
        | first :: rest ->
          let (x0, y0) = first in
          grid.(to_row y0).(to_col x0) <- s.glyph;
          ignore
            (List.fold_left
               (fun prev point ->
                 plot_segment s.glyph prev point;
                 point)
               first rest))
      series;
    let y_tick row =
      let y = y_max -. (float_of_int row /. float_of_int (t.height - 1) *. (y_max -. y_min)) in
      Format.asprintf "%8.1f" y
    in
    Buffer.add_string buffer (Format.asprintf "  %s\n" t.y_label);
    for row = 0 to t.height - 1 do
      let label =
        if row mod 4 = 0 || row = t.height - 1 then y_tick row else String.make 8 ' '
      in
      Buffer.add_string buffer label;
      Buffer.add_string buffer " |";
      Buffer.add_string buffer (String.init t.width (fun c -> grid.(row).(c)));
      Buffer.add_char buffer '\n'
    done;
    Buffer.add_string buffer (String.make 9 ' ');
    Buffer.add_char buffer '+';
    Buffer.add_string buffer (String.make t.width '-');
    Buffer.add_char buffer '\n';
    Buffer.add_string buffer
      (Format.asprintf "%s %-8.1f%s%.1f\n" (String.make 9 ' ') x_min
         (String.make (max 1 (t.width - 16)) ' ')
         x_max);
    Buffer.add_string buffer (Format.asprintf "%s(%s)\n" (String.make 10 ' ') t.x_label));
  List.iter
    (fun s -> Buffer.add_string buffer (Format.asprintf "  %c = %s\n" s.glyph s.label))
    series;
  Buffer.contents buffer

let print t = print_string (render t)
