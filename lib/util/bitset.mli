(** Fixed-capacity bitsets.

    The paper implements fail-locks as "a bit map for each data item"
    whose width is the number of possible sites, so that "fail-lock
    operations [can] be performed very quickly" (§1.2).  This module is
    that bitmap: a flat [Bytes.t]-backed set over indices
    [0 .. capacity-1] with O(1) set/clear/test and O(capacity/8)
    iteration, union and population count. *)

type t

val create : int -> t
(** [create capacity] is an empty set over [0 .. capacity-1].
    @raise Invalid_argument if [capacity < 0]. *)

val capacity : t -> int
(** Number of representable members. *)

val copy : t -> t

val set : t -> int -> unit
(** @raise Invalid_argument if the index is out of range. *)

val clear : t -> int -> unit
(** @raise Invalid_argument if the index is out of range. *)

val assign : t -> int -> bool -> unit
(** [assign t i b] sets bit [i] to [b]. *)

val mem : t -> int -> bool
(** @raise Invalid_argument if the index is out of range. *)

val is_empty : t -> bool

val cardinal : t -> int
(** Population count. *)

val clear_all : t -> unit

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] ors [src] into [dst].
    @raise Invalid_argument on capacity mismatch. *)

val equal : t -> t -> bool
(** Structural equality; capacities must match for [true]. *)

val iter : (int -> unit) -> t -> unit
(** [iter f t] applies [f] to each member in increasing order.  Zero
    bytes are skipped whole and only set bits are visited —
    O(capacity/8 + cardinal), with no intermediate list. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t
(** [of_list capacity members]. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{i1,i2,...}]. *)
