(** Plain-text table rendering for experiment reports.

    The bench harness prints each paper table as an aligned text table so
    that paper-vs-measured comparisons read directly off the terminal. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given column headers
    and alignments.  @raise Invalid_argument on an empty column list. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_rule : t -> unit
(** Inserts a horizontal rule between the rows added before and after. *)

val render : t -> string
(** Full rendering, including title, header, separator and rows. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
