type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let require_nonempty = function
  | [] -> invalid_arg "Stats: empty sample list"
  | samples -> samples

let mean samples =
  let samples = require_nonempty samples in
  List.fold_left ( +. ) 0.0 samples /. float_of_int (List.length samples)

let stddev samples =
  let samples = require_nonempty samples in
  let n = List.length samples in
  if n < 2 then 0.0
  else
    let m = mean samples in
    let sum_sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 samples in
    sqrt (sum_sq /. float_of_int (n - 1))

(* Linear interpolation on rank p*(n-1) (the "exclusive" convention, as
   in numpy's default): p=0 is the minimum, p=1 the maximum, and small
   samples interpolate rather than snap to an extreme — p99 of 10
   samples sits just below the max instead of on it.  The index clamps
   guard the float arithmetic at the boundaries: rank can only land
   outside [0, n-1] through rounding, and without the clamp that would
   read out of bounds rather than degrade gracefully. *)
let percentile p samples =
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: p outside [0,1]";
  let samples = require_nonempty samples in
  let sorted = Array.of_list samples in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else
    let rank = p *. float_of_int (n - 1) in
    let lo = max 0 (min (n - 1) (int_of_float (Float.floor rank))) in
    let hi = min (lo + 1) (n - 1) in
    let frac = Float.max 0.0 (Float.min 1.0 (rank -. float_of_int lo)) in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let summarize samples =
  let samples = require_nonempty samples in
  {
    count = List.length samples;
    mean = mean samples;
    stddev = stddev samples;
    min = List.fold_left Float.min Float.infinity samples;
    max = List.fold_left Float.max Float.neg_infinity samples;
    p50 = percentile 0.5 samples;
    p95 = percentile 0.95 samples;
    p99 = percentile 0.99 samples;
  }

let histogram ?(bins = 10) samples =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let samples = require_nonempty samples in
  let lo = List.fold_left Float.min Float.infinity samples in
  let hi = List.fold_left Float.max Float.neg_infinity samples in
  if lo = hi then [ (lo, hi, List.length samples) ]
  else begin
    let width = (hi -. lo) /. float_of_int bins in
    let counts = Array.make bins 0 in
    List.iter
      (fun x ->
        let b = min (bins - 1) (int_of_float ((x -. lo) /. width)) in
        counts.(b) <- counts.(b) + 1)
      samples;
    List.init bins (fun b ->
        (lo +. (float_of_int b *. width), lo +. (float_of_int (b + 1) *. width), counts.(b)))
  end

let pp_histogram ppf buckets =
  let peak = List.fold_left (fun acc (_, _, n) -> max acc n) 1 buckets in
  Format.pp_open_vbox ppf 0;
  List.iteri
    (fun i (lo, hi, n) ->
      if i > 0 then Format.pp_print_cut ppf ();
      let bar = String.make (n * 40 / peak) '#' in
      Format.fprintf ppf "[%8.2f, %8.2f) %6d %s" lo hi n bar)
    buckets;
  Format.pp_close_box ppf ()

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f"
    s.count s.mean s.stddev s.min s.p50 s.p95 s.p99 s.max

module Accumulator = struct
  type t = { mutable n : int; mutable mu : float; mutable m2 : float }

  let create () = { n = 0; mu = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mu in
    t.mu <- t.mu +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mu))

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mu
  let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))
end
