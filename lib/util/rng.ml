type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let mix n =
  Int64.to_int (Int64.shift_right_logical (mix64 (Int64.of_int n)) 1)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec loop () =
    let raw = Int64.shift_right_logical (bits64 t) 1 in
    let candidate = Int64.rem raw bound64 in
    (* Reject if raw falls into the incomplete final block. *)
    if Int64.compare (Int64.sub raw candidate) (Int64.sub (Int64.sub Int64.max_int bound64) 1L) > 0
    then loop ()
    else Int64.to_int candidate
  in
  loop ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t =
  (* 53 random bits into the mantissa. *)
  let raw = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float raw *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t < p

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | items -> List.nth items (int t (List.length items))

let choose_weighted t alternatives =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 alternatives in
  if total <= 0.0 then invalid_arg "Rng.choose_weighted: weights must sum to a positive value";
  let target = float t *. total in
  let rec pick acc = function
    | [] -> invalid_arg "Rng.choose_weighted: empty list"
    | [ (x, _) ] -> x
    | (x, w) :: rest ->
      let acc = acc +. w in
      if target < acc then x else pick acc rest
  in
  pick 0.0 alternatives

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
